#include "fpa/soft_float.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/assert.hpp"
#include "common/rng.hpp"

namespace congestbc {
namespace {

const SoftFloatFormat kFmt{16, 16};

TEST(SoftFloat, ZeroBehaviour) {
  SoftFloat zero;
  EXPECT_TRUE(zero.is_zero());
  EXPECT_EQ(zero.to_double(), 0.0);
  EXPECT_EQ(compare(zero, zero), 0);
}

TEST(SoftFloat, ExactSmallIntegers) {
  for (std::uint64_t v = 1; v <= 1000; ++v) {
    const auto up = SoftFloat::from_u64(v, kFmt, RoundingMode::kUp);
    const auto down = SoftFloat::from_u64(v, kFmt, RoundingMode::kDown);
    // Values below 2^16 are exactly representable with a 16-bit mantissa.
    EXPECT_EQ(up.to_double(), static_cast<double>(v));
    EXPECT_EQ(down.to_double(), static_cast<double>(v));
  }
}

TEST(SoftFloat, MantissaIsNormalized) {
  Rng rng(7);
  for (int trial = 0; trial < 500; ++trial) {
    const std::uint64_t v = rng.next_u64() | 1;
    const auto f = SoftFloat::from_u64(v, kFmt, RoundingMode::kUp);
    EXPECT_EQ(bit_width_u64(f.mantissa()), kFmt.mantissa_bits);
  }
}

TEST(SoftFloat, DirectedRoundingBrackets) {
  Rng rng(11);
  for (int trial = 0; trial < 1000; ++trial) {
    const std::uint64_t v = rng.next_u64();
    if (v == 0) {
      continue;
    }
    const auto up = SoftFloat::from_u64(v, kFmt, RoundingMode::kUp);
    const auto down = SoftFloat::from_u64(v, kFmt, RoundingMode::kDown);
    EXPECT_GE(compare_with_big(up, BigUint(v)), 0) << v;
    EXPECT_LE(compare_with_big(down, BigUint(v)), 0) << v;
  }
}

TEST(SoftFloat, Lemma1RelativeErrorBound) {
  // Lemma 1: the ceil estimate a of b satisfies |a/b - 1| <= 2^-(L-1).
  Rng rng(13);
  const double eta = unit_relative_error(kFmt);
  for (int trial = 0; trial < 1000; ++trial) {
    const std::uint64_t v = rng.next_u64() | 1;
    const auto up = SoftFloat::from_u64(v, kFmt, RoundingMode::kUp);
    const double rel = up.to_double() / static_cast<double>(v) - 1.0;
    EXPECT_GE(rel, 0.0);
    EXPECT_LE(rel, eta);
  }
}

TEST(SoftFloat, FromBigMatchesFromU64) {
  Rng rng(17);
  for (int trial = 0; trial < 300; ++trial) {
    const std::uint64_t v = rng.next_u64() | 1;
    const auto a = SoftFloat::from_u64(v, kFmt, RoundingMode::kUp);
    const auto b = SoftFloat::from_big(BigUint(v), kFmt, RoundingMode::kUp);
    EXPECT_EQ(a, b);
  }
}

TEST(SoftFloat, FromBigHugeValueBrackets) {
  // 2^200 + 12345: way beyond 64 bits.
  BigUint huge = BigUint::pow2(200) + BigUint(12345);
  const auto up = SoftFloat::from_big(huge, kFmt, RoundingMode::kUp);
  const auto down = SoftFloat::from_big(huge, kFmt, RoundingMode::kDown);
  EXPECT_GE(compare_with_big(up, huge), 0);
  EXPECT_LE(compare_with_big(down, huge), 0);
  EXPECT_GT(compare(up, down), 0);
}

TEST(SoftFloat, AdditionExactWhenRepresentable) {
  const auto a = SoftFloat::from_u64(100, kFmt, RoundingMode::kUp);
  const auto b = SoftFloat::from_u64(28, kFmt, RoundingMode::kUp);
  const auto sum = add(a, b, kFmt, RoundingMode::kUp);
  EXPECT_EQ(sum.to_double(), 128.0);
}

TEST(SoftFloat, AdditionDirectedRounding) {
  Rng rng(19);
  for (int trial = 0; trial < 1000; ++trial) {
    const std::uint64_t x = rng.next_u64() >> static_cast<unsigned>(rng.next_below(40));
    const std::uint64_t y = rng.next_u64() >> static_cast<unsigned>(rng.next_below(40));
    if (x == 0 || y == 0) {
      continue;
    }
    const BigUint exact = BigUint(x) + BigUint(y);
    const auto up =
        add(SoftFloat::from_u64(x, kFmt, RoundingMode::kUp),
            SoftFloat::from_u64(y, kFmt, RoundingMode::kUp), kFmt,
            RoundingMode::kUp);
    const auto down =
        add(SoftFloat::from_u64(x, kFmt, RoundingMode::kDown),
            SoftFloat::from_u64(y, kFmt, RoundingMode::kDown), kFmt,
            RoundingMode::kDown);
    EXPECT_GE(compare_with_big(up, exact), 0);
    EXPECT_LE(compare_with_big(down, exact), 0);
  }
}

TEST(SoftFloat, AdditionWithHugeMagnitudeGap) {
  const auto big = SoftFloat::make(1, 100, kFmt, RoundingMode::kDown);
  const auto tiny = SoftFloat::make(1, -100, kFmt, RoundingMode::kDown);
  const auto down = add(big, tiny, kFmt, RoundingMode::kDown);
  const auto up = add(big, tiny, kFmt, RoundingMode::kUp);
  // Floor rounding absorbs the tiny addend; ceil must strictly grow.
  EXPECT_EQ(compare(down, big), 0);
  EXPECT_GT(compare(up, big), 0);
}

TEST(SoftFloat, MultiplicationDirectedRounding) {
  Rng rng(23);
  for (int trial = 0; trial < 1000; ++trial) {
    const std::uint64_t x = (rng.next_u64() >> 20) | 1;
    const std::uint64_t y = (rng.next_u64() >> 20) | 1;
    const BigUint exact = BigUint(x) * BigUint(y);
    const auto up =
        multiply(SoftFloat::from_u64(x, kFmt, RoundingMode::kUp),
                 SoftFloat::from_u64(y, kFmt, RoundingMode::kUp), kFmt,
                 RoundingMode::kUp);
    const auto down =
        multiply(SoftFloat::from_u64(x, kFmt, RoundingMode::kDown),
                 SoftFloat::from_u64(y, kFmt, RoundingMode::kDown), kFmt,
                 RoundingMode::kDown);
    EXPECT_GE(compare_with_big(up, exact), 0);
    EXPECT_LE(compare_with_big(down, exact), 0);
  }
}

TEST(SoftFloat, MultiplyByZero) {
  const auto a = SoftFloat::from_u64(7, kFmt, RoundingMode::kUp);
  EXPECT_TRUE(multiply(a, SoftFloat{}, kFmt, RoundingMode::kUp).is_zero());
}

TEST(SoftFloat, ReciprocalBrackets) {
  Rng rng(29);
  for (int trial = 0; trial < 1000; ++trial) {
    const std::uint64_t v = (rng.next_u64() >> static_cast<unsigned>(
                                 rng.next_below(50))) |
                            1;
    const auto f = SoftFloat::from_u64(v, kFmt, RoundingMode::kDown);
    const auto up = reciprocal(f, kFmt, RoundingMode::kUp);
    const auto down = reciprocal(f, kFmt, RoundingMode::kDown);
    const double exact = 1.0 / f.to_double();
    EXPECT_GE(up.to_double(), exact * (1 - 1e-12));
    EXPECT_LE(down.to_double(), exact * (1 + 1e-12));
    // And the two brackets are within one unit relative error.
    EXPECT_LE(up.to_double() / down.to_double(),
              1 + 4 * unit_relative_error(kFmt));
  }
}

TEST(SoftFloat, ReciprocalOfPowerOfTwoIsExact) {
  const auto f = SoftFloat::from_u64(1024, kFmt, RoundingMode::kUp);
  const auto r = reciprocal(f, kFmt, RoundingMode::kDown);
  EXPECT_EQ(r.to_double(), 1.0 / 1024.0);
}

TEST(SoftFloat, ReciprocalOfZeroThrows) {
  EXPECT_THROW(reciprocal(SoftFloat{}, kFmt, RoundingMode::kUp),
               PreconditionError);
}

TEST(SoftFloat, CompareTotalOrder) {
  const auto a = SoftFloat::from_u64(3, kFmt, RoundingMode::kUp);
  const auto b = SoftFloat::from_u64(4, kFmt, RoundingMode::kUp);
  const auto c = SoftFloat::make(3, 50, kFmt, RoundingMode::kUp);
  EXPECT_LT(compare(a, b), 0);
  EXPECT_GT(compare(b, a), 0);
  EXPECT_LT(compare(b, c), 0);
  EXPECT_EQ(compare(a, a), 0);
  EXPECT_LT(compare(SoftFloat{}, a), 0);
}

TEST(SoftFloat, PackUnpackRoundTrip) {
  Rng rng(31);
  for (int trial = 0; trial < 500; ++trial) {
    const std::uint64_t v = rng.next_u64() | 1;
    const auto f = SoftFloat::from_u64(v, kFmt, RoundingMode::kUp);
    BitWriter w;
    f.pack(w, kFmt);
    EXPECT_EQ(w.bit_size(), kFmt.total_bits());
    BitReader r(w.bytes(), w.bit_size());
    EXPECT_EQ(SoftFloat::unpack(r, kFmt), f);
  }
}

TEST(SoftFloat, PackUnpackZero) {
  BitWriter w;
  SoftFloat{}.pack(w, kFmt);
  EXPECT_EQ(w.bit_size(), kFmt.total_bits());
  BitReader r(w.bytes(), w.bit_size());
  EXPECT_TRUE(SoftFloat::unpack(r, kFmt).is_zero());
}

TEST(SoftFloat, PackNegativeExponent) {
  const auto f = reciprocal(SoftFloat::from_u64(12345, kFmt, RoundingMode::kUp),
                            kFmt, RoundingMode::kDown);
  BitWriter w;
  f.pack(w, kFmt);
  BitReader r(w.bytes(), w.bit_size());
  EXPECT_EQ(SoftFloat::unpack(r, kFmt), f);
}

TEST(SoftFloat, ExponentOverflowDetected) {
  const SoftFloatFormat narrow{8, 4};  // exponent limit = 7
  EXPECT_THROW(SoftFloat::make(1, 100, narrow, RoundingMode::kUp),
               InvariantError);
}

TEST(SoftFloat, FromDoubleExactForRepresentables) {
  // Doubles with <= 16 mantissa bits round-trip exactly through the
  // 16-bit test format.
  for (const double v : {1.0, 2.5, 0.375, 1024.0, 65535.0, 3.0e-5}) {
    const auto f = SoftFloat::from_double(v, kFmt, RoundingMode::kNearest);
    // 3e-5 is not dyadic; allow one-ulp slack there, exact elsewhere.
    EXPECT_NEAR(f.to_double(), v, v * unit_relative_error(kFmt));
  }
  EXPECT_EQ(SoftFloat::from_double(0.375, kFmt, RoundingMode::kUp).to_double(),
            0.375);
}

TEST(SoftFloat, FromDoubleBrackets) {
  Rng rng(41);
  for (int trial = 0; trial < 300; ++trial) {
    const double v = rng.next_double() * 1e6 + 1e-9;
    const auto up = SoftFloat::from_double(v, kFmt, RoundingMode::kUp);
    const auto down = SoftFloat::from_double(v, kFmt, RoundingMode::kDown);
    EXPECT_GE(up.to_double(), v * (1 - 1e-15));
    EXPECT_LE(down.to_double(), v * (1 + 1e-15));
  }
}

TEST(SoftFloat, FromDoubleZeroAndRejects) {
  EXPECT_TRUE(SoftFloat::from_double(0.0, kFmt, RoundingMode::kUp).is_zero());
  EXPECT_THROW(SoftFloat::from_double(-1.0, kFmt, RoundingMode::kUp),
               PreconditionError);
  EXPECT_THROW(
      SoftFloat::from_double(std::numeric_limits<double>::infinity(), kFmt,
                             RoundingMode::kUp),
      PreconditionError);
}

TEST(SoftFloatFormat, ForGraphScalesWithN) {
  const auto small = SoftFloatFormat::for_graph(16);
  const auto large = SoftFloatFormat::for_graph(1 << 20);
  EXPECT_GT(large.mantissa_bits, small.mantissa_bits);
  EXPECT_GT(large.exponent_bits, small.exponent_bits);
  EXPECT_LE(large.mantissa_bits, 62u);
  // Exponent range must cover sigma <= 2^N for the small case.
  EXPECT_GE(small.exponent_limit(), 4 * 16);
}

TEST(SoftFloat, AccumulatedCeilSumStaysBracketed) {
  // Summing k ceil-rounded terms keeps the result within (1+eta)^k above
  // the exact sum — the inductive step behind Lemma 2's estimate.
  Rng rng(37);
  const int k = 200;
  BigUint exact;
  SoftFloat approx;
  for (int i = 0; i < k; ++i) {
    const std::uint64_t v = rng.next_u64() >> 30;
    exact += BigUint(v);
    approx = add(approx, SoftFloat::from_u64(v, kFmt, RoundingMode::kUp), kFmt,
                 RoundingMode::kUp);
  }
  EXPECT_GE(compare_with_big(approx, exact), 0);
  const double bound =
      std::pow(1 + unit_relative_error(kFmt), k) * exact.to_double();
  EXPECT_LE(approx.to_double(), bound * (1 + 1e-12));
}

}  // namespace
}  // namespace congestbc
