// Checkpoint/restore subsystem (src/snapshot) tests.
//
// The contract under test (DESIGN.md §9): a run resumed from a snapshot
// is indistinguishable from the uninterrupted run — bit-identical
// centralities, metrics, and trace streams — for any thread count,
// either engine, fault-free or under a mixed fault plan.  Malformed
// snapshot input must be rejected with SnapshotError, never UB.
#include <sys/wait.h>
#include <unistd.h>

#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "algo/bc_pipeline.hpp"
#include "common/rng.hpp"
#include "congest/network.hpp"
#include "congest/trace.hpp"
#include "core/runner.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "gtest/gtest.h"
#include "snapshot/checkpoint.hpp"
#include "snapshot/snapshot.hpp"

namespace congestbc {
namespace {

namespace fs = std::filesystem;

Graph load_data(const std::string& name) {
  const std::string path = std::string(CONGESTBC_DATA_DIR) + "/" + name;
  std::ifstream file(path);
  if (!file.good()) {
    throw std::runtime_error("cannot open " + path);
  }
  return read_edge_list(file);
}

/// Unique scratch directory per test, removed on destruction.
class TempDir {
 public:
  explicit TempDir(const std::string& tag)
      : path_(fs::temp_directory_path() /
              ("congestbc_snapshot_test_" + tag + "_" +
               std::to_string(static_cast<unsigned long>(::getpid())))) {
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~TempDir() { fs::remove_all(path_); }
  const fs::path& path() const { return path_; }
  std::string str() const { return path_.string(); }

 private:
  fs::path path_;
};

/// The mixed adversity plan of the bit-identity matrix: hash-drawn drops,
/// duplicates, and delays plus a transient node crash and a transient
/// link outage.  Runs under the reliable transport, which also puts the
/// ReliableProgram ARQ state under snapshot test.
FaultPlan mixed_plan(const Graph& g) {
  FaultPlan plan;
  plan.seed = 7;
  plan.drop_probability = 0.02;
  plan.duplicate_probability = 0.02;
  plan.delay_probability = 0.05;
  plan.node_faults.push_back(NodeFault{5, {20, 60}});
  // Down node 0's first incident link for a window; taken from the graph
  // so the plan validates on any test topology.
  plan.link_faults.push_back(LinkFault{{0, g.neighbors(0)[0]}, {30, 80}});
  return plan;
}

struct Variant {
  const char* name;
  bool faults;
  unsigned threads;
  bool legacy;
};

DistributedBcOptions make_options(const Graph& g, const Variant& v) {
  DistributedBcOptions options;
  options.threads = v.threads;
  options.legacy_engine = v.legacy;
  if (v.faults) {
    options.faults = mixed_plan(g);
    options.reliable_transport = true;
  }
  return options;
}

/// Runs to completion with a recording trace.
DistributedBcResult run_full(const Graph& g, const Variant& v,
                             MessageTrace& trace) {
  DistributedBcOptions options = make_options(g, v);
  options.trace = &trace;
  return run_distributed_bc(g, options);
}

/// Runs with halt_at_round, saves the suspension snapshot to `file`.
DistributedBcResult run_halted(const Graph& g, const Variant& v,
                               std::uint64_t halt_round,
                               const std::string& file, MessageTrace& trace) {
  DistributedBcOptions options = make_options(g, v);
  options.trace = &trace;
  options.halt_at_round = halt_round;
  BcRun run(g, options);
  run.run();
  EXPECT_TRUE(run.suspended());
  std::ofstream out(file, std::ios::binary);
  run.save_snapshot(out);
  return run.harvest();
}

/// Resumes from `file` and runs to completion.
DistributedBcResult run_resumed(const Graph& g, const Variant& v,
                                const std::string& file,
                                MessageTrace& trace) {
  DistributedBcOptions options = make_options(g, v);
  options.trace = &trace;
  options.resume_from = file;
  return run_distributed_bc(g, options);
}

void expect_identical_outputs(const DistributedBcResult& a,
                              const DistributedBcResult& b) {
  EXPECT_EQ(a.betweenness, b.betweenness);
  EXPECT_EQ(a.closeness, b.closeness);
  EXPECT_EQ(a.graph_centrality, b.graph_centrality);
  EXPECT_EQ(a.stress, b.stress);
  EXPECT_EQ(a.eccentricities, b.eccentricities);
  EXPECT_EQ(a.diameter, b.diameter);
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_EQ(a.metrics, b.metrics);
}

/// The tentpole assertion: halt at `halt_round`, save, resume in a fresh
/// network, and require outputs, metrics, and the trace stream to equal
/// the uninterrupted run exactly (full trace == halted prefix + resumed
/// suffix).
void check_boundary(const Graph& g, const Variant& v,
                    const DistributedBcResult& full,
                    const MessageTrace& full_trace, std::uint64_t halt_round,
                    const std::string& file) {
  SCOPED_TRACE(std::string(v.name) + " halt@" + std::to_string(halt_round));
  MessageTrace halted_trace;
  const DistributedBcResult halted =
      run_halted(g, v, halt_round, file, halted_trace);
  EXPECT_TRUE(halted.suspended);
  EXPECT_EQ(halted.rounds, halt_round);

  MessageTrace resumed_trace;
  const DistributedBcResult resumed = run_resumed(g, v, file, resumed_trace);
  EXPECT_FALSE(resumed.suspended);
  ASSERT_TRUE(resumed.resumed_from_round.has_value());
  EXPECT_EQ(*resumed.resumed_from_round, halt_round);
  expect_identical_outputs(full, resumed);

  std::vector<TraceEvent> stitched = halted_trace.events();
  stitched.insert(stitched.end(), resumed_trace.events().begin(),
                  resumed_trace.events().end());
  EXPECT_EQ(full_trace.events(), stitched);
  std::vector<FaultEvent> stitched_faults = halted_trace.fault_events();
  stitched_faults.insert(stitched_faults.end(),
                         resumed_trace.fault_events().begin(),
                         resumed_trace.fault_events().end());
  EXPECT_EQ(full_trace.fault_events(), stitched_faults);
}

void run_matrix(const std::string& graph_name, const Variant& v) {
  const Graph g = load_data(graph_name);
  TempDir dir(graph_name + "_" + v.name);
  MessageTrace full_trace;
  const DistributedBcResult full = run_full(g, v, full_trace);
  ASSERT_GE(full.rounds, 6u);
  if (v.faults) {
    // The plan must actually have injected something, or the matrix is
    // testing less than it claims.
    EXPECT_GT(full.metrics.dropped_messages + full.metrics.delayed_messages +
                  full.metrics.duplicated_messages,
              0u);
  }
  const std::uint64_t halts[] = {1, full.rounds / 3, 2 * full.rounds / 3};
  for (const std::uint64_t halt : halts) {
    check_boundary(g, v, full, full_trace, halt,
                   (dir.path() / ("snap-" + std::to_string(halt) + ".cbcsnap"))
                       .string());
  }
}

// ------------------------------------------------------------- container

TEST(SnapshotContainer, RoundTripPreservesBits) {
  BitWriter payload;
  payload.write(0b1011, 4);
  payload.write_varuint(123456789);
  payload.write_bool(true);
  std::stringstream stream;
  write_snapshot_container(stream, payload);
  const SnapshotPayload parsed = read_snapshot_container(stream);
  EXPECT_EQ(parsed.bits, payload.bit_size());
  BitReader r = parsed.reader();
  EXPECT_EQ(r.read(4), 0b1011u);
  EXPECT_EQ(r.read_varuint(), 123456789u);
  EXPECT_TRUE(r.read_bool());
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(SnapshotContainer, FieldHelpersRoundTrip) {
  BitWriter w;
  snap::put_u64(w, 0);
  snap::put_u64(w, ~0ull);
  snap::put_i64(w, -1);
  snap::put_i64(w, std::numeric_limits<std::int64_t>::min());
  snap::put_i64(w, std::numeric_limits<std::int64_t>::max());
  snap::put_bool(w, true);
  snap::put_double(w, -0.0);
  snap::put_double(w, 231.07142857142858);
  snap::put_long_double(w, 1.5L);
  snap::put_long_double(w, 0.0L);
  snap::put_long_double(w, -3.0e30L);
  const std::vector<std::uint8_t> blob{0xAB, 0xCD, 0x0F};
  snap::put_bits(w, blob.data(), 20);

  BitReader r(w.data(), w.bit_size());
  EXPECT_EQ(snap::get_u64(r), 0u);
  EXPECT_EQ(snap::get_u64(r), ~0ull);
  EXPECT_EQ(snap::get_i64(r), -1);
  EXPECT_EQ(snap::get_i64(r), std::numeric_limits<std::int64_t>::min());
  EXPECT_EQ(snap::get_i64(r), std::numeric_limits<std::int64_t>::max());
  EXPECT_TRUE(snap::get_bool(r));
  const double negzero = snap::get_double(r);
  EXPECT_EQ(negzero, 0.0);
  EXPECT_TRUE(std::signbit(negzero));
  EXPECT_EQ(snap::get_double(r), 231.07142857142858);
  EXPECT_EQ(snap::get_long_double(r), 1.5L);
  EXPECT_EQ(snap::get_long_double(r), 0.0L);
  EXPECT_EQ(snap::get_long_double(r), -3.0e30L);
  std::vector<std::uint8_t> got;
  EXPECT_EQ(snap::get_bits(r, got), 20u);
  EXPECT_EQ(got.size(), 3u);
  EXPECT_EQ(got[0], 0xAB);
  EXPECT_EQ(got[1], 0xCD);
  EXPECT_EQ(got[2], 0x0F);
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(SnapshotContainer, RejectsGarbageAndTruncation) {
  BitWriter payload;
  payload.write_varuint(42);
  payload.write_varuint(1234567);
  std::stringstream stream;
  write_snapshot_container(stream, payload);
  const std::string bytes = stream.str();

  // Empty stream.
  {
    std::stringstream empty;
    EXPECT_THROW(read_snapshot_container(empty), SnapshotError);
  }
  // Truncation at every prefix length.
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    std::stringstream cut(bytes.substr(0, len));
    EXPECT_THROW(read_snapshot_container(cut), SnapshotError)
        << "truncated to " << len << " bytes";
  }
  // Every single-byte corruption is caught (magic, version, lengths, or
  // the payload hash).
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    std::string mutated = bytes;
    mutated[i] = static_cast<char>(mutated[i] ^ 0x5A);
    std::stringstream bad(mutated);
    EXPECT_THROW(read_snapshot_container(bad), SnapshotError)
        << "corrupt byte " << i;
  }
}

// ------------------------------------------------------ checkpoint files

TEST(CheckpointFiles, NamePadsRoundForLexicographicOrder) {
  EXPECT_EQ(checkpoint_file_name(42), "ckpt-000000000042.cbcsnap");
  EXPECT_LT(checkpoint_file_name(999), checkpoint_file_name(1000));
}

TEST(CheckpointFiles, WriteListLatestAndPrune) {
  TempDir dir("ckpt_files");
  BitWriter payload;
  payload.write_varuint(1);
  for (const std::uint64_t round : {10u, 20u, 30u, 40u}) {
    const std::string path =
        write_checkpoint_file(dir.str(), round, payload, /*keep_last=*/2);
    EXPECT_TRUE(fs::exists(path));
  }
  const auto listed = list_checkpoints(dir.str());
  ASSERT_EQ(listed.size(), 2u);  // pruned to the newest two
  EXPECT_NE(listed[0].find("ckpt-000000000030"), std::string::npos);
  EXPECT_NE(listed[1].find("ckpt-000000000040"), std::string::npos);
  const auto latest = latest_checkpoint(dir.str());
  ASSERT_TRUE(latest.has_value());
  EXPECT_EQ(*latest, listed[1]);
  // No temp files left behind by the atomic write-rename.
  for (const auto& entry : fs::directory_iterator(dir.str())) {
    EXPECT_NE(entry.path().extension(), ".tmp") << entry.path();
  }
  EXPECT_TRUE(list_checkpoints(dir.str() + "/missing").empty());
  EXPECT_FALSE(latest_checkpoint(dir.str() + "/missing").has_value());
}

// ------------------------------------------- bit-identity, fault matrix

TEST(SnapshotResume, BitIdenticalKarateFaultFree) {
  run_matrix("karate.txt", Variant{"seq", false, 1, false});
}

TEST(SnapshotResume, BitIdenticalKarateFaultFreeAllThreads) {
  run_matrix("karate.txt", Variant{"par", false, 0, false});
}

TEST(SnapshotResume, BitIdenticalKarateMixedFaults) {
  run_matrix("karate.txt", Variant{"faults_seq", true, 1, false});
}

TEST(SnapshotResume, BitIdenticalKarateMixedFaultsAllThreads) {
  run_matrix("karate.txt", Variant{"faults_par", true, 0, false});
}

TEST(SnapshotResume, BitIdenticalLesmisFaultFree) {
  run_matrix("lesmis.txt", Variant{"seq", false, 1, false});
}

TEST(SnapshotResume, BitIdenticalLesmisMixedFaultsAllThreads) {
  run_matrix("lesmis.txt", Variant{"faults_par", true, 0, false});
}

TEST(SnapshotResume, BitIdenticalLegacyEngine) {
  run_matrix("karate.txt", Variant{"legacy", false, 1, true});
}

TEST(SnapshotResume, BitIdenticalLegacyEngineMixedFaults) {
  run_matrix("karate.txt", Variant{"legacy_faults", true, 1, true});
}

/// The snapshot format is engine-independent: a snapshot written by the
/// zero-allocation engine resumes under the legacy engine (and vice
/// versa) with identical results.
TEST(SnapshotResume, CrossEngineResume) {
  const Graph g = load_data("karate.txt");
  TempDir dir("cross_engine");
  const Variant engine{"engine", false, 1, false};
  const Variant legacy{"legacy", false, 1, true};
  MessageTrace full_trace;
  const DistributedBcResult full = run_full(g, engine, full_trace);
  const std::uint64_t halt = full.rounds / 2;

  const std::string from_engine = (dir.path() / "engine.cbcsnap").string();
  MessageTrace t1;
  run_halted(g, engine, halt, from_engine, t1);
  MessageTrace t2;
  expect_identical_outputs(full, run_resumed(g, legacy, from_engine, t2));

  const std::string from_legacy = (dir.path() / "legacy.cbcsnap").string();
  MessageTrace t3;
  run_halted(g, legacy, halt, from_legacy, t3);
  MessageTrace t4;
  expect_identical_outputs(full, run_resumed(g, engine, from_legacy, t4));
}

/// Pins the PayloadArena corner: a message hit by a delay fault in round
/// r sits in the parking buffer (an *owning* copy of arena bytes) at the
/// round-(r+1) boundary.  Halting exactly there forces the snapshot to
/// carry the parked payload and the resumed run to re-deliver it.
TEST(SnapshotResume, DelayedMessageParkedAcrossBoundary) {
  const Graph g = load_data("karate.txt");
  TempDir dir("delay_boundary");
  const Variant v{"delay", true, 1, false};
  MessageTrace full_trace;
  const DistributedBcResult full = run_full(g, v, full_trace);
  ASSERT_GT(full.metrics.delayed_messages, 0u);
  std::uint64_t delay_round = 0;
  bool found = false;
  for (const FaultEvent& event : full_trace.fault_events()) {
    if (event.kind == FaultKind::kDelay && event.round + 1 < full.rounds) {
      delay_round = event.round;
      found = true;
      break;
    }
  }
  ASSERT_TRUE(found) << "plan injected no usable delay fault";
  check_boundary(g, v, full, full_trace, delay_round + 1,
                 (dir.path() / "parked.cbcsnap").string());
}

// ------------------------------------------------- validation & rejects

TEST(SnapshotResume, RejectsForeignSnapshot) {
  const Graph karate = load_data("karate.txt");
  const Graph lesmis = load_data("lesmis.txt");
  TempDir dir("rejects");
  const std::string file = (dir.path() / "karate.cbcsnap").string();
  MessageTrace trace;
  run_halted(karate, Variant{"seq", false, 1, false}, 20, file, trace);

  const auto load_into = [&](const Graph& g, NetworkConfig config) {
    Network net(g, config);
    std::ifstream in(file, std::ios::binary);
    ASSERT_TRUE(in.good());
    net.load_snapshot(in);
  };
  const std::uint64_t budget = congest_budget_bits(karate.num_nodes());

  // Wrong graph.
  EXPECT_THROW(load_into(lesmis, NetworkConfig{budget}), SnapshotError);
  // Wrong CONGEST budget.
  EXPECT_THROW(load_into(karate, NetworkConfig{budget + 1}), SnapshotError);
  // Wrong fault plan.
  {
    NetworkConfig config{budget};
    const FaultPlan plan = FaultPlan::uniform_drop(3, 0.1);
    config.faults = &plan;
    Network net(karate, config);
    std::ifstream in(file, std::ios::binary);
    EXPECT_THROW(net.load_snapshot(in), SnapshotError);
  }
  // Matching config is accepted.
  {
    Network net(karate, NetworkConfig{budget});
    std::ifstream in(file, std::ios::binary);
    net.load_snapshot(in);
  }
  // Missing file through the pipeline options.
  {
    DistributedBcOptions options;
    options.resume_from = (dir.path() / "nope.cbcsnap").string();
    EXPECT_THROW(run_distributed_bc(karate, options), SnapshotError);
  }
}

/// Structural fuzz past the container hash: re-hash a mutated payload so
/// it reaches the section parsers, which must reject or accept cleanly —
/// never crash (the ASan/TSan jobs run this test too).
TEST(SnapshotResume, MutatedPayloadNeverCrashes) {
  const Graph g = load_data("karate.txt");
  TempDir dir("fuzz");
  const std::string file = (dir.path() / "seed.cbcsnap").string();
  MessageTrace trace;
  run_halted(g, Variant{"seq", false, 1, false}, 25, file, trace);
  std::ifstream in(file, std::ios::binary);
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string bytes = buffer.str();
  // Container header: 8 magic + 4 version + 8 bits + 8 bytes + 8 hash.
  const std::size_t header = 36;
  const std::size_t payload_size = bytes.size() - header;
  ASSERT_GT(payload_size, 0u);

  Rng rng(99);
  int rejected = 0;
  for (int trial = 0; trial < 200; ++trial) {
    std::string mutated = bytes;
    const std::size_t pos =
        header + static_cast<std::size_t>(rng.next_below(payload_size));
    mutated[pos] = static_cast<char>(rng.next_u64() & 0xFF);
    // Recompute the container hash over the mutated payload so the
    // corruption reaches the field parsers.
    const std::uint64_t hash = fnv1a(
        reinterpret_cast<const std::uint8_t*>(mutated.data()) + header,
        payload_size);
    for (int b = 0; b < 8; ++b) {
      mutated[28 + static_cast<std::size_t>(b)] =
          static_cast<char>((hash >> (8 * b)) & 0xFF);
    }
    std::stringstream stream(mutated);
    Network net(g, NetworkConfig{congest_budget_bits(g.num_nodes())});
    try {
      net.load_snapshot(stream);
    } catch (const SnapshotError&) {
      ++rejected;  // the only permitted failure mode
    }
  }
  // Most random mutations must be caught by validation (a few may yield
  // a different-but-well-formed snapshot, which is fine).
  EXPECT_GT(rejected, 0);
}

TEST(SnapshotResume, SaveWithoutSuspensionThrows) {
  const Graph g = load_data("karate.txt");
  DistributedBcOptions options;
  BcRun run(g, options);
  run.run();
  EXPECT_FALSE(run.suspended());
  std::stringstream out;
  EXPECT_THROW(run.save_snapshot(out), SnapshotError);
}

TEST(SnapshotResume, WatchdogReportsSuspended) {
  const Graph g = load_data("karate.txt");
  DistributedBcOptions options;
  options.halt_at_round = 15;
  const RunOutcome outcome = run_bc_with_watchdog(g, options);
  EXPECT_EQ(outcome.status, RunStatus::kSuspended);
  EXPECT_FALSE(outcome.complete());
  EXPECT_TRUE(outcome.result.suspended);
  EXPECT_NE(outcome.summary().find("suspended"), std::string::npos);
}

// ------------------------------------------------- periodic checkpoints

/// Checkpoint policy on the checked-in 2000-node Barabási–Albert graph
/// (data/ba_2000.txt, generated by `congestbc_cli --generate ba --n 2000
/// --seed 1 --dump-graph`): checkpoints land every N rounds, pruning
/// keeps the newest K on disk, and resuming from the newest checkpoint
/// reproduces the uninterrupted run exactly.
TEST(SnapshotResume, PeriodicCheckpointsOnBa2000) {
  const Graph g = load_data("ba_2000.txt");
  ASSERT_EQ(g.num_nodes(), 2000u);
  TempDir dir("ba2000");

  DistributedBcOptions options;
  // Three sampled sources keep the runtime test-sized; the token still
  // walks all 2000 nodes, so the run is long enough for many boundaries.
  std::vector<bool> sources(g.num_nodes(), false);
  sources[0] = sources[700] = sources[1500] = true;
  options.sources = sources;
  options.threads = 0;
  const DistributedBcResult full = run_distributed_bc(g, options);
  ASSERT_GT(full.rounds, 3000u);

  DistributedBcOptions ckpt_options = options;
  ckpt_options.checkpoint_every = 1024;
  ckpt_options.checkpoint_dir = dir.str();
  ckpt_options.checkpoint_keep_last = 2;
  const DistributedBcResult with_ckpts =
      run_distributed_bc(g, ckpt_options);
  expect_identical_outputs(full, with_ckpts);
  EXPECT_GE(with_ckpts.checkpoints.size(), 3u);  // paths as written
  const auto on_disk = list_checkpoints(dir.str());
  ASSERT_EQ(on_disk.size(), 2u);  // pruned to keep_last

  DistributedBcOptions resume_options = options;
  resume_options.resume_from = on_disk.back();
  const DistributedBcResult resumed =
      run_distributed_bc(g, resume_options);
  ASSERT_TRUE(resumed.resumed_from_round.has_value());
  expect_identical_outputs(full, resumed);
}

// --------------------------------------------------------- CLI e2e kill

int run_cli(const std::string& args, const std::string& stdout_file) {
  const std::string cmd = std::string(CONGESTBC_CLI_PATH) + " " + args +
                          " > " + stdout_file + " 2>&1";
  const int status = std::system(cmd.c_str());
  return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

std::vector<std::string> result_lines(const std::string& file) {
  std::ifstream in(file);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) {
    // Keep the result table and the outcome line; drop lineage lines
    // (present only on the resumed run) and checkpoint paths.
    if (line.rfind("resumed from round", 0) == 0 ||
        line.rfind("checkpoint:", 0) == 0) {
      continue;
    }
    lines.push_back(line);
  }
  return lines;
}

TEST(SnapshotCli, KillAndResumeEndToEnd) {
  TempDir dir("cli");
  const std::string karate = std::string(CONGESTBC_DATA_DIR) + "/karate.txt";
  const std::string full_out = (dir.path() / "full.txt").string();
  const std::string halted_out = (dir.path() / "halted.txt").string();
  const std::string resumed_out = (dir.path() / "resumed.txt").string();
  const std::string ckpt_dir = (dir.path() / "ckpts").string();

  // Uninterrupted reference through the same (watchdogged) code path: a
  // halt round beyond the run length never fires.
  ASSERT_EQ(run_cli(karate + " --all --halt-at-round 99999999", full_out), 0);
  // "Kill": suspend at round 40; exit code 3 marks a resumable stop.
  ASSERT_EQ(run_cli(karate + " --all --halt-at-round 40 --checkpoint-dir " +
                        ckpt_dir,
                    halted_out),
            3);
  const auto latest = latest_checkpoint(ckpt_dir);
  ASSERT_TRUE(latest.has_value());
  // Resume from the written snapshot; the report must match the
  // uninterrupted run line for line.
  ASSERT_EQ(run_cli(karate + " --all --resume " + *latest, resumed_out), 0);
  EXPECT_EQ(result_lines(full_out), result_lines(resumed_out));
}

}  // namespace
}  // namespace congestbc
