// Observability layer (src/obs): unit tests for the flight recorder,
// scoped spans, histograms, phase profiles, and the exporters — plus the
// contract that matters most: recording is pure observation, so results,
// metrics, and message traces are bit-identical with the recorder on or
// off, on both engines, at every thread count.
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "algo/bc_pipeline.hpp"
#include "congest/trace.hpp"
#include "graph/generators.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/histogram.hpp"
#include "obs/phase_profile.hpp"
#include "obs/prom_text.hpp"
#include "obs/recorder.hpp"
#include "obs/span.hpp"

namespace congestbc {
namespace {

// ---------------------------------------------------------------------
// FlightRecorder

TEST(FlightRecorderTest, RecordsAndSnapshotsInOrder) {
  obs::FlightRecorder recorder(8);
  for (std::uint64_t i = 0; i < 5; ++i) {
    recorder.record(obs::Phase::kNodeExecute, i, 0, 100 * i, 10);
  }
  EXPECT_EQ(recorder.recorded(), 5u);
  EXPECT_EQ(recorder.dropped(), 0u);
  const auto events = recorder.snapshot();
  ASSERT_EQ(events.size(), 5u);
  for (std::uint64_t i = 0; i < 5; ++i) {
    EXPECT_EQ(events[i].round, i);
    EXPECT_EQ(events[i].start_ns, 100 * i);
    EXPECT_EQ(events[i].duration_ns, 10u);
    EXPECT_EQ(events[i].phase, obs::Phase::kNodeExecute);
  }
}

TEST(FlightRecorderTest, WrapsKeepingNewest) {
  obs::FlightRecorder recorder(4);
  for (std::uint64_t i = 0; i < 10; ++i) {
    recorder.record(obs::Phase::kMerge, i, 0, i, 1);
  }
  EXPECT_EQ(recorder.recorded(), 10u);
  EXPECT_EQ(recorder.dropped(), 6u);
  const auto events = recorder.snapshot();
  ASSERT_EQ(events.size(), 4u);
  // Oldest-first among the survivors: rounds 6, 7, 8, 9.
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(events[i].round, 6 + i);
  }
}

TEST(FlightRecorderTest, ClearResets) {
  obs::FlightRecorder recorder(4);
  recorder.record(obs::Phase::kRound, 1, 0, 0, 1);
  recorder.clear();
  EXPECT_EQ(recorder.recorded(), 0u);
  EXPECT_TRUE(recorder.snapshot().empty());
}

TEST(FlightRecorderTest, ConcurrentWritersAreSafe) {
  // Lanes hammer the ring concurrently; the test asserts no crashes/races
  // (run under TSan via scripts/check_sanitized.sh) and a full ring.
  obs::FlightRecorder recorder(1 << 10);
  std::vector<std::thread> writers;
  for (unsigned lane = 0; lane < 4; ++lane) {
    writers.emplace_back([&recorder, lane] {
      for (std::uint64_t i = 0; i < 5000; ++i) {
        recorder.record(obs::Phase::kNodeExecute, i, lane, i, 1);
      }
    });
  }
  for (auto& w : writers) {
    w.join();
  }
  EXPECT_EQ(recorder.recorded(), 20000u);
  EXPECT_EQ(recorder.snapshot().size(), recorder.capacity());
}

TEST(ScopedSpanTest, NullRecorderIsNoop) {
  obs::ScopedSpan span(nullptr, obs::Phase::kMerge, 1);
  // Nothing to assert beyond "does not crash"; the disabled-build variant
  // compiles to the same no-op.
}

TEST(ScopedSpanTest, RecordsOnDestruction) {
  obs::FlightRecorder recorder(8);
  {
    obs::ScopedSpan span(&recorder, obs::Phase::kTreeBuild, 7, 3);
  }
#if !defined(CONGESTBC_OBS_DISABLED)
  const auto events = recorder.snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].phase, obs::Phase::kTreeBuild);
  EXPECT_EQ(events[0].round, 7u);
  EXPECT_EQ(events[0].lane, 3u);
#endif
}

TEST(PhaseTest, NamesAreStable) {
  EXPECT_STREQ(obs::phase_name(obs::Phase::kCrashBookkeeping),
               "crash_bookkeeping");
  EXPECT_STREQ(obs::phase_name(obs::Phase::kNodeExecute), "node_execute");
  EXPECT_STREQ(obs::phase_name(obs::Phase::kDelayedRelease),
               "delayed_release");
  EXPECT_STREQ(obs::phase_name(obs::Phase::kMerge), "merge");
  EXPECT_STREQ(obs::phase_name(obs::Phase::kRound), "round");
  EXPECT_STREQ(obs::phase_name(obs::Phase::kActiveSetBuild),
               "active_set_build");
  EXPECT_STREQ(obs::phase_name(obs::Phase::kLaneDispatch), "lane_dispatch");
  EXPECT_STREQ(obs::phase_name(obs::Phase::kQuiescenceSkip),
               "quiescence_skip");
}

// ---------------------------------------------------------------------
// Histogram

TEST(HistogramTest, PowerOfTwoBuckets) {
  obs::Histogram h;
  h.add(0);
  h.add(1);
  h.add(2);
  h.add(3);
  h.add(1024);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.sum(), 1030u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 1024u);
  EXPECT_EQ(h.bucket(0), 2u);   // values <= 1
  EXPECT_EQ(h.bucket(1), 1u);   // 2
  EXPECT_EQ(h.bucket(2), 1u);   // 3..4
  EXPECT_EQ(h.bucket(10), 1u);  // 513..1024
  EXPECT_EQ(h.upper_bound(10), 1024u);
}

TEST(HistogramTest, MergeAddsCounts) {
  obs::Histogram a;
  obs::Histogram b;
  a.add(5);
  b.add(7);
  b.add(100);
  a.merge(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_EQ(a.sum(), 112u);
  EXPECT_EQ(a.max(), 100u);
}

// ---------------------------------------------------------------------
// Phase profile

TEST(PhaseProfileTest, FormatTimeline) {
  std::vector<obs::PhaseStats> phases(2);
  phases[0].name = "tree_build";
  phases[0].begin_round = 0;
  phases[0].end_round = 5;
  phases[0].rounds = 5;
  phases[0].physical_messages = 13;
  phases[0].bits = 112;
  phases[1].name = "counting";
  phases[1].begin_round = 5;
  phases[1].end_round = 22;
  phases[1].rounds = 17;
  phases[1].physical_messages = 49;
  phases[1].bits = 1994;
  EXPECT_EQ(obs::format_phase_timeline(phases),
            "tree_build:[0,5) msgs=13 bits=112; "
            "counting:[5,22) msgs=49 bits=1994");
  EXPECT_EQ(obs::format_phase_timeline({}), "");
}

TEST(PhaseProfileTest, PipelinePhasesPartitionTheRun) {
  Rng rng(42);
  const Graph g = gen::erdos_renyi_connected(32, 0.15, rng);
  const auto result = run_distributed_bc(g);
  ASSERT_GE(result.phase_profile.size(), 2u);
  // Contiguous, ordered, covering [0, rounds).
  EXPECT_EQ(result.phase_profile.front().begin_round, 0u);
  EXPECT_EQ(result.phase_profile.back().end_round, result.rounds);
  std::uint64_t bits = 0;
  for (std::size_t i = 0; i < result.phase_profile.size(); ++i) {
    if (i > 0) {
      EXPECT_EQ(result.phase_profile[i].begin_round,
                result.phase_profile[i - 1].end_round);
    }
    bits += result.phase_profile[i].bits;
  }
  // The per-phase traffic sums recompose the run totals.
  EXPECT_EQ(bits, result.metrics.total_bits);
}

// ---------------------------------------------------------------------
// Exporters

TEST(ChromeTraceTest, EmitsSchemaFields) {
  obs::FlightRecorder recorder(16);
  recorder.record(obs::Phase::kNodeExecute, 3, 1, 1000, 500);
  std::vector<obs::CounterSeries> counters(1);
  counters[0].name = "bits_on_wire";
  counters[0].first_round = 0;
  counters[0].values = {10, 20, 30};
  std::vector<obs::TraceInstant> instants{{"wave s=0", 2}};
  std::vector<obs::PhaseStats> phases(1);
  phases[0].name = "tree_build";
  phases[0].end_round = 4;
  phases[0].rounds = 4;
  const std::string json =
      obs::chrome_trace_json(&recorder, phases, counters, instants, {});
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);  // spans
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);  // counters
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);  // instants
  EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos);  // metadata
  EXPECT_NE(json.find("node_execute"), std::string::npos);
  EXPECT_NE(json.find("bits_on_wire"), std::string::npos);
}

TEST(ChromeTraceTest, DeterministicWithoutRecorderSpans) {
  std::vector<obs::PhaseStats> phases(1);
  phases[0].name = "counting";
  phases[0].begin_round = 2;
  phases[0].end_round = 9;
  phases[0].rounds = 7;
  obs::ChromeTraceOptions options;
  options.include_recorder_spans = false;
  const std::string a = obs::chrome_trace_json(nullptr, phases, {}, {}, options);
  const std::string b = obs::chrome_trace_json(nullptr, phases, {}, {}, options);
  EXPECT_EQ(a, b);
  EXPECT_NE(a.find("counting"), std::string::npos);
}

TEST(ChromeTraceTest, DownsamplesCounters) {
  std::vector<obs::CounterSeries> counters(1);
  counters[0].name = "messages";
  counters[0].values.assign(10000, 1);
  obs::ChromeTraceOptions options;
  options.include_recorder_spans = false;
  options.max_counter_samples = 100;
  const std::string json =
      obs::chrome_trace_json(nullptr, {}, counters, {}, options);
  // Stride 100 over 10000 samples: at most ~101 counter events.
  std::size_t events = 0;
  for (std::size_t pos = json.find("\"ph\":\"C\""); pos != std::string::npos;
       pos = json.find("\"ph\":\"C\"", pos + 1)) {
    ++events;
  }
  EXPECT_LE(events, 101u);
  EXPECT_GE(events, 90u);
}

TEST(PromTextTest, RendersAllMetricKinds) {
  obs::PromWriter out;
  out.counter("x_total", "things", 42);
  out.gauge("depth", "current depth", 3.5);
  obs::Histogram h;
  h.add(1);
  h.add(300);
  out.histogram("latency_ms", "latency", h);
  const std::string text = out.str();
  EXPECT_NE(text.find("# HELP x_total things"), std::string::npos);
  EXPECT_NE(text.find("# TYPE x_total counter"), std::string::npos);
  EXPECT_NE(text.find("x_total 42"), std::string::npos);
  EXPECT_NE(text.find("depth 3.5"), std::string::npos);
  EXPECT_NE(text.find("# TYPE latency_ms histogram"), std::string::npos);
  EXPECT_NE(text.find("latency_ms_bucket{le=\"1\"} 1"), std::string::npos);
  EXPECT_NE(text.find("latency_ms_bucket{le=\"+Inf\"} 2"), std::string::npos);
  EXPECT_NE(text.find("latency_ms_sum 301"), std::string::npos);
  EXPECT_NE(text.find("latency_ms_count 2"), std::string::npos);
  // Cumulative: the 512 bucket includes the earlier value.
  EXPECT_NE(text.find("latency_ms_bucket{le=\"512\"} 2"), std::string::npos);
}

// ---------------------------------------------------------------------
// The determinism contract: recording never influences execution.

struct EngineMode {
  const char* name;
  EngineKind engine;
  unsigned threads;
};

class ObsBitIdentity : public ::testing::TestWithParam<EngineMode> {};

TEST_P(ObsBitIdentity, RecorderOnOffIsBitIdentical) {
  const EngineMode mode = GetParam();
  Rng rng(7);
  const Graph g = gen::erdos_renyi_connected(40, 0.12, rng);

  const auto run_once = [&](obs::FlightRecorder* recorder,
                            MessageTrace* trace) {
    DistributedBcOptions options;
    options.engine = mode.engine;
    options.threads = mode.threads;
    // Force the frontier engine's multi-lane dispatch even on a
    // single-core host, so the recorder hooks in the parallel path run.
    options.frontier_clamp_lanes = false;
    options.frontier_min_parallel_nodes = 1;
    options.keep_tables = true;
    options.recorder = recorder;
    options.trace = trace;
    return run_distributed_bc(g, options);
  };

  MessageTrace trace_off;
  MessageTrace trace_on;
  obs::FlightRecorder recorder;
  const auto off = run_once(nullptr, &trace_off);
  const auto on = run_once(&recorder, &trace_on);

  // Results: bit-identical doubles, not just close.
  ASSERT_EQ(on.betweenness.size(), off.betweenness.size());
  EXPECT_EQ(std::memcmp(on.betweenness.data(), off.betweenness.data(),
                        off.betweenness.size() * sizeof(double)),
            0);
  EXPECT_EQ(std::memcmp(on.closeness.data(), off.closeness.data(),
                        off.closeness.size() * sizeof(double)),
            0);
  EXPECT_EQ(on.rounds, off.rounds);
  EXPECT_EQ(on.aggregation_epoch, off.aggregation_epoch);
  EXPECT_EQ(on.metrics, off.metrics);
  EXPECT_EQ(on.phase_profile, off.phase_profile);
  EXPECT_EQ(trace_on.events(), trace_off.events());

#if !defined(CONGESTBC_OBS_DISABLED)
  // And the recorder did actually observe the run.
  EXPECT_GT(recorder.recorded(), 0u);
#endif
}

INSTANTIATE_TEST_SUITE_P(
    Engines, ObsBitIdentity,
    ::testing::Values(EngineMode{"arena_t1", EngineKind::kArena, 1},
                      EngineMode{"arena_tall", EngineKind::kArena, 0},
                      EngineMode{"legacy", EngineKind::kLegacy, 1},
                      EngineMode{"frontier_t1", EngineKind::kFrontier, 1},
                      EngineMode{"frontier_t4", EngineKind::kFrontier, 4}),
    [](const ::testing::TestParamInfo<EngineMode>& param_info) {
      return std::string(param_info.param.name);
    });

// The frontier engine must narrate its new phases to the recorder: the
// active-set build and the per-lane dispatch every executed round, and
// quiescence skips whenever the run has fully idle stretches (the
// staggered BFS/aggregation schedule always has some).  The spans then
// flow into the Chrome trace export like any other phase.
TEST(FrontierSpans, NewPhasesAreRecorded) {
  Rng rng(7);
  const Graph g = gen::erdos_renyi_connected(40, 0.12, rng);
  obs::FlightRecorder recorder(1 << 18);
  DistributedBcOptions options;
  options.engine = EngineKind::kFrontier;
  options.threads = 2;
  options.frontier_clamp_lanes = false;
  options.frontier_min_parallel_nodes = 1;
  options.recorder = &recorder;
  run_distributed_bc(g, options);

#if !defined(CONGESTBC_OBS_DISABLED)
  std::size_t active_builds = 0;
  std::size_t lane_dispatches = 0;
  std::size_t quiescence_skips = 0;
  for (const auto& event : recorder.snapshot()) {
    switch (event.phase) {
      case obs::Phase::kActiveSetBuild:
        ++active_builds;
        break;
      case obs::Phase::kLaneDispatch:
        ++lane_dispatches;
        break;
      case obs::Phase::kQuiescenceSkip:
        ++quiescence_skips;
        break;
      default:
        break;
    }
  }
  EXPECT_GT(active_builds, 0u);
  EXPECT_GT(lane_dispatches, 0u);
  EXPECT_GT(quiescence_skips, 0u);

  // And the exporter renders them under their stable names.
  obs::ChromeTraceOptions trace_options;
  const std::string json = obs::chrome_trace_json(
      &recorder, {}, {}, {}, trace_options);
  EXPECT_NE(json.find("active_set_build"), std::string::npos);
  EXPECT_NE(json.find("lane_dispatch"), std::string::npos);
  EXPECT_NE(json.find("quiescence_skip"), std::string::npos);
#endif
}

}  // namespace
}  // namespace congestbc
