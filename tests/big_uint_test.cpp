#include "bignum/big_uint.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/assert.hpp"
#include "common/int128.hpp"
#include "common/rng.hpp"

namespace congestbc {
namespace {

TEST(BigUint, DefaultIsZero) {
  BigUint zero;
  EXPECT_TRUE(zero.is_zero());
  EXPECT_EQ(zero.bit_length(), 0u);
  EXPECT_EQ(zero.to_decimal(), "0");
  EXPECT_EQ(zero.to_double(), 0.0);
}

TEST(BigUint, SmallValues) {
  BigUint one(1);
  EXPECT_FALSE(one.is_zero());
  EXPECT_EQ(one.bit_length(), 1u);
  EXPECT_EQ(one.to_u64(), 1u);
  EXPECT_EQ(one.to_decimal(), "1");

  BigUint big(UINT64_MAX);
  EXPECT_EQ(big.bit_length(), 64u);
  EXPECT_EQ(big.to_decimal(), "18446744073709551615");
}

TEST(BigUint, AdditionWithCarry) {
  BigUint a(UINT64_MAX);
  a += BigUint(1);
  EXPECT_EQ(a.bit_length(), 65u);
  EXPECT_FALSE(a.fits_u64());
  EXPECT_EQ(a.to_decimal(), "18446744073709551616");
}

TEST(BigUint, AdditionCommutes) {
  Rng rng(1);
  for (int trial = 0; trial < 100; ++trial) {
    BigUint a(rng.next_u64());
    BigUint b(rng.next_u64());
    a <<= rng.next_below(100);
    b <<= rng.next_below(100);
    EXPECT_EQ(a + b, b + a);
  }
}

TEST(BigUint, SubtractionInverse) {
  Rng rng(2);
  for (int trial = 0; trial < 100; ++trial) {
    BigUint a(rng.next_u64());
    BigUint b(rng.next_u64());
    a <<= rng.next_below(80);
    const BigUint sum = a + b;
    EXPECT_EQ(sum - b, a);
    EXPECT_EQ(sum - a, b);
  }
}

TEST(BigUint, SubtractionUnderflowThrows) {
  BigUint small(3);
  BigUint large(4);
  EXPECT_THROW(small -= large, PreconditionError);
}

TEST(BigUint, MultiplicationMatchesU128) {
  Rng rng(3);
  for (int trial = 0; trial < 200; ++trial) {
    const std::uint64_t a = rng.next_u64();
    const std::uint64_t b = rng.next_u64();
    const uint128_t p = static_cast<uint128_t>(a) * b;
    BigUint product = BigUint(a) * BigUint(b);
    BigUint expected(static_cast<std::uint64_t>(p));
    BigUint hi(static_cast<std::uint64_t>(p >> 64));
    expected += hi << 64;
    EXPECT_EQ(product, expected);
  }
}

TEST(BigUint, MultiplicationByZero) {
  BigUint a(12345);
  a <<= 200;
  EXPECT_TRUE((a * BigUint()).is_zero());
  EXPECT_TRUE((BigUint() * a).is_zero());
}

TEST(BigUint, PowerOfTwo) {
  const BigUint p = BigUint::pow2(130);
  EXPECT_EQ(p.bit_length(), 131u);
  EXPECT_TRUE(p.bit(130));
  EXPECT_FALSE(p.bit(129));
  EXPECT_FALSE(p.bit(131));
}

TEST(BigUint, ShiftsRoundTrip) {
  Rng rng(4);
  for (int trial = 0; trial < 100; ++trial) {
    BigUint a(rng.next_u64() | 1);
    const std::size_t shift = rng.next_below(300);
    EXPECT_EQ((a << shift) >> shift, a);
  }
}

TEST(BigUint, ShiftRightDropsBits) {
  BigUint a(0b1011);
  EXPECT_EQ((a >> 1).to_u64(), 0b101u);
  EXPECT_EQ((a >> 4).to_u64(), 0u);
}

TEST(BigUint, CompareOrdering) {
  BigUint a(5);
  BigUint b = BigUint(5) << 64;
  BigUint c = b + BigUint(1);
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);
  EXPECT_LE(a, a);
  EXPECT_GT(c, a);
  EXPECT_NE(a, b);
  EXPECT_EQ(a, BigUint(5));
}

TEST(BigUint, DivModSmall) {
  BigUint a = BigUint::from_decimal("123456789012345678901234567890");
  const std::uint64_t rem = a.div_mod_small(1000000007);
  // Cross-checked with Python: divmod(123456789012345678901234567890, 1000000007)
  EXPECT_EQ(a.to_decimal(), "123456788148148161864");
  EXPECT_EQ(rem, 197434842u);
}

TEST(BigUint, DecimalRoundTrip) {
  const std::string cases[] = {
      "0", "1", "9", "10", "18446744073709551615", "18446744073709551616",
      "340282366920938463463374607431768211456",
      "99999999999999999999999999999999999999999999"};
  for (const auto& text : cases) {
    EXPECT_EQ(BigUint::from_decimal(text).to_decimal(), text);
  }
}

TEST(BigUint, FromDecimalRejectsGarbage) {
  EXPECT_THROW(BigUint::from_decimal(""), PreconditionError);
  EXPECT_THROW(BigUint::from_decimal("12a3"), PreconditionError);
  EXPECT_THROW(BigUint::from_decimal("-5"), PreconditionError);
}

TEST(BigUint, ToDoubleAccuracy) {
  Rng rng(5);
  for (int trial = 0; trial < 100; ++trial) {
    const std::uint64_t v = rng.next_u64() >> 11;  // exactly representable
    EXPECT_EQ(BigUint(v).to_double(), static_cast<double>(v));
  }
  // 2^100 is exactly representable in double.
  EXPECT_EQ(BigUint::pow2(100).to_double(), std::ldexp(1.0, 100));
}

TEST(BigUint, FrexpNormalization) {
  const auto [y, e] = BigUint::pow2(200).frexp();
  EXPECT_DOUBLE_EQ(y, 0.5);
  EXPECT_EQ(e, 201);

  const auto [y2, e2] = BigUint(3).frexp();
  EXPECT_DOUBLE_EQ(y2, 0.75);
  EXPECT_EQ(e2, 2);
}

TEST(BigUint, FibonacciMatchesKnownValue) {
  // A little integration exercise: F(300) has a well-known decimal value.
  BigUint a(0);
  BigUint b(1);
  for (int i = 0; i < 300; ++i) {
    BigUint next = a + b;
    a = b;
    b = std::move(next);
  }
  EXPECT_EQ(a.to_decimal(),
            "222232244629420445529739893461909967206666939096499764990979600");
}

TEST(BigUint, FactorialBitLengths) {
  BigUint fact(1);
  for (std::uint64_t i = 2; i <= 100; ++i) {
    fact *= BigUint(i);
  }
  // 100! has 525 bits and ends in lots of zeros.
  EXPECT_EQ(fact.bit_length(), 525u);
  const std::string dec = fact.to_decimal();
  EXPECT_EQ(dec.size(), 158u);
  EXPECT_EQ(dec.substr(dec.size() - 24), "000000000000000000000000");
}

}  // namespace
}  // namespace congestbc
