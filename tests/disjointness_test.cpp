// The Theorem 5/6 reductions, end to end: deciding sparse set
// disjointness by running the distributed algorithms on the gadgets.
#include <gtest/gtest.h>

#include "algo/disjointness.hpp"
#include "common/rng.hpp"

namespace congestbc {
namespace {

using lb::decide_disjointness_via_betweenness;
using lb::decide_disjointness_via_diameter;
using lb::SetFamily;

std::pair<SetFamily, SetFamily> instance(std::uint64_t seed, std::size_t n,
                                         unsigned m, bool plant_match) {
  Rng rng(seed);
  SetFamily x = SetFamily::random(n, m, rng);
  std::vector<std::uint64_t> ysets;
  while (ysets.size() < n) {
    const std::uint64_t mask = SetFamily::unrank_subset(
        m, rng.next_below(lb::binomial(m, m / 2)));
    bool clash = false;
    for (std::size_t i = 0; i < n; ++i) {
      clash = clash || mask == x.set_mask(i);
    }
    for (const auto existing : ysets) {
      clash = clash || mask == existing;
    }
    if (!clash) {
      ysets.push_back(mask);
    }
  }
  if (plant_match) {
    ysets.back() = x.set_mask(0);
  }
  return {std::move(x), SetFamily(m, std::move(ysets))};
}

class DisjointnessSweep
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, bool>> {};

TEST_P(DisjointnessSweep, BothReductionsDecideCorrectly) {
  const auto [seed, plant_match] = GetParam();
  const auto [x, y] = instance(seed, 4, 6, plant_match);
  const bool truly_disjoint = !SetFamily::families_intersect(x, y);
  ASSERT_EQ(truly_disjoint, !plant_match);

  const auto via_diameter = decide_disjointness_via_diameter(x, y);
  EXPECT_EQ(via_diameter.disjoint, truly_disjoint) << "diameter reduction";
  EXPECT_GT(via_diameter.cut_bits, 0u);

  const auto via_bc = decide_disjointness_via_betweenness(x, y);
  EXPECT_EQ(via_bc.disjoint, truly_disjoint) << "betweenness reduction";
  EXPECT_GT(via_bc.cut_bits, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Instances, DisjointnessSweep,
    ::testing::Combine(::testing::Values<std::uint64_t>(1, 2, 3, 4),
                       ::testing::Bool()));

TEST(Disjointness, CommunicationGrowsWithFamilySize) {
  // Theorem 5/6 charge Omega(n log n) bits over the cut; our (exact)
  // protocol's cut traffic must grow at least that fast.
  std::uint64_t previous = 0;
  for (const std::size_t n : {2u, 4u, 8u}) {
    const auto [x, y] = instance(42 + n, n, lb::min_universe_for(n), false);
    const auto result = decide_disjointness_via_diameter(x, y);
    EXPECT_GT(result.cut_bits, previous);
    previous = result.cut_bits;
  }
}

TEST(Disjointness, DiameterReductionIsCheaperPerNode) {
  // The diameter decision only needs the counting phase, so it spends
  // fewer rounds per gadget node than the full-pipeline BC decision.
  const auto [x, y] = instance(7, 4, 6, false);
  const auto via_diameter = decide_disjointness_via_diameter(x, y);
  const auto via_bc = decide_disjointness_via_betweenness(x, y);
  const double diameter_per_node =
      static_cast<double>(via_diameter.rounds) / via_diameter.gadget_nodes;
  const double bc_per_node =
      static_cast<double>(via_bc.rounds) / via_bc.gadget_nodes;
  EXPECT_LT(diameter_per_node, bc_per_node);
}

}  // namespace
}  // namespace congestbc
