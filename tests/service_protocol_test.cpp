// Wire-protocol tests for the serving daemon (src/service/protocol.hpp).
//
// Two halves: (1) round-trip fidelity — every request/reply type and the
// result block survive encode → frame → deframe → decode bit-exactly;
// (2) the robustness contract — truncated, oversized, bit-flipped, or
// outright garbage byte streams always produce a typed ProtocolError (or
// a clean "need more bytes"), never a crash, hang, unbounded allocation,
// or out-of-bounds read.  The fuzz loops here are what the sanitizer
// stages of scripts/check_sanitized.sh lean on.
#include <cstdint>
#include <cstring>
#include <limits>
#include <optional>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "gtest/gtest.h"
#include "service/protocol.hpp"

namespace congestbc::service {
namespace {

std::vector<std::uint8_t> frame_of(const Request& request) {
  return frame_bytes(encode_request(request));
}

/// Feeds a byte stream and drains every decodable frame, classifying the
/// outcome: decoded requests, a typed protocol error, or "needs more".
struct DrainResult {
  std::vector<Request> requests;
  std::optional<ProtoError> error;
};

DrainResult drain(const std::vector<std::uint8_t>& bytes,
                  std::size_t chunk = SIZE_MAX) {
  DrainResult result;
  FrameDecoder decoder;
  std::size_t offset = 0;
  try {
    while (offset < bytes.size()) {
      const std::size_t take = std::min(chunk, bytes.size() - offset);
      decoder.feed(bytes.data() + offset, take);
      offset += take;
      while (auto frame = decoder.next()) {
        result.requests.push_back(decode_request(*frame));
      }
    }
  } catch (const ProtocolError& e) {
    result.error = e.code();
  }
  return result;
}

SubmitRequest sample_submit() {
  SubmitRequest submit;
  submit.source = GraphSource::kInline;
  submit.graph = "# toy\n3 2\n0 1\n1 2\n";
  submit.halve = false;
  submit.reliable = true;
  submit.faults = "drop=0.1,seed=7";
  submit.max_rounds = 123456789;
  submit.threads = 4;
  submit.legacy_engine = true;
  return submit;
}

TEST(ProtocolRoundTrip, SubmitRequest) {
  const Request original = make_submit(sample_submit());
  const DrainResult result = drain(frame_of(original));
  ASSERT_FALSE(result.error.has_value());
  ASSERT_EQ(result.requests.size(), 1u);
  const SubmitRequest& decoded = result.requests[0].submit;
  EXPECT_EQ(decoded.source, original.submit.source);
  EXPECT_EQ(decoded.graph, original.submit.graph);
  EXPECT_EQ(decoded.halve, original.submit.halve);
  EXPECT_EQ(decoded.reliable, original.submit.reliable);
  EXPECT_EQ(decoded.faults, original.submit.faults);
  EXPECT_EQ(decoded.max_rounds, original.submit.max_rounds);
  EXPECT_EQ(decoded.threads, original.submit.threads);
  EXPECT_EQ(decoded.legacy_engine, original.submit.legacy_engine);
}

TEST(ProtocolRoundTrip, PortfolioSubmitFieldsSurviveV5) {
  SubmitRequest submit = sample_submit();
  submit.reliable = false;  // cfp/directed submits carry no transport knobs
  submit.faults.clear();
  submit.backend = 4;  // sampled
  submit.samples = 123;
  submit.sample_seed = 0xfeedface12345678ull;
  const Request original = make_submit(submit);
  const DrainResult result = drain(frame_of(original));
  ASSERT_FALSE(result.error.has_value());
  ASSERT_EQ(result.requests.size(), 1u);
  const SubmitRequest& decoded = result.requests[0].submit;
  EXPECT_EQ(decoded.backend, 4);
  EXPECT_EQ(decoded.samples, 123u);
  EXPECT_EQ(decoded.sample_seed, 0xfeedface12345678ull);

  // The wire default is paper_exact, not auto: a v5 client that never
  // touches the field gets the pre-portfolio behavior.
  const SubmitRequest untouched;
  EXPECT_EQ(untouched.backend, 1);
  EXPECT_EQ(untouched.samples, 0u);
  EXPECT_EQ(untouched.sample_seed, 0u);
}

TEST(ProtocolRoundTrip, SubmitReplyCarriesResolvedBackendAndDowngrade) {
  Reply reply;
  reply.type = MsgType::kSubmitReply;
  reply.submit = {SubmitDisposition::kQueued, 7, 0xabcd, "queued"};
  reply.submit.backend = 4;
  reply.submit.downgraded = true;
  FrameDecoder decoder;
  const auto bytes = frame_bytes(encode_reply(reply));
  decoder.feed(bytes.data(), bytes.size());
  const auto frame = decoder.next();
  ASSERT_TRUE(frame.has_value());
  const Reply decoded = decode_reply(*frame);
  EXPECT_EQ(decoded.submit.backend, 4);
  EXPECT_TRUE(decoded.submit.downgraded);

  Reply stats;
  stats.type = MsgType::kStatsReply;
  stats.stats.backend_downgrades = 0x1122334455ull;
  const auto stats_bytes = frame_bytes(encode_reply(stats));
  decoder.feed(stats_bytes.data(), stats_bytes.size());
  const auto stats_frame = decoder.next();
  ASSERT_TRUE(stats_frame.has_value());
  EXPECT_EQ(decode_reply(*stats_frame).stats.backend_downgrades,
            0x1122334455ull);
}

TEST(ProtocolRoundTrip, JobAndPlainRequests) {
  for (const MsgType type :
       {MsgType::kStatus, MsgType::kResult, MsgType::kCancel}) {
    const Request original = make_job_request(type, 0xdeadbeefcafe1234ull);
    const DrainResult result = drain(frame_of(original));
    ASSERT_FALSE(result.error.has_value());
    ASSERT_EQ(result.requests.size(), 1u);
    EXPECT_EQ(result.requests[0].type, type);
    EXPECT_EQ(result.requests[0].job.job_id, 0xdeadbeefcafe1234ull);
  }
  for (const MsgType type : {MsgType::kStats, MsgType::kShutdown}) {
    const DrainResult result = drain(frame_of(make_plain(type)));
    ASSERT_FALSE(result.error.has_value());
    ASSERT_EQ(result.requests.size(), 1u);
    EXPECT_EQ(result.requests[0].type, type);
  }
}

TEST(ProtocolRoundTrip, EveryReplyType) {
  Reply reply;
  reply.type = MsgType::kSubmitReply;
  reply.submit = {SubmitDisposition::kCoalesced, 42, 0x1234, "shared"};
  FrameDecoder decoder;
  const auto bytes = frame_bytes(encode_reply(reply));
  decoder.feed(bytes.data(), bytes.size());
  const auto frame = decoder.next();
  ASSERT_TRUE(frame.has_value());
  const Reply decoded = decode_reply(*frame);
  EXPECT_EQ(decoded.type, MsgType::kSubmitReply);
  EXPECT_EQ(decoded.submit.disposition, SubmitDisposition::kCoalesced);
  EXPECT_EQ(decoded.submit.job_id, 42u);
  EXPECT_EQ(decoded.submit.fingerprint, 0x1234u);
  EXPECT_EQ(decoded.submit.detail, "shared");

  Reply stats;
  stats.type = MsgType::kStatsReply;
  stats.stats.submits = 7;
  stats.stats.qps = 3.25;
  stats.stats.latency_p99_ms = 17.5;
  const auto stats_bytes = frame_bytes(encode_reply(stats));
  decoder.feed(stats_bytes.data(), stats_bytes.size());
  const auto stats_frame = decoder.next();
  ASSERT_TRUE(stats_frame.has_value());
  const Reply stats_decoded = decode_reply(*stats_frame);
  EXPECT_EQ(stats_decoded.stats.submits, 7u);
  EXPECT_EQ(stats_decoded.stats.qps, 3.25);
  EXPECT_EQ(stats_decoded.stats.latency_p99_ms, 17.5);

  Reply error;
  error.type = MsgType::kError;
  error.error = {ProtoError::kOversized, "too big"};
  const auto error_bytes = frame_bytes(encode_reply(error));
  decoder.feed(error_bytes.data(), error_bytes.size());
  const auto error_frame = decoder.next();
  ASSERT_TRUE(error_frame.has_value());
  const Reply error_decoded = decode_reply(*error_frame);
  EXPECT_EQ(error_decoded.error.code, ProtoError::kOversized);
  EXPECT_EQ(error_decoded.error.message, "too big");
}

TEST(ProtocolRoundTrip, ResultBlockBitExact) {
  ResultBlock block;
  block.run_status = 2;
  block.detail = "stalled at round 99";
  block.rounds = 99;
  block.diameter = 5;
  block.total_bits = (1ull << 40) + 17;
  block.total_physical_messages = 123456;
  block.betweenness = {0.0, -0.0, 1.5, 231.0714285,
                       std::numeric_limits<double>::denorm_min()};
  block.closeness = {0.25, 0.5, 0.75, 1.0, 0.125};
  block.graph_centrality = {0.2, 0.4, 0.6, 0.8, 1.0};
  block.stress = {0.0L, 123456789.000000001L, 1.0L, 2.0L, 3.0L};
  block.eccentricities = {1, 2, 3, 4, 5};
  const BitWriter encoded = encode_result_block(block);
  BitReader reader(encoded.data(), encoded.bit_size());
  const ResultBlock decoded = decode_result_block(reader);
  EXPECT_EQ(decoded.run_status, block.run_status);
  EXPECT_EQ(decoded.detail, block.detail);
  EXPECT_EQ(decoded.rounds, block.rounds);
  EXPECT_EQ(decoded.diameter, block.diameter);
  EXPECT_EQ(decoded.total_bits, block.total_bits);
  ASSERT_EQ(decoded.betweenness.size(), block.betweenness.size());
  for (std::size_t i = 0; i < block.betweenness.size(); ++i) {
    // Bit-pattern comparison: -0.0 vs 0.0 and denormals must survive.
    std::uint64_t want = 0;
    std::uint64_t got = 0;
    std::memcpy(&want, &block.betweenness[i], sizeof want);
    std::memcpy(&got, &decoded.betweenness[i], sizeof got);
    EXPECT_EQ(got, want) << "betweenness[" << i << "]";
  }
  EXPECT_EQ(decoded.stress, block.stress);
  EXPECT_EQ(decoded.eccentricities, block.eccentricities);
}

TEST(Framing, ByteAtATimeAndBackToBack) {
  const Request a = make_job_request(MsgType::kStatus, 7);
  const Request b = make_plain(MsgType::kStats);
  std::vector<std::uint8_t> stream = frame_of(a);
  const std::vector<std::uint8_t> second = frame_of(b);
  stream.insert(stream.end(), second.begin(), second.end());
  const DrainResult result = drain(stream, 1);  // one byte per feed
  ASSERT_FALSE(result.error.has_value());
  ASSERT_EQ(result.requests.size(), 2u);
  EXPECT_EQ(result.requests[0].type, MsgType::kStatus);
  EXPECT_EQ(result.requests[1].type, MsgType::kStats);
}

TEST(Framing, TruncatedFrameJustWaits) {
  const std::vector<std::uint8_t> full = frame_of(make_submit(sample_submit()));
  for (const std::size_t cut : {std::size_t{1}, std::size_t{4}, std::size_t{9},
                                full.size() - 1}) {
    FrameDecoder decoder;
    decoder.feed(full.data(), cut);
    EXPECT_EQ(decoder.next(), std::nullopt) << "cut at " << cut;
    // The remaining bytes complete the frame.
    decoder.feed(full.data() + cut, full.size() - cut);
    EXPECT_TRUE(decoder.next().has_value()) << "cut at " << cut;
  }
}

TEST(Framing, BadMagicBadVersionOversized) {
  std::vector<std::uint8_t> frame = frame_of(make_plain(MsgType::kStats));
  {
    auto bad = frame;
    bad[0] = 'X';
    const DrainResult result = drain(bad);
    ASSERT_TRUE(result.error.has_value());
    EXPECT_EQ(*result.error, ProtoError::kBadMagic);
  }
  {
    auto bad = frame;
    bad[4] = 0xFF;  // version LE low byte
    const DrainResult result = drain(bad);
    ASSERT_TRUE(result.error.has_value());
    EXPECT_EQ(*result.error, ProtoError::kBadVersion);
  }
  {
    auto bad = frame;
    // Length field = bits; claim ~2^31 bits >> 64 MiB cap.  The decoder
    // must reject from the header alone, before allocating anything.
    bad[6] = 0xFF;
    bad[7] = 0xFF;
    bad[8] = 0xFF;
    bad[9] = 0x7F;
    const DrainResult result = drain(bad);
    ASSERT_TRUE(result.error.has_value());
    EXPECT_EQ(*result.error, ProtoError::kOversized);
  }
}

TEST(Framing, GarbagePayloadIsMalformedOrUnknown) {
  // A syntactically valid frame whose payload is noise.
  Rng rng(7);
  for (int trial = 0; trial < 200; ++trial) {
    BitWriter payload;
    const unsigned bits = 1 + static_cast<unsigned>(rng.next_below(256));
    for (unsigned i = 0; i < bits; ++i) {
      payload.write_bool(rng.next_below(2) == 1);
    }
    const DrainResult result = drain(frame_bytes(payload));
    if (result.error.has_value()) {
      EXPECT_TRUE(*result.error == ProtoError::kMalformed ||
                  *result.error == ProtoError::kUnknownType)
          << "trial " << trial;
    } else {
      // Astronomically unlikely but legal: the noise decoded cleanly.
      EXPECT_EQ(result.requests.size(), 1u);
    }
  }
}

TEST(Framing, RandomByteStreamNeverCrashes) {
  Rng rng(99);
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<std::uint8_t> noise(1 + rng.next_below(512));
    for (auto& byte : noise) {
      byte = static_cast<std::uint8_t>(rng.next_below(256));
    }
    // Any outcome except a crash/hang is acceptable; errors must be typed.
    const DrainResult result = drain(noise, 1 + rng.next_below(16));
    (void)result;
  }
}

TEST(Framing, BitFlippedValidFramesNeverCrash) {
  const std::vector<std::uint8_t> frame = frame_of(make_submit(sample_submit()));
  Rng rng(1234);
  for (int trial = 0; trial < 300; ++trial) {
    auto mutated = frame;
    const std::size_t byte = rng.next_below(mutated.size());
    mutated[byte] ^= static_cast<std::uint8_t>(1u << rng.next_below(8));
    const DrainResult result = drain(mutated);
    if (!result.error.has_value()) {
      // Flip landed somewhere harmless (e.g. inside the graph string).
      EXPECT_LE(result.requests.size(), 1u);
    }
  }
}

TEST(Framing, TrailingBitsAfterValidPayloadAreMalformed) {
  BitWriter payload = encode_request(make_plain(MsgType::kStats));
  payload.write(0x2A, 7);  // junk a well-formed encoder never emits
  const DrainResult result = drain(frame_bytes(payload));
  ASSERT_TRUE(result.error.has_value());
  EXPECT_EQ(*result.error, ProtoError::kMalformed);
}

TEST(Framing, HostileStringLengthOverflowRejected) {
  // A varuint string length near 2^61 makes a naive `size * 8` bound
  // check wrap to a tiny number and pass; the decoder must reject it
  // (by dividing, not multiplying) before the string allocation.
  const std::uint64_t hostile_lengths[] = {
      1ull << 61, (1ull << 61) + 1, (1ull << 63) + 5,
      std::numeric_limits<std::uint64_t>::max()};
  for (const std::uint64_t hostile : hostile_lengths) {
    BitWriter payload;
    payload.write_varuint(static_cast<std::uint64_t>(MsgType::kSubmit));
    payload.write_varuint(0);        // source: kInline
    payload.write_varuint(hostile);  // graph string length
    const DrainResult result = drain(frame_bytes(payload));
    ASSERT_TRUE(result.error.has_value()) << "length " << hostile;
    EXPECT_EQ(*result.error, ProtoError::kMalformed) << "length " << hostile;
  }
}

// ------------------------------------------------------------------
// Reply-side fuzz: the client's view of the wire.  A chaos proxy (or a
// hostile network) tears, truncates, and corrupts reply bytes; the
// client decoder must answer every such stream with a decoded reply, a
// typed ProtocolError, or "feed me more" — never a crash, hang, or a
// silently wrong field.

struct ReplyDrain {
  std::vector<Reply> replies;
  std::optional<ProtoError> error;
};

ReplyDrain drain_replies(const std::vector<std::uint8_t>& bytes,
                         std::size_t chunk = SIZE_MAX) {
  ReplyDrain result;
  FrameDecoder decoder;
  std::size_t offset = 0;
  try {
    while (offset < bytes.size()) {
      const std::size_t take = std::min(chunk, bytes.size() - offset);
      decoder.feed(bytes.data() + offset, take);
      offset += take;
      while (auto frame = decoder.next()) {
        result.replies.push_back(decode_reply(*frame));
      }
    }
  } catch (const ProtocolError& e) {
    result.error = e.code();
  }
  return result;
}

Reply sample_result_reply() {
  Reply reply;
  reply.type = MsgType::kResultReply;
  reply.result.ready = true;
  reply.result.state = JobState::kDone;
  reply.result.from_cache = true;
  reply.result.fingerprint = 0xfeedface12345678ull;
  reply.result.detail = "served from cache";
  reply.result.block_bytes = {0xde, 0xad, 0xbe, 0xef, 0x01, 0x02, 0x03};
  reply.result.block_bits = 7 * 8;
  return reply;
}

TEST(ReplyFuzz, TornReplyDecodedByteAtATimeMatchesWholeFrame) {
  const auto bytes = frame_bytes(encode_reply(sample_result_reply()));
  for (const std::size_t chunk : {std::size_t{1}, std::size_t{3},
                                  std::size_t{17}, bytes.size()}) {
    const ReplyDrain result = drain_replies(bytes, chunk);
    ASSERT_FALSE(result.error.has_value()) << "chunk " << chunk;
    ASSERT_EQ(result.replies.size(), 1u) << "chunk " << chunk;
    const Reply& decoded = result.replies[0];
    EXPECT_EQ(decoded.type, MsgType::kResultReply);
    EXPECT_TRUE(decoded.result.ready);
    EXPECT_EQ(decoded.result.fingerprint, 0xfeedface12345678ull);
    EXPECT_EQ(decoded.result.detail, "served from cache");
    EXPECT_EQ(decoded.result.block_bytes,
              sample_result_reply().result.block_bytes);
  }
}

TEST(ReplyFuzz, EveryShortPrefixJustWaitsOrFailsTyped) {
  const auto bytes = frame_bytes(encode_reply(sample_result_reply()));
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    const std::vector<std::uint8_t> prefix(bytes.begin(),
                                           bytes.begin() + cut);
    const ReplyDrain result = drain_replies(prefix);
    EXPECT_TRUE(result.replies.empty()) << "cut " << cut;
    EXPECT_FALSE(result.error.has_value())
        << "an honest prefix of a valid frame must wait, not error (cut "
        << cut << ")";
  }
}

TEST(ReplyFuzz, CorruptedPayloadByteIsCaughtByChecksum) {
  const auto clean = frame_bytes(encode_reply(sample_result_reply()));
  constexpr std::size_t kHeader = 18;  // magic+version+bits+checksum
  ASSERT_GT(clean.size(), kHeader);
  for (std::size_t byte = kHeader; byte < clean.size(); ++byte) {
    auto mutated = clean;
    mutated[byte] ^= 0xFF;
    const ReplyDrain result = drain_replies(mutated);
    ASSERT_TRUE(result.error.has_value()) << "payload byte " << byte;
    EXPECT_EQ(*result.error, ProtoError::kCorrupted) << "byte " << byte;
  }
}

TEST(ReplyFuzz, CorruptedHeaderBytesFailTypedNotSilent) {
  const auto clean = frame_bytes(encode_reply(sample_result_reply()));
  for (std::size_t byte = 0; byte < 6; ++byte) {  // magic + version
    auto mutated = clean;
    mutated[byte] ^= 0x59;
    const ReplyDrain result = drain_replies(mutated);
    ASSERT_TRUE(result.error.has_value()) << "header byte " << byte;
    EXPECT_TRUE(*result.error == ProtoError::kBadMagic ||
                *result.error == ProtoError::kBadVersion)
        << "header byte " << byte;
  }
}

TEST(ReplyFuzz, BitFlippedReplyFramesNeverCrash) {
  Reply stats;
  stats.type = MsgType::kStatsReply;
  stats.stats.submits = 1234;
  stats.stats.qps = 9.75;
  for (const Reply& reply : {sample_result_reply(), stats}) {
    const auto clean = frame_bytes(encode_reply(reply));
    Rng rng(4242);
    for (int trial = 0; trial < 300; ++trial) {
      auto mutated = clean;
      const std::size_t byte = rng.next_below(mutated.size());
      mutated[byte] ^= static_cast<std::uint8_t>(1u << rng.next_below(8));
      // Feed in chaotic chunk sizes too: corruption and tearing compose.
      const ReplyDrain result =
          drain_replies(mutated, 1 + rng.next_below(24));
      if (!result.error.has_value()) {
        EXPECT_LE(result.replies.size(), 1u);
      }
    }
  }
}

TEST(ReplyFuzz, BackToBackRepliesSurviveArbitraryTearing) {
  Reply error;
  error.type = MsgType::kError;
  error.error = {ProtoError::kBadRequest, "no such job"};
  Reply status;
  status.type = MsgType::kStatusReply;
  status.status.state = JobState::kRunning;
  status.status.job_id = 99;
  status.status.detail = "round 17";

  std::vector<std::uint8_t> stream;
  for (const Reply& reply : {sample_result_reply(), error, status}) {
    const auto bytes = frame_bytes(encode_reply(reply));
    stream.insert(stream.end(), bytes.begin(), bytes.end());
  }
  Rng rng(31337);
  for (int trial = 0; trial < 50; ++trial) {
    const ReplyDrain result = drain_replies(stream, 1 + rng.next_below(13));
    ASSERT_FALSE(result.error.has_value()) << "trial " << trial;
    ASSERT_EQ(result.replies.size(), 3u) << "trial " << trial;
    EXPECT_EQ(result.replies[0].type, MsgType::kResultReply);
    EXPECT_EQ(result.replies[1].type, MsgType::kError);
    EXPECT_EQ(result.replies[1].error.message, "no such job");
    EXPECT_EQ(result.replies[2].type, MsgType::kStatusReply);
    EXPECT_EQ(result.replies[2].status.detail, "round 17");
  }
}

TEST(Framing, HostileElementCountRejectedBeforeAllocation) {
  // Hand-craft a result reply claiming a huge block length with almost no
  // bytes behind it: get_count/get_bits must refuse, not resize.
  BitWriter payload;
  payload.write_varuint(static_cast<std::uint64_t>(MsgType::kResultReply));
  payload.write_bool(true);                     // ready
  payload.write_varuint(2);                     // state kDone
  payload.write_bool(false);                    // from_cache
  payload.write(0, 64);                         // fingerprint
  payload.write_varuint(0);                     // detail length
  payload.write_varuint((1ull << 33));          // block bit length: hostile
  FrameDecoder decoder;
  const auto bytes = frame_bytes(payload);
  decoder.feed(bytes.data(), bytes.size());
  const auto frame = decoder.next();
  ASSERT_TRUE(frame.has_value());
  EXPECT_THROW(decode_reply(*frame), ProtocolError);
}

// ------------------------------------------------------------------
// v6 cluster frames (JOIN / LEAVE / MIGRATE / LOOKUP): the membership
// and migration plane rides the same framing, so it inherits the same
// contract — bit-exact round trips, typed errors on hostile bytes.

MigrateRequest sample_migrate() {
  MigrateRequest migrate;
  migrate.kind = MigrateKind::kResume;
  migrate.fingerprint = 0xabad1dea5ca1ab1eull;
  migrate.origin_job_id = 41;
  migrate.origin_worker = "127.0.0.1:9001";
  migrate.submit = sample_submit();
  migrate.snapshot_round = 1234;
  migrate.snapshot_bytes = {0xcb, 0xc5, 0x00, 0x17, 0xff, 0x00, 0x42};
  return migrate;
}

TEST(ProtocolRoundTrip, MembershipRequestsSurviveTheWire) {
  JoinRequest join;
  join.worker_id = "10.1.2.3:7777";
  join.host = "10.1.2.3";
  join.port = 7777;
  const DrainResult joined = drain(frame_of(make_join(join)));
  ASSERT_FALSE(joined.error.has_value());
  ASSERT_EQ(joined.requests.size(), 1u);
  EXPECT_EQ(joined.requests[0].type, MsgType::kJoin);
  EXPECT_EQ(joined.requests[0].join.worker_id, join.worker_id);
  EXPECT_EQ(joined.requests[0].join.host, join.host);
  EXPECT_EQ(joined.requests[0].join.port, join.port);

  LeaveRequest leave;
  leave.worker_id = "10.1.2.3:7777";
  const DrainResult left = drain(frame_of(make_leave(leave)));
  ASSERT_FALSE(left.error.has_value());
  ASSERT_EQ(left.requests.size(), 1u);
  EXPECT_EQ(left.requests[0].type, MsgType::kLeave);
  EXPECT_EQ(left.requests[0].leave.worker_id, leave.worker_id);

  const DrainResult looked = drain(frame_of(make_lookup(0xfeedULL)));
  ASSERT_FALSE(looked.error.has_value());
  ASSERT_EQ(looked.requests.size(), 1u);
  EXPECT_EQ(looked.requests[0].type, MsgType::kLookup);
  EXPECT_EQ(looked.requests[0].lookup.fingerprint, 0xfeedULL);
}

TEST(ProtocolRoundTrip, MigrateRequestCarriesSnapshotAndSubmitBitExact) {
  const MigrateRequest migrate = sample_migrate();
  const DrainResult result = drain(frame_of(make_migrate(migrate)));
  ASSERT_FALSE(result.error.has_value());
  ASSERT_EQ(result.requests.size(), 1u);
  const MigrateRequest& decoded = result.requests[0].migrate;
  EXPECT_EQ(decoded.kind, migrate.kind);
  EXPECT_EQ(decoded.fingerprint, migrate.fingerprint);
  EXPECT_EQ(decoded.origin_job_id, migrate.origin_job_id);
  EXPECT_EQ(decoded.origin_worker, migrate.origin_worker);
  EXPECT_EQ(decoded.snapshot_round, migrate.snapshot_round);
  EXPECT_EQ(decoded.snapshot_bytes, migrate.snapshot_bytes);
  // The inner canonical submit is what the target re-validates; its
  // result-determining fields must survive untouched.
  EXPECT_EQ(decoded.submit.graph, migrate.submit.graph);
  EXPECT_EQ(decoded.submit.faults, migrate.submit.faults);
  EXPECT_EQ(decoded.submit.max_rounds, migrate.submit.max_rounds);

  MigrateRequest finished = sample_migrate();
  finished.kind = MigrateKind::kResult;
  finished.snapshot_bytes.clear();
  finished.snapshot_round = 0;
  finished.block_bytes = {0x01, 0x02, 0x03, 0x04};
  finished.block_bits = 4 * 8 - 3;  // ragged tail bits must survive
  const DrainResult done = drain(frame_of(make_migrate(finished)));
  ASSERT_FALSE(done.error.has_value());
  ASSERT_EQ(done.requests.size(), 1u);
  EXPECT_EQ(done.requests[0].migrate.kind, MigrateKind::kResult);
  EXPECT_EQ(done.requests[0].migrate.block_bytes, finished.block_bytes);
  EXPECT_EQ(done.requests[0].migrate.block_bits, finished.block_bits);
}

TEST(ProtocolRoundTrip, MembershipRepliesSurviveTheWire) {
  FrameDecoder decoder;
  Reply join;
  join.type = MsgType::kJoinReply;
  join.join.accepted = true;
  join.join.detail = "ring size 3";
  Reply migrate;
  migrate.type = MsgType::kMigrateReply;
  migrate.migrate.outcome = MigrateOutcome::kCoalesced;
  migrate.migrate.job_id = 88;
  migrate.migrate.fingerprint = 0x1badb002;
  migrate.migrate.detail = "already cached";
  Reply lookup;
  lookup.type = MsgType::kLookupReply;
  lookup.lookup.found = true;
  lookup.lookup.fingerprint = 0x50f7ca11;
  lookup.lookup.block_bytes = {0xaa, 0xbb, 0xcc};
  lookup.lookup.block_bits = 3 * 8;
  Reply leave;
  leave.type = MsgType::kLeaveReply;
  leave.leave.removed = true;

  for (const Reply& reply : {join, migrate, lookup, leave}) {
    const auto bytes = frame_bytes(encode_reply(reply));
    decoder.feed(bytes.data(), bytes.size());
    const auto frame = decoder.next();
    ASSERT_TRUE(frame.has_value());
    const Reply decoded = decode_reply(*frame);
    EXPECT_EQ(decoded.type, reply.type);
  }
  // Spot-check the payload fields of the richest two.
  const auto migrate_bytes = frame_bytes(encode_reply(migrate));
  decoder.feed(migrate_bytes.data(), migrate_bytes.size());
  const Reply migrate_decoded = decode_reply(*decoder.next());
  EXPECT_EQ(migrate_decoded.migrate.outcome, MigrateOutcome::kCoalesced);
  EXPECT_EQ(migrate_decoded.migrate.job_id, 88u);
  EXPECT_EQ(migrate_decoded.migrate.detail, "already cached");
  const auto lookup_bytes = frame_bytes(encode_reply(lookup));
  decoder.feed(lookup_bytes.data(), lookup_bytes.size());
  const Reply lookup_decoded = decode_reply(*decoder.next());
  EXPECT_TRUE(lookup_decoded.lookup.found);
  EXPECT_EQ(lookup_decoded.lookup.block_bytes, lookup.lookup.block_bytes);
  EXPECT_EQ(lookup_decoded.lookup.block_bits, lookup.lookup.block_bits);
}

TEST(Framing, BitFlippedMembershipFramesNeverCrash) {
  // The router feeds worker-link replies and client membership frames
  // through the same decoder the daemon uses; a flipped bit anywhere in
  // a v6 frame must yield a typed error or a clean decode, never a
  // crash or unbounded allocation.
  const std::vector<std::vector<std::uint8_t>> frames = {
      frame_of(make_join({"w:1", "127.0.0.1", 1})),
      frame_of(make_leave({"w:1"})),
      frame_of(make_migrate(sample_migrate())),
      frame_of(make_lookup(0x1234ULL)),
  };
  Rng rng(4242);
  for (const auto& frame : frames) {
    for (int trial = 0; trial < 200; ++trial) {
      auto mutated = frame;
      const std::size_t byte = rng.next_below(mutated.size());
      mutated[byte] ^= static_cast<std::uint8_t>(1u << rng.next_below(8));
      const DrainResult result = drain(mutated);
      if (!result.error.has_value()) {
        EXPECT_LE(result.requests.size(), 1u);
      }
    }
  }
}

TEST(Framing, HostileMigrateSnapshotLengthRejectedBeforeAllocation) {
  // A MIGRATE claiming a multi-exabyte snapshot with a handful of real
  // bytes behind it must be refused by the bounds check, not resized.
  BitWriter payload;
  payload.write_varuint(static_cast<std::uint64_t>(MsgType::kMigrate));
  payload.write_varuint(0);   // kind: kResume
  payload.write(0xdead, 64);  // fingerprint
  payload.write_varuint(7);   // origin_job_id
  payload.write_varuint(0);   // origin_worker length
  // Inner canonical submit: source kInline, empty graph, defaults.
  payload.write_varuint(0);                      // source
  payload.write_varuint(0);                      // graph length
  payload.write_bool(true);                      // halve
  payload.write_bool(false);                     // reliable
  payload.write_varuint(0);                      // faults length
  payload.write_varuint(0);                      // max_rounds
  payload.write_varuint(0);                      // threads
  payload.write_bool(false);                     // legacy_engine
  payload.write_varuint(0);                      // deadline_ms
  payload.write_varuint(1);                      // attempt
  payload.write_varuint(0);                      // stream_ns length
  payload.write_varuint(0);                      // stream_version
  payload.write_bool(false);                     // incremental
  payload.write_varuint(1);                      // backend
  payload.write_varuint(0);                      // samples
  payload.write(0, 64);                          // sample_seed
  payload.write_varuint(0);                      // engine
  payload.write_varuint(0);                      // snapshot_round
  payload.write_varuint(1ull << 62);             // snapshot byte count: hostile
  const DrainResult result = drain(frame_bytes(payload));
  ASSERT_TRUE(result.error.has_value());
  EXPECT_EQ(*result.error, ProtoError::kMalformed);
}

TEST(ReplyFuzz, BitFlippedMembershipRepliesNeverCrash) {
  Reply lookup;
  lookup.type = MsgType::kLookupReply;
  lookup.lookup.found = true;
  lookup.lookup.fingerprint = 0xfeedface;
  lookup.lookup.block_bytes.assign(64, 0x5a);
  lookup.lookup.block_bits = 64 * 8;
  Reply migrate;
  migrate.type = MsgType::kMigrateReply;
  migrate.migrate.outcome = MigrateOutcome::kAccepted;
  migrate.migrate.job_id = 17;
  migrate.migrate.fingerprint = 0xc0ffee;
  migrate.migrate.detail = "resumed from round 96";
  Rng rng(777);
  for (const Reply& reply : {lookup, migrate}) {
    const auto frame = frame_bytes(encode_reply(reply));
    for (int trial = 0; trial < 200; ++trial) {
      auto mutated = frame;
      const std::size_t byte = rng.next_below(mutated.size());
      mutated[byte] ^= static_cast<std::uint8_t>(1u << rng.next_below(8));
      const ReplyDrain result = drain_replies(mutated);
      if (!result.error.has_value()) {
        EXPECT_LE(result.replies.size(), 1u);
      }
    }
  }
}

}  // namespace
}  // namespace congestbc::service
