// Randomized end-to-end fuzzing: many seeds, structurally diverse random
// graphs (including adversarial shapes: pendant chains off hubs, bridges,
// near-cliques), always checking the full invariant bundle against
// centralized references.  Complements the curated suites in
// pipeline_property_test with broader randomized coverage.
#include <gtest/gtest.h>

#include <cmath>

#include "algo/bc_pipeline.hpp"
#include "central/brandes.hpp"
#include "congest/network.hpp"
#include "core/validation.hpp"
#include "graph/generators.hpp"
#include "graph/properties.hpp"

namespace congestbc {
namespace {

/// A structurally messy random connected graph: random tree backbone +
/// random extra edges + pendant chains + an occasional hub.
Graph messy_graph(std::uint64_t seed) {
  Rng rng(seed);
  const auto n_core = static_cast<NodeId>(8 + rng.next_below(24));
  GraphBuilder builder;
  builder.add_node();
  for (NodeId v = 1; v < n_core; ++v) {
    builder.add_edge(static_cast<NodeId>(rng.next_below(v)), builder.add_node());
  }
  // Extra edges.
  const auto extras = rng.next_below(2 * n_core);
  for (std::uint64_t i = 0; i < extras; ++i) {
    const auto u = static_cast<NodeId>(rng.next_below(n_core));
    const auto v = static_cast<NodeId>(rng.next_below(n_core));
    if (u != v) {
      builder.add_edge(u, v);
    }
  }
  // Pendant chains.
  const auto chains = rng.next_below(4);
  for (std::uint64_t c = 0; c < chains; ++c) {
    NodeId prev = static_cast<NodeId>(rng.next_below(n_core));
    const auto len = 1 + rng.next_below(6);
    for (std::uint64_t i = 0; i < len; ++i) {
      const NodeId next = builder.add_node();
      builder.add_edge(prev, next);
      prev = next;
    }
  }
  // Occasional hub connected to many nodes.
  if (rng.next_bernoulli(0.3)) {
    const NodeId hub = builder.add_node();
    for (NodeId v = 0; v < n_core; v += 2) {
      builder.add_edge(hub, v);
    }
  }
  return std::move(builder).build();
}

class EndToEndFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EndToEndFuzz, DistributedMatchesBrandesWithAllInvariants) {
  const Graph g = messy_graph(GetParam());
  ASSERT_TRUE(is_connected(g));

  DistributedBcOptions options;
  options.root = static_cast<NodeId>(GetParam() % g.num_nodes());
  const auto result = run_distributed_bc(g, options);

  const auto reference = brandes_bc(g);
  const auto stats = compare_vectors(result.betweenness, reference, 1e-6);
  EXPECT_LT(stats.max_rel_error, 1e-6)
      << "seed " << GetParam() << " N=" << g.num_nodes();

  EXPECT_EQ(result.diameter, diameter(g));
  EXPECT_LE(result.metrics.max_bits_on_edge_round,
            congest_budget_bits(g.num_nodes()));
  EXPECT_EQ(result.metrics.max_logical_on_edge_in(result.aggregation_epoch,
                                                  result.metrics.rounds),
            1u);
  EXPECT_LE(result.rounds,
            8ull * g.num_nodes() + 5ull * result.diameter + 60);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EndToEndFuzz,
                         ::testing::Range<std::uint64_t>(1, 41));

class RelabelFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RelabelFuzz, BetweennessIsIsomorphismInvariant) {
  // Relabel the nodes with a random permutation; the distributed BC of
  // node pi(v) on the relabeled graph must equal that of v on the
  // original — no hidden dependence on ids, root choice, or tie-breaks.
  Rng rng(GetParam());
  const Graph g = messy_graph(GetParam() * 31 + 7);
  std::vector<NodeId> pi(g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    pi[v] = v;
  }
  rng.shuffle(pi);
  std::vector<Edge> relabeled;
  for (const auto& e : g.edges()) {
    relabeled.push_back(Edge{std::min(pi[e.u], pi[e.v]),
                             std::max(pi[e.u], pi[e.v])});
  }
  const Graph h(g.num_nodes(), std::move(relabeled));

  const auto bc_g = run_distributed_bc(g).betweenness;
  const auto bc_h = run_distributed_bc(h).betweenness;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    ASSERT_NEAR(bc_g[v], bc_h[pi[v]],
                1e-6 * std::max(1.0, std::abs(bc_g[v])))
        << "seed " << GetParam() << " node " << v;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RelabelFuzz,
                         ::testing::Range<std::uint64_t>(50, 62));

class SoftFloatFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SoftFloatFuzz, OperationsStayBracketedAndTight) {
  Rng rng(GetParam());
  const SoftFloatFormat fmt{
      static_cast<unsigned>(8 + rng.next_below(50)),
      static_cast<unsigned>(12 + rng.next_below(20))};
  const double eta = unit_relative_error(fmt);
  for (int i = 0; i < 400; ++i) {
    const std::uint64_t x =
        rng.next_u64() >> static_cast<unsigned>(rng.next_below(60));
    const std::uint64_t y =
        rng.next_u64() >> static_cast<unsigned>(rng.next_below(60));
    if (x == 0 || y == 0) {
      continue;
    }
    const auto fx_up = SoftFloat::from_u64(x, fmt, RoundingMode::kUp);
    const auto fy_up = SoftFloat::from_u64(y, fmt, RoundingMode::kUp);
    const auto fx_dn = SoftFloat::from_u64(x, fmt, RoundingMode::kDown);
    const auto fy_dn = SoftFloat::from_u64(y, fmt, RoundingMode::kDown);

    // Sum brackets.
    const BigUint exact_sum = BigUint(x) + BigUint(y);
    const auto sum_up = add(fx_up, fy_up, fmt, RoundingMode::kUp);
    const auto sum_dn = add(fx_dn, fy_dn, fmt, RoundingMode::kDown);
    ASSERT_GE(compare_with_big(sum_up, exact_sum), 0);
    ASSERT_LE(compare_with_big(sum_dn, exact_sum), 0);
    // Tightness: the bracket width stays within a few eta.
    ASSERT_LE(sum_up.to_double(), sum_dn.to_double() * (1 + 8 * eta));

    // Product brackets.
    const BigUint exact_prod = BigUint(x) * BigUint(y);
    const auto prod_up = multiply(fx_up, fy_up, fmt, RoundingMode::kUp);
    const auto prod_dn = multiply(fx_dn, fy_dn, fmt, RoundingMode::kDown);
    ASSERT_GE(compare_with_big(prod_up, exact_prod), 0);
    ASSERT_LE(compare_with_big(prod_dn, exact_prod), 0);

    // Reciprocal brackets: recip_dn <= 1/x <= recip_up.
    const auto recip_up = reciprocal(fx_dn, fmt, RoundingMode::kUp);
    const auto recip_dn = reciprocal(fx_up, fmt, RoundingMode::kDown);
    const double exact_recip = 1.0 / static_cast<double>(x);
    ASSERT_GE(recip_up.to_double(), exact_recip * (1 - 1e-12));
    ASSERT_LE(recip_dn.to_double(), exact_recip * (1 + 1e-12));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SoftFloatFuzz,
                         ::testing::Range<std::uint64_t>(100, 110));

class BigUintFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BigUintFuzz, RingAxioms) {
  Rng rng(GetParam());
  for (int i = 0; i < 100; ++i) {
    BigUint a(rng.next_u64());
    BigUint b(rng.next_u64());
    BigUint c(rng.next_u64());
    a <<= rng.next_below(120);
    b <<= rng.next_below(120);
    c <<= rng.next_below(120);
    // (a+b)+c == a+(b+c); a*(b+c) == a*b + a*c; (a+b)-b == a
    ASSERT_EQ((a + b) + c, a + (b + c));
    ASSERT_EQ(a * (b + c), a * b + a * c);
    ASSERT_EQ((a + b) - b, a);
    ASSERT_EQ(a * b, b * a);
    // Decimal round trip.
    ASSERT_EQ(BigUint::from_decimal(a.to_decimal()), a);
    // Shift identities.
    const auto k = rng.next_below(200);
    ASSERT_EQ((a << k) >> k, a);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BigUintFuzz,
                         ::testing::Range<std::uint64_t>(200, 208));

}  // namespace
}  // namespace congestbc
