// Portfolio subsystem unit tests (src/portfolio/backend.hpp).
//
// What is pinned here, per the portfolio contract (DESIGN.md §15):
//   * the registry holds exactly the four documented backends, in
//     registration order, addressable by id and by stable name;
//   * paper_exact is a pass-through: bit-for-bit the pre-portfolio
//     run_bc_with_watchdog behavior;
//   * cfp matches centralized Brandes to double-accumulation tolerance
//     (both use doubles over the same DAG recursion);
//   * directed matches the centralized directed Brandes checker;
//   * sampled is deterministic per seed, degenerates to exact at a full
//     source budget, and keeps its observed error inside the stated
//     Hoeffding bound across seeds;
//   * run_portfolio() rejects wrong-kind inputs and unresolved `auto`
//     loudly (PreconditionError), never by computing something else;
//   * the serve-time policy helpers (resolve_auto_backend,
//     resolve_sample_budget, sampled_error_bound) implement exactly the
//     documented formulas.
#include <cmath>
#include <cstdint>
#include <cstring>
#include <vector>

#include "central/brandes.hpp"
#include "central/directed_brandes.hpp"
#include "common/assert.hpp"
#include "common/rng.hpp"
#include "congest/fault.hpp"
#include "core/runner.hpp"
#include "core/validation.hpp"
#include "graph/digraph.hpp"
#include "graph/generators.hpp"
#include "graph/graph.hpp"
#include "graph/properties.hpp"
#include "gtest/gtest.h"
#include "portfolio/backend.hpp"

namespace congestbc::portfolio {
namespace {

BackendRequest undirected_request(const Graph& g, BackendId backend) {
  BackendRequest request;
  request.graph = &g;
  request.options.backend = backend;
  return request;
}

BackendRequest directed_request(const Digraph& g) {
  BackendRequest request;
  request.digraph = &g;
  request.options.backend = BackendId::kDirected;
  return request;
}

void expect_bit_equal(const std::vector<double>& got,
                      const std::vector<double>& want, const char* what) {
  ASSERT_EQ(got.size(), want.size()) << what;
  for (std::size_t i = 0; i < want.size(); ++i) {
    std::uint64_t got_bits = 0;
    std::uint64_t want_bits = 0;
    std::memcpy(&got_bits, &got[i], sizeof got_bits);
    std::memcpy(&want_bits, &want[i], sizeof want_bits);
    EXPECT_EQ(got_bits, want_bits) << what << "[" << i << "]";
  }
}

// ---------------------------------------------------------------------
// Registry

TEST(BackendRegistry, HoldsAllFourBackendsInRegistrationOrder) {
  const auto& all = BackendRegistry::instance().all();
  ASSERT_EQ(all.size(), 4u);
  EXPECT_EQ(all[0]->id(), BackendId::kPaperExact);
  EXPECT_EQ(all[1]->id(), BackendId::kCfp);
  EXPECT_EQ(all[2]->id(), BackendId::kDirected);
  EXPECT_EQ(all[3]->id(), BackendId::kSampled);
  for (const BcBackend* backend : all) {
    // Names are the wire/CLI vocabulary and must match to_string().
    EXPECT_EQ(backend->name(), to_string(backend->id()));
    EXPECT_FALSE(backend->capabilities().summary.empty());
    EXPECT_EQ(BackendRegistry::instance().find(backend->id()), backend);
    EXPECT_EQ(BackendRegistry::instance().find(backend->name()), backend);
  }
}

TEST(BackendRegistry, AutoAndUnknownAreNotBackends) {
  const auto& registry = BackendRegistry::instance();
  EXPECT_EQ(registry.find(BackendId::kAuto), nullptr);
  EXPECT_EQ(registry.find("auto"), nullptr);
  EXPECT_EQ(registry.find("brandes"), nullptr);
  EXPECT_EQ(registry.find(static_cast<BackendId>(200)), nullptr);
}

TEST(BackendRegistry, CapabilitiesMatchTheDesignTable) {
  const auto& registry = BackendRegistry::instance();
  const auto caps = [&](BackendId id) {
    return registry.find(id)->capabilities();
  };
  // Exactly one backend takes directed input, and it takes nothing else.
  EXPECT_TRUE(caps(BackendId::kDirected).directed_input);
  EXPECT_FALSE(caps(BackendId::kDirected).undirected_input);
  for (const BackendId id :
       {BackendId::kPaperExact, BackendId::kCfp, BackendId::kSampled}) {
    EXPECT_TRUE(caps(id).undirected_input) << to_string(id);
    EXPECT_FALSE(caps(id).directed_input) << to_string(id);
  }
  // Sampled is the only approximation.
  EXPECT_FALSE(caps(BackendId::kSampled).exact);
  EXPECT_TRUE(caps(BackendId::kPaperExact).exact);
  EXPECT_TRUE(caps(BackendId::kCfp).exact);
  EXPECT_TRUE(caps(BackendId::kDirected).exact);
  // Simulator-engine backends are the checkpointable ones (the daemon
  // keys its checkpoint plumbing off this bit).
  EXPECT_TRUE(caps(BackendId::kPaperExact).simulator_engines);
  EXPECT_TRUE(caps(BackendId::kSampled).simulator_engines);
  EXPECT_FALSE(caps(BackendId::kCfp).simulator_engines);
  EXPECT_FALSE(caps(BackendId::kDirected).simulator_engines);
}

TEST(ParseBackend, AcceptsTheFiveNamesRejectsEverythingElse) {
  EXPECT_EQ(parse_backend("auto"), BackendId::kAuto);
  EXPECT_EQ(parse_backend("paper_exact"), BackendId::kPaperExact);
  EXPECT_EQ(parse_backend("cfp"), BackendId::kCfp);
  EXPECT_EQ(parse_backend("directed"), BackendId::kDirected);
  EXPECT_EQ(parse_backend("sampled"), BackendId::kSampled);
  EXPECT_FALSE(parse_backend("").has_value());
  EXPECT_FALSE(parse_backend("PAPER_EXACT").has_value());
  EXPECT_FALSE(parse_backend("exact").has_value());
  EXPECT_FALSE(parse_backend("sampled ").has_value());
}

// ---------------------------------------------------------------------
// Serve-time policy helpers

TEST(ResolveAutoBackend, OnlyAutoIsEverRewritten) {
  for (const bool pressure : {false, true}) {
    for (const BackendId id : {BackendId::kPaperExact, BackendId::kCfp,
                               BackendId::kDirected, BackendId::kSampled}) {
      EXPECT_EQ(resolve_auto_backend(id, pressure), id);
    }
  }
  EXPECT_EQ(resolve_auto_backend(BackendId::kAuto, false),
            BackendId::kPaperExact);
  EXPECT_EQ(resolve_auto_backend(BackendId::kAuto, true), BackendId::kSampled);
}

TEST(ResolveSampleBudget, ExplicitRequestClampsToN) {
  EXPECT_EQ(resolve_sample_budget(100, 7), 7u);
  EXPECT_EQ(resolve_sample_budget(100, 100), 100u);
  EXPECT_EQ(resolve_sample_budget(100, 5000), 100u);
  EXPECT_EQ(resolve_sample_budget(1, 3), 1u);
}

TEST(ResolveSampleBudget, DefaultIsFourRootNWithFloorSixteen) {
  // 4*ceil(sqrt(n)), clamped to [16, n].
  EXPECT_EQ(resolve_sample_budget(10000, 0), 400u);
  EXPECT_EQ(resolve_sample_budget(100, 0), 40u);
  EXPECT_EQ(resolve_sample_budget(17, 0), 17u);  // floor 16 < n, root 17
  EXPECT_EQ(resolve_sample_budget(10, 0), 10u);  // floor capped at n
  EXPECT_EQ(resolve_sample_budget(1, 0), 1u);
  EXPECT_THROW(resolve_sample_budget(0, 0), PreconditionError);
}

TEST(SampledErrorBound, MatchesTheHoeffdingFormula) {
  const NodeId n = 64;
  const std::uint32_t s = 16;
  const double delta = 0.05;
  const double expected =
      64.0 * 62.0 * std::sqrt(std::log(2.0 * 64.0 / delta) / (2.0 * 16.0));
  EXPECT_DOUBLE_EQ(sampled_error_bound(n, s, delta), expected);
  // Tighter with more samples, looser with smaller delta.
  EXPECT_LT(sampled_error_bound(n, 64, delta), sampled_error_bound(n, s, delta));
  EXPECT_GT(sampled_error_bound(n, s, 0.01), sampled_error_bound(n, s, 0.05));
  // No interior pairs on n <= 2: BC is identically zero, bound is too.
  EXPECT_EQ(sampled_error_bound(2, 4, delta), 0.0);
  EXPECT_THROW(sampled_error_bound(n, 0, delta), PreconditionError);
  EXPECT_THROW(sampled_error_bound(n, s, 0.0), PreconditionError);
  EXPECT_THROW(sampled_error_bound(n, s, 1.0), PreconditionError);
}

// ---------------------------------------------------------------------
// Dispatch validation

TEST(RunPortfolio, RejectsUnresolvedAutoAndWrongKindInputs) {
  Rng rng(7);
  const Graph g = gen::erdos_renyi_connected(12, 0.4, rng);
  const Digraph d = gen::directed_erdos_renyi(12, 0.3, rng);

  EXPECT_THROW(run_portfolio(undirected_request(g, BackendId::kAuto)),
               PreconditionError);

  BackendRequest empty;
  empty.options.backend = BackendId::kPaperExact;
  EXPECT_THROW(run_portfolio(empty), PreconditionError);

  BackendRequest both = undirected_request(g, BackendId::kDirected);
  both.digraph = &d;
  EXPECT_THROW(run_portfolio(both), PreconditionError);

  // Undirected backends refuse digraphs, the directed one refuses graphs.
  for (const BackendId id :
       {BackendId::kPaperExact, BackendId::kCfp, BackendId::kSampled}) {
    BackendRequest request = directed_request(d);
    request.options.backend = id;
    EXPECT_THROW(run_portfolio(request), PreconditionError) << to_string(id);
  }
  EXPECT_THROW(run_portfolio(undirected_request(g, BackendId::kDirected)),
               PreconditionError);
}

TEST(RunPortfolio, SimulatorOnlyKnobsAreRejectedByRoundModelBackends) {
  Rng rng(11);
  const Graph g = gen::barabasi_albert(16, 2, rng);
  const Digraph d = gen::directed_erdos_renyi(16, 0.2, rng);

  BackendRequest faulty = undirected_request(g, BackendId::kCfp);
  faulty.options.faults = FaultPlan::parse("drop=0.1,seed=7");
  EXPECT_THROW(run_portfolio(faulty), PreconditionError);

  BackendRequest reliable = undirected_request(g, BackendId::kCfp);
  reliable.options.reliable_transport = true;
  EXPECT_THROW(run_portfolio(reliable), PreconditionError);

  BackendRequest checkpointed = directed_request(d);
  checkpointed.options.checkpoint_every = 8;
  EXPECT_THROW(run_portfolio(checkpointed), PreconditionError);

  // Sampled draws its own sources — an explicit mask is a contract error.
  BackendRequest masked = undirected_request(g, BackendId::kSampled);
  masked.options.sources = std::vector<bool>(g.num_nodes(), true);
  EXPECT_THROW(run_portfolio(masked), PreconditionError);
}

// ---------------------------------------------------------------------
// paper_exact: the refactor must not have changed a single bit

TEST(PaperExactBackend, BitIdenticalToDirectWatchdogRun) {
  Rng rng(23);
  const Graph g = gen::erdos_renyi_connected(40, 0.15, rng);
  DistributedBcOptions options;
  options.keep_tables = false;
  const RunOutcome direct = run_bc_with_watchdog(g, options);
  ASSERT_EQ(direct.status, RunStatus::kComplete) << direct.detail;

  BackendRequest request = undirected_request(g, BackendId::kPaperExact);
  const RunOutcome via_portfolio = run_portfolio(request);
  ASSERT_EQ(via_portfolio.status, RunStatus::kComplete) << via_portfolio.detail;
  EXPECT_EQ(via_portfolio.result.rounds, direct.result.rounds);
  EXPECT_EQ(via_portfolio.result.diameter, direct.result.diameter);
  EXPECT_EQ(via_portfolio.result.metrics.total_bits,
            direct.result.metrics.total_bits);
  expect_bit_equal(via_portfolio.result.betweenness, direct.result.betweenness,
                   "betweenness");
  expect_bit_equal(via_portfolio.result.closeness, direct.result.closeness,
                   "closeness");
  EXPECT_EQ(via_portfolio.result.eccentricities, direct.result.eccentricities);
}

// ---------------------------------------------------------------------
// cfp: independent implementation vs centralized Brandes

TEST(CfpBackend, MatchesBrandesToDoubleTolerance) {
  Rng rng(31);
  for (const Graph& g :
       {gen::erdos_renyi_connected(48, 0.12, rng), gen::barabasi_albert(48, 2, rng),
        gen::grid(6, 8), gen::figure1_example()}) {
    const RunOutcome outcome =
        run_portfolio(undirected_request(g, BackendId::kCfp));
    ASSERT_EQ(outcome.status, RunStatus::kComplete) << outcome.detail;
    const auto reference = brandes_bc(g);
    const ErrorStats stats =
        compare_vectors(outcome.result.betweenness, reference, 1e-9);
    EXPECT_LT(stats.max_rel_error, 1e-9)
        << "worst node " << stats.worst_index;
    EXPECT_EQ(outcome.result.diameter, diameter(g));
    // The pipelined cost model: 2(S-1) + 2D + 4 rounds, S = n sources.
    EXPECT_EQ(outcome.result.rounds,
              2ull * (g.num_nodes() - 1) + 2ull * diameter(g) + 4);
    EXPECT_GT(outcome.result.metrics.total_logical_messages, 0u);
  }
}

TEST(CfpBackend, HonorsHalveAndSourceMasks) {
  Rng rng(37);
  const Graph g = gen::erdos_renyi_connected(24, 0.25, rng);
  // halve=false doubles every undirected score exactly.
  BackendRequest unhalved = undirected_request(g, BackendId::kCfp);
  unhalved.options.halve = false;
  const auto full = run_portfolio(unhalved);
  BcOptions opts;
  opts.halve = false;
  const ErrorStats stats =
      compare_vectors(full.result.betweenness, brandes_bc(g, opts), 1e-9);
  EXPECT_LT(stats.max_rel_error, 1e-9);

  // A restricted source mask must match Brandes restricted the same way
  // — computed here by the naive per-source accumulation on a path,
  // where the partial sums are known exactly.
  const Graph path = gen::path(6);
  BackendRequest masked = undirected_request(path, BackendId::kCfp);
  std::vector<bool> sources(6, false);
  sources[0] = true;
  masked.options.sources = sources;
  masked.options.halve = false;
  masked.options.scale_by_sources = false;  // raw partial sums, no N/|S|
  const auto partial = run_portfolio(masked);
  // From source 0 on a 6-path, node v in 1..4 covers targets v+1..5:
  // dependency = 5 - v.
  for (NodeId v = 1; v + 1 < 6; ++v) {
    EXPECT_DOUBLE_EQ(partial.result.betweenness[v],
                     static_cast<double>(5 - v));
  }
  EXPECT_DOUBLE_EQ(partial.result.betweenness[0], 0.0);
  EXPECT_DOUBLE_EQ(partial.result.betweenness[5], 0.0);
}

TEST(CfpBackend, RequiresConnectedGraph) {
  const Graph disconnected(4, {{0, 1}, {2, 3}});
  EXPECT_THROW(
      run_portfolio(undirected_request(disconnected, BackendId::kCfp)),
      PreconditionError);
}

// ---------------------------------------------------------------------
// directed: vs the centralized directed Brandes checker

TEST(DirectedBackend, MatchesDirectedBrandesOnRandomDigraphs) {
  for (const std::uint64_t seed : {3ull, 5ull, 9ull}) {
    Rng rng(seed);
    const Digraph g = gen::directed_erdos_renyi(32, 0.15, rng);
    const RunOutcome outcome = run_portfolio(directed_request(g));
    ASSERT_EQ(outcome.status, RunStatus::kComplete) << outcome.detail;
    const auto reference = directed_brandes_bc(g);
    const ErrorStats stats =
        compare_vectors(outcome.result.betweenness, reference, 1e-9);
    EXPECT_LT(stats.max_rel_error, 1e-9)
        << "seed " << seed << " worst node " << stats.worst_index;
  }
}

TEST(DirectedBackend, DirectedCycleGivesOrderedPairCounts) {
  // On a directed n-cycle every ordered pair (s, t), s != t, has one
  // shortest path through every interior node: C_B(v) = sum over pairs
  // whose path crosses v = (n-1)(n-2)/2 for every v.
  const NodeId n = 7;
  std::vector<Arc> arcs;
  for (NodeId v = 0; v < n; ++v) {
    arcs.push_back({v, static_cast<NodeId>((v + 1) % n)});
  }
  const Digraph cycle(n, std::move(arcs));
  const RunOutcome outcome = run_portfolio(directed_request(cycle));
  ASSERT_EQ(outcome.status, RunStatus::kComplete) << outcome.detail;
  const double expected = static_cast<double>((n - 1) * (n - 2)) / 2.0;
  for (NodeId v = 0; v < n; ++v) {
    EXPECT_DOUBLE_EQ(outcome.result.betweenness[v], expected) << "node " << v;
  }
  // Longest shortest path wraps nearly all the way around.
  EXPECT_EQ(outcome.result.diameter, n - 1);
}

TEST(DirectedBackend, AntiparallelPairDiffersFromSingleArc) {
  // Orientation must matter: a path 0->1->2 funnels all (0, *) traffic
  // through 1, while the reverse arcs alone carry none of it.
  const Digraph forward(3, {{0, 1}, {1, 2}});
  const Digraph backward(3, {{1, 0}, {2, 1}});
  const auto f = run_portfolio(directed_request(forward));
  const auto b = run_portfolio(directed_request(backward));
  EXPECT_DOUBLE_EQ(f.result.betweenness[1], 1.0);
  EXPECT_DOUBLE_EQ(b.result.betweenness[1], 1.0);
  // But closeness of node 0 differs: it reaches both in `forward`,
  // nothing in `backward`.
  EXPECT_GT(f.result.closeness[0], 0.0);
  EXPECT_EQ(b.result.closeness[0], 0.0);
}

TEST(DirectedBackend, RequiresWeakConnectivity) {
  const Digraph disconnected(4, {{0, 1}, {2, 3}});
  EXPECT_THROW(run_portfolio(directed_request(disconnected)),
               PreconditionError);
}

// ---------------------------------------------------------------------
// sampled: determinism, exact degeneration, and the error bound

TEST(SampledBackend, DeterministicPerSeedAndSeedSensitive) {
  Rng rng(41);
  const Graph g = gen::barabasi_albert(64, 2, rng);
  BackendRequest request = undirected_request(g, BackendId::kSampled);
  request.options.approx_samples = 12;
  request.options.approx_seed = 5;
  const auto first = run_portfolio(request);
  const auto second = run_portfolio(request);
  ASSERT_EQ(first.status, RunStatus::kComplete) << first.detail;
  expect_bit_equal(second.result.betweenness, first.result.betweenness,
                   "betweenness replay");

  request.options.approx_seed = 6;
  const auto other_seed = run_portfolio(request);
  bool any_difference = false;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    any_difference |=
        other_seed.result.betweenness[v] != first.result.betweenness[v];
  }
  EXPECT_TRUE(any_difference) << "different seed drew identical estimates";
}

TEST(SampledBackend, FullBudgetDegeneratesToExact) {
  Rng rng(43);
  const Graph g = gen::erdos_renyi_connected(32, 0.2, rng);
  BackendRequest request = undirected_request(g, BackendId::kSampled);
  request.options.approx_samples = g.num_nodes();  // every node a source
  const auto sampled = run_portfolio(request);
  const auto exact = run_portfolio(undirected_request(g, BackendId::kPaperExact));
  ASSERT_EQ(sampled.status, RunStatus::kComplete) << sampled.detail;
  // N/|S| = 1: the estimator is the exact sum (scaling by 1.0 is exact
  // in IEEE, so this holds bitwise).
  expect_bit_equal(sampled.result.betweenness, exact.result.betweenness,
                   "full-budget betweenness");
}

TEST(SampledBackend, ObservedErrorStaysInsideTheStatedBound) {
  Rng rng(47);
  const Graph g = gen::erdos_renyi_connected(64, 0.1, rng);
  const auto reference = brandes_bc(g);
  const std::uint32_t samples = 16;
  const double bound = sampled_error_bound(g.num_nodes(), samples, 0.05);
  for (const std::uint64_t seed : {1ull, 2ull, 3ull, 4ull, 5ull}) {
    BackendRequest request = undirected_request(g, BackendId::kSampled);
    request.options.approx_samples = samples;
    request.options.approx_seed = seed;
    const auto outcome = run_portfolio(request);
    ASSERT_EQ(outcome.status, RunStatus::kComplete) << outcome.detail;
    const ErrorStats stats =
        compare_vectors(outcome.result.betweenness, reference, 1e-6);
    EXPECT_LE(stats.max_abs_error, bound) << "seed " << seed;
  }
}

TEST(SampledBackend, DefaultBudgetRunsFewerCountingWaves) {
  Rng rng(53);
  const Graph g = gen::barabasi_albert(128, 2, rng);
  const auto sampled =
      run_portfolio(undirected_request(g, BackendId::kSampled));
  const auto exact =
      run_portfolio(undirected_request(g, BackendId::kPaperExact));
  ASSERT_EQ(sampled.status, RunStatus::kComplete) << sampled.detail;
  // The speed claim in its cheapest proxy: strictly fewer rounds (the
  // wall-clock version is pinned by bench_portfolio's self-gate).
  EXPECT_LT(sampled.result.rounds, exact.result.rounds);
}

}  // namespace
}  // namespace congestbc::portfolio
