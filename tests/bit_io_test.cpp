#include "common/bit_io.hpp"

#include <gtest/gtest.h>

#include "common/assert.hpp"
#include "common/rng.hpp"

namespace congestbc {
namespace {

TEST(BitIo, RoundTripSingleField) {
  BitWriter w;
  w.write(0b1011, 4);
  EXPECT_EQ(w.bit_size(), 4u);
  BitReader r(w.bytes(), w.bit_size());
  EXPECT_EQ(r.read(4), 0b1011u);
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(BitIo, RoundTripMixedFields) {
  BitWriter w;
  w.write(1, 1);
  w.write(0xABCD, 16);
  w.write_bool(true);
  w.write(0x123456789ABCDEFull, 60);
  w.write(0, 3);
  BitReader r(w.bytes(), w.bit_size());
  EXPECT_EQ(r.read(1), 1u);
  EXPECT_EQ(r.read(16), 0xABCDu);
  EXPECT_TRUE(r.read_bool());
  EXPECT_EQ(r.read(60), 0x123456789ABCDEFull);
  EXPECT_EQ(r.read(3), 0u);
}

TEST(BitIo, SixtyFourBitField) {
  BitWriter w;
  w.write(UINT64_MAX, 64);
  BitReader r(w.bytes(), w.bit_size());
  EXPECT_EQ(r.read(64), UINT64_MAX);
}

TEST(BitIo, ZeroWidthFieldIsNoop) {
  BitWriter w;
  w.write(0, 0);
  EXPECT_EQ(w.bit_size(), 0u);
}

TEST(BitIo, RejectsOverwideValue) {
  BitWriter w;
  EXPECT_THROW(w.write(4, 2), PreconditionError);
}

TEST(BitIo, RejectsOverwideField) {
  BitWriter w;
  EXPECT_THROW(w.write(0, 65), PreconditionError);
}

TEST(BitIo, ReadPastEndThrows) {
  BitWriter w;
  w.write(3, 2);
  BitReader r(w.bytes(), w.bit_size());
  r.read(2);
  EXPECT_THROW(r.read(1), InvariantError);
}

TEST(BitIo, VarUintRoundTrip) {
  BitWriter w;
  const std::uint64_t values[] = {0, 1, 2, 127, 128, 1u << 20, UINT64_MAX};
  for (const auto v : values) {
    w.write_varuint(v);
  }
  BitReader r(w.bytes(), w.bit_size());
  for (const auto v : values) {
    EXPECT_EQ(r.read_varuint(), v);
  }
}

TEST(BitIo, RandomizedRoundTrip) {
  Rng rng(42);
  for (int trial = 0; trial < 200; ++trial) {
    BitWriter w;
    std::vector<std::pair<std::uint64_t, unsigned>> fields;
    const int count = static_cast<int>(rng.next_below(30)) + 1;
    for (int i = 0; i < count; ++i) {
      const unsigned bits = static_cast<unsigned>(rng.next_below(64)) + 1;
      const std::uint64_t mask =
          bits == 64 ? UINT64_MAX : ((std::uint64_t{1} << bits) - 1);
      const std::uint64_t value = rng.next_u64() & mask;
      fields.emplace_back(value, bits);
      w.write(value, bits);
    }
    BitReader r(w.bytes(), w.bit_size());
    for (const auto& [value, bits] : fields) {
      ASSERT_EQ(r.read(bits), value);
    }
    ASSERT_EQ(r.remaining(), 0u);
  }
}

TEST(BitWidth, KnownValues) {
  EXPECT_EQ(bit_width_u64(0), 1u);
  EXPECT_EQ(bit_width_u64(1), 1u);
  EXPECT_EQ(bit_width_u64(2), 2u);
  EXPECT_EQ(bit_width_u64(255), 8u);
  EXPECT_EQ(bit_width_u64(256), 9u);
  EXPECT_EQ(bit_width_u64(UINT64_MAX), 64u);
}

TEST(CeilLog2, KnownValues) {
  EXPECT_EQ(ceil_log2(1), 0u);
  EXPECT_EQ(ceil_log2(2), 1u);
  EXPECT_EQ(ceil_log2(3), 2u);
  EXPECT_EQ(ceil_log2(4), 2u);
  EXPECT_EQ(ceil_log2(5), 3u);
  EXPECT_EQ(ceil_log2(1024), 10u);
  EXPECT_EQ(ceil_log2(1025), 11u);
}

TEST(CeilLog2, RejectsZero) {
  EXPECT_THROW(ceil_log2(0), PreconditionError);
}

}  // namespace
}  // namespace congestbc
