// The frontier-aware engine (DESIGN.md §13) must be a pure optimization:
//   * BC values, metrics, trace stream, and fault outcomes are
//     bit-identical to the static-partition arena engine and the PR-1
//     legacy engine, for every thread count, fault-free and under the
//     mixed fault plan;
//   * identity holds on generated scale-free graphs with sampled sources
//     (the workloads the engine exists for), not just the tiny datasets;
//   * PR-3 snapshots round-trip the engine's rebuilt-on-resume wake
//     state: kill-and-resume is bit-identical to the uninterrupted run,
//     including resuming under a *different* engine than wrote the
//     snapshot (the snapshot format is engine-agnostic).
//
// The tests force frontier_min_parallel_nodes = 1 and
// frontier_clamp_lanes = false so the multi-lane dispatch path really
// runs — even on a single-core CI host and under TSan.
#include <gtest/gtest.h>

#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "algo/bc_pipeline.hpp"
#include "common/rng.hpp"
#include "congest/fault.hpp"
#include "congest/network.hpp"
#include "congest/trace.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"

#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define CBC_UNDER_SANITIZER 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define CBC_UNDER_SANITIZER 1
#endif
#endif

namespace congestbc {
namespace {

Graph load_dataset(const char* name) {
  for (const std::string prefix : {"data/", "../data/", "../../data/"}) {
    std::ifstream file(prefix + name);
    if (file.good()) {
      return read_edge_list(file);
    }
  }
  throw std::runtime_error(std::string("data/") + name +
                           " not found (run from repo root)");
}

/// The PR-1 mixed adversity plan (same parameters as engine_test.cpp so
/// the two suites witness the same fault stream).
FaultPlan mixed_fault_plan(const Graph& g) {
  FaultPlan plan;
  plan.seed = 99;
  plan.drop_probability = 0.05;
  plan.duplicate_probability = 0.05;
  plan.delay_probability = 0.05;
  const NodeId u = 0;
  const NodeId v = g.neighbors(u).front();
  plan.link_faults.push_back(LinkFault{Edge{u, v}, {10, 60}});
  plan.node_faults.push_back(NodeFault{5, {20, 40}});
  return plan;
}

/// Base options that force the frontier engine's parallel machinery on:
/// no lane clamping (real lanes even when nproc = 1) and parallel
/// dispatch from the very first active node.
DistributedBcOptions frontier_options(unsigned threads) {
  DistributedBcOptions options;
  options.engine = EngineKind::kFrontier;
  options.threads = threads;
  options.frontier_clamp_lanes = false;
  options.frontier_min_parallel_nodes = 1;
  return options;
}

/// Marks `k` seed-drawn distinct sources on an n-node graph.
std::vector<bool> sampled_sources(NodeId n, std::uint64_t k,
                                  std::uint64_t seed) {
  Rng rng(seed);
  std::vector<bool> mask(n, false);
  for (const std::uint64_t s : rng.sample_without_replacement(n, k)) {
    mask[static_cast<std::size_t>(s)] = true;
  }
  return mask;
}

struct Observed {
  DistributedBcResult result;
  std::vector<TraceEvent> events;
  std::vector<FaultEvent> fault_events;
};

Observed observe(const Graph& g, DistributedBcOptions options) {
  MessageTrace trace;
  options.trace = &trace;
  Observed o;
  o.result = run_distributed_bc(g, options);
  o.events = trace.events();
  o.fault_events = trace.fault_events();
  return o;
}

void expect_identical(const Observed& a, const Observed& b) {
  EXPECT_EQ(a.result.metrics, b.result.metrics);
  EXPECT_EQ(a.result.betweenness, b.result.betweenness);
  EXPECT_EQ(a.result.closeness, b.result.closeness);
  EXPECT_EQ(a.result.graph_centrality, b.result.graph_centrality);
  EXPECT_EQ(a.result.stress, b.result.stress);
  EXPECT_EQ(a.result.eccentricities, b.result.eccentricities);
  EXPECT_EQ(a.result.diameter, b.result.diameter);
  EXPECT_EQ(a.result.rounds, b.result.rounds);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.fault_events, b.fault_events);
}

// ------------------------------------------- the three-engine identity
//
// Reference = arena @ 1 thread.  Everything else — legacy, arena @ many
// threads, frontier @ {1, 2, 4, 8} — must observe the same stream.

void expect_engine_matrix_identical(const Graph& g,
                                    DistributedBcOptions base) {
  base.frontier_clamp_lanes = false;
  base.frontier_min_parallel_nodes = 1;

  DistributedBcOptions arena = base;
  arena.engine = EngineKind::kArena;
  arena.threads = 1;
  const Observed reference = observe(g, arena);

  {
    SCOPED_TRACE("legacy");
    DistributedBcOptions legacy = base;
    legacy.engine = EngineKind::kLegacy;
    expect_identical(reference, observe(g, legacy));
  }
  for (const unsigned threads : {2u, 8u}) {
    SCOPED_TRACE("arena threads=" + std::to_string(threads));
    arena.threads = threads;
    expect_identical(reference, observe(g, arena));
  }
  for (const unsigned threads : {1u, 2u, 4u, 8u}) {
    SCOPED_TRACE("frontier threads=" + std::to_string(threads));
    DistributedBcOptions frontier = base;
    frontier.engine = EngineKind::kFrontier;
    frontier.threads = threads;
    expect_identical(reference, observe(g, frontier));
  }
}

TEST(FrontierIdentity, FaultFreeKarate) {
  expect_engine_matrix_identical(load_dataset("karate.txt"), {});
}

TEST(FrontierIdentity, FaultFreeLesmis) {
  expect_engine_matrix_identical(load_dataset("lesmis.txt"), {});
}

TEST(FrontierIdentity, MixedFaultsKarate) {
  const Graph g = load_dataset("karate.txt");
  DistributedBcOptions options;
  options.reliable_transport = true;
  options.faults = mixed_fault_plan(g);
  expect_engine_matrix_identical(g, options);
}

TEST(FrontierIdentity, MixedFaultsLesmis) {
  const Graph g = load_dataset("lesmis.txt");
  DistributedBcOptions options;
  options.reliable_transport = true;
  options.faults = mixed_fault_plan(g);
  expect_engine_matrix_identical(g, options);
}

// --------------------------------------- generated graphs, sampled BC
//
// The workloads the frontier engine exists for: scale-free generators
// with a sampled source set, where the active set is a sliver of N for
// most of the run.  Legacy is omitted above 2k nodes (it is ~100x
// slower and its identity is already pinned on the datasets).

TEST(FrontierIdentity, Ba2000SampledSources) {
  Rng rng(7);
  const Graph g = gen::barabasi_albert(2000, 2, rng);
  DistributedBcOptions base;
  base.sources = sampled_sources(g.num_nodes(), 16, 11);

  DistributedBcOptions arena = base;
  arena.engine = EngineKind::kArena;
  arena.threads = 1;
  const Observed reference = observe(g, arena);

  for (const unsigned threads : {1u, 2u, 4u, 8u}) {
    SCOPED_TRACE("frontier threads=" + std::to_string(threads));
    DistributedBcOptions frontier = frontier_options(threads);
    frontier.sources = base.sources;
    expect_identical(reference, observe(g, frontier));
  }
}

TEST(FrontierIdentity, Ba10kSampledSources) {
#ifdef CBC_UNDER_SANITIZER
  GTEST_SKIP() << "10k-node identity run is minutes under sanitizers; "
                  "the same path is covered at 2k nodes above";
#endif
  Rng rng(13);
  const Graph g = gen::barabasi_albert(10'000, 2, rng);
  DistributedBcOptions base;
  base.sources = sampled_sources(g.num_nodes(), 4, 17);

  DistributedBcOptions arena = base;
  arena.engine = EngineKind::kArena;
  arena.threads = 1;
  const Observed reference = observe(g, arena);

  for (const unsigned threads : {1u, 8u}) {
    SCOPED_TRACE("frontier threads=" + std::to_string(threads));
    DistributedBcOptions frontier = frontier_options(threads);
    frontier.sources = base.sources;
    expect_identical(reference, observe(g, frontier));
  }
}

TEST(FrontierIdentity, SparseErWithFaults) {
  Rng rng(23);
  const Graph g = gen::erdos_renyi_sparse(600, 4.0, rng);
  DistributedBcOptions options;
  options.reliable_transport = true;
  options.faults = mixed_fault_plan(g);
  options.sources = sampled_sources(g.num_nodes(), 6, 29);

  DistributedBcOptions arena = options;
  arena.engine = EngineKind::kArena;
  arena.threads = 1;
  const Observed reference = observe(g, arena);

  for (const unsigned threads : {1u, 4u}) {
    SCOPED_TRACE("frontier threads=" + std::to_string(threads));
    DistributedBcOptions frontier = frontier_options(threads);
    frontier.reliable_transport = options.reliable_transport;
    frontier.faults = options.faults;
    frontier.sources = options.sources;
    expect_identical(reference, observe(g, frontier));
  }
}

// ------------------------------------------------------ kill-and-resume
//
// The frontier engine keeps per-node wake state (SoA arrays + timer
// heap) that is *not* serialized: snapshots stay engine-agnostic and the
// wake state is rebuilt from NodeProgram::next_active_round on resume.
// These tests prove the rebuild is exact — resumed runs are
// bit-identical to uninterrupted ones, across engines and thread counts.

Observed run_halted(const Graph& g, DistributedBcOptions options,
                    std::uint64_t halt_round, const std::string& file) {
  MessageTrace trace;
  options.trace = &trace;
  options.halt_at_round = halt_round;
  BcRun run(g, options);
  run.run();
  EXPECT_TRUE(run.suspended());
  std::ofstream out(file, std::ios::binary);
  run.save_snapshot(out);
  Observed o;
  o.result = run.harvest();
  o.events = trace.events();
  o.fault_events = trace.fault_events();
  return o;
}

Observed run_resumed(const Graph& g, DistributedBcOptions options,
                     const std::string& file) {
  options.resume_from = file;
  return observe(g, options);
}

/// Full frontier run vs halt-at-`halt_round` + resume; the writer and
/// the resumer may use different engines/thread counts.  Checks outputs
/// and the stitched trace (full == halted prefix + resumed suffix).
void check_resume(const Graph& g, const DistributedBcOptions& base,
                  const Observed& full, std::uint64_t halt_round,
                  const DistributedBcOptions& writer_opts,
                  const DistributedBcOptions& resumer_opts,
                  const std::string& tag) {
  SCOPED_TRACE(tag + " halt@" + std::to_string(halt_round));
  const std::string file =
      testing::TempDir() + "frontier_resume_" + tag + ".snap";

  DistributedBcOptions writer = base;
  writer.engine = writer_opts.engine;
  writer.threads = writer_opts.threads;
  writer.frontier_clamp_lanes = false;
  writer.frontier_min_parallel_nodes = 1;
  const Observed halted = run_halted(g, writer, halt_round, file);
  EXPECT_TRUE(halted.result.suspended);
  EXPECT_EQ(halted.result.rounds, halt_round);

  DistributedBcOptions resumer = base;
  resumer.engine = resumer_opts.engine;
  resumer.threads = resumer_opts.threads;
  resumer.frontier_clamp_lanes = false;
  resumer.frontier_min_parallel_nodes = 1;
  const Observed resumed = run_resumed(g, resumer, file);
  EXPECT_FALSE(resumed.result.suspended);
  ASSERT_TRUE(resumed.result.resumed_from_round.has_value());
  EXPECT_EQ(*resumed.result.resumed_from_round, halt_round);

  EXPECT_EQ(full.result.betweenness, resumed.result.betweenness);
  EXPECT_EQ(full.result.closeness, resumed.result.closeness);
  EXPECT_EQ(full.result.stress, resumed.result.stress);
  EXPECT_EQ(full.result.eccentricities, resumed.result.eccentricities);
  EXPECT_EQ(full.result.diameter, resumed.result.diameter);
  EXPECT_EQ(full.result.rounds, resumed.result.rounds);
  EXPECT_EQ(full.result.metrics, resumed.result.metrics);

  std::vector<TraceEvent> stitched = halted.events;
  stitched.insert(stitched.end(), resumed.events.begin(),
                  resumed.events.end());
  EXPECT_EQ(full.events, stitched);
  std::vector<FaultEvent> stitched_faults = halted.fault_events;
  stitched_faults.insert(stitched_faults.end(), resumed.fault_events.begin(),
                         resumed.fault_events.end());
  EXPECT_EQ(full.fault_events, stitched_faults);
}

DistributedBcOptions engine_at(EngineKind engine, unsigned threads) {
  DistributedBcOptions o;
  o.engine = engine;
  o.threads = threads;
  return o;
}

TEST(FrontierResume, KarateRoundTripsAcrossEnginesAndThreads) {
  const Graph g = load_dataset("karate.txt");
  const DistributedBcOptions base = frontier_options(1);
  const Observed full = observe(g, base);
  ASSERT_GT(full.result.rounds, 50u);
  const std::uint64_t mid = full.result.rounds / 2;

  // Same-engine round trips at several boundaries and thread counts.
  check_resume(g, base, full, 1, engine_at(EngineKind::kFrontier, 1),
               engine_at(EngineKind::kFrontier, 1), "frontier1_frontier1");
  check_resume(g, base, full, mid, engine_at(EngineKind::kFrontier, 1),
               engine_at(EngineKind::kFrontier, 8), "frontier1_frontier8");
  check_resume(g, base, full, full.result.rounds - 1,
               engine_at(EngineKind::kFrontier, 4),
               engine_at(EngineKind::kFrontier, 2), "frontier4_frontier2");

  // Cross-engine: arena-written snapshot resumed under frontier and the
  // reverse — the snapshot format carries no engine state.
  check_resume(g, base, full, mid, engine_at(EngineKind::kArena, 1),
               engine_at(EngineKind::kFrontier, 4), "arena_frontier");
  check_resume(g, base, full, mid, engine_at(EngineKind::kFrontier, 4),
               engine_at(EngineKind::kArena, 1), "frontier_arena");
  check_resume(g, base, full, mid, engine_at(EngineKind::kLegacy, 1),
               engine_at(EngineKind::kFrontier, 2), "legacy_frontier");
}

TEST(FrontierResume, MixedFaultsKarateRoundTrips) {
  const Graph g = load_dataset("karate.txt");
  DistributedBcOptions base = frontier_options(1);
  base.reliable_transport = true;
  base.faults = mixed_fault_plan(g);
  const Observed full = observe(g, base);
  ASSERT_GT(full.result.rounds, 60u);

  // Halt inside the fault window (rounds 20-40 have a crashed node and
  // 10-60 a dead link) so delayed mailboxes and crash state cross the
  // snapshot boundary.
  check_resume(g, base, full, 30, engine_at(EngineKind::kFrontier, 2),
               engine_at(EngineKind::kFrontier, 8), "faults_mid_window");
  check_resume(g, base, full, 30, engine_at(EngineKind::kArena, 1),
               engine_at(EngineKind::kFrontier, 4), "faults_arena_frontier");
  check_resume(g, base, full, full.result.rounds / 2,
               engine_at(EngineKind::kFrontier, 4),
               engine_at(EngineKind::kFrontier, 1), "faults_late");
}

TEST(FrontierResume, Ba2000SampledRoundTrip) {
  Rng rng(7);
  const Graph g = gen::barabasi_albert(2000, 2, rng);
  DistributedBcOptions base = frontier_options(1);
  base.sources = sampled_sources(g.num_nodes(), 8, 11);
  const Observed full = observe(g, base);
  ASSERT_GT(full.result.rounds, 100u);

  // Halt deep in the run, where the active set is a sliver of N and the
  // wake heap carries far-future timers that must be rebuilt on resume.
  check_resume(g, base, full, full.result.rounds * 3 / 4,
               engine_at(EngineKind::kFrontier, 4),
               engine_at(EngineKind::kFrontier, 1), "ba2000_deep");
  check_resume(g, base, full, full.result.rounds / 4,
               engine_at(EngineKind::kFrontier, 1),
               engine_at(EngineKind::kArena, 2), "ba2000_frontier_arena");
}

}  // namespace
}  // namespace congestbc
