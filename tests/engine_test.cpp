// The parallel deterministic round engine (DESIGN.md, execution engine):
//   * metrics, trace stream, fault outcomes, and BC values are
//     bit-identical for every thread count — fault-free and under the
//     mixed fault plan — because node execution is data-parallel over
//     disjoint state and every observable effect happens in the
//     sequential merge phase in node-id order;
//   * the PR-1 legacy engine (NetworkConfig::legacy_engine) produces the
//     same observable stream, so the zero-allocation path is a pure
//     optimization;
//   * the building blocks (ThreadPool, PayloadArena, BitWriter reuse)
//     behave as their contracts promise.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <fstream>
#include <stdexcept>
#include <vector>

#include "algo/bc_pipeline.hpp"
#include "common/bit_io.hpp"
#include "congest/arena.hpp"
#include "congest/fault.hpp"
#include "congest/network.hpp"
#include "congest/trace.hpp"
#include "core/thread_pool.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"

namespace congestbc {
namespace {

Graph load_dataset(const char* name) {
  for (const std::string prefix : {"data/", "../data/", "../../data/"}) {
    std::ifstream file(prefix + name);
    if (file.good()) {
      return read_edge_list(file);
    }
  }
  throw std::runtime_error(std::string("data/") + name +
                           " not found (run from repo root)");
}

/// The PR-1 mixed adversity plan: hash-drawn drop/duplicate/delay plus a
/// transient link outage (on an edge the graph actually has) and a
/// transient crash-restart.
FaultPlan mixed_fault_plan(const Graph& g) {
  FaultPlan plan;
  plan.seed = 99;
  plan.drop_probability = 0.05;
  plan.duplicate_probability = 0.05;
  plan.delay_probability = 0.05;
  const NodeId u = 0;
  const NodeId v = g.neighbors(u).front();
  plan.link_faults.push_back(LinkFault{Edge{u, v}, {10, 60}});
  plan.node_faults.push_back(NodeFault{5, {20, 40}});
  return plan;
}

struct Observed {
  DistributedBcResult result;
  std::vector<TraceEvent> events;
  std::vector<FaultEvent> fault_events;
};

Observed observe(const Graph& g, DistributedBcOptions options) {
  MessageTrace trace;
  options.trace = &trace;
  Observed o;
  o.result = run_distributed_bc(g, options);
  o.events = trace.events();
  o.fault_events = trace.fault_events();
  return o;
}

void expect_identical(const Observed& a, const Observed& b) {
  EXPECT_EQ(a.result.metrics, b.result.metrics);
  EXPECT_EQ(a.result.betweenness, b.result.betweenness);
  EXPECT_EQ(a.result.closeness, b.result.closeness);
  EXPECT_EQ(a.result.graph_centrality, b.result.graph_centrality);
  EXPECT_EQ(a.result.stress, b.result.stress);
  EXPECT_EQ(a.result.eccentricities, b.result.eccentricities);
  EXPECT_EQ(a.result.diameter, b.result.diameter);
  EXPECT_EQ(a.result.rounds, b.result.rounds);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.fault_events, b.fault_events);
}

// --------------------------------------------- thread-count invariance

void expect_thread_count_invariant(const Graph& g,
                                   DistributedBcOptions options) {
  options.threads = 1;
  const Observed one = observe(g, options);
  for (const unsigned threads : {2u, 8u}) {
    options.threads = threads;
    const Observed many = observe(g, options);
    SCOPED_TRACE("threads=" + std::to_string(threads));
    expect_identical(one, many);
  }
}

TEST(EngineDeterminism, FaultFreeKarate) {
  expect_thread_count_invariant(load_dataset("karate.txt"), {});
}

TEST(EngineDeterminism, FaultFreeLesmis) {
  expect_thread_count_invariant(load_dataset("lesmis.txt"), {});
}

TEST(EngineDeterminism, MixedFaultsKarate) {
  const Graph g = load_dataset("karate.txt");
  DistributedBcOptions options;
  options.reliable_transport = true;
  options.faults = mixed_fault_plan(g);
  expect_thread_count_invariant(g, options);
}

TEST(EngineDeterminism, MixedFaultsLesmis) {
  const Graph g = load_dataset("lesmis.txt");
  DistributedBcOptions options;
  options.reliable_transport = true;
  options.faults = mixed_fault_plan(g);
  expect_thread_count_invariant(g, options);
}

TEST(EngineDeterminism, AutoThreadsMatchesSequential) {
  const Graph g = gen::grid(6, 6);
  DistributedBcOptions options;
  options.threads = 1;
  const Observed one = observe(g, options);
  options.threads = 0;  // one lane per hardware thread
  const Observed younger = observe(g, options);
  expect_identical(one, younger);
}

// ------------------------------------------------- legacy-engine parity

void expect_legacy_parity(const Graph& g, DistributedBcOptions options) {
  options.legacy_engine = false;
  options.threads = 1;
  const Observed engine = observe(g, options);
  options.legacy_engine = true;
  const Observed legacy = observe(g, options);
  expect_identical(engine, legacy);
}

TEST(EngineBaseline, LegacyBitIdenticalFaultFree) {
  expect_legacy_parity(load_dataset("karate.txt"), {});
}

TEST(EngineBaseline, LegacyBitIdenticalUnderMixedFaults) {
  const Graph g = load_dataset("karate.txt");
  DistributedBcOptions options;
  options.reliable_transport = true;
  options.faults = mixed_fault_plan(g);
  expect_legacy_parity(g, options);
}

TEST(EngineBaseline, LegacyBitIdenticalWithCutAccounting) {
  const Graph g = gen::barbell(6, 4);
  DistributedBcOptions options;
  options.cut_edges = {Edge{5, 6}};  // the barbell bridge
  expect_legacy_parity(g, options);
}

// ------------------------------------------------------------ ThreadPool

TEST(ThreadPoolTest, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_ranges(hits.size(), [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      hits[i].fetch_add(1);
    }
  });
  for (const auto& h : hits) {
    EXPECT_EQ(h.load(), 1);
  }
}

TEST(ThreadPoolTest, ReusableAcrossJobs) {
  ThreadPool pool(3);
  for (int job = 0; job < 50; ++job) {
    std::atomic<std::size_t> sum{0};
    pool.parallel_ranges(101, [&](std::size_t lo, std::size_t hi) {
      std::size_t local = 0;
      for (std::size_t i = lo; i < hi; ++i) {
        local += i;
      }
      sum.fetch_add(local);
    });
    EXPECT_EQ(sum.load(), 101u * 100u / 2u);
  }
}

TEST(ThreadPoolTest, RethrowsLowestChunkException) {
  ThreadPool pool(4);
  try {
    pool.parallel_ranges(400, [&](std::size_t lo, std::size_t) {
      throw std::runtime_error("chunk@" + std::to_string(lo));
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "chunk@0");
  }
}

TEST(ThreadPoolTest, EmptyAndTinyCounts) {
  ThreadPool pool(8);
  std::atomic<int> calls{0};
  pool.parallel_ranges(0, [&](std::size_t, std::size_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 0);
  pool.parallel_ranges(1, [&](std::size_t lo, std::size_t hi) {
    EXPECT_EQ(lo, 0u);
    EXPECT_EQ(hi, 1u);
    calls.fetch_add(1);
  });
  EXPECT_EQ(calls.load(), 1);
}

// ----------------------------------------------------------- PayloadArena

TEST(PayloadArenaTest, PointersStableWithinGeneration) {
  PayloadArena arena(64);
  std::vector<std::uint8_t*> ptrs;
  for (int i = 0; i < 100; ++i) {
    std::uint8_t* p = arena.allocate(17);
    std::memset(p, i, 17);
    ptrs.push_back(p);
  }
  for (int i = 0; i < 100; ++i) {
    for (int j = 0; j < 17; ++j) {
      EXPECT_EQ(ptrs[static_cast<std::size_t>(i)][j], i);
    }
  }
}

TEST(PayloadArenaTest, ResetCoalescesToZeroSteadyStateAllocations) {
  PayloadArena arena(64);
  for (int i = 0; i < 40; ++i) {
    arena.allocate(100);
  }
  arena.reset();
  const std::uint64_t after_warmup = arena.block_allocations();
  for (int round = 0; round < 50; ++round) {
    for (int i = 0; i < 40; ++i) {
      arena.allocate(100);
    }
    arena.reset();
  }
  EXPECT_EQ(arena.block_allocations(), after_warmup);
}

TEST(PayloadArenaTest, TracksBytesInUse) {
  PayloadArena arena;
  EXPECT_EQ(arena.bytes_in_use(), 0u);
  arena.allocate(10);
  arena.allocate(5);
  EXPECT_EQ(arena.bytes_in_use(), 15u);
  arena.reset();
  EXPECT_EQ(arena.bytes_in_use(), 0u);
}

// ------------------------------------------------------- BitWriter reuse

TEST(BitWriterReuse, ClearKeepsContentCorrect) {
  BitWriter w;
  w.write(0x2b, 6);
  w.clear();
  EXPECT_EQ(w.bit_size(), 0u);
  w.write(0x15, 5);
  BitReader r(w.data(), w.bit_size());
  EXPECT_EQ(r.read(5), 0x15u);
}

TEST(BitWriterReuse, AppendMatchesBitwiseCopy) {
  // The aligned bulk path and the bit-by-bit path must agree.
  BitWriter src;
  for (int i = 0; i < 23; ++i) {
    src.write(static_cast<std::uint64_t>(i * 7 % 32), 5);
  }
  BitWriter aligned;
  aligned.append(src.data(), src.bit_size());  // starts byte-aligned
  BitWriter offset;
  offset.write(1, 3);  // force the unaligned path
  offset.append(src.data(), src.bit_size());

  BitReader ra(aligned.data(), aligned.bit_size());
  BitReader ro(offset.data(), offset.bit_size());
  EXPECT_EQ(ro.read(3), 1u);
  for (int i = 0; i < 23; ++i) {
    const auto expected = static_cast<std::uint64_t>(i * 7 % 32);
    EXPECT_EQ(ra.read(5), expected);
    EXPECT_EQ(ro.read(5), expected);
  }
}

TEST(BitWriterReuse, ReserveBitsDoesNotChangeContent) {
  BitWriter w;
  w.write(0xab, 8);
  w.reserve_bits(10'000);
  EXPECT_EQ(w.bit_size(), 8u);
  w.write(0x3, 2);
  BitReader r(w.data(), w.bit_size());
  EXPECT_EQ(r.read(8), 0xabu);
  EXPECT_EQ(r.read(2), 0x3u);
}

// --------------------------------------------------- allocation counters

TEST(EngineAllocation, ArenaBlockCountIsDeterministicAndSmall) {
  const Graph g = load_dataset("karate.txt");
  Network net_a(g, NetworkConfig{});
  Network net_b(g, NetworkConfig{});
  BcProgramConfig config;
  config.wire = WireFormat::for_graph(g.num_nodes(),
                                      SoftFloatFormat::for_graph(g.num_nodes()));
  config.is_source.assign(g.num_nodes(), true);
  const auto factory = [&](NodeId v) {
    return std::make_unique<BcProgram>(v, config);
  };
  const RunMetrics a = net_a.run(factory);
  const RunMetrics b = net_b.run(factory);
  EXPECT_EQ(a, b);
  EXPECT_EQ(net_a.arena_block_allocations(), net_b.arena_block_allocations());
  // The whole point of the arena: block acquisitions are a warm-up cost,
  // orders of magnitude below the physical message count.
  EXPECT_LT(net_a.arena_block_allocations(), 64u);
  EXPECT_GT(a.total_physical_messages, 1000u);
}

}  // namespace
}  // namespace congestbc
