#include "congest/trace.hpp"

#include <gtest/gtest.h>

#include "algo/bc_pipeline.hpp"
#include "congest/network.hpp"
#include "graph/generators.hpp"

namespace congestbc {
namespace {

/// Node 0 sends one 3-bit message to each neighbor in round 0.
class OneShot final : public NodeProgram {
 public:
  explicit OneShot(NodeId id) : id_(id) {}
  void on_round(NodeContext& ctx) override {
    if (id_ == 0 && ctx.round() == 0) {
      BitWriter w;
      w.write(5, 3);
      for (const NodeId nbr : ctx.neighbors()) {
        ctx.send(nbr, w);
      }
    }
    done_ = true;
  }
  bool done() const override { return done_; }

 private:
  NodeId id_;
  bool done_ = false;
};

TEST(Trace, CapturesEveryMessage) {
  const Graph g = gen::star(5);
  MessageTrace trace;
  NetworkConfig config{64, 100, true, &trace};
  Network net(g, config);
  net.run([](NodeId id) { return std::make_unique<OneShot>(id); });
  EXPECT_EQ(trace.total_messages(), 4u);
  ASSERT_EQ(trace.events().size(), 4u);
  for (const auto& event : trace.events()) {
    EXPECT_EQ(event.round, 0u);
    EXPECT_EQ(event.from, 0u);
    EXPECT_EQ(event.bits, 3u);
    EXPECT_EQ(event.logical, 1u);
  }
  EXPECT_FALSE(trace.truncated());
}

TEST(Trace, PerRoundCountsMatchMetrics) {
  const Graph g = gen::path(8);
  MessageTrace trace;
  DistributedBcOptions options;
  options.trace = &trace;
  const auto result = run_distributed_bc(g, options);
  // The trace extends to the last round with traffic; the metrics cover
  // every simulated round (trailing quiet rounds included).
  ASSERT_LE(trace.messages_per_round().size(), result.metrics.per_round.size());
  for (std::size_t r = 0; r < result.metrics.per_round.size(); ++r) {
    const std::uint64_t traced = r < trace.messages_per_round().size()
                                     ? trace.messages_per_round()[r]
                                     : 0;
    EXPECT_EQ(traced, result.metrics.per_round[r].physical_messages)
        << "round " << r;
  }
  EXPECT_EQ(trace.total_messages(), result.metrics.total_physical_messages);
}

TEST(Trace, CapTruncatesEventsButNotAggregates) {
  const Graph g = gen::complete(6);
  MessageTrace trace(/*max_events=*/10);
  DistributedBcOptions options;
  options.trace = &trace;
  const auto result = run_distributed_bc(g, options);
  EXPECT_TRUE(trace.truncated());
  EXPECT_EQ(trace.events().size(), 10u);
  EXPECT_EQ(trace.total_messages(), result.metrics.total_physical_messages);
}

TEST(Trace, EventsInRound) {
  const Graph g = gen::star(4);
  MessageTrace trace;
  NetworkConfig config{64, 100, true, &trace};
  Network net(g, config);
  net.run([](NodeId id) { return std::make_unique<OneShot>(id); });
  EXPECT_EQ(trace.events_in_round(0).size(), 3u);
  EXPECT_TRUE(trace.events_in_round(5).empty());
}

TEST(Trace, TimelineShapesMatchActivity) {
  const Graph g = gen::path(12);
  MessageTrace trace;
  DistributedBcOptions options;
  options.trace = &trace;
  run_distributed_bc(g, options);
  const std::string line = trace.activity_timeline(32);
  EXPECT_EQ(line.size(), 32u);
  // The run has at least one busy bucket ('@' is the per-line peak).
  EXPECT_NE(line.find('@'), std::string::npos);
}

TEST(Trace, RunsAreFullyDeterministic) {
  // Two identical runs must produce bit-identical message sequences —
  // the reproducibility contract every experiment relies on.
  const Graph g = gen::grid(4, 4);
  auto run_once = [&] {
    auto trace = std::make_unique<MessageTrace>();
    DistributedBcOptions options;
    options.trace = trace.get();
    run_distributed_bc(g, options);
    return trace;
  };
  const auto a = run_once();
  const auto b = run_once();
  ASSERT_EQ(a->events().size(), b->events().size());
  for (std::size_t i = 0; i < a->events().size(); ++i) {
    const auto& ea = a->events()[i];
    const auto& eb = b->events()[i];
    ASSERT_EQ(ea.round, eb.round);
    ASSERT_EQ(ea.from, eb.from);
    ASSERT_EQ(ea.to, eb.to);
    ASSERT_EQ(ea.bits, eb.bits);
    ASSERT_EQ(ea.logical, eb.logical);
  }
}

TEST(Trace, EmptyTimeline) {
  MessageTrace trace;
  EXPECT_EQ(trace.activity_timeline(16), "");
}

}  // namespace
}  // namespace congestbc
