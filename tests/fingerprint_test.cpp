// Fingerprint subsystem tests (src/snapshot/fingerprint.hpp +
// algo options_fingerprint / run_fingerprint).
//
// The contract: the resume path and the service result cache key on the
// SAME bytes.  A fingerprint must be (a) stable across processes and
// representations of the same input, (b) sensitive to every
// result-determining field, and (c) insensitive to every
// execution-strategy knob the engine guarantees bit-identical results
// for — threads, engine choice, tracing, checkpoint plumbing.
#include <cstdint>
#include <vector>

#include "algo/bc_pipeline.hpp"
#include "congest/fault.hpp"
#include "graph/generators.hpp"
#include "graph/graph.hpp"
#include "gtest/gtest.h"
#include "snapshot/fingerprint.hpp"

namespace congestbc {
namespace {

Graph triangle_plus_tail() {
  return Graph(4, {{0, 1}, {1, 2}, {0, 2}, {2, 3}});
}

TEST(GraphFingerprint, StableAcrossEdgeOrderAndDuplicates) {
  const Graph a(4, {{0, 1}, {1, 2}, {0, 2}, {2, 3}});
  const Graph b(4, {{2, 3}, {0, 2}, {1, 2}, {0, 1}});       // permuted
  const Graph c(4, {{0, 1}, {1, 2}, {0, 2}, {2, 3}, {1, 0}});  // duplicate
  EXPECT_EQ(graph_fingerprint(a), graph_fingerprint(b));
  EXPECT_EQ(graph_fingerprint(a), graph_fingerprint(c));
}

TEST(GraphFingerprint, SensitiveToTopology) {
  const Graph base = triangle_plus_tail();
  const Graph extra_edge(4, {{0, 1}, {1, 2}, {0, 2}, {2, 3}, {1, 3}});
  const Graph extra_node(5, {{0, 1}, {1, 2}, {0, 2}, {2, 3}});
  EXPECT_NE(graph_fingerprint(base), graph_fingerprint(extra_edge));
  EXPECT_NE(graph_fingerprint(base), graph_fingerprint(extra_node));
}

TEST(FaultFingerprint, EmptyPlanIsZeroLikeNull) {
  const FaultPlan empty;
  EXPECT_EQ(fault_fingerprint(nullptr), 0u);
  EXPECT_EQ(fault_fingerprint(&empty), 0u);
}

TEST(FaultFingerprint, SensitiveToEveryParameter) {
  const FaultPlan base = FaultPlan::parse("drop=0.1,seed=7");
  EXPECT_NE(fault_fingerprint(&base), 0u);
  const FaultPlan other_seed = FaultPlan::parse("drop=0.1,seed=8");
  const FaultPlan other_rate = FaultPlan::parse("drop=0.2,seed=7");
  const FaultPlan with_crash = FaultPlan::parse("drop=0.1,seed=7,crash=1:5-9");
  EXPECT_NE(fault_fingerprint(&base), fault_fingerprint(&other_seed));
  EXPECT_NE(fault_fingerprint(&base), fault_fingerprint(&other_rate));
  EXPECT_NE(fault_fingerprint(&base), fault_fingerprint(&with_crash));
}

TEST(FingerprintBuilder, OrderAndTypeSensitive) {
  const auto ab =
      FingerprintBuilder().mix(1).mix(2).value();
  const auto ba =
      FingerprintBuilder().mix(2).mix(1).value();
  EXPECT_NE(ab, ba);
  // -0.0 and 0.0 have different bit patterns and must hash differently.
  EXPECT_NE(FingerprintBuilder().mix_double(0.0).value(),
            FingerprintBuilder().mix_double(-0.0).value());
  const std::uint8_t bytes[] = {1, 2, 3};
  EXPECT_EQ(FingerprintBuilder().mix_bytes(bytes, 3).value(),
            FingerprintBuilder().mix_bytes(bytes, 3).value());
}

TEST(OptionsFingerprint, ExplicitDefaultEqualsImplicitDefault) {
  const Graph g = gen::cycle(16);
  const DistributedBcOptions implicit;
  DistributedBcOptions explicit_defaults;
  // Spell out values options_fingerprint resolves from the graph size.
  explicit_defaults.format = SoftFloatFormat::for_graph(g.num_nodes());
  explicit_defaults.sources = std::vector<bool>(g.num_nodes(), true);
  explicit_defaults.targets = std::vector<bool>{};  // empty = every target
  EXPECT_EQ(options_fingerprint(implicit, g.num_nodes()),
            options_fingerprint(explicit_defaults, g.num_nodes()));
}

TEST(OptionsFingerprint, ExecutionKnobsAreExcluded) {
  const Graph g = gen::cycle(16);
  const DistributedBcOptions base;
  // Every knob the engine guarantees bit-identical results across must
  // NOT enter the fingerprint — that is what lets the service cache
  // serve a threads=4 submit from a threads=1 execution.
  DistributedBcOptions threads = base;
  threads.threads = 4;
  DistributedBcOptions legacy = base;
  legacy.legacy_engine = true;
  DistributedBcOptions stall = base;
  stall.stall_window = 12345;
  DistributedBcOptions checkpointed = base;
  checkpointed.checkpoint_every = 10;
  checkpointed.checkpoint_dir = "/tmp/somewhere";
  checkpointed.halt_at_round = 99;
  const auto fp = options_fingerprint(base, g.num_nodes());
  EXPECT_EQ(fp, options_fingerprint(threads, g.num_nodes()));
  EXPECT_EQ(fp, options_fingerprint(legacy, g.num_nodes()));
  EXPECT_EQ(fp, options_fingerprint(stall, g.num_nodes()));
  EXPECT_EQ(fp, options_fingerprint(checkpointed, g.num_nodes()));
}

TEST(OptionsFingerprint, ResultDeterminingFieldsAreIncluded) {
  const Graph g = gen::cycle(16);
  const DistributedBcOptions base;
  const auto fp = options_fingerprint(base, g.num_nodes());

  DistributedBcOptions halve = base;
  halve.halve = false;
  DistributedBcOptions reliable = base;
  reliable.reliable_transport = true;
  DistributedBcOptions rounds = base;
  rounds.max_rounds = 1234;
  DistributedBcOptions faulty = base;
  faulty.faults = FaultPlan::parse("drop=0.05,seed=3");
  DistributedBcOptions sampled = base;
  {
    std::vector<bool> mask(g.num_nodes(), true);
    mask[3] = false;
    sampled.sources = mask;
  }
  DistributedBcOptions format = base;
  {
    auto fmt = SoftFloatFormat::for_graph(g.num_nodes());
    fmt.mantissa_bits += 4;
    format.format = fmt;
  }
  EXPECT_NE(fp, options_fingerprint(halve, g.num_nodes()));
  EXPECT_NE(fp, options_fingerprint(reliable, g.num_nodes()));
  EXPECT_NE(fp, options_fingerprint(rounds, g.num_nodes()));
  EXPECT_NE(fp, options_fingerprint(faulty, g.num_nodes()));
  EXPECT_NE(fp, options_fingerprint(sampled, g.num_nodes()));
  EXPECT_NE(fp, options_fingerprint(format, g.num_nodes()));
}

TEST(RunFingerprint, CombinesGraphAndOptions) {
  const Graph a = gen::cycle(16);
  const Graph b = gen::path(16);
  const DistributedBcOptions base;
  DistributedBcOptions other = base;
  other.halve = false;
  EXPECT_EQ(run_fingerprint(a, base), run_fingerprint(a, base));
  EXPECT_NE(run_fingerprint(a, base), run_fingerprint(b, base));
  EXPECT_NE(run_fingerprint(a, base), run_fingerprint(a, other));
}

}  // namespace
}  // namespace congestbc
