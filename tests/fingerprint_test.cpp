// Fingerprint subsystem tests (src/snapshot/fingerprint.hpp +
// algo options_fingerprint / run_fingerprint).
//
// The contract: the resume path and the service result cache key on the
// SAME bytes.  A fingerprint must be (a) stable across processes and
// representations of the same input, (b) sensitive to every
// result-determining field, and (c) insensitive to every
// execution-strategy knob the engine guarantees bit-identical results
// for — threads, engine choice, tracing, checkpoint plumbing.
#include <cstdint>
#include <vector>

#include "algo/bc_pipeline.hpp"
#include "common/assert.hpp"
#include "congest/fault.hpp"
#include "graph/digraph.hpp"
#include "graph/generators.hpp"
#include "graph/graph.hpp"
#include "gtest/gtest.h"
#include "snapshot/fingerprint.hpp"
#include "stream/versioned_graph.hpp"

namespace congestbc {
namespace {

Graph triangle_plus_tail() {
  return Graph(4, {{0, 1}, {1, 2}, {0, 2}, {2, 3}});
}

TEST(GraphFingerprint, StableAcrossEdgeOrderAndDuplicates) {
  const Graph a(4, {{0, 1}, {1, 2}, {0, 2}, {2, 3}});
  const Graph b(4, {{2, 3}, {0, 2}, {1, 2}, {0, 1}});       // permuted
  const Graph c(4, {{0, 1}, {1, 2}, {0, 2}, {2, 3}, {1, 0}});  // duplicate
  EXPECT_EQ(graph_fingerprint(a), graph_fingerprint(b));
  EXPECT_EQ(graph_fingerprint(a), graph_fingerprint(c));
}

TEST(GraphFingerprint, SensitiveToTopology) {
  const Graph base = triangle_plus_tail();
  const Graph extra_edge(4, {{0, 1}, {1, 2}, {0, 2}, {2, 3}, {1, 3}});
  const Graph extra_node(5, {{0, 1}, {1, 2}, {0, 2}, {2, 3}});
  EXPECT_NE(graph_fingerprint(base), graph_fingerprint(extra_edge));
  EXPECT_NE(graph_fingerprint(base), graph_fingerprint(extra_node));
}

TEST(FaultFingerprint, EmptyPlanIsZeroLikeNull) {
  const FaultPlan empty;
  EXPECT_EQ(fault_fingerprint(nullptr), 0u);
  EXPECT_EQ(fault_fingerprint(&empty), 0u);
}

TEST(FaultFingerprint, SensitiveToEveryParameter) {
  const FaultPlan base = FaultPlan::parse("drop=0.1,seed=7");
  EXPECT_NE(fault_fingerprint(&base), 0u);
  const FaultPlan other_seed = FaultPlan::parse("drop=0.1,seed=8");
  const FaultPlan other_rate = FaultPlan::parse("drop=0.2,seed=7");
  const FaultPlan with_crash = FaultPlan::parse("drop=0.1,seed=7,crash=1:5-9");
  EXPECT_NE(fault_fingerprint(&base), fault_fingerprint(&other_seed));
  EXPECT_NE(fault_fingerprint(&base), fault_fingerprint(&other_rate));
  EXPECT_NE(fault_fingerprint(&base), fault_fingerprint(&with_crash));
}

TEST(FingerprintBuilder, OrderAndTypeSensitive) {
  const auto ab =
      FingerprintBuilder().mix(1).mix(2).value();
  const auto ba =
      FingerprintBuilder().mix(2).mix(1).value();
  EXPECT_NE(ab, ba);
  // -0.0 and 0.0 have different bit patterns and must hash differently.
  EXPECT_NE(FingerprintBuilder().mix_double(0.0).value(),
            FingerprintBuilder().mix_double(-0.0).value());
  const std::uint8_t bytes[] = {1, 2, 3};
  EXPECT_EQ(FingerprintBuilder().mix_bytes(bytes, 3).value(),
            FingerprintBuilder().mix_bytes(bytes, 3).value());
}

TEST(OptionsFingerprint, ExplicitDefaultEqualsImplicitDefault) {
  const Graph g = gen::cycle(16);
  const DistributedBcOptions implicit;
  DistributedBcOptions explicit_defaults;
  // Spell out values options_fingerprint resolves from the graph size.
  explicit_defaults.format = SoftFloatFormat::for_graph(g.num_nodes());
  explicit_defaults.sources = std::vector<bool>(g.num_nodes(), true);
  explicit_defaults.targets = std::vector<bool>{};  // empty = every target
  EXPECT_EQ(options_fingerprint(implicit, g.num_nodes()),
            options_fingerprint(explicit_defaults, g.num_nodes()));
}

TEST(OptionsFingerprint, ExecutionKnobsAreExcluded) {
  const Graph g = gen::cycle(16);
  const DistributedBcOptions base;
  // Every knob the engine guarantees bit-identical results across must
  // NOT enter the fingerprint — that is what lets the service cache
  // serve a threads=4 submit from a threads=1 execution.
  DistributedBcOptions threads = base;
  threads.threads = 4;
  DistributedBcOptions legacy = base;
  legacy.legacy_engine = true;
  DistributedBcOptions stall = base;
  stall.stall_window = 12345;
  DistributedBcOptions checkpointed = base;
  checkpointed.checkpoint_every = 10;
  checkpointed.checkpoint_dir = "/tmp/somewhere";
  checkpointed.halt_at_round = 99;
  const auto fp = options_fingerprint(base, g.num_nodes());
  EXPECT_EQ(fp, options_fingerprint(threads, g.num_nodes()));
  EXPECT_EQ(fp, options_fingerprint(legacy, g.num_nodes()));
  EXPECT_EQ(fp, options_fingerprint(stall, g.num_nodes()));
  EXPECT_EQ(fp, options_fingerprint(checkpointed, g.num_nodes()));
}

TEST(OptionsFingerprint, ResultDeterminingFieldsAreIncluded) {
  const Graph g = gen::cycle(16);
  const DistributedBcOptions base;
  const auto fp = options_fingerprint(base, g.num_nodes());

  DistributedBcOptions halve = base;
  halve.halve = false;
  DistributedBcOptions reliable = base;
  reliable.reliable_transport = true;
  DistributedBcOptions rounds = base;
  rounds.max_rounds = 1234;
  DistributedBcOptions faulty = base;
  faulty.faults = FaultPlan::parse("drop=0.05,seed=3");
  DistributedBcOptions sampled = base;
  {
    std::vector<bool> mask(g.num_nodes(), true);
    mask[3] = false;
    sampled.sources = mask;
  }
  DistributedBcOptions format = base;
  {
    auto fmt = SoftFloatFormat::for_graph(g.num_nodes());
    fmt.mantissa_bits += 4;
    format.format = fmt;
  }
  EXPECT_NE(fp, options_fingerprint(halve, g.num_nodes()));
  EXPECT_NE(fp, options_fingerprint(reliable, g.num_nodes()));
  EXPECT_NE(fp, options_fingerprint(rounds, g.num_nodes()));
  EXPECT_NE(fp, options_fingerprint(faulty, g.num_nodes()));
  EXPECT_NE(fp, options_fingerprint(sampled, g.num_nodes()));
  EXPECT_NE(fp, options_fingerprint(format, g.num_nodes()));
}

TEST(OptionsFingerprint, BackendIdentityIsIncluded) {
  const Graph g = gen::cycle(16);
  const DistributedBcOptions base;  // backend = kPaperExact
  const auto fp = options_fingerprint(base, g.num_nodes());

  // Every resolved backend hashes differently: a cfp result must never
  // be served for a paper_exact submit of the same graph.
  DistributedBcOptions cfp = base;
  cfp.backend = BackendId::kCfp;
  DistributedBcOptions sampled = base;
  sampled.backend = BackendId::kSampled;
  EXPECT_NE(fp, options_fingerprint(cfp, g.num_nodes()));
  EXPECT_NE(fp, options_fingerprint(sampled, g.num_nodes()));
  EXPECT_NE(options_fingerprint(cfp, g.num_nodes()),
            options_fingerprint(sampled, g.num_nodes()));

  // Unresolved `auto` is a serve-time placeholder, not a cache key.
  DistributedBcOptions unresolved = base;
  unresolved.backend = BackendId::kAuto;
  EXPECT_THROW(options_fingerprint(unresolved, g.num_nodes()),
               PreconditionError);
}

TEST(OptionsFingerprint, ApproxParamsCountOnlyUnderSampled) {
  const Graph g = gen::cycle(16);
  // Stray --samples on an exact backend is canonicalized away: the
  // submit must hit the same cache entry as one without it.
  DistributedBcOptions exact;
  DistributedBcOptions exact_with_params = exact;
  exact_with_params.approx_samples = 8;
  exact_with_params.approx_seed = 99;
  EXPECT_EQ(options_fingerprint(exact, g.num_nodes()),
            options_fingerprint(exact_with_params, g.num_nodes()));

  // Under the sampled backend both params determine the result.
  DistributedBcOptions sampled;
  sampled.backend = BackendId::kSampled;
  sampled.approx_samples = 8;
  sampled.approx_seed = 1;
  DistributedBcOptions other_budget = sampled;
  other_budget.approx_samples = 9;
  DistributedBcOptions other_seed = sampled;
  other_seed.approx_seed = 2;
  const auto fp = options_fingerprint(sampled, g.num_nodes());
  EXPECT_NE(fp, options_fingerprint(other_budget, g.num_nodes()));
  EXPECT_NE(fp, options_fingerprint(other_seed, g.num_nodes()));
}

TEST(DigraphFingerprint, OrientationSensitiveButArcOrderInsensitive) {
  const Digraph a(3, {{0, 1}, {1, 2}});
  const Digraph a_permuted(3, {{1, 2}, {0, 1}});
  const Digraph reversed(3, {{1, 0}, {2, 1}});
  EXPECT_EQ(digraph_fingerprint(a), digraph_fingerprint(a_permuted));
  EXPECT_NE(digraph_fingerprint(a), digraph_fingerprint(reversed));

  // A digraph never collides with the undirected graph sharing its
  // support — the two planes key different result shapes.
  const Graph support(3, {{0, 1}, {1, 2}});
  EXPECT_NE(digraph_fingerprint(a), graph_fingerprint(support));
}

TEST(RunFingerprint, DirectedOverloadIsDisjointFromUndirected) {
  DistributedBcOptions options;
  options.backend = BackendId::kDirected;
  const Digraph d(3, {{0, 1}, {1, 2}});
  const Graph support(3, {{0, 1}, {1, 2}});
  DistributedBcOptions undirected_options;
  EXPECT_NE(run_fingerprint(d, options),
            run_fingerprint(support, undirected_options));
  // Stable across calls, sensitive to orientation.
  EXPECT_EQ(run_fingerprint(d, options), run_fingerprint(d, options));
  const Digraph reversed(3, {{1, 0}, {2, 1}});
  EXPECT_NE(run_fingerprint(d, options), run_fingerprint(reversed, options));
}

TEST(RunFingerprint, CombinesGraphAndOptions) {
  const Graph a = gen::cycle(16);
  const Graph b = gen::path(16);
  const DistributedBcOptions base;
  DistributedBcOptions other = base;
  other.halve = false;
  EXPECT_EQ(run_fingerprint(a, base), run_fingerprint(a, base));
  EXPECT_NE(run_fingerprint(a, base), run_fingerprint(b, base));
  EXPECT_NE(run_fingerprint(a, base), run_fingerprint(a, other));
}

TEST(ChainFingerprint, ApplicationAssociatesButChainIsHistoryIdentity) {
  // Applying d1 then d2 reaches the same edge set as the fused batch
  // d1++d2 — delta application is associative, so a replayer may group
  // batches freely and still materialize the right graph.
  const Graph start = triangle_plus_tail();
  const std::vector<GraphDeltaOp> d1 = {{true, 0, 3}};
  const std::vector<GraphDeltaOp> d2 = {{false, 2, 3}, {true, 1, 3}};
  std::vector<GraphDeltaOp> fused = d1;
  fused.insert(fused.end(), d2.begin(), d2.end());
  std::vector<Edge> stepwise = start.edges();
  stream::apply_delta(stepwise, d1);
  stream::apply_delta(stepwise, d2);
  std::vector<Edge> in_one = start.edges();
  stream::apply_delta(in_one, fused);
  EXPECT_EQ(graph_fingerprint(Graph(4, std::move(stepwise))),
            graph_fingerprint(Graph(4, std::move(in_one))));

  // The chained fingerprint, by contrast, names a mutation HISTORY:
  // batch boundaries count, and it never equals the materialized
  // graph's static fingerprint — version-addressed cache entries can
  // never collide with static-graph entries.
  const std::uint64_t base = graph_fingerprint(start);
  const std::uint64_t split =
      chain_graph_fingerprint(chain_graph_fingerprint(base, d1), d2);
  const std::uint64_t one_shot = chain_graph_fingerprint(base, fused);
  EXPECT_NE(split, one_shot);
  std::vector<Edge> materialized = start.edges();
  stream::apply_delta(materialized, fused);
  EXPECT_NE(split, graph_fingerprint(Graph(4, std::move(materialized))));
  EXPECT_NE(chain_graph_fingerprint(base, {}), base);  // even empty moves
}

TEST(ChainFingerprint, ReorderedOpsCollideOnlyAfterCanonicalization) {
  // Raw chains are deliberately order-sensitive: the same two ops in a
  // different order must yield a different fingerprint...
  const std::uint64_t base = graph_fingerprint(triangle_plus_tail());
  const std::vector<GraphDeltaOp> ab = {{true, 0, 3}, {true, 1, 3}};
  const std::vector<GraphDeltaOp> ba = {{true, 1, 3}, {true, 0, 3}};
  EXPECT_NE(chain_graph_fingerprint(base, ab),
            chain_graph_fingerprint(base, ba));

  // ...so chainers must canonicalize first.  VersionedGraph's canonical
  // form (endpoints normalized, net-effect dedup, sorted) maps every
  // arrival order of the same net batch to one fingerprint.
  const Graph current = triangle_plus_tail();
  using stream::EdgeOpKind;
  const auto c1 = stream::VersionedGraph::canonicalize(
      current, {{EdgeOpKind::kInsert, 0, 3}, {EdgeOpKind::kInsert, 1, 3}});
  const auto c2 = stream::VersionedGraph::canonicalize(
      current, {{EdgeOpKind::kInsert, 3, 1}, {EdgeOpKind::kInsert, 3, 0}});
  EXPECT_EQ(chain_graph_fingerprint(base, c1),
            chain_graph_fingerprint(base, c2));
}

}  // namespace
}  // namespace congestbc
