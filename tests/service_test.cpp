// End-to-end tests of the BC serving daemon (src/service/daemon.hpp),
// driven through real TCP sockets via the blocking Client.
//
// What is pinned here, per the service contract:
//   * a SUBMIT computes the same bits a direct run_bc_with_watchdog call
//     produces — the daemon adds serving, not numerics;
//   * a cache hit serves the byte-identical encoded block the original
//     execution produced, and execution hints (threads, engine) share
//     cache entries because results are bit-identical across them;
//   * identical concurrent submits coalesce into ONE execution with N
//     correct replies;
//   * admission control: queue-full -> kBusy, draining -> kDraining,
//     semantic garbage -> kRejected, over-budget jobs fail cleanly;
//   * hostile bytes on the socket get a typed ERROR frame and the daemon
//     keeps serving everyone else;
//   * a drain suspends in-flight work into the spool and a restarted
//     daemon resumes it to a bit-identical result — in-process via
//     request_drain() and at process level via real SIGTERM.
#include <sys/socket.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <arpa/inet.h>
#include <netinet/in.h>
#include <unistd.h>

#include <chrono>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/runner.hpp"
#include "graph/generators.hpp"
#include "graph/graph.hpp"
#include "graph/io.hpp"
#include "gtest/gtest.h"
#include "portfolio/backend.hpp"
#include "service/client.hpp"
#include "service/daemon.hpp"
#include "service/protocol.hpp"

namespace congestbc::service {
namespace {

namespace fs = std::filesystem;

class TempDir {
 public:
  explicit TempDir(const std::string& tag)
      : path_(fs::temp_directory_path() /
              ("congestbc_service_test_" + tag + "_" +
               std::to_string(static_cast<unsigned long>(::getpid())))) {
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~TempDir() { fs::remove_all(path_); }
  const fs::path& path() const { return path_; }
  std::string str() const { return path_.string(); }

 private:
  fs::path path_;
};

/// An in-process daemon on an ephemeral loopback port, drained on exit.
class DaemonHarness {
 public:
  explicit DaemonHarness(DaemonConfig config) : daemon_(std::move(config)) {
    daemon_.start();
    daemon_.serve_async();
  }
  ~DaemonHarness() { stop(); }

  void stop() {
    if (!stopped_) {
      daemon_.request_drain();
      daemon_.wait();
      stopped_ = true;
    }
  }

  Daemon& daemon() { return daemon_; }

  void connect(Client& client) {
    client.connect("127.0.0.1", daemon_.port());
  }

 private:
  Daemon daemon_;
  bool stopped_ = false;
};

std::string data_file(const std::string& name) {
  std::ifstream in(std::string(CONGESTBC_DATA_DIR) + "/" + name,
                   std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing data file " << name;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

SubmitRequest inline_submit(const std::string& text) {
  SubmitRequest submit;
  submit.source = GraphSource::kInline;
  submit.graph = text;
  return submit;
}

ResultBlock decode_block(const ResultReply& reply) {
  BitReader reader(reply.block_bytes.data(),
                   static_cast<std::size_t>(reply.block_bits));
  return decode_result_block(reader);
}

void expect_bit_equal(const std::vector<double>& got,
                      const std::vector<double>& want, const char* what) {
  ASSERT_EQ(got.size(), want.size()) << what;
  for (std::size_t i = 0; i < want.size(); ++i) {
    std::uint64_t got_bits = 0;
    std::uint64_t want_bits = 0;
    std::memcpy(&got_bits, &got[i], sizeof got_bits);
    std::memcpy(&want_bits, &want[i], sizeof want_bits);
    EXPECT_EQ(got_bits, want_bits) << what << "[" << i << "]";
  }
}

// Long doubles carry padding bytes on x86-64, so memcmp would compare
// garbage; value equality is exact for them (the codec is lossless).
void expect_bit_equal(const std::vector<long double>& got,
                      const std::vector<long double>& want, const char* what) {
  ASSERT_EQ(got.size(), want.size()) << what;
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(got[i], want[i]) << what << "[" << i << "]";
  }
}

/// The block a served result must match, computed by a direct local run.
void expect_matches_local_run(const ResultReply& reply, const Graph& graph,
                              const DistributedBcOptions& options) {
  ASSERT_TRUE(reply.ready);
  const ResultBlock block = decode_block(reply);
  const RunOutcome fresh = run_bc_with_watchdog(graph, options);
  ASSERT_EQ(fresh.status, RunStatus::kComplete) << fresh.detail;
  EXPECT_EQ(block.run_status, static_cast<std::uint8_t>(RunStatus::kComplete));
  EXPECT_EQ(block.rounds, fresh.result.rounds);
  EXPECT_EQ(block.diameter, fresh.result.diameter);
  EXPECT_EQ(block.total_bits, fresh.result.metrics.total_bits);
  expect_bit_equal(block.betweenness, fresh.result.betweenness, "betweenness");
  expect_bit_equal(block.closeness, fresh.result.closeness, "closeness");
  expect_bit_equal(block.graph_centrality, fresh.result.graph_centrality,
                   "graph_centrality");
  expect_bit_equal(block.stress, fresh.result.stress, "stress");
  EXPECT_EQ(block.eccentricities, fresh.result.eccentricities);
}

TEST(ServiceDaemon, SubmitComputesAndMatchesLocalRunBitExactly) {
  DaemonHarness harness(DaemonConfig{});
  Client client;
  harness.connect(client);

  const std::string karate = data_file("karate.txt");
  const SubmitReply admitted = client.submit(inline_submit(karate));
  ASSERT_EQ(admitted.disposition, SubmitDisposition::kQueued) << admitted.detail;
  ASSERT_NE(admitted.job_id, 0u);
  ASSERT_NE(admitted.fingerprint, 0u);

  const ResultReply reply = client.wait_result(admitted.job_id);
  EXPECT_FALSE(reply.from_cache);
  EXPECT_EQ(reply.fingerprint, admitted.fingerprint);
  expect_matches_local_run(reply, read_edge_list_text(karate),
                           DistributedBcOptions{});

  const StatusReply status = client.status(admitted.job_id);
  EXPECT_EQ(status.state, JobState::kDone);
}

TEST(ServiceDaemon, CacheHitIsBitIdenticalAcrossEnginesAndThreads) {
  DaemonHarness harness(DaemonConfig{});
  Client client;
  harness.connect(client);

  for (const char* name : {"karate.txt", "lesmis.txt"}) {
    const std::string text = data_file(name);
    const Graph graph = read_edge_list_text(text);

    // One fresh execution (daemon default: threads=1, current engine).
    const SubmitReply first = client.submit(inline_submit(text));
    ASSERT_EQ(first.disposition, SubmitDisposition::kQueued) << first.detail;
    const ResultReply fresh = client.wait_result(first.job_id);
    ASSERT_TRUE(fresh.ready);

    // Every (engine, threads) variant maps to the same fingerprint and is
    // served the byte-identical cached block.
    for (const bool legacy : {false, true}) {
      for (const std::uint32_t threads : {1u, 4u}) {
        SubmitRequest variant = inline_submit(text);
        variant.legacy_engine = legacy;
        variant.threads = threads;
        const SubmitReply hit = client.submit(variant);
        EXPECT_EQ(hit.disposition, SubmitDisposition::kCacheHit)
            << name << " legacy=" << legacy << " threads=" << threads;
        EXPECT_EQ(hit.fingerprint, first.fingerprint);
        const ResultReply cached = client.wait_result(hit.job_id);
        ASSERT_TRUE(cached.ready);
        EXPECT_TRUE(cached.from_cache);
        EXPECT_EQ(cached.block_bits, fresh.block_bits);
        EXPECT_EQ(cached.block_bytes, fresh.block_bytes)
            << name << ": cached bytes differ from the fresh execution";

        // And the cached bytes match what that exact configuration would
        // have computed locally — the claim behind sharing the entry.
        DistributedBcOptions options;
        options.legacy_engine = legacy;
        options.threads = threads;
        expect_matches_local_run(cached, graph, options);
      }
    }
  }

  const StatsReply stats = harness.daemon().stats();
  EXPECT_EQ(stats.jobs_completed, 2u);  // one execution per graph
  EXPECT_EQ(stats.cache_hits, 8u);      // 2 graphs x 2 engines x 2 thread counts
}

TEST(ServiceDaemon, ConcurrentIdenticalSubmitsCoalesceIntoOneExecution) {
  DaemonHarness harness(DaemonConfig{});
  const std::string text = write_edge_list_text(gen::cycle(600));

  constexpr int kClients = 6;
  std::vector<std::vector<std::uint8_t>> blocks(kClients);
  std::vector<std::thread> threads;
  threads.reserve(kClients);
  for (int i = 0; i < kClients; ++i) {
    threads.emplace_back([&, i] {
      Client client;
      harness.connect(client);
      const SubmitReply reply = client.submit(inline_submit(text));
      ASSERT_NE(reply.disposition, SubmitDisposition::kRejected) << reply.detail;
      const ResultReply result = client.wait_result(reply.job_id);
      ASSERT_TRUE(result.ready);
      blocks[static_cast<std::size_t>(i)] = result.block_bytes;
    });
  }
  for (auto& t : threads) {
    t.join();
  }

  for (int i = 1; i < kClients; ++i) {
    EXPECT_EQ(blocks[static_cast<std::size_t>(i)], blocks[0])
        << "client " << i << " saw different bytes";
  }
  // Exactly one execution; every other submit shared it, either while it
  // was in flight (coalesced) or after it finished (cache hit) — the
  // split depends on timing, the sum does not.
  const StatsReply stats = harness.daemon().stats();
  EXPECT_EQ(stats.jobs_completed, 1u);
  EXPECT_EQ(stats.coalesced + stats.cache_hits, kClients - 1u);
}

TEST(ServiceDaemon, QueueLimitZeroAnswersBusy) {
  DaemonConfig config;
  config.queue_limit = 0;  // every fresh submit finds the queue full
  DaemonHarness harness(config);
  Client client;
  harness.connect(client);

  const SubmitReply reply =
      client.submit(inline_submit(data_file("karate.txt")));
  EXPECT_EQ(reply.disposition, SubmitDisposition::kBusy);
  EXPECT_EQ(reply.job_id, 0u);
  EXPECT_EQ(harness.daemon().stats().busy_rejections, 1u);
}

TEST(ServiceDaemon, DrainingAnswersDraining) {
  DaemonHarness harness(DaemonConfig{});
  Client client;
  harness.connect(client);

  // Something slow in flight so the drain stays pending while we probe.
  const SubmitReply slow =
      client.submit(inline_submit(write_edge_list_text(gen::cycle(600))));
  ASSERT_EQ(slow.disposition, SubmitDisposition::kQueued);
  const ShutdownReply shutdown = client.shutdown();
  EXPECT_TRUE(shutdown.draining);

  // The running job halts at its next round boundary, so the drain can
  // complete (closing our connection) before this probe lands — both a
  // kDraining reply and a dropped connection honor the contract.
  try {
    const SubmitReply refused =
        client.submit(inline_submit(data_file("karate.txt")));
    EXPECT_EQ(refused.disposition, SubmitDisposition::kDraining);
    EXPECT_GE(harness.daemon().stats().draining_rejections, 1u);
  } catch (const std::exception&) {
    harness.stop();
    EXPECT_TRUE(harness.daemon().draining());
  }
}

TEST(ServiceDaemon, SemanticGarbageIsRejectedWithReason) {
  DaemonConfig config;
  config.graph_root = CONGESTBC_DATA_DIR;
  DaemonHarness harness(config);
  Client client;
  harness.connect(client);

  const auto rejected = [&](const SubmitRequest& submit) {
    const SubmitReply reply = client.submit(submit);
    EXPECT_EQ(reply.disposition, SubmitDisposition::kRejected);
    EXPECT_EQ(reply.job_id, 0u);
    return reply.detail;
  };

  EXPECT_NE(rejected(inline_submit("4 2\n0 1\n2 3\n")).find("not connected"),
            std::string::npos);
  EXPECT_NE(rejected(inline_submit("this is not a graph")).find("bad graph"),
            std::string::npos);
  EXPECT_NE(rejected(inline_submit("0 0\n")).find("graph"), std::string::npos);
  SubmitRequest bad_faults = inline_submit(data_file("karate.txt"));
  bad_faults.faults = "drop=banana";
  EXPECT_NE(rejected(bad_faults).find("fault"), std::string::npos);

  SubmitRequest escape;
  escape.source = GraphSource::kPath;
  escape.graph = "../ISSUE.md";
  EXPECT_NE(rejected(escape).find("graph-root"), std::string::npos);

  // A path submit that stays inside the root is served.
  SubmitRequest by_path;
  by_path.source = GraphSource::kPath;
  by_path.graph = "karate.txt";
  const SubmitReply ok = client.submit(by_path);
  EXPECT_EQ(ok.disposition, SubmitDisposition::kQueued) << ok.detail;
  EXPECT_TRUE(client.wait_result(ok.job_id).ready);
}

TEST(ServiceDaemon, PathSubmitsDisabledWithoutGraphRoot) {
  DaemonHarness harness(DaemonConfig{});
  Client client;
  harness.connect(client);
  SubmitRequest by_path;
  by_path.source = GraphSource::kPath;
  by_path.graph = "karate.txt";
  const SubmitReply reply = client.submit(by_path);
  EXPECT_EQ(reply.disposition, SubmitDisposition::kRejected);
  EXPECT_NE(reply.detail.find("graph-root"), std::string::npos);
}

TEST(ServiceDaemon, CancelSemantics) {
  DaemonConfig config;
  config.workers = 1;  // so a second submit is reliably still queued
  DaemonHarness harness(config);
  Client client;
  harness.connect(client);

  EXPECT_EQ(client.cancel(12345).outcome, CancelOutcome::kNotFound);

  const SubmitReply slow =
      client.submit(inline_submit(write_edge_list_text(gen::cycle(600))));
  ASSERT_EQ(slow.disposition, SubmitDisposition::kQueued);
  const SubmitReply queued =
      client.submit(inline_submit(data_file("karate.txt")));
  ASSERT_EQ(queued.disposition, SubmitDisposition::kQueued);

  EXPECT_EQ(client.cancel(queued.job_id).outcome, CancelOutcome::kCancelled);
  const ResultReply cancelled = client.result(queued.job_id);
  EXPECT_FALSE(cancelled.ready);
  EXPECT_EQ(cancelled.state, JobState::kCancelled);

  const ResultReply done = client.wait_result(slow.job_id);
  ASSERT_TRUE(done.ready);
  EXPECT_EQ(client.cancel(slow.job_id).outcome, CancelOutcome::kTooLate);
  EXPECT_EQ(harness.daemon().stats().jobs_cancelled, 1u);
}

TEST(ServiceDaemon, TimeBudgetHaltsAndFailsTheJob) {
  DaemonConfig config;
  config.job_time_budget_ms = 150;  // cycle(1000) needs seconds
  DaemonHarness harness(config);
  Client client;
  harness.connect(client);

  const SubmitReply reply =
      client.submit(inline_submit(write_edge_list_text(gen::cycle(1000))));
  ASSERT_EQ(reply.disposition, SubmitDisposition::kQueued);
  const ResultReply result = client.wait_result(reply.job_id);
  // Failed jobs still serve their partial harvest, but are never "done".
  ASSERT_TRUE(result.ready);
  const ResultBlock block = decode_block(result);
  EXPECT_NE(block.run_status, static_cast<std::uint8_t>(RunStatus::kComplete));
  EXPECT_EQ(client.status(reply.job_id).state, JobState::kFailed);
  EXPECT_EQ(harness.daemon().stats().jobs_failed, 1u);

  // And a failed run is never cached: resubmitting tries again.
  const SubmitReply retry =
      client.submit(inline_submit(write_edge_list_text(gen::cycle(1000))));
  EXPECT_NE(retry.disposition, SubmitDisposition::kCacheHit);
}

// Hostile bytes over a raw socket: the daemon answers a typed ERROR frame,
// closes that connection, and keeps serving everyone else.
TEST(ServiceDaemon, GarbageBytesGetTypedErrorAndDaemonSurvives) {
  DaemonHarness harness(DaemonConfig{});

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(harness.daemon().port());
  ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  // Not "GET ..." — that prefix now selects the HTTP /metrics path
  // (MetricsEndpointServesConsistentCounters); anything else must still
  // get the typed CBCP ERROR.
  const char garbage[] = "PUT /x HTTP/1.1\r\n\r\n";
  ASSERT_GT(::send(fd, garbage, sizeof(garbage) - 1, 0), 0);

  // Read until the daemon closes the connection; the bytes it sent first
  // must decode as an ERROR reply.
  std::vector<std::uint8_t> received;
  std::uint8_t chunk[256];
  for (;;) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) {
      break;
    }
    received.insert(received.end(), chunk, chunk + n);
  }
  ::close(fd);
  FrameDecoder decoder;
  decoder.feed(received.data(), received.size());
  const auto frame = decoder.next();
  ASSERT_TRUE(frame.has_value()) << "no ERROR frame before close";
  const Reply reply = decode_reply(*frame);
  ASSERT_EQ(reply.type, MsgType::kError);
  EXPECT_EQ(reply.error.code, ProtoError::kBadMagic);
  EXPECT_GE(harness.daemon().stats().protocol_errors, 1u);

  // The daemon is still healthy for well-behaved clients.
  Client client;
  harness.connect(client);
  const SubmitReply ok = client.submit(inline_submit(data_file("karate.txt")));
  ASSERT_EQ(ok.disposition, SubmitDisposition::kQueued) << ok.detail;
  EXPECT_TRUE(client.wait_result(ok.job_id).ready);
}

void wait_until_running(Client& client, std::uint64_t job_id) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (std::chrono::steady_clock::now() < deadline) {
    if (client.status(job_id).state == JobState::kRunning) {
      return;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  FAIL() << "job " << job_id << " never started running";
}

// Cancelling a RUNNING job is best-effort: the reply says kRequested (the
// halt flag is raised, not yet observed), and the job normally lands
// kCancelled at its next round boundary.
TEST(ServiceDaemon, CancelRunningJobRepliesRequestedThenCancels) {
  DaemonConfig config;
  config.workers = 1;
  DaemonHarness harness(config);
  Client client;
  harness.connect(client);

  // cycle(800) runs for seconds — plenty of round boundaries to halt at.
  const SubmitReply slow =
      client.submit(inline_submit(write_edge_list_text(gen::cycle(800))));
  ASSERT_EQ(slow.disposition, SubmitDisposition::kQueued) << slow.detail;
  wait_until_running(client, slow.job_id);

  EXPECT_EQ(client.cancel(slow.job_id).outcome, CancelOutcome::kRequested);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  JobState state = client.status(slow.job_id).state;
  while (state == JobState::kRunning &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    state = client.status(slow.job_id).state;
  }
  EXPECT_EQ(state, JobState::kCancelled);
  EXPECT_EQ(harness.daemon().stats().jobs_cancelled, 1u);
}

// Terminal jobs are garbage-collected after the retention TTL: the id
// answers kUnknown, but the cached result survives independently.
TEST(ServiceDaemon, TerminalJobsAreGarbageCollectedAfterRetention) {
  DaemonConfig config;
  config.job_retention_ms = 50;
  DaemonHarness harness(config);
  Client client;
  harness.connect(client);

  const std::string karate = data_file("karate.txt");
  const SubmitReply reply = client.submit(inline_submit(karate));
  ASSERT_EQ(reply.disposition, SubmitDisposition::kQueued) << reply.detail;
  ASSERT_TRUE(client.wait_result(reply.job_id).ready);

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (client.status(reply.job_id).state != JobState::kUnknown &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_EQ(client.status(reply.job_id).state, JobState::kUnknown);
  EXPECT_EQ(client.result(reply.job_id).state, JobState::kUnknown);

  // The result cache is keyed by fingerprint, not job id: still a hit.
  const SubmitReply again = client.submit(inline_submit(karate));
  EXPECT_EQ(again.disposition, SubmitDisposition::kCacheHit);
}

// Write-side backpressure: a client that pipelines a burst of requests
// without reading still gets every reply, in order — frames the daemon
// held back while the session's output backlog was over the limit are
// processed once it drains.
TEST(ServiceDaemon, PipelinedRequestsSurviveOutputBackpressure) {
  DaemonConfig config;
  config.session_out_limit = 64;  // force constant pause/resume
  DaemonHarness harness(config);

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(harness.daemon().port());
  ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);

  constexpr std::uint64_t kRequests = 50;
  std::vector<std::uint8_t> burst;
  for (std::uint64_t i = 0; i < kRequests; ++i) {
    const auto frame =
        frame_bytes(encode_request(make_job_request(MsgType::kStatus, 1000 + i)));
    burst.insert(burst.end(), frame.begin(), frame.end());
  }
  ASSERT_EQ(::send(fd, burst.data(), burst.size(), 0),
            static_cast<ssize_t>(burst.size()));

  FrameDecoder decoder;
  std::uint64_t decoded = 0;
  std::uint8_t chunk[512];
  while (decoded < kRequests) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    ASSERT_GT(n, 0) << "connection closed after " << decoded << " replies";
    decoder.feed(chunk, static_cast<std::size_t>(n));
    while (auto frame = decoder.next()) {
      const Reply reply = decode_reply(*frame);
      ASSERT_EQ(reply.type, MsgType::kStatusReply);
      EXPECT_EQ(reply.status.job_id, 1000 + decoded);  // in-order replies
      EXPECT_EQ(reply.status.state, JobState::kUnknown);
      ++decoded;
    }
  }
  ::close(fd);
}

// The drain/resume contract, in-process: a running job is suspended into
// the spool at drain and a restarted daemon resumes it from its
// checkpoint to the same bits an uninterrupted run produces.
TEST(ServiceDaemon, DrainSuspendsAndRestartedDaemonResumesBitIdentically) {
  TempDir spool("drain_resume");
  const Graph graph = gen::cycle(1000);
  const std::string text = write_edge_list_text(graph);

  DaemonConfig config;
  config.spool_dir = spool.str();
  std::uint64_t fingerprint = 0;
  {
    DaemonHarness first(config);
    Client client;
    first.connect(client);
    const SubmitReply reply = client.submit(inline_submit(text));
    ASSERT_EQ(reply.disposition, SubmitDisposition::kQueued) << reply.detail;
    fingerprint = reply.fingerprint;
    wait_until_running(client, reply.job_id);
    client.close();
    first.stop();  // drain: suspend at the next round boundary + checkpoint
    EXPECT_EQ(first.daemon().stats().jobs_suspended, 1u);
  }

  // The suspension checkpoint is on disk under the job's fingerprint.
  EXPECT_TRUE(
      fs::exists(spool.path() / "ckpt" /
                 [&] {
                   char hex[17];
                   std::snprintf(hex, sizeof hex, "%016llx",
                                 static_cast<unsigned long long>(fingerprint));
                   return std::string(hex);
                 }()));

  DaemonHarness second(config);
  EXPECT_EQ(second.daemon().stats().jobs_resumed, 1u);
  Client client;
  second.connect(client);
  // The identical submit attaches to the resumed execution (or to its
  // result, if the resume already finished).
  const SubmitReply attach = client.submit(inline_submit(text));
  ASSERT_TRUE(attach.disposition == SubmitDisposition::kCoalesced ||
              attach.disposition == SubmitDisposition::kCacheHit)
      << to_string(attach.disposition) << " " << attach.detail;
  EXPECT_EQ(attach.fingerprint, fingerprint);
  const ResultReply resumed = client.wait_result(attach.job_id);
  expect_matches_local_run(resumed, graph, DistributedBcOptions{});
}

/// One blocking HTTP exchange against the daemon's listener: sends the
/// request verbatim, reads to close, returns the raw response.
std::string http_exchange(std::uint16_t port, const std::string& request) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  EXPECT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  EXPECT_GT(::send(fd, request.data(), request.size(), 0), 0);
  std::string response;
  char chunk[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) {
      break;
    }
    response.append(chunk, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return response;
}

/// Value of a Prometheus sample line ("name 42") in a scrape body.
double metric_value(const std::string& body, const std::string& name) {
  std::istringstream lines(body);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.rfind(name + " ", 0) == 0) {
      return std::stod(line.substr(name.size() + 1));
    }
  }
  ADD_FAILURE() << "metric " << name << " not found in scrape";
  return -1.0;
}

TEST(ServiceDaemon, MetricsEndpointServesConsistentCounters) {
  DaemonHarness harness(DaemonConfig{});
  Client client;
  harness.connect(client);

  // Mixed workload: two fresh executions, one cache hit, one rejected
  // submit (bad graph), so every counter the consistency check reads is
  // exercised.
  const std::string karate = data_file("karate.txt");
  const SubmitReply first = client.submit(inline_submit(karate));
  ASSERT_EQ(first.disposition, SubmitDisposition::kQueued) << first.detail;
  ASSERT_TRUE(client.wait_result(first.job_id).ready);

  const SubmitReply hit = client.submit(inline_submit(karate));
  EXPECT_EQ(hit.disposition, SubmitDisposition::kCacheHit);

  const SubmitReply second = client.submit(inline_submit(data_file("lesmis.txt")));
  ASSERT_EQ(second.disposition, SubmitDisposition::kQueued) << second.detail;
  ASSERT_TRUE(client.wait_result(second.job_id).ready);

  const SubmitReply rejected = client.submit(inline_submit("not a graph"));
  EXPECT_EQ(rejected.disposition, SubmitDisposition::kRejected);

  // A finished job's STATUS carries its phase timeline.
  const StatusReply status = client.status(first.job_id);
  ASSERT_EQ(status.state, JobState::kDone);
  EXPECT_NE(status.phase_timeline.find("tree_build"), std::string::npos)
      << status.phase_timeline;
  EXPECT_NE(status.phase_timeline.find("counting"), std::string::npos);

  const std::string response = http_exchange(
      harness.daemon().port(), "GET /metrics HTTP/1.0\r\nHost: t\r\n\r\n");
  ASSERT_NE(response.find("HTTP/1.1 200 OK"), std::string::npos);
  ASSERT_NE(response.find("Content-Type: text/plain; version=0.0.4"),
            std::string::npos);
  const std::string body = response.substr(response.find("\r\n\r\n") + 4);

  // Counter consistency over the known workload.
  EXPECT_EQ(metric_value(body, "congestbcd_submits_total"), 4.0);
  EXPECT_EQ(metric_value(body, "congestbcd_cache_hits_total"), 1.0);
  EXPECT_EQ(metric_value(body, "congestbcd_cache_misses_total"), 2.0);
  EXPECT_EQ(metric_value(body, "congestbcd_jobs_completed_total"), 2.0);
  EXPECT_EQ(metric_value(body, "congestbcd_jobs_failed_total"), 0.0);
  EXPECT_EQ(metric_value(body, "congestbcd_jobs_cancelled_total"), 0.0);
  EXPECT_EQ(metric_value(body, "congestbcd_queue_depth"), 0.0);
  EXPECT_EQ(metric_value(body, "congestbcd_running_jobs"), 0.0);
  // Every admitted execution is accounted: completed + failed + cancelled
  // + inflight + cache hits + rejections == submits (the bad-graph submit
  // is the remainder).
  const double accounted =
      metric_value(body, "congestbcd_jobs_completed_total") +
      metric_value(body, "congestbcd_jobs_failed_total") +
      metric_value(body, "congestbcd_jobs_cancelled_total") +
      metric_value(body, "congestbcd_queue_depth") +
      metric_value(body, "congestbcd_running_jobs") +
      metric_value(body, "congestbcd_cache_hits_total");
  EXPECT_EQ(accounted + 1.0, metric_value(body, "congestbcd_submits_total"));
  EXPECT_LE(metric_value(body, "congestbcd_cache_hits_total"),
            metric_value(body, "congestbcd_submits_total"));
  // Latency/round histograms saw exactly the two executions.
  EXPECT_EQ(metric_value(body, "congestbcd_job_latency_ms_count"), 2.0);
  EXPECT_EQ(metric_value(body, "congestbcd_job_rounds_count"), 2.0);
  EXPECT_GT(metric_value(body, "congestbcd_job_rounds_sum"), 0.0);

  // Unknown paths get a 404, and the daemon keeps serving CBCP clients.
  const std::string missing = http_exchange(
      harness.daemon().port(), "GET /nope HTTP/1.0\r\n\r\n");
  EXPECT_NE(missing.find("404 Not Found"), std::string::npos);
  const SubmitReply after = client.submit(inline_submit(karate));
  EXPECT_EQ(after.disposition, SubmitDisposition::kCacheHit);
}

// ---------------------------------------------------------------------
// Portfolio plane (protocol v5): backend selection end-to-end

TEST(ServiceDaemon, AutoBackendRunsPaperExactWhenIdle) {
  DaemonHarness harness(DaemonConfig{});
  Client client;
  harness.connect(client);

  SubmitRequest submit = inline_submit(data_file("karate.txt"));
  submit.backend = 0;  // auto
  const SubmitReply reply = client.submit(submit);
  ASSERT_EQ(reply.disposition, SubmitDisposition::kQueued) << reply.detail;
  EXPECT_EQ(reply.backend, 1);  // paper_exact: idle server, no downgrade
  EXPECT_FALSE(reply.downgraded);
  ASSERT_TRUE(client.wait_result(reply.job_id).ready);
  EXPECT_EQ(harness.daemon().stats().backend_downgrades, 0u);

  // An idle auto submit and an explicit paper_exact submit are the SAME
  // job: the resolved backend is the cache key, not the requested one.
  SubmitRequest explicit_exact = inline_submit(data_file("karate.txt"));
  explicit_exact.backend = 1;
  const SubmitReply hit = client.submit(explicit_exact);
  EXPECT_EQ(hit.disposition, SubmitDisposition::kCacheHit);
  EXPECT_EQ(hit.fingerprint, reply.fingerprint);
}

TEST(ServiceDaemon, AutoDowngradesToSampledUnderQueuePressure) {
  DaemonConfig config;
  config.workers = 1;     // one slow job pins the only worker...
  config.queue_limit = 2; // ...and one queued job already means pressure
  DaemonHarness harness(config);
  Client client;
  harness.connect(client);

  // Occupy the worker and the queue with slow exact jobs.
  const SubmitReply running =
      client.submit(inline_submit(write_edge_list_text(gen::cycle(600))));
  ASSERT_EQ(running.disposition, SubmitDisposition::kQueued) << running.detail;
  const SubmitReply queued =
      client.submit(inline_submit(write_edge_list_text(gen::cycle(601))));
  ASSERT_EQ(queued.disposition, SubmitDisposition::kQueued) << queued.detail;

  // Now backend=auto must degrade to the sampled approximation, say so
  // in the reply, and count it.
  SubmitRequest submit = inline_submit(data_file("karate.txt"));
  submit.backend = 0;
  submit.samples = 8;
  submit.sample_seed = 3;
  const SubmitReply reply = client.submit(submit);
  ASSERT_EQ(reply.disposition, SubmitDisposition::kQueued) << reply.detail;
  EXPECT_EQ(reply.backend, 4);  // sampled
  EXPECT_TRUE(reply.downgraded);

  // The served bits are the sampled backend's, not a truncated exact run.
  const ResultReply result = client.wait_result(reply.job_id);
  ASSERT_TRUE(result.ready);
  const ResultBlock block = decode_block(result);
  const Graph karate = read_edge_list_text(data_file("karate.txt"));
  portfolio::BackendRequest local;
  local.graph = &karate;
  local.options.backend = BackendId::kSampled;
  local.options.approx_samples = 8;
  local.options.approx_seed = 3;
  const RunOutcome fresh = portfolio::run_portfolio(local);
  ASSERT_EQ(fresh.status, RunStatus::kComplete) << fresh.detail;
  expect_bit_equal(block.betweenness, fresh.result.betweenness,
                   "downgraded betweenness");

  // Visible in STATS and in the Prometheus scrape.
  ASSERT_TRUE(client.wait_result(running.job_id).ready);
  ASSERT_TRUE(client.wait_result(queued.job_id).ready);
  EXPECT_EQ(harness.daemon().stats().backend_downgrades, 1u);
  const std::string response = http_exchange(
      harness.daemon().port(), "GET /metrics HTTP/1.0\r\nHost: t\r\n\r\n");
  const std::string body = response.substr(response.find("\r\n\r\n") + 4);
  EXPECT_EQ(metric_value(body, "congestbcd_backend_downgrades_total"), 1.0);

  // An explicit (non-auto) backend is never overridden, pressure or not.
  SubmitRequest pinned = inline_submit(data_file("lesmis.txt"));
  pinned.backend = 1;
  const SubmitReply pinned_reply = client.submit(pinned);
  ASSERT_EQ(pinned_reply.disposition, SubmitDisposition::kQueued)
      << pinned_reply.detail;
  EXPECT_EQ(pinned_reply.backend, 1);
  EXPECT_FALSE(pinned_reply.downgraded);
  ASSERT_TRUE(client.wait_result(pinned_reply.job_id).ready);
  EXPECT_EQ(harness.daemon().stats().backend_downgrades, 1u);
}

TEST(ServiceDaemon, SampledSubmitKeysItsOwnCacheEntry) {
  DaemonHarness harness(DaemonConfig{});
  Client client;
  harness.connect(client);

  SubmitRequest exact = inline_submit(data_file("karate.txt"));
  const SubmitReply exact_reply = client.submit(exact);
  ASSERT_EQ(exact_reply.disposition, SubmitDisposition::kQueued)
      << exact_reply.detail;

  SubmitRequest sampled = inline_submit(data_file("karate.txt"));
  sampled.backend = 4;
  sampled.samples = 8;
  sampled.sample_seed = 1;
  const SubmitReply sampled_reply = client.submit(sampled);
  ASSERT_NE(sampled_reply.disposition, SubmitDisposition::kRejected)
      << sampled_reply.detail;
  EXPECT_NE(sampled_reply.fingerprint, exact_reply.fingerprint);
  EXPECT_EQ(sampled_reply.backend, 4);
  EXPECT_FALSE(sampled_reply.downgraded);  // requested, not downgraded

  // A different seed is a different job; the same seed coalesces/hits.
  SubmitRequest other_seed = sampled;
  other_seed.sample_seed = 2;
  const SubmitReply other_reply = client.submit(other_seed);
  EXPECT_NE(other_reply.fingerprint, sampled_reply.fingerprint);
  SubmitRequest replay = sampled;
  const SubmitReply replay_reply = client.submit(replay);
  EXPECT_EQ(replay_reply.fingerprint, sampled_reply.fingerprint);

  for (const std::uint64_t id :
       {exact_reply.job_id, sampled_reply.job_id, other_reply.job_id}) {
    ASSERT_TRUE(client.wait_result(id).ready);
  }
}

TEST(ServiceDaemon, DirectedSubmitServesTheDirectedBackend) {
  DaemonHarness harness(DaemonConfig{});
  Client client;
  harness.connect(client);

  // Directed 6-cycle: every node carries (n-1)(n-2)/2 = 10 ordered-pair
  // betweenness under the directed convention.
  std::vector<Arc> arcs;
  for (NodeId v = 0; v < 6; ++v) {
    arcs.push_back({v, static_cast<NodeId>((v + 1) % 6)});
  }
  const Digraph cycle(6, std::move(arcs));
  SubmitRequest submit = inline_submit(write_directed_edge_list_text(cycle));
  submit.backend = 3;
  const SubmitReply reply = client.submit(submit);
  ASSERT_EQ(reply.disposition, SubmitDisposition::kQueued) << reply.detail;
  EXPECT_EQ(reply.backend, 3);

  const ResultReply result = client.wait_result(reply.job_id);
  ASSERT_TRUE(result.ready);
  const ResultBlock block = decode_block(result);
  portfolio::BackendRequest local;
  local.digraph = &cycle;
  local.options.backend = BackendId::kDirected;
  const RunOutcome fresh = portfolio::run_portfolio(local);
  ASSERT_EQ(fresh.status, RunStatus::kComplete) << fresh.detail;
  expect_bit_equal(block.betweenness, fresh.result.betweenness,
                   "directed betweenness");
  for (const double bc : block.betweenness) {
    EXPECT_DOUBLE_EQ(bc, 10.0);
  }

  // The directed job must not collide with the undirected support's
  // cache entry — orientation is part of the fingerprint.
  const SubmitReply undirected =
      client.submit(inline_submit(write_edge_list_text(gen::cycle(6))));
  ASSERT_EQ(undirected.disposition, SubmitDisposition::kQueued)
      << undirected.detail;
  EXPECT_NE(undirected.fingerprint, reply.fingerprint);
  ASSERT_TRUE(client.wait_result(undirected.job_id).ready);

  // Semantic garbage on the directed plane gets typed rejections.
  SubmitRequest disconnected = inline_submit("4 2\n0 1\n2 3\n");
  disconnected.backend = 3;
  const SubmitReply rejected = client.submit(disconnected);
  EXPECT_EQ(rejected.disposition, SubmitDisposition::kRejected);
  EXPECT_NE(rejected.detail.find("connected"), std::string::npos)
      << rejected.detail;

  // An out-of-range backend id draws a typed ERROR frame, after which
  // the daemon drops the offending connection (hostile-payload policy)
  // — probe on a throwaway client so this session keeps serving.
  Client hostile;
  harness.connect(hostile);
  SubmitRequest unknown = inline_submit(data_file("karate.txt"));
  unknown.backend = 200;
  EXPECT_THROW(hostile.submit(unknown), std::exception);

  SubmitRequest faulty_cfp = inline_submit(data_file("karate.txt"));
  faulty_cfp.backend = 2;
  faulty_cfp.faults = "drop=0.1,seed=7";
  const SubmitReply faulty_reply = client.submit(faulty_cfp);
  EXPECT_EQ(faulty_reply.disposition, SubmitDisposition::kRejected);
}

TEST(ServiceDaemon, CfpSubmitMatchesLocalCfpRun) {
  DaemonHarness harness(DaemonConfig{});
  Client client;
  harness.connect(client);

  SubmitRequest submit = inline_submit(data_file("karate.txt"));
  submit.backend = 2;
  const SubmitReply reply = client.submit(submit);
  ASSERT_EQ(reply.disposition, SubmitDisposition::kQueued) << reply.detail;
  EXPECT_EQ(reply.backend, 2);

  const ResultReply result = client.wait_result(reply.job_id);
  ASSERT_TRUE(result.ready);
  const ResultBlock block = decode_block(result);
  const Graph karate = read_edge_list_text(data_file("karate.txt"));
  portfolio::BackendRequest local;
  local.graph = &karate;
  local.options.backend = BackendId::kCfp;
  const RunOutcome fresh = portfolio::run_portfolio(local);
  ASSERT_EQ(fresh.status, RunStatus::kComplete) << fresh.detail;
  expect_bit_equal(block.betweenness, fresh.result.betweenness,
                   "cfp betweenness");
  EXPECT_EQ(block.rounds, fresh.result.rounds);
}

#ifdef CONGESTBCD_PATH
struct SpawnedDaemon {
  pid_t pid = -1;
  std::uint16_t port = 0;
};

/// fork/execs the real congestbcd binary and parses "LISTENING <port>".
SpawnedDaemon spawn_daemon(const std::string& spool) {
  int out_pipe[2];
  if (::pipe(out_pipe) != 0) {
    return {};
  }
  const pid_t pid = ::fork();
  if (pid == 0) {
    ::dup2(out_pipe[1], STDOUT_FILENO);
    ::close(out_pipe[0]);
    ::close(out_pipe[1]);
    ::execl(CONGESTBCD_PATH, "congestbcd", "--port", "0", "--workers", "1",
            "--spool", spool.c_str(), static_cast<char*>(nullptr));
    _exit(127);
  }
  ::close(out_pipe[1]);
  SpawnedDaemon daemon;
  daemon.pid = pid;
  FILE* out = ::fdopen(out_pipe[0], "r");
  char line[256];
  while (out != nullptr && std::fgets(line, sizeof line, out) != nullptr) {
    unsigned port = 0;
    if (std::sscanf(line, "LISTENING %u", &port) == 1) {
      daemon.port = static_cast<std::uint16_t>(port);
      break;
    }
  }
  // Leak `out` deliberately: closing it would close the child's stdout
  // reader while the daemon still writes its drain message.
  return daemon;
}

// The acceptance drill with a real process and a real SIGTERM: kill the
// daemon mid-job, restart it on the same spool, get the same bits.
TEST(ServiceDaemon, SigtermDrainThenRestartResumesAcrossProcesses) {
  TempDir spool("sigterm_resume");
  const Graph graph = gen::cycle(1000);
  const std::string text = write_edge_list_text(graph);

  const SpawnedDaemon first = spawn_daemon(spool.str());
  ASSERT_GT(first.pid, 0);
  ASSERT_NE(first.port, 0) << "daemon never announced LISTENING";
  {
    Client client;
    client.connect("127.0.0.1", first.port);
    const SubmitReply reply = client.submit(inline_submit(text));
    ASSERT_EQ(reply.disposition, SubmitDisposition::kQueued) << reply.detail;
    wait_until_running(client, reply.job_id);
  }
  ASSERT_EQ(::kill(first.pid, SIGTERM), 0);
  int status = 0;
  ASSERT_EQ(::waitpid(first.pid, &status, 0), first.pid);
  EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0)
      << "daemon did not drain cleanly on SIGTERM";

  const SpawnedDaemon second = spawn_daemon(spool.str());
  ASSERT_GT(second.pid, 0);
  ASSERT_NE(second.port, 0);
  Client client;
  client.connect("127.0.0.1", second.port);
  EXPECT_GE(client.stats().jobs_resumed, 1u);
  const SubmitReply attach = client.submit(inline_submit(text));
  ASSERT_TRUE(attach.disposition == SubmitDisposition::kCoalesced ||
              attach.disposition == SubmitDisposition::kCacheHit)
      << to_string(attach.disposition) << " " << attach.detail;
  const ResultReply resumed = client.wait_result(attach.job_id);
  expect_matches_local_run(resumed, graph, DistributedBcOptions{});

  EXPECT_TRUE(client.shutdown().draining);
  ASSERT_EQ(::waitpid(second.pid, &status, 0), second.pid);
  EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0);
}
#endif  // CONGESTBCD_PATH

}  // namespace
}  // namespace congestbc::service
