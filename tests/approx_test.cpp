// Approximation baselines from the paper's related work: the Bader et al.
// adaptive sampler ([13]) and Newman's current-flow betweenness ([4],
// footnote-1 future work).
#include <gtest/gtest.h>

#include "central/adaptive_sampling.hpp"
#include "central/brandes.hpp"
#include "central/current_flow.hpp"
#include "common/assert.hpp"
#include "graph/generators.hpp"

namespace congestbc {
namespace {

// --- adaptive sampling (Bader et al.) ---

TEST(AdaptiveSampling, HighBcNodeStopsEarly) {
  // The star center's dependency is ~n per source, so the alpha*n
  // threshold trips after a handful of samples.
  const Graph g = gen::star(64);
  Rng rng(1);
  const auto estimate = adaptive_sampled_bc(g, 0, 2.0, rng);
  EXPECT_TRUE(estimate.threshold_hit);
  EXPECT_LT(estimate.samples, 10u);
  const auto exact = brandes_bc(g);
  // Within a factor of 2 — the guarantee regime of the paper's Section II
  // description of [13].
  EXPECT_GT(estimate.betweenness, exact[0] / 2);
  EXPECT_LT(estimate.betweenness, exact[0] * 2);
}

TEST(AdaptiveSampling, LowBcNodeExhaustsAndIsExact) {
  const Graph g = gen::star(32);
  Rng rng(2);
  const auto estimate = adaptive_sampled_bc(g, 5, 2.0, rng);  // a leaf
  EXPECT_FALSE(estimate.threshold_hit);
  EXPECT_EQ(estimate.samples, 32u);
  EXPECT_DOUBLE_EQ(estimate.betweenness, 0.0);
}

TEST(AdaptiveSampling, ExhaustedRunMatchesBrandesExactly) {
  Rng rng(3);
  const Graph g = gen::erdos_renyi_connected(24, 0.15, rng);
  const auto exact = brandes_bc(g);
  for (NodeId v = 0; v < g.num_nodes(); v += 5) {
    Rng sample_rng(100 + v);
    // alpha so large the threshold never trips.
    const auto estimate = adaptive_sampled_bc(g, v, 1e9, sample_rng);
    EXPECT_FALSE(estimate.threshold_hit);
    EXPECT_NEAR(estimate.betweenness, exact[v], 1e-9) << "node " << v;
  }
}

TEST(AdaptiveSampling, EstimateInRightBallpark) {
  Rng rng(4);
  const Graph g = gen::barabasi_albert(80, 2, rng);
  const auto exact = brandes_bc(g);
  // Highest-degree hub.
  NodeId hub = 0;
  for (NodeId v = 1; v < g.num_nodes(); ++v) {
    if (g.degree(v) > g.degree(hub)) {
      hub = v;
    }
  }
  Rng sample_rng(5);
  const auto estimate = adaptive_sampled_bc(g, hub, 2.0, sample_rng);
  EXPECT_GT(estimate.betweenness, exact[hub] / 3);
  EXPECT_LT(estimate.betweenness, exact[hub] * 3);
}

TEST(AdaptiveSampling, Preconditions) {
  const Graph g = gen::path(4);
  Rng rng(6);
  EXPECT_THROW(adaptive_sampled_bc(g, 9, 2.0, rng), PreconditionError);
  EXPECT_THROW(adaptive_sampled_bc(g, 0, 0.0, rng), PreconditionError);
}

// --- current-flow betweenness (Newman) ---

TEST(CurrentFlow, EqualsShortestPathBcOnTrees) {
  // On a tree every s-t current follows the unique path: current-flow and
  // shortest-path betweenness coincide (ordered sum vs unordered: brandes
  // halved == unordered pair sum).
  Rng rng(7);
  const Graph g = gen::random_tree(24, rng);
  const auto flow = current_flow_bc(g);
  const auto sp = brandes_bc(g);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_NEAR(flow[v], sp[v], 1e-8) << "node " << v;
  }
}

TEST(CurrentFlow, StarCenter) {
  const Graph g = gen::star(10);
  const auto flow = current_flow_bc(g);
  EXPECT_NEAR(flow[0], 36.0, 1e-8);  // C(9,2) leaf pairs
  for (NodeId v = 1; v < 10; ++v) {
    EXPECT_NEAR(flow[v], 0.0, 1e-8);
  }
}

TEST(CurrentFlow, SymmetryOnCycle) {
  const auto flow = current_flow_bc(gen::cycle(8));
  for (NodeId v = 1; v < 8; ++v) {
    EXPECT_NEAR(flow[v], flow[0], 1e-8);
  }
  // Current splits across both arcs, so every node carries some flow —
  // strictly more than zero, strictly less than the path-graph extreme.
  EXPECT_GT(flow[0], 0.0);
}

TEST(CurrentFlow, BridgeBeatsInteriorCliqueNodes) {
  // All inter-clique current crosses the bridge, so it beats every
  // *interior* clique node; the clique-junction nodes (4 and 6) carry the
  // same inter-clique current PLUS intra-clique flow, so they top even
  // the bridge — a qualitative difference from shortest-path betweenness
  // worth pinning down.
  const Graph g = gen::barbell(5, 1);
  const auto flow = current_flow_bc(g);
  const NodeId bridge = 5;  // the single path node between cliques
  for (const NodeId interior : {0u, 1u, 2u, 3u}) {
    EXPECT_GT(flow[bridge], flow[interior]);
  }
  const NodeId junction = 4;
  EXPECT_GT(flow[junction], flow[bridge]);
}

TEST(CurrentFlow, Preconditions) {
  EXPECT_THROW(current_flow_bc(gen::path(2)), PreconditionError);
  EXPECT_THROW(current_flow_bc(Graph(4, {{0, 1}, {2, 3}})), PreconditionError);
}

}  // namespace
}  // namespace congestbc
