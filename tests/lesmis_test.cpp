// Second real dataset: the Les Misérables character co-occurrence
// network (Knuth 1993; 77 nodes, 254 weighted edges), exercising both the
// unweighted pipeline and the weighted subdivision end to end.  Expected
// values computed independently with networkx
// (betweenness_centrality, normalized=False[, weight='weight']).
#include <gtest/gtest.h>

#include <fstream>

#include "algo/bc_pipeline.hpp"
#include "algo/weighted_bc.hpp"
#include "central/brandes.hpp"
#include "central/weighted_brandes.hpp"
#include "core/validation.hpp"
#include "graph/io.hpp"

namespace congestbc {
namespace {

constexpr NodeId kValjean = 73;
constexpr NodeId kMyriel = 62;
constexpr NodeId kGavroche = 31;

WeightedGraph load_lesmis() {
  for (const char* path : {"data/lesmis.txt", "../data/lesmis.txt",
                           "../../data/lesmis.txt"}) {
    std::ifstream file(path);
    if (file.good()) {
      return read_weighted_edge_list(file);
    }
  }
  throw std::runtime_error("data/lesmis.txt not found (run from repo root)");
}

Graph unweighted_view(const WeightedGraph& g) {
  std::vector<Edge> edges;
  for (const auto& e : g.edges()) {
    edges.push_back({e.u, e.v});
  }
  return Graph(g.num_nodes(), std::move(edges));
}

TEST(LesMis, Loads) {
  const WeightedGraph g = load_lesmis();
  EXPECT_EQ(g.num_nodes(), 77u);
  EXPECT_EQ(g.num_edges(), 254u);
  EXPECT_EQ(g.total_weight(), 820u);
}

TEST(LesMis, UnweightedBetweennessMatchesNetworkx) {
  const Graph g = unweighted_view(load_lesmis());
  const auto bc = brandes_bc(g);
  EXPECT_NEAR(bc[kValjean], 1624.4688, 1e-3);
  EXPECT_NEAR(bc[kMyriel], 504.0, 1e-3);
  EXPECT_NEAR(bc[kGavroche], 470.57063, 1e-3);
}

TEST(LesMis, DistributedUnweightedMatchesBrandes) {
  const Graph g = unweighted_view(load_lesmis());
  const auto result = run_distributed_bc(g);
  const auto reference = brandes_bc(g);
  const auto stats = compare_vectors(result.betweenness, reference, 1e-6);
  EXPECT_LT(stats.max_rel_error, 1e-6);
  // Valjean is the unambiguous hub of the novel.
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (v != kValjean) {
      EXPECT_LT(result.betweenness[v], result.betweenness[kValjean]);
    }
  }
}

TEST(LesMis, WeightedBetweennessMatchesNetworkx) {
  // weight-as-distance convention (networkx weight='weight').
  const WeightedGraph g = load_lesmis();
  const auto bc = weighted_brandes_bc(g);
  EXPECT_NEAR(bc[kValjean], 1293.61407, 1e-3);
  EXPECT_NEAR(bc[kGavroche], 812.68494, 1e-3);
  EXPECT_NEAR(bc[kMyriel], 504.0, 1e-3);
}

TEST(LesMis, DistributedWeightedMatchesReference) {
  const WeightedGraph g = load_lesmis();
  const auto result = run_distributed_weighted_bc(g);
  const auto reference = weighted_brandes_bc(g);
  const auto stats = compare_vectors(result.betweenness, reference, 1e-6);
  EXPECT_LT(stats.max_rel_error, 1e-6);
  // Subdivision size: N' = N + sum(w-1) = 77 + (820-254) = 643.
  EXPECT_EQ(result.subdivided_nodes, 643u);
}

}  // namespace
}  // namespace congestbc
