#include "algo/bfs_tree.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "congest/network.hpp"
#include "graph/generators.hpp"
#include "graph/properties.hpp"

namespace congestbc {
namespace {

struct TreeRun {
  std::vector<const TreeBuilder*> trees;
  RunMetrics metrics;
  std::vector<std::unique_ptr<NodeProgram>> programs;  // keeps trees alive
};

TreeRun run_tree(const Graph& g, NodeId root) {
  const WireFormat fmt =
      WireFormat::for_graph(g.num_nodes(), SoftFloatFormat::for_graph(g.num_nodes()));
  TreeRun run;
  Network net(g, NetworkConfig{congest_budget_bits(g.num_nodes()), 100000, true});
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    auto p = std::make_unique<BfsTreeProgram>(v, root, fmt);
    run.trees.push_back(&p->tree());
    run.programs.push_back(std::move(p));
  }
  run.metrics = net.run(run.programs);
  return run;
}

void check_tree(const Graph& g, NodeId root, const TreeRun& run) {
  const auto dist = bfs_distances(g, root);
  const auto& trees = run.trees;
  EXPECT_TRUE(trees[root]->tree_complete());
  EXPECT_EQ(trees[root]->subtree_count(), g.num_nodes());
  std::uint32_t max_dist = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    max_dist = std::max(max_dist, dist[v]);
    ASSERT_TRUE(trees[v]->has_dist());
    EXPECT_EQ(trees[v]->dist(), dist[v]) << "node " << v;
    if (v != root) {
      EXPECT_TRUE(g.has_edge(v, trees[v]->parent()));
      EXPECT_EQ(dist[trees[v]->parent()] + 1, dist[v]);
      // Child lists are consistent with parents.
      const auto& siblings = trees[trees[v]->parent()]->children();
      EXPECT_TRUE(std::find(siblings.begin(), siblings.end(), v) !=
                  siblings.end());
    }
  }
  EXPECT_EQ(trees[root]->subtree_depth(), max_dist);
  // Subtree counts add up: root count is N; each node's count is 1 + sum
  // of children's counts.
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    std::uint32_t expected = 1;
    for (const NodeId c : trees[v]->children()) {
      expected += trees[c]->subtree_count();
    }
    EXPECT_EQ(trees[v]->subtree_count(), expected);
  }
}

TEST(BfsTree, SingleNode) {
  const Graph g(1, {});
  const auto run = run_tree(g, 0);
  EXPECT_TRUE(run.trees[0]->tree_complete());
  EXPECT_EQ(run.trees[0]->subtree_count(), 1u);
  EXPECT_EQ(run.trees[0]->subtree_depth(), 0u);
}

TEST(BfsTree, PathGraph) {
  const Graph g = gen::path(8);
  const auto run = run_tree(g, 0);
  check_tree(g, 0, run);
  // Construction is O(D): depth 7 tree must finish within ~2D+constant.
  EXPECT_LE(run.metrics.rounds, 2u * 7u + 6u);
}

TEST(BfsTree, PathFromMiddle) {
  const Graph g = gen::path(9);
  const auto run = run_tree(g, 4);
  check_tree(g, 4, run);
}

TEST(BfsTree, StarFromLeaf) {
  const Graph g = gen::star(10);
  const auto run = run_tree(g, 3);
  check_tree(g, 3, run);
}

TEST(BfsTree, TiesBreakTowardSmallestParent) {
  // A 4-cycle: node 2 is reached simultaneously from 1 and 3.
  const Graph g(4, {{0, 1}, {1, 2}, {2, 3}, {3, 0}});
  const auto run = run_tree(g, 0);
  EXPECT_EQ(run.trees[2]->parent(), 1u);
}

class BfsTreeSuite : public ::testing::TestWithParam<int> {};

TEST_P(BfsTreeSuite, AllFamilies) {
  const auto suite = gen::standard_suite(24, 7);
  const auto& named = suite[static_cast<std::size_t>(GetParam())];
  const auto run = run_tree(named.graph, 0);
  check_tree(named.graph, 0, run);
}

INSTANTIATE_TEST_SUITE_P(Families, BfsTreeSuite, ::testing::Range(0, 15));

TEST(BfsTree, CongestBudgetRespected) {
  Rng rng(3);
  const Graph g = gen::erdos_renyi_connected(64, 0.1, rng);
  const auto run = run_tree(g, 0);
  EXPECT_LE(run.metrics.max_bits_on_edge_round,
            congest_budget_bits(g.num_nodes()));
  check_tree(g, 0, run);
}

}  // namespace
}  // namespace congestbc
