// Property-based differential sweep (ISSUE: observability PR satellite):
// family x size x engine x thread-count, every combination differentially
// validated against the centralized oracles —
//   * betweenness vs brandes_bc within the Theorem-1 soft-float envelope
//     (1+eta)^(2D+4) - 1,
//   * per-node distance tables vs bfs_distances (exact),
//   * per-node sigma-hat tables vs count_shortest_paths within the
//     ceil-rounding envelope (1+eta)^(D+1) - 1 (sigma-hat >= sigma), and
//   * closeness vs the exact distance sums (integers on the wire).
// The disconnected family exercises the component-stitching pattern: the
// pipeline requires a connected graph, so each component runs separately
// and the results are stitched back into full-graph index space.
//
// Every case carries the ctest label `property`; `ctest -L property`
// runs the full matrix (tests/CMakeLists.txt).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <string>
#include <tuple>
#include <vector>

#include "algo/bc_pipeline.hpp"
#include "central/brandes.hpp"
#include "central/centralities.hpp"
#include "core/validation.hpp"
#include "fpa/soft_float.hpp"
#include "graph/generators.hpp"
#include "graph/properties.hpp"

namespace congestbc {
namespace {

// ---------------------------------------------------------------------
// Graph families

/// A star of ceil(n/2) leaves with a path tail hanging off leaf 1 — the
/// "hub + chain" shape that stresses both the high-degree DFS fan-out
/// and the long-diameter counting waves in one graph.
Graph star_plus_path(NodeId n) {
  const NodeId hub_leaves = n / 2;
  std::vector<Edge> edges;
  for (NodeId v = 1; v <= hub_leaves; ++v) {
    edges.push_back({0, v});
  }
  for (NodeId v = hub_leaves; v + 1 < n; ++v) {
    edges.push_back({v, v + 1});
  }
  return Graph(n, std::move(edges));
}

/// Components of a disconnected graph as (full-graph node id) lists,
/// smallest id first within and across components.
std::vector<std::vector<NodeId>> connected_components(const Graph& g) {
  const NodeId n = g.num_nodes();
  std::vector<bool> seen(n, false);
  std::vector<std::vector<NodeId>> components;
  for (NodeId start = 0; start < n; ++start) {
    if (seen[start]) {
      continue;
    }
    std::vector<NodeId> queue{start};
    seen[start] = true;
    for (std::size_t head = 0; head < queue.size(); ++head) {
      for (const NodeId w : g.neighbors(queue[head])) {
        if (!seen[w]) {
          seen[w] = true;
          queue.push_back(w);
        }
      }
    }
    components.push_back(std::move(queue));
  }
  return components;
}

/// The induced subgraph on `nodes` with ids remapped to 0..k-1 in the
/// order given.
Graph induced_subgraph(const Graph& g, const std::vector<NodeId>& nodes) {
  std::vector<NodeId> local(g.num_nodes(), 0);
  std::vector<bool> member(g.num_nodes(), false);
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    local[nodes[i]] = static_cast<NodeId>(i);
    member[nodes[i]] = true;
  }
  std::vector<Edge> edges;
  for (const Edge& e : g.edges()) {
    if (member[e.u] && member[e.v]) {
      edges.push_back({local[e.u], local[e.v]});
    }
  }
  return Graph(static_cast<NodeId>(nodes.size()), std::move(edges));
}

/// Three far-apart components: a cycle, a grid, and a path, with a couple
/// of isolated-free small sizes.  Betweenness of a disconnected graph is
/// the disjoint union of the per-component values.
Graph multi_component(NodeId n) {
  const NodeId a = std::max<NodeId>(3, n / 3);       // cycle
  const NodeId b = std::max<NodeId>(4, n / 3);       // grid-ish (2 x b/2)
  const NodeId c = std::max<NodeId>(2, n - a - b);   // path
  std::vector<Edge> edges;
  for (NodeId v = 0; v < a; ++v) {
    edges.push_back({v, static_cast<NodeId>((v + 1) % a)});
  }
  const Graph grid_part = gen::grid(2, b / 2);
  for (const Edge& e : grid_part.edges()) {
    edges.push_back(
        {static_cast<NodeId>(a + e.u), static_cast<NodeId>(a + e.v)});
  }
  const NodeId base = static_cast<NodeId>(a + grid_part.num_nodes());
  for (NodeId v = 0; v + 1 < c; ++v) {
    edges.push_back(
        {static_cast<NodeId>(base + v), static_cast<NodeId>(base + v + 1)});
  }
  return Graph(static_cast<NodeId>(base + c), std::move(edges));
}

Graph make_family(int family, NodeId n) {
  Rng rng(0x5eedULL + n);
  switch (family) {
    case 0:
      return gen::erdos_renyi_connected(n, std::min(0.9, 6.0 / n), rng);
    case 1:
      return gen::barabasi_albert(n, 2, rng);
    case 2:
      return gen::grid(std::max<NodeId>(2, n / 8), 8);
    case 3:
      return star_plus_path(n);
    default:
      return multi_component(n);
  }
}

const char* family_name(int family) {
  switch (family) {
    case 0:
      return "er";
    case 1:
      return "ba";
    case 2:
      return "grid";
    case 3:
      return "star_path";
    default:
      return "multi_component";
  }
}

// ---------------------------------------------------------------------
// Oracles and envelopes

/// Theorem 1 multiplicative envelope for BC on a diameter-D graph with
/// mantissa length L: (1+eta)^(2D+4) - 1, eta = 2^-(L-1).
double theorem1_envelope(NodeId n, std::uint32_t diameter_bound) {
  const unsigned mantissa = SoftFloatFormat::for_graph(n).mantissa_bits;
  const double eta = std::ldexp(1.0, -static_cast<int>(mantissa) + 1);
  return std::pow(1.0 + eta, 2.0 * diameter_bound + 4.0) - 1.0;
}

/// Differentially validates one connected run against the oracles.
/// `offset_nodes` maps local ids back to full-graph ids for SCOPED_TRACE
/// labels only.
void check_connected_run(const Graph& g, const DistributedBcResult& result) {
  const NodeId n = g.num_nodes();
  const std::uint32_t dia = diameter(g);
  ASSERT_EQ(result.diameter, dia);

  // Betweenness within the Theorem-1 envelope (plus double-accumulation
  // headroom on the oracle side).
  const auto reference = brandes_bc(g);
  const auto stats = compare_vectors(result.betweenness, reference, 1e-6);
  EXPECT_LT(stats.max_rel_error, theorem1_envelope(n, dia) + 1e-9)
      << "worst node " << stats.worst_index;

  // Closeness rides on exact integer distance sums.
  const auto cc = closeness_centrality(g);
  for (NodeId v = 0; v < n; ++v) {
    EXPECT_NEAR(result.closeness[v], cc[v], 1e-12) << "node " << v;
  }

  // Per-node tables: exact distances, sigma-hat within the ceil-rounding
  // envelope [sigma, (1+eta)^(D+1) sigma].
  ASSERT_EQ(result.tables.size(), n);
  const unsigned mantissa = SoftFloatFormat::for_graph(n).mantissa_bits;
  const double eta = std::ldexp(1.0, -static_cast<int>(mantissa) + 1);
  const double sigma_envelope =
      std::pow(1.0 + eta, static_cast<double>(dia) + 1.0);
  for (NodeId s = 0; s < n; ++s) {
    const auto dist = bfs_distances(g, s);
    const auto sigma = count_shortest_paths(g, s);
    for (NodeId v = 0; v < n; ++v) {
      if (v == s) {
        continue;
      }
      const SourceEntry* entry = nullptr;
      for (const SourceEntry& candidate : result.tables[v]) {
        if (candidate.source == s) {
          entry = &candidate;
          break;
        }
      }
      ASSERT_NE(entry, nullptr) << "missing table entry s=" << s
                                << " v=" << v;
      EXPECT_EQ(entry->dist, dist[v]) << "s=" << s << " v=" << v;
      const double exact = sigma[v].to_double();
      const double approx = entry->sigma.to_double();
      EXPECT_GE(approx, exact * (1.0 - 1e-12)) << "s=" << s << " v=" << v;
      EXPECT_LE(approx, exact * sigma_envelope * (1.0 + 1e-12))
          << "s=" << s << " v=" << v;
    }
  }
}

// ---------------------------------------------------------------------
// The sweep

struct Mode {
  const char* name;
  bool legacy;
  unsigned threads;
};

constexpr Mode kModes[] = {
    {"engine_t1", false, 1},
    {"engine_tall", false, 0},
    {"legacy", true, 1},
};

class PropertySweep
    : public ::testing::TestWithParam<std::tuple<int, NodeId, int>> {};

TEST_P(PropertySweep, DifferentialOracles) {
  const auto [family, size, mode_index] = GetParam();
  const Mode& mode = kModes[mode_index];
  const Graph g = make_family(family, size);
  SCOPED_TRACE(std::string(family_name(family)) + " N=" +
               std::to_string(g.num_nodes()) + " mode=" + mode.name);

  DistributedBcOptions options;
  options.keep_tables = true;
  options.legacy_engine = mode.legacy;
  options.threads = mode.threads;

  if (is_connected(g)) {
    check_connected_run(g, run_distributed_bc(g, options));
    return;
  }

  // Disconnected: run per component, stitch, and compare against the
  // per-component oracle in full-graph index space.
  std::vector<double> stitched(g.num_nodes(), 0.0);
  std::vector<double> reference(g.num_nodes(), 0.0);
  double worst_envelope = 0.0;
  for (const auto& nodes : connected_components(g)) {
    const Graph sub = induced_subgraph(g, nodes);
    if (sub.num_nodes() == 1) {
      continue;  // isolated node: zero betweenness by definition
    }
    const auto result = run_distributed_bc(sub, options);
    check_connected_run(sub, result);
    const auto oracle = brandes_bc(sub);
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      stitched[nodes[i]] = result.betweenness[i];
      reference[nodes[i]] = oracle[i];
    }
    worst_envelope = std::max(
        worst_envelope, theorem1_envelope(sub.num_nodes(), diameter(sub)));
  }
  const auto stats = compare_vectors(stitched, reference, 1e-6);
  EXPECT_LT(stats.max_rel_error, worst_envelope + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    FamilySizeMode, PropertySweep,
    ::testing::Combine(::testing::Range(0, 5),
                       ::testing::Values<NodeId>(8, 24, 48, 96, 200),
                       ::testing::Range(0, 3)),
    [](const ::testing::TestParamInfo<std::tuple<int, NodeId, int>>&
           param_info) {
      return std::string(family_name(std::get<0>(param_info.param))) + "_" +
             std::to_string(std::get<1>(param_info.param)) + "_" +
             kModes[std::get<2>(param_info.param)].name;
    });

}  // namespace
}  // namespace congestbc
