// Fault injection, reliable transport, and the watchdogged pipeline:
//   * a FaultPlan is seeded and order-independent, so same-seed runs are
//     byte-identical in metrics and trace;
//   * the reliable transport recovers the *exact* fault-free BC values
//     under drop/duplicate/delay faults (the synchronizer argument in
//     congest/reliable.hpp);
//   * adversarial plans (drop everything, permanent crash) end in a
//     classified RunOutcome instead of a hang.
#include <gtest/gtest.h>

#include <fstream>
#include <stdexcept>

#include "algo/bc_pipeline.hpp"
#include "congest/fault.hpp"
#include "congest/network.hpp"
#include "congest/reliable.hpp"
#include "congest/trace.hpp"
#include "core/runner.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"

namespace congestbc {
namespace {

Graph load_dataset(const char* name) {
  for (const std::string prefix : {"data/", "../data/", "../../data/"}) {
    std::ifstream file(prefix + name);
    if (file.good()) {
      return read_edge_list(file);
    }
  }
  throw std::runtime_error(std::string("data/") + name +
                           " not found (run from repo root)");
}

// ---------------------------------------------------------------- FaultPlan

TEST(FaultPlan, EmptyAndValidate) {
  FaultPlan plan;
  EXPECT_TRUE(plan.empty());
  plan.validate();

  plan.drop_probability = 0.1;
  EXPECT_FALSE(plan.empty());
  plan.validate();

  plan.drop_probability = 0.7;
  plan.duplicate_probability = 0.4;  // sums past 1
  EXPECT_THROW(plan.validate(), PreconditionError);

  FaultPlan inverted;
  inverted.node_faults.push_back(NodeFault{0, OutageWindow{10, 5}});
  EXPECT_THROW(inverted.validate(), PreconditionError);
}

TEST(FaultPlan, ParseRoundTripsTheCliSpec) {
  const FaultPlan plan =
      FaultPlan::parse("drop=0.1,dup=0.01,delay=0.05,seed=7,"
                       "crash=3:10-50,crash=9:100-inf,link=0-1:5-20");
  EXPECT_DOUBLE_EQ(plan.drop_probability, 0.1);
  EXPECT_DOUBLE_EQ(plan.duplicate_probability, 0.01);
  EXPECT_DOUBLE_EQ(plan.delay_probability, 0.05);
  EXPECT_EQ(plan.seed, 7u);
  ASSERT_EQ(plan.node_faults.size(), 2u);
  EXPECT_EQ(plan.node_faults[0].node, 3u);
  EXPECT_EQ(plan.node_faults[0].window, (OutageWindow{10, 50}));
  EXPECT_EQ(plan.node_faults[1].window.last_round, FaultPlan::kForever);
  ASSERT_EQ(plan.link_faults.size(), 1u);
  EXPECT_EQ(plan.link_faults[0].edge.u, 0u);
  EXPECT_EQ(plan.link_faults[0].edge.v, 1u);

  EXPECT_THROW(FaultPlan::parse("drop=0.1,bogus=3"), PreconditionError);
  EXPECT_FALSE(plan.describe().empty());
}

TEST(FaultInjector, RejectsFaultsOutsideTheGraph) {
  const Graph g = gen::path(4);
  FaultPlan bad_node;
  bad_node.node_faults.push_back(NodeFault{9, OutageWindow{0, 1}});
  EXPECT_THROW(FaultInjector(bad_node, g), PreconditionError);

  FaultPlan bad_link;
  bad_link.link_faults.push_back(LinkFault{Edge{0, 3}, OutageWindow{0, 1}});
  EXPECT_THROW(FaultInjector(bad_link, g), PreconditionError);
}

TEST(FaultInjector, DetectsPermanentPartition) {
  const Graph g = gen::path(5);  // 0-1-2-3-4
  FaultPlan crash_middle;
  crash_middle.node_faults.push_back(
      NodeFault{2, OutageWindow{0, FaultPlan::kForever}});
  EXPECT_TRUE(FaultInjector(crash_middle, g).permanently_partitions());

  FaultPlan transient;
  transient.node_faults.push_back(NodeFault{2, OutageWindow{0, 100}});
  EXPECT_FALSE(FaultInjector(transient, g).permanently_partitions());

  FaultPlan cut_link;
  cut_link.link_faults.push_back(
      LinkFault{Edge{1, 2}, OutageWindow{0, FaultPlan::kForever}});
  EXPECT_TRUE(FaultInjector(cut_link, g).permanently_partitions());

  const Graph ring = gen::cycle(5);
  FaultPlan one_cut;  // a cycle survives one permanent link cut
  one_cut.link_faults.push_back(
      LinkFault{Edge{1, 2}, OutageWindow{0, FaultPlan::kForever}});
  EXPECT_FALSE(FaultInjector(one_cut, ring).permanently_partitions());
}

// ------------------------------------------------------------- determinism

TEST(FaultDeterminism, SameSeedSameMetricsAndTrace) {
  const Graph g = load_dataset("karate.txt");
  DistributedBcOptions options;
  options.reliable_transport = true;
  options.faults.seed = 42;
  options.faults.drop_probability = 0.08;
  options.faults.duplicate_probability = 0.02;
  options.faults.delay_probability = 0.03;

  MessageTrace trace_a;
  MessageTrace trace_b;
  options.trace = &trace_a;
  const auto a = run_distributed_bc(g, options);
  options.trace = &trace_b;
  const auto b = run_distributed_bc(g, options);

  EXPECT_EQ(a.metrics, b.metrics);
  EXPECT_EQ(a.betweenness, b.betweenness);
  EXPECT_EQ(trace_a.events(), trace_b.events());
  EXPECT_EQ(trace_a.fault_events(), trace_b.fault_events());
  EXPECT_GT(a.metrics.dropped_messages, 0u);
  EXPECT_GT(a.metrics.duplicated_messages, 0u);
  EXPECT_GT(a.metrics.delayed_messages, 0u);
  EXPECT_EQ(trace_a.total_faults(),
            a.metrics.dropped_messages + a.metrics.duplicated_messages +
                a.metrics.delayed_messages);
}

TEST(FaultDeterminism, DifferentSeedsDiverge) {
  const Graph g = gen::cycle(16);
  DistributedBcOptions options;
  options.reliable_transport = true;
  options.faults = FaultPlan::uniform_drop(1, 0.2);
  const auto a = run_distributed_bc(g, options);
  options.faults.seed = 2;
  const auto b = run_distributed_bc(g, options);
  // Different drop patterns: the metrics differ (results still agree).
  EXPECT_NE(a.metrics, b.metrics);
  EXPECT_EQ(a.betweenness, b.betweenness);
}

// -------------------------------------------------- exactness under faults

void expect_reliable_run_is_bit_identical(const Graph& g) {
  DistributedBcOptions clean;
  const auto reference = run_distributed_bc(g, clean);

  DistributedBcOptions faulty;
  faulty.reliable_transport = true;
  faulty.faults = FaultPlan::uniform_drop(1234, 0.10);
  const auto result = run_distributed_bc(g, faulty);

  ASSERT_GT(result.metrics.dropped_messages, 0u);
  // Bit-identical, not approximately equal: the synchronizer feeds every
  // inner round the exact fault-free inboxes.
  EXPECT_EQ(result.betweenness, reference.betweenness);
  EXPECT_EQ(result.closeness, reference.closeness);
  EXPECT_EQ(result.graph_centrality, reference.graph_centrality);
  EXPECT_EQ(result.stress, reference.stress);
  EXPECT_EQ(result.eccentricities, reference.eccentricities);
  EXPECT_EQ(result.diameter, reference.diameter);
  // The recovery is not free: more rounds than the fault-free run.
  EXPECT_GT(result.rounds, reference.rounds);
}

TEST(ReliableTransport, ExactBcUnderTenPercentDropOnKarate) {
  expect_reliable_run_is_bit_identical(load_dataset("karate.txt"));
}

TEST(ReliableTransport, ExactBcUnderTenPercentDropOnLesmis) {
  expect_reliable_run_is_bit_identical(load_dataset("lesmis.txt"));
}

TEST(ReliableTransport, ExactBcUnderMixedFaultsAndTransientOutages) {
  const Graph g = load_dataset("karate.txt");
  DistributedBcOptions clean;
  const auto reference = run_distributed_bc(g, clean);

  DistributedBcOptions faulty;
  faulty.reliable_transport = true;
  faulty.faults.seed = 99;
  faulty.faults.drop_probability = 0.05;
  faulty.faults.duplicate_probability = 0.05;
  faulty.faults.delay_probability = 0.05;
  // A transient link outage and a transient crash-restart: the transport
  // retransmits across both.
  faulty.faults.link_faults.push_back(LinkFault{Edge{0, 1}, {10, 60}});
  faulty.faults.node_faults.push_back(NodeFault{5, {20, 40}});
  const auto result = run_distributed_bc(g, faulty);

  EXPECT_GT(result.metrics.crashed_node_rounds, 0u);
  EXPECT_EQ(result.betweenness, reference.betweenness);
  EXPECT_EQ(result.stress, reference.stress);
}

TEST(ReliableTransport, NoFaultsStillExact) {
  // The wrapper alone (no faults) must not perturb results either.
  const Graph g = load_dataset("karate.txt");
  DistributedBcOptions clean;
  const auto reference = run_distributed_bc(g, clean);
  DistributedBcOptions wrapped;
  wrapped.reliable_transport = true;
  const auto result = run_distributed_bc(g, wrapped);
  EXPECT_EQ(result.betweenness, reference.betweenness);
  EXPECT_EQ(result.metrics.dropped_messages, 0u);
}

TEST(ReliableTransport, BudgetHelpersAreConsistent) {
  const std::uint64_t inner = congest_budget_bits(34);
  const std::uint64_t outer = reliable_budget_bits(inner, 1 << 20);
  EXPECT_EQ(outer, inner + reliable_header_bits(inner, 1 << 20));
  EXPECT_GT(outer, inner);
}

// ------------------------------------------------------ watchdog & outcome

TEST(Watchdog, DropEverythingStallsAndIsClassified) {
  const Graph g = load_dataset("karate.txt");
  DistributedBcOptions options;
  options.reliable_transport = true;
  options.faults = FaultPlan::drop_everything();
  options.stall_window = 64;

  // The raw pipeline throws StallError...
  EXPECT_THROW(run_distributed_bc(g, options), StallError);

  // ...and the watchdog runner classifies it with partial completion.
  const RunOutcome outcome = run_bc_with_watchdog(g, options);
  EXPECT_EQ(outcome.status, RunStatus::kStall);
  EXPECT_FALSE(outcome.complete());
  EXPECT_LT(outcome.nodes_finished, g.num_nodes());
  EXPECT_EQ(outcome.completion.size(), g.num_nodes());
  EXPECT_FALSE(outcome.detail.empty());
  EXPECT_FALSE(outcome.summary().empty());
}

TEST(Watchdog, PermanentCrashIsClassifiedAsPartition) {
  const Graph g = gen::path(8);
  DistributedBcOptions options;
  options.reliable_transport = true;
  options.faults.node_faults.push_back(
      NodeFault{4, OutageWindow{0, FaultPlan::kForever}});
  options.stall_window = 256;

  const RunOutcome outcome = run_bc_with_watchdog(g, options);
  EXPECT_EQ(outcome.status, RunStatus::kCrashPartition);
  EXPECT_GT(outcome.result.metrics.crashed_node_rounds, 0u);
  EXPECT_FALSE(outcome.completion[4].done);
}

TEST(Watchdog, CompleteRunReportsComplete) {
  const Graph g = load_dataset("karate.txt");
  DistributedBcOptions options;
  options.reliable_transport = true;
  options.faults = FaultPlan::uniform_drop(5, 0.1);
  const RunOutcome outcome = run_bc_with_watchdog(g, options);
  EXPECT_EQ(outcome.status, RunStatus::kComplete);
  EXPECT_EQ(outcome.nodes_finished, g.num_nodes());
  EXPECT_GT(outcome.retransmissions, 0u);
  const auto reference = run_distributed_bc(g, DistributedBcOptions{});
  EXPECT_EQ(outcome.result.betweenness, reference.betweenness);
}

TEST(Watchdog, RoundLimitIsClassified) {
  const Graph g = gen::cycle(8);
  DistributedBcOptions options;
  options.reliable_transport = true;
  options.faults = FaultPlan::uniform_drop(3, 0.3);
  options.max_rounds = 10;  // far too few
  const RunOutcome outcome = run_bc_with_watchdog(g, options);
  EXPECT_EQ(outcome.status, RunStatus::kRoundLimit);
}

// ----------------------------------------------- unreliable without armor

TEST(FaultsWithoutTransport, DropsCorruptTheBareAlgorithm) {
  // Sanity check that the fault layer actually bites: without the
  // reliable transport a lossy run cannot be trusted — it either stalls
  // or (rarely) finishes with wrong values.  Either way it must not
  // silently equal the reference.
  const Graph g = load_dataset("karate.txt");
  const auto reference = run_distributed_bc(g, DistributedBcOptions{});

  DistributedBcOptions options;
  options.faults = FaultPlan::uniform_drop(11, 0.10);
  options.check_invariants = false;  // the program's own asserts may fire
  const RunOutcome outcome = run_bc_with_watchdog(g, options);
  EXPECT_TRUE(!outcome.complete() ||
              outcome.result.betweenness != reference.betweenness);
}

}  // namespace
}  // namespace congestbc
