// End-to-end run on a real dataset: Zachary's karate club (1977), the
// canonical social-network benchmark shipped in data/karate.txt.  The
// expected values below were computed independently with networkx
// (betweenness_centrality, normalized=False — the same unordered-pair
// convention as our halved sums).
#include <gtest/gtest.h>

#include <fstream>

#include "algo/bc_pipeline.hpp"
#include "central/brandes.hpp"
#include "core/validation.hpp"
#include "graph/io.hpp"
#include "graph/properties.hpp"

namespace congestbc {
namespace {

Graph load_karate() {
  for (const char* path : {"data/karate.txt", "../data/karate.txt",
                           "../../data/karate.txt"}) {
    std::ifstream file(path);
    if (file.good()) {
      return read_edge_list(file);
    }
  }
  throw std::runtime_error("data/karate.txt not found (run from repo root)");
}

TEST(Karate, LoadsAndIsConnected) {
  const Graph g = load_karate();
  EXPECT_EQ(g.num_nodes(), 34u);
  EXPECT_EQ(g.num_edges(), 78u);
  EXPECT_TRUE(is_connected(g));
  EXPECT_EQ(diameter(g), 5u);
}

TEST(Karate, BrandesMatchesNetworkxReference) {
  const Graph g = load_karate();
  const auto bc = brandes_bc(g);
  // networkx betweenness_centrality(normalized=False):
  EXPECT_NEAR(bc[0], 231.071429, 1e-5);   // instructor (Mr. Hi)
  EXPECT_NEAR(bc[33], 160.551587, 1e-5);  // club president (John A.)
  EXPECT_NEAR(bc[32], 76.690476, 1e-5);
  EXPECT_NEAR(bc[2], 75.850794, 1e-5);
}

TEST(Karate, DistributedMatchesBrandes) {
  const Graph g = load_karate();
  const auto result = run_distributed_bc(g);
  const auto reference = brandes_bc(g);
  const auto stats = compare_vectors(result.betweenness, reference, 1e-6);
  EXPECT_LT(stats.max_rel_error, 1e-6);
}

TEST(Karate, FactionLeadersTopTheRanking) {
  const Graph g = load_karate();
  const auto result = run_distributed_bc(g);
  // The two faction leaders carry the most betweenness — the structural
  // fact behind the club's historical split.
  for (NodeId v = 1; v < 33; ++v) {
    EXPECT_LT(result.betweenness[v], result.betweenness[0]);
  }
  NodeId second = 1;
  for (NodeId v = 1; v < 34; ++v) {
    if (v != 0 && result.betweenness[v] > result.betweenness[second]) {
      second = v;
    }
  }
  EXPECT_EQ(second, 33u);
}

}  // namespace
}  // namespace congestbc
