#include "algo/wire.hpp"

#include <gtest/gtest.h>

#include "congest/network.hpp"

namespace congestbc {
namespace {

WireFormat test_format(std::uint32_t n) {
  return WireFormat::for_graph(n, SoftFloatFormat::for_graph(n));
}

TEST(Wire, FieldWidthsScaleLogarithmically) {
  const auto small = test_format(16);
  const auto large = test_format(1 << 20);
  EXPECT_EQ(small.id_bits, 4u);
  EXPECT_EQ(large.id_bits, 20u);
  EXPECT_EQ(small.dist_bits, small.id_bits + 1);
  EXPECT_EQ(small.time_bits, 2 * small.id_bits + 6);
}

TEST(Wire, SingleNodeGraphFormat) {
  const auto fmt = test_format(1);
  EXPECT_GE(fmt.id_bits, 1u);
}

TEST(Wire, TreeWaveRoundTrip) {
  const auto fmt = test_format(100);
  BitWriter w;
  encode(w, fmt, TreeWaveMsg{42});
  BitReader r(w.bytes(), w.bit_size());
  EXPECT_EQ(read_kind(r), MsgKind::kTreeWave);
  EXPECT_EQ(decode_tree_wave(r, fmt).dist, 42u);
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(Wire, SubtreeUpRoundTrip) {
  const auto fmt = test_format(100);
  BitWriter w;
  encode(w, fmt, SubtreeUpMsg{100, 17});
  BitReader r(w.bytes(), w.bit_size());
  EXPECT_EQ(read_kind(r), MsgKind::kSubtreeUp);
  const auto m = decode_subtree_up(r, fmt);
  EXPECT_EQ(m.count, 100u);
  EXPECT_EQ(m.depth, 17u);
}

TEST(Wire, DfsTokenRoundTrip) {
  const auto fmt = test_format(64);
  BitWriter w;
  encode(w, fmt, DfsTokenMsg{126});
  BitReader r(w.bytes(), w.bit_size());
  EXPECT_EQ(read_kind(r), MsgKind::kDfsToken);
  EXPECT_EQ(decode_dfs_token(r, fmt).depth_estimate, 126u);
}

TEST(Wire, WaveRoundTrip) {
  const auto fmt = test_format(256);
  const auto sigma = SoftFloat::from_u64(123456789, fmt.sf, RoundingMode::kUp);
  BitWriter w;
  encode(w, fmt, WaveMsg{200, 31, sigma});
  BitReader r(w.bytes(), w.bit_size());
  EXPECT_EQ(read_kind(r), MsgKind::kWave);
  const auto m = decode_wave(r, fmt);
  EXPECT_EQ(m.source, 200u);
  EXPECT_EQ(m.dist, 31u);
  EXPECT_EQ(m.sigma, sigma);
}

TEST(Wire, PhaseDownRoundTrip) {
  const auto fmt = test_format(256);
  BitWriter w;
  encode(w, fmt, PhaseDownMsg{100, 5000});
  BitReader r(w.bytes(), w.bit_size());
  EXPECT_EQ(read_kind(r), MsgKind::kPhaseDown);
  const auto m = decode_phase_down(r, fmt);
  EXPECT_EQ(m.diameter, 100u);
  EXPECT_EQ(m.epoch, 5000u);
}

TEST(Wire, AggRoundTrip) {
  const auto fmt = test_format(256);
  const auto psi =
      reciprocal(SoftFloat::from_u64(7, fmt.sf, RoundingMode::kUp), fmt.sf,
                 RoundingMode::kDown);
  const auto lambda = SoftFloat::from_u64(3, fmt.sf, RoundingMode::kDown);
  BitWriter w;
  encode(w, fmt, AggMsg{9, psi, lambda});
  BitReader r(w.bytes(), w.bit_size());
  EXPECT_EQ(read_kind(r), MsgKind::kAgg);
  const auto m = decode_agg(r, fmt);
  EXPECT_EQ(m.source, 9u);
  EXPECT_EQ(m.psi_value, psi);
  EXPECT_EQ(m.lambda_value, lambda);
}

TEST(Wire, EveryMessageFitsTheCongestBudget) {
  // Lemmas 3 and 5: each logical message is O(log N) bits; with the
  // library's explicit constant every single message must fit the budget.
  for (const std::uint32_t n : {2u, 16u, 256u, 4096u, 1u << 20}) {
    const auto fmt = test_format(n);
    const std::uint64_t budget = congest_budget_bits(n);
    const auto sigma = SoftFloat::from_u64(1, fmt.sf, RoundingMode::kUp);

    BitWriter wave;
    encode(wave, fmt, WaveMsg{n - 1, n - 1, sigma});
    EXPECT_LE(wave.bit_size(), budget) << "wave, n=" << n;

    BitWriter agg;
    encode(agg, fmt, AggMsg{n - 1, sigma, sigma});
    EXPECT_LE(agg.bit_size(), budget) << "agg, n=" << n;

    // Worst-case counting-phase bundle: wave + token + subtree + ecc +
    // parent accept (phase transitions can overlap on one edge).
    BitWriter bundle;
    encode(bundle, fmt, WaveMsg{n - 1, n - 1, sigma});
    encode(bundle, fmt, DfsTokenMsg{2 * (n > 1 ? n - 1 : 1)});
    encode(bundle, fmt, SubtreeUpMsg{n, n - 1});
    encode(bundle, fmt, EccUpMsg{n - 1});
    encode(bundle, fmt, ParentAcceptMsg{});
    EXPECT_LE(bundle.bit_size(), budget) << "bundle, n=" << n;
  }
}

}  // namespace
}  // namespace congestbc
