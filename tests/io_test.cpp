#include "graph/io.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "common/assert.hpp"
#include "common/rng.hpp"
#include "graph/generators.hpp"
#include "graph/weighted.hpp"

namespace congestbc {
namespace {

TEST(GraphIo, ParsesSimpleEdgeList) {
  const Graph g = read_edge_list_text("3 2\n0 1\n1 2\n");
  EXPECT_EQ(g.num_nodes(), 3u);
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 2));
  EXPECT_FALSE(g.has_edge(0, 2));
}

TEST(GraphIo, SkipsCommentsAndBlankLines) {
  const Graph g = read_edge_list_text(
      "# a comment\n\n  # another\n4 2\n# mid comment\n0 3\n\n1 2\n");
  EXPECT_EQ(g.num_nodes(), 4u);
  EXPECT_EQ(g.num_edges(), 2u);
}

TEST(GraphIo, RoundTrip) {
  Rng rng(11);
  const Graph original = gen::erdos_renyi_connected(25, 0.15, rng);
  const Graph parsed = read_edge_list_text(write_edge_list_text(original));
  EXPECT_EQ(parsed.num_nodes(), original.num_nodes());
  EXPECT_EQ(parsed.edges(), original.edges());
}

TEST(GraphIo, MalformedInputs) {
  EXPECT_THROW(read_edge_list_text(""), PreconditionError);
  EXPECT_THROW(read_edge_list_text("abc\n"), PreconditionError);
  EXPECT_THROW(read_edge_list_text("3 2\n0 1\n"), PreconditionError);
  EXPECT_THROW(read_edge_list_text("3 1\n0 5\n"), PreconditionError);
  EXPECT_THROW(read_edge_list_text("3 1\n1 1\n"), PreconditionError);
  EXPECT_THROW(read_edge_list_text("3 1\nx y\n"), PreconditionError);
}

TEST(WeightedIo, RoundTrip) {
  Rng rng(13);
  const WeightedGraph original =
      with_random_weights(gen::erdos_renyi_connected(15, 0.2, rng), 9, rng);
  const WeightedGraph parsed =
      read_weighted_edge_list_text(write_weighted_edge_list_text(original));
  EXPECT_EQ(parsed.num_nodes(), original.num_nodes());
  EXPECT_EQ(parsed.edges(), original.edges());
}

TEST(WeightedIo, ParsesWithComments) {
  const WeightedGraph g = read_weighted_edge_list_text(
      "# roads\n3 2\n0 1 5\n# middle\n1 2 7\n");
  EXPECT_EQ(g.num_nodes(), 3u);
  ASSERT_EQ(g.num_edges(), 2u);
  EXPECT_EQ(g.edges()[0].weight, 5u);
  EXPECT_EQ(g.edges()[1].weight, 7u);
}

TEST(WeightedIo, MalformedInputs) {
  EXPECT_THROW(read_weighted_edge_list_text("3 1\n0 1\n"), PreconditionError);
  EXPECT_THROW(read_weighted_edge_list_text("3 1\n0 1 0\n"),
               PreconditionError);
  EXPECT_THROW(read_weighted_edge_list_text("3 1\n0 3 2\n"),
               PreconditionError);
}

TEST(GraphIo, EmptyGraph) {
  const Graph g = read_edge_list_text("0 0\n");
  EXPECT_EQ(g.num_nodes(), 0u);
  EXPECT_EQ(write_edge_list_text(g), "0 0\n");
}

TEST(SnapIo, HeaderlessSparseIdsRemapInFirstAppearanceOrder) {
  // SNAP dumps: no header, '#' comments, arbitrary non-contiguous ids.
  const Graph g = read_snap_edge_list_text(
      "# Directed graph (each unordered pair of nodes is saved once)\n"
      "# FromNodeId\tToNodeId\n"
      "101 4\n"
      "4 9000000000\n"
      "101 9000000000\n");
  EXPECT_EQ(g.num_nodes(), 3u);  // 101 -> 0, 4 -> 1, 9000000000 -> 2
  ASSERT_EQ(g.num_edges(), 3u);
  EXPECT_EQ(g.edges()[0], (Edge{0, 1}));
}

TEST(SnapIo, DropsSelfLoopsAndMergesDuplicates) {
  const Graph g = read_snap_edge_list_text("1 2\n2 1\n1 2\n2 2\n2 3\n");
  EXPECT_EQ(g.num_nodes(), 3u);
  EXPECT_EQ(g.num_edges(), 2u);  // {1,2} once, {2,3} once, 2-2 dropped
}

TEST(SnapIo, KeepsLargestConnectedComponent) {
  // Two components: a 4-node path and a 2-node edge.  Only the path
  // survives, renumbered 0..3 in first-appearance order.
  const Graph g = read_snap_edge_list_text(
      "10 11\n"
      "50 60\n"
      "11 12\n"
      "12 13\n");
  EXPECT_EQ(g.num_nodes(), 4u);
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_EQ(g.neighbors(0).size(), 1u);   // node 10: endpoint of the path
  EXPECT_EQ(g.neighbors(1).size(), 2u);   // node 11: interior
}

TEST(SnapIo, KeepAllComponentsRetainsIsolatedIslands) {
  // Same two-component input as above; with keep_all_components the
  // 2-node island survives, densely renumbered in first-appearance
  // order (10->0, 11->1, 50->2, 60->3, 12->4, 13->5).  Streaming
  // callers need this: a VersionedGraph fixes its node universe at
  // creation, and a later edge insert may wire the island in — dropping
  // it at load time would make those ops dangle.
  const Graph g = read_snap_edge_list_text(
      "10 11\n"
      "50 60\n"
      "11 12\n"
      "12 13\n",
      /*keep_all_components=*/true);
  EXPECT_EQ(g.num_nodes(), 6u);
  ASSERT_EQ(g.num_edges(), 4u);
  ASSERT_EQ(g.neighbors(2).size(), 1u);  // node 50: island endpoint, kept
  EXPECT_EQ(g.neighbors(2)[0], 3u);      // ...still wired to node 60
  EXPECT_EQ(g.neighbors(4).size(), 2u);  // node 12: interior of the path
}

TEST(SnapIo, RoundTripsThroughCanonicalFormat) {
  Rng rng(17);
  const Graph original = gen::erdos_renyi_sparse(200, 4.0, rng);
  std::string snap_text;
  for (const auto& e : original.edges()) {
    snap_text += std::to_string(e.u * 7 + 3) + " " +
                 std::to_string(e.v * 7 + 3) + "\n";
  }
  const Graph parsed = read_snap_edge_list_text(snap_text);
  // Connected input, injective id transform: same size; first-appearance
  // renumbering need not match node ids, so compare degree multisets.
  EXPECT_EQ(parsed.num_nodes(), original.num_nodes());
  EXPECT_EQ(parsed.num_edges(), original.num_edges());
  std::vector<std::size_t> da, db;
  for (NodeId v = 0; v < original.num_nodes(); ++v) {
    da.push_back(original.neighbors(v).size());
    db.push_back(parsed.neighbors(v).size());
  }
  std::sort(da.begin(), da.end());
  std::sort(db.begin(), db.end());
  EXPECT_EQ(da, db);
}

TEST(SnapIo, MalformedInputs) {
  EXPECT_THROW(read_snap_edge_list_text(""), PreconditionError);
  EXPECT_THROW(read_snap_edge_list_text("# only comments\n"),
               PreconditionError);
  EXPECT_THROW(read_snap_edge_list_text("1 x\n"), PreconditionError);
  EXPECT_THROW(read_snap_edge_list_text("1 1\n"), PreconditionError);
}

TEST(DirectedIo, PreservesOrientationAndRoundTrips) {
  // read_edge_list normalizes u < v; the directed reader must NOT.
  const Digraph g = read_directed_edge_list_text("3 3\n2 0\n0 1\n1 0\n");
  EXPECT_EQ(g.num_nodes(), 3u);
  EXPECT_EQ(g.num_arcs(), 3u);
  EXPECT_TRUE(g.has_arc(2, 0));
  EXPECT_FALSE(g.has_arc(0, 2));
  EXPECT_TRUE(g.has_arc(0, 1));
  EXPECT_TRUE(g.has_arc(1, 0));  // antiparallel pair survives

  const std::string canonical = write_directed_edge_list_text(g);
  const Digraph again = read_directed_edge_list_text(canonical);
  EXPECT_EQ(again.arcs(), g.arcs());
  EXPECT_EQ(write_directed_edge_list_text(again), canonical);
}

TEST(DirectedIo, GeneratedDigraphSurvivesRoundTrip) {
  Rng rng(17);
  const Digraph g = gen::directed_erdos_renyi(40, 0.1, rng);
  const Digraph again =
      read_directed_edge_list_text(write_directed_edge_list_text(g));
  EXPECT_EQ(again.num_nodes(), g.num_nodes());
  EXPECT_EQ(again.arcs(), g.arcs());
}

TEST(DirectedIo, MalformedInputs) {
  EXPECT_THROW(read_directed_edge_list_text("2 1\n0 0\n"), PreconditionError);
  EXPECT_THROW(read_directed_edge_list_text("2 1\n0 5\n"), PreconditionError);
  EXPECT_THROW(read_directed_edge_list_text("2 2\n0 1\n"), PreconditionError);
}

TEST(SnapDirectedIo, RemapsIdsAndKeepsOrientation) {
  // Sparse ids densely remapped in first-appearance order (700 -> 0,
  // 13 -> 1, 42 -> 2), arcs keep their direction.
  const Digraph g =
      read_snap_directed_edge_list_text("# comment\n700 13\n13 42\n42 700\n");
  EXPECT_EQ(g.num_nodes(), 3u);
  EXPECT_TRUE(g.has_arc(0, 1));
  EXPECT_TRUE(g.has_arc(1, 2));
  EXPECT_TRUE(g.has_arc(2, 0));
  EXPECT_FALSE(g.has_arc(1, 0));
}

TEST(SnapDirectedIo, RestrictsToLargestWeaklyConnectedComponent) {
  // Two weak components: {0,1,2} (as a directed path) and {8,9}.  The
  // default mode keeps the larger one even though it is not strongly
  // connected — weak connectivity is the directed backend's bar.
  const Digraph g =
      read_snap_directed_edge_list_text("0 1\n1 2\n8 9\n");
  EXPECT_EQ(g.num_nodes(), 3u);
  EXPECT_EQ(g.num_arcs(), 2u);
  EXPECT_TRUE(is_weakly_connected(g));

  const Digraph all =
      read_snap_directed_edge_list_text("0 1\n1 2\n8 9\n", true);
  EXPECT_EQ(all.num_nodes(), 5u);
  EXPECT_EQ(all.num_arcs(), 3u);
  EXPECT_FALSE(is_weakly_connected(all));
}

TEST(SnapDirectedIo, DropsSelfLoopsAndMergesDuplicateArcs) {
  const Digraph g = read_snap_directed_edge_list_text("1 1\n1 2\n1 2\n2 1\n");
  EXPECT_EQ(g.num_nodes(), 2u);
  EXPECT_EQ(g.num_arcs(), 2u);  // 1->2 deduped, antiparallel 2->1 kept
}

}  // namespace
}  // namespace congestbc
