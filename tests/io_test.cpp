#include "graph/io.hpp"

#include <gtest/gtest.h>

#include "common/assert.hpp"
#include "common/rng.hpp"
#include "graph/generators.hpp"
#include "graph/weighted.hpp"

namespace congestbc {
namespace {

TEST(GraphIo, ParsesSimpleEdgeList) {
  const Graph g = read_edge_list_text("3 2\n0 1\n1 2\n");
  EXPECT_EQ(g.num_nodes(), 3u);
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 2));
  EXPECT_FALSE(g.has_edge(0, 2));
}

TEST(GraphIo, SkipsCommentsAndBlankLines) {
  const Graph g = read_edge_list_text(
      "# a comment\n\n  # another\n4 2\n# mid comment\n0 3\n\n1 2\n");
  EXPECT_EQ(g.num_nodes(), 4u);
  EXPECT_EQ(g.num_edges(), 2u);
}

TEST(GraphIo, RoundTrip) {
  Rng rng(11);
  const Graph original = gen::erdos_renyi_connected(25, 0.15, rng);
  const Graph parsed = read_edge_list_text(write_edge_list_text(original));
  EXPECT_EQ(parsed.num_nodes(), original.num_nodes());
  EXPECT_EQ(parsed.edges(), original.edges());
}

TEST(GraphIo, MalformedInputs) {
  EXPECT_THROW(read_edge_list_text(""), PreconditionError);
  EXPECT_THROW(read_edge_list_text("abc\n"), PreconditionError);
  EXPECT_THROW(read_edge_list_text("3 2\n0 1\n"), PreconditionError);
  EXPECT_THROW(read_edge_list_text("3 1\n0 5\n"), PreconditionError);
  EXPECT_THROW(read_edge_list_text("3 1\n1 1\n"), PreconditionError);
  EXPECT_THROW(read_edge_list_text("3 1\nx y\n"), PreconditionError);
}

TEST(WeightedIo, RoundTrip) {
  Rng rng(13);
  const WeightedGraph original =
      with_random_weights(gen::erdos_renyi_connected(15, 0.2, rng), 9, rng);
  const WeightedGraph parsed =
      read_weighted_edge_list_text(write_weighted_edge_list_text(original));
  EXPECT_EQ(parsed.num_nodes(), original.num_nodes());
  EXPECT_EQ(parsed.edges(), original.edges());
}

TEST(WeightedIo, ParsesWithComments) {
  const WeightedGraph g = read_weighted_edge_list_text(
      "# roads\n3 2\n0 1 5\n# middle\n1 2 7\n");
  EXPECT_EQ(g.num_nodes(), 3u);
  ASSERT_EQ(g.num_edges(), 2u);
  EXPECT_EQ(g.edges()[0].weight, 5u);
  EXPECT_EQ(g.edges()[1].weight, 7u);
}

TEST(WeightedIo, MalformedInputs) {
  EXPECT_THROW(read_weighted_edge_list_text("3 1\n0 1\n"), PreconditionError);
  EXPECT_THROW(read_weighted_edge_list_text("3 1\n0 1 0\n"),
               PreconditionError);
  EXPECT_THROW(read_weighted_edge_list_text("3 1\n0 3 2\n"),
               PreconditionError);
}

TEST(GraphIo, EmptyGraph) {
  const Graph g = read_edge_list_text("0 0\n");
  EXPECT_EQ(g.num_nodes(), 0u);
  EXPECT_EQ(write_edge_list_text(g), "0 0\n");
}

}  // namespace
}  // namespace congestbc
