// The weighted-graph extension (paper Section X future work, realized via
// the virtual-node subdivision): construction, Dijkstra reference,
// weighted Brandes, and the distributed reduction end-to-end.
#include <gtest/gtest.h>

#include <cmath>

#include "algo/weighted_bc.hpp"
#include "central/centralities.hpp"
#include "central/weighted_brandes.hpp"
#include "common/assert.hpp"
#include "core/validation.hpp"
#include "graph/generators.hpp"
#include "graph/properties.hpp"
#include "graph/weighted.hpp"

namespace congestbc {
namespace {

WeightedGraph triangle_with_shortcut() {
  // 0 -5- 1, 1 -5- 2, 0 -3- 3, 3 -3- 2: the 0-3-2 route (6) beats 0-1-2
  // (10); node 3 is the broker.
  return WeightedGraph(4, {{0, 1, 5}, {1, 2, 5}, {0, 3, 3}, {2, 3, 3}});
}

TEST(WeightedGraph, NormalizesAndCollapsesDuplicates) {
  const WeightedGraph g(3, {{2, 0, 7}, {0, 2, 4}, {0, 1, 1}});
  EXPECT_EQ(g.num_edges(), 2u);
  // Duplicate (0,2) collapses to the lighter weight 4.
  for (const auto& e : g.edges()) {
    if (e.u == 0 && e.v == 2) {
      EXPECT_EQ(e.weight, 4u);
    }
  }
}

TEST(WeightedGraph, RejectsBadEdges) {
  EXPECT_THROW(WeightedGraph(3, {{1, 1, 2}}), PreconditionError);
  EXPECT_THROW(WeightedGraph(3, {{0, 1, 0}}), PreconditionError);
  EXPECT_THROW(WeightedGraph(2, {{0, 2, 1}}), PreconditionError);
}

TEST(WeightedGraph, TotalWeight) {
  EXPECT_EQ(triangle_with_shortcut().total_weight(), 16u);
}

TEST(Subdivision, NodeAndEdgeCounts) {
  const auto sub = subdivide(triangle_with_shortcut());
  // N' = 4 real + sum(w-1) = 4 + (4+4+2+2) = 16; edges = total weight.
  EXPECT_EQ(sub.graph.num_nodes(), 16u);
  EXPECT_EQ(sub.graph.num_edges(), 16u);
  EXPECT_EQ(sub.num_real, 4u);
  for (NodeId v = 0; v < sub.graph.num_nodes(); ++v) {
    EXPECT_EQ(sub.is_real[v], v < 4u);
    if (v >= 4) {
      EXPECT_EQ(sub.graph.degree(v), 2u);  // virtual nodes are path interior
    }
  }
}

TEST(Subdivision, PreservesRealDistances) {
  Rng rng(3);
  const WeightedGraph g =
      with_random_weights(gen::erdos_renyi_connected(20, 0.2, rng), 6, rng);
  const auto sub = subdivide(g);
  for (NodeId s = 0; s < g.num_nodes(); ++s) {
    const auto weighted = dijkstra_distances(g, s);
    const auto unit = bfs_distances(sub.graph, s);
    for (NodeId t = 0; t < g.num_nodes(); ++t) {
      EXPECT_EQ(weighted[t], unit[t]) << "s=" << s << " t=" << t;
    }
  }
}

TEST(Subdivision, UnitWeightsAreIdentity) {
  Rng rng(4);
  const Graph base = gen::barabasi_albert(16, 2, rng);
  const WeightedGraph g = with_random_weights(base, 1, rng);
  const auto sub = subdivide(g);
  EXPECT_EQ(sub.graph.num_nodes(), base.num_nodes());
  EXPECT_EQ(sub.graph.num_edges(), base.num_edges());
}

TEST(Dijkstra, HandPickedDistances) {
  const auto dist = dijkstra_distances(triangle_with_shortcut(), 0);
  EXPECT_EQ(dist[0], 0u);
  EXPECT_EQ(dist[1], 5u);
  EXPECT_EQ(dist[2], 6u);  // via node 3
  EXPECT_EQ(dist[3], 3u);
}

TEST(Dijkstra, UnreachableMarked) {
  const WeightedGraph g(3, {{0, 1, 2}});
  const auto dist = dijkstra_distances(g, 0);
  EXPECT_EQ(dist[2], UINT64_MAX);
}

TEST(WeightedBrandes, BrokerNodeDominates) {
  const auto bc = weighted_brandes_bc(triangle_with_shortcut());
  // Node 3 lies on 0-2 (unique shortest), 1-3? d(1,3)=8 via 0 or via 2:
  // both length 8 -> through 0 and through 2.
  EXPECT_GT(bc[3], bc[0]);
  EXPECT_GT(bc[3], bc[1]);
}

TEST(WeightedBrandes, UnitWeightsMatchUnweightedBrandes) {
  Rng rng(5);
  const Graph base = gen::erdos_renyi_connected(18, 0.2, rng);
  const WeightedGraph g = with_random_weights(base, 1, rng);
  const auto weighted = weighted_brandes_bc(g);
  const auto unweighted = brandes_bc(base);
  const auto stats = compare_vectors(weighted, unweighted, 1e-9);
  EXPECT_LT(stats.max_rel_error, 1e-9);
}

TEST(WeightedBrandes, MatchesSubdividedRestrictedNaive) {
  // Definition-level cross-check: weighted BC of a real node equals the
  // pair-dependency sum over real pairs in the subdivided graph.
  Rng rng(6);
  const WeightedGraph g =
      with_random_weights(gen::erdos_renyi_connected(12, 0.25, rng), 4, rng);
  const auto sub = subdivide(g);
  const NodeId n_all = sub.graph.num_nodes();
  // all-pairs BFS + sigma on the subdivided graph
  std::vector<std::vector<std::uint32_t>> dist(n_all);
  std::vector<std::vector<long double>> sigma(n_all);
  for (NodeId s = 0; s < n_all; ++s) {
    dist[s] = bfs_distances(sub.graph, s);
    sigma[s].assign(n_all, 0.0L);
    sigma[s][s] = 1.0L;
    std::vector<NodeId> order;
    order.reserve(n_all);
    for (NodeId v = 0; v < n_all; ++v) {
      order.push_back(v);
    }
    std::sort(order.begin(), order.end(), [&](NodeId a, NodeId b) {
      return dist[s][a] < dist[s][b];
    });
    for (const NodeId v : order) {
      for (const NodeId w : sub.graph.neighbors(v)) {
        if (dist[s][w] == dist[s][v] + 1) {
          sigma[s][w] += sigma[s][v];
        }
      }
    }
  }
  const auto reference = weighted_brandes_bc(g);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    double total = 0.0;
    for (NodeId s = 0; s < g.num_nodes(); ++s) {
      for (NodeId t = 0; t < g.num_nodes(); ++t) {
        if (s == t || v == s || v == t) {
          continue;
        }
        if (dist[s][v] + dist[v][t] == dist[s][t]) {
          total += static_cast<double>(sigma[s][v] * sigma[v][t] / sigma[s][t]);
        }
      }
    }
    EXPECT_NEAR(total / 2, reference[v], 1e-6) << "node " << v;
  }
}

TEST(DistributedWeighted, MatchesWeightedBrandes) {
  Rng rng(7);
  const WeightedGraph g =
      with_random_weights(gen::erdos_renyi_connected(16, 0.2, rng), 5, rng);
  const auto result = run_distributed_weighted_bc(g);
  const auto reference = weighted_brandes_bc(g);
  const auto stats = compare_vectors(result.betweenness, reference, 1e-6);
  EXPECT_LT(stats.max_rel_error, 1e-6);
}

TEST(DistributedWeighted, ClosenessAndDiameter) {
  Rng rng(8);
  const WeightedGraph g =
      with_random_weights(gen::watts_strogatz(20, 2, 0.2, rng), 4, rng);
  const auto result = run_distributed_weighted_bc(g);
  const auto cc = weighted_closeness(g);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_NEAR(result.closeness[v], cc[v], 1e-12);
  }
  EXPECT_EQ(result.weighted_diameter, weighted_diameter(g));
}

TEST(DistributedWeighted, StressMatchesWeightedReference) {
  Rng rng(21);
  const WeightedGraph g =
      with_random_weights(gen::erdos_renyi_connected(14, 0.25, rng), 4, rng);
  const auto result = run_distributed_weighted_bc(g);
  const auto reference = weighted_stress(g);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_NEAR(static_cast<double>(result.stress[v]),
                static_cast<double>(reference[v]),
                1e-6 * std::max(1.0, static_cast<double>(reference[v])))
        << "node " << v;
  }
}

TEST(WeightedStress, UnitWeightsMatchUnweighted) {
  Rng rng(22);
  const Graph base = gen::erdos_renyi_connected(14, 0.25, rng);
  const WeightedGraph g = with_random_weights(base, 1, rng);
  const auto weighted = weighted_stress(g);
  const auto unweighted = stress_centrality(base);
  for (NodeId v = 0; v < base.num_nodes(); ++v) {
    EXPECT_NEAR(static_cast<double>(weighted[v]),
                static_cast<double>(unweighted[v]), 1e-9);
  }
}

TEST(DistributedWeighted, HandPickedBroker) {
  const auto result = run_distributed_weighted_bc(triangle_with_shortcut());
  const auto reference = weighted_brandes_bc(triangle_with_shortcut());
  for (NodeId v = 0; v < 4; ++v) {
    EXPECT_NEAR(result.betweenness[v], reference[v], 1e-9);
  }
}

TEST(DistributedWeighted, RoundsScaleWithTotalWeight) {
  Rng rng(9);
  const Graph base = gen::cycle(12);
  const WeightedGraph light = with_random_weights(base, 1, rng);
  const WeightedGraph heavy = with_random_weights(base, 8, rng);
  const auto light_result = run_distributed_weighted_bc(light);
  const auto heavy_result = run_distributed_weighted_bc(heavy);
  EXPECT_GT(heavy_result.subdivided_nodes, light_result.subdivided_nodes);
  EXPECT_GT(heavy_result.rounds, light_result.rounds);
}

TEST(ScaleWeights, ApproximatesDistances) {
  Rng rng(10);
  const WeightedGraph g =
      with_random_weights(gen::grid(4, 4), 100, rng);
  const WeightedGraph coarse = scale_weights(g, 10.0);
  // Per-edge coarsening error is at most rho/2 from rounding plus rho
  // from the max(1, .) clamp, so a path of h hops restores to within
  // 1.5*rho*h of the exact distance.  Max hops on a 4x4 grid is 6.
  const auto exact = dijkstra_distances(g, 0);
  const auto approx = dijkstra_distances(coarse, 0);
  for (NodeId v = 1; v < g.num_nodes(); ++v) {
    const double restored = 10.0 * static_cast<double>(approx[v]);
    const double abs_err =
        std::abs(restored - static_cast<double>(exact[v]));
    EXPECT_LE(abs_err, 1.5 * 10.0 * 6) << "node " << v;
  }
}

TEST(ScaleWeights, NeverProducesZero) {
  const WeightedGraph g(2, {{0, 1, 3}});
  const auto coarse = scale_weights(g, 100.0);
  EXPECT_EQ(coarse.edges()[0].weight, 1u);
}

}  // namespace
}  // namespace congestbc
