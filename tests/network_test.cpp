#include "congest/network.hpp"

#include <gtest/gtest.h>

#include "common/assert.hpp"
#include "graph/generators.hpp"

namespace congestbc {
namespace {

/// Floods a token: node 0 sends "1" to neighbors in round 0; every node
/// forwards once.  Terminates when everyone has seen the token.
class FloodProgram final : public NodeProgram {
 public:
  explicit FloodProgram(NodeId id) : id_(id) {}

  void on_round(NodeContext& ctx) override {
    if (id_ == 0 && ctx.round() == 0) {
      seen_ = true;
      broadcast(ctx);
      return;
    }
    if (!seen_ && !ctx.inbox().empty()) {
      seen_ = true;
      receive_round_ = ctx.round();
      broadcast(ctx);
    }
  }

  bool done() const override { return seen_; }
  std::uint64_t receive_round() const { return receive_round_; }

 private:
  void broadcast(NodeContext& ctx) {
    BitWriter w;
    w.write(1, 1);
    for (const NodeId nbr : ctx.neighbors()) {
      ctx.send(nbr, w);
    }
  }

  NodeId id_;
  bool seen_ = false;
  std::uint64_t receive_round_ = 0;
};

/// Sends an oversized message in round 0 (budget violation fixture).
class OversizeProgram final : public NodeProgram {
 public:
  void on_round(NodeContext& ctx) override {
    if (ctx.round() == 0) {
      BitWriter w;
      for (int i = 0; i < 20; ++i) {
        w.write(UINT64_MAX, 64);
      }
      for (const NodeId nbr : ctx.neighbors()) {
        ctx.send(nbr, w);
      }
    }
    sent_ = true;
  }
  bool done() const override { return sent_; }

 private:
  bool sent_ = false;
};

/// Never terminates (max_rounds fixture).
class SpinProgram final : public NodeProgram {
 public:
  void on_round(NodeContext&) override {}
  bool done() const override { return false; }
};

/// Sends to a non-neighbor (locality violation fixture).
class IllegalSendProgram final : public NodeProgram {
 public:
  explicit IllegalSendProgram(NodeId id) : id_(id) {}
  void on_round(NodeContext& ctx) override {
    if (id_ == 0 && ctx.round() == 0) {
      BitWriter w;
      w.write(1, 1);
      ctx.send(ctx.num_nodes() - 1, w);  // path graph: not a neighbor
    }
    done_ = true;
  }
  bool done() const override { return done_; }

 private:
  NodeId id_;
  bool done_ = false;
};

TEST(Network, FloodTakesEccentricityRounds) {
  const Graph g = gen::path(6);
  Network net(g, NetworkConfig{64, 1000, true});
  std::vector<std::unique_ptr<NodeProgram>> programs;
  std::vector<FloodProgram*> views;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    auto p = std::make_unique<FloodProgram>(v);
    views.push_back(p.get());
    programs.push_back(std::move(p));
  }
  const auto metrics = net.run(programs);
  // Node k receives in round k (sent in round k-1).
  for (NodeId v = 1; v < g.num_nodes(); ++v) {
    EXPECT_EQ(views[v]->receive_round(), v);
  }
  // 5 propagation rounds + the final delivery round + the quiescent round.
  EXPECT_EQ(metrics.rounds, 7u);
}

TEST(Network, CountsMessagesAndBits) {
  const Graph g = gen::path(3);
  Network net(g, NetworkConfig{64, 1000, true});
  const auto metrics = net.run(
      [](NodeId id) { return std::make_unique<FloodProgram>(id); });
  // Round 0: node 0 -> node 1 (1 msg).  Round 1: node 1 -> {0, 2}.
  // Round 2: node 2 -> 1.  All 1-bit payloads.
  EXPECT_EQ(metrics.total_physical_messages, 4u);
  EXPECT_EQ(metrics.total_logical_messages, 4u);
  EXPECT_EQ(metrics.total_bits, 4u);
  EXPECT_EQ(metrics.max_bits_on_edge_round, 1u);
  EXPECT_EQ(metrics.max_logical_on_edge_round, 1u);
}

TEST(Network, PerRoundStatsRecorded) {
  const Graph g = gen::star(5);
  Network net(g, NetworkConfig{64, 1000, true});
  const auto metrics = net.run(
      [](NodeId id) { return std::make_unique<FloodProgram>(id); });
  ASSERT_GE(metrics.per_round.size(), 2u);
  EXPECT_EQ(metrics.per_round[0].physical_messages, 4u);  // center floods
  EXPECT_EQ(metrics.per_round[1].physical_messages, 4u);  // leaves reply
}

TEST(Network, BundlesLogicalMessages) {
  // A program that sends three logical messages to the same neighbor.
  class Bundler final : public NodeProgram {
   public:
    explicit Bundler(NodeId id) : id_(id) {}
    void on_round(NodeContext& ctx) override {
      if (id_ == 0 && ctx.round() == 0) {
        BitWriter w;
        w.write(5, 3);
        ctx.send(1, w);
        ctx.send(1, w);
        ctx.send(1, w);
      }
      if (id_ == 1 && !ctx.inbox().empty()) {
        ASSERT_EQ(ctx.inbox().size(), 1u);  // one physical bundle
        auto reader = ctx.inbox()[0].reader();
        EXPECT_EQ(reader.read(3), 5u);
        EXPECT_EQ(reader.read(3), 5u);
        EXPECT_EQ(reader.read(3), 5u);
        EXPECT_EQ(reader.remaining(), 0u);
        verified_ = true;
      }
      if (ctx.round() > 0) {
        finished_ = true;
      }
    }
    bool done() const override { return finished_; }
    bool verified() const { return verified_; }

   private:
    NodeId id_;
    bool finished_ = false;
    bool verified_ = false;
  };

  const Graph g = gen::path(2);
  Network net(g, NetworkConfig{64, 100, true});
  std::vector<std::unique_ptr<NodeProgram>> programs;
  programs.push_back(std::make_unique<Bundler>(0));
  programs.push_back(std::make_unique<Bundler>(1));
  auto* receiver = static_cast<Bundler*>(programs[1].get());
  const auto metrics = net.run(programs);
  EXPECT_TRUE(receiver->verified());
  EXPECT_EQ(metrics.total_physical_messages, 1u);
  EXPECT_EQ(metrics.total_logical_messages, 3u);
  EXPECT_EQ(metrics.max_logical_on_edge_round, 3u);
}

TEST(Network, EnforcesBitBudget) {
  const Graph g = gen::path(2);
  Network net(g, NetworkConfig{64, 100, true});
  // The typed error still derives from InvariantError for older catch
  // sites.
  EXPECT_THROW(
      net.run([](NodeId) { return std::make_unique<OversizeProgram>(); }),
      CongestViolationError);
  Network net2(g, NetworkConfig{64, 100, true});
  EXPECT_THROW(
      net2.run([](NodeId) { return std::make_unique<OversizeProgram>(); }),
      InvariantError);
}

TEST(Network, ZeroBudgetDisablesCheck) {
  const Graph g = gen::path(2);
  Network net(g, NetworkConfig{0, 100, true});
  const auto metrics = net.run(
      [](NodeId) { return std::make_unique<OversizeProgram>(); });
  EXPECT_EQ(metrics.max_bits_on_edge_round, 20u * 64u);
}

TEST(Network, MaxRoundsGuard) {
  const Graph g = gen::path(2);
  Network net(g, NetworkConfig{64, 10, true});
  EXPECT_THROW(net.run([](NodeId) { return std::make_unique<SpinProgram>(); }),
               RoundLimitError);
  Network net2(g, NetworkConfig{64, 10, true});
  EXPECT_THROW(net2.run([](NodeId) { return std::make_unique<SpinProgram>(); }),
               InvariantError);
}

TEST(Network, StallWatchdogFiresOnDeadlockedPrograms) {
  // SpinProgram never consumes, never sends, never finishes: with a stall
  // window the network diagnoses the deadlock instead of spinning to
  // max_rounds.
  const Graph g = gen::path(2);
  NetworkConfig config{64, 1'000'000, true};
  config.stall_window = 8;
  Network net(g, config);
  try {
    net.run([](NodeId) { return std::make_unique<SpinProgram>(); });
    FAIL() << "expected StallError";
  } catch (const StallError&) {
    EXPECT_LT(net.last_metrics().rounds, 16u);
  }
}

TEST(Network, StallWindowZeroDisablesWatchdog) {
  const Graph g = gen::path(2);
  NetworkConfig config{64, 50, true};
  EXPECT_EQ(config.stall_window, 0u);  // default off
  Network net(g, config);
  EXPECT_THROW(net.run([](NodeId) { return std::make_unique<SpinProgram>(); }),
               RoundLimitError);
}

TEST(Network, FaultFreeRunReportsZeroFaultCounters) {
  const Graph g = gen::path(3);
  Network net(g, NetworkConfig{64, 1000, true});
  const auto metrics = net.run(
      [](NodeId id) { return std::make_unique<FloodProgram>(id); });
  EXPECT_EQ(metrics.dropped_messages, 0u);
  EXPECT_EQ(metrics.duplicated_messages, 0u);
  EXPECT_EQ(metrics.delayed_messages, 0u);
  EXPECT_EQ(metrics.crashed_node_rounds, 0u);
}

TEST(Network, DropEverythingPlanSuppressesAllDeliveries) {
  const Graph g = gen::path(3);
  const FaultPlan plan = FaultPlan::drop_everything();
  NetworkConfig config{64, 1000, true};
  config.faults = &plan;
  config.stall_window = 4;
  Network net(g, config);
  EXPECT_THROW(
      net.run([](NodeId id) { return std::make_unique<FloodProgram>(id); }),
      StallError);
  const auto& metrics = net.last_metrics();
  // Node 0 flooded (and keeps nothing pending); nothing ever arrived.
  EXPECT_GT(metrics.dropped_messages, 0u);
  EXPECT_EQ(metrics.dropped_messages, metrics.total_physical_messages);
}

TEST(RunMetrics, MaxLogicalOnEdgeInRejectsUnrecordedWindow) {
  RunMetrics metrics;
  metrics.rounds = 5;  // but record_per_round was off: per_round empty
  EXPECT_THROW(metrics.max_logical_on_edge_in(2, 5), PreconditionError);
  metrics.per_round.resize(5);
  metrics.per_round[3].max_logical_on_edge = 7;
  EXPECT_THROW(metrics.max_logical_on_edge_in(4, 2), PreconditionError);
  EXPECT_EQ(metrics.max_logical_on_edge_in(0, 5), 7u);
  EXPECT_EQ(metrics.max_logical_on_edge_in(0, 99), 7u);  // clamped end
}

TEST(Network, RejectsNonNeighborSend) {
  const Graph g = gen::path(4);
  Network net(g, NetworkConfig{64, 100, true});
  EXPECT_THROW(net.run([](NodeId id) {
    return std::make_unique<IllegalSendProgram>(id);
  }),
               PreconditionError);
}

TEST(Network, CutBitsAccounting) {
  const Graph g = gen::path(4);  // edges 0-1, 1-2, 2-3
  Network net(g, NetworkConfig{64, 100, true});
  net.register_cut({Edge{1, 2}});
  const auto metrics = net.run(
      [](NodeId id) { return std::make_unique<FloodProgram>(id); });
  // Flood crosses 1->2 once and 2->1 once (node 2's broadcast).
  EXPECT_EQ(metrics.cut_bits, 2u);
}

TEST(Network, RegisterCutRejectsNonEdge) {
  const Graph g = gen::path(4);
  Network net(g, NetworkConfig{64, 100, true});
  EXPECT_THROW(net.register_cut({Edge{0, 3}}), PreconditionError);
}

TEST(Network, ImmediateTerminationWhenAllDone) {
  class Idle final : public NodeProgram {
   public:
    void on_round(NodeContext&) override {}
    bool done() const override { return true; }
  };
  const Graph g = gen::path(3);
  Network net(g, NetworkConfig{64, 100, true});
  const auto metrics =
      net.run([](NodeId) { return std::make_unique<Idle>(); });
  EXPECT_EQ(metrics.rounds, 0u);
  EXPECT_EQ(metrics.total_physical_messages, 0u);
}

}  // namespace
}  // namespace congestbc
