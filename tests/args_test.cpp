#include "common/args.hpp"

#include <gtest/gtest.h>

#include "common/assert.hpp"

namespace congestbc {
namespace {

Args parse(std::initializer_list<const char*> argv,
           std::vector<std::string> value_flags = {}) {
  std::vector<const char*> raw(argv);
  return Args::parse(static_cast<int>(raw.size()), raw.data(), value_flags);
}

TEST(Args, ProgramAndPositional) {
  const auto args = parse({"prog", "input.txt", "more"});
  EXPECT_EQ(args.program(), "prog");
  EXPECT_EQ(args.positional(),
            (std::vector<std::string>{"input.txt", "more"}));
}

TEST(Args, BooleanFlags) {
  const auto args = parse({"prog", "--verbose", "--all"});
  EXPECT_TRUE(args.has("verbose"));
  EXPECT_TRUE(args.has("all"));
  EXPECT_FALSE(args.has("quiet"));
}

TEST(Args, ValueFlagsSpaceSeparated) {
  const auto args = parse({"prog", "--top", "5", "file"}, {"top"});
  EXPECT_EQ(args.get_or("top", ""), "5");
  EXPECT_EQ(args.get_int_or("top", 0), 5);
  EXPECT_EQ(args.positional(), std::vector<std::string>{"file"});
}

TEST(Args, EqualsSyntaxNeedsNoDeclaration) {
  const auto args = parse({"prog", "--n=42", "--rho=2.5"});
  EXPECT_EQ(args.get_int_or("n", 0), 42);
  EXPECT_DOUBLE_EQ(args.get_double_or("rho", 0.0), 2.5);
}

TEST(Args, DefaultsWhenAbsent) {
  const auto args = parse({"prog"});
  EXPECT_EQ(args.get_or("x", "fallback"), "fallback");
  EXPECT_EQ(args.get_int_or("n", 7), 7);
  EXPECT_DOUBLE_EQ(args.get_double_or("p", 0.5), 0.5);
  EXPECT_FALSE(args.get("x").has_value());
}

TEST(Args, EmptyEqualsValue) {
  const auto args = parse({"prog", "--name="});
  EXPECT_TRUE(args.has("name"));
  EXPECT_EQ(args.get_or("name", "x"), "");
}

TEST(Args, MissingValueThrows) {
  EXPECT_THROW(parse({"prog", "--top"}, {"top"}), PreconditionError);
}

TEST(Args, MalformedNumbersThrow) {
  const auto args = parse({"prog", "--n=abc"});
  EXPECT_THROW(args.get_int_or("n", 0), PreconditionError);
  EXPECT_THROW(args.get_double_or("n", 0.0), PreconditionError);
}

}  // namespace
}  // namespace congestbc
