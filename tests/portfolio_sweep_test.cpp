// Portfolio differential sweep: every backend x every engine mode x a
// cross-family graph matrix, each cell validated against the
// centralized checker appropriate to its accuracy contract.
//
// This extends the 75-case property sweep (property_sweep_test.cpp) to
// the portfolio plane:
//   * paper_exact — vs centralized Brandes within the Theorem-1
//     soft-float envelope, AND bit-identical across the legacy engine,
//     the modern engine at 1 thread, and the modern engine at full
//     parallelism (the portfolio refactor must preserve the engine
//     bit-identity contract);
//   * cfp — vs Brandes to double-accumulation tolerance (1e-9); both
//     sides run the same recursion in doubles, so there is no envelope
//     to hide behind;
//   * sampled — per-seed deterministic AND observed max error inside
//     sampled_error_bound(n, budget, delta=0.05) against Brandes, for
//     every cell (engine modes must not perturb the estimate bitwise);
//   * directed — vs the centralized directed Brandes checker to 1e-9
//     on directed ER and directed BA families across sizes and seeds.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <string>
#include <tuple>
#include <vector>

#include "algo/bc_pipeline.hpp"
#include "central/brandes.hpp"
#include "central/directed_brandes.hpp"
#include "common/rng.hpp"
#include "core/validation.hpp"
#include "fpa/soft_float.hpp"
#include "graph/digraph.hpp"
#include "graph/generators.hpp"
#include "graph/graph.hpp"
#include "graph/properties.hpp"
#include "portfolio/backend.hpp"

namespace congestbc {
namespace {

using portfolio::BackendRequest;
using portfolio::run_portfolio;

// ---------------------------------------------------------------------
// Families (connected — cfp's standing precondition)

Graph make_family(int family, NodeId n) {
  Rng rng(0xf011'0ull + n);
  switch (family) {
    case 0:
      return gen::erdos_renyi_connected(n, std::min(0.9, 6.0 / n), rng);
    case 1:
      return gen::barabasi_albert(n, 2, rng);
    case 2:
      return gen::grid(std::max<NodeId>(2, n / 8), 8);
    default:
      return gen::lollipop(std::max<NodeId>(3, n / 2),
                           std::max<NodeId>(1, n - n / 2));
  }
}

const char* family_name(int family) {
  switch (family) {
    case 0:
      return "er";
    case 1:
      return "ba";
    case 2:
      return "grid";
    default:
      return "lollipop";
  }
}

double theorem1_envelope(NodeId n, std::uint32_t diameter_bound) {
  const unsigned mantissa = SoftFloatFormat::for_graph(n).mantissa_bits;
  const double eta = std::ldexp(1.0, -static_cast<int>(mantissa) + 1);
  return std::pow(1.0 + eta, 2.0 * diameter_bound + 4.0) - 1.0;
}

void expect_bit_equal(const std::vector<double>& got,
                      const std::vector<double>& want, const char* what) {
  ASSERT_EQ(got.size(), want.size()) << what;
  for (std::size_t i = 0; i < want.size(); ++i) {
    std::uint64_t got_bits = 0;
    std::uint64_t want_bits = 0;
    std::memcpy(&got_bits, &got[i], sizeof got_bits);
    std::memcpy(&want_bits, &want[i], sizeof want_bits);
    EXPECT_EQ(got_bits, want_bits) << what << "[" << i << "]";
  }
}

// Engine modes of the simulator backends.  cfp/directed have their own
// round-accounted cost model (capabilities().simulator_engines = false),
// so the mode axis does not apply to them.
struct Mode {
  const char* name;
  bool legacy;
  unsigned threads;
};

constexpr Mode kModes[] = {
    {"engine_t1", false, 1},
    {"engine_tall", false, 0},
    {"legacy", true, 1},
};

struct BackendCase {
  const char* name;
  BackendId id;
};

constexpr BackendCase kBackends[] = {
    {"paper_exact", BackendId::kPaperExact},
    {"cfp", BackendId::kCfp},
    {"sampled", BackendId::kSampled},
};

// ---------------------------------------------------------------------
// Undirected matrix

class PortfolioSweep
    : public ::testing::TestWithParam<std::tuple<int, NodeId, int>> {};

TEST_P(PortfolioSweep, BackendMatchesItsChecker) {
  const auto [family, size, backend_index] = GetParam();
  const BackendCase& backend = kBackends[backend_index];
  const Graph g = make_family(family, size);
  const NodeId n = g.num_nodes();
  SCOPED_TRACE(std::string(family_name(family)) + " N=" + std::to_string(n) +
               " backend=" + backend.name);

  const auto reference = brandes_bc(g);

  const auto run_in_mode = [&](const Mode& mode) {
    BackendRequest request;
    request.graph = &g;
    request.options.backend = backend.id;
    request.options.legacy_engine = mode.legacy;
    request.options.threads = mode.threads;
    if (backend.id == BackendId::kSampled) {
      request.options.approx_seed = 1 + size;
    }
    RunOutcome outcome = run_portfolio(request);
    EXPECT_EQ(outcome.status, RunStatus::kComplete) << outcome.detail;
    return outcome;
  };

  switch (backend.id) {
    case BackendId::kCfp: {
      // Engine knobs are inert for the round-model backend — one run.
      const RunOutcome outcome = run_in_mode(kModes[0]);
      const ErrorStats stats =
          compare_vectors(outcome.result.betweenness, reference, 1e-9);
      EXPECT_LT(stats.max_rel_error, 1e-9)
          << "worst node " << stats.worst_index;
      EXPECT_EQ(outcome.result.diameter, diameter(g));
      break;
    }
    case BackendId::kPaperExact: {
      const RunOutcome base = run_in_mode(kModes[0]);
      const ErrorStats stats =
          compare_vectors(base.result.betweenness, reference, 1e-6);
      EXPECT_LT(stats.max_rel_error, theorem1_envelope(n, diameter(g)) + 1e-9)
          << "worst node " << stats.worst_index;
      for (std::size_t m = 1; m < std::size(kModes); ++m) {
        SCOPED_TRACE(kModes[m].name);
        const RunOutcome other = run_in_mode(kModes[m]);
        expect_bit_equal(other.result.betweenness, base.result.betweenness,
                         "cross-engine betweenness");
        EXPECT_EQ(other.result.rounds, base.result.rounds);
      }
      break;
    }
    default: {  // sampled
      const std::uint32_t budget = portfolio::resolve_sample_budget(n, 0);
      const double bound = portfolio::sampled_error_bound(n, budget, 0.05);
      const RunOutcome base = run_in_mode(kModes[0]);
      const ErrorStats stats =
          compare_vectors(base.result.betweenness, reference, 1e-6);
      EXPECT_LE(stats.max_abs_error, bound)
          << "worst node " << stats.worst_index;
      // The estimate is a function of (graph, budget, seed) alone; the
      // engine axis must not move a bit of it.
      for (std::size_t m = 1; m < std::size(kModes); ++m) {
        SCOPED_TRACE(kModes[m].name);
        const RunOutcome other = run_in_mode(kModes[m]);
        expect_bit_equal(other.result.betweenness, base.result.betweenness,
                         "cross-engine sampled betweenness");
      }
      break;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    FamilySizeBackend, PortfolioSweep,
    ::testing::Combine(::testing::Range(0, 4),
                       ::testing::Values<NodeId>(8, 24, 48, 96),
                       ::testing::Range(0, 3)),
    [](const ::testing::TestParamInfo<std::tuple<int, NodeId, int>>&
           param_info) {
      return std::string(family_name(std::get<0>(param_info.param))) + "_" +
             std::to_string(std::get<1>(param_info.param)) + "_" +
             kBackends[std::get<2>(param_info.param)].name;
    });

// ---------------------------------------------------------------------
// Directed matrix

Digraph make_directed_family(int family, NodeId n, std::uint64_t seed) {
  Rng rng(0xd1a0'00ull + seed * 1000 + n);
  if (family == 0) {
    return gen::directed_erdos_renyi(n, std::min(0.9, 4.0 / n), rng);
  }
  return gen::directed_barabasi_albert(n, 2, rng);
}

class DirectedPortfolioSweep
    : public ::testing::TestWithParam<std::tuple<int, NodeId, int>> {};

TEST_P(DirectedPortfolioSweep, MatchesDirectedBrandes) {
  const auto [family, size, seed] = GetParam();
  const Digraph g =
      make_directed_family(family, size, static_cast<std::uint64_t>(seed));
  SCOPED_TRACE(std::string(family == 0 ? "directed_er" : "directed_ba") +
               " N=" + std::to_string(g.num_nodes()) + " seed=" +
               std::to_string(seed));

  BackendRequest request;
  request.digraph = &g;
  request.options.backend = BackendId::kDirected;
  const RunOutcome outcome = run_portfolio(request);
  ASSERT_EQ(outcome.status, RunStatus::kComplete) << outcome.detail;

  const auto reference = directed_brandes_bc(g);
  const ErrorStats stats =
      compare_vectors(outcome.result.betweenness, reference, 1e-9);
  EXPECT_LT(stats.max_rel_error, 1e-9) << "worst node " << stats.worst_index;

  // Ordered-pair convention: the directed scores on a digraph with any
  // asymmetric reachability are NOT what the undirected pipeline would
  // report on the support — spot-check that some node's score differs
  // from the halved-undirected value (guards against an accidental
  // symmetrization bug).
  std::uint64_t total_pairs_reachable = 0;
  for (NodeId s = 0; s < g.num_nodes(); ++s) {
    for (const std::uint32_t d : directed_distances(g, s)) {
      total_pairs_reachable += d != ~std::uint32_t{0} ? 1u : 0u;
    }
  }
  EXPECT_GE(total_pairs_reachable, g.num_nodes());  // at least the diagonal
}

INSTANTIATE_TEST_SUITE_P(
    FamilySizeSeed, DirectedPortfolioSweep,
    ::testing::Combine(::testing::Range(0, 2),
                       ::testing::Values<NodeId>(8, 24, 48, 96),
                       ::testing::Range(1, 3)),
    [](const ::testing::TestParamInfo<std::tuple<int, NodeId, int>>&
           param_info) {
      return std::string(std::get<0>(param_info.param) == 0 ? "er" : "ba") +
             "_" + std::to_string(std::get<1>(param_info.param)) + "_s" +
             std::to_string(std::get<2>(param_info.param));
    });

}  // namespace
}  // namespace congestbc
