#include "bignum/big_rational.hpp"

#include <gtest/gtest.h>

#include "central/brandes.hpp"
#include "common/assert.hpp"
#include "common/rng.hpp"
#include "graph/generators.hpp"

namespace congestbc {
namespace {

TEST(Gcd, KnownValues) {
  EXPECT_EQ(gcd(BigUint(12), BigUint(18)), BigUint(6));
  EXPECT_EQ(gcd(BigUint(17), BigUint(13)), BigUint(1));
  EXPECT_EQ(gcd(BigUint(0), BigUint(7)), BigUint(7));
  EXPECT_EQ(gcd(BigUint(7), BigUint(0)), BigUint(7));
  EXPECT_EQ(gcd(BigUint(64), BigUint(48)), BigUint(16));
}

TEST(Gcd, HugeOperands) {
  // gcd(2^200 * 3, 2^100 * 9) = 2^100 * 3.
  const BigUint a = BigUint::pow2(200) * BigUint(3);
  const BigUint b = BigUint::pow2(100) * BigUint(9);
  EXPECT_EQ(gcd(a, b), BigUint::pow2(100) * BigUint(3));
}

TEST(Gcd, MatchesEuclidOnRandomInputs) {
  Rng rng(1);
  for (int trial = 0; trial < 200; ++trial) {
    const std::uint64_t x = rng.next_u64() >> 32;
    const std::uint64_t y = rng.next_u64() >> 32;
    std::uint64_t a = x;
    std::uint64_t b = y;
    while (b != 0) {
      const std::uint64_t t = a % b;
      a = b;
      b = t;
    }
    EXPECT_EQ(gcd(BigUint(x), BigUint(y)), BigUint(a));
  }
}

TEST(BigRational, ConstructionReduces) {
  const BigRational half(BigUint(4), BigUint(8));
  EXPECT_EQ(half.numerator(), BigUint(1));
  EXPECT_EQ(half.denominator(), BigUint(2));
  EXPECT_EQ(half.to_string(), "1/2");
}

TEST(BigRational, WholeNumbers) {
  const BigRational three(3);
  EXPECT_EQ(three.to_string(), "3");
  EXPECT_EQ(three.to_double(), 3.0);
}

TEST(BigRational, ZeroNormalizes) {
  const BigRational zero(BigUint(0), BigUint(17));
  EXPECT_TRUE(zero.is_zero());
  EXPECT_EQ(zero.denominator(), BigUint(1));
}

TEST(BigRational, RejectsZeroDenominator) {
  EXPECT_THROW(BigRational(BigUint(1), BigUint(0)), PreconditionError);
}

TEST(BigRational, Arithmetic) {
  const BigRational a(BigUint(1), BigUint(3));
  const BigRational b(BigUint(1), BigUint(6));
  EXPECT_EQ((a + b).to_string(), "1/2");
  EXPECT_EQ((a * b).to_string(), "1/18");
  EXPECT_EQ((a / b).to_string(), "2");
  EXPECT_EQ(a.reciprocal().to_string(), "3");
}

TEST(BigRational, Comparison) {
  const BigRational a(BigUint(2), BigUint(3));
  const BigRational b(BigUint(3), BigUint(4));
  EXPECT_LT(a, b);
  EXPECT_GT(b, a);
  EXPECT_EQ(a, BigRational(BigUint(4), BigUint(6)));
}

TEST(BigRational, FieldAxiomsFuzz) {
  Rng rng(2);
  for (int trial = 0; trial < 100; ++trial) {
    const BigRational a(BigUint(rng.next_below(1000) + 1),
                        BigUint(rng.next_below(1000) + 1));
    const BigRational b(BigUint(rng.next_below(1000) + 1),
                        BigUint(rng.next_below(1000) + 1));
    const BigRational c(BigUint(rng.next_below(1000) + 1),
                        BigUint(rng.next_below(1000) + 1));
    ASSERT_EQ(a + b, b + a);
    ASSERT_EQ((a + b) + c, a + (b + c));
    ASSERT_EQ(a * (b + c), a * b + a * c);
    ASSERT_EQ((a / b) * b, a);
    ASSERT_EQ(a * a.reciprocal(), BigRational(1));
  }
}

TEST(BigRational, ToDoubleHugeMagnitudes) {
  const BigRational tiny(BigUint(1), BigUint::pow2(300));
  const BigRational huge(BigUint::pow2(300), BigUint(1));
  EXPECT_NEAR(tiny.to_double() * huge.to_double(), 1.0, 1e-12);
}

// --- the payoff: exact rational Brandes ---

TEST(RationalBrandes, Figure1IsExactlySevenHalves) {
  const auto bc = brandes_bc_rational(gen::figure1_example());
  EXPECT_EQ(bc[1], BigRational(BigUint(7), BigUint(2)));
  EXPECT_EQ(bc[1].to_string(), "7/2");
  EXPECT_EQ(bc[0], BigRational(0));
  EXPECT_EQ(bc[2], BigRational(1));
  EXPECT_EQ(bc[3], BigRational(BigUint(1), BigUint(2)));
  EXPECT_EQ(bc[4], BigRational(1));
}

TEST(RationalBrandes, PathGraphIntegers) {
  const auto bc = brandes_bc_rational(gen::path(5));
  EXPECT_EQ(bc[1], BigRational(3));
  EXPECT_EQ(bc[2], BigRational(4));
}

TEST(RationalBrandes, MatchesDoubleBrandes) {
  Rng rng(3);
  const Graph g = gen::erdos_renyi_connected(14, 0.25, rng);
  const auto exact = brandes_bc_rational(g);
  const auto approx = brandes_bc(g);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_NEAR(exact[v].to_double(), approx[v],
                1e-9 * std::max(1.0, approx[v]))
        << "node " << v;
  }
}

TEST(RationalBrandes, CycleValuesAreExactRationals) {
  // C6: every node has exactly 2 (two 1/2-pairs + one full pair — see
  // brandes_test); in rational arithmetic this is literal.
  const auto bc = brandes_bc_rational(gen::cycle(6));
  for (NodeId v = 0; v < 6; ++v) {
    EXPECT_EQ(bc[v], BigRational(2));
  }
}

}  // namespace
}  // namespace congestbc
