#include "core/runner.hpp"

#include <gtest/gtest.h>

#include "common/assert.hpp"
#include "graph/generators.hpp"

namespace congestbc {
namespace {

TEST(Runner, AnalyzeWithParity) {
  const Graph g = gen::figure1_example();
  Runner runner(g);
  const auto report = runner.analyze();
  ASSERT_TRUE(report.parity.has_value());
  EXPECT_LT(report.parity->max_rel_error, 1e-6);
  EXPECT_NEAR(report.distributed.betweenness[1], 3.5, 1e-6);
  EXPECT_GT(report.metrics.rounds, 0u);
}

TEST(Runner, AnalyzeWithoutBaseline) {
  Runner runner(gen::figure1_example());
  AnalysisOptions options;
  options.compare_with_brandes = false;
  const auto report = runner.analyze(options);
  EXPECT_FALSE(report.parity.has_value());
}

TEST(Runner, ExactReference) {
  const Graph g = gen::diamond_chain(12);
  Runner runner(g);
  AnalysisOptions options;
  options.exact_reference = true;
  const auto report = runner.analyze(options);
  ASSERT_TRUE(report.parity.has_value());
  EXPECT_LT(report.parity->max_rel_error, 1e-4);
}

TEST(Runner, SummaryMentionsKeyNumbers) {
  Runner runner(gen::star(6));
  const auto report = runner.analyze();
  const std::string text = report.summary();
  EXPECT_NE(text.find("rounds"), std::string::npos);
  EXPECT_NE(text.find("N=6"), std::string::npos);
  EXPECT_NE(text.find("Brandes"), std::string::npos);
}

TEST(Runner, RejectsDisconnected) {
  const Graph g(4, {{0, 1}, {2, 3}});
  EXPECT_THROW(Runner runner(g), PreconditionError);
}

TEST(Runner, RejectsEmpty) {
  const Graph g(0, {});
  EXPECT_THROW(Runner runner(g), PreconditionError);
}

TEST(Runner, OptionsPropagate) {
  Runner runner(gen::path(6));
  AnalysisOptions options;
  options.distributed.halve = false;
  const auto report = runner.analyze(options);
  EXPECT_NEAR(report.distributed.betweenness[2], 12.0, 1e-6);
  ASSERT_TRUE(report.parity.has_value());
  EXPECT_LT(report.parity->max_rel_error, 1e-6);
}

TEST(Runner, WatchdogOutcomeMatchesPlainRunWhenFaultFree) {
  const Graph g = gen::wheel(8);
  const auto plain = run_distributed_bc(g);
  const RunOutcome outcome = run_bc_with_watchdog(g);
  EXPECT_TRUE(outcome.complete());
  EXPECT_EQ(outcome.status, RunStatus::kComplete);
  EXPECT_EQ(outcome.nodes_finished, g.num_nodes());
  EXPECT_EQ(outcome.retransmissions, 0u);
  EXPECT_EQ(outcome.result.betweenness, plain.betweenness);
  EXPECT_EQ(outcome.result.metrics, plain.metrics);
  const std::string text = outcome.summary();
  EXPECT_NE(text.find("complete"), std::string::npos);
}

TEST(Runner, RunStatusNamesAreStable) {
  EXPECT_STREQ(to_string(RunStatus::kComplete), "complete");
  EXPECT_STREQ(to_string(RunStatus::kStall), "stall");
  EXPECT_STREQ(to_string(RunStatus::kCrashPartition), "crash-partition");
  EXPECT_STREQ(to_string(RunStatus::kRoundLimit), "round-limit");
  EXPECT_STREQ(to_string(RunStatus::kCongestViolation), "congest-violation");
  EXPECT_STREQ(to_string(RunStatus::kError), "error");
}

}  // namespace
}  // namespace congestbc
