#include "graph/lowerbound.hpp"

#include <gtest/gtest.h>

#include <set>
#include <tuple>

#include "central/brandes.hpp"
#include "common/assert.hpp"
#include "graph/properties.hpp"

namespace congestbc {
namespace {

using lb::BcGadget;
using lb::binomial;
using lb::build_bc_gadget;
using lb::build_diameter_gadget;
using lb::DiameterGadget;
using lb::min_universe_for;
using lb::SetFamily;

TEST(Binomial, KnownValues) {
  EXPECT_EQ(binomial(0, 0), 1u);
  EXPECT_EQ(binomial(4, 2), 6u);
  EXPECT_EQ(binomial(10, 5), 252u);
  EXPECT_EQ(binomial(5, 7), 0u);
  EXPECT_EQ(binomial(62, 31), 465428353255261088ull);
}

TEST(Binomial, SaturatesInsteadOfOverflowing) {
  EXPECT_EQ(binomial(128, 64), UINT64_MAX);
}

TEST(MinUniverse, MatchesPaperChoice) {
  // smallest even m with C(m, m/2) >= n^2
  EXPECT_EQ(min_universe_for(1), 2u);   // C(2,1)=2 >= 1
  EXPECT_EQ(min_universe_for(2), 4u);   // C(4,2)=6 >= 4
  EXPECT_EQ(min_universe_for(10), 10u); // C(10,5)=252 >= 100
}

TEST(SetFamily, SubsetRankingRoundTrip) {
  const unsigned m = 8;
  const std::uint64_t total = binomial(m, m / 2);
  for (std::uint64_t rank = 0; rank < total; ++rank) {
    const std::uint64_t mask = SetFamily::unrank_subset(m, rank);
    EXPECT_EQ(__builtin_popcountll(mask), 4);
    EXPECT_EQ(SetFamily::rank_subset(m, mask), rank);
  }
}

TEST(SetFamily, UnrankIsInjective) {
  const unsigned m = 10;
  std::set<std::uint64_t> seen;
  for (std::uint64_t rank = 0; rank < binomial(m, m / 2); ++rank) {
    EXPECT_TRUE(seen.insert(SetFamily::unrank_subset(m, rank)).second);
  }
}

TEST(SetFamily, RandomFamilyValid) {
  Rng rng(1);
  const auto family = SetFamily::random(10, 8, rng);
  EXPECT_EQ(family.size(), 10u);
  for (std::size_t j = 0; j < family.size(); ++j) {
    EXPECT_EQ(__builtin_popcountll(family.set_mask(j)), 4);
  }
}

TEST(SetFamily, IntersectionDetection) {
  const SetFamily x(4, {0b0011, 0b0101});
  const SetFamily y_disjoint(4, {0b0110, 0b1001});
  const SetFamily y_matching(4, {0b1100, 0b0101});
  EXPECT_FALSE(SetFamily::families_intersect(x, y_disjoint));
  EXPECT_TRUE(SetFamily::families_intersect(x, y_matching));
  const auto m = SetFamily::matches(x, y_matching);
  ASSERT_EQ(m.size(), 1u);
  EXPECT_EQ(m[0], (std::pair<std::size_t, std::size_t>{1, 1}));
}

TEST(SetFamily, RejectsWrongCardinality) {
  EXPECT_THROW(SetFamily(4, {0b0111}), PreconditionError);
  EXPECT_THROW(SetFamily(4, {0b10011}), PreconditionError);
}

// --- Figure 2 (diameter gadget, Lemma 8) ---

class DiameterGadgetLemma : public ::testing::TestWithParam<unsigned> {};

TEST_P(DiameterGadgetLemma, DisjointFamiliesGiveDiameterX) {
  const unsigned x = GetParam();
  const SetFamily xf(4, {0b0011, 0b0101});
  const SetFamily yf(4, {0b0110, 0b1010});
  const auto gadget = build_diameter_gadget(xf, yf, x);
  EXPECT_TRUE(is_connected(gadget.graph));
  EXPECT_EQ(gadget.expected_diameter, x);
  EXPECT_EQ(diameter(gadget.graph), x);
}

TEST_P(DiameterGadgetLemma, MatchingFamiliesGiveDiameterXPlus2) {
  const unsigned x = GetParam();
  const SetFamily xf(4, {0b0011, 0b0101});
  const SetFamily yf(4, {0b0011, 0b0110});
  const auto gadget = build_diameter_gadget(xf, yf, x);
  EXPECT_EQ(gadget.expected_diameter, x + 2);
  EXPECT_EQ(diameter(gadget.graph), x + 2);
}

INSTANTIATE_TEST_SUITE_P(XSweep, DiameterGadgetLemma,
                         ::testing::Values(8u, 9u, 12u, 16u));

TEST(DiameterGadget, SPrimeTPrimeDistancesMatchLemma8) {
  const SetFamily xf(4, {0b0011, 0b0101, 0b1010});
  const SetFamily yf(4, {0b0101, 0b1100, 0b0110});
  const unsigned x = 10;
  const auto gadget = build_diameter_gadget(xf, yf, x);
  for (std::size_t i = 0; i < xf.size(); ++i) {
    const auto dist = bfs_distances(gadget.graph, gadget.s_prime[i]);
    for (std::size_t j = 0; j < yf.size(); ++j) {
      const unsigned expected =
          xf.set_mask(i) == yf.set_mask(j) ? x + 2 : x;
      EXPECT_EQ(dist[gadget.t_prime[j]], expected) << "i=" << i << " j=" << j;
    }
  }
}

TEST(DiameterGadget, RandomInstances) {
  Rng rng(7);
  for (int trial = 0; trial < 6; ++trial) {
    const auto xf = SetFamily::random(5, 6, rng);
    const auto yf = SetFamily::random(5, 6, rng);
    const auto gadget = build_diameter_gadget(xf, yf, 9);
    EXPECT_EQ(diameter(gadget.graph), gadget.expected_diameter) << trial;
  }
}

TEST(DiameterGadget, CutEdgesArePresent) {
  const SetFamily xf(4, {0b0011});
  const SetFamily yf(4, {0b1100});
  const auto gadget = build_diameter_gadget(xf, yf, 8);
  EXPECT_EQ(gadget.cut_edges.size(), 4u + 1u);  // m paths + the A-B path
  for (const auto& e : gadget.cut_edges) {
    EXPECT_TRUE(gadget.graph.has_edge(e.u, e.v));
  }
}

TEST(DiameterGadget, RejectsSmallX) {
  const SetFamily xf(4, {0b0011});
  const SetFamily yf(4, {0b1100});
  EXPECT_THROW(build_diameter_gadget(xf, yf, 7), PreconditionError);
}

// --- Figure 3 (betweenness gadget, Lemma 9) ---

TEST(BcGadgetLemma, ExactBcValuesNoMatch) {
  const SetFamily xf(4, {0b0011, 0b0101});
  const SetFamily yf(4, {0b0110, 0b1010});
  const auto gadget = build_bc_gadget(xf, yf);
  EXPECT_TRUE(is_connected(gadget.graph));
  const auto bc = brandes_bc(gadget.graph);
  for (std::size_t i = 0; i < xf.size(); ++i) {
    EXPECT_NEAR(bc[gadget.f[i]], 1.0, 1e-9) << "F_" << i;
    EXPECT_DOUBLE_EQ(gadget.expected_bc_of_f[i], 1.0);
  }
}

TEST(BcGadgetLemma, ExactBcValuesWithPlantedMatch) {
  const SetFamily xf(4, {0b0011, 0b0101, 0b1001});
  const SetFamily yf(4, {0b0110, 0b0101, 0b1100});
  const auto gadget = build_bc_gadget(xf, yf);
  const auto bc = brandes_bc(gadget.graph);
  EXPECT_NEAR(bc[gadget.f[0]], 1.0, 1e-9);
  EXPECT_NEAR(bc[gadget.f[1]], 1.5, 1e-9);  // X_1 == Y_1
  EXPECT_NEAR(bc[gadget.f[2]], 1.0, 1e-9);
}

TEST(BcGadgetLemma, RandomInstancesMatchLemma9) {
  Rng rng(17);
  for (int trial = 0; trial < 6; ++trial) {
    const auto xf = SetFamily::random(4, 6, rng);
    const auto yf = SetFamily::random(4, 6, rng);
    const auto gadget = build_bc_gadget(xf, yf);
    const auto bc = brandes_bc(gadget.graph);
    for (std::size_t i = 0; i < xf.size(); ++i) {
      EXPECT_NEAR(bc[gadget.f[i]], gadget.expected_bc_of_f[i], 1e-9)
          << "trial " << trial << " F_" << i;
    }
  }
}

TEST(BcGadget, DistancesMatchPaperObservation) {
  // d(S_i, T_j) = 3 when X_i != Y_j, 4 when X_i == Y_j.
  const SetFamily xf(4, {0b0011, 0b1010});
  const SetFamily yf(4, {0b0011, 0b0101});
  const auto gadget = build_bc_gadget(xf, yf);
  for (std::size_t i = 0; i < xf.size(); ++i) {
    const auto dist = bfs_distances(gadget.graph, gadget.s[i]);
    for (std::size_t j = 0; j < yf.size(); ++j) {
      const unsigned expected = xf.set_mask(i) == yf.set_mask(j) ? 4u : 3u;
      EXPECT_EQ(dist[gadget.t[j]], expected) << "i=" << i << " j=" << j;
    }
  }
}

// Parameterized exactness sweep: family size x planted-match count.
class BcGadgetSweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, unsigned>> {};

TEST_P(BcGadgetSweep, Lemma9ExactAcrossSizes) {
  const auto [n, planted] = GetParam();
  if (planted >= 1 && 2 * (planted - 1) >= n) {
    GTEST_SKIP() << "not enough X slots to plant " << planted << " matches";
  }
  const unsigned m = lb::min_universe_for(n);
  Rng rng(900 + n * 10 + planted);
  SetFamily xf = SetFamily::random(n, m, rng);
  std::vector<std::uint64_t> ysets;
  while (ysets.size() < n) {
    const std::uint64_t mask =
        SetFamily::unrank_subset(m, rng.next_below(binomial(m, m / 2)));
    bool clash = false;
    for (std::size_t i = 0; i < n; ++i) {
      clash = clash || mask == xf.set_mask(i);
    }
    for (const auto existing : ysets) {
      clash = clash || mask == existing;
    }
    if (!clash) {
      ysets.push_back(mask);
    }
  }
  for (unsigned p = 0; p < planted; ++p) {
    ysets[p] = xf.set_mask(2 * p);
  }
  const auto gadget = build_bc_gadget(xf, SetFamily(m, ysets));
  const auto bc = brandes_bc(gadget.graph);
  unsigned matches_seen = 0;
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(bc[gadget.f[i]], gadget.expected_bc_of_f[i], 1e-9)
        << "F_" << i;
    if (gadget.expected_bc_of_f[i] > 1.25) {
      ++matches_seen;
    }
  }
  EXPECT_EQ(matches_seen, planted);
}

INSTANTIATE_TEST_SUITE_P(
    SizesByPlanted, BcGadgetSweep,
    ::testing::Combine(::testing::Values<std::size_t>(2, 4, 8, 12),
                       ::testing::Values(0u, 1u, 2u)));

TEST(BcGadget, HalfPointGapDistinguishable) {
  // Theorem 6: an algorithm with relative error < 0.499 distinguishes 1
  // from 1.5 — verify the gap really is 0.5 on a batch of instances.
  Rng rng(23);
  for (int trial = 0; trial < 4; ++trial) {
    const auto xf = SetFamily::random(3, 6, rng);
    const auto yf = SetFamily::random(3, 6, rng);
    const auto gadget = build_bc_gadget(xf, yf);
    const auto bc = brandes_bc(gadget.graph);
    for (std::size_t i = 0; i < xf.size(); ++i) {
      const double v = bc[gadget.f[i]];
      EXPECT_TRUE(std::abs(v - 1.0) < 1e-6 || std::abs(v - 1.5) < 1e-6)
          << "C_B(F_" << i << ") = " << v;
    }
  }
}

TEST(BcGadget, CutEdges) {
  const SetFamily xf(4, {0b0011});
  const SetFamily yf(4, {0b1100});
  const auto gadget = build_bc_gadget(xf, yf);
  EXPECT_EQ(gadget.cut_edges.size(), 4u + 1u);  // m L-L' edges + P-Q
  for (const auto& e : gadget.cut_edges) {
    EXPECT_TRUE(gadget.graph.has_edge(e.u, e.v));
  }
}

TEST(BcGadget, RejectsDuplicateSubsets) {
  EXPECT_THROW(build_bc_gadget(SetFamily(4, {0b0011, 0b0011}),
                               SetFamily(4, {0b1100})),
               PreconditionError);
}

}  // namespace
}  // namespace congestbc
