// Reproduction of the paper's Figure 1 walkthrough (experiment E1):
// the five BFS trees on the worked 5-node example, the send-time formula
// T_s(u) = T_s + D - d(s,u), the psi values computed in Section VII, and
// the final C_B(v2) = 7/2.
//
// Note on absolute times: the paper's example uses source start times
// with gaps of exactly d(s,t)+1 (T_v1=0, T_v2=2, T_v3=4, T_v5=8); our DFS
// token yields gaps >= d(s,t)+2 plus tree-construction offsets, so the
// *absolute* numbers differ while every *relation* the figure
// demonstrates (ordering, collision-freedom, the send-time formula, the
// resulting dependencies) is checked exactly.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "algo/bc_pipeline.hpp"
#include "central/brandes.hpp"
#include "graph/generators.hpp"
#include "graph/properties.hpp"

namespace congestbc {
namespace {

class Figure1 : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    graph_ = new Graph(gen::figure1_example());
    DistributedBcOptions options;
    options.keep_tables = true;
    result_ = new DistributedBcResult(run_distributed_bc(*graph_, options));
  }
  static void TearDownTestSuite() {
    delete result_;
    delete graph_;
    result_ = nullptr;
    graph_ = nullptr;
  }

  // Table entry of node v for source s.
  static const SourceEntry& entry(NodeId v, NodeId s) {
    for (const auto& e : result_->tables[v]) {
      if (e.source == s) {
        return e;
      }
    }
    throw std::logic_error("missing entry");
  }

  static Graph* graph_;
  static DistributedBcResult* result_;
};

Graph* Figure1::graph_ = nullptr;
DistributedBcResult* Figure1::result_ = nullptr;

TEST_F(Figure1, DiameterIsThree) {
  EXPECT_EQ(result_->diameter, 3u);
}

TEST_F(Figure1, SourceStartTimesRespectSeparation) {
  // T_t >= T_s + d(s,t) + 1 for every pair (the paper's Lemma 4 premise).
  std::map<NodeId, std::uint64_t> t_start;
  for (const auto& e : result_->tables[0]) {
    t_start[e.source] = e.t_start;
  }
  ASSERT_EQ(t_start.size(), 5u);
  for (NodeId s = 0; s < 5; ++s) {
    const auto dist = bfs_distances(*graph_, s);
    for (NodeId t = 0; t < 5; ++t) {
      if (t_start[t] > t_start[s]) {
        EXPECT_GE(t_start[t], t_start[s] + dist[t] + 1)
            << "s=" << s << " t=" << t;
      }
    }
  }
}

TEST_F(Figure1, StartTimesConsistentAcrossNodes) {
  // Every node derives the same T_s for each source s.
  for (NodeId s = 0; s < 5; ++s) {
    const std::uint64_t reference = entry(0, s).t_start;
    for (NodeId v = 1; v < 5; ++v) {
      EXPECT_EQ(entry(v, s).t_start, reference) << "s=" << s << " v=" << v;
    }
  }
}

TEST_F(Figure1, SendTimeFormulaMatchesFigure) {
  // T_s(u) = T_s + D - d(s,u) (relative to the aggregation epoch).  In
  // particular, within BFS(v1): v4 sends 1 round before v3 and v5, which
  // send 1 round before v2 — exactly the cascade of Figure 1(a).
  const std::uint64_t epoch = result_->aggregation_epoch;
  for (NodeId v = 0; v < 5; ++v) {
    for (NodeId s = 0; s < 5; ++s) {
      const auto& e = entry(v, s);
      if (e.dist == 0) {
        continue;
      }
      EXPECT_EQ(e.agg_send_round, epoch + e.t_start + 3 - e.dist);
    }
  }
  // The cascade within BFS(v1) (source id 0): d(v1,v4)=3, d=2 for v3/v5's
  // predecessors... concretely v4 (id 3) sends first.
  const std::uint64_t send_v4 = entry(3, 0).agg_send_round;
  const std::uint64_t send_v3 = entry(2, 0).agg_send_round;
  const std::uint64_t send_v5 = entry(4, 0).agg_send_round;
  const std::uint64_t send_v2 = entry(1, 0).agg_send_round;
  EXPECT_EQ(send_v3, send_v4 + 1);
  EXPECT_EQ(send_v5, send_v4 + 1);
  EXPECT_EQ(send_v2, send_v3 + 1);
}

TEST_F(Figure1, PsiValuesMatchSectionVii) {
  // psi_v1(v3) = psi_v1(v5) = 1/2; psi_v1(v2) = 3 (since sigma = 1 and
  // delta_v1(v2) = 3); psi_v1(v4) = 0 (no descendants).
  EXPECT_DOUBLE_EQ(entry(2, 0).psi.to_double(), 0.5);
  EXPECT_DOUBLE_EQ(entry(4, 0).psi.to_double(), 0.5);
  EXPECT_DOUBLE_EQ(entry(1, 0).psi.to_double(), 3.0);
  EXPECT_TRUE(entry(3, 0).psi.is_zero());
}

TEST_F(Figure1, SigmaValuesMatchPaper) {
  // sigma_{v1 v4} = 2 (via v3 and via v5); all others from v1 are 1.
  EXPECT_DOUBLE_EQ(entry(3, 0).sigma.to_double(), 2.0);
  EXPECT_DOUBLE_EQ(entry(1, 0).sigma.to_double(), 1.0);
  EXPECT_DOUBLE_EQ(entry(2, 0).sigma.to_double(), 1.0);
  EXPECT_DOUBLE_EQ(entry(4, 0).sigma.to_double(), 1.0);
}

TEST_F(Figure1, DependencyOfV1OnV2IsThree) {
  // delta_{v1}(v2) = psi * sigma = 3 * 1 = 3 — the paper's worked value.
  const auto& e = entry(1, 0);
  EXPECT_DOUBLE_EQ(e.psi.to_double() * e.sigma.to_double(), 3.0);
}

TEST_F(Figure1, FinalBetweennessMatchesPaper) {
  // C_B(v2) = (3 + 1.5 + 1 + 1.5) / 2 = 7/2.
  EXPECT_NEAR(result_->betweenness[1], 3.5, 1e-9);
  // Full vector against Brandes.
  const auto reference = brandes_bc(*graph_);
  for (NodeId v = 0; v < 5; ++v) {
    EXPECT_NEAR(result_->betweenness[v], reference[v], 1e-9) << "v" << v + 1;
  }
}

TEST_F(Figure1, PredecessorSetsMatchFigure) {
  // P_v1(v4) = {v3, v5}; P_v1(v3) = {v2}; P_v1(v2) = {v1}.
  auto preds_of = [&](NodeId v, NodeId s) {
    auto p = entry(v, s).preds;
    std::sort(p.begin(), p.end());
    return p;
  };
  EXPECT_EQ(preds_of(3, 0), (std::vector<NodeId>{2, 4}));
  EXPECT_EQ(preds_of(2, 0), std::vector<NodeId>{1});
  EXPECT_EQ(preds_of(1, 0), std::vector<NodeId>{0});
}

}  // namespace
}  // namespace congestbc
