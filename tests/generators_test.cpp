#include "graph/generators.hpp"

#include <gtest/gtest.h>

#include "central/brandes.hpp"
#include "common/assert.hpp"
#include "graph/properties.hpp"

namespace congestbc {
namespace {

using gen::NamedGraph;

TEST(Generators, Path) {
  const Graph g = gen::path(5);
  EXPECT_EQ(g.num_nodes(), 5u);
  EXPECT_EQ(g.num_edges(), 4u);
  EXPECT_TRUE(is_connected(g));
  EXPECT_EQ(diameter(g), 4u);
}

TEST(Generators, SingleNodePath) {
  const Graph g = gen::path(1);
  EXPECT_EQ(g.num_nodes(), 1u);
  EXPECT_EQ(g.num_edges(), 0u);
}

TEST(Generators, Cycle) {
  const Graph g = gen::cycle(7);
  EXPECT_EQ(g.num_edges(), 7u);
  for (NodeId v = 0; v < 7; ++v) {
    EXPECT_EQ(g.degree(v), 2u);
  }
  EXPECT_EQ(diameter(g), 3u);
}

TEST(Generators, Star) {
  const Graph g = gen::star(9);
  EXPECT_EQ(g.degree(0), 8u);
  EXPECT_EQ(diameter(g), 2u);
}

TEST(Generators, Complete) {
  const Graph g = gen::complete(6);
  EXPECT_EQ(g.num_edges(), 15u);
  EXPECT_EQ(diameter(g), 1u);
}

TEST(Generators, CompleteBipartite) {
  const Graph g = gen::complete_bipartite(3, 4);
  EXPECT_EQ(g.num_nodes(), 7u);
  EXPECT_EQ(g.num_edges(), 12u);
  EXPECT_EQ(diameter(g), 2u);
  EXPECT_EQ(g.degree(0), 4u);
  EXPECT_EQ(g.degree(3), 3u);
}

TEST(Generators, Wheel) {
  const Graph g = gen::wheel(8);
  EXPECT_EQ(g.degree(7), 7u);  // hub
  EXPECT_EQ(diameter(g), 2u);
  for (NodeId v = 0; v < 7; ++v) {
    EXPECT_EQ(g.degree(v), 3u);
  }
}

TEST(Generators, BalancedTree) {
  const Graph g = gen::balanced_tree(2, 3);
  EXPECT_EQ(g.num_nodes(), 15u);
  EXPECT_EQ(g.num_edges(), 14u);
  EXPECT_TRUE(is_connected(g));
  EXPECT_EQ(diameter(g), 6u);
}

TEST(Generators, Grid) {
  const Graph g = gen::grid(3, 4);
  EXPECT_EQ(g.num_nodes(), 12u);
  EXPECT_EQ(g.num_edges(), 3u * 3 + 2u * 4);
  EXPECT_EQ(diameter(g), 5u);
}

TEST(Generators, Hypercube) {
  const Graph g = gen::hypercube(4);
  EXPECT_EQ(g.num_nodes(), 16u);
  EXPECT_EQ(g.num_edges(), 32u);
  EXPECT_EQ(diameter(g), 4u);
  for (NodeId v = 0; v < 16; ++v) {
    EXPECT_EQ(g.degree(v), 4u);
  }
}

TEST(Generators, RandomTreeIsTree) {
  Rng rng(1);
  const Graph g = gen::random_tree(50, rng);
  EXPECT_EQ(g.num_edges(), 49u);
  EXPECT_TRUE(is_connected(g));
}

TEST(Generators, ErdosRenyiConnected) {
  Rng rng(2);
  for (const double p : {0.0, 0.05, 0.3}) {
    const Graph g = gen::erdos_renyi_connected(40, p, rng);
    EXPECT_EQ(g.num_nodes(), 40u);
    EXPECT_TRUE(is_connected(g));
  }
}

TEST(Generators, BarabasiAlbertDegrees) {
  Rng rng(3);
  const Graph g = gen::barabasi_albert(60, 2, rng);
  EXPECT_EQ(g.num_nodes(), 60u);
  EXPECT_TRUE(is_connected(g));
  // Every non-seed node brings exactly 2 edges.
  EXPECT_EQ(g.num_edges(), 3u + 57u * 2u);
}

TEST(Generators, WattsStrogatzStaysConnected) {
  Rng rng(4);
  for (const double beta : {0.0, 0.2, 1.0}) {
    const Graph g = gen::watts_strogatz(40, 3, beta, rng);
    EXPECT_EQ(g.num_nodes(), 40u);
    EXPECT_TRUE(is_connected(g));
  }
}

TEST(Generators, LollipopBridgeHasHighBc) {
  const Graph g = gen::lollipop(8, 8);
  EXPECT_TRUE(is_connected(g));
  const auto bc = brandes_bc(g);
  // The clique-tail junction (node 7) dominates every clique node.
  for (NodeId v = 0; v < 7; ++v) {
    EXPECT_GT(bc[7], bc[v]);
  }
}

TEST(Generators, Barbell) {
  const Graph g = gen::barbell(5, 3);
  EXPECT_EQ(g.num_nodes(), 13u);
  EXPECT_TRUE(is_connected(g));
  EXPECT_EQ(diameter(g), 6u);
}

TEST(Generators, Caterpillar) {
  const Graph g = gen::caterpillar(5, 2);
  EXPECT_EQ(g.num_nodes(), 15u);
  EXPECT_EQ(g.num_edges(), 14u);
  EXPECT_TRUE(is_connected(g));
}

TEST(Generators, DiamondChainPathCounts) {
  // sigma(end, end) along a chain of k diamonds is exactly 2^k.
  for (const unsigned k : {1u, 3u, 10u, 40u}) {
    const Graph g = gen::diamond_chain(k);
    EXPECT_EQ(g.num_nodes(), 1 + 3 * k);
    const auto sigma = count_shortest_paths(g, 0);
    EXPECT_EQ(sigma[g.num_nodes() - 1], BigUint::pow2(k));
  }
}

TEST(Generators, LayeredBlowupPathCounts) {
  // sigma(source, sink) = width^depth.
  const Graph g = gen::layered_blowup(3, 4);
  const auto sigma = count_shortest_paths(g, 0);
  EXPECT_EQ(sigma[g.num_nodes() - 1], BigUint(81));
}

TEST(Generators, LayeredBlowupExponential) {
  // 5^30 overflows 64 bits — checks BigUint plumbing end to end.
  const Graph g = gen::layered_blowup(5, 30);
  const auto sigma = count_shortest_paths(g, 0);
  BigUint expected(1);
  for (int i = 0; i < 30; ++i) {
    expected *= BigUint(5);
  }
  EXPECT_EQ(sigma[g.num_nodes() - 1], expected);
  EXPECT_GT(expected.bit_length(), 64u);
}

TEST(Generators, Figure1ExampleStructure) {
  const Graph g = gen::figure1_example();
  EXPECT_EQ(g.num_nodes(), 5u);
  EXPECT_EQ(g.num_edges(), 5u);
  EXPECT_EQ(diameter(g), 3u);
  // d(v1, v4) = 3 and sigma_{v1 v4} = 2 as in the paper's walkthrough.
  const auto dist = bfs_distances(g, 0);
  EXPECT_EQ(dist[3], 3u);
  const auto sigma = count_shortest_paths(g, 0);
  EXPECT_EQ(sigma[3], BigUint(2));
}

TEST(Generators, StochasticBlockModel) {
  Rng rng(31);
  const Graph g = gen::stochastic_block_model(4, 10, 0.5, 0.02, rng);
  EXPECT_EQ(g.num_nodes(), 40u);
  EXPECT_TRUE(is_connected(g));
  // Communities are denser inside than across: count edges of each kind.
  std::size_t intra = 0;
  std::size_t inter = 0;
  for (const auto& e : g.edges()) {
    (e.u / 10 == e.v / 10 ? intra : inter) += 1;
  }
  EXPECT_GT(intra, 3 * inter);
}

TEST(Generators, RandomGeometric) {
  Rng rng(37);
  const Graph g = gen::random_geometric(60, 0.25, rng);
  EXPECT_EQ(g.num_nodes(), 60u);
  EXPECT_TRUE(is_connected(g));
  // Denser radius must produce at least as many edges on the same points
  // ... regenerate with a fresh rng for each radius instead (points are
  // drawn inside the generator): bigger radius, more edges in expectation.
  Rng rng_small(99);
  Rng rng_large(99);
  const Graph sparse = gen::random_geometric(60, 0.1, rng_small);
  const Graph dense = gen::random_geometric(60, 0.4, rng_large);
  EXPECT_GT(dense.num_edges(), sparse.num_edges());
}

TEST(Generators, ErdosRenyiSparse) {
  Rng rng(41);
  const Graph g = gen::erdos_renyi_sparse(500, 4.0, rng);
  EXPECT_EQ(g.num_nodes(), 500u);
  EXPECT_TRUE(is_connected(g));
  // Expected ER edges: n * avg_degree / 2 = 1000, plus the spanning
  // backbone (<= n-1, minus overlaps).  A 3-sigma band around that.
  EXPECT_GT(g.num_edges(), 900u);
  EXPECT_LT(g.num_edges(), 1700u);

  // Deterministic: the same seed reproduces the graph bit-for-bit.
  Rng rng_again(41);
  const Graph again = gen::erdos_renyi_sparse(500, 4.0, rng_again);
  EXPECT_EQ(g.edges(), again.edges());

  // The gap-skipping sampler must handle the degenerate corners the
  // Bernoulli sweep handles: saturated p and the 2-node graph.
  Rng rng_full(7);
  const Graph full = gen::erdos_renyi_sparse(12, 11.0, rng_full);
  EXPECT_EQ(full.num_edges(), 12u * 11u / 2u);  // p = 1: the clique
  Rng rng_tiny(7);
  const Graph tiny = gen::erdos_renyi_sparse(2, 1.0, rng_tiny);
  EXPECT_EQ(tiny.num_nodes(), 2u);
  EXPECT_TRUE(is_connected(tiny));
}

TEST(Generators, ErdosRenyiSparseMatchesDensityAtScale) {
  // The reason the generator exists: 10^5 nodes in O(m + n).  Degree
  // must concentrate around avg_degree (plus ~2 backbone edges/node).
  Rng rng(43);
  const Graph g = gen::erdos_renyi_sparse(100'000, 4.0, rng);
  EXPECT_EQ(g.num_nodes(), 100'000u);
  EXPECT_TRUE(is_connected(g));
  const double avg_degree =
      2.0 * static_cast<double>(g.num_edges()) / g.num_nodes();
  EXPECT_GT(avg_degree, 3.9);
  EXPECT_LT(avg_degree, 6.1);
}

TEST(Generators, StandardSuiteAllConnected) {
  for (const auto& [name, graph] : gen::standard_suite(32, 99)) {
    EXPECT_GE(graph.num_nodes(), 8u) << name;
    EXPECT_TRUE(is_connected(graph)) << name;
  }
}

TEST(Generators, PreconditionViolations) {
  Rng rng(5);
  EXPECT_THROW(gen::cycle(2), PreconditionError);
  EXPECT_THROW(gen::star(1), PreconditionError);
  EXPECT_THROW(gen::complete(1), PreconditionError);
  EXPECT_THROW(gen::wheel(3), PreconditionError);
  EXPECT_THROW(gen::barabasi_albert(3, 3, rng), PreconditionError);
  EXPECT_THROW(gen::watts_strogatz(4, 2, 0.1, rng), PreconditionError);
  EXPECT_THROW(gen::lollipop(2, 1), PreconditionError);
  EXPECT_THROW(gen::erdos_renyi_connected(10, 1.5, rng), PreconditionError);
}

TEST(DirectedGenerators, ErdosRenyiIsWeaklyConnectedAndDeterministic) {
  for (const std::uint64_t seed : {1ull, 2ull, 3ull}) {
    Rng rng(seed);
    const Digraph g = gen::directed_erdos_renyi(60, 0.05, rng);
    EXPECT_EQ(g.num_nodes(), 60u);
    EXPECT_TRUE(is_weakly_connected(g)) << "seed " << seed;
    // Backbone (n-1 arcs) plus the Bernoulli arcs; the union can only
    // add, never fall below the tree.
    EXPECT_GE(g.num_arcs(), 59u) << "seed " << seed;
    Rng replay(seed);
    const Digraph again = gen::directed_erdos_renyi(60, 0.05, replay);
    EXPECT_EQ(again.arcs(), g.arcs()) << "seed " << seed;
  }
}

TEST(DirectedGenerators, ErdosRenyiArcDensityTracksP) {
  Rng rng(9);
  const NodeId n = 200;
  const double p = 0.05;
  const Digraph g = gen::directed_erdos_renyi(n, p, rng);
  // Expected n(n-1)p = 1990 Bernoulli arcs (+ up to n-1 backbone arcs).
  const auto arcs = static_cast<double>(g.num_arcs());
  EXPECT_GT(arcs, 0.7 * n * (n - 1) * p);
  EXPECT_LT(arcs, 1.3 * n * (n - 1) * p + n);
}

TEST(DirectedGenerators, BarabasiAlbertShapeAndDeterminism) {
  Rng rng(13);
  const NodeId n = 80;
  const NodeId attach = 2;
  const Digraph g = gen::directed_barabasi_albert(n, attach, rng);
  EXPECT_EQ(g.num_nodes(), n);
  EXPECT_TRUE(is_weakly_connected(g));
  // Every non-seed node points `attach` arcs at predecessors.
  for (NodeId v = attach + 1; v < n; ++v) {
    EXPECT_EQ(g.out_degree(v), attach) << "node " << v;
    for (const NodeId w : g.out_neighbors(v)) {
      EXPECT_LT(w, v) << "citation arcs must point backwards";
    }
  }
  Rng replay(13);
  EXPECT_EQ(gen::directed_barabasi_albert(n, attach, replay).arcs(), g.arcs());
}

TEST(DirectedGenerators, PreconditionViolations) {
  Rng rng(5);
  EXPECT_THROW(gen::directed_erdos_renyi(0, 0.5, rng), PreconditionError);
  EXPECT_THROW(gen::directed_erdos_renyi(10, 1.5, rng), PreconditionError);
  EXPECT_THROW(gen::directed_barabasi_albert(3, 3, rng), PreconditionError);
  EXPECT_THROW(gen::directed_barabasi_albert(5, 0, rng), PreconditionError);
}

}  // namespace
}  // namespace congestbc
