#include "algo/bc_pipeline.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "central/brandes.hpp"
#include "central/centralities.hpp"
#include "common/assert.hpp"
#include "core/validation.hpp"
#include "graph/generators.hpp"
#include "graph/properties.hpp"

namespace congestbc {
namespace {

constexpr double kTolerance = 1e-6;  // default format: >= 20 mantissa bits

TEST(Pipeline, SingleNode) {
  const auto result = run_distributed_bc(Graph(1, {}));
  EXPECT_EQ(result.betweenness[0], 0.0);
  EXPECT_EQ(result.diameter, 0u);
}

TEST(Pipeline, TwoNodes) {
  const auto result = run_distributed_bc(gen::path(2));
  EXPECT_EQ(result.betweenness[0], 0.0);
  EXPECT_EQ(result.betweenness[1], 0.0);
  EXPECT_EQ(result.diameter, 1u);
  EXPECT_NEAR(result.closeness[0], 1.0, 1e-12);
}

TEST(Pipeline, PathGraphExactValues) {
  const auto result = run_distributed_bc(gen::path(5));
  EXPECT_NEAR(result.betweenness[0], 0.0, kTolerance);
  EXPECT_NEAR(result.betweenness[1], 3.0, kTolerance);
  EXPECT_NEAR(result.betweenness[2], 4.0, kTolerance);
  EXPECT_NEAR(result.betweenness[3], 3.0, kTolerance);
  EXPECT_NEAR(result.betweenness[4], 0.0, kTolerance);
  EXPECT_EQ(result.diameter, 4u);
}

TEST(Pipeline, Figure1Example) {
  const auto result = run_distributed_bc(gen::figure1_example());
  EXPECT_NEAR(result.betweenness[1], 3.5, kTolerance);
  EXPECT_EQ(result.diameter, 3u);
}

TEST(Pipeline, StarGraph) {
  const auto result = run_distributed_bc(gen::star(8));
  EXPECT_NEAR(result.betweenness[0], 21.0, kTolerance);  // C(7,2)
  for (NodeId v = 1; v < 8; ++v) {
    EXPECT_NEAR(result.betweenness[v], 0.0, kTolerance);
  }
}

TEST(Pipeline, MatchesBrandesOnSuite) {
  for (const auto& [name, graph] : gen::standard_suite(20, 42)) {
    const auto result = run_distributed_bc(graph);
    const auto reference = brandes_bc(graph);
    const auto stats = compare_vectors(result.betweenness, reference, 1e-6);
    EXPECT_LT(stats.max_rel_error, kTolerance)
        << name << ": worst at node " << stats.worst_index;
    EXPECT_EQ(result.diameter, diameter(graph)) << name;
  }
}

TEST(Pipeline, ClosenessAndEccentricityMatchCentralized) {
  Rng rng(5);
  const Graph g = gen::erdos_renyi_connected(24, 0.15, rng);
  const auto result = run_distributed_bc(g);
  const auto cc = closeness_centrality(g);
  const auto cg = graph_centrality(g);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_NEAR(result.closeness[v], cc[v], 1e-12);
    EXPECT_NEAR(result.graph_centrality[v], cg[v], 1e-12);
  }
}

TEST(Pipeline, StressMatchesCentralized) {
  Rng rng(6);
  const Graph g = gen::erdos_renyi_connected(20, 0.2, rng);
  const auto result = run_distributed_bc(g);
  const auto reference = stress_centrality(g);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const double ref = static_cast<double>(reference[v]);
    EXPECT_NEAR(static_cast<double>(result.stress[v]), ref,
                kTolerance * std::max(1.0, ref))
        << "node " << v;
  }
}

TEST(Pipeline, ExponentialPathCounts) {
  // 30 diamonds: sigma reaches 2^30 along the chain; 64-bit-safe but well
  // past the 26-bit mantissa, so rounding is genuinely exercised.
  const Graph g = gen::diamond_chain(30);
  const auto result = run_distributed_bc(g);
  const auto reference = brandes_bc_exact(g);
  const auto stats = compare_vectors(result.betweenness, reference, 1e-6);
  EXPECT_LT(stats.max_rel_error, 1e-4);
}

TEST(Pipeline, BeyondDoubleRangePathCounts) {
  // width-6 depth-24 blowup: sigma = 6^24 ~ 2^62; with deeper chains the
  // soft-float keeps working where doubles would still be fine -- the
  // 2^600 case is covered by the error bench; here we stay test-fast.
  const Graph g = gen::layered_blowup(6, 24);
  const auto result = run_distributed_bc(g);
  const auto reference = brandes_bc_exact(g);
  const auto stats = compare_vectors(result.betweenness, reference, 1e-6);
  EXPECT_LT(stats.max_rel_error, 1e-4);
}

TEST(Pipeline, RootChoiceDoesNotChangeResults) {
  const Graph g = gen::figure1_example();
  DistributedBcOptions options;
  std::vector<std::vector<double>> results;
  for (NodeId root = 0; root < g.num_nodes(); ++root) {
    options.root = root;
    results.push_back(run_distributed_bc(g, options).betweenness);
  }
  for (std::size_t i = 1; i < results.size(); ++i) {
    const auto stats = compare_vectors(results[i], results[0], 1e-9);
    EXPECT_LT(stats.max_rel_error, 1e-9) << "root " << i;
  }
}

TEST(Pipeline, UnhalvedConvention) {
  DistributedBcOptions options;
  options.halve = false;
  const auto full = run_distributed_bc(gen::path(5), options);
  EXPECT_NEAR(full.betweenness[2], 8.0, kTolerance);
}

TEST(Pipeline, LinearRoundBound) {
  // Theorem 3: O(N) rounds.  With this implementation's constants the
  // total stays below ~8N + 5D + 60 across families (2 DFS pause rounds
  // per node, token twice over each tree edge, and the counting clock
  // replayed once more during aggregation).
  for (const auto& [name, graph] : gen::standard_suite(24, 9)) {
    const auto result = run_distributed_bc(graph);
    const std::uint64_t n = graph.num_nodes();
    EXPECT_LE(result.rounds, 8 * n + 5 * diameter(graph) + 60) << name;
  }
}

TEST(Pipeline, CongestComplianceOnSuite) {
  // Lemmas 3 and 5 + Theorem 2: every message (bundle) fits the budget.
  for (const auto& [name, graph] : gen::standard_suite(20, 11)) {
    const auto result = run_distributed_bc(graph);  // throws on violation
    EXPECT_LE(result.metrics.max_bits_on_edge_round,
              congest_budget_bits(graph.num_nodes()))
        << name;
  }
}

TEST(Pipeline, Lemma4NoAggregationCollisions) {
  // During the aggregation epoch at most ONE logical message crosses any
  // edge per round (Lemma 4) — no bundling ever happens there.
  for (const auto& [name, graph] : gen::standard_suite(20, 13)) {
    const auto result = run_distributed_bc(graph);
    ASSERT_GT(result.aggregation_epoch, 0u) << name;
    EXPECT_EQ(result.metrics.max_logical_on_edge_in(
                  result.aggregation_epoch, result.metrics.rounds),
              1u)
        << name;
  }
}

TEST(Pipeline, SendTimesMatchPaperFormula) {
  // T_s(u) = T_s + D - d(s,u) relative to the aggregation epoch.
  const Graph g = gen::figure1_example();
  DistributedBcOptions options;
  options.keep_tables = true;
  const auto result = run_distributed_bc(g, options);
  const std::uint32_t diam = result.diameter;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    for (const auto& entry : result.tables[v]) {
      if (entry.dist == 0) {
        continue;
      }
      EXPECT_EQ(entry.agg_send_round, result.aggregation_epoch +
                                          entry.t_start + diam - entry.dist)
          << "node " << v << " source " << entry.source;
    }
  }
}

TEST(Pipeline, TablesMatchCentralizedCounts) {
  Rng rng(17);
  const Graph g = gen::erdos_renyi_connected(18, 0.2, rng);
  DistributedBcOptions options;
  options.keep_tables = true;
  const auto result = run_distributed_bc(g, options);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    ASSERT_EQ(result.tables[v].size(), g.num_nodes());
    for (const auto& entry : result.tables[v]) {
      const auto dist = bfs_distances(g, entry.source);
      EXPECT_EQ(entry.dist, dist[v]);
      // sigma-hat brackets the exact count from above (ceil rounding).
      const auto sigma = count_shortest_paths(g, entry.source);
      EXPECT_GE(compare_with_big(entry.sigma, sigma[v]), 0);
      // ... within (1+eta)^D.
      const double eta = unit_relative_error(SoftFloatFormat::for_graph(18));
      const double bound = sigma[v].to_double() *
                           std::pow(1 + eta, result.diameter + 1);
      EXPECT_LE(entry.sigma.to_double(), bound);
      // Predecessor sets match Eq. (5).
      auto expected_preds = shortest_path_predecessors(g, entry.source)[v];
      auto actual = entry.preds;
      std::sort(actual.begin(), actual.end());
      std::sort(expected_preds.begin(), expected_preds.end());
      EXPECT_EQ(actual, expected_preds);
    }
  }
}

TEST(Pipeline, WavefrontSeparationHolds) {
  // check_invariants fires an InvariantError inside the run if two waves
  // ever share an edge-round; a clean run is the assertion.
  Rng rng(19);
  const Graph g = gen::erdos_renyi_connected(40, 0.08, rng);
  DistributedBcOptions options;
  options.check_invariants = true;
  EXPECT_NO_THROW(run_distributed_bc(g, options));
}

TEST(Pipeline, DfsExtraPauseStillCorrect) {
  DistributedBcOptions options;
  options.dfs_extra_pause = 3;
  const auto result = run_distributed_bc(gen::figure1_example(), options);
  EXPECT_NEAR(result.betweenness[1], 3.5, kTolerance);
}

TEST(Pipeline, SequentialAblationCorrectButSlower) {
  const Graph g = gen::path(16);
  DistributedBcOptions fast;
  DistributedBcOptions slow;
  slow.sequential_counting = true;
  const auto fast_result = run_distributed_bc(g, fast);
  const auto slow_result = run_distributed_bc(g, slow);
  const auto stats =
      compare_vectors(slow_result.betweenness, fast_result.betweenness, 1e-9);
  EXPECT_LT(stats.max_rel_error, 1e-9);
  // The drain pauses cost Theta(N*D) extra rounds.
  EXPECT_GT(slow_result.rounds, 2 * fast_result.rounds);
}

TEST(Pipeline, RebasedAggregationSavesRoundsExactly) {
  // Ablation D6: subtracting min_s T_s from every send time preserves all
  // orderings (bit-identical results) while trimming the idle replay.
  const Graph g = gen::path(24);
  DistributedBcOptions literal;
  DistributedBcOptions rebased;
  rebased.rebase_aggregation = true;
  const auto a = run_distributed_bc(g, literal);
  const auto b = run_distributed_bc(g, rebased);
  const auto stats = compare_vectors(b.betweenness, a.betweenness, 1e-12);
  EXPECT_EQ(stats.max_abs_error, 0.0);  // same arithmetic, same order
  EXPECT_LT(b.rounds, a.rounds);
  // Lemma 4 still holds on the rebased schedule.
  EXPECT_EQ(b.metrics.max_logical_on_edge_in(b.aggregation_epoch,
                                             b.metrics.rounds),
            1u);
}

TEST(Pipeline, RejectsDisconnectedGraph) {
  EXPECT_THROW(run_distributed_bc(Graph(4, {{0, 1}, {2, 3}})), InvariantError);
}

TEST(Pipeline, RejectsBadRoot) {
  DistributedBcOptions options;
  options.root = 5;
  EXPECT_THROW(run_distributed_bc(gen::path(3), options), PreconditionError);
}

TEST(Pipeline, MaxRoundsGuard) {
  DistributedBcOptions options;
  options.max_rounds = 10;  // far below what path(8) needs
  EXPECT_THROW(run_distributed_bc(gen::path(8), options), InvariantError);
}

TEST(Pipeline, NodeStateGrowsWithN) {
  // The per-node footprint is Theta(N log N) bits: monotone in N.
  const auto small = run_distributed_bc(gen::path(8));
  const auto large = run_distributed_bc(gen::path(64));
  EXPECT_GT(large.max_node_state_bytes, small.max_node_state_bytes);
  EXPECT_GT(small.max_node_state_bytes, 0u);
}

TEST(Pipeline, TinyBudgetFaults) {
  DistributedBcOptions options;
  options.budget_bits = 4;  // absurd: nothing fits
  EXPECT_THROW(run_distributed_bc(gen::path(4), options), InvariantError);
}

}  // namespace
}  // namespace congestbc
