// Property sweep over (family x size): for every workload the distributed
// pipeline must (a) match centralized Brandes within the soft-float error
// envelope, (b) stay within the CONGEST budget, (c) finish in O(N) rounds,
// and (d) keep the aggregation schedule collision-free (Lemma 4).
#include <gtest/gtest.h>

#include <cmath>

#include <tuple>

#include "algo/bc_pipeline.hpp"
#include "central/brandes.hpp"
#include "central/centralities.hpp"
#include "congest/network.hpp"
#include "core/validation.hpp"
#include "graph/generators.hpp"
#include "graph/properties.hpp"

namespace congestbc {
namespace {

class PipelineSweep
    : public ::testing::TestWithParam<std::tuple<int, NodeId>> {};

TEST_P(PipelineSweep, AllInvariants) {
  const auto [family_index, size] = GetParam();
  const auto suite = gen::standard_suite(size, 1234 + size);
  const auto& [name, graph] = suite[static_cast<std::size_t>(family_index)];
  SCOPED_TRACE(name + " N=" + std::to_string(graph.num_nodes()));

  const auto result = run_distributed_bc(graph);

  // (a) parity with Brandes
  const auto reference = brandes_bc(graph);
  const auto stats = compare_vectors(result.betweenness, reference, 1e-6);
  EXPECT_LT(stats.max_rel_error, 1e-6);

  // (b) CONGEST compliance
  EXPECT_LE(result.metrics.max_bits_on_edge_round,
            congest_budget_bits(graph.num_nodes()));

  // (c) linear rounds
  EXPECT_LE(result.rounds,
            8ull * graph.num_nodes() + 5ull * result.diameter + 60);

  // (d) Lemma 4 during aggregation
  EXPECT_EQ(result.metrics.max_logical_on_edge_in(result.aggregation_epoch,
                                                  result.metrics.rounds),
            1u);

  // (e) diameter correct
  EXPECT_EQ(result.diameter, diameter(graph));

  // (f) closeness parity (exact integers distributed, so tight tolerance)
  const auto cc = closeness_centrality(graph);
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    EXPECT_NEAR(result.closeness[v], cc[v], 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(
    FamilyBySize, PipelineSweep,
    ::testing::Combine(::testing::Range(0, 15),
                       ::testing::Values<NodeId>(12, 24, 40)),
    [](const ::testing::TestParamInfo<std::tuple<int, NodeId>>& param_info) {
      const auto suite = gen::standard_suite(std::get<1>(param_info.param), 0);
      std::string name =
          suite[static_cast<std::size_t>(std::get<0>(param_info.param))].name;
      for (auto& ch : name) {
        if (!std::isalnum(static_cast<unsigned char>(ch))) {
          ch = '_';
        }
      }
      return name + "_" + std::to_string(std::get<1>(param_info.param));
    });

class RoundingModeSweep
    : public ::testing::TestWithParam<std::pair<RoundingMode, RoundingMode>> {
};

TEST_P(RoundingModeSweep, StillAccurate) {
  // DESIGN.md D2: the paper's up/down split is one policy; nearest/nearest
  // and others must stay inside a similar envelope on benign graphs.
  const auto [sigma_mode, psi_mode] = GetParam();
  Rng rng(77);
  const Graph g = gen::erdos_renyi_connected(24, 0.15, rng);
  DistributedBcOptions options;
  options.sigma_rounding = sigma_mode;
  options.psi_rounding = psi_mode;
  const auto result = run_distributed_bc(g, options);
  const auto reference = brandes_bc(g);
  const auto stats = compare_vectors(result.betweenness, reference, 1e-6);
  EXPECT_LT(stats.max_rel_error, 1e-5);
}

INSTANTIATE_TEST_SUITE_P(
    Modes, RoundingModeSweep,
    ::testing::Values(
        std::make_pair(RoundingMode::kUp, RoundingMode::kDown),
        std::make_pair(RoundingMode::kNearest, RoundingMode::kNearest),
        std::make_pair(RoundingMode::kUp, RoundingMode::kUp),
        std::make_pair(RoundingMode::kDown, RoundingMode::kDown)));

class MantissaSweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(MantissaSweep, ErrorShrinksWithL) {
  // Corollary 1: error is O(2^-L); with the diamond chain's 2^20 path
  // counts, each added mantissa bit must keep the error under the
  // theoretical envelope (1+2^-(L-1))^(2D+2) - 1.
  const unsigned mantissa_bits = GetParam();
  const Graph g = gen::diamond_chain(20);
  DistributedBcOptions options;
  auto fmt = SoftFloatFormat::for_graph(g.num_nodes());
  fmt.mantissa_bits = mantissa_bits;
  options.format = fmt;
  options.budget_bits = 0;  // format sweep may exceed the default budget
  const auto result = run_distributed_bc(g, options);
  const auto reference = brandes_bc_exact(g);
  const auto stats = compare_vectors(result.betweenness, reference, 1e-6);
  const double eta = std::ldexp(1.0, -static_cast<int>(mantissa_bits) + 1);
  const double envelope =
      std::pow(1 + eta, 2.0 * diameter(g) + 4) - 1 + 1e-12;
  EXPECT_LT(stats.max_rel_error, envelope) << "L=" << mantissa_bits;
}

INSTANTIATE_TEST_SUITE_P(Widths, MantissaSweep,
                         ::testing::Values(12u, 16u, 24u, 32u, 48u));

class BudgetSweep : public ::testing::TestWithParam<int> {};

TEST_P(BudgetSweep, SucceedsAtOrAboveRequiredBudget) {
  // The budget constant is beta=16 words of log N; halving it below the
  // worst-case bundle must fault, comfortably above must pass.
  const Graph g = gen::grid(5, 5);
  DistributedBcOptions options;
  const std::uint64_t base = congest_budget_bits(g.num_nodes());
  const int scale_percent = GetParam();
  options.budget_bits = base * static_cast<std::uint64_t>(scale_percent) / 100;
  if (scale_percent >= 100) {
    EXPECT_NO_THROW(run_distributed_bc(g, options));
  } else if (scale_percent <= 25) {
    EXPECT_THROW(run_distributed_bc(g, options), InvariantError);
  } else {
    // Intermediate budgets may or may not fit; just must not crash in
    // other ways.
    try {
      run_distributed_bc(g, options);
    } catch (const InvariantError&) {
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Budgets, BudgetSweep,
                         ::testing::Values(10, 25, 50, 100, 200));

}  // namespace
}  // namespace congestbc
