// LRU result-cache tests (src/service/cache.hpp): eviction order,
// hit/miss/eviction counters, recency semantics of get vs peek, the
// capacity-zero disable switch, and the persisted-index key order.
#include <cstdint>
#include <memory>
#include <vector>

#include "gtest/gtest.h"
#include "service/cache.hpp"

namespace congestbc::service {
namespace {

std::shared_ptr<const CachedResult> entry(std::uint8_t tag) {
  auto result = std::make_shared<CachedResult>();
  result->block_bytes = {tag, tag, tag};
  result->block_bits = 24;
  result->run_status = tag;
  return result;
}

TEST(LruResultCache, HitAndMissCounters) {
  LruResultCache cache(4);
  EXPECT_EQ(cache.get(1), nullptr);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), 0u);

  cache.put(1, entry(1));
  const auto hit = cache.get(1);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->run_status, 1);
  EXPECT_EQ(hit->block_bytes, (std::vector<std::uint8_t>{1, 1, 1}));
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(LruResultCache, EvictsLeastRecentlyUsed) {
  LruResultCache cache(3);
  cache.put(1, entry(1));
  cache.put(2, entry(2));
  cache.put(3, entry(3));
  // Touch 1 so 2 becomes the LRU victim.
  ASSERT_NE(cache.get(1), nullptr);
  cache.put(4, entry(4));
  EXPECT_EQ(cache.size(), 3u);
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_EQ(cache.peek(2), nullptr);  // evicted
  EXPECT_NE(cache.peek(1), nullptr);
  EXPECT_NE(cache.peek(3), nullptr);
  EXPECT_NE(cache.peek(4), nullptr);
}

TEST(LruResultCache, PeekDoesNotTouchRecencyOrCounters) {
  LruResultCache cache(2);
  cache.put(1, entry(1));
  cache.put(2, entry(2));
  // peek(1) must NOT rescue 1 from eviction...
  EXPECT_NE(cache.peek(1), nullptr);
  cache.put(3, entry(3));
  EXPECT_EQ(cache.peek(1), nullptr);
  // ...and must not have counted hits or misses along the way.
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(cache.misses(), 0u);
}

TEST(LruResultCache, PutRefreshesValueAndRecency) {
  LruResultCache cache(2);
  cache.put(1, entry(1));
  cache.put(2, entry(2));
  cache.put(1, entry(9));  // refresh: new value, now most recent
  const auto refreshed = cache.peek(1);
  ASSERT_NE(refreshed, nullptr);
  EXPECT_EQ(refreshed->run_status, 9);
  cache.put(3, entry(3));
  EXPECT_EQ(cache.peek(2), nullptr);  // 2 was the LRU, not 1
  EXPECT_NE(cache.peek(1), nullptr);
}

TEST(LruResultCache, KeysLruOrderIsLeastToMostRecent) {
  LruResultCache cache(4);
  cache.put(1, entry(1));
  cache.put(2, entry(2));
  cache.put(3, entry(3));
  ASSERT_NE(cache.get(1), nullptr);  // 1 becomes most recent
  EXPECT_EQ(cache.keys_lru_order(), (std::vector<std::uint64_t>{2, 3, 1}));
  // Replaying that order through put() restores the same recency — the
  // daemon relies on this when it reloads the persisted index.
  LruResultCache replay(4);
  for (const auto fp : cache.keys_lru_order()) {
    replay.put(fp, cache.peek(fp));
  }
  EXPECT_EQ(replay.keys_lru_order(), cache.keys_lru_order());
}

TEST(LruResultCache, CapacityZeroDisablesCaching) {
  LruResultCache cache(0);
  cache.put(1, entry(1));
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.get(1), nullptr);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.evictions(), 0u);  // dropped puts are not "evictions"
}

TEST(LruResultCache, SharedPtrSurvivesEviction) {
  LruResultCache cache(1);
  cache.put(1, entry(1));
  const auto held = cache.get(1);  // a reply "being written out"
  cache.put(2, entry(2));          // evicts 1
  EXPECT_EQ(cache.peek(1), nullptr);
  ASSERT_NE(held, nullptr);        // but the bytes stay valid
  EXPECT_EQ(held->run_status, 1);
}

}  // namespace
}  // namespace congestbc::service
