#include "central/brandes.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/assert.hpp"
#include "core/validation.hpp"
#include "graph/generators.hpp"

namespace congestbc {
namespace {

// Hand-computable references (undirected, halved convention).

TEST(Brandes, PathGraph) {
  // On a path 0-1-2-3-4: C_B(v) = #pairs separated by v.
  const auto bc = brandes_bc(gen::path(5));
  EXPECT_DOUBLE_EQ(bc[0], 0.0);
  EXPECT_DOUBLE_EQ(bc[1], 3.0);  // pairs (0,2),(0,3),(0,4)
  EXPECT_DOUBLE_EQ(bc[2], 4.0);  // (0,3),(0,4),(1,3),(1,4)
  EXPECT_DOUBLE_EQ(bc[3], 3.0);
  EXPECT_DOUBLE_EQ(bc[4], 0.0);
}

TEST(Brandes, StarGraph) {
  // Center lies on every leaf pair: C(n-1, 2) pairs.
  const auto bc = brandes_bc(gen::star(6));
  EXPECT_DOUBLE_EQ(bc[0], 10.0);
  for (NodeId v = 1; v < 6; ++v) {
    EXPECT_DOUBLE_EQ(bc[v], 0.0);
  }
}

TEST(Brandes, CompleteGraphAllZero) {
  const auto bc = brandes_bc(gen::complete(7));
  for (const double value : bc) {
    EXPECT_DOUBLE_EQ(value, 0.0);
  }
}

TEST(Brandes, CycleGraph) {
  // Even cycle C6: for each pair at distance 3 there are 2 shortest paths.
  // By symmetry every node has the same value; total dependency over all
  // pairs: pairs at distance 2 contribute 1 interior node; pairs at
  // distance 3 (opposite) contribute 2*(1/2)=1 each over 2 paths... the
  // clean check is symmetry + the known value 2.0 for C6.
  const auto bc = brandes_bc(gen::cycle(6));
  for (const double value : bc) {
    EXPECT_DOUBLE_EQ(value, bc[0]);
  }
  EXPECT_DOUBLE_EQ(bc[0], 2.0);
}

TEST(Brandes, Figure1Example) {
  // The paper's worked example: C_B(v2) = 7/2.
  const auto bc = brandes_bc(gen::figure1_example());
  EXPECT_DOUBLE_EQ(bc[1], 3.5);
}

TEST(Brandes, UnhalvedConventionDoubles) {
  const BcOptions ordered{/*halve=*/false};
  const auto halved = brandes_bc(gen::path(6));
  const auto full = brandes_bc(gen::path(6), ordered);
  for (NodeId v = 0; v < 6; ++v) {
    EXPECT_DOUBLE_EQ(full[v], 2.0 * halved[v]);
  }
}

TEST(Brandes, MatchesNaiveDefinition) {
  Rng rng(5);
  for (int trial = 0; trial < 10; ++trial) {
    const Graph g = gen::erdos_renyi_connected(20, 0.15, rng);
    const auto fast = brandes_bc(g);
    const auto slow = naive_bc(g);
    const auto stats = compare_vectors(fast, slow);
    EXPECT_LT(stats.max_rel_error, 1e-9) << "trial " << trial;
  }
}

TEST(Brandes, ExactVariantMatchesDoubleOnSmallGraphs) {
  Rng rng(6);
  const Graph g = gen::erdos_renyi_connected(24, 0.2, rng);
  const auto fast = brandes_bc(g);
  const auto exact = brandes_bc_exact(g);
  const auto stats = compare_vectors(fast, exact);
  EXPECT_LT(stats.max_rel_error, 1e-9);
}

TEST(Brandes, ExactVariantHandlesExponentialCounts) {
  // 40 chained diamonds: sigma up to 2^40; 5-wide 30-deep blowup: 5^30.
  const Graph g = gen::layered_blowup(4, 24);
  const auto exact = brandes_bc_exact(g);
  for (const auto value : exact) {
    EXPECT_GE(value, 0.0L);
    EXPECT_TRUE(std::isfinite(static_cast<double>(value)));
  }
  // Every middle-layer node is symmetric: equal betweenness per layer.
  const auto bc1 = exact[1];
  for (NodeId v = 2; v <= 4; ++v) {
    EXPECT_NEAR(static_cast<double>(exact[v]), static_cast<double>(bc1), 1e-6);
  }
}

TEST(Brandes, CountShortestPathsDiamond) {
  const Graph g = gen::diamond_chain(3);
  const auto sigma = count_shortest_paths(g, 0);
  EXPECT_EQ(sigma[0], BigUint(1));
  EXPECT_EQ(sigma[g.num_nodes() - 1], BigUint(8));
}

TEST(Brandes, PredecessorsOnFigure1) {
  const Graph g = gen::figure1_example();
  const auto preds = shortest_path_predecessors(g, 0);  // source v1
  EXPECT_TRUE(preds[0].empty());
  EXPECT_EQ(preds[1], std::vector<NodeId>{0});
  EXPECT_EQ(preds[2], std::vector<NodeId>{1});
  EXPECT_EQ(preds[4], std::vector<NodeId>{1});
  EXPECT_EQ(preds[3], (std::vector<NodeId>{2, 4}));
}

TEST(Brandes, SampledEstimatorConvergesWithFullSampling) {
  Rng rng(7);
  const Graph g = gen::barabasi_albert(30, 2, rng);
  const auto reference = brandes_bc(g);
  Rng sample_rng(8);
  const auto estimate = sampled_bc(g, 30, sample_rng);
  const auto stats = compare_vectors(estimate, reference);
  EXPECT_LT(stats.max_rel_error, 1e-9);
}

TEST(Brandes, SampledEstimatorRoughOnPartialSampling) {
  Rng rng(9);
  const Graph g = gen::barabasi_albert(60, 2, rng);
  const auto reference = brandes_bc(g);
  Rng sample_rng(10);
  const auto estimate = sampled_bc(g, 30, sample_rng);
  // Ranking of top nodes should be largely preserved.
  EXPECT_GE(top_k_overlap(estimate, reference, 6), 0.5);
}

TEST(Brandes, DisconnectedGraphRejected) {
  const Graph g(4, {{0, 1}, {2, 3}});
  EXPECT_THROW(brandes_bc(g), PreconditionError);
}

TEST(Brandes, SampledRangeChecks) {
  Rng rng(11);
  const Graph g = gen::path(5);
  EXPECT_THROW(sampled_bc(g, 0, rng), PreconditionError);
  EXPECT_THROW(sampled_bc(g, 6, rng), PreconditionError);
}

}  // namespace
}  // namespace congestbc
