// Distributed APSP (the counting phase standalone — the paper's
// Algorithm 2 / the Holzer–Wattenhofer substrate).
#include <gtest/gtest.h>

#include "algo/apsp.hpp"
#include "central/brandes.hpp"
#include "graph/generators.hpp"
#include "graph/properties.hpp"

namespace congestbc {
namespace {

TEST(Apsp, DistancesMatchBfsEverywhere) {
  for (const auto& [name, graph] : gen::standard_suite(24, 321)) {
    const auto result = run_distributed_apsp(graph);
    for (NodeId s = 0; s < graph.num_nodes(); ++s) {
      const auto reference = bfs_distances(graph, s);
      for (NodeId v = 0; v < graph.num_nodes(); ++v) {
        ASSERT_EQ(result.distances[v][s], reference[v])
            << name << " s=" << s << " v=" << v;
      }
    }
  }
}

TEST(Apsp, SigmaExactBelowMantissa) {
  Rng rng(11);
  const Graph g = gen::erdos_renyi_connected(24, 0.2, rng);
  const auto result = run_distributed_apsp(g);
  for (NodeId s = 0; s < g.num_nodes(); ++s) {
    const auto exact = count_shortest_paths(g, s);
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      // Counts on a 24-node graph are far below 2^L: exactly represented.
      ASSERT_EQ(result.sigma[v][s], exact[v].to_double());
    }
  }
}

TEST(Apsp, DiameterAndEccentricities) {
  const Graph g = gen::grid(5, 7);
  const auto result = run_distributed_apsp(g);
  EXPECT_EQ(result.diameter, diameter(g));
  const auto ecc = eccentricities(g);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_EQ(result.eccentricities[v], ecc[v]);
  }
}

TEST(Apsp, CheaperThanFullPipeline) {
  const Graph g = gen::cycle(32);
  const auto apsp = run_distributed_apsp(g);
  const auto full = run_distributed_bc(g);
  EXPECT_LT(apsp.rounds, full.rounds);
  EXPECT_LT(apsp.metrics.total_bits, full.metrics.total_bits);
}

TEST(Apsp, StillLinearRounds) {
  for (const NodeId n : {16u, 32u, 64u}) {
    const auto result = run_distributed_apsp(gen::path(n));
    EXPECT_LE(result.rounds, 7ull * n + 60);
  }
}

TEST(Apsp, RestrictedSources) {
  const Graph g = gen::path(10);
  DistributedBcOptions options;
  std::vector<bool> sources(10, false);
  sources[0] = sources[9] = true;
  options.sources = sources;
  const auto result = run_distributed_apsp(g, options);
  for (NodeId v = 0; v < 10; ++v) {
    EXPECT_EQ(result.distances[v][0], v);
    EXPECT_EQ(result.distances[v][9], 9 - v);
    EXPECT_EQ(result.distances[v][4], kUnreachable);  // not a source
  }
}

}  // namespace
}  // namespace congestbc
