// Golden-file tests for the observability exporters: the Chrome trace
// JSON of a deterministic karate-club run and the Prometheus text of a
// fixed stats snapshot are compared byte-for-byte against committed
// goldens (tests/goldens/).
//
// Regenerating after an intentional format change (TESTING.md):
//   CONGESTBC_UPDATE_GOLDENS=1 ./build/tests/obs_golden_test
// rewrites the goldens in the source tree; review the diff and commit.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "algo/bc_pipeline.hpp"
#include "graph/io.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/histogram.hpp"
#include "obs/phase_profile.hpp"
#include "service/metrics.hpp"
#include "service/protocol.hpp"

namespace congestbc {
namespace {

std::string golden_path(const std::string& name) {
  return std::string(CONGESTBC_GOLDEN_DIR) + "/" + name;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return {};
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// Compares `actual` against the committed golden, or rewrites the golden
/// when CONGESTBC_UPDATE_GOLDENS is set in the environment.
void expect_matches_golden(const std::string& name, const std::string& actual) {
  const std::string path = golden_path(name);
  if (std::getenv("CONGESTBC_UPDATE_GOLDENS") != nullptr) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(out) << "cannot write golden " << path;
    out << actual;
    GTEST_SKIP() << "golden updated: " << path;
  }
  const std::string expected = read_file(path);
  ASSERT_FALSE(expected.empty())
      << "missing golden " << path
      << " (regenerate: CONGESTBC_UPDATE_GOLDENS=1 ./obs_golden_test)";
  EXPECT_EQ(actual, expected)
      << "exporter output drifted from " << path
      << "; if intentional, regenerate with CONGESTBC_UPDATE_GOLDENS=1";
}

TEST(ObsGolden, KarateChromeTrace) {
  std::ifstream in(std::string(CONGESTBC_DATA_DIR) + "/karate.txt");
  ASSERT_TRUE(in) << "data/karate.txt not found";
  const Graph g = read_edge_list(in);

  DistributedBcOptions options;  // defaults: deterministic run
  const auto result = run_distributed_bc(g, options);

  // Counters from the deterministic per-round metrics; no recorder spans
  // (wall-clock timings vary run to run, the logical track does not).
  std::vector<obs::CounterSeries> counters(2);
  counters[0].name = "bits_on_wire";
  counters[1].name = "physical_messages";
  for (const RoundStats& round : result.metrics.per_round) {
    counters[0].values.push_back(round.bits);
    counters[1].values.push_back(round.physical_messages);
  }
  std::vector<obs::TraceInstant> instants;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (result.bfs_start_rounds[v] > 0) {
      instants.push_back(
          {"wave s=" + std::to_string(v), result.bfs_start_rounds[v]});
    }
  }
  obs::ChromeTraceOptions trace_options;
  trace_options.include_recorder_spans = false;
  const std::string json = obs::chrome_trace_json(
      nullptr, result.phase_profile, counters, instants, trace_options);
  expect_matches_golden("karate_trace.json", json);
}

TEST(ObsGolden, PrometheusText) {
  // A fully fixed stats snapshot: every field distinct so a transposed
  // line is caught, not masked.
  service::StatsReply stats;
  stats.uptime_ms = 61'000;
  stats.submits = 120;
  stats.cache_hits = 30;
  stats.cache_misses = 80;
  stats.coalesced = 10;
  stats.busy_rejections = 3;
  stats.draining_rejections = 1;
  stats.jobs_completed = 70;
  stats.jobs_failed = 5;
  stats.jobs_cancelled = 4;
  stats.jobs_suspended = 2;
  stats.jobs_resumed = 2;
  stats.protocol_errors = 6;
  stats.queue_depth = 7;
  stats.running = 2;
  stats.workers = 4;
  stats.cache_entries = 48;
  stats.cache_evictions = 9;
  stats.retried_submits = 11;
  stats.deadline_rejections = 8;
  stats.deadline_expired = 13;
  stats.quarantined_files = 15;
  stats.mutations_applied = 21;
  stats.graph_version = 5;
  stats.dirty_sources_rerun = 17;
  stats.cache_invalidations = 16;
  stats.backend_downgrades = 19;
  stats.qps = 1.96721;
  stats.worker_utilization = 0.4375;
  stats.latency_p50_ms = 12.5;
  stats.latency_p90_ms = 80;
  stats.latency_p99_ms = 200;

  obs::Histogram latency;
  for (const std::uint64_t ms : {3ull, 9ull, 12ull, 14ull, 40ull, 80ull, 200ull}) {
    latency.add(ms);
  }
  obs::Histogram rounds;
  for (const std::uint64_t r : {41ull, 173ull, 680ull, 1405ull}) {
    rounds.add(r);
  }
  obs::Histogram throughput;
  for (const std::uint64_t rps : {900ull, 1400ull, 4100ull}) {
    throughput.add(rps);
  }
  const std::string text =
      service::prometheus_text(stats, latency, rounds, throughput);
  expect_matches_golden("metrics.prom", text);
}

#ifdef CONGESTBC_CLI_PATH
TEST(ObsGolden, TraceOutIsSchemaValidAndDoesNotPerturbResults) {
  // CLI-level bit-identity: --trace-out must not change a single output
  // byte, and the file it writes must be loadable Chrome trace JSON.
  const std::string dir =
      (std::filesystem::temp_directory_path() /
       ("congestbc_obs_golden_" + std::to_string(::getpid())))
          .string();
  std::filesystem::create_directories(dir);
  const std::string karate = std::string(CONGESTBC_DATA_DIR) + "/karate.txt";
  const std::string base =
      std::string(CONGESTBC_CLI_PATH) + " " + karate + " --json";
  const std::string plain = dir + "/plain.json";
  const std::string traced = dir + "/traced.json";
  const std::string trace_file = dir + "/trace.json";
  ASSERT_EQ(std::system((base + " > " + plain + " 2>/dev/null").c_str()), 0);
  ASSERT_EQ(std::system((base + " --trace-out " + trace_file + " > " +
                         traced + " 2>/dev/null")
                            .c_str()),
            0);
  const std::string out_plain = read_file(plain);
  const std::string out_traced = read_file(traced);
  ASSERT_FALSE(out_plain.empty());
  EXPECT_EQ(out_plain, out_traced)
      << "--trace-out changed the CLI's JSON output";

  const std::string trace = read_file(trace_file);
  ASSERT_FALSE(trace.empty()) << "trace file not written";
  EXPECT_EQ(trace.rfind("{\"traceEvents\":[", 0), 0u);
  EXPECT_NE(trace.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  EXPECT_NE(trace.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(trace.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_EQ(trace.back(), '\n');
  std::filesystem::remove_all(dir);
}
#endif  // CONGESTBC_CLI_PATH

}  // namespace
}  // namespace congestbc
