// The sampled-source estimator (related-work extension, Holzer thesis /
// Brandes–Pich): only k staggered BFS waves run, and every node scales the
// accumulated dependencies by N/k.
#include <gtest/gtest.h>

#include "algo/bc_pipeline.hpp"
#include "central/brandes.hpp"
#include "common/assert.hpp"
#include "core/validation.hpp"
#include "graph/generators.hpp"

namespace congestbc {
namespace {

std::vector<bool> mask_from_sample(NodeId n, std::size_t k, Rng& rng) {
  std::vector<bool> mask(n, false);
  for (const auto s : rng.sample_without_replacement(n, k)) {
    mask[static_cast<std::size_t>(s)] = true;
  }
  return mask;
}

TEST(Sampling, FullMaskEqualsExactAlgorithm) {
  const Graph g = gen::figure1_example();
  DistributedBcOptions options;
  options.sources = std::vector<bool>(5, true);
  const auto result = run_distributed_bc(g, options);
  EXPECT_NEAR(result.betweenness[1], 3.5, 1e-6);
}

TEST(Sampling, SingleSourceScalesDependencies) {
  // With only source v1 on the Figure-1 graph, the estimate for v2 is
  // N * delta_{v1}(v2) / (k=1) / 2 = 5 * 3 / 2.
  const Graph g = gen::figure1_example();
  DistributedBcOptions options;
  options.sources = std::vector<bool>{true, false, false, false, false};
  const auto result = run_distributed_bc(g, options);
  EXPECT_NEAR(result.betweenness[1], 5.0 * 3.0 / 2.0, 1e-6);
  // v4 lies on no shortest path from v1.
  EXPECT_NEAR(result.betweenness[3], 0.0, 1e-9);
}

TEST(Sampling, MatchesCentralizedRestrictedSum) {
  // For any source subset S, the distributed estimate equals
  // (N/|S|) * sum_{s in S} delta_s(v) / 2 — cross-check against a
  // centralized computation of the same restricted sum.
  Rng rng(3);
  const Graph g = gen::barabasi_albert(24, 2, rng);
  Rng mask_rng(4);
  const auto mask = mask_from_sample(g.num_nodes(), 8, mask_rng);

  DistributedBcOptions options;
  options.sources = mask;
  const auto result = run_distributed_bc(g, options);

  // Build the restricted reference directly from pair dependencies
  // (definition-level, independent of the Brandes code path).
  std::vector<double> reference(g.num_nodes(), 0.0);
  const NodeId n = g.num_nodes();
  std::vector<std::vector<std::uint32_t>> dist(n);
  std::vector<std::vector<long double>> sigma(n);
  for (NodeId s = 0; s < n; ++s) {
    dist[s].assign(n, 0);
    sigma[s].assign(n, 0.0L);
    // BFS counting
    std::vector<std::int64_t> d(n, -1);
    d[s] = 0;
    sigma[s][s] = 1.0L;
    std::size_t head = 0;
    std::vector<NodeId> order{s};
    while (head < order.size()) {
      const NodeId v = order[head++];
      for (const NodeId w : g.neighbors(v)) {
        if (d[w] < 0) {
          d[w] = d[v] + 1;
          order.push_back(w);
        }
        if (d[w] == d[v] + 1) {
          sigma[s][w] += sigma[s][v];
        }
      }
    }
    for (NodeId v = 0; v < n; ++v) {
      dist[s][v] = static_cast<std::uint32_t>(d[v]);
    }
  }
  std::size_t k = 0;
  for (NodeId s = 0; s < n; ++s) {
    if (!mask[s]) {
      continue;
    }
    ++k;
    for (NodeId t = 0; t < n; ++t) {
      if (t == s) {
        continue;
      }
      for (NodeId v = 0; v < n; ++v) {
        if (v != s && v != t && dist[s][v] + dist[v][t] == dist[s][t]) {
          reference[v] += static_cast<double>(sigma[s][v] * sigma[v][t] /
                                              sigma[s][t]);
        }
      }
    }
  }
  const double scale =
      static_cast<double>(n) / static_cast<double>(k) / 2.0;
  for (auto& value : reference) {
    value *= scale;
  }
  const auto stats = compare_vectors(result.betweenness, reference, 1e-6);
  EXPECT_LT(stats.max_rel_error, 1e-6);
}

TEST(Sampling, FewerSourcesFewerRounds) {
  Rng rng(5);
  const Graph g = gen::watts_strogatz(48, 2, 0.1, rng);
  DistributedBcOptions full;
  DistributedBcOptions sampled;
  Rng mask_rng(6);
  sampled.sources = mask_from_sample(g.num_nodes(), 8, mask_rng);
  const auto full_result = run_distributed_bc(g, full);
  const auto sampled_result = run_distributed_bc(g, sampled);
  EXPECT_LT(sampled_result.rounds, full_result.rounds);
}

TEST(Sampling, RankingLargelyPreserved) {
  Rng rng(7);
  const Graph g = gen::barabasi_albert(64, 2, rng);
  DistributedBcOptions options;
  Rng mask_rng(8);
  options.sources = mask_from_sample(g.num_nodes(), 32, mask_rng);
  const auto result = run_distributed_bc(g, options);
  const auto reference = brandes_bc(g);
  EXPECT_GE(top_k_overlap(result.betweenness, reference, 8), 0.5);
}

TEST(Sampling, SampledRunStillCongestCompliant) {
  Rng rng(9);
  const Graph g = gen::erdos_renyi_connected(40, 0.1, rng);
  DistributedBcOptions options;
  Rng mask_rng(10);
  options.sources = mask_from_sample(g.num_nodes(), 10, mask_rng);
  const auto result = run_distributed_bc(g, options);
  EXPECT_EQ(result.metrics.max_logical_on_edge_in(result.aggregation_epoch,
                                                  result.metrics.rounds),
            1u);
}

TEST(Sampling, RejectsEmptySourceSet) {
  DistributedBcOptions options;
  options.sources = std::vector<bool>(4, false);
  EXPECT_THROW(run_distributed_bc(gen::path(4), options), PreconditionError);
}

TEST(Sampling, RejectsWrongMaskSize) {
  DistributedBcOptions options;
  options.sources = std::vector<bool>(3, true);
  EXPECT_THROW(run_distributed_bc(gen::path(4), options), PreconditionError);
}

}  // namespace
}  // namespace congestbc
