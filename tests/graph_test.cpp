#include "graph/graph.hpp"

#include <gtest/gtest.h>

#include "common/assert.hpp"

namespace congestbc {
namespace {

TEST(Graph, EmptyGraph) {
  Graph g(0, {});
  EXPECT_EQ(g.num_nodes(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
}

TEST(Graph, IsolatedNodes) {
  Graph g(5, {});
  EXPECT_EQ(g.num_nodes(), 5u);
  EXPECT_EQ(g.num_edges(), 0u);
  for (NodeId v = 0; v < 5; ++v) {
    EXPECT_TRUE(g.neighbors(v).empty());
    EXPECT_EQ(g.degree(v), 0u);
  }
}

TEST(Graph, TriangleBasics) {
  Graph g(3, {{0, 1}, {1, 2}, {0, 2}});
  EXPECT_EQ(g.num_edges(), 3u);
  for (NodeId v = 0; v < 3; ++v) {
    EXPECT_EQ(g.degree(v), 2u);
  }
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 0));
  EXPECT_TRUE(g.has_edge(2, 0));
}

TEST(Graph, NormalizesAndDeduplicatesEdges) {
  Graph g(4, {{2, 1}, {1, 2}, {0, 3}, {3, 0}, {0, 3}});
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_EQ(g.edges()[0], (Edge{0, 3}));
  EXPECT_EQ(g.edges()[1], (Edge{1, 2}));
}

TEST(Graph, NeighborsSorted) {
  Graph g(6, {{0, 5}, {0, 2}, {0, 4}, {0, 1}});
  const auto nbrs = g.neighbors(0);
  ASSERT_EQ(nbrs.size(), 4u);
  EXPECT_EQ(nbrs[0], 1u);
  EXPECT_EQ(nbrs[1], 2u);
  EXPECT_EQ(nbrs[2], 4u);
  EXPECT_EQ(nbrs[3], 5u);
}

TEST(Graph, RejectsSelfLoop) {
  EXPECT_THROW(Graph(3, {{1, 1}}), PreconditionError);
}

TEST(Graph, RejectsOutOfRangeEndpoint) {
  EXPECT_THROW(Graph(3, {{0, 3}}), PreconditionError);
}

TEST(Graph, NeighborsOutOfRangeThrows) {
  Graph g(2, {{0, 1}});
  EXPECT_THROW(g.neighbors(2), PreconditionError);
  EXPECT_THROW(g.degree(5), PreconditionError);
}

TEST(Graph, MaxDegree) {
  Graph g(5, {{0, 1}, {0, 2}, {0, 3}, {3, 4}});
  EXPECT_EQ(g.max_degree(), 3u);
}

TEST(GraphBuilder, IncrementalConstruction) {
  GraphBuilder builder;
  const NodeId a = builder.add_node();
  const NodeId b = builder.add_node();
  const NodeId c = builder.add_node();
  builder.add_edge(a, b);
  builder.add_edge(b, c);
  const Graph g = std::move(builder).build();
  EXPECT_EQ(g.num_nodes(), 3u);
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_TRUE(g.has_edge(a, b));
  EXPECT_FALSE(g.has_edge(a, c));
}

TEST(GraphBuilder, EnsureNodeGrowsGraph) {
  GraphBuilder builder;
  builder.ensure_node(9);
  EXPECT_EQ(builder.num_nodes(), 10u);
  builder.add_edge(0, 9);
  const Graph g = std::move(builder).build();
  EXPECT_EQ(g.num_nodes(), 10u);
  EXPECT_TRUE(g.has_edge(0, 9));
}

TEST(GraphBuilder, AddEdgeCreatesEndpoints) {
  GraphBuilder builder;
  builder.add_edge(3, 7);
  EXPECT_EQ(builder.num_nodes(), 8u);
}

TEST(GraphBuilder, RejectsSelfLoop) {
  GraphBuilder builder;
  EXPECT_THROW(builder.add_edge(2, 2), PreconditionError);
}

}  // namespace
}  // namespace congestbc
