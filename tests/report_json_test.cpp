#include "core/report_json.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/assert.hpp"
#include "graph/generators.hpp"

namespace congestbc {
namespace {

TEST(JsonWriter, Primitives) {
  JsonWriter json;
  json.begin_object();
  json.key("name").value(std::string("x"));
  json.key("count").value(std::uint64_t{42});
  json.key("ratio").value(0.5);
  json.key("flag").value(true);
  json.end_object();
  EXPECT_EQ(json.str(),
            R"({"name":"x","count":42,"ratio":0.5,"flag":true})");
}

TEST(JsonWriter, NestedStructures) {
  JsonWriter json;
  json.begin_object();
  json.key("values").begin_array();
  json.value(std::uint64_t{1});
  json.value(std::uint64_t{2});
  json.end_array();
  json.key("inner").begin_object();
  json.key("a").value(std::uint64_t{3});
  json.end_object();
  json.end_object();
  EXPECT_EQ(json.str(), R"({"values":[1,2],"inner":{"a":3}})");
}

TEST(JsonWriter, EscapesStrings) {
  JsonWriter json;
  json.begin_object();
  json.key("text").value(std::string("a\"b\\c\nd"));
  json.end_object();
  EXPECT_EQ(json.str(), "{\"text\":\"a\\\"b\\\\c\\nd\"}");
}

TEST(JsonWriter, RejectsNonFinite) {
  JsonWriter json;
  json.begin_array();
  EXPECT_THROW(json.value(std::nan("")), PreconditionError);
}

TEST(JsonWriter, UnbalancedCloseThrows) {
  JsonWriter json;
  EXPECT_THROW(json.end_object(), PreconditionError);
}

TEST(ReportJson, DistributedResultRoundTripFields) {
  const auto result = run_distributed_bc(gen::figure1_example());
  const std::string text = to_json(result);
  // Spot-check structure without a JSON parser dependency.
  EXPECT_NE(text.find("\"betweenness\":["), std::string::npos);
  EXPECT_NE(text.find("\"diameter\":3"), std::string::npos);
  EXPECT_NE(text.find("\"rounds\":"), std::string::npos);
  EXPECT_NE(text.find("\"metrics\":{"), std::string::npos);
  EXPECT_NE(text.find("3.5"), std::string::npos);  // C_B(v2)
  EXPECT_EQ(text.front(), '{');
  EXPECT_EQ(text.back(), '}');
}

TEST(ReportJson, AnalysisReportIncludesParity) {
  Runner runner(gen::figure1_example());
  const auto report = runner.analyze();
  const std::string text = to_json(report);
  EXPECT_NE(text.find("\"parity\":{"), std::string::npos);
  EXPECT_NE(text.find("\"max_rel_error\":"), std::string::npos);
  EXPECT_NE(text.find("\"summary\":\""), std::string::npos);
}

TEST(ReportJson, BalancedBrackets) {
  Runner runner(gen::grid(3, 3));
  const auto report = runner.analyze();
  const std::string text = to_json(report);
  int depth = 0;
  bool in_string = false;
  bool escaped = false;
  for (const char ch : text) {
    if (escaped) {
      escaped = false;
      continue;
    }
    if (ch == '\\') {
      escaped = true;
      continue;
    }
    if (ch == '"') {
      in_string = !in_string;
      continue;
    }
    if (in_string) {
      continue;
    }
    if (ch == '{' || ch == '[') {
      ++depth;
    } else if (ch == '}' || ch == ']') {
      --depth;
      EXPECT_GE(depth, 0);
    }
  }
  EXPECT_EQ(depth, 0);
  EXPECT_FALSE(in_string);
}

}  // namespace
}  // namespace congestbc
