#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/assert.hpp"

namespace congestbc {
namespace {

TEST(Rng, Deterministic) {
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) {
      ++equal;
    }
  }
  EXPECT_LT(equal, 5);
}

TEST(Rng, NextBelowInRange) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
  }
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.next_below(1), 0u);
  }
}

TEST(Rng, NextBelowCoversAllValues) {
  Rng rng(5);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) {
    seen.insert(rng.next_below(8));
  }
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, NextInRangeInclusive) {
  Rng rng(11);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 500; ++i) {
    const auto v = rng.next_in_range(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(17);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.next_bernoulli(0.0));
    EXPECT_TRUE(rng.next_bernoulli(1.0));
  }
}

TEST(Rng, BernoulliRoughlyFair) {
  Rng rng(19);
  int heads = 0;
  for (int i = 0; i < 10000; ++i) {
    heads += rng.next_bernoulli(0.5) ? 1 : 0;
  }
  EXPECT_GT(heads, 4500);
  EXPECT_LT(heads, 5500);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(23);
  std::vector<int> items{1, 2, 3, 4, 5, 6, 7, 8};
  auto shuffled = items;
  rng.shuffle(shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, items);
}

TEST(Rng, SampleWithoutReplacement) {
  Rng rng(29);
  const auto sample = rng.sample_without_replacement(100, 10);
  EXPECT_EQ(sample.size(), 10u);
  EXPECT_TRUE(std::is_sorted(sample.begin(), sample.end()));
  EXPECT_TRUE(std::adjacent_find(sample.begin(), sample.end()) == sample.end());
  for (const auto v : sample) {
    EXPECT_LT(v, 100u);
  }
}

TEST(Rng, SampleFullUniverse) {
  Rng rng(31);
  const auto sample = rng.sample_without_replacement(5, 5);
  EXPECT_EQ(sample, (std::vector<std::uint64_t>{0, 1, 2, 3, 4}));
}

TEST(Rng, SampleRejectsOversizedRequest) {
  Rng rng(37);
  EXPECT_THROW(rng.sample_without_replacement(3, 4), PreconditionError);
}

}  // namespace
}  // namespace congestbc
