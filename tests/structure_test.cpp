#include "graph/structure.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "central/brandes.hpp"
#include "common/rng.hpp"
#include "graph/generators.hpp"
#include "graph/properties.hpp"

namespace congestbc {
namespace {

TEST(Components, SingleComponent) {
  const Graph g = gen::cycle(6);
  EXPECT_EQ(component_count(g), 1u);
  const auto comp = connected_components(g);
  for (const auto c : comp) {
    EXPECT_EQ(c, 0u);
  }
}

TEST(Components, MultipleComponents) {
  const Graph g(7, {{0, 1}, {1, 2}, {3, 4}});
  EXPECT_EQ(component_count(g), 4u);  // {0,1,2}, {3,4}, {5}, {6}
  const auto comp = connected_components(g);
  EXPECT_EQ(comp[0], comp[1]);
  EXPECT_EQ(comp[1], comp[2]);
  EXPECT_EQ(comp[3], comp[4]);
  EXPECT_NE(comp[0], comp[3]);
  EXPECT_NE(comp[5], comp[6]);
}

TEST(Components, EmptyGraph) {
  EXPECT_EQ(component_count(Graph(0, {})), 0u);
}

TEST(Bridges, EveryTreeEdgeIsABridge) {
  Rng rng(1);
  const Graph g = gen::random_tree(30, rng);
  const auto found = bridges(g);
  EXPECT_EQ(found.size(), g.num_edges());
  EXPECT_EQ(found, g.edges());  // both sorted
}

TEST(Bridges, CycleHasNone) {
  EXPECT_TRUE(bridges(gen::cycle(8)).empty());
  EXPECT_TRUE(bridges(gen::complete(5)).empty());
}

TEST(Bridges, BarbellBridgePath) {
  // barbell(4, 2): cliques 0-3 and 6-9, path 3-4-5-6.
  const Graph g = gen::barbell(4, 2);
  const auto found = bridges(g);
  EXPECT_EQ(found, (std::vector<Edge>{{3, 4}, {4, 5}, {5, 6}}));
}

TEST(Bridges, MatchesRemovalDefinition) {
  Rng rng(2);
  for (int trial = 0; trial < 10; ++trial) {
    const Graph g = gen::erdos_renyi_connected(16, 0.12, rng);
    const auto found = bridges(g);
    for (const auto& e : g.edges()) {
      // Remove e; the edge is a bridge iff the graph disconnects.
      std::vector<Edge> remaining;
      for (const auto& other : g.edges()) {
        if (other != e) {
          remaining.push_back(other);
        }
      }
      const Graph without(g.num_nodes(), std::move(remaining));
      const bool disconnects = component_count(without) > 1;
      const bool reported =
          std::binary_search(found.begin(), found.end(), e);
      EXPECT_EQ(reported, disconnects)
          << "trial " << trial << " edge " << e.u << "-" << e.v;
    }
  }
}

TEST(Articulation, StarCenter) {
  const auto points = articulation_points(gen::star(6));
  EXPECT_EQ(points, std::vector<NodeId>{0});
}

TEST(Articulation, CycleHasNone) {
  EXPECT_TRUE(articulation_points(gen::cycle(7)).empty());
}

TEST(Articulation, PathInteriorNodes) {
  const auto points = articulation_points(gen::path(5));
  EXPECT_EQ(points, (std::vector<NodeId>{1, 2, 3}));
}

TEST(Articulation, MatchesRemovalDefinition) {
  Rng rng(3);
  for (int trial = 0; trial < 10; ++trial) {
    const Graph g = gen::erdos_renyi_connected(14, 0.15, rng);
    const auto points = articulation_points(g);
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      // Remove v; articulation iff the rest splits.
      std::vector<Edge> remaining;
      for (const auto& e : g.edges()) {
        if (e.u != v && e.v != v) {
          remaining.push_back(e);
        }
      }
      // Count components among the surviving nodes.
      const Graph without(g.num_nodes(), std::move(remaining));
      const auto comp = connected_components(without);
      std::vector<std::uint32_t> seen;
      for (NodeId w = 0; w < g.num_nodes(); ++w) {
        if (w != v) {
          seen.push_back(comp[w]);
        }
      }
      std::sort(seen.begin(), seen.end());
      seen.erase(std::unique(seen.begin(), seen.end()), seen.end());
      const bool splits = seen.size() > 1;
      const bool reported =
          std::binary_search(points.begin(), points.end(), v);
      EXPECT_EQ(reported, splits) << "trial " << trial << " node " << v;
    }
  }
}

TEST(Articulation, PositiveBetweennessAtEveryArticulationPoint) {
  // An articulation point separates at least one pair, so its (exact)
  // betweenness is strictly positive — the structural cross-check that
  // ties this module to the paper's subject.
  Rng rng(4);
  for (int trial = 0; trial < 6; ++trial) {
    const Graph g = gen::erdos_renyi_connected(20, 0.1, rng);
    const auto points = articulation_points(g);
    const auto bc = brandes_bc(g);
    for (const NodeId v : points) {
      EXPECT_GT(bc[v], 0.99) << "trial " << trial << " node " << v;
    }
  }
}

TEST(Bridges, EndpointsCarryAllCrossTraffic) {
  // Removing a bridge splits the graph into sides of size a and b; each
  // interior endpoint of the bridge has betweenness >= (a*b - something)
  // ... at minimum, a bridge endpoint with degree > 1 has positive BC.
  const Graph g = gen::barbell(5, 1);
  const auto found = bridges(g);
  ASSERT_FALSE(found.empty());
  const auto bc = brandes_bc(g);
  for (const auto& e : found) {
    EXPECT_GT(bc[e.u] + bc[e.v], 0.0);
  }
}

}  // namespace
}  // namespace congestbc
