// Chaos-hardening tests for the serving path (ctest label: chaos).
//
// Three layers, matching the robustness contract:
//   * SpoolJournal: the admit/terminal lifecycle log survives kill -9 —
//     torn tails truncate away, corrupt records end replay at the last
//     intact prefix, and net admit counts distinguish live work from the
//     leftovers of finished work.
//   * ChaosProxy + RetryingClient: under every seeded plan of socket
//     adversity (corruption, stalls, torn frames, RSTs, partial writes)
//     the self-healing client converges on the byte-identical result a
//     clean run produces, or a typed error within its deadline — never a
//     hang, never a duplicated execution.
//   * Crash-safe daemon state: startup quarantines corrupt spool/cache/
//     checkpoint files instead of trusting or dying on them, stale .req
//     files of journal-retired jobs are removed (not re-run), and client
//     deadlines are enforced at admission, in the queue, and mid-run.
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "algo/bc_pipeline.hpp"
#include "common/assert.hpp"
#include "core/runner.hpp"
#include "graph/generators.hpp"
#include "graph/graph.hpp"
#include "graph/io.hpp"
#include "gtest/gtest.h"
#include "service/chaos.hpp"
#include "service/client.hpp"
#include "service/daemon.hpp"
#include "service/journal.hpp"
#include "service/protocol.hpp"
#include "service/retry.hpp"
#include "snapshot/snapshot.hpp"

namespace congestbc::service {
namespace {

namespace fs = std::filesystem;

class TempDir {
 public:
  explicit TempDir(const std::string& tag)
      : path_(fs::temp_directory_path() /
              ("congestbc_chaos_test_" + tag + "_" +
               std::to_string(static_cast<unsigned long>(::getpid())))) {
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~TempDir() { fs::remove_all(path_); }
  const fs::path& path() const { return path_; }
  std::string str() const { return path_.string(); }

 private:
  fs::path path_;
};

class DaemonHarness {
 public:
  explicit DaemonHarness(DaemonConfig config) : daemon_(std::move(config)) {
    daemon_.start();
    daemon_.serve_async();
  }
  ~DaemonHarness() { stop(); }

  void stop() {
    if (!stopped_) {
      daemon_.request_drain();
      daemon_.wait();
      stopped_ = true;
    }
  }

  Daemon& daemon() { return daemon_; }

  void connect(Client& client) { client.connect("127.0.0.1", daemon_.port()); }

 private:
  Daemon daemon_;
  bool stopped_ = false;
};

std::string data_file(const std::string& name) {
  std::ifstream in(std::string(CONGESTBC_DATA_DIR) + "/" + name,
                   std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing data file " << name;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

SubmitRequest inline_submit(const std::string& text) {
  SubmitRequest submit;
  submit.source = GraphSource::kInline;
  submit.graph = text;
  return submit;
}

/// Bit-exact comparison of a served block against a direct local run —
/// the daemon (and every chaos layer in front of it) adds serving, not
/// numerics.
void expect_matches_local_run(const ResultReply& reply, const Graph& graph,
                              const DistributedBcOptions& options) {
  ASSERT_TRUE(reply.ready) << reply.detail;
  BitReader reader(reply.block_bytes.data(),
                   static_cast<std::size_t>(reply.block_bits));
  const ResultBlock block = decode_result_block(reader);
  const RunOutcome fresh = run_bc_with_watchdog(graph, options);
  ASSERT_EQ(fresh.status, RunStatus::kComplete) << fresh.detail;
  EXPECT_EQ(block.run_status, static_cast<std::uint8_t>(RunStatus::kComplete));
  EXPECT_EQ(block.rounds, fresh.result.rounds);
  EXPECT_EQ(block.diameter, fresh.result.diameter);
  EXPECT_EQ(block.total_bits, fresh.result.metrics.total_bits);
  ASSERT_EQ(block.betweenness.size(), fresh.result.betweenness.size());
  for (std::size_t v = 0; v < block.betweenness.size(); ++v) {
    EXPECT_EQ(block.betweenness[v], fresh.result.betweenness[v]) << v;
  }
  EXPECT_EQ(block.eccentricities, fresh.result.eccentricities);
}

// ------------------------------------------------------ spool journal

TEST(SpoolJournal, FreshFileRecoversEmpty) {
  TempDir dir("journal_fresh");
  SpoolJournal journal((dir.path() / "journal.log").string());
  const SpoolJournal::Recovery recovery = journal.open_and_recover();
  EXPECT_TRUE(recovery.live.empty());
  EXPECT_TRUE(recovery.retired.empty());
  EXPECT_EQ(recovery.records, 0u);
  EXPECT_EQ(recovery.torn_bytes, 0u);
}

TEST(SpoolJournal, NetCountsSeparateLiveFromRetired) {
  TempDir dir("journal_net");
  const std::string path = (dir.path() / "journal.log").string();
  {
    SpoolJournal journal(path);
    journal.open_and_recover();
    journal.append(SpoolJournal::Record::kAdmit, 0xAAAA);
    journal.append(SpoolJournal::Record::kAdmit, 0xBBBB);
    journal.append(SpoolJournal::Record::kTerminal, 0xBBBB);
  }
  SpoolJournal journal(path);
  const SpoolJournal::Recovery recovery = journal.open_and_recover();
  ASSERT_EQ(recovery.live.size(), 1u);
  EXPECT_EQ(recovery.live[0], 0xAAAAu);
  ASSERT_EQ(recovery.retired.size(), 1u);
  EXPECT_EQ(recovery.retired[0], 0xBBBBu);
  EXPECT_EQ(recovery.records, 3u);
}

TEST(SpoolJournal, AdmitTerminalAdmitCycleIsLiveAgain) {
  TempDir dir("journal_cycle");
  const std::string path = (dir.path() / "journal.log").string();
  {
    SpoolJournal journal(path);
    journal.open_and_recover();
    journal.append(SpoolJournal::Record::kAdmit, 7);
    journal.append(SpoolJournal::Record::kTerminal, 7);
    journal.append(SpoolJournal::Record::kAdmit, 7);
  }
  SpoolJournal journal(path);
  const SpoolJournal::Recovery recovery = journal.open_and_recover();
  ASSERT_EQ(recovery.live.size(), 1u);
  EXPECT_EQ(recovery.live[0], 7u);
  EXPECT_TRUE(recovery.retired.empty());
}

TEST(SpoolJournal, TornTailIsTruncatedAndFileStaysAppendable) {
  TempDir dir("journal_torn");
  const std::string path = (dir.path() / "journal.log").string();
  {
    SpoolJournal journal(path);
    journal.open_and_recover();
    journal.append(SpoolJournal::Record::kAdmit, 1);
    journal.append(SpoolJournal::Record::kAdmit, 2);
  }
  {
    // The half record a kill -9 mid-append can leave behind.
    std::ofstream out(path, std::ios::binary | std::ios::app);
    out.write("\x01garbage", 7);
  }
  {
    SpoolJournal journal(path);
    const SpoolJournal::Recovery recovery = journal.open_and_recover();
    EXPECT_EQ(recovery.records, 2u);
    EXPECT_EQ(recovery.torn_bytes, 7u);
    EXPECT_EQ(recovery.live.size(), 2u);
    journal.append(SpoolJournal::Record::kTerminal, 1);
  }
  SpoolJournal journal(path);
  const SpoolJournal::Recovery recovery = journal.open_and_recover();
  EXPECT_EQ(recovery.records, 3u);
  EXPECT_EQ(recovery.torn_bytes, 0u);
  ASSERT_EQ(recovery.live.size(), 1u);
  EXPECT_EQ(recovery.live[0], 2u);
}

TEST(SpoolJournal, CorruptRecordEndsReplayAtLastIntactPrefix) {
  TempDir dir("journal_corrupt");
  const std::string path = (dir.path() / "journal.log").string();
  {
    SpoolJournal journal(path);
    journal.open_and_recover();
    journal.append(SpoolJournal::Record::kAdmit, 1);
    journal.append(SpoolJournal::Record::kAdmit, 2);
    journal.append(SpoolJournal::Record::kAdmit, 3);
  }
  {
    // Flip one byte inside the second record: its FNV guard must catch it
    // and replay must stop there (everything after is untrustworthy).
    std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(17 + 5);
    f.put('\x5A');
  }
  SpoolJournal journal(path);
  const SpoolJournal::Recovery recovery = journal.open_and_recover();
  EXPECT_EQ(recovery.records, 1u);
  ASSERT_EQ(recovery.live.size(), 1u);
  EXPECT_EQ(recovery.live[0], 1u);
}

TEST(SpoolJournal, CompactEmptyDropsHistory) {
  TempDir dir("journal_compact");
  const std::string path = (dir.path() / "journal.log").string();
  SpoolJournal journal(path);
  journal.open_and_recover();
  journal.append(SpoolJournal::Record::kAdmit, 11);
  journal.append(SpoolJournal::Record::kTerminal, 11);
  journal.compact({});
  journal.append(SpoolJournal::Record::kAdmit, 22);
  journal.close();

  SpoolJournal reopened(path);
  const SpoolJournal::Recovery recovery = reopened.open_and_recover();
  EXPECT_EQ(recovery.records, 1u);
  ASSERT_EQ(recovery.live.size(), 1u);
  EXPECT_EQ(recovery.live[0], 22u);
}

// --------------------------------------------------------- chaos plan

TEST(ChaosPlanSpec, ParsesEveryKeyAndDescribes) {
  const ChaosPlan plan = ChaosPlan::parse(
      "seed=9,corrupt=0.1,stall=0.2,cut=0.05,rst=0.01,stall-ms=7,"
      "partial=64,grace=3");
  EXPECT_EQ(plan.seed, 9u);
  EXPECT_DOUBLE_EQ(plan.corrupt_probability, 0.1);
  EXPECT_DOUBLE_EQ(plan.stall_probability, 0.2);
  EXPECT_DOUBLE_EQ(plan.cut_probability, 0.05);
  EXPECT_DOUBLE_EQ(plan.rst_probability, 0.01);
  EXPECT_EQ(plan.stall_ms, 7u);
  EXPECT_EQ(plan.partial_cap, 64u);
  EXPECT_EQ(plan.grace_chunks, 3u);
  EXPECT_FALSE(plan.empty());
  EXPECT_FALSE(plan.describe().empty());
  EXPECT_TRUE(ChaosPlan{}.empty());
}

TEST(ChaosPlanSpec, RejectsGarbage) {
  EXPECT_THROW(ChaosPlan::parse("corrupt=1.5"), PreconditionError);
  EXPECT_THROW(ChaosPlan::parse("corrupt=0.6,stall=0.6"), PreconditionError);
  EXPECT_THROW(ChaosPlan::parse("nosuchkey=1"), PreconditionError);
  EXPECT_THROW(ChaosPlan::parse("corrupt"), PreconditionError);
}

TEST(ChaosProxyRelay, EmptyPlanIsAFaithfulRelay) {
  DaemonHarness harness(DaemonConfig{});
  ChaosProxy proxy(ChaosPlan{}, "127.0.0.1", harness.daemon().port());
  proxy.start();

  const std::string karate = data_file("karate.txt");
  Client via_proxy;
  via_proxy.connect("127.0.0.1", proxy.port());
  const SubmitReply admitted = via_proxy.submit(inline_submit(karate));
  ASSERT_NE(admitted.job_id, 0u) << admitted.detail;
  const ResultReply reply = via_proxy.wait_result(admitted.job_id);
  expect_matches_local_run(reply, read_edge_list_text(karate),
                           DistributedBcOptions{});
  proxy.stop();
  EXPECT_GE(proxy.stats().connections.load(), 1u);
  EXPECT_EQ(proxy.stats().corrupted.load(), 0u);
  EXPECT_EQ(proxy.stats().cut.load(), 0u);
}

// ------------------------------------------- the self-healing matrix

RetryPolicy chaos_policy(std::uint64_t seed) {
  RetryPolicy policy;
  policy.max_attempts = 12;
  policy.initial_backoff_ms = 5;
  policy.max_backoff_ms = 100;
  policy.jitter_seed = seed;
  policy.overall_deadline_ms = 60'000;
  policy.attempt_timeout_ms = 10'000;
  policy.poll_ms = 5;
  return policy;
}

// Every seeded plan of moderate adversity must converge on the
// byte-identical result of a clean local run — the acceptance criterion
// of the chaos matrix.  Plans are chosen so each primary fault kind
// (corruption, stalls, torn frames, partial writes, mixtures) fires.
TEST(ChaosMatrix, SeededPlansConvergeToByteIdenticalResults) {
  const std::string karate = data_file("karate.txt");
  const Graph graph = read_edge_list_text(karate);
  const std::vector<std::string> specs = {
      "seed=1,corrupt=0.08,grace=1",
      "seed=2,stall=0.3,stall-ms=10",
      "seed=3,cut=0.06,grace=2",
      "seed=4,partial=48",
      "seed=5,corrupt=0.04,stall=0.1,stall-ms=5,cut=0.03,partial=256,grace=2",
  };
  for (const std::string& spec : specs) {
    SCOPED_TRACE(spec);
    DaemonHarness harness(DaemonConfig{});
    ChaosProxy proxy(ChaosPlan::parse(spec), "127.0.0.1",
                     harness.daemon().port());
    proxy.start();

    RetryingClient client("127.0.0.1", proxy.port(),
                          chaos_policy(proxy.plan().seed));
    const ResultReply reply = client.submit_and_wait(inline_submit(karate));
    expect_matches_local_run(reply, graph, DistributedBcOptions{});
    EXPECT_GE(client.stats().attempts, 1u);
    proxy.stop();
    EXPECT_GT(proxy.stats().chunks.load(), 0u);

    // Exactly one execution happened, however many attempts the healing
    // needed: retries coalesced or hit the cache, they never re-ran.
    Client direct;
    harness.connect(direct);
    const StatsReply stats = direct.stats();
    EXPECT_EQ(stats.jobs_completed, 1u) << "retries must not duplicate work";
    EXPECT_EQ(stats.retried_submits + 1, client.stats().attempts);
  }
}

// A hostile plan may defeat the budget — but the failure must be a typed
// error within the deadline, never a hang, and the daemon must survive.
TEST(ChaosMatrix, HostilePlanYieldsResultOrTypedErrorWithinDeadline) {
  const std::string karate = data_file("karate.txt");
  DaemonHarness harness(DaemonConfig{});
  ChaosProxy proxy(ChaosPlan::parse("seed=11,corrupt=0.45,rst=0.35"),
                   "127.0.0.1", harness.daemon().port());
  proxy.start();

  RetryPolicy policy = chaos_policy(11);
  policy.overall_deadline_ms = 5'000;
  RetryingClient client("127.0.0.1", proxy.port(), policy);

  const auto t0 = std::chrono::steady_clock::now();
  bool typed_outcome = false;
  try {
    const ResultReply reply = client.submit_and_wait(inline_submit(karate));
    typed_outcome = reply.ready;
  } catch (const RetryError&) {
    typed_outcome = true;  // typed failure is an acceptable cell outcome
  }
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                           std::chrono::steady_clock::now() - t0)
                           .count();
  EXPECT_TRUE(typed_outcome);
  EXPECT_LT(elapsed, 30'000) << "retry loop must respect its deadline";
  proxy.stop();

  // The daemon took corrupted frames and RSTs on the chin and serves on.
  Client direct;
  harness.connect(direct);
  const SubmitReply after = direct.submit(inline_submit(karate));
  EXPECT_NE(after.job_id, 0u) << after.detail;
  EXPECT_TRUE(direct.wait_result(after.job_id).ready);
}

// ------------------------------------------------- crash-safe state

/// Writes a spool job file exactly as Daemon::spool_write_job does, for
/// the default-config canonical form of an inline submit of `text`.
std::uint64_t craft_spool_req(const fs::path& spool, const std::string& text) {
  const Graph graph = read_edge_list_text(text);
  DistributedBcOptions options;
  options.halve = true;
  options.max_rounds = 50'000'000;  // DaemonConfig default cap
  options.threads = 1;              // DaemonConfig default_threads
  const std::uint64_t fp = run_fingerprint(graph, options);

  SubmitRequest canonical;
  canonical.source = GraphSource::kInline;
  canonical.graph = write_edge_list_text(graph);
  canonical.max_rounds = options.max_rounds;

  BitWriter payload;
  payload.write_varuint(1);  // kSpoolVersion
  snap::put_u64(payload, fp);
  const BitWriter request = encode_request(make_submit(canonical));
  snap::put_bits(payload, request.data(), request.bit_size());

  char hex[17];
  std::snprintf(hex, sizeof hex, "%016llx",
                static_cast<unsigned long long>(fp));
  fs::create_directories(spool / "jobs");
  std::ofstream out(spool / "jobs" / ("job-" + std::string(hex) + ".req"),
                    std::ios::binary | std::ios::trunc);
  write_snapshot_container(out, payload);
  return fp;
}

// kill -9 landing between a job's TERMINAL journal record and its .req
// unlink must not re-run the job: the journal remembers it finished.
TEST(CrashSafety, JournalRetiredStaleReqIsRemovedNotRerun) {
  TempDir spool("retired_req");
  const std::uint64_t fp = craft_spool_req(spool.path(), data_file("karate.txt"));
  {
    SpoolJournal journal((spool.path() / "journal.log").string());
    journal.open_and_recover();
    journal.append(SpoolJournal::Record::kAdmit, fp);
    journal.append(SpoolJournal::Record::kTerminal, fp);
  }

  DaemonConfig config;
  config.spool_dir = spool.str();
  DaemonHarness harness(config);
  Client client;
  harness.connect(client);
  EXPECT_EQ(client.stats().jobs_resumed, 0u)
      << "a journal-retired job must never be re-run";
  EXPECT_FALSE(fs::exists(spool.path() / "jobs" /
                          ("job-" + [&] {
                            char hex[17];
                            std::snprintf(hex, sizeof hex, "%016llx",
                                          static_cast<unsigned long long>(fp));
                            return std::string(hex);
                          }() + ".req")));
}

// The converse: an ADMIT with no TERMINAL is live work, resumed on start.
TEST(CrashSafety, JournalLiveReqIsResumedAndServesCorrectBits) {
  TempDir spool("live_req");
  const std::string karate = data_file("karate.txt");
  const std::uint64_t fp = craft_spool_req(spool.path(), karate);
  {
    SpoolJournal journal((spool.path() / "journal.log").string());
    journal.open_and_recover();
    journal.append(SpoolJournal::Record::kAdmit, fp);
  }

  DaemonConfig config;
  config.spool_dir = spool.str();
  DaemonHarness harness(config);
  Client client;
  harness.connect(client);
  EXPECT_EQ(client.stats().jobs_resumed, 1u);
  // Attaching to the resumed execution (or its cached result) serves the
  // exact bits a clean run produces.
  const SubmitReply attach = client.submit(inline_submit(karate));
  ASSERT_NE(attach.job_id, 0u) << attach.detail;
  expect_matches_local_run(client.wait_result(attach.job_id),
                           read_edge_list_text(karate),
                           DistributedBcOptions{});
}

TEST(CrashSafety, CorruptStateFilesAreQuarantinedNotFatal) {
  TempDir spool("quarantine");
  const std::string karate = data_file("karate.txt");

  // A corrupt cache entry, listed in the index so recovery trusts it.
  fs::create_directories(spool.path() / "cache");
  {
    std::ofstream res(spool.path() /
                          "cache/res-00000000deadbeef.res",
                      std::ios::binary);
    res << "this is not a CBCSNAP1 container";
    std::ofstream index(spool.path() / "cache/index.txt");
    index << "00000000deadbeef\n";
  }
  // A torn spool request.
  fs::create_directories(spool.path() / "jobs");
  {
    std::ofstream req(spool.path() / "jobs/job-00000000cafef00d.req",
                      std::ios::binary);
    req << "CBCSNAP1 but truncated mid-head";
  }
  // A valid live job whose newest checkpoint is garbage: the scan must
  // quarantine the checkpoint and still resume the job from scratch.
  const std::uint64_t fp = craft_spool_req(spool.path(), karate);
  {
    SpoolJournal journal((spool.path() / "journal.log").string());
    journal.open_and_recover();
    journal.append(SpoolJournal::Record::kAdmit, fp);
  }
  char hex[17];
  std::snprintf(hex, sizeof hex, "%016llx", static_cast<unsigned long long>(fp));
  fs::create_directories(spool.path() / "ckpt" / hex);
  {
    std::ofstream ckpt(spool.path() / "ckpt" / hex /
                           "ckpt-000000000005.cbcsnap",
                       std::ios::binary);
    ckpt << "not a checkpoint";
  }

  DaemonConfig config;
  config.spool_dir = spool.str();
  DaemonHarness harness(config);
  Client client;
  harness.connect(client);
  const StatsReply stats = client.stats();
  EXPECT_GE(stats.quarantined_files, 3u)
      << "res + req + checkpoint must all be quarantined";
  EXPECT_EQ(stats.jobs_resumed, 1u);
  EXPECT_TRUE(fs::exists(spool.path() / "quarantine"));

  // The quarantined names are preserved for postmortems.
  std::size_t quarantined = 0;
  for (const auto& entry :
       fs::directory_iterator(spool.path() / "quarantine")) {
    (void)entry;
    ++quarantined;
  }
  EXPECT_GE(quarantined, 3u);

  // And the daemon serves normally on top of it all.
  const SubmitReply attach = client.submit(inline_submit(karate));
  ASSERT_NE(attach.job_id, 0u) << attach.detail;
  expect_matches_local_run(client.wait_result(attach.job_id),
                           read_edge_list_text(karate),
                           DistributedBcOptions{});
}

// ---------------------------------------------------------- deadlines

TEST(Deadlines, AdmissionRejectsUnmeetableDeadline) {
  DaemonConfig config;
  config.workers = 1;
  DaemonHarness harness(config);
  Client client;
  harness.connect(client);

  // Seed the latency estimate with one real execution (tens of ms).
  const std::string slow = write_edge_list_text(gen::cycle(400));
  const SubmitReply seed = client.submit(inline_submit(slow));
  ASSERT_NE(seed.job_id, 0u);
  ASSERT_TRUE(client.wait_result(seed.job_id).ready);

  // A 1 ms budget cannot cover a p50-sized run: typed kDeadline, counted.
  SubmitRequest hurried = inline_submit(data_file("karate.txt"));
  hurried.deadline_ms = 1;
  const SubmitReply rejected = client.submit(hurried);
  EXPECT_EQ(rejected.disposition, SubmitDisposition::kDeadline)
      << rejected.detail;
  EXPECT_EQ(client.stats().deadline_rejections, 1u);

  // The same submit without a deadline is admitted fine.
  const SubmitReply relaxed = client.submit(inline_submit(data_file("karate.txt")));
  EXPECT_NE(relaxed.job_id, 0u) << relaxed.detail;
}

TEST(Deadlines, QueuedJobFailsWhenClientBudgetExpires) {
  DaemonConfig config;
  config.workers = 1;
  DaemonHarness harness(config);
  Client client;
  harness.connect(client);

  // Occupy the only worker with a long run.
  const SubmitReply blocker =
      client.submit(inline_submit(write_edge_list_text(gen::cycle(1500))));
  ASSERT_NE(blocker.job_id, 0u);

  SubmitRequest hurried = inline_submit(data_file("karate.txt"));
  hurried.deadline_ms = 120;
  const SubmitReply queued = client.submit(hurried);
  ASSERT_EQ(queued.disposition, SubmitDisposition::kQueued) << queued.detail;

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  StatusReply status;
  while (std::chrono::steady_clock::now() < deadline) {
    status = client.status(queued.job_id);
    if (status.state == JobState::kFailed) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_EQ(status.state, JobState::kFailed);
  EXPECT_NE(status.detail.find("deadline"), std::string::npos)
      << status.detail;
  EXPECT_GE(client.stats().deadline_expired, 1u);
  (void)client.cancel(blocker.job_id);
}

TEST(Deadlines, RunningJobIsHaltedWhenDeadlineExpires) {
  DaemonConfig config;
  config.workers = 1;
  DaemonHarness harness(config);
  Client client;
  harness.connect(client);

  SubmitRequest hurried = inline_submit(write_edge_list_text(gen::cycle(1500)));
  hurried.deadline_ms = 150;  // far less than the run needs
  const SubmitReply admitted = client.submit(hurried);
  ASSERT_NE(admitted.job_id, 0u) << admitted.detail;

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(60);
  StatusReply status;
  while (std::chrono::steady_clock::now() < deadline) {
    status = client.status(admitted.job_id);
    if (status.state == JobState::kFailed) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_EQ(status.state, JobState::kFailed);
  EXPECT_NE(status.detail.find("deadline"), std::string::npos)
      << status.detail;
  EXPECT_GE(client.stats().deadline_expired, 1u);
}

TEST(Deadlines, RetryingClientTreatsDeadlineRejectionAsFinal) {
  DaemonConfig config;
  config.workers = 1;
  DaemonHarness harness(config);

  // Seed the latency estimate with a slow run so the daemon's admission
  // estimate dwarfs the client budget below.
  {
    Client client;
    harness.connect(client);
    const SubmitReply seed =
        client.submit(inline_submit(write_edge_list_text(gen::cycle(1500))));
    ASSERT_NE(seed.job_id, 0u);
    ASSERT_TRUE(client.wait_result(seed.job_id, 20, 120'000).ready);
  }

  RetryPolicy policy = chaos_policy(1);
  // Enough budget to connect and submit once, far below the seeded p50:
  // the daemon must answer kDeadline and the client must not retry.
  policy.overall_deadline_ms = 100;
  RetryingClient client("127.0.0.1", harness.daemon().port(), policy);
  try {
    client.submit_and_wait(inline_submit(data_file("karate.txt")));
    FAIL() << "an unmeetable deadline must not succeed";
  } catch (const RetryError& e) {
    EXPECT_FALSE(e.retryable_cause()) << e.what();
  }
  EXPECT_LE(client.stats().attempts, 1u) << "kDeadline must not be retried";
}

// ----------------------------------------------- process-level kill -9

#ifdef CONGESTBCD_PATH
struct SpawnedDaemon {
  pid_t pid = -1;
  std::uint16_t port = 0;
};

/// SIGKILLs a spawned daemon if the test bails before reaping it — a
/// leaked daemon holds the test's stderr pipe open and hangs ctest.
struct DaemonReaper {
  pid_t pid = -1;
  explicit DaemonReaper(pid_t p) : pid(p) {}
  ~DaemonReaper() {
    if (pid > 0) {
      ::kill(pid, SIGKILL);
      int status = 0;
      ::waitpid(pid, &status, 0);
    }
  }
  void release() { pid = -1; }
};

/// fork/execs the real congestbcd binary and parses "LISTENING <port>".
SpawnedDaemon spawn_daemon(const std::string& spool) {
  int out_pipe[2];
  if (::pipe(out_pipe) != 0) {
    return {};
  }
  const pid_t pid = ::fork();
  if (pid == 0) {
    ::dup2(out_pipe[1], STDOUT_FILENO);
    ::close(out_pipe[0]);
    ::close(out_pipe[1]);
    ::execl(CONGESTBCD_PATH, "congestbcd", "--port", "0", "--workers", "1",
            "--spool", spool.c_str(), static_cast<char*>(nullptr));
    _exit(127);
  }
  ::close(out_pipe[1]);
  SpawnedDaemon daemon;
  daemon.pid = pid;
  FILE* out = ::fdopen(out_pipe[0], "r");
  char line[256];
  while (out != nullptr && std::fgets(line, sizeof line, out) != nullptr) {
    unsigned port = 0;
    if (std::sscanf(line, "LISTENING %u", &port) == 1) {
      daemon.port = static_cast<std::uint16_t>(port);
      break;
    }
  }
  // Leak `out` deliberately: closing it would close the child's stdout
  // reader while the daemon still writes its drain message.
  return daemon;
}

void wait_until_running(Client& client, std::uint64_t job_id) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (std::chrono::steady_clock::now() < deadline) {
    if (client.status(job_id).state == JobState::kRunning) {
      return;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  FAIL() << "job " << job_id << " never started running";
}

// The harshest cell of the matrix: SIGKILL mid-job (no drain, no
// checkpoint flush, no warning), restart on the same spool, and the
// restarted daemon must pick the job up and serve the byte-identical
// result — no lost work, no duplicate execution.
TEST(CrashSafety, Kill9MidJobThenRestartServesIdenticalResult) {
  TempDir spool("kill9_resume");
  const Graph graph = gen::cycle(1000);
  const std::string text = write_edge_list_text(graph);

  const SpawnedDaemon first = spawn_daemon(spool.str());
  ASSERT_GT(first.pid, 0);
  DaemonReaper reap_first(first.pid);
  ASSERT_NE(first.port, 0) << "daemon never announced LISTENING";
  {
    Client client;
    client.connect("127.0.0.1", first.port);
    const SubmitReply reply = client.submit(inline_submit(text));
    ASSERT_EQ(reply.disposition, SubmitDisposition::kQueued) << reply.detail;
    wait_until_running(client, reply.job_id);
  }
  ASSERT_EQ(::kill(first.pid, SIGKILL), 0);
  int status = 0;
  ASSERT_EQ(::waitpid(first.pid, &status, 0), first.pid);
  reap_first.release();
  ASSERT_TRUE(WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL);

  const SpawnedDaemon second = spawn_daemon(spool.str());
  ASSERT_GT(second.pid, 0);
  DaemonReaper reap_second(second.pid);
  ASSERT_NE(second.port, 0);
  Client client;
  client.connect("127.0.0.1", second.port);
  EXPECT_GE(client.stats().jobs_resumed, 1u)
      << "the killed job must survive into the restart";
  const SubmitReply attach = client.submit(inline_submit(text));
  ASSERT_TRUE(attach.disposition == SubmitDisposition::kCoalesced ||
              attach.disposition == SubmitDisposition::kCacheHit)
      << to_string(attach.disposition) << " " << attach.detail;
  const ResultReply resumed = client.wait_result(attach.job_id);
  expect_matches_local_run(resumed, graph, DistributedBcOptions{});

  EXPECT_TRUE(client.shutdown().draining);
  ASSERT_EQ(::waitpid(second.pid, &status, 0), second.pid);
  reap_second.release();
  EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0);
}

// SIGTERM mid-job *under chaos*: the drain must stay clean even while
// the client-facing sockets are being stalled and torn, and the restart
// must converge on the exact bits.  Both plans here are integrity-
// preserving (stalls + partial writes, no corruption): the cycle(1000)
// RESULT payload spans enough chunks that per-chunk corruption would
// defeat any bounded retry budget by sheer probability — corruption
// recovery is covered on small payloads by the ChaosMatrix suite.
TEST(CrashSafety, SigtermUnderChaosThenRestartConverges) {
  TempDir spool("sigterm_chaos");
  const Graph graph = gen::cycle(1000);
  const std::string text = write_edge_list_text(graph);

  const SpawnedDaemon first = spawn_daemon(spool.str());
  ASSERT_GT(first.pid, 0);
  DaemonReaper reap_first(first.pid);
  ASSERT_NE(first.port, 0);
  {
    // Submit and watch the job start entirely through the chaos relay.
    ChaosProxy proxy(
        ChaosPlan::parse("seed=21,stall=0.2,stall-ms=10,partial=128"),
        "127.0.0.1", first.port);
    proxy.start();
    Client client;
    client.connect("127.0.0.1", proxy.port());
    const SubmitReply reply = client.submit(inline_submit(text));
    ASSERT_NE(reply.job_id, 0u) << reply.detail;
    wait_until_running(client, reply.job_id);
    client.close();
    proxy.stop();
    EXPECT_GT(proxy.stats().stalled.load(), 0u);
  }
  ASSERT_EQ(::kill(first.pid, SIGTERM), 0);
  int status = 0;
  ASSERT_EQ(::waitpid(first.pid, &status, 0), first.pid);
  reap_first.release();
  EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0)
      << "daemon did not drain cleanly on SIGTERM under chaos";

  const SpawnedDaemon second = spawn_daemon(spool.str());
  ASSERT_GT(second.pid, 0);
  DaemonReaper reap_second(second.pid);
  ASSERT_NE(second.port, 0);
  ChaosProxy proxy(
      ChaosPlan::parse("seed=22,stall=0.15,stall-ms=10,partial=256"),
      "127.0.0.1", second.port);
  proxy.start();
  RetryingClient client("127.0.0.1", proxy.port(), chaos_policy(22));
  const ResultReply resumed = client.submit_and_wait(inline_submit(text));
  expect_matches_local_run(resumed, graph, DistributedBcOptions{});
  proxy.stop();

  Client direct;
  direct.connect("127.0.0.1", second.port);
  EXPECT_GE(direct.stats().jobs_resumed, 1u);
  EXPECT_TRUE(direct.shutdown().draining);
  ASSERT_EQ(::waitpid(second.pid, &status, 0), second.pid);
  reap_second.release();
  EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0);
}
#endif  // CONGESTBCD_PATH

}  // namespace
}  // namespace congestbc::service
