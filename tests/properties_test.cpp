#include "graph/properties.hpp"

#include <gtest/gtest.h>

#include "common/assert.hpp"
#include "graph/generators.hpp"

namespace congestbc {
namespace {

TEST(Properties, BfsDistancesOnPath) {
  const Graph g = gen::path(6);
  const auto dist = bfs_distances(g, 0);
  for (NodeId v = 0; v < 6; ++v) {
    EXPECT_EQ(dist[v], v);
  }
  const auto mid = bfs_distances(g, 3);
  EXPECT_EQ(mid[0], 3u);
  EXPECT_EQ(mid[5], 2u);
}

TEST(Properties, UnreachableMarked) {
  const Graph g(4, {{0, 1}, {2, 3}});
  const auto dist = bfs_distances(g, 0);
  EXPECT_EQ(dist[1], 1u);
  EXPECT_EQ(dist[2], kUnreachable);
  EXPECT_EQ(dist[3], kUnreachable);
}

TEST(Properties, Connectivity) {
  EXPECT_TRUE(is_connected(gen::cycle(5)));
  EXPECT_FALSE(is_connected(Graph(3, {{0, 1}})));
  EXPECT_TRUE(is_connected(Graph(0, {})));
  EXPECT_TRUE(is_connected(Graph(1, {})));
}

TEST(Properties, EccentricitiesOnPath) {
  const Graph g = gen::path(5);
  const auto ecc = eccentricities(g);
  EXPECT_EQ(ecc[0], 4u);
  EXPECT_EQ(ecc[2], 2u);
  EXPECT_EQ(ecc[4], 4u);
}

TEST(Properties, DiameterAndRadius) {
  EXPECT_EQ(diameter(gen::path(9)), 8u);
  EXPECT_EQ(radius(gen::path(9)), 4u);
  EXPECT_EQ(diameter(gen::star(10)), 2u);
  EXPECT_EQ(radius(gen::star(10)), 1u);
  EXPECT_EQ(diameter(gen::complete(5)), 1u);
}

TEST(Properties, DistanceSums) {
  const Graph g = gen::star(5);
  const auto sums = distance_sums(g);
  EXPECT_EQ(sums[0], 4u);        // center: four leaves at distance 1
  EXPECT_EQ(sums[1], 1u + 3 * 2);  // leaf: center 1, other leaves 2
}

TEST(Properties, BfsTreeParentsAreCloser) {
  Rng rng(7);
  const Graph g = gen::erdos_renyi_connected(30, 0.1, rng);
  const auto dist = bfs_distances(g, 0);
  const auto parent = bfs_tree_parents(g, 0);
  EXPECT_EQ(parent[0], 0u);
  for (NodeId v = 1; v < g.num_nodes(); ++v) {
    EXPECT_TRUE(g.has_edge(v, parent[v]));
    EXPECT_EQ(dist[parent[v]] + 1, dist[v]);
  }
}

TEST(Properties, EccentricitiesRejectDisconnected) {
  const Graph g(3, {{0, 1}});
  EXPECT_THROW(eccentricities(g), PreconditionError);
  EXPECT_THROW(distance_sums(g), PreconditionError);
}

}  // namespace
}  // namespace congestbc
