// The cluster test matrix (DESIGN.md §16): the fingerprint-routed
// multi-daemon tier, proven end to end against in-process workers.
//
// What is pinned here, per the cluster contract:
//   * the consistent-hash ring is deterministic across insertion orders,
//     removing a worker reassigns only that worker's keys, and the
//     failover preference lists distinct workers owner-first;
//   * a router in front of three workers serves the byte-identical
//     blocks a single daemon serves — routing adds placement, not
//     numerics — and identical resubmits stay cache hits;
//   * after a rebalance, the cross-worker LOOKUP probe serves cached
//     blocks byte-identically from whichever worker still holds them;
//   * the migration matrix: a job caught mid-run on worker A by a drain
//     resumes on worker B bit-identically, across every
//     {frontier, arena, legacy} engine × {paper_exact, cfp, sampled}
//     backend combination;
//   * membership: health checks evict a dead worker from the ring, a
//     JOIN heals the eviction, and jobs stranded on a lost worker answer
//     kQueued through the migration grace window before failing typed;
//   * hostile bytes on a router session draw a typed ERROR frame and the
//     router keeps serving everyone else;
//   * the PR-6 seeded chaos matrix replayed through a router→worker hop
//     (chaosproxy on the worker link): every plan converges on the
//     byte-identical result with exactly one execution on the worker.
#include <sys/socket.h>
#include <sys/types.h>
#include <arpa/inet.h>
#include <netinet/in.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <functional>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "cluster/ring.hpp"
#include "cluster/router.hpp"
#include "core/runner.hpp"
#include "graph/generators.hpp"
#include "graph/graph.hpp"
#include "graph/io.hpp"
#include "gtest/gtest.h"
#include "portfolio/backend.hpp"
#include "service/chaos.hpp"
#include "service/client.hpp"
#include "service/daemon.hpp"
#include "service/protocol.hpp"
#include "service/retry.hpp"

namespace congestbc::cluster {
namespace {

using namespace congestbc::service;  // NOLINT: test reads like service_test

namespace fs = std::filesystem;

class TempDir {
 public:
  explicit TempDir(const std::string& tag)
      : path_(fs::temp_directory_path() /
              ("congestbc_cluster_test_" + tag + "_" +
               std::to_string(static_cast<unsigned long>(::getpid())))) {
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~TempDir() { fs::remove_all(path_); }
  const fs::path& path() const { return path_; }
  std::string str() const { return path_.string(); }

 private:
  fs::path path_;
};

std::string data_file(const std::string& name) {
  std::ifstream in(std::string(CONGESTBC_DATA_DIR) + "/" + name,
                   std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing data file " << name;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

SubmitRequest inline_submit(const std::string& text) {
  SubmitRequest submit;
  submit.source = GraphSource::kInline;
  submit.graph = text;
  return submit;
}

ResultBlock decode_block(const ResultReply& reply) {
  BitReader reader(reply.block_bytes.data(),
                   static_cast<std::size_t>(reply.block_bits));
  return decode_result_block(reader);
}

void expect_bit_equal(const std::vector<double>& got,
                      const std::vector<double>& want, const char* what) {
  ASSERT_EQ(got.size(), want.size()) << what;
  for (std::size_t i = 0; i < want.size(); ++i) {
    std::uint64_t got_bits = 0;
    std::uint64_t want_bits = 0;
    std::memcpy(&got_bits, &got[i], sizeof got_bits);
    std::memcpy(&want_bits, &want[i], sizeof want_bits);
    EXPECT_EQ(got_bits, want_bits) << what << "[" << i << "]";
  }
}

// Long doubles carry padding bytes on x86-64, so memcmp would compare
// garbage; value equality is exact for them (the codec is lossless).
void expect_bit_equal(const std::vector<long double>& got,
                      const std::vector<long double>& want, const char* what) {
  ASSERT_EQ(got.size(), want.size()) << what;
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(got[i], want[i]) << what << "[" << i << "]";
  }
}

/// The block a served result must match, computed by a direct local run.
void expect_matches_local_run(const ResultReply& reply, const Graph& graph,
                              const DistributedBcOptions& options) {
  ASSERT_TRUE(reply.ready);
  const ResultBlock block = decode_block(reply);
  const RunOutcome fresh = run_bc_with_watchdog(graph, options);
  ASSERT_EQ(fresh.status, RunStatus::kComplete) << fresh.detail;
  EXPECT_EQ(block.run_status, static_cast<std::uint8_t>(RunStatus::kComplete));
  EXPECT_EQ(block.rounds, fresh.result.rounds);
  EXPECT_EQ(block.diameter, fresh.result.diameter);
  expect_bit_equal(block.betweenness, fresh.result.betweenness, "betweenness");
  expect_bit_equal(block.closeness, fresh.result.closeness, "closeness");
  expect_bit_equal(block.stress, fresh.result.stress, "stress");
  EXPECT_EQ(block.eccentricities, fresh.result.eccentricities);
}

/// An in-process router on an ephemeral loopback port, drained on exit.
class RouterHarness {
 public:
  explicit RouterHarness(RouterConfig config) : router_(std::move(config)) {
    router_.start();
    router_.serve_async();
  }
  ~RouterHarness() { stop(); }

  void stop() {
    if (!stopped_) {
      router_.request_drain();
      router_.wait();
      stopped_ = true;
    }
  }

  Router& router() { return router_; }
  std::string address() const {
    return "127.0.0.1:" + std::to_string(router_.port());
  }
  void connect(Client& client) { client.connect("127.0.0.1", router_.port()); }

 private:
  Router router_;
  bool stopped_ = false;
};

/// An in-process worker daemon; stop() runs the full drain (which, with
/// join_router configured, MIGRATEs its jobs through the router).
class WorkerHarness {
 public:
  explicit WorkerHarness(DaemonConfig config) : daemon_(std::move(config)) {
    daemon_.start();
    daemon_.serve_async();
  }
  ~WorkerHarness() { stop(); }

  void stop() {
    if (!stopped_) {
      daemon_.request_drain();
      daemon_.wait();
      stopped_ = true;
    }
  }

  Daemon& daemon() { return daemon_; }

 private:
  Daemon daemon_;
  bool stopped_ = false;
};

/// A worker wired to JOIN the router tier with a fast heartbeat.
DaemonConfig worker_config(const std::string& router_address,
                           const std::string& spool = "") {
  DaemonConfig config;
  config.workers = 1;
  config.join_router = router_address;
  config.join_every_ms = 50;
  config.spool_dir = spool;
  return config;
}

bool wait_until(const std::function<bool()>& done, int timeout_ms = 15000) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (done()) {
      return true;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return done();
}

/// Well-spread 64-bit fingerprints for ring unit tests.
std::uint64_t spread(std::uint64_t i) { return i * 0x9e3779b97f4a7c15ULL; }

RetryPolicy chaos_policy(std::uint64_t seed) {
  RetryPolicy policy;
  policy.max_attempts = 12;
  policy.initial_backoff_ms = 5;
  policy.max_backoff_ms = 100;
  policy.jitter_seed = seed;
  policy.overall_deadline_ms = 60'000;
  policy.attempt_timeout_ms = 10'000;
  policy.poll_ms = 5;
  return policy;
}

// ------------------------------------------------------- ring units

TEST(ClusterRing, OwnerIsDeterministicAcrossInsertionOrders) {
  const std::vector<std::string> ids = {"10.0.0.1:7001", "10.0.0.2:7002",
                                        "10.0.0.3:7003", "10.0.0.4:7004"};
  HashRing forward(64);
  HashRing reverse(64);
  for (const std::string& id : ids) {
    EXPECT_TRUE(forward.add(id));
  }
  for (auto it = ids.rbegin(); it != ids.rend(); ++it) {
    EXPECT_TRUE(reverse.add(*it));
  }
  EXPECT_EQ(forward.size(), ids.size());
  EXPECT_EQ(forward.workers(), reverse.workers());
  for (std::uint64_t i = 1; i <= 2048; ++i) {
    EXPECT_EQ(forward.owner(spread(i)), reverse.owner(spread(i))) << i;
  }
  // Adding a present worker is a no-op, not a reshuffle.
  EXPECT_FALSE(forward.add(ids[0]));
  for (std::uint64_t i = 1; i <= 256; ++i) {
    EXPECT_EQ(forward.owner(spread(i)), reverse.owner(spread(i)));
  }
}

TEST(ClusterRing, RemovingAWorkerOnlyReassignsItsOwnKeys) {
  HashRing ring(64);
  const std::string a = "10.0.0.1:7001";
  const std::string b = "10.0.0.2:7002";
  const std::string c = "10.0.0.3:7003";
  ring.add(a);
  ring.add(b);
  ring.add(c);

  constexpr std::uint64_t kKeys = 4096;
  std::map<std::uint64_t, std::string> before;
  std::uint64_t owned_by_c = 0;
  for (std::uint64_t i = 1; i <= kKeys; ++i) {
    before[spread(i)] = ring.owner(spread(i));
    owned_by_c += before[spread(i)] == c ? 1u : 0u;
  }
  // With 64 vnodes each of three workers owns a substantial share.
  EXPECT_GT(owned_by_c, kKeys / 8);
  EXPECT_LT(owned_by_c, kKeys * 5 / 8);

  EXPECT_TRUE(ring.remove(c));
  EXPECT_FALSE(ring.contains(c));
  for (const auto& [fp, owner] : before) {
    const std::string now = ring.owner(fp);
    if (owner == c) {
      EXPECT_NE(now, c);  // the orphaned arcs land on survivors
    } else {
      EXPECT_EQ(now, owner) << "a surviving worker's key moved";
    }
  }
  EXPECT_FALSE(ring.remove(c));  // already gone
}

TEST(ClusterRing, PreferenceListsDistinctWorkersOwnerFirstAndHonorsExclude) {
  HashRing ring(64);
  const std::vector<std::string> ids = {"w1:1", "w2:2", "w3:3"};
  for (const std::string& id : ids) {
    ring.add(id);
  }
  for (std::uint64_t i = 1; i <= 64; ++i) {
    const std::uint64_t fp = spread(i);
    const std::vector<std::string> order = ring.preference(fp, 3);
    ASSERT_EQ(order.size(), 3u);
    EXPECT_EQ(order[0], ring.owner(fp));
    EXPECT_NE(order[0], order[1]);
    EXPECT_NE(order[1], order[2]);
    EXPECT_NE(order[0], order[2]);

    // A migration must never route back to its draining origin.
    const std::vector<std::string> pruned = ring.preference(fp, 3, order[0]);
    ASSERT_EQ(pruned.size(), 2u);
    EXPECT_NE(pruned[0], order[0]);
    EXPECT_NE(pruned[1], order[0]);
  }

  HashRing empty(64);
  EXPECT_EQ(empty.owner(42), "");
  EXPECT_TRUE(empty.preference(42, 3).empty());
}

// ---------------------------------------------- router e2e, 3 workers

TEST(ClusterRouter, RoutesAcrossThreeWorkersAndServesBitIdenticalResults) {
  RouterConfig rc;
  rc.health_every_ms = 100;
  RouterHarness router(rc);
  WorkerHarness a(worker_config(router.address()));
  WorkerHarness b(worker_config(router.address()));
  WorkerHarness c(worker_config(router.address()));
  ASSERT_TRUE(wait_until(
      [&] { return router.router().stats().workers_active == 3; }))
      << "workers never completed their JOINs";

  Client client;
  router.connect(client);
  const std::string karate = data_file("karate.txt");
  const SubmitReply admitted = client.submit(inline_submit(karate));
  ASSERT_EQ(admitted.disposition, SubmitDisposition::kQueued)
      << admitted.detail;
  ASSERT_NE(admitted.job_id, 0u);
  const ResultReply reply = client.wait_result(admitted.job_id);
  expect_matches_local_run(reply, read_edge_list_text(karate),
                           DistributedBcOptions{});
  EXPECT_EQ(client.status(admitted.job_id).state, JobState::kDone);

  // An identical resubmit is a cache hit with the byte-identical block,
  // because the ring sends it to the same home worker.
  const SubmitReply again = client.submit(inline_submit(karate));
  EXPECT_EQ(again.disposition, SubmitDisposition::kCacheHit) << again.detail;
  const ResultReply cached = client.wait_result(again.job_id);
  ASSERT_TRUE(cached.ready);
  EXPECT_EQ(cached.block_bits, reply.block_bits);
  EXPECT_EQ(cached.block_bytes, reply.block_bytes)
      << "cached bytes differ from the fresh execution";

  // Distinct jobs spread over the tier and every one is served.
  unsigned distinct = 0;
  for (unsigned n = 16; n < 28; ++n, ++distinct) {
    const SubmitReply job =
        client.submit(inline_submit(write_edge_list_text(gen::cycle(n))));
    ASSERT_NE(job.disposition, SubmitDisposition::kRejected) << job.detail;
    ASSERT_TRUE(client.wait_result(job.job_id).ready) << "cycle(" << n << ")";
  }

  // STATS through the router is the cluster aggregate.
  const StatsReply aggregate = client.stats();
  EXPECT_GE(aggregate.submits, distinct + 2u);
  EXPECT_EQ(aggregate.workers, 3u);  // one pool thread per worker

  const RouterStats rs = router.router().stats();
  EXPECT_GE(rs.joins, 3u);
  EXPECT_EQ(rs.workers_active, 3u);
  EXPECT_GE(rs.submits_routed, distinct + 2u);

  // With 13 distinct fingerprints the ring essentially never maps them
  // all onto one worker ((1/3)^12 against it).
  const int busy = (a.daemon().stats().submits > 0 ? 1 : 0) +
                   (b.daemon().stats().submits > 0 ? 1 : 0) +
                   (c.daemon().stats().submits > 0 ? 1 : 0);
  EXPECT_GE(busy, 2) << "routing sent every job to a single worker";
}

// ------------------------------------------- cross-worker cache hits

TEST(ClusterRouter, CrossWorkerLookupServesByteIdenticalCachedBlocks) {
  RouterConfig rc;
  rc.health_every_ms = 100;
  RouterHarness router(rc);
  auto a = std::make_unique<WorkerHarness>(worker_config(router.address()));
  ASSERT_TRUE(wait_until(
      [&] { return router.router().stats().workers_active == 1; }));

  Client client;
  router.connect(client);
  struct Entry {
    std::string text;
    std::vector<std::uint8_t> bytes;
    std::uint64_t bits = 0;
  };
  std::vector<Entry> entries;
  for (unsigned n = 16; n < 32; ++n) {
    Entry entry;
    entry.text = write_edge_list_text(gen::cycle(n));
    const SubmitReply admitted = client.submit(inline_submit(entry.text));
    ASSERT_EQ(admitted.disposition, SubmitDisposition::kQueued)
        << admitted.detail;
    const ResultReply reply = client.wait_result(admitted.job_id);
    ASSERT_TRUE(reply.ready);
    entry.bytes = reply.block_bytes;
    entry.bits = reply.block_bits;
    entries.push_back(std::move(entry));
  }

  // Two fresh (cold-cache) workers join: ~2/3 of the keys remap away
  // from the worker that computed them.
  WorkerHarness b(worker_config(router.address()));
  WorkerHarness c(worker_config(router.address()));
  ASSERT_TRUE(wait_until(
      [&] { return router.router().stats().workers_active == 3; }));

  // Every resubmit is still a cache hit — locally when the key stayed
  // home, via the cross-worker LOOKUP when it remapped — and the bytes
  // are identical either way.
  for (const Entry& entry : entries) {
    const SubmitReply hit = client.submit(inline_submit(entry.text));
    EXPECT_EQ(hit.disposition, SubmitDisposition::kCacheHit) << hit.detail;
    const ResultReply replay = client.wait_result(hit.job_id);
    ASSERT_TRUE(replay.ready);
    EXPECT_EQ(replay.block_bits, entry.bits);
    EXPECT_EQ(replay.block_bytes, entry.bytes)
        << "replayed bytes differ from the original execution";
  }
  // With 16 keys over 3 workers, some remapped ((1/3)^16 against it),
  // so the cross-worker path demonstrably fired...
  EXPECT_GE(router.router().stats().cross_worker_hits, 1u);
  // ...and the original worker answered those probes from its cache.
  EXPECT_GE(a->daemon().stats().lookups_served, 1u);
}

// ------------------------------------------------ the migration matrix

// A job caught mid-run on worker A by a SIGTERM-style drain resumes on
// worker B and finishes bit-identically to an uninterrupted local run —
// for every engine × backend combination the wire can name.  (cfp is
// not checkpointable: its transplant re-runs from scratch or ships the
// finished result; either way the bits must not change.)
TEST(ClusterMigration, DrainedJobsResumeOnSurvivorBitIdenticallyAcrossMatrix) {
  const Graph graph = gen::cycle(300);
  const std::string text = write_edge_list_text(graph);

  // Per-backend local references, computed once (engines share bits).
  const RunOutcome ref_exact =
      run_bc_with_watchdog(graph, DistributedBcOptions{});
  ASSERT_EQ(ref_exact.status, RunStatus::kComplete) << ref_exact.detail;
  portfolio::BackendRequest cfp_request;
  cfp_request.graph = &graph;
  cfp_request.options.backend = BackendId::kCfp;
  const RunOutcome ref_cfp = portfolio::run_portfolio(cfp_request);
  ASSERT_EQ(ref_cfp.status, RunStatus::kComplete) << ref_cfp.detail;
  portfolio::BackendRequest sampled_request;
  sampled_request.graph = &graph;
  sampled_request.options.backend = BackendId::kSampled;
  sampled_request.options.approx_samples = 8;
  sampled_request.options.approx_seed = 1;
  const RunOutcome ref_sampled = portfolio::run_portfolio(sampled_request);
  ASSERT_EQ(ref_sampled.status, RunStatus::kComplete) << ref_sampled.detail;

  constexpr std::uint8_t kEngines[] = {0, 1, 2};   // frontier/arena/legacy
  constexpr std::uint8_t kBackends[] = {1, 2, 4};  // exact/cfp/sampled
  for (const std::uint8_t engine : kEngines) {
    for (const std::uint8_t backend : kBackends) {
      SCOPED_TRACE("engine=" + std::to_string(engine) +
                   " backend=" + std::to_string(backend));
      TempDir spool("migrate_e" + std::to_string(engine) + "_b" +
                    std::to_string(backend));
      RouterConfig rc;
      rc.health_every_ms = 100;
      rc.migration_grace_ms = 30'000;
      RouterHarness router(rc);
      DaemonConfig config_a =
          worker_config(router.address(), (spool.path() / "a").string());
      DaemonConfig config_b =
          worker_config(router.address(), (spool.path() / "b").string());
      config_a.checkpoint_every = 8;
      config_b.checkpoint_every = 8;
      WorkerHarness a(config_a);
      WorkerHarness b(config_b);
      ASSERT_TRUE(wait_until(
          [&] { return router.router().stats().workers_active == 2; }));

      Client client;
      router.connect(client);
      SubmitRequest submit = inline_submit(text);
      submit.engine = engine;
      submit.backend = backend;
      if (backend == 4) {
        submit.samples = 8;
        submit.sample_seed = 1;
      }
      const SubmitReply admitted = client.submit(submit);
      ASSERT_EQ(admitted.disposition, SubmitDisposition::kQueued)
          << admitted.detail;

      // Let the job leave the queue (running, or done for fast backends)
      // so the drain catches real mid-flight state, then kill its home.
      ASSERT_TRUE(wait_until([&] {
        return client.status(admitted.job_id).state != JobState::kQueued;
      }, 60'000));
      const bool home_is_a = a.daemon().stats().submits > 0;
      WorkerHarness& home = home_is_a ? a : b;
      WorkerHarness& survivor = home_is_a ? b : a;
      home.stop();  // drain: suspend, checkpoint, MIGRATE via the router

      EXPECT_GE(home.daemon().stats().migrated_out, 1u)
          << "the drain shipped nothing";
      ASSERT_TRUE(wait_until(
          [&] { return survivor.daemon().stats().migrated_in >= 1; }, 10'000))
          << "the survivor never admitted the transplant";

      const ResultReply reply = client.wait_result(admitted.job_id, 20,
                                                   120'000);
      ASSERT_TRUE(reply.ready) << reply.detail;
      const ResultBlock block = decode_block(reply);
      const RunOutcome& ref = backend == 1   ? ref_exact
                              : backend == 2 ? ref_cfp
                                             : ref_sampled;
      EXPECT_EQ(block.rounds, ref.result.rounds);
      expect_bit_equal(block.betweenness, ref.result.betweenness,
                       "betweenness");
      expect_bit_equal(block.stress, ref.result.stress, "stress");
    }
  }
}

// --------------------------------------------- membership and grace

TEST(ClusterMembership, HealthChecksEvictDeadWorkersAndJoinHealsTheRing) {
  // The first worker is seeded statically and never JOINs, so when it
  // dies nothing LEAVEs: the router must notice by probing.
  DaemonConfig standalone;
  standalone.workers = 1;
  auto first = std::make_unique<WorkerHarness>(standalone);
  const std::uint16_t first_port = first->daemon().port();

  RouterConfig rc;
  rc.workers = {"127.0.0.1:" + std::to_string(first_port)};
  rc.health_every_ms = 50;
  rc.health_timeout_ms = 100;
  rc.eviction_threshold = 2;
  RouterHarness router(rc);
  EXPECT_EQ(router.router().stats().workers_active, 1u);

  WorkerHarness b(worker_config(router.address()));
  ASSERT_TRUE(wait_until(
      [&] { return router.router().stats().workers_active == 2; }));

  first->stop();  // dies without LEAVE
  ASSERT_TRUE(wait_until([&] {
    const RouterStats s = router.router().stats();
    return s.evictions >= 1 && s.workers_active == 1;
  })) << "health checks never evicted the dead worker";

  // The shrunken tier still serves.
  Client client;
  router.connect(client);
  const SubmitReply reply = client.submit(inline_submit(data_file("karate.txt")));
  ASSERT_NE(reply.disposition, SubmitDisposition::kRejected) << reply.detail;
  ASSERT_TRUE(client.wait_result(reply.job_id).ready);

  // Reincarnate the worker on its old port: its JOIN carries the same
  // ring identity and must heal the eviction, not create a stranger.
  DaemonConfig revived_config = worker_config(router.address());
  revived_config.port = first_port;
  first.reset();
  WorkerHarness revived(revived_config);
  ASSERT_TRUE(wait_until([&] {
    const RouterStats s = router.router().stats();
    return s.rejoins >= 1 && s.workers_active == 2;
  })) << "the JOIN never healed the eviction";
}

TEST(ClusterMembership, JobsOnALostWorkerAnswerQueuedThroughGraceThenFail) {
  DaemonConfig standalone;  // no spool, no join: death loses the job
  standalone.workers = 1;
  WorkerHarness victim(standalone);

  RouterConfig rc;
  rc.workers = {"127.0.0.1:" + std::to_string(victim.daemon().port())};
  rc.health_every_ms = 0;  // only the client's own polls probe the link
  rc.migration_grace_ms = 1500;
  RouterHarness router(rc);

  Client client;
  router.connect(client);
  const SubmitReply admitted =
      client.submit(inline_submit(write_edge_list_text(gen::cycle(600))));
  ASSERT_EQ(admitted.disposition, SubmitDisposition::kQueued)
      << admitted.detail;
  ASSERT_TRUE(wait_until([&] {
    return client.status(admitted.job_id).state == JobState::kRunning;
  }, 60'000));

  victim.stop();  // abandons the halted job: no spool, nowhere to migrate

  // Within the grace window the router keeps the client polling — this
  // is exactly what a drain handover looks like from the outside.
  const StatusReply during = client.status(admitted.job_id);
  EXPECT_EQ(during.state, JobState::kQueued) << during.detail;
  EXPECT_NE(during.detail.find("migration"), std::string::npos)
      << during.detail;

  // No MIGRATE ever arrives; once the grace lapses the verdict is a
  // typed failure telling the client to resubmit.
  ASSERT_TRUE(wait_until([&] {
    return client.status(admitted.job_id).state == JobState::kFailed;
  }, 10'000));
  const StatusReply after = client.status(admitted.job_id);
  EXPECT_NE(after.detail.find("resubmit"), std::string::npos) << after.detail;
  EXPECT_GE(router.router().stats().link_failures, 1u);
}

// ------------------------------------------------- hostile sessions

TEST(ClusterRouter, HostileBytesDrawATypedErrorAndTheRouterKeepsServing) {
  RouterConfig rc;
  RouterHarness router(rc);
  WorkerHarness worker(worker_config(router.address()));
  ASSERT_TRUE(wait_until(
      [&] { return router.router().stats().workers_active == 1; }));

  Client good;
  router.connect(good);
  EXPECT_EQ(good.stats().workers, 1u);

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(router.router().port());
  ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr), 0);
  const char garbage[] = "GET /metrics HTTP/1.1\r\n\r\n";  // not CBCP
  ASSERT_GT(::send(fd, garbage, sizeof garbage - 1, 0), 0);

  // The router answers a typed ERROR frame, then closes the session.
  std::size_t total = 0;
  char buffer[256];
  ssize_t n = 0;
  while ((n = ::recv(fd, buffer, sizeof buffer, 0)) > 0) {
    total += static_cast<std::size_t>(n);
  }
  ::close(fd);
  EXPECT_GT(total, 0u) << "hostile bytes were dropped without a typed answer";
  EXPECT_GE(router.router().stats().protocol_errors, 1u);

  // Everyone else keeps being served on their existing sessions.
  EXPECT_EQ(good.stats().workers, 1u);
  const SubmitReply reply = good.submit(inline_submit(data_file("karate.txt")));
  ASSERT_NE(reply.disposition, SubmitDisposition::kRejected) << reply.detail;
  ASSERT_TRUE(good.wait_result(reply.job_id).ready);
}

// --------------------------------------------- chaos under the tier

// The PR-6 seeded chaos matrix, replayed with the adversity moved onto
// the router→worker link: the self-healing client converges on the
// byte-identical result through however many healed attempts, and the
// worker executes exactly once (retries coalesce or hit the cache).
TEST(ClusterChaos, SeededWorkerLinkChaosKeepsSingleExecutionAndIdenticalBytes) {
  const std::string karate = data_file("karate.txt");
  const Graph graph = read_edge_list_text(karate);
  const std::vector<std::string> specs = {
      "seed=1,corrupt=0.08,grace=1",
      "seed=2,stall=0.3,stall-ms=10",
      "seed=3,cut=0.06,grace=2",
      "seed=4,partial=48",
      "seed=5,corrupt=0.04,stall=0.1,stall-ms=5,cut=0.03,partial=256,grace=2",
  };
  for (const std::string& spec : specs) {
    SCOPED_TRACE(spec);
    DaemonConfig config;
    config.workers = 1;
    WorkerHarness worker(config);  // standalone; the router dials the proxy
    ChaosProxy proxy(ChaosPlan::parse(spec), "127.0.0.1",
                     worker.daemon().port());
    proxy.start();

    RouterConfig rc;
    rc.workers = {"127.0.0.1:" + std::to_string(proxy.port())};
    rc.health_every_ms = 0;        // keep the seeded schedule undisturbed
    rc.eviction_threshold = 1000;  // adversity must not shrink the ring
    rc.worker_timeout_ms = 5000;
    rc.migration_grace_ms = 60'000;  // flaky link ≠ lost job
    RouterHarness router(rc);

    RetryingClient client("127.0.0.1", router.router().port(),
                          chaos_policy(proxy.plan().seed));
    const ResultReply reply = client.submit_and_wait(inline_submit(karate));
    expect_matches_local_run(reply, graph, DistributedBcOptions{});
    EXPECT_GE(client.stats().attempts, 1u);
    proxy.stop();
    EXPECT_GT(proxy.stats().chunks.load(), 0u);

    // Exactly one execution behind the router, however much healing the
    // link needed: the worker's coalescing and cache absorbed the rest.
    EXPECT_EQ(worker.daemon().stats().jobs_completed, 1u)
        << "retries through the router must not duplicate work";
  }
}

}  // namespace
}  // namespace congestbc::cluster
