// Streaming subsystem tests (src/stream + the daemon's v4 MUTATE plane).
//
// What is pinned here, per the stream contract:
//   * VersionedGraph canonicalizes batches (endpoint order, net-effect
//     dedup, no-op dropping), bumps the version even for net-empty
//     batches, and its chained fingerprint is reproducible from the
//     delta log alone;
//   * the clean-source rule: an op on an equidistant edge is inert for
//     that source — IncrementalBc::source_is_clean agrees with what a
//     re-run would show;
//   * the differential guarantee: after ANY mutation sequence the
//     maintained scores are bit-identical to a from-scratch build at
//     the same version, across engines and thread counts (`rounds` is
//     work accounting, not a result bit, and is excluded);
//   * daemon MUTATE semantics: create / apply / version-conflict /
//     surgical cache invalidation, stream-addressed and incremental
//     SUBMIT, and — through the crash-safe journal — a SIGKILLed daemon
//     replays its namespaces to the exact pre-crash version and
//     fingerprint.
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "core/runner.hpp"
#include "graph/generators.hpp"
#include "graph/graph.hpp"
#include "graph/io.hpp"
#include "gtest/gtest.h"
#include "service/client.hpp"
#include "service/daemon.hpp"
#include "service/protocol.hpp"
#include "snapshot/fingerprint.hpp"
#include "stream/incremental_bc.hpp"
#include "stream/versioned_graph.hpp"

namespace congestbc {
namespace {

namespace fs = std::filesystem;
using service::Client;
using service::Daemon;
using service::DaemonConfig;
using service::GraphSource;
using service::MutateOp;
using service::MutateOutcome;
using service::MutateReply;
using service::MutateRequest;
using service::ResultBlock;
using service::ResultReply;
using service::decode_result_block;
using service::SubmitDisposition;
using service::SubmitReply;
using service::SubmitRequest;
using stream::EdgeOp;
using stream::EdgeOpKind;
using stream::IncrementalBc;
using stream::IncrementalBcConfig;
using stream::MaintainedScores;
using stream::VersionedGraph;

class TempDir {
 public:
  explicit TempDir(const std::string& tag)
      : path_(fs::temp_directory_path() /
              ("congestbc_stream_test_" + tag + "_" +
               std::to_string(static_cast<unsigned long>(::getpid())))) {
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~TempDir() { fs::remove_all(path_); }
  std::string str() const { return path_.string(); }

 private:
  fs::path path_;
};

void expect_bit_equal(const std::vector<double>& got,
                      const std::vector<double>& want, const char* what) {
  ASSERT_EQ(got.size(), want.size()) << what;
  for (std::size_t i = 0; i < want.size(); ++i) {
    std::uint64_t got_bits = 0;
    std::uint64_t want_bits = 0;
    std::memcpy(&got_bits, &got[i], sizeof got_bits);
    std::memcpy(&want_bits, &want[i], sizeof want_bits);
    ASSERT_EQ(got_bits, want_bits) << what << "[" << i << "]";
  }
}

void expect_bit_equal(const std::vector<long double>& got,
                      const std::vector<long double>& want, const char* what) {
  ASSERT_EQ(got.size(), want.size()) << what;
  for (std::size_t i = 0; i < want.size(); ++i) {
    ASSERT_EQ(got[i], want[i]) << what << "[" << i << "]";
  }
}

/// The differential guarantee's equality: every result field bit-exact;
/// `rounds` is engine-work accounting, not a result bit, and is excluded.
void expect_scores_identical(const MaintainedScores& got,
                             const MaintainedScores& want) {
  expect_bit_equal(got.betweenness, want.betweenness, "betweenness");
  expect_bit_equal(got.closeness, want.closeness, "closeness");
  expect_bit_equal(got.graph_centrality, want.graph_centrality,
                   "graph_centrality");
  expect_bit_equal(got.stress, want.stress, "stress");
  ASSERT_EQ(got.eccentricities, want.eccentricities);
  ASSERT_EQ(got.diameter, want.diameter);
}

// ------------------------------------------------- VersionedGraph units

TEST(VersionedGraph, CanonicalizesBatchesAndChainsFingerprints) {
  VersionedGraph vg(gen::cycle(6));
  EXPECT_EQ(vg.version(), 0u);
  EXPECT_EQ(vg.fingerprint(), graph_fingerprint(gen::cycle(6)));

  // Reversed endpoints, a duplicate, and a no-op delete all canonicalize
  // away; the surviving delta is sorted by (u, v).
  const auto out = vg.apply({{EdgeOpKind::kInsert, 3, 0},
                             {EdgeOpKind::kInsert, 0, 3},
                             {EdgeOpKind::kInsert, 1, 4},
                             {EdgeOpKind::kRemove, 2, 5}});
  EXPECT_EQ(out.version, 1u);
  EXPECT_EQ(out.applied, 2u);
  EXPECT_EQ(out.dropped, 2u);
  const std::vector<GraphDeltaOp>& delta = vg.delta(1);
  ASSERT_EQ(delta.size(), 2u);
  EXPECT_TRUE(delta[0].insert && delta[0].u == 0 && delta[0].v == 3);
  EXPECT_TRUE(delta[1].insert && delta[1].u == 1 && delta[1].v == 4);
  EXPECT_EQ(out.fingerprint,
            chain_graph_fingerprint(vg.fingerprint_at(0), delta));

  // A batch that nets to nothing still bumps the version and chains an
  // empty delta (clients round-tripping a no-op must observe progress).
  const auto noop = vg.apply({{EdgeOpKind::kInsert, 0, 3}});
  EXPECT_EQ(noop.version, 2u);
  EXPECT_EQ(noop.applied, 0u);
  EXPECT_TRUE(vg.delta(2).empty());
  EXPECT_NE(noop.fingerprint, out.fingerprint);

  // Remove what we inserted: head returns to base topology, but the
  // fingerprint is a history identity and never returns with it.
  const auto back = vg.apply({{EdgeOpKind::kRemove, 0, 3},
                              {EdgeOpKind::kRemove, 4, 1}});
  EXPECT_EQ(back.applied, 2u);
  EXPECT_EQ(graph_fingerprint(vg.head()), graph_fingerprint(gen::cycle(6)));
  EXPECT_NE(vg.fingerprint(), graph_fingerprint(gen::cycle(6)));

  // Historical replay: at(v) rebuilds every version, edge-set-identical
  // to the head walked forward.
  EXPECT_EQ(graph_fingerprint(vg.at(3)), graph_fingerprint(vg.head()));
  EXPECT_EQ(graph_fingerprint(vg.at(0)), graph_fingerprint(gen::cycle(6)));
  Graph v1 = vg.at(1);
  EXPECT_EQ(v1.num_edges(), 8u);
}

TEST(VersionedGraph, RejectsInvalidBatchesWhole) {
  VersionedGraph vg(gen::cycle(5));
  // Self-loop and out-of-range endpoints reject the whole batch: the
  // valid first op must not land either.
  EXPECT_THROW(vg.apply({{EdgeOpKind::kInsert, 0, 2},
                         {EdgeOpKind::kInsert, 3, 3}}),
               std::invalid_argument);
  EXPECT_THROW(vg.apply({{EdgeOpKind::kInsert, 0, 2},
                         {EdgeOpKind::kRemove, 1, 99}}),
               std::invalid_argument);
  EXPECT_EQ(vg.version(), 0u);
  EXPECT_EQ(vg.head().num_edges(), 5u);
  EXPECT_THROW(vg.at(1), std::out_of_range);
  EXPECT_THROW(vg.delta(0), std::out_of_range);
}

// ------------------------------------------------- clean-source rule

TEST(IncrementalBcRule, EquidistantOpsAreCleanLevelCrossingOpsAreDirty) {
  // Cycle of 8 from source 0: d(1)=1, d(7)=1, d(2)=2, d(6)=2, d(3)=3,
  // d(5)=3, d(4)=4.
  const Graph g = gen::cycle(8);
  IncrementalBcConfig config;
  config.sources = {0};
  const IncrementalBc inc(g, config);

  std::vector<std::uint32_t> dist = {0, 1, 2, 3, 4, 3, 2, 1};
  // (2, 6): both at level 2 — equidistant, inert for source 0.
  EXPECT_TRUE(IncrementalBc::source_is_clean(dist, {{true, 2, 6}}));
  // (1, 3): levels 1 and 3 — creates a shortcut, dirty.
  EXPECT_FALSE(IncrementalBc::source_is_clean(dist, {{true, 1, 3}}));
  // One dirty op poisons the whole batch for that source.
  EXPECT_FALSE(
      IncrementalBc::source_is_clean(dist, {{true, 2, 6}, {false, 3, 4}}));

  // The rule against the maintainer's own classification: an equidistant
  // chord re-runs nothing, and the maintained scores still match a
  // from-scratch build (the inertness claim, checked bit-for-bit).
  VersionedGraph vg(g);
  IncrementalBcConfig all;
  IncrementalBc maintained(g, all);
  vg.apply({{EdgeOpKind::kInsert, 2, 6}});  // equidistant only from 0 & 4
  const auto stats = maintained.apply(vg.head(), vg.delta(1));
  EXPECT_EQ(stats.clean_sources, 2u);
  EXPECT_EQ(stats.dirty_sources, 6u);
  const IncrementalBc fresh(vg.head(), all);
  expect_scores_identical(maintained.scores(), fresh.scores());
}

// ------------------------------------------------- the property matrix

// Random mutation sequences (insert / delete / no-op / duplicate) on a
// connected base; at EVERY version, maintainers running under different
// engines and thread counts must all be bit-identical to a from-scratch
// build at that version.  Connectivity is preserved by construction:
// only chords are ever deleted, never the base cycle.
TEST(StreamProperty, IncrementalMatchesScratchAcrossEnginesAndThreads) {
  const NodeId n = 20;
  const Graph base = gen::cycle(n);
  VersionedGraph vg(base);

  struct Lane {
    const char* name;
    IncrementalBc inc;
  };
  const auto config_for = [&](EngineKind engine, unsigned threads,
                              bool legacy) {
    IncrementalBcConfig config;
    config.engine = engine;
    config.threads = threads;
    config.legacy_engine = legacy;
    return config;
  };
  std::vector<Lane> lanes;
  lanes.push_back({"frontier/1t",
                   IncrementalBc(base, config_for(EngineKind::kFrontier, 1,
                                                  false))});
  lanes.push_back({"arena/4t",
                   IncrementalBc(base, config_for(EngineKind::kArena, 4,
                                                  false))});
  lanes.push_back({"legacy",
                   IncrementalBc(base, config_for(EngineKind::kLegacy, 1,
                                                  true))});

  Rng rng(20260808);
  std::uint64_t total_clean = 0;
  std::uint64_t total_dirty = 0;
  for (int round = 0; round < 8; ++round) {
    // Current chords = head edges beyond the base cycle; only these are
    // deletion candidates.
    std::set<std::pair<NodeId, NodeId>> cycle_edges;
    for (const Edge& e : base.edges()) {
      cycle_edges.insert({std::min(e.u, e.v), std::max(e.u, e.v)});
    }
    std::vector<std::pair<NodeId, NodeId>> chords;
    for (const Edge& e : vg.head().edges()) {
      const auto key = std::make_pair(std::min(e.u, e.v), std::max(e.u, e.v));
      if (cycle_edges.count(key) == 0) {
        chords.push_back(key);
      }
    }
    std::vector<EdgeOp> batch;
    const std::uint64_t ops = 1 + rng.next_below(3);
    for (std::uint64_t k = 0; k < ops; ++k) {
      const std::uint64_t dice = rng.next_below(4);
      if (dice == 0 && !chords.empty()) {
        // Delete a live chord (base cycle stays intact -> connected).
        const auto& c = chords[rng.next_below(chords.size())];
        batch.push_back({EdgeOpKind::kRemove, c.first, c.second});
      } else if (dice == 1) {
        // No-op delete of an edge that may not exist.
        const NodeId u = static_cast<NodeId>(rng.next_below(n));
        const NodeId v = static_cast<NodeId>((u + 2 + rng.next_below(n - 3)) % n);
        batch.push_back({EdgeOpKind::kRemove, u, v});
      } else {
        // Insert a chord; duplicates (in-batch or vs the head) are fair
        // game — canonicalization must drop them.
        const NodeId u = static_cast<NodeId>(rng.next_below(n));
        const NodeId v = static_cast<NodeId>((u + 2 + rng.next_below(n - 3)) % n);
        batch.push_back({EdgeOpKind::kInsert, u, v});
        if (rng.next_below(3) == 0) {
          batch.push_back({EdgeOpKind::kInsert, v, u});  // duplicate
        }
      }
    }
    vg.apply(batch);
    const std::vector<GraphDeltaOp>& delta = vg.delta(vg.version());

    const IncrementalBc fresh(vg.head(), IncrementalBcConfig{});
    for (Lane& lane : lanes) {
      const auto stats = lane.inc.apply(vg.head(), delta);
      total_clean += stats.clean_sources;
      total_dirty += stats.dirty_sources;
      ASSERT_EQ(stats.clean_sources + stats.dirty_sources,
                lane.inc.sources().size());
      SCOPED_TRACE(std::string(lane.name) + " @v" +
                   std::to_string(vg.version()));
      expect_scores_identical(lane.inc.scores(), fresh.scores());
    }
  }
  // The sequence must have exercised both paths of the classifier, or
  // the matrix proved nothing about incrementality.
  EXPECT_GT(total_clean, 0u);
  EXPECT_GT(total_dirty, 0u);
}

// ------------------------------------------------- daemon MUTATE plane

/// An in-process daemon on an ephemeral loopback port, drained on exit.
class DaemonHarness {
 public:
  explicit DaemonHarness(DaemonConfig config) : daemon_(std::move(config)) {
    daemon_.start();
    daemon_.serve_async();
  }
  ~DaemonHarness() {
    daemon_.request_drain();
    daemon_.wait();
  }

  void connect(Client& client) { client.connect("127.0.0.1", daemon_.port()); }

 private:
  Daemon daemon_;
};

std::string karate_text() {
  std::ifstream in(std::string(CONGESTBC_DATA_DIR) + "/karate.txt",
                   std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing data/karate.txt";
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

ResultBlock decode_block(const ResultReply& reply) {
  BitReader reader(reply.block_bytes.data(),
                   static_cast<std::size_t>(reply.block_bits));
  return decode_result_block(reader);
}

SubmitRequest stream_submit(const std::string& ns, std::uint64_t version,
                            bool incremental = false) {
  SubmitRequest request;
  request.source = GraphSource::kInline;
  request.stream_ns = ns;
  request.stream_version = version;
  request.incremental = incremental;
  return request;
}

TEST(StreamDaemon, MutateCreateApplyConflictInvalidateAndServe) {
  DaemonHarness harness(DaemonConfig{});
  Client client;
  harness.connect(client);
  const std::string karate = karate_text();

  // Creation: base graph at version 0, ride-along op applied as v1.
  MutateRequest create;
  create.ns = "live";
  create.base_graph = karate;
  create.ops.push_back({1, 0, 9});
  const MutateReply created = client.mutate(create);
  ASSERT_EQ(created.outcome, MutateOutcome::kCreated) << created.detail;
  EXPECT_EQ(created.version, 1u);
  EXPECT_EQ(created.applied, 1u);

  // Local twin of the namespace, for every identity check below.
  VersionedGraph twin(read_edge_list_text(karate));
  twin.apply({{EdgeOpKind::kInsert, 0, 9}});
  EXPECT_EQ(created.fingerprint, twin.fingerprint());

  // Re-creating an existing namespace is rejected, not overwritten.
  EXPECT_EQ(client.mutate(create).outcome, MutateOutcome::kRejected);
  // Unknown namespace without a base graph: nothing to mutate.
  MutateRequest unknown;
  unknown.ns = "ghost";
  unknown.ops.push_back({1, 0, 2});
  EXPECT_EQ(client.mutate(unknown).outcome, MutateOutcome::kRejected);
  // Submitting against an unknown namespace is a semantic rejection.
  const SubmitReply ghost = client.submit(stream_submit("ghost", 0));
  EXPECT_EQ(ghost.disposition, SubmitDisposition::kRejected);

  // A stream-addressed submit resolves to the SAME fingerprint as the
  // equivalent inline submit — stream addressing changes how the graph
  // is named, never what result identity it has.
  const SubmitReply at_head = client.submit(stream_submit("live", 0));
  ASSERT_NE(at_head.job_id, 0u) << at_head.detail;
  const ResultReply head_result = client.wait_result(at_head.job_id);
  ASSERT_TRUE(head_result.ready);
  SubmitRequest inline_same;
  inline_same.source = GraphSource::kInline;
  inline_same.graph = write_edge_list_text(twin.head());
  const SubmitReply inline_reply = client.submit(inline_same);
  EXPECT_EQ(inline_reply.fingerprint, at_head.fingerprint);
  EXPECT_EQ(inline_reply.disposition, SubmitDisposition::kCacheHit);

  // Version conflict: stale base reports the actual head to rebase on.
  MutateRequest stale;
  stale.ns = "live";
  stale.base_version = 0;
  stale.ops.push_back({1, 2, 8});
  const MutateReply conflict = client.mutate(stale);
  EXPECT_EQ(conflict.outcome, MutateOutcome::kVersionConflict);
  EXPECT_EQ(conflict.version, 1u);
  EXPECT_EQ(conflict.fingerprint, twin.fingerprint());

  // Correct base applies, and invalidation is surgical: exactly the
  // entries this namespace produced, counted by the new STATS counter.
  const std::uint64_t invalidated_before = client.stats().cache_invalidations;
  MutateRequest apply;
  apply.ns = "live";
  apply.base_version = 1;
  apply.ops.push_back({1, 3, 9});
  apply.ops.push_back({1, 2, 8});  // already a karate edge: dropped
  apply.ops.push_back({2, 0, 9});
  const MutateReply applied = client.mutate(apply);
  ASSERT_EQ(applied.outcome, MutateOutcome::kApplied) << applied.detail;
  EXPECT_EQ(applied.applied, 2u);
  EXPECT_EQ(applied.dropped, 1u);
  twin.apply({{EdgeOpKind::kInsert, 3, 9},
              {EdgeOpKind::kInsert, 2, 8},
              {EdgeOpKind::kRemove, 0, 9}});
  EXPECT_EQ(applied.version, 2u);
  EXPECT_EQ(applied.fingerprint, twin.fingerprint());
  EXPECT_GT(client.stats().cache_invalidations, invalidated_before);
  EXPECT_GE(client.stats().mutations_applied, 3u);
  EXPECT_EQ(client.stats().graph_version, 2u);

  // Serving the new head must produce the bits of a direct local run on
  // the materialized graph; the superseded v1 version stays addressable.
  const SubmitReply new_head = client.submit(stream_submit("live", 2));
  ASSERT_NE(new_head.job_id, 0u);
  EXPECT_NE(new_head.fingerprint, at_head.fingerprint);
  const ResultBlock block = decode_block(client.wait_result(new_head.job_id));
  const RunOutcome local =
      run_bc_with_watchdog(twin.head(), DistributedBcOptions{});
  ASSERT_EQ(local.status, RunStatus::kComplete);
  expect_bit_equal(block.betweenness, local.result.betweenness, "betweenness");
  expect_bit_equal(block.stress, local.result.stress, "stress");
  EXPECT_EQ(block.eccentricities, local.result.eccentricities);
  const SubmitReply old_version = client.submit(stream_submit("live", 1));
  EXPECT_EQ(old_version.fingerprint, at_head.fingerprint);

  // Incremental serving: tagged fingerprint family, bits identical to a
  // from-scratch decomposed build at the same version.
  const SubmitReply inc_reply = client.submit(stream_submit("live", 0, true));
  ASSERT_NE(inc_reply.job_id, 0u) << inc_reply.detail;
  EXPECT_NE(inc_reply.fingerprint, new_head.fingerprint);
  const ResultBlock inc_block =
      decode_block(client.wait_result(inc_reply.job_id));
  const IncrementalBc scratch(twin.head(), IncrementalBcConfig{});
  expect_bit_equal(inc_block.betweenness, scratch.scores().betweenness,
                   "incremental betweenness");
  expect_bit_equal(inc_block.closeness, scratch.scores().closeness,
                   "incremental closeness");
  expect_bit_equal(inc_block.stress, scratch.scores().stress,
                   "incremental stress");
  EXPECT_EQ(inc_block.eccentricities, scratch.scores().eccentricities);
  EXPECT_GE(client.stats().dirty_sources_rerun, 34u);  // the full build

  // Incremental without a namespace is semantically invalid.
  SubmitRequest bare;
  bare.source = GraphSource::kInline;
  bare.graph = karate;
  bare.incremental = true;
  EXPECT_EQ(client.submit(bare).disposition, SubmitDisposition::kRejected);
}

#ifdef CONGESTBCD_PATH
struct SpawnedDaemon {
  pid_t pid = -1;
  std::uint16_t port = 0;
};

/// fork/execs the real congestbcd binary and parses "LISTENING <port>".
SpawnedDaemon spawn_daemon(const std::string& spool) {
  int out_pipe[2];
  if (::pipe(out_pipe) != 0) {
    return {};
  }
  const pid_t pid = ::fork();
  if (pid == 0) {
    ::dup2(out_pipe[1], STDOUT_FILENO);
    ::close(out_pipe[0]);
    ::close(out_pipe[1]);
    ::execl(CONGESTBCD_PATH, "congestbcd", "--port", "0", "--workers", "1",
            "--spool", spool.c_str(), static_cast<char*>(nullptr));
    _exit(127);
  }
  ::close(out_pipe[1]);
  SpawnedDaemon daemon;
  daemon.pid = pid;
  FILE* out = ::fdopen(out_pipe[0], "r");
  char line[256];
  while (out != nullptr && std::fgets(line, sizeof line, out) != nullptr) {
    unsigned port = 0;
    if (std::sscanf(line, "LISTENING %u", &port) == 1) {
      daemon.port = static_cast<std::uint16_t>(port);
      break;
    }
  }
  // Leak `out` deliberately: closing it would close the child's stdout
  // reader while the daemon still writes its drain message.
  return daemon;
}

// The crash drill: every acknowledged MUTATE must survive a SIGKILL —
// the journal commit marker is written before the reply, so a restarted
// daemon replays the namespace to the exact pre-crash version and
// fingerprint, and keeps accepting mutations from there.
TEST(StreamDaemon, SigkillRestartReplaysMutationsToExactVersion) {
  TempDir spool("sigkill_replay");
  const std::string karate = karate_text();
  VersionedGraph twin(read_edge_list_text(karate));

  const SpawnedDaemon first = spawn_daemon(spool.str());
  ASSERT_GT(first.pid, 0);
  ASSERT_NE(first.port, 0) << "daemon never announced LISTENING";
  {
    Client client;
    client.connect("127.0.0.1", first.port);
    MutateRequest create;
    create.ns = "crashy";
    create.base_graph = karate;
    ASSERT_EQ(client.mutate(create).outcome, MutateOutcome::kCreated);

    // Three acknowledged batches: insert, net-empty no-op, delete+insert.
    MutateRequest m1;
    m1.ns = "crashy";
    m1.base_version = 0;
    m1.ops.push_back({1, 0, 9});
    ASSERT_EQ(client.mutate(m1).outcome, MutateOutcome::kApplied);
    twin.apply({{EdgeOpKind::kInsert, 0, 9}});

    MutateRequest m2;
    m2.ns = "crashy";
    m2.base_version = 1;
    m2.ops.push_back({1, 9, 0});  // duplicate of the live edge: no-op
    ASSERT_EQ(client.mutate(m2).outcome, MutateOutcome::kApplied);
    twin.apply({{EdgeOpKind::kInsert, 9, 0}});

    MutateRequest m3;
    m3.ns = "crashy";
    m3.base_version = 2;
    m3.ops.push_back({2, 0, 9});
    m3.ops.push_back({1, 4, 9});
    const MutateReply acked = client.mutate(m3);
    ASSERT_EQ(acked.outcome, MutateOutcome::kApplied);
    twin.apply({{EdgeOpKind::kRemove, 0, 9}, {EdgeOpKind::kInsert, 4, 9}});
    ASSERT_EQ(acked.version, 3u);
    ASSERT_EQ(acked.fingerprint, twin.fingerprint());
  }

  ASSERT_EQ(::kill(first.pid, SIGKILL), 0);
  int status = 0;
  ASSERT_EQ(::waitpid(first.pid, &status, 0), first.pid);

  const SpawnedDaemon second = spawn_daemon(spool.str());
  ASSERT_GT(second.pid, 0);
  ASSERT_NE(second.port, 0);
  Client client;
  client.connect("127.0.0.1", second.port);

  // The replayed head: a stale-base MUTATE reports the exact pre-crash
  // version AND fingerprint — the whole chain was reconstructed.
  MutateRequest probe;
  probe.ns = "crashy";
  probe.base_version = 99;
  probe.ops.push_back({1, 1, 3});
  const MutateReply head = client.mutate(probe);
  ASSERT_EQ(head.outcome, MutateOutcome::kVersionConflict);
  EXPECT_EQ(head.version, 3u);
  EXPECT_EQ(head.fingerprint, twin.fingerprint());

  // The chain keeps extending across the crash boundary.
  probe.base_version = 3;
  const MutateReply extended = client.mutate(probe);
  ASSERT_EQ(extended.outcome, MutateOutcome::kApplied) << extended.detail;
  twin.apply({{EdgeOpKind::kInsert, 1, 3}});
  EXPECT_EQ(extended.version, 4u);
  EXPECT_EQ(extended.fingerprint, twin.fingerprint());

  // And the replayed graph serves the right bits.
  const SubmitReply reply = client.submit(stream_submit("crashy", 0));
  ASSERT_NE(reply.job_id, 0u) << reply.detail;
  const ResultBlock block = decode_block(client.wait_result(reply.job_id));
  const RunOutcome local =
      run_bc_with_watchdog(twin.head(), DistributedBcOptions{});
  ASSERT_EQ(local.status, RunStatus::kComplete);
  expect_bit_equal(block.betweenness, local.result.betweenness, "betweenness");
  EXPECT_EQ(block.eccentricities, local.result.eccentricities);

  EXPECT_TRUE(client.shutdown().draining);
  ASSERT_EQ(::waitpid(second.pid, &status, 0), second.pid);
  EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0);
}
#endif  // CONGESTBCD_PATH

}  // namespace
}  // namespace congestbc
