#include "central/centralities.hpp"

#include <gtest/gtest.h>

#include <queue>

#include "common/assert.hpp"
#include "graph/generators.hpp"
#include "graph/properties.hpp"

namespace congestbc {
namespace {

TEST(Closeness, StarGraph) {
  const auto cc = closeness_centrality(gen::star(5));
  EXPECT_DOUBLE_EQ(cc[0], 1.0 / 4);
  EXPECT_DOUBLE_EQ(cc[1], 1.0 / 7);
}

TEST(Closeness, PathEndpointsWorst) {
  const auto cc = closeness_centrality(gen::path(7));
  EXPECT_GT(cc[3], cc[0]);
  EXPECT_DOUBLE_EQ(cc[0], cc[6]);
}

TEST(GraphCentrality, PathGraph) {
  const auto cg = graph_centrality(gen::path(5));
  EXPECT_DOUBLE_EQ(cg[0], 1.0 / 4);
  EXPECT_DOUBLE_EQ(cg[2], 1.0 / 2);
}

TEST(GraphCentrality, CompleteGraphAllOne) {
  const auto cg = graph_centrality(gen::complete(5));
  for (const double value : cg) {
    EXPECT_DOUBLE_EQ(value, 1.0);
  }
}

TEST(Stress, StarGraph) {
  // Center lies on all C(4,2)=6 leaf pairs, each with one shortest path.
  const auto cs = stress_centrality(gen::star(5));
  EXPECT_DOUBLE_EQ(static_cast<double>(cs[0]), 6.0);
  EXPECT_DOUBLE_EQ(static_cast<double>(cs[1]), 0.0);
}

TEST(Stress, PathGraph) {
  // On a path, stress == betweenness (unique shortest paths).
  const auto cs = stress_centrality(gen::path(5));
  EXPECT_DOUBLE_EQ(static_cast<double>(cs[1]), 3.0);
  EXPECT_DOUBLE_EQ(static_cast<double>(cs[2]), 4.0);
}

TEST(Stress, Figure1Example) {
  // sigma_st(v2) over all pairs: (v1,v3):1, (v1,v5):1, (v1,v4):2(both via
  // v2), (v3,v5):1 (of two paths, one via v2).  Total = 5.
  const auto cs = stress_centrality(gen::figure1_example());
  EXPECT_DOUBLE_EQ(static_cast<double>(cs[1]), 5.0);
}

// Definition-level stress for cross-checking the recursion.
std::vector<long double> naive_stress(const Graph& g) {
  const NodeId n = g.num_nodes();
  std::vector<std::vector<std::uint32_t>> dist(n);
  std::vector<std::vector<long double>> sigma(n);
  for (NodeId s = 0; s < n; ++s) {
    dist[s] = bfs_distances(g, s);
    sigma[s].assign(n, 0.0L);
    sigma[s][s] = 1.0L;
    // count paths via BFS order
    std::vector<NodeId> order;
    std::queue<NodeId> q;
    q.push(s);
    std::vector<bool> seen(n, false);
    seen[s] = true;
    while (!q.empty()) {
      const NodeId v = q.front();
      q.pop();
      order.push_back(v);
      for (const NodeId w : g.neighbors(v)) {
        if (!seen[w]) {
          seen[w] = true;
          q.push(w);
        }
        if (dist[s][w] == dist[s][v] + 1) {
          sigma[s][w] += sigma[s][v];
        }
      }
    }
  }
  std::vector<long double> stress(n, 0.0L);
  for (NodeId s = 0; s < n; ++s) {
    for (NodeId t = 0; t < n; ++t) {
      if (s == t) {
        continue;
      }
      for (NodeId v = 0; v < n; ++v) {
        if (v != s && v != t && dist[s][v] + dist[v][t] == dist[s][t]) {
          stress[v] += sigma[s][v] * sigma[v][t];
        }
      }
    }
  }
  for (auto& value : stress) {
    value /= 2.0L;
  }
  return stress;
}

TEST(Stress, MatchesNaiveDefinition) {
  Rng rng(13);
  for (int trial = 0; trial < 8; ++trial) {
    const Graph g = gen::erdos_renyi_connected(16, 0.2, rng);
    const auto fast = stress_centrality(g);
    const auto slow = naive_stress(g);
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      EXPECT_NEAR(static_cast<double>(fast[v]), static_cast<double>(slow[v]),
                  1e-6)
          << "trial " << trial << " node " << v;
    }
  }
}

TEST(Stress, ExponentialCounts) {
  // In a diamond chain the middle of each diamond carries huge counts.
  const Graph g = gen::diamond_chain(50);
  const auto cs = stress_centrality(g);
  // The joint between diamonds 24 and 25 sees 2^24-ish * 2^25-ish paths.
  long double best = 0.0L;
  for (const auto value : cs) {
    best = std::max(best, value);
  }
  EXPECT_GT(best, 1e12L);
}

TEST(Centralities, RejectTrivialGraphs) {
  EXPECT_THROW(closeness_centrality(Graph(1, {})), PreconditionError);
  EXPECT_THROW(graph_centrality(Graph(1, {})), PreconditionError);
}

}  // namespace
}  // namespace congestbc
