#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "common/assert.hpp"
#include "common/table.hpp"

namespace congestbc {
namespace {

TEST(Assert, ExpectsThrowsPreconditionWithContext) {
  try {
    CBC_EXPECTS(1 == 2, "custom context");
    FAIL() << "should have thrown";
  } catch (const PreconditionError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
    EXPECT_NE(what.find("custom context"), std::string::npos);
    EXPECT_NE(what.find("common_test.cpp"), std::string::npos);
  }
}

TEST(Assert, CheckThrowsInvariant) {
  EXPECT_THROW(CBC_CHECK(false, "broken"), InvariantError);
  EXPECT_NO_THROW(CBC_CHECK(true, "fine"));
}

TEST(Assert, ExceptionHierarchy) {
  // Both are std::exceptions so a single catch site suffices downstream.
  EXPECT_THROW(CBC_EXPECTS(false, ""), std::invalid_argument);
  EXPECT_THROW(CBC_CHECK(false, ""), std::logic_error);
}

TEST(Table, AlignsColumns) {
  Table table({"a", "long header"});
  table.add_row({"xxxxx", "1"});
  table.add_row({"y", "22"});
  std::ostringstream os;
  table.print(os);
  const std::string text = os.str();
  // Four lines: header, rule, two rows.
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 4);
  // Every line starts at the same column widths: "xxxxx" sets column 0 to
  // width 5, so "y" is padded.
  EXPECT_NE(text.find("y      "), std::string::npos);
  EXPECT_EQ(table.row_count(), 2u);
}

TEST(Table, RejectsMismatchedRow) {
  Table table({"a", "b"});
  EXPECT_THROW(table.add_row({"only one"}), PreconditionError);
}

TEST(Table, RejectsEmptyHeader) {
  EXPECT_THROW(Table({}), PreconditionError);
}

TEST(FormatDouble, SignificantDigits) {
  EXPECT_EQ(format_double(3.14159265, 3), "3.14");
  EXPECT_EQ(format_double(0.000123456, 3), "0.000123");
  EXPECT_EQ(format_double(2.0, 6), "2");
  EXPECT_EQ(format_double(1234567.0, 4), "1.235e+06");
}

}  // namespace
}  // namespace congestbc
