// The gather-at-root baseline: exactness (the root runs centralized
// Brandes, so values match to soft-float encoding precision) and the
// Theta(D + M + N) round profile that motivates the paper's algorithm.
#include <gtest/gtest.h>

#include "algo/bc_pipeline.hpp"
#include "algo/gather_baseline.hpp"
#include "central/brandes.hpp"
#include "core/validation.hpp"
#include "graph/generators.hpp"

namespace congestbc {
namespace {

TEST(Gather, MatchesBrandesOnSuite) {
  for (const auto& [name, graph] : gen::standard_suite(20, 777)) {
    const auto result = run_gather_bc(graph);
    const auto reference = brandes_bc(graph);
    const auto stats = compare_vectors(result.betweenness, reference, 1e-6);
    EXPECT_LT(stats.max_rel_error, 1e-6) << name;
  }
}

TEST(Gather, SingleNode) {
  const auto result = run_gather_bc(Graph(1, {}));
  EXPECT_EQ(result.betweenness[0], 0.0);
}

TEST(Gather, Figure1Example) {
  const auto result = run_gather_bc(gen::figure1_example());
  EXPECT_NEAR(result.betweenness[1], 3.5, 1e-6);
}

TEST(Gather, RootChoiceIrrelevant) {
  const Graph g = gen::grid(4, 4);
  const auto a = run_gather_bc(g, 0);
  const auto b = run_gather_bc(g, 15);
  // The root reads its own value in full double precision while everyone
  // else gets the soft-float-encoded broadcast, so root choice shifts
  // results by up to one encoding ulp (~2^-28 here).
  const auto stats = compare_vectors(a.betweenness, b.betweenness, 1e-6);
  EXPECT_LT(stats.max_rel_error, 1e-7);
}

TEST(Gather, UnhalvedConvention) {
  const auto result = run_gather_bc(gen::path(5), 0, /*halve=*/false);
  EXPECT_NEAR(result.betweenness[2], 8.0, 1e-6);
}

TEST(Gather, BottleneckCutForcesQuadraticRounds) {
  // Edge streams parallelize over the root's incident tree edges, so on a
  // complete graph gathering is O(N) too.  The separation appears at a
  // bottleneck cut: on a barbell, the whole far clique (m(m-1)/2 edges)
  // must squeeze through the single bridge edge one record per round,
  // while the paper's pipeline stays O(N) regardless.
  const Graph g = gen::barbell(48, 2);  // N=98, far clique: 1128 edges
  const auto gather = run_gather_bc(g);
  const auto pipeline = run_distributed_bc(g);
  EXPECT_GE(gather.rounds, 48u * 47u / 2u);  // bridge serialization
  EXPECT_GT(gather.rounds, pipeline.rounds);
}

TEST(Gather, CompleteGraphParallelizesStreams) {
  // ... and the flip side: with a max-degree root, gathering K_24 needs
  // far fewer rounds than M (the 23 incident edges stream in parallel).
  const Graph dense = gen::complete(24);
  const auto gather = run_gather_bc(dense);
  EXPECT_LT(gather.rounds, dense.num_edges() / 2);
}

TEST(Gather, SparseGraphsAreComparable) {
  // On a path M = N-1: gather is Theta(N) too (and here cheaper, since it
  // skips the N staggered BFS waves).
  const Graph g = gen::path(48);
  const auto gather = run_gather_bc(g);
  EXPECT_LE(gather.rounds, 6u * 48u);
}

TEST(Gather, StaysWithinCongestBudget) {
  Rng rng(3);
  const Graph g = gen::erdos_renyi_connected(32, 0.2, rng);
  // run_gather_bc enforces the budget internally; completing is the check.
  const auto result = run_gather_bc(g);
  EXPECT_LE(result.metrics.max_bits_on_edge_round,
            congest_budget_bits(g.num_nodes()));
}

}  // namespace
}  // namespace congestbc
