#include "core/validation.hpp"

#include <gtest/gtest.h>

#include "common/assert.hpp"

namespace congestbc {
namespace {

TEST(Validation, IdenticalVectorsZeroError) {
  const std::vector<double> v{1.0, 2.0, 3.0};
  const auto stats = compare_vectors(v, v);
  EXPECT_EQ(stats.max_abs_error, 0.0);
  EXPECT_EQ(stats.max_rel_error, 0.0);
  EXPECT_EQ(stats.mean_abs_error, 0.0);
}

TEST(Validation, PicksWorstIndex) {
  const std::vector<double> est{1.0, 2.2, 3.0};
  const std::vector<double> ref{1.0, 2.0, 3.0};
  const auto stats = compare_vectors(est, ref);
  EXPECT_EQ(stats.worst_index, 1u);
  EXPECT_NEAR(stats.max_abs_error, 0.2, 1e-12);
  EXPECT_NEAR(stats.max_rel_error, 0.1, 1e-12);
  EXPECT_NEAR(stats.mean_abs_error, 0.2 / 3, 1e-12);
}

TEST(Validation, RelFloorGuardsZeroReference) {
  const std::vector<double> est{1e-12};
  const std::vector<double> ref{0.0};
  const auto stats = compare_vectors(est, ref, 1e-9);
  EXPECT_LE(stats.max_rel_error, 1e-3 + 1e-15);
}

TEST(Validation, LongDoubleOverload) {
  const std::vector<double> est{2.0};
  const std::vector<long double> ref{2.0L};
  EXPECT_EQ(compare_vectors(est, ref).max_abs_error, 0.0);
}

TEST(Validation, SizeMismatchThrows) {
  EXPECT_THROW(
      compare_vectors(std::vector<double>{1.0}, std::vector<double>{1.0, 2.0}),
      PreconditionError);
}

TEST(Validation, TopKOverlapFullMatch) {
  const std::vector<double> ref{5, 4, 3, 2, 1};
  EXPECT_EQ(top_k_overlap(ref, ref, 2), 1.0);
}

TEST(Validation, TopKOverlapDisjoint) {
  const std::vector<double> est{0, 0, 0, 5, 6};
  const std::vector<double> ref{6, 5, 0, 0, 0};
  EXPECT_EQ(top_k_overlap(est, ref, 2), 0.0);
}

TEST(Validation, TopKOverlapPartial) {
  const std::vector<double> est{9, 1, 8, 0, 0};
  const std::vector<double> ref{9, 8, 1, 0, 0};
  EXPECT_EQ(top_k_overlap(est, ref, 2), 0.5);
}

TEST(Validation, TopKRangeChecked) {
  const std::vector<double> v{1, 2};
  EXPECT_THROW(top_k_overlap(v, v, 0), PreconditionError);
  EXPECT_THROW(top_k_overlap(v, v, 3), PreconditionError);
}

}  // namespace
}  // namespace congestbc
