// Shared helpers for the experiment benches.  Each bench regenerates one
// artifact of the paper (see DESIGN.md experiment index and
// EXPERIMENTS.md for paper-vs-measured records) and prints paper-style
// tables on stdout.
#pragma once

#include <chrono>
#include <iostream>
#include <string>

#include "common/table.hpp"

namespace congestbc::benchutil {

inline void print_header(const std::string& experiment_id,
                         const std::string& claim) {
  std::cout << "\n=== " << experiment_id << " — " << claim << " ===\n";
}

/// Wall-clock helper for baseline comparisons.
class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}
  double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace congestbc::benchutil
