// E7 + E8 — Figure 3 / Lemma 9 / Theorem 6: the betweenness lower-bound
// gadget.
//
// Sweeps the family size n, builds gadgets with and without a planted
// match, and reports: the Lemma 9 prediction C_B(F_i) in {1, 1.5}, the
// centralized Brandes value, the distributed pipeline's estimate, and
// whether a 0.499-relative-error decision rule (Theorem 6) classifies
// every F_i correctly.  The bits the pipeline pushes across the
// (m L-L' edges + P-Q) cut are recorded against the Omega(n log n)
// bottleneck of Theorem 6.
#include <cmath>
#include <iostream>

#include "algo/bc_pipeline.hpp"
#include "bench/bench_util.hpp"
#include "central/brandes.hpp"
#include "common/table.hpp"
#include "graph/lowerbound.hpp"

int main() {
  using namespace congestbc;
  using namespace congestbc::lb;
  benchutil::print_header(
      "E7+E8 / Figure 3, Lemma 9, Theorem 6",
      "BC gadget: C_B(F_i) = 1.5 iff X_i in Y; 0.499-error decision rule");

  Table table({"n", "m", "N", "planted matches", "max |Brandes - Lemma9|",
               "max |pipeline - Brandes|", "decisions correct", "rounds",
               "cut bits", "n*log2(n^2) ref"});

  for (const std::size_t n : {2u, 4u, 8u, 12u, 16u, 24u}) {
    const unsigned m = min_universe_for(n);
    Rng rng(57 + n);
    for (const unsigned planted : {0u, 1u, 2u}) {
      if (planted >= 1 && 2 * (planted - 1) >= n) {
        continue;  // Y_p := X_{2p} below needs 2(planted-1) < n
      }
      // Disjoint random draws, then overwrite `planted` slots with copies.
      SetFamily xf = SetFamily::random(n, m, rng);
      SetFamily yf = SetFamily::random(n, m, rng);
      std::vector<std::uint64_t> ysets;
      for (std::size_t j = 0; j < yf.size(); ++j) {
        std::uint64_t mask = yf.set_mask(j);
        // Avoid accidental matches and duplicates.
        auto clashes = [&](std::uint64_t candidate) {
          for (std::size_t k = 0; k < n; ++k) {
            if (candidate == xf.set_mask(k)) {
              return true;
            }
          }
          for (const auto existing : ysets) {
            if (candidate == existing) {
              return true;
            }
          }
          return false;
        };
        while (clashes(mask)) {
          mask = SetFamily::unrank_subset(m,
                                          rng.next_below(binomial(m, m / 2)));
        }
        ysets.push_back(mask);
      }
      for (unsigned p = 0; p < planted; ++p) {
        ysets[p] = xf.set_mask(2 * p);  // Y_p := X_{2p}
      }
      const auto gadget = build_bc_gadget(xf, SetFamily(m, ysets));

      const auto brandes = brandes_bc(gadget.graph);
      DistributedBcOptions options;
      options.cut_edges = gadget.cut_edges;
      const auto result = run_distributed_bc(gadget.graph, options);

      double lemma_gap = 0.0;
      double pipeline_gap = 0.0;
      bool decisions_ok = true;
      for (std::size_t i = 0; i < n; ++i) {
        const NodeId f = gadget.f[i];
        lemma_gap = std::max(
            lemma_gap, std::abs(brandes[f] - gadget.expected_bc_of_f[i]));
        pipeline_gap =
            std::max(pipeline_gap, std::abs(result.betweenness[f] - brandes[f]));
        // Theorem 6 decision rule: classify as "match" iff the estimate is
        // closer to 1.5 than to 1 (valid for any <0.499 relative error).
        const bool decided_match = result.betweenness[f] > 1.25;
        const bool truly_match = gadget.expected_bc_of_f[i] > 1.25;
        decisions_ok = decisions_ok && (decided_match == truly_match);
      }

      const double ref = static_cast<double>(n) *
                         std::log2(static_cast<double>(n) *
                                   static_cast<double>(n) + 1);
      table.add_row({std::to_string(n), std::to_string(m),
                     std::to_string(gadget.graph.num_nodes()),
                     std::to_string(planted), format_double(lemma_gap, 3),
                     format_double(pipeline_gap, 3),
                     decisions_ok ? "yes" : "NO",
                     std::to_string(result.rounds),
                     std::to_string(result.metrics.cut_bits),
                     format_double(ref, 4)});
    }
  }

  table.print(std::cout);
  std::cout << "\nExpectation (paper): Lemma 9 gap ~ 0 (exact 1 / 1.5); the "
               "pipeline's soft-float error << 0.499 so every decision is "
               "correct; cut bits track the Omega(n log n) bottleneck.\n";
  return 0;
}
