// E3 + E4 — Lemmas 3/5 (CONGEST compliance, Theorem 2) and Lemma 4
// (collision-free aggregation schedule).
//
// For each workload: the per-edge-per-round bit budget B = 16*ceil(log2 N)
// (floored at 128), the largest bundle the run ever placed on an edge, and
// the largest number of logical messages bundled per edge-round split into
// the counting phase (DFS token + wave may legitimately share an edge)
// and the aggregation epoch (Lemma 4: must be exactly 1).  The simulator
// *faults* on any budget violation, so completing a row is itself the
// compliance proof.
#include <cmath>
#include <functional>
#include <iostream>

#include "algo/bc_pipeline.hpp"
#include "bench/bench_util.hpp"
#include "common/table.hpp"
#include "congest/network.hpp"
#include "graph/generators.hpp"

int main() {
  using namespace congestbc;
  benchutil::print_header(
      "E3+E4 / Lemmas 3,4,5",
      "per-edge bits vs the O(log N) budget; Lemma 4 bundle audit");

  Table table({"family", "N", "budget B", "max bits/edge/rd", "utilization",
               "max bundle (counting)", "max bundle (aggregation)",
               "total bits", "avg bits/rd"});

  for (const NodeId n : {32u, 64u, 128u}) {
    for (const auto& [name, graph] : gen::standard_suite(n, 7000 + n)) {
      const auto result = run_distributed_bc(graph);
      const std::uint64_t budget = congest_budget_bits(graph.num_nodes());
      const std::uint64_t counting_bundle =
          result.metrics.max_logical_on_edge_in(0,
                                                result.aggregation_epoch - 1);
      const std::uint64_t agg_bundle = result.metrics.max_logical_on_edge_in(
          result.aggregation_epoch, result.metrics.rounds);
      table.add_row(
          {name, std::to_string(graph.num_nodes()), std::to_string(budget),
           std::to_string(result.metrics.max_bits_on_edge_round),
           format_double(
               static_cast<double>(result.metrics.max_bits_on_edge_round) /
                   static_cast<double>(budget),
               3),
           std::to_string(counting_bundle), std::to_string(agg_bundle),
           std::to_string(result.metrics.total_bits),
           format_double(static_cast<double>(result.metrics.total_bits) /
                             static_cast<double>(result.rounds),
                         1)});
    }
  }

  table.print(std::cout);
  std::cout << "\nExpectation (paper): every cell in 'max bits/edge/rd' <= B "
               "(Lemmas 3/5); 'max bundle (aggregation)' == 1 (Lemma 4).\n";
  return 0;
}
