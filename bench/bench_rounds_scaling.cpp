// E2 — Theorem 3: the pipeline computes BC for all nodes in O(N) rounds.
//
// Sweeps N across graph families and reports rounds and rounds/N; the
// ratio must stay (roughly) constant as N doubles, demonstrating linear
// scaling.  The naive Theta(N*D) schedule (sequential_counting: let each
// BFS wave drain before the next source starts) is run alongside on the
// high-diameter families where the gap is starkest — the paper's whole
// point is beating that baseline.
#include <cmath>
#include <functional>
#include <iostream>

#include "algo/bc_pipeline.hpp"
#include "bench/bench_util.hpp"
#include "common/table.hpp"
#include "graph/generators.hpp"
#include "graph/properties.hpp"

namespace {

using namespace congestbc;

void sweep_family(const std::string& family, Table& table,
                  const std::function<Graph(NodeId)>& make,
                  const std::vector<NodeId>& sizes, bool run_sequential) {
  std::vector<double> xs;
  std::vector<double> ys;
  for (const NodeId n : sizes) {
    const Graph g = make(n);
    const auto result = run_distributed_bc(g);
    std::string seq_rounds = "-";
    std::string speedup = "-";
    if (run_sequential) {
      DistributedBcOptions seq;
      seq.sequential_counting = true;
      const auto seq_result = run_distributed_bc(g, seq);
      seq_rounds = std::to_string(seq_result.rounds);
      speedup = format_double(static_cast<double>(seq_result.rounds) /
                                  static_cast<double>(result.rounds),
                              3);
    }
    xs.push_back(static_cast<double>(g.num_nodes()));
    ys.push_back(static_cast<double>(result.rounds));
    table.add_row({family, std::to_string(g.num_nodes()),
                   std::to_string(diameter(g)), std::to_string(result.rounds),
                   format_double(static_cast<double>(result.rounds) /
                                     static_cast<double>(g.num_nodes()),
                                 3),
                   seq_rounds, speedup});
  }
  // Least-squares fit rounds = a*N + b: the slope is the O(N) constant.
  const auto k = static_cast<double>(xs.size());
  double sx = 0;
  double sy = 0;
  double sxx = 0;
  double sxy = 0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sx += xs[i];
    sy += ys[i];
    sxx += xs[i] * xs[i];
    sxy += xs[i] * ys[i];
  }
  const double slope = (k * sxy - sx * sy) / (k * sxx - sx * sx);
  const double intercept = (sy - slope * sx) / k;
  std::cout << "  fit[" << family << "]: rounds = " << format_double(slope, 4)
            << " * N + " << format_double(intercept, 4) << "\n";
}

}  // namespace

int main() {
  using namespace congestbc;
  benchutil::print_header(
      "E2 / Theorem 3",
      "O(N)-round scaling vs the naive Theta(N*D) drain schedule");

  Table table({"family", "N", "D", "rounds", "rounds/N", "naive rounds",
               "naive/ours"});
  const std::vector<NodeId> sizes{32, 64, 128, 256};
  const std::vector<NodeId> small_sizes{32, 64, 128};

  sweep_family("path", table, [](NodeId n) { return gen::path(n); },
               small_sizes, /*run_sequential=*/true);
  sweep_family("cycle", table, [](NodeId n) { return gen::cycle(n); },
               small_sizes, true);
  sweep_family("grid", table,
               [](NodeId n) {
                 const auto side = static_cast<NodeId>(
                     std::round(std::sqrt(static_cast<double>(n))));
                 return gen::grid(side, side);
               },
               sizes, true);
  sweep_family("binary tree", table,
               [](NodeId n) {
                 unsigned height = 1;
                 while ((NodeId{2} << (height + 1)) - 1 <= n) {
                   ++height;
                 }
                 return gen::balanced_tree(2, height);
               },
               sizes, false);
  sweep_family("ER(2lnN/N)", table,
               [](NodeId n) {
                 Rng rng(1000 + n);
                 const double p = std::min(
                     1.0, 2.0 * std::log(static_cast<double>(n)) /
                              static_cast<double>(n));
                 return gen::erdos_renyi_connected(n, p, rng);
               },
               sizes, false);
  sweep_family("BA(m=2)", table,
               [](NodeId n) {
                 Rng rng(2000 + n);
                 return gen::barabasi_albert(n, 2, rng);
               },
               sizes, false);
  sweep_family("star", table, [](NodeId n) { return gen::star(n); }, sizes,
               false);

  table.print(std::cout);
  std::cout << "\nExpectation (paper): rounds/N roughly constant per family; "
               "naive/ours grows with D.\n";
  return 0;
}
