// E5 — Theorem 1 / Corollary 1: the soft-float message encoding keeps the
// relative error of every betweenness value at O(2^-L).
//
// Workload: a layered blowup whose path counts reach 6^60 ~ 2^155 — far
// beyond both 64-bit integers and IEEE doubles — plus a diamond chain
// (sigma = 2^k).  We sweep the mantissa width L and report the measured
// max relative error against the exact (BigUint + long double) Brandes,
// next to the theoretical envelope (1+2^-(L-1))^(2D+4) - 1.  A second
// table ablates the rounding policy (DESIGN.md D2).
#include <cmath>
#include <iostream>

#include "algo/bc_pipeline.hpp"
#include "bench/bench_util.hpp"
#include "central/brandes.hpp"
#include "common/table.hpp"
#include "core/validation.hpp"
#include "graph/generators.hpp"
#include "graph/properties.hpp"

namespace {

using namespace congestbc;

double run_with_format(const Graph& g, const std::vector<long double>& exact,
                       unsigned mantissa_bits, RoundingMode sigma_mode,
                       RoundingMode psi_mode) {
  DistributedBcOptions options;
  auto fmt = SoftFloatFormat::for_graph(g.num_nodes());
  fmt.mantissa_bits = mantissa_bits;
  options.format = fmt;
  options.budget_bits = 0;  // the sweep intentionally exceeds the default
  options.sigma_rounding = sigma_mode;
  options.psi_rounding = psi_mode;
  const auto result = run_distributed_bc(g, options);
  return compare_vectors(result.betweenness, exact, 1e-6).max_rel_error;
}

}  // namespace

int main() {
  using namespace congestbc;
  benchutil::print_header(
      "E5 / Theorem 1, Corollary 1",
      "measured BC error vs mantissa width L on exponential path counts");

  struct Workload {
    std::string name;
    Graph graph;
    std::string sigma_magnitude;
  };
  std::vector<Workload> workloads;
  workloads.push_back({"diamond_chain(40)", gen::diamond_chain(40), "2^40"});
  workloads.push_back(
      {"layered_blowup(6,60)", gen::layered_blowup(6, 60), "6^60 ~ 2^155"});

  for (const auto& w : workloads) {
    const auto exact = brandes_bc_exact(w.graph);
    const double d = static_cast<double>(diameter(w.graph));
    std::cout << "\nworkload " << w.name << " (N=" << w.graph.num_nodes()
              << ", D=" << d << ", max sigma " << w.sigma_magnitude << ")\n";
    Table table({"L (mantissa bits)", "max rel error",
                 "theory envelope (1+2^-(L-1))^(2D+4)-1", "error*2^L"});
    for (const unsigned L : {10u, 12u, 16u, 20u, 24u, 28u, 32u, 40u, 48u}) {
      const double err = run_with_format(w.graph, exact, L, RoundingMode::kUp,
                                         RoundingMode::kDown);
      const double eta = std::ldexp(1.0, -static_cast<int>(L) + 1);
      const double envelope = std::pow(1 + eta, 2 * d + 4) - 1;
      table.add_row({std::to_string(L), format_double(err, 4),
                     format_double(envelope, 4),
                     format_double(err * std::ldexp(1.0, static_cast<int>(L)),
                                   4)});
    }
    table.print(std::cout);
  }

  // Rounding-policy ablation at a fixed width.
  std::cout << "\nRounding-policy ablation (L=20, layered_blowup(6,60)):\n";
  const auto& g = workloads[1].graph;
  const auto exact = brandes_bc_exact(g);
  Table ablation({"sigma rounding", "psi rounding", "max rel error"});
  const std::vector<std::pair<std::string, RoundingMode>> modes{
      {"up", RoundingMode::kUp},
      {"down", RoundingMode::kDown},
      {"nearest", RoundingMode::kNearest}};
  for (const auto& [sname, smode] : modes) {
    for (const auto& [pname, pmode] : modes) {
      ablation.add_row({sname, pname,
                        format_double(run_with_format(g, exact, 20, smode,
                                                      pmode),
                                      4)});
    }
  }
  ablation.print(std::cout);

  std::cout << "\nExpectation (paper): error halves per extra mantissa bit "
               "(error*2^L roughly constant) and stays below the envelope; "
               "the paper's up/down split and nearest/nearest are both "
               "inside it.\n";
  return 0;
}
