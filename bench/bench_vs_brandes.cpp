// E9 — end-to-end parity: the distributed pipeline (Algorithms 2+3 under
// the full CONGEST simulation) against centralized Brandes (Algorithm 1)
// across every generator family.
//
// Columns: max relative BC error (must sit at soft-float precision, i.e.
// ~2^-(L-1) * O(D)), CONGEST rounds, total traffic, and wall-clock of
// simulation vs Brandes (engineering context: the simulator pays for
// faithful bit-level accounting).
#include <iostream>

#include "algo/bc_pipeline.hpp"
#include "bench/bench_util.hpp"
#include "central/brandes.hpp"
#include "common/table.hpp"
#include "core/validation.hpp"
#include "graph/generators.hpp"
#include "graph/properties.hpp"

int main() {
  using namespace congestbc;
  benchutil::print_header(
      "E9 / Algorithms 2+3 vs Algorithm 1",
      "distributed == centralized within the soft-float envelope");

  Table table({"family", "N", "M", "D", "max rel err", "worst node", "rounds",
               "total Mbits", "sim secs", "Brandes secs"});

  for (const NodeId n : {48u, 96u}) {
    for (const auto& [name, graph] : gen::standard_suite(n, 4242 + n)) {
      benchutil::Stopwatch sim_watch;
      const auto result = run_distributed_bc(graph);
      const double sim_secs = sim_watch.seconds();

      benchutil::Stopwatch brandes_watch;
      const auto reference = brandes_bc(graph);
      const double brandes_secs = brandes_watch.seconds();

      const auto stats = compare_vectors(result.betweenness, reference, 1e-6);
      table.add_row(
          {name, std::to_string(graph.num_nodes()),
           std::to_string(graph.num_edges()), std::to_string(result.diameter),
           format_double(stats.max_rel_error, 3),
           std::to_string(stats.worst_index), std::to_string(result.rounds),
           format_double(static_cast<double>(result.metrics.total_bits) / 1e6,
                         4),
           format_double(sim_secs, 3), format_double(brandes_secs, 3)});
    }
  }

  table.print(std::cout);
  std::cout << "\nExpectation (paper): every max-rel-err cell is ~1e-8 or "
               "smaller — the distributed algorithm is exact up to the "
               "Section-VI floating point encoding.\n";
  return 0;
}
