// E1 — Figure 1 reproduction.
//
// Regenerates the paper's worked example: the five send-time tables
// T_s(v) = T_s + D - d(s,v) (one per BFS tree, Figure 1(a)-(e)), the psi
// walkthrough of Section VII, and the final betweenness column with
// C_B(v2) = 7/2.  Absolute T_s values differ from the paper's (our DFS
// separates sources by d+2 instead of the idealized d+1); every relation
// the figure demonstrates is reproduced, with the offsets printed so the
// tables can be compared side by side.
#include <cmath>
#include <iostream>

#include "algo/bc_pipeline.hpp"
#include "bench/bench_util.hpp"
#include "central/brandes.hpp"
#include "common/table.hpp"
#include "graph/generators.hpp"

int main() {
  using namespace congestbc;
  benchutil::print_header("E1 / Figure 1",
                          "send-time tables and C_B(v2) = 7/2 on the "
                          "5-node worked example");

  const Graph g = gen::figure1_example();
  DistributedBcOptions options;
  options.keep_tables = true;
  const auto result = run_distributed_bc(g, options);

  auto node_name = [](NodeId v) { return "v" + std::to_string(v + 1); };

  // One table per source, like Figure 1(a)-(e).
  for (NodeId s = 0; s < g.num_nodes(); ++s) {
    std::uint64_t t_s = 0;
    for (const auto& e : result.tables[0]) {
      if (e.source == s) {
        t_s = e.t_start;
      }
    }
    std::cout << "\nBFS(" << node_name(s) << "): T_s = " << t_s
              << " (epoch " << result.aggregation_epoch << ", D = "
              << result.diameter << ")\n";
    Table table({"node", "d(s,v)", "sigma", "send time T_s(v)",
                 "relative send slot"});
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      for (const auto& e : result.tables[v]) {
        if (e.source != s || e.dist == 0) {
          continue;
        }
        table.add_row({node_name(v), std::to_string(e.dist),
                       format_double(e.sigma.to_double(), 3),
                       std::to_string(e.agg_send_round),
                       std::to_string(e.agg_send_round -
                                      result.aggregation_epoch - t_s)});
      }
    }
    table.print(std::cout);
  }

  // Section VII walkthrough: dependencies of v1 on the other nodes.
  std::cout << "\nSection VII walkthrough (source v1):\n";
  Table psi_table({"node", "psi_v1(v)", "sigma_v1v", "delta_v1(v)"});
  for (NodeId v = 1; v < g.num_nodes(); ++v) {
    for (const auto& e : result.tables[v]) {
      if (e.source != 0) {
        continue;
      }
      const double psi = e.psi.to_double();
      const double sigma = e.sigma.to_double();
      psi_table.add_row({node_name(v), format_double(psi, 6),
                         format_double(sigma, 3),
                         format_double(psi * sigma, 6)});
    }
  }
  psi_table.print(std::cout);

  // Final column: distributed vs centralized Brandes.
  const auto reference = brandes_bc(g);
  std::cout << "\nBetweenness centralities (paper: C_B(v2) = 7/2):\n";
  Table bc_table({"node", "distributed C_B", "Brandes C_B", "abs diff"});
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    bc_table.add_row(
        {node_name(v), format_double(result.betweenness[v], 8),
         format_double(reference[v], 8),
         format_double(std::abs(result.betweenness[v] - reference[v]), 3)});
  }
  bc_table.print(std::cout);

  std::cout << "\nrounds used: " << result.rounds
            << ", max bits/edge/round: "
            << result.metrics.max_bits_on_edge_round << "\n";
  return 0;
}
