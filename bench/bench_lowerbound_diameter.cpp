// E6 — Figure 2 / Lemma 8: the diameter lower-bound gadget.
//
// For a sweep of family sizes n (with the paper's m = O(log n) universe
// choice, C(m, m/2) >= n^2), builds matched and disjoint instances and
// verifies that the diameter is exactly x+2 or x as Lemma 8 states.  The
// distributed pipeline is then run on the gadget: its diameter output
// must make the same call, and the bits it pushes across the m+1-path cut
// are recorded — the quantity Theorem 5 lower-bounds by Omega(n log n).
#include <cmath>
#include <iostream>

#include "algo/bc_pipeline.hpp"
#include "bench/bench_util.hpp"
#include "common/table.hpp"
#include "graph/lowerbound.hpp"
#include "graph/properties.hpp"

int main() {
  using namespace congestbc;
  using namespace congestbc::lb;
  benchutil::print_header(
      "E6 / Figure 2, Lemma 8, Theorem 5",
      "diameter gadget: D = x or x+2 iff the families share a subset");

  const unsigned x = 8;
  Table table({"n", "m", "N", "case", "Lemma 8 D", "BFS D", "pipeline D",
               "rounds", "cut bits", "n*log2(n^2) ref"});

  for (const std::size_t n : {2u, 4u, 8u, 12u, 16u}) {
    const unsigned m = min_universe_for(n);
    Rng rng(31 + n);
    for (const bool plant_match : {false, true}) {
      auto xf = SetFamily::random(n, m, rng);
      auto yf = SetFamily::random(n, m, rng);
      // Force the desired case.
      std::vector<std::uint64_t> ysets;
      for (std::size_t j = 0; j < yf.size(); ++j) {
        ysets.push_back(yf.set_mask(j));
      }
      if (plant_match) {
        ysets[n / 2] = xf.set_mask(n / 2);
      } else {
        for (auto& mask : ysets) {
          for (std::size_t i = 0; i < n; ++i) {
            if (mask == xf.set_mask(i)) {
              // Re-draw until distinct from every X subset.
              do {
                mask = SetFamily::unrank_subset(
                    m, rng.next_below(binomial(m, m / 2)));
              } while ([&] {
                for (std::size_t k = 0; k < n; ++k) {
                  if (mask == xf.set_mask(k)) {
                    return true;
                  }
                }
                return false;
              }());
            }
          }
        }
      }
      const auto gadget = build_diameter_gadget(xf, SetFamily(m, ysets), x);
      const auto central_d = diameter(gadget.graph);

      DistributedBcOptions options;
      options.cut_edges = gadget.cut_edges;
      const auto result = run_distributed_bc(gadget.graph, options);

      const double ref = static_cast<double>(n) *
                         std::log2(static_cast<double>(n) *
                                   static_cast<double>(n) + 1);
      table.add_row({std::to_string(n), std::to_string(m),
                     std::to_string(gadget.graph.num_nodes()),
                     plant_match ? "match" : "disjoint",
                     std::to_string(gadget.expected_diameter),
                     std::to_string(central_d), std::to_string(result.diameter),
                     std::to_string(result.rounds),
                     std::to_string(result.metrics.cut_bits),
                     format_double(ref, 4)});
    }
  }

  table.print(std::cout);
  std::cout << "\nExpectation (paper): 'Lemma 8 D' == 'BFS D' == 'pipeline D' "
               "in every row; cut bits grow at least like the n*log n "
               "reference (Theorem 5's bottleneck).\n";
  return 0;
}
