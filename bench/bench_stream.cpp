// bench_stream — incremental-vs-full recompute on a streaming delta.
//
// The claim under test (ISSUE 8 acceptance): on ba_10k with a small
// mutation batch (<= 1% of edges), IncrementalBc::apply beats a
// from-scratch rebuild at the same version by >= 2x wall-clock.  The
// comparison is apples-to-apples by construction: the baseline is a
// fresh IncrementalBc at the new version — the exact computation whose
// bits the maintained state must reproduce — so the speedup is pure
// dirty-source avoidance, not a change of product.
//
// The delta is the favorable-but-realistic streaming case: triadic
// closures — edges between two neighbors of a shared hub.  Sibling
// nodes sit on the same BFS level for most sources, so the clean-source
// rule (d_s(u) == d_s(v) => inert) prunes most of the re-run set.  The
// batch is chosen deterministically (fixed seeds, greedy by cleanliness
// against the sampled source set), so the row is reproducible.
//
// Usage: bench_stream [OUT.json]   (default BENCH_stream.json)
// Exit 1 if the speedup gate fails or the bits diverge.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <queue>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "graph/generators.hpp"
#include "graph/graph.hpp"
#include "stream/incremental_bc.hpp"
#include "stream/versioned_graph.hpp"

namespace {

using namespace congestbc;

/// Plain BFS distances — candidate scoring only; the engine is not
/// involved until the timed section.
std::vector<std::uint32_t> bfs_distances(const Graph& g, NodeId source) {
  std::vector<std::uint32_t> dist(g.num_nodes(), ~std::uint32_t{0});
  std::queue<NodeId> queue;
  dist[source] = 0;
  queue.push(source);
  while (!queue.empty()) {
    const NodeId u = queue.front();
    queue.pop();
    for (const NodeId v : g.neighbors(u)) {
      if (dist[v] == ~std::uint32_t{0}) {
        dist[v] = dist[u] + 1;
        queue.push(v);
      }
    }
  }
  return dist;
}

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration_cast<std::chrono::duration<double>>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

bool bits_equal(const std::vector<double>& a, const std::vector<double>& b) {
  if (a.size() != b.size()) {
    return false;
  }
  return std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_stream.json";

  // The scale-tier graph and sampling the simulator bench uses: ba_10k
  // (seed 7, attach 2), sources drawn with seed 11.
  Rng graph_rng(7);
  const Graph base = gen::barabasi_albert(10'000, 2, graph_rng);
  constexpr std::uint64_t kSources = 64;
  Rng source_rng(11);
  std::vector<NodeId> sources;
  for (const std::uint64_t s :
       source_rng.sample_without_replacement(base.num_nodes(), kSources)) {
    sources.push_back(static_cast<NodeId>(s));
  }
  std::sort(sources.begin(), sources.end());

  // Candidate triadic closures: non-edges between neighbors of the
  // highest-degree hubs, scored by how many sampled sources see them as
  // equidistant (= how many summaries an insert leaves untouched).
  std::vector<std::vector<std::uint32_t>> dist;
  dist.reserve(sources.size());
  for (const NodeId s : sources) {
    dist.push_back(bfs_distances(base, s));
  }
  std::set<std::pair<NodeId, NodeId>> edge_set;
  for (const Edge& e : base.edges()) {
    edge_set.insert({std::min(e.u, e.v), std::max(e.u, e.v)});
  }
  std::vector<NodeId> by_degree(base.num_nodes());
  for (NodeId v = 0; v < base.num_nodes(); ++v) {
    by_degree[v] = v;
  }
  std::sort(by_degree.begin(), by_degree.end(), [&](NodeId a, NodeId b) {
    const std::size_t da = base.neighbors(a).size();
    const std::size_t db = base.neighbors(b).size();
    if (da != db) {
      return da > db;
    }
    return a < b;
  });
  struct Candidate {
    NodeId u = 0;
    NodeId v = 0;
    std::size_t clean = 0;
  };
  std::vector<Candidate> candidates;
  for (std::size_t h = 0; h < 8 && h < by_degree.size(); ++h) {
    const auto& siblings = base.neighbors(by_degree[h]);
    const std::size_t cap = std::min<std::size_t>(siblings.size(), 24);
    for (std::size_t i = 0; i < cap; ++i) {
      for (std::size_t j = i + 1; j < cap; ++j) {
        NodeId u = siblings[i];
        NodeId v = siblings[j];
        if (u > v) {
          std::swap(u, v);
        }
        if (u == v || edge_set.count({u, v}) != 0) {
          continue;
        }
        Candidate c{u, v, 0};
        for (const auto& d : dist) {
          if (d[u] == d[v]) {
            ++c.clean;
          }
        }
        candidates.push_back(c);
      }
    }
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              if (a.clean != b.clean) {
                return a.clean > b.clean;
              }
              return std::make_pair(a.u, a.v) < std::make_pair(b.u, b.v);
            });
  std::vector<stream::EdgeOp> batch;
  std::set<std::pair<NodeId, NodeId>> chosen;
  for (const Candidate& c : candidates) {
    if (batch.size() >= 3) {
      break;
    }
    if (chosen.insert({c.u, c.v}).second) {
      batch.push_back({stream::EdgeOpKind::kInsert, c.u, c.v});
    }
  }
  if (batch.empty()) {
    std::fprintf(stderr, "bench_stream: no candidate closure found\n");
    return 1;
  }

  stream::IncrementalBcConfig config;
  config.sources = sources;
  stream::VersionedGraph vg(base);

  // Warm state at version 0 (not timed — both contenders start from a
  // fully built maintainer / a fully materialized head).
  stream::IncrementalBc maintained(base, config);
  const auto outcome = vg.apply(batch);

  const auto t_inc = std::chrono::steady_clock::now();
  const auto stats = maintained.apply(vg.head(), vg.delta(outcome.version));
  const double incremental_seconds = seconds_since(t_inc);

  const auto t_full = std::chrono::steady_clock::now();
  const stream::IncrementalBc scratch(vg.head(), config);
  const double full_seconds = seconds_since(t_full);

  if (!bits_equal(maintained.scores().betweenness,
                  scratch.scores().betweenness)) {
    std::fprintf(stderr,
                 "bench_stream: maintained scores diverged from scratch\n");
    return 1;
  }
  const double speedup =
      incremental_seconds > 0 ? full_seconds / incremental_seconds : 0.0;

  const std::string row =
      "{\n"
      "  \"benchmark\": \"stream-incremental-recompute\",\n"
      "  \"rows\": [\n"
      "    {\"graph\": \"ba_10k\", \"nodes\": " +
      std::to_string(base.num_nodes()) +
      ", \"edges\": " + std::to_string(base.num_edges()) +
      ", \"sources\": " + std::to_string(sources.size()) +
      ", \"delta_ops\": " + std::to_string(batch.size()) +
      ", \"dirty_sources\": " + std::to_string(stats.dirty_sources) +
      ", \"clean_sources\": " + std::to_string(stats.clean_sources) +
      ", \"full_seconds\": " + std::to_string(full_seconds) +
      ", \"incremental_seconds\": " + std::to_string(incremental_seconds) +
      ", \"speedup\": " + std::to_string(speedup) +
      "}\n"
      "  ]\n"
      "}\n";
  std::printf("%s", row.c_str());
  if (FILE* out = std::fopen(out_path.c_str(), "w")) {
    std::fputs(row.c_str(), out);
    std::fclose(out);
  } else {
    std::fprintf(stderr, "bench_stream: cannot write %s\n", out_path.c_str());
    return 1;
  }
  if (speedup < 2.0) {
    std::fprintf(stderr,
                 "bench_stream: speedup %.2fx below the 2x acceptance gate\n",
                 speedup);
    return 1;
  }
  return 0;
}
