// E16 — resilience cost of the self-healing transport (google-benchmark).
//
// The paper's round/bit bounds assume reliable synchronous delivery; this
// bench measures what exactness costs once that assumption is dropped.
// For drop rates p in {0, 0.01, 0.05, 0.1, 0.2} it runs the full BC
// pipeline under the reliable transport and reports, as counters:
//   * rounds        — outer (physical) rounds used
//   * round_x       — rounds relative to the fault-free bare pipeline
//   * bits_x        — total bits relative to the fault-free bare pipeline
//   * retrans       — stop-and-wait retransmissions
//   * dropped       — physical messages lost to the injected faults
// The computed centralities are asserted bit-identical to the fault-free
// reference on every iteration — a wrong-but-fast transport would be
// meaningless to benchmark.
#include <benchmark/benchmark.h>

#include <cstdlib>
#include <iostream>

#include "algo/bc_pipeline.hpp"
#include "graph/generators.hpp"

namespace {

using namespace congestbc;

/// Fault-free bare-pipeline baseline for a graph (computed once per
/// benchmark registration; the reference for both correctness and cost).
struct Baseline {
  DistributedBcResult result;
};

const Baseline& baseline_for(const Graph& g) {
  // Benchmarks for one graph family share a static: the generator is
  // deterministic, so the graph (and hence the baseline) is too.
  static Baseline cache;
  static std::uint32_t cached_nodes = 0;
  static std::uint64_t cached_edges = 0;
  if (cached_nodes != g.num_nodes() || cached_edges != g.num_edges()) {
    cache.result = run_distributed_bc(g);
    cached_nodes = g.num_nodes();
    cached_edges = g.num_edges();
  }
  return cache;
}

void run_reliable_under_drop(benchmark::State& state, const Graph& g,
                             double drop) {
  const Baseline& base = baseline_for(g);
  DistributedBcOptions options;
  options.reliable_transport = true;
  if (drop > 0.0) {
    options.faults = FaultPlan::uniform_drop(/*seed=*/42, drop);
  }

  std::uint64_t rounds = 0;
  std::uint64_t bits = 0;
  std::uint64_t retransmissions = 0;
  std::uint64_t dropped = 0;
  for (auto _ : state) {
    BcRun run(g, options);
    run.run();
    const auto result = run.harvest();
    if (result.betweenness != base.result.betweenness) {
      std::cerr << "FATAL: reliable transport diverged from the fault-free "
                   "reference (drop="
                << drop << ")\n";
      std::abort();
    }
    rounds = result.rounds;
    bits = result.metrics.total_bits;
    retransmissions = run.total_retransmissions();
    dropped = result.metrics.dropped_messages;
    benchmark::DoNotOptimize(result.betweenness.data());
  }

  const auto& ref = base.result.metrics;
  state.counters["rounds"] = static_cast<double>(rounds);
  state.counters["round_x"] =
      static_cast<double>(rounds) / static_cast<double>(ref.rounds);
  state.counters["bits_x"] =
      static_cast<double>(bits) / static_cast<double>(ref.total_bits);
  state.counters["retrans"] = static_cast<double>(retransmissions);
  state.counters["dropped"] = static_cast<double>(dropped);
}

void BM_ReliableBcGrid(benchmark::State& state) {
  const Graph g = gen::grid(6, 6);
  run_reliable_under_drop(state, g,
                          static_cast<double>(state.range(0)) / 100.0);
}
BENCHMARK(BM_ReliableBcGrid)
    ->Arg(0)
    ->Arg(1)
    ->Arg(5)
    ->Arg(10)
    ->Arg(20)
    ->Unit(benchmark::kMillisecond);

void BM_ReliableBcBa(benchmark::State& state) {
  Rng rng(7);
  const Graph g = gen::barabasi_albert(48, 2, rng);
  run_reliable_under_drop(state, g,
                          static_cast<double>(state.range(0)) / 100.0);
}
BENCHMARK(BM_ReliableBcBa)
    ->Arg(0)
    ->Arg(1)
    ->Arg(5)
    ->Arg(10)
    ->Arg(20)
    ->Unit(benchmark::kMillisecond);

void BM_BareBcNoFaults(benchmark::State& state) {
  // The denominator of the overhead ratios, measured directly so the
  // wall-clock of transport framing is visible too.
  const Graph g = gen::grid(6, 6);
  for (auto _ : state) {
    const auto result = run_distributed_bc(g);
    benchmark::DoNotOptimize(result.betweenness.data());
  }
  const auto& ref = baseline_for(g).result.metrics;
  state.counters["rounds"] = static_cast<double>(ref.rounds);
  state.counters["bits"] = static_cast<double>(ref.total_bits);
}
BENCHMARK(BM_BareBcNoFaults)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
