// E15 (baseline) — gather-at-root vs the paper's pipeline.
//
// The canonical CONGEST strawman ships the whole topology to the root,
// computes centrally, and broadcasts results.  Its true cost is
// Theta(D + B + N) where B is the heaviest edge load on any single tree
// edge: streams parallelize over branches, so on complete graphs it is
// O(N), but a bottleneck cut (barbell bridge) serializes a whole
// clique's m(m-1)/2 edge records — Theta(N^2) — while the paper's
// pipeline stays O(N).  The bench shows both regimes.
#include <cmath>
#include <iostream>

#include "algo/bc_pipeline.hpp"
#include "algo/gather_baseline.hpp"
#include "bench/bench_util.hpp"
#include "central/brandes.hpp"
#include "common/table.hpp"
#include "core/validation.hpp"
#include "graph/generators.hpp"

int main() {
  using namespace congestbc;
  benchutil::print_header(
      "E15 / gather-at-root baseline",
      "Theta(D+M+N) topology gathering vs the paper's O(N) pipeline");

  Table table({"workload", "N", "M", "gather rounds", "pipeline rounds",
               "gather/pipeline", "gather max err", "pipeline max err"});

  auto row = [&](const std::string& name, const Graph& g) {
    const auto gather = run_gather_bc(g);
    const auto pipeline = run_distributed_bc(g);
    const auto reference = brandes_bc(g);
    table.add_row(
        {name, std::to_string(g.num_nodes()), std::to_string(g.num_edges()),
         std::to_string(gather.rounds), std::to_string(pipeline.rounds),
         format_double(static_cast<double>(gather.rounds) /
                           static_cast<double>(pipeline.rounds),
                       3),
         format_double(
             compare_vectors(gather.betweenness, reference, 1e-6).max_rel_error,
             3),
         format_double(compare_vectors(pipeline.betweenness, reference, 1e-6)
                           .max_rel_error,
                       3)});
  };

  const NodeId n = 96;
  row("path", gen::path(n));
  row("tree (random)", [] {
    Rng rng(5);
    return gen::random_tree(96, rng);
  }());
  for (const double p : {0.05, 0.2, 0.8}) {
    Rng rng(static_cast<std::uint64_t>(p * 1000));
    row("ER(p=" + format_double(p, 2) + ")",
        gen::erdos_renyi_connected(n, p, rng));
  }
  row("complete K64", gen::complete(64));
  for (const NodeId m : {24u, 48u, 96u}) {
    row("barbell(" + std::to_string(m) + ",2)", gen::barbell(m, 2));
  }

  table.print(std::cout);
  std::cout << "\nExpectation: on well-connected graphs gathering "
               "parallelizes and both are O(N); on the barbells the bridge "
               "serializes ~m^2/2 edge records and gather/pipeline grows "
               "linearly with m — the regime where the paper's O(N) bound "
               "matters.\n";
  return 0;
}
