// E11 — the sampled-source estimator (related work, Section II: Holzer's
// thesis sketch / Brandes–Pich sampling) on the same CONGEST pipeline:
// only k staggered BFS waves run and dependencies are scaled by N/k.
//
// Sweeps k and reports rounds (saving vs the exact run), the max relative
// BC error, and the top-10 ranking overlap — the metric approximate BC is
// actually used for.
#include <cmath>
#include <iostream>

#include "algo/bc_pipeline.hpp"
#include "bench/bench_util.hpp"
#include "central/brandes.hpp"
#include "common/table.hpp"
#include "core/validation.hpp"
#include "graph/generators.hpp"

int main() {
  using namespace congestbc;
  benchutil::print_header(
      "E11 / Section II sampling",
      "accuracy vs rounds for the sampled-source estimator");

  struct Workload {
    std::string name;
    Graph graph;
  };
  Rng gen_rng(2026);
  std::vector<Workload> workloads;
  workloads.push_back({"BA(m=2) N=128", gen::barabasi_albert(128, 2, gen_rng)});
  workloads.push_back(
      {"WS(k=2,b=0.2) N=128", gen::watts_strogatz(128, 2, 0.2, gen_rng)});
  workloads.push_back(
      {"ER(2lnN/N) N=128",
       gen::erdos_renyi_connected(
           128, 2.0 * std::log(128.0) / 128.0, gen_rng)});

  for (const auto& w : workloads) {
    const auto reference = brandes_bc(w.graph);
    std::cout << "\nworkload " << w.name << ":\n";
    Table table({"k sources", "rounds", "round saving", "max rel err",
                 "mean abs err", "top-10 overlap"});
    std::uint64_t full_rounds = 0;
    for (const std::size_t k : {128u, 64u, 32u, 16u, 8u, 4u}) {
      DistributedBcOptions options;
      Rng mask_rng(99 + k);
      std::vector<bool> mask(w.graph.num_nodes(), false);
      for (const auto s :
           mask_rng.sample_without_replacement(w.graph.num_nodes(), k)) {
        mask[static_cast<std::size_t>(s)] = true;
      }
      options.sources = mask;
      const auto result = run_distributed_bc(w.graph, options);
      if (k == 128) {
        full_rounds = result.rounds;
      }
      const auto stats = compare_vectors(result.betweenness, reference, 1e-3);
      table.add_row(
          {std::to_string(k), std::to_string(result.rounds),
           format_double(1.0 - static_cast<double>(result.rounds) /
                                   static_cast<double>(full_rounds),
                         3),
           format_double(stats.max_rel_error, 3),
           format_double(stats.mean_abs_error, 4),
           format_double(top_k_overlap(result.betweenness, reference, 10),
                         3)});
    }
    table.print(std::cout);
  }

  std::cout << "\nExpectation: k=N reproduces the exact algorithm; smaller k "
               "trades accuracy for rounds while the high-BC ranking "
               "degrades gracefully (Brandes–Pich behaviour).\n";
  return 0;
}
