// E10 — Section I's claim that linear-time distributed APSP yields the
// other shortest-path centralities: one pipeline run computes
// betweenness, closeness, graph (eccentricity) and stress centrality in
// the same O(N) rounds.  Each is compared against its centralized
// reference.
#include <iostream>

#include "algo/bc_pipeline.hpp"
#include "bench/bench_util.hpp"
#include "central/brandes.hpp"
#include "central/centralities.hpp"
#include "common/table.hpp"
#include "core/validation.hpp"
#include "graph/generators.hpp"

int main() {
  using namespace congestbc;
  benchutil::print_header(
      "E10 / Section I (Eqs. 1-4)",
      "one O(N)-round pipeline -> all four centrality indices");

  Table table({"family", "N", "rounds", "BC max rel err", "CC max rel err",
               "CG max rel err", "CS max rel err"});

  for (const auto& [name, graph] : gen::standard_suite(64, 91)) {
    const auto result = run_distributed_bc(graph);

    const auto bc_ref = brandes_bc(graph);
    const auto cc_ref = closeness_centrality(graph);
    const auto cg_ref = graph_centrality(graph);
    const auto cs_ref = stress_centrality(graph);

    std::vector<double> stress_as_double(result.stress.size());
    for (std::size_t i = 0; i < result.stress.size(); ++i) {
      stress_as_double[i] = static_cast<double>(result.stress[i]);
    }

    table.add_row(
        {name, std::to_string(graph.num_nodes()),
         std::to_string(result.rounds),
         format_double(compare_vectors(result.betweenness, bc_ref, 1e-6)
                           .max_rel_error,
                       3),
         format_double(
             compare_vectors(result.closeness, cc_ref, 1e-9).max_rel_error,
             3),
         format_double(compare_vectors(result.graph_centrality, cg_ref, 1e-9)
                           .max_rel_error,
                       3),
         format_double(
             compare_vectors(stress_as_double, cs_ref, 1e-6).max_rel_error,
             3)});
  }

  table.print(std::cout);
  std::cout << "\nExpectation: closeness/graph centrality are bit-exact "
               "(integer distances travel losslessly); BC and stress carry "
               "only soft-float error.\n";
  return 0;
}
