// bench_portfolio — the portfolio's speed/accuracy trade on ba_10k.
//
// The claim under test (ISSUE 9 acceptance): the sampled backend beats
// the paper-exact backend by >= 2x wall-clock while staying within 5%
// max BC error on ba_10k.  The gate runs at kGateSamples = 2500
// sources (25% of n); the default latency-first budget
// (resolve_sample_budget(10k) = 400) rides along as its own row — it
// trades harder (~10% max error at ~35x), and that is the point the
// daemon's auto-downgrade serves, so both ends of the curve are
// pinned here.
//
// Error is reported relative to the largest exact BC score: the
// absolute Hoeffding bound (sampled_error_bound) is a worst-case
// guarantee, but what a ranking consumer feels is max |approx - exact|
// as a fraction of the top score.
//
// All legs run through run_portfolio with identical options except
// the backend fields (threads=1, frontier engine — the same pinning as
// BENCH_simulator.json rows), so the speedup is pure source-budget
// arithmetic plus the per-wave costs the engine actually pays.  A cfp
// row rides along for scale context (round-model backend, no gate).
//
// Usage: bench_portfolio [OUT.json]   (default BENCH_portfolio.json)
// Exit 1 if the speedup or error gate fails.
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "graph/generators.hpp"
#include "graph/graph.hpp"
#include "portfolio/backend.hpp"

namespace {

using namespace congestbc;

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration_cast<std::chrono::duration<double>>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

struct TimedRun {
  RunOutcome outcome;
  double seconds = 0.0;
};

TimedRun timed_run(const Graph& g, BackendId backend, std::uint32_t samples,
                   std::uint64_t seed) {
  portfolio::BackendRequest request;
  request.graph = &g;
  request.options.backend = backend;
  request.options.approx_samples = samples;
  request.options.approx_seed = seed;
  const auto t0 = std::chrono::steady_clock::now();
  TimedRun run{portfolio::run_portfolio(request), 0.0};
  run.seconds = seconds_since(t0);
  return run;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_portfolio.json";

  // The scale-tier graph every 10k bench row uses: ba_10k (seed 7,
  // attach 2).  Sampled source draws pinned at seed 7 as well.
  Rng graph_rng(7);
  const Graph g = gen::barabasi_albert(10'000, 2, graph_rng);
  const std::uint32_t default_budget =
      portfolio::resolve_sample_budget(g.num_nodes(), 0);
  constexpr std::uint32_t kGateSamples = 2500;

  std::fprintf(stderr, "bench_portfolio: paper_exact on ba_10k (%u sources)\n",
               static_cast<unsigned>(g.num_nodes()));
  const TimedRun exact =
      timed_run(g, BackendId::kPaperExact, /*samples=*/0, /*seed=*/0);
  std::fprintf(stderr, "bench_portfolio: sampled on ba_10k (%u sources)\n",
               kGateSamples);
  const TimedRun gated =
      timed_run(g, BackendId::kSampled, kGateSamples, /*seed=*/7);
  std::fprintf(stderr,
               "bench_portfolio: sampled on ba_10k (default budget, %u)\n",
               static_cast<unsigned>(default_budget));
  const TimedRun fast =
      timed_run(g, BackendId::kSampled, /*samples=*/0, /*seed=*/7);
  std::fprintf(stderr, "bench_portfolio: cfp on ba_10k\n");
  const TimedRun cfp = timed_run(g, BackendId::kCfp, /*samples=*/0, /*seed=*/0);

  if (!exact.outcome.complete() || !gated.outcome.complete() ||
      !fast.outcome.complete() || !cfp.outcome.complete()) {
    std::fprintf(stderr, "bench_portfolio: a backend run did not complete\n");
    return 1;
  }

  const auto& exact_bc = exact.outcome.result.betweenness;
  double max_exact = 0.0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    max_exact = std::max(max_exact, exact_bc[v]);
  }
  const auto error_pct = [&](const std::vector<double>& approx) {
    double max_abs = 0.0;
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      max_abs = std::max(max_abs, std::fabs(approx[v] - exact_bc[v]));
    }
    return max_exact > 0 ? 100.0 * max_abs / max_exact : 0.0;
  };
  const auto speedup_vs_exact = [&](double seconds) {
    return seconds > 0 ? exact.seconds / seconds : 0.0;
  };
  const double gated_error = error_pct(gated.outcome.result.betweenness);
  const double gated_speedup = speedup_vs_exact(gated.seconds);
  const double fast_error = error_pct(fast.outcome.result.betweenness);
  const double fast_speedup = speedup_vs_exact(fast.seconds);

  const auto sampled_row = [&](const TimedRun& run, std::uint32_t sources,
                               double error, double speedup) {
    return "    {\"backend\": \"sampled\", \"sources\": " +
           std::to_string(sources) +
           ", \"seconds\": " + std::to_string(run.seconds) +
           ", \"rounds\": " + std::to_string(run.outcome.result.rounds) +
           ", \"max_error_pct\": " + std::to_string(error) +
           ", \"speedup_vs_exact\": " + std::to_string(speedup) + "}";
  };
  const std::string row =
      "{\n"
      "  \"benchmark\": \"portfolio-speed-accuracy\",\n"
      "  \"graph\": \"ba_10k\", \"nodes\": " +
      std::to_string(g.num_nodes()) +
      ", \"edges\": " + std::to_string(g.num_edges()) +
      ",\n"
      "  \"rows\": [\n"
      "    {\"backend\": \"paper_exact\", \"sources\": " +
      std::to_string(g.num_nodes()) +
      ", \"seconds\": " + std::to_string(exact.seconds) +
      ", \"rounds\": " + std::to_string(exact.outcome.result.rounds) +
      ", \"max_error_pct\": 0.0},\n" +
      sampled_row(gated, kGateSamples, gated_error, gated_speedup) + ",\n" +
      sampled_row(fast, default_budget, fast_error, fast_speedup) + ",\n" +
      "    {\"backend\": \"cfp\", \"sources\": " +
      std::to_string(g.num_nodes()) +
      ", \"seconds\": " + std::to_string(cfp.seconds) +
      ", \"rounds\": " + std::to_string(cfp.outcome.result.rounds) +
      ", \"max_error_pct\": 0.0}\n"
      "  ],\n"
      "  \"gate\": {\"samples\": " +
      std::to_string(kGateSamples) +
      ", \"min_speedup\": 2.0, \"max_error_pct\": 5.0}\n"
      "}\n";
  std::printf("%s", row.c_str());
  if (FILE* out = std::fopen(out_path.c_str(), "w")) {
    std::fputs(row.c_str(), out);
    std::fclose(out);
  } else {
    std::fprintf(stderr, "bench_portfolio: cannot write %s\n",
                 out_path.c_str());
    return 1;
  }
  if (gated_speedup < 2.0) {
    std::fprintf(stderr,
                 "bench_portfolio: speedup %.2fx below the 2x gate\n",
                 gated_speedup);
    return 1;
  }
  if (gated_error > 5.0) {
    std::fprintf(stderr,
                 "bench_portfolio: max BC error %.2f%% above the 5%% gate\n",
                 gated_error);
    return 1;
  }
  return 0;
}
