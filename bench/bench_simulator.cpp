// E12 — engineering throughput of the CONGEST simulator itself.
//
// Two personalities in one binary:
//
//   * default: the google-benchmark suite (wall-clock per full pipeline
//     run and derived message/round throughput).  Not a paper claim; it
//     documents what a downstream user can expect from the substrate.
//
//   * `bench_simulator --engine-report [flags]`: machine-readable engine
//     comparison.  Runs the pipeline under the legacy PR-1 engine, the
//     static-partition arena engine, and the frontier-aware engine at
//     several thread counts, and writes BENCH_simulator.json with
//     rounds/sec, logical-messages/sec and heap-allocation counts per
//     run.  Flags:
//       --baseline        legacy engine at threads=1 only (the
//                         reproducible before-picture; diff two reports
//                         with scripts/bench_compare.py)
//       --big             add the scale tier: ba_10k / er_10k (16
//                         sampled sources) and ba_100k (8 sampled
//                         sources), frontier thread curve included
//       --graphs A,B,..   keep only the named graphs (CI smoke uses
//                         --graphs ba_10k)
//       --threads L       override the thread list, e.g. --threads 1,4
//       --snap FILE       ingest a SNAP-style edge list (headerless
//                         "u v" lines, '#' comments) and bench it too
//       --huge            time *generation* of the 10^6-node BA/ER
//                         graphs (the full BC pipeline stores O(N log N)
//                         bits per node, so a simulated 1M-node run
//                         needs ~TBs of node state; the generators and
//                         ingestion are the 1M-ready layer)
//       --out FILE        report path (default BENCH_simulator.json)
//       --repetitions N   repetitions per small-graph row (default 3;
//                         scale-tier rows always run once)
//
//     Every row records the host's hardware_threads so a comparison
//     script can refuse to read a "speedup" off an oversubscribed run.
//     The report also asserts that steady-state heap allocations on the
//     small graphs are thread-count-invariant per engine (the arena
//     engine once leaked a per-round std::function per lane — ~300
//     extra allocations per run at 8 threads; this gate keeps that
//     fixed).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <new>
#include <optional>
#include <string>
#include <vector>

#include "algo/bc_pipeline.hpp"
#include "algo/bfs_tree.hpp"
#include "central/brandes.hpp"
#include "common/rng.hpp"
#include "core/thread_pool.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"

// ------------------------------------------------------------------
// Global heap-allocation counter.  Counts every operator-new call in
// the process — exactly the "allocation count" the engine report
// publishes, because the point of the arena path is to drive this
// number (per pipeline run) down to a warm-up constant.
namespace {
std::atomic<std::uint64_t> g_heap_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  g_heap_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size == 0 ? 1 : size)) {
    return p;
  }
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { ::operator delete(p); }
void operator delete(void* p, std::size_t) noexcept { ::operator delete(p); }
void operator delete[](void* p, std::size_t) noexcept { ::operator delete(p); }

namespace {

using namespace congestbc;

// ------------------------------------------------------------ benchmarks

void BM_PipelineGrid(benchmark::State& state) {
  const auto side = static_cast<NodeId>(state.range(0));
  const Graph g = gen::grid(side, side);
  std::uint64_t rounds = 0;
  std::uint64_t messages = 0;
  for (auto _ : state) {
    const auto result = run_distributed_bc(g);
    rounds = result.rounds;
    messages = result.metrics.total_logical_messages;
    benchmark::DoNotOptimize(result.betweenness.data());
  }
  state.counters["nodes"] = static_cast<double>(g.num_nodes());
  state.counters["rounds"] = static_cast<double>(rounds);
  state.counters["msgs"] = static_cast<double>(messages);
  state.counters["msgs/s"] = benchmark::Counter(
      static_cast<double>(messages), benchmark::Counter::kIsIterationInvariantRate);
}
BENCHMARK(BM_PipelineGrid)
    ->Arg(4)
    ->Arg(6)
    ->Arg(8)
    ->Arg(10)
    ->Arg(14)
    ->Unit(benchmark::kMillisecond);

void BM_PipelineBa(benchmark::State& state) {
  Rng rng(7);
  const Graph g =
      gen::barabasi_albert(static_cast<NodeId>(state.range(0)), 2, rng);
  for (auto _ : state) {
    const auto result = run_distributed_bc(g);
    benchmark::DoNotOptimize(result.betweenness.data());
  }
}
BENCHMARK(BM_PipelineBa)->Arg(32)->Arg(64)->Arg(128)->Arg(256)->Unit(benchmark::kMillisecond);

void BM_CentralizedBrandes(benchmark::State& state) {
  Rng rng(7);
  const Graph g =
      gen::barabasi_albert(static_cast<NodeId>(state.range(0)), 2, rng);
  for (auto _ : state) {
    const auto bc = brandes_bc(g);
    benchmark::DoNotOptimize(bc.data());
  }
}
BENCHMARK(BM_CentralizedBrandes)->Arg(32)->Arg(64)->Arg(128)->Unit(benchmark::kMillisecond);

void BM_SimulatorNetworkOnly(benchmark::State& state) {
  // Tree construction alone: isolates simulator overhead from algorithm
  // work (O(D) rounds, N programs).
  const auto side = static_cast<NodeId>(state.range(0));
  const Graph g = gen::grid(side, side);
  const WireFormat fmt =
      WireFormat::for_graph(g.num_nodes(), SoftFloatFormat::for_graph(g.num_nodes()));
  for (auto _ : state) {
    Network net(g,
                NetworkConfig{congest_budget_bits(g.num_nodes()), 100000, true});
    const auto metrics = net.run([&](NodeId v) {
      return std::make_unique<BfsTreeProgram>(v, 0, fmt);
    });
    benchmark::DoNotOptimize(metrics.rounds);
  }
}
BENCHMARK(BM_SimulatorNetworkOnly)->Arg(8)->Arg(16)->Arg(24)->Unit(benchmark::kMillisecond);

// --------------------------------------------------------- engine report

Graph load_dataset(const char* name) {
  for (const std::string prefix : {"data/", "../data/", "../../data/"}) {
    std::ifstream file(prefix + name);
    if (file.good()) {
      return read_edge_list(file);
    }
  }
  std::fprintf(stderr, "bench_simulator: data/%s not found (run from repo root)\n",
               name);
  std::exit(2);
}

const char* engine_name(EngineKind engine) {
  switch (engine) {
    case EngineKind::kLegacy:
      return "legacy";
    case EngineKind::kArena:
      return "arena";
    case EngineKind::kFrontier:
      return "frontier";
  }
  return "?";
}

/// Marks `k` seed-drawn distinct sources on an n-node graph (the sampled
/// estimator configuration the scale tier runs under).
std::vector<bool> sampled_sources(NodeId n, std::uint64_t k,
                                  std::uint64_t seed) {
  Rng rng(seed);
  std::vector<bool> mask(n, false);
  for (const std::uint64_t s : rng.sample_without_replacement(n, k)) {
    mask[static_cast<std::size_t>(s)] = true;
  }
  return mask;
}

struct ReportRow {
  std::string graph;
  std::uint32_t nodes = 0;
  std::string engine;  ///< "legacy", "arena", or "frontier"
  unsigned threads = 1;
  unsigned hardware_threads = 1;  ///< of the host that produced the row
  std::uint64_t samples = 0;      ///< sampled sources (0 = every node)
  double seconds = 0;  ///< mean wall-clock per run
  std::uint64_t rounds = 0;
  double rounds_per_sec = 0;
  std::uint64_t logical_messages = 0;
  double messages_per_sec = 0;
  std::uint64_t heap_allocations = 0;  ///< mean operator-new calls per run
};

/// One benchmark graph plus how the report should run it.
struct BenchGraph {
  std::string name;
  Graph graph;
  std::uint64_t samples = 0;  ///< 0 = all-sources exact BC
  bool scale_tier = false;    ///< single repetition, no warm-up run
};

ReportRow measure(const BenchGraph& bg, EngineKind engine, unsigned threads,
                  int repetitions) {
  DistributedBcOptions options;
  options.engine = engine;
  options.threads = threads;
  // Real lanes even when the host has fewer cores: the row carries
  // hardware_threads so readers can gate speedup claims themselves.
  options.frontier_clamp_lanes = false;
  if (bg.samples != 0) {
    options.sources = sampled_sources(bg.graph.num_nodes(), bg.samples, 11);
  }
  if (bg.scale_tier) {
    repetitions = 1;
  } else {
    run_distributed_bc(bg.graph, options);  // warm-up (page-in, pools)
  }

  ReportRow row;
  row.graph = bg.name;
  row.nodes = bg.graph.num_nodes();
  row.engine = engine_name(engine);
  row.threads = threads;
  row.hardware_threads = ThreadPool::hardware_threads();
  row.samples = bg.samples;

  double total_seconds = 0;
  std::uint64_t total_allocs = 0;
  for (int rep = 0; rep < repetitions; ++rep) {
    const std::uint64_t allocs_before =
        g_heap_allocations.load(std::memory_order_relaxed);
    const auto t0 = std::chrono::steady_clock::now();
    const auto result = run_distributed_bc(bg.graph, options);
    const auto t1 = std::chrono::steady_clock::now();
    total_seconds += std::chrono::duration<double>(t1 - t0).count();
    total_allocs +=
        g_heap_allocations.load(std::memory_order_relaxed) - allocs_before;
    row.rounds = result.rounds;
    row.logical_messages = result.metrics.total_logical_messages;
  }
  row.seconds = total_seconds / repetitions;
  row.heap_allocations = total_allocs / static_cast<std::uint64_t>(repetitions);
  row.rounds_per_sec = static_cast<double>(row.rounds) / row.seconds;
  row.messages_per_sec =
      static_cast<double>(row.logical_messages) / row.seconds;
  return row;
}

void write_json(const std::vector<ReportRow>& rows, const std::string& path,
                bool baseline) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "bench_simulator: cannot write %s\n", path.c_str());
    std::exit(2);
  }
  out << "{\n"
      << "  \"benchmark\": \"congest-simulator-engine\",\n"
      << "  \"mode\": \"" << (baseline ? "baseline" : "full") << "\",\n"
      << "  \"hardware_threads\": " << ThreadPool::hardware_threads() << ",\n"
      << "  \"rows\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const ReportRow& r = rows[i];
    char buffer[640];
    std::snprintf(buffer, sizeof buffer,
                  "    {\"graph\": \"%s\", \"nodes\": %u, \"engine\": \"%s\", "
                  "\"threads\": %u, \"hardware_threads\": %u, "
                  "\"samples\": %llu, \"seconds\": %.6f, \"rounds\": %llu, "
                  "\"rounds_per_sec\": %.1f, \"logical_messages\": %llu, "
                  "\"messages_per_sec\": %.1f, \"heap_allocations\": %llu}%s\n",
                  r.graph.c_str(), r.nodes, r.engine.c_str(), r.threads,
                  r.hardware_threads,
                  static_cast<unsigned long long>(r.samples), r.seconds,
                  static_cast<unsigned long long>(r.rounds), r.rounds_per_sec,
                  static_cast<unsigned long long>(r.logical_messages),
                  r.messages_per_sec,
                  static_cast<unsigned long long>(r.heap_allocations),
                  i + 1 < rows.size() ? "," : "");
    out << buffer;
  }
  out << "  ]\n}\n";
}

/// Steady-state allocations must not scale with the lane count: the only
/// thread-dependent allocations are one-time lane scratch (contexts,
/// arena blocks, pool queues), bounded here by a small per-lane budget.
/// Applies to the exact-BC small graphs, where every engine row ran.
int check_alloc_invariance(const std::vector<ReportRow>& rows) {
  int failures = 0;
  for (const ReportRow& base : rows) {
    if (base.threads != 1 || base.samples != 0) {
      continue;  // small exact-BC graphs only
    }
    for (const ReportRow& other : rows) {
      if (other.graph != base.graph || other.engine != base.engine ||
          other.threads <= 1 || other.samples != 0) {
        continue;
      }
      const std::uint64_t lo =
          std::min(base.heap_allocations, other.heap_allocations);
      const std::uint64_t hi =
          std::max(base.heap_allocations, other.heap_allocations);
      const std::uint64_t budget = 64 + 16ull * other.threads;
      if (hi - lo > budget) {
        std::fprintf(stderr,
                     "ALLOC DRIFT: %s/%s %llu allocs at 1 thread but %llu at "
                     "%u threads (budget %llu) — a per-round allocation is "
                     "scaling with the lane count\n",
                     base.graph.c_str(), base.engine.c_str(),
                     static_cast<unsigned long long>(base.heap_allocations),
                     static_cast<unsigned long long>(other.heap_allocations),
                     other.threads, static_cast<unsigned long long>(budget));
        ++failures;
      }
    }
  }
  return failures;
}

bool contains(const std::vector<std::string>& list, const std::string& s) {
  for (const std::string& x : list) {
    if (x == s) {
      return true;
    }
  }
  return false;
}

std::vector<std::string> split_commas(const std::string& s) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= s.size()) {
    const std::size_t comma = s.find(',', start);
    if (comma == std::string::npos) {
      if (start < s.size()) {
        out.push_back(s.substr(start));
      }
      break;
    }
    if (comma > start) {
      out.push_back(s.substr(start, comma - start));
    }
    start = comma + 1;
  }
  return out;
}

/// --huge: the 10^6-node tier.  The generators and the SNAP reader are
/// the layers that must handle 1M nodes; the simulated pipeline itself
/// stores Theta(N log N) bits *per node* (each node ends up knowing the
/// whole distance table — that is the algorithm's output), so a full
/// 1M-node BC simulation needs terabytes of node state and is reported
/// here as generation/ingestion throughput instead.
void run_huge_tier() {
  const auto time_gen = [](const char* name, auto&& make) {
    const auto t0 = std::chrono::steady_clock::now();
    const Graph g = make();
    const auto t1 = std::chrono::steady_clock::now();
    std::printf("huge tier: %-8s %u nodes %zu edges generated in %.2fs\n",
                name, g.num_nodes(), g.num_edges(),
                std::chrono::duration<double>(t1 - t0).count());
  };
  time_gen("ba_1m", [] {
    Rng rng(7);
    return gen::barabasi_albert(1'000'000, 2, rng);
  });
  time_gen("er_1m", [] {
    Rng rng(13);
    return gen::erdos_renyi_sparse(1'000'000, 4.0, rng);
  });
}

int run_engine_report(bool baseline, const std::string& out_path,
                      int repetitions, bool big,
                      const std::vector<std::string>& graph_filter,
                      const std::vector<unsigned>& threads_override,
                      const std::vector<std::string>& snap_paths,
                      bool huge) {
  std::vector<BenchGraph> graphs;
  graphs.push_back({"karate", load_dataset("karate.txt"), 0, false});
  graphs.push_back({"lesmis", load_dataset("lesmis.txt"), 0, false});
  graphs.push_back({"grid14", gen::grid(14, 14), 0, false});
  if (big) {
    Rng ba10(7);
    graphs.push_back(
        {"ba_10k", gen::barabasi_albert(10'000, 2, ba10), 16, true});
    Rng er10(13);
    graphs.push_back(
        {"er_10k", gen::erdos_renyi_sparse(10'000, 4.0, er10), 16, true});
    Rng ba100(7);
    graphs.push_back(
        {"ba_100k", gen::barabasi_albert(100'000, 2, ba100), 8, true});
  }
  for (const std::string& path : snap_paths) {
    std::ifstream file(path);
    if (!file) {
      std::fprintf(stderr, "bench_simulator: cannot read %s\n", path.c_str());
      return 2;
    }
    Graph g = read_snap_edge_list(file);
    const std::size_t slash = path.find_last_of('/');
    const std::string name =
        "snap:" + (slash == std::string::npos ? path : path.substr(slash + 1));
    const std::uint64_t samples = g.num_nodes() > 512 ? 16 : 0;
    const bool scale_tier = g.num_nodes() > 2000;
    graphs.push_back({name, std::move(g), samples, scale_tier});
  }

  std::vector<ReportRow> rows;
  for (const BenchGraph& bg : graphs) {
    if (!graph_filter.empty() && !contains(graph_filter, bg.name)) {
      continue;
    }
    struct Config {
      EngineKind engine;
      unsigned threads;
    };
    std::vector<Config> configs;
    if (baseline) {
      configs = {{EngineKind::kLegacy, 1}};  // the before-picture
    } else if (!bg.scale_tier) {
      configs = {{EngineKind::kLegacy, 1},   {EngineKind::kArena, 1},
                 {EngineKind::kArena, 2},    {EngineKind::kArena, 8},
                 {EngineKind::kFrontier, 1}, {EngineKind::kFrontier, 2},
                 {EngineKind::kFrontier, 8}};
    } else if (bg.graph.num_nodes() > 50'000) {
      // 100k+: the legacy and arena engines pay O(N) per round across
      // ~10 N rounds — hours per run.  The frontier curve is the story.
      configs = {{EngineKind::kFrontier, 1},
                 {EngineKind::kFrontier, 2},
                 {EngineKind::kFrontier, 4},
                 {EngineKind::kFrontier, 8}};
    } else {
      configs = {{EngineKind::kArena, 1},
                 {EngineKind::kFrontier, 1},
                 {EngineKind::kFrontier, 2},
                 {EngineKind::kFrontier, 4},
                 {EngineKind::kFrontier, 8}};
    }
    if (!threads_override.empty()) {
      std::vector<Config> filtered;
      for (const Config& c : configs) {
        for (const unsigned t : threads_override) {
          if (c.threads == t) {
            filtered.push_back(c);
          }
        }
      }
      configs = filtered;
    }
    for (const Config& c : configs) {
      const ReportRow row = measure(bg, c.engine, c.threads, repetitions);
      std::printf(
          "%-12s %-8s threads=%u  %10.1f rounds/s  %12.0f msgs/s  %8llu "
          "allocs  (%.3fs/run)\n",
          row.graph.c_str(), row.engine.c_str(), row.threads,
          row.rounds_per_sec, row.messages_per_sec,
          static_cast<unsigned long long>(row.heap_allocations), row.seconds);
      rows.push_back(row);
    }
  }

  const auto find = [&](const std::string& graph, const char* engine,
                        unsigned threads) -> const ReportRow* {
    for (const ReportRow& r : rows) {
      if (r.graph == graph && r.engine == engine && r.threads == threads) {
        return &r;
      }
    }
    return nullptr;
  };
  if (!baseline) {
    // Headline ratios.  Speedup-vs-threads is only meaningful when the
    // host actually has the cores; print it with that caveat attached.
    const unsigned hw = ThreadPool::hardware_threads();
    if (const ReportRow* before = find("grid14", "legacy", 1)) {
      if (const ReportRow* after = find("grid14", "arena", 1)) {
        std::printf("grid14 speedup (arena/legacy, threads=1): %.2fx; "
                    "allocations %llu -> %llu\n",
                    before->seconds / after->seconds,
                    static_cast<unsigned long long>(before->heap_allocations),
                    static_cast<unsigned long long>(after->heap_allocations));
      }
    }
    for (const char* graph : {"ba_10k", "ba_100k"}) {
      const ReportRow* one = find(graph, "frontier", 1);
      const ReportRow* eight = find(graph, "frontier", 8);
      if (one != nullptr && eight != nullptr) {
        std::printf("%s frontier speedup (8T vs 1T): %.2fx%s\n", graph,
                    one->seconds / eight->seconds,
                    hw < 8 ? "  [host has fewer cores — not a speedup claim]"
                           : "");
      }
    }
  }

  const int drift = check_alloc_invariance(rows);
  write_json(rows, out_path, baseline);
  std::printf("wrote %s\n", out_path.c_str());
  if (huge) {
    run_huge_tier();
  }
  return drift == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  bool engine_report = false;
  bool baseline = false;
  bool big = false;
  bool huge = false;
  int repetitions = 3;
  std::string out_path = "BENCH_simulator.json";
  std::vector<std::string> graph_filter;
  std::vector<unsigned> threads_override;
  std::vector<std::string> snap_paths;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--engine-report") {
      engine_report = true;
    } else if (arg == "--baseline") {
      engine_report = true;
      baseline = true;
    } else if (arg == "--big") {
      engine_report = true;
      big = true;
    } else if (arg == "--huge") {
      engine_report = true;
      huge = true;
    } else if (arg == "--graphs" && i + 1 < argc) {
      engine_report = true;
      for (std::string& name : split_commas(argv[++i])) {
        graph_filter.push_back(std::move(name));
      }
    } else if (arg == "--threads" && i + 1 < argc) {
      for (const std::string& t : split_commas(argv[++i])) {
        threads_override.push_back(
            static_cast<unsigned>(std::atoi(t.c_str())));
      }
    } else if (arg == "--snap" && i + 1 < argc) {
      engine_report = true;
      snap_paths.push_back(argv[++i]);
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (arg == "--repetitions" && i + 1 < argc) {
      repetitions = std::atoi(argv[++i]);
    }
  }
  if (engine_report) {
    return run_engine_report(baseline, out_path,
                             repetitions < 1 ? 1 : repetitions, big,
                             graph_filter, threads_override, snap_paths, huge);
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
