// E12 — engineering throughput of the CONGEST simulator itself
// (google-benchmark): wall-clock per full pipeline run and derived
// message/round throughput.  Not a paper claim; it documents what a
// downstream user can expect from the substrate.
#include <benchmark/benchmark.h>

#include "algo/bc_pipeline.hpp"
#include "algo/bfs_tree.hpp"
#include "central/brandes.hpp"
#include "graph/generators.hpp"

namespace {

using namespace congestbc;

void BM_PipelineGrid(benchmark::State& state) {
  const auto side = static_cast<NodeId>(state.range(0));
  const Graph g = gen::grid(side, side);
  std::uint64_t rounds = 0;
  std::uint64_t messages = 0;
  for (auto _ : state) {
    const auto result = run_distributed_bc(g);
    rounds = result.rounds;
    messages = result.metrics.total_logical_messages;
    benchmark::DoNotOptimize(result.betweenness.data());
  }
  state.counters["nodes"] = static_cast<double>(g.num_nodes());
  state.counters["rounds"] = static_cast<double>(rounds);
  state.counters["msgs"] = static_cast<double>(messages);
  state.counters["msgs/s"] = benchmark::Counter(
      static_cast<double>(messages), benchmark::Counter::kIsIterationInvariantRate);
}
BENCHMARK(BM_PipelineGrid)
    ->Arg(4)
    ->Arg(6)
    ->Arg(8)
    ->Arg(10)
    ->Arg(14)
    ->Unit(benchmark::kMillisecond);

void BM_PipelineBa(benchmark::State& state) {
  Rng rng(7);
  const Graph g =
      gen::barabasi_albert(static_cast<NodeId>(state.range(0)), 2, rng);
  for (auto _ : state) {
    const auto result = run_distributed_bc(g);
    benchmark::DoNotOptimize(result.betweenness.data());
  }
}
BENCHMARK(BM_PipelineBa)->Arg(32)->Arg(64)->Arg(128)->Arg(256)->Unit(benchmark::kMillisecond);

void BM_CentralizedBrandes(benchmark::State& state) {
  Rng rng(7);
  const Graph g =
      gen::barabasi_albert(static_cast<NodeId>(state.range(0)), 2, rng);
  for (auto _ : state) {
    const auto bc = brandes_bc(g);
    benchmark::DoNotOptimize(bc.data());
  }
}
BENCHMARK(BM_CentralizedBrandes)->Arg(32)->Arg(64)->Arg(128)->Unit(benchmark::kMillisecond);

void BM_SimulatorNetworkOnly(benchmark::State& state) {
  // Tree construction alone: isolates simulator overhead from algorithm
  // work (O(D) rounds, N programs).
  const auto side = static_cast<NodeId>(state.range(0));
  const Graph g = gen::grid(side, side);
  const WireFormat fmt =
      WireFormat::for_graph(g.num_nodes(), SoftFloatFormat::for_graph(g.num_nodes()));
  for (auto _ : state) {
    Network net(g,
                NetworkConfig{congest_budget_bits(g.num_nodes()), 100000, true});
    const auto metrics = net.run([&](NodeId v) {
      return std::make_unique<BfsTreeProgram>(v, 0, fmt);
    });
    benchmark::DoNotOptimize(metrics.rounds);
  }
}
BENCHMARK(BM_SimulatorNetworkOnly)->Arg(8)->Arg(16)->Arg(24)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
