// E12 — engineering throughput of the CONGEST simulator itself.
//
// Two personalities in one binary:
//
//   * default: the google-benchmark suite (wall-clock per full pipeline
//     run and derived message/round throughput).  Not a paper claim; it
//     documents what a downstream user can expect from the substrate.
//
//   * `bench_simulator --engine-report [--baseline] [--out FILE]`:
//     machine-readable engine comparison.  Runs the pipeline on the
//     standard graphs (karate, lesmis, grid 14x14) under the legacy
//     PR-1 engine and the arena engine at several thread counts, and
//     writes BENCH_simulator.json with rounds/sec, logical-messages/sec
//     and heap-allocation counts per run.  `--baseline` pins the legacy
//     engine at threads=1 (the reproducible before-picture; diff two
//     reports with scripts/bench_compare.py).
#include <benchmark/benchmark.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <new>
#include <string>
#include <vector>

#include "algo/bc_pipeline.hpp"
#include "algo/bfs_tree.hpp"
#include "central/brandes.hpp"
#include "core/thread_pool.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"

// ------------------------------------------------------------------
// Global heap-allocation counter.  Counts every operator-new call in
// the process — exactly the "allocation count" the engine report
// publishes, because the point of the arena path is to drive this
// number (per pipeline run) down to a warm-up constant.
namespace {
std::atomic<std::uint64_t> g_heap_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  g_heap_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size == 0 ? 1 : size)) {
    return p;
  }
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { ::operator delete(p); }
void operator delete(void* p, std::size_t) noexcept { ::operator delete(p); }
void operator delete[](void* p, std::size_t) noexcept { ::operator delete(p); }

namespace {

using namespace congestbc;

// ------------------------------------------------------------ benchmarks

void BM_PipelineGrid(benchmark::State& state) {
  const auto side = static_cast<NodeId>(state.range(0));
  const Graph g = gen::grid(side, side);
  std::uint64_t rounds = 0;
  std::uint64_t messages = 0;
  for (auto _ : state) {
    const auto result = run_distributed_bc(g);
    rounds = result.rounds;
    messages = result.metrics.total_logical_messages;
    benchmark::DoNotOptimize(result.betweenness.data());
  }
  state.counters["nodes"] = static_cast<double>(g.num_nodes());
  state.counters["rounds"] = static_cast<double>(rounds);
  state.counters["msgs"] = static_cast<double>(messages);
  state.counters["msgs/s"] = benchmark::Counter(
      static_cast<double>(messages), benchmark::Counter::kIsIterationInvariantRate);
}
BENCHMARK(BM_PipelineGrid)
    ->Arg(4)
    ->Arg(6)
    ->Arg(8)
    ->Arg(10)
    ->Arg(14)
    ->Unit(benchmark::kMillisecond);

void BM_PipelineBa(benchmark::State& state) {
  Rng rng(7);
  const Graph g =
      gen::barabasi_albert(static_cast<NodeId>(state.range(0)), 2, rng);
  for (auto _ : state) {
    const auto result = run_distributed_bc(g);
    benchmark::DoNotOptimize(result.betweenness.data());
  }
}
BENCHMARK(BM_PipelineBa)->Arg(32)->Arg(64)->Arg(128)->Arg(256)->Unit(benchmark::kMillisecond);

void BM_CentralizedBrandes(benchmark::State& state) {
  Rng rng(7);
  const Graph g =
      gen::barabasi_albert(static_cast<NodeId>(state.range(0)), 2, rng);
  for (auto _ : state) {
    const auto bc = brandes_bc(g);
    benchmark::DoNotOptimize(bc.data());
  }
}
BENCHMARK(BM_CentralizedBrandes)->Arg(32)->Arg(64)->Arg(128)->Unit(benchmark::kMillisecond);

void BM_SimulatorNetworkOnly(benchmark::State& state) {
  // Tree construction alone: isolates simulator overhead from algorithm
  // work (O(D) rounds, N programs).
  const auto side = static_cast<NodeId>(state.range(0));
  const Graph g = gen::grid(side, side);
  const WireFormat fmt =
      WireFormat::for_graph(g.num_nodes(), SoftFloatFormat::for_graph(g.num_nodes()));
  for (auto _ : state) {
    Network net(g,
                NetworkConfig{congest_budget_bits(g.num_nodes()), 100000, true});
    const auto metrics = net.run([&](NodeId v) {
      return std::make_unique<BfsTreeProgram>(v, 0, fmt);
    });
    benchmark::DoNotOptimize(metrics.rounds);
  }
}
BENCHMARK(BM_SimulatorNetworkOnly)->Arg(8)->Arg(16)->Arg(24)->Unit(benchmark::kMillisecond);

// --------------------------------------------------------- engine report

Graph load_dataset(const char* name) {
  for (const std::string prefix : {"data/", "../data/", "../../data/"}) {
    std::ifstream file(prefix + name);
    if (file.good()) {
      return read_edge_list(file);
    }
  }
  std::fprintf(stderr, "bench_simulator: data/%s not found (run from repo root)\n",
               name);
  std::exit(2);
}

struct ReportRow {
  std::string graph;
  std::uint32_t nodes = 0;
  std::string engine;  ///< "legacy" or "arena"
  unsigned threads = 1;
  double seconds = 0;  ///< mean wall-clock per run
  std::uint64_t rounds = 0;
  double rounds_per_sec = 0;
  std::uint64_t logical_messages = 0;
  double messages_per_sec = 0;
  std::uint64_t heap_allocations = 0;  ///< mean operator-new calls per run
};

ReportRow measure(const std::string& name, const Graph& g, bool legacy,
                  unsigned threads, int repetitions) {
  DistributedBcOptions options;
  options.legacy_engine = legacy;
  options.threads = threads;

  run_distributed_bc(g, options);  // warm-up (page-in, allocator pools)

  ReportRow row;
  row.graph = name;
  row.nodes = g.num_nodes();
  row.engine = legacy ? "legacy" : "arena";
  row.threads = threads;

  double total_seconds = 0;
  std::uint64_t total_allocs = 0;
  for (int rep = 0; rep < repetitions; ++rep) {
    const std::uint64_t allocs_before =
        g_heap_allocations.load(std::memory_order_relaxed);
    const auto t0 = std::chrono::steady_clock::now();
    const auto result = run_distributed_bc(g, options);
    const auto t1 = std::chrono::steady_clock::now();
    total_seconds += std::chrono::duration<double>(t1 - t0).count();
    total_allocs +=
        g_heap_allocations.load(std::memory_order_relaxed) - allocs_before;
    row.rounds = result.rounds;
    row.logical_messages = result.metrics.total_logical_messages;
  }
  row.seconds = total_seconds / repetitions;
  row.heap_allocations = total_allocs / static_cast<std::uint64_t>(repetitions);
  row.rounds_per_sec = static_cast<double>(row.rounds) / row.seconds;
  row.messages_per_sec =
      static_cast<double>(row.logical_messages) / row.seconds;
  return row;
}

void write_json(const std::vector<ReportRow>& rows, const std::string& path,
                bool baseline) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "bench_simulator: cannot write %s\n", path.c_str());
    std::exit(2);
  }
  out << "{\n"
      << "  \"benchmark\": \"congest-simulator-engine\",\n"
      << "  \"mode\": \"" << (baseline ? "baseline" : "full") << "\",\n"
      << "  \"hardware_threads\": " << ThreadPool::hardware_threads() << ",\n"
      << "  \"rows\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const ReportRow& r = rows[i];
    char buffer[512];
    std::snprintf(buffer, sizeof buffer,
                  "    {\"graph\": \"%s\", \"nodes\": %u, \"engine\": \"%s\", "
                  "\"threads\": %u, \"seconds\": %.6f, \"rounds\": %llu, "
                  "\"rounds_per_sec\": %.1f, \"logical_messages\": %llu, "
                  "\"messages_per_sec\": %.1f, \"heap_allocations\": %llu}%s\n",
                  r.graph.c_str(), r.nodes, r.engine.c_str(), r.threads,
                  r.seconds, static_cast<unsigned long long>(r.rounds),
                  r.rounds_per_sec,
                  static_cast<unsigned long long>(r.logical_messages),
                  r.messages_per_sec,
                  static_cast<unsigned long long>(r.heap_allocations),
                  i + 1 < rows.size() ? "," : "");
    out << buffer;
  }
  out << "  ]\n}\n";
}

int run_engine_report(bool baseline, const std::string& out_path,
                      int repetitions) {
  struct Entry {
    const char* name;
    Graph graph;
  };
  std::vector<Entry> graphs;
  graphs.push_back({"karate", load_dataset("karate.txt")});
  graphs.push_back({"lesmis", load_dataset("lesmis.txt")});
  graphs.push_back({"grid14", gen::grid(14, 14)});

  std::vector<ReportRow> rows;
  for (const Entry& e : graphs) {
    std::vector<std::pair<bool, unsigned>> configs;
    if (baseline) {
      configs = {{true, 1}};  // the before-picture: legacy engine, one lane
    } else {
      configs = {{true, 1}, {false, 1}, {false, 2}, {false, 8}};
    }
    for (const auto& [legacy, threads] : configs) {
      const ReportRow row =
          measure(e.name, e.graph, legacy, threads, repetitions);
      std::printf(
          "%-8s %-6s threads=%u  %8.1f rounds/s  %10.0f msgs/s  %8llu allocs  "
          "(%.3fs/run)\n",
          row.graph.c_str(), row.engine.c_str(), row.threads,
          row.rounds_per_sec, row.messages_per_sec,
          static_cast<unsigned long long>(row.heap_allocations), row.seconds);
      rows.push_back(row);
    }
  }

  if (!baseline) {
    // Headline ratio: allocation-free arena engine vs. the PR-1 engine,
    // both sequential, on the largest graph.
    const auto find = [&](const std::string& graph, const char* engine) {
      for (const ReportRow& r : rows) {
        if (r.graph == graph && r.engine == engine && r.threads == 1) {
          return r;
        }
      }
      std::fprintf(stderr, "missing row %s/%s\n", graph.c_str(), engine);
      std::exit(2);
    };
    const ReportRow before = find("grid14", "legacy");
    const ReportRow after = find("grid14", "arena");
    std::printf("grid14 speedup (arena/legacy, threads=1): %.2fx; "
                "allocations %llu -> %llu\n",
                before.seconds / after.seconds,
                static_cast<unsigned long long>(before.heap_allocations),
                static_cast<unsigned long long>(after.heap_allocations));
  }

  write_json(rows, out_path, baseline);
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool engine_report = false;
  bool baseline = false;
  int repetitions = 3;
  std::string out_path = "BENCH_simulator.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--engine-report") {
      engine_report = true;
    } else if (arg == "--baseline") {
      engine_report = true;
      baseline = true;
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (arg == "--repetitions" && i + 1 < argc) {
      repetitions = std::atoi(argv[++i]);
    }
  }
  if (engine_report) {
    return run_engine_report(baseline, out_path, repetitions < 1 ? 1 : repetitions);
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
