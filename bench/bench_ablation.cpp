// E14 (ablations) — the design choices called out in DESIGN.md:
//   D1: DFS pause length.  The paper says "DFS waits one time slot"; we
//       verify one slot suffices and measure what extra pauses cost
//       (rounds grow by ~N per extra slot) while correctness holds.
//   D5: phase cost split: counting (Algorithm 2) vs aggregation
//       (Algorithm 3) vs the distributed phase switch, via counting-only
//       runs.
#include <iostream>

#include "algo/apsp.hpp"
#include "algo/bc_pipeline.hpp"
#include "bench/bench_util.hpp"
#include "central/brandes.hpp"
#include "common/table.hpp"
#include "core/validation.hpp"
#include "graph/generators.hpp"

int main() {
  using namespace congestbc;
  benchutil::print_header("E14 / DESIGN ablations",
                          "DFS pause length and per-phase round split");

  // --- D1: DFS pause sweep ---
  std::cout << "\nD1 — extra DFS pause slots (grid 8x8, N=64):\n";
  const Graph g = gen::grid(8, 8);
  const auto reference = brandes_bc(g);
  Table pause_table({"extra pause", "rounds", "delta rounds", "rounds/N",
                     "max rel err"});
  std::uint64_t base_rounds = 0;
  for (const unsigned pause : {0u, 1u, 2u, 4u, 8u}) {
    DistributedBcOptions options;
    options.dfs_extra_pause = pause;
    const auto result = run_distributed_bc(g, options);
    if (pause == 0) {
      base_rounds = result.rounds;
    }
    const auto stats = compare_vectors(result.betweenness, reference, 1e-6);
    pause_table.add_row(
        {std::to_string(pause), std::to_string(result.rounds),
         std::to_string(static_cast<std::int64_t>(result.rounds) -
                        static_cast<std::int64_t>(base_rounds)),
         format_double(static_cast<double>(result.rounds) / 64.0, 3),
         format_double(stats.max_rel_error, 3)});
  }
  pause_table.print(std::cout);
  std::cout << "Expectation: each extra slot costs ~N rounds; the paper's "
               "single slot (row 0) is already collision-free.\n";

  // --- D5: phase split ---
  std::cout << "\nD5 — round split: counting vs aggregation:\n";
  Table split_table({"family", "N", "APSP-only rounds", "full rounds",
                     "aggregation share"});
  for (const auto& [name, graph] : gen::standard_suite(48, 555)) {
    const auto apsp = run_distributed_apsp(graph);
    const auto full = run_distributed_bc(graph);
    split_table.add_row(
        {name, std::to_string(graph.num_nodes()), std::to_string(apsp.rounds),
         std::to_string(full.rounds),
         format_double(1.0 - static_cast<double>(apsp.rounds) /
                                 static_cast<double>(full.rounds),
                       3)});
  }
  split_table.print(std::cout);
  std::cout << "Expectation: Algorithm 3 costs roughly the same rounds as "
               "Algorithm 2 (the schedule replays the counting clock).\n";

  // --- D6: rebased aggregation schedule ---
  std::cout << "\nD6 — rebasing the aggregation clock by min T_s:\n";
  Table rebase_table({"family", "N", "literal rounds", "rebased rounds",
                      "saved", "results identical"});
  for (const auto& [name, graph] : gen::standard_suite(48, 556)) {
    DistributedBcOptions literal;
    DistributedBcOptions rebased;
    rebased.rebase_aggregation = true;
    const auto a = run_distributed_bc(graph, literal);
    const auto b2 = run_distributed_bc(graph, rebased);
    const auto stats = compare_vectors(b2.betweenness, a.betweenness, 1e-12);
    rebase_table.add_row(
        {name, std::to_string(graph.num_nodes()), std::to_string(a.rounds),
         std::to_string(b2.rounds), std::to_string(a.rounds - b2.rounds),
         stats.max_abs_error == 0.0 ? "yes" : "NO"});
  }
  rebase_table.print(std::cout);
  std::cout << "Expectation: identical results (same send order, shifted "
               "clock) with the pre-counting replay trimmed.\n";
  return 0;
}
