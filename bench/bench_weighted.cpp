// E13 (extension) — Section X future work: weighted betweenness via the
// virtual-node subdivision the paper suggests.
//
// Sweeps the maximum edge weight W on fixed topologies and reports: the
// subdivided size N' = N + sum(w-1), rounds (must scale with N', not with
// any exponential of W), and exactness against centralized weighted
// Brandes.  A second table shows the weight-coarsening trade-off
// (scale_weights): rounds saved vs betweenness ranking retained.
#include <cmath>
#include <iostream>

#include "algo/weighted_bc.hpp"
#include "bench/bench_util.hpp"
#include "central/weighted_brandes.hpp"
#include "common/table.hpp"
#include "core/validation.hpp"
#include "graph/generators.hpp"

int main() {
  using namespace congestbc;
  benchutil::print_header(
      "E13 / Section X",
      "weighted BC by edge subdivision: exactness and O(N') rounds");

  Table table({"topology", "N", "max W", "N' (subdivided)", "rounds",
               "rounds/N'", "max rel err vs weighted Brandes"});
  Rng rng(20260707);
  struct Base {
    std::string name;
    Graph graph;
  };
  std::vector<Base> bases;
  bases.push_back({"grid(6,6)", gen::grid(6, 6)});
  bases.push_back({"WS(48,2,0.2)", gen::watts_strogatz(48, 2, 0.2, rng)});
  bases.push_back({"BA(48,2)", gen::barabasi_albert(48, 2, rng)});

  for (const auto& base : bases) {
    for (const std::uint32_t max_w : {1u, 2u, 4u, 8u}) {
      Rng wrng(base.graph.num_nodes() + max_w);
      const WeightedGraph g = with_random_weights(base.graph, max_w, wrng);
      const auto result = run_distributed_weighted_bc(g);
      const auto reference = weighted_brandes_bc(g);
      const auto stats = compare_vectors(result.betweenness, reference, 1e-6);
      table.add_row(
          {base.name, std::to_string(base.graph.num_nodes()),
           std::to_string(max_w), std::to_string(result.subdivided_nodes),
           std::to_string(result.rounds),
           format_double(static_cast<double>(result.rounds) /
                             static_cast<double>(result.subdivided_nodes),
                         3),
           format_double(stats.max_rel_error, 3)});
    }
  }
  table.print(std::cout);

  // Coarsening trade-off.
  std::cout << "\nweight coarsening (grid(6,6), W<=64, rho sweep):\n";
  Rng wrng(99);
  const WeightedGraph heavy = with_random_weights(gen::grid(6, 6), 64, wrng);
  const auto exact_bc = weighted_brandes_bc(heavy);
  Table coarse_table({"rho", "N'", "rounds", "top-5 overlap",
                      "max rel err vs exact weighted BC"});
  for (const double rho : {1.0, 2.0, 4.0, 8.0, 16.0}) {
    const WeightedGraph coarse = scale_weights(heavy, rho);
    const auto result = run_distributed_weighted_bc(coarse);
    const auto stats = compare_vectors(result.betweenness, exact_bc, 1e-3);
    coarse_table.add_row(
        {format_double(rho, 3), std::to_string(result.subdivided_nodes),
         std::to_string(result.rounds),
         format_double(top_k_overlap(result.betweenness, exact_bc, 5), 2),
         format_double(stats.max_rel_error, 3)});
  }
  coarse_table.print(std::cout);

  std::cout << "\nExpectation: error ~ soft-float precision at every W "
               "(the reduction is exact); rounds/N' constant; coarsening "
               "sheds rounds at gradually increasing error.\n";
  return 0;
}
