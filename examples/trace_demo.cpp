// Scenario: watch the pipeline's phases on the wire.
//
// Attaches a MessageTrace to a run on the Figure-1 example and on a grid,
// then prints the per-phase activity timeline: the tree-construction
// burst, the staggered BFS waves of the counting phase, the quiet
// convergecast window, and the aggregation cascade.
#include <iostream>

#include "algo/bc_pipeline.hpp"
#include "congest/trace.hpp"
#include "graph/generators.hpp"

namespace {

using namespace congestbc;

void trace_run(const std::string& name, const Graph& g) {
  MessageTrace trace;
  DistributedBcOptions options;
  options.trace = &trace;
  const auto result = run_distributed_bc(g, options);

  std::cout << "\n" << name << " — " << result.rounds << " rounds, "
            << trace.total_messages() << " messages\n";
  std::cout << "activity  |" << trace.activity_timeline(64) << "|\n";
  // Mark the aggregation epoch on the same scale.
  const auto width = 64u;
  const auto epoch_col = static_cast<std::size_t>(
      result.aggregation_epoch * width / (result.rounds + 1));
  std::string marks(width, ' ');
  marks[std::min<std::size_t>(epoch_col, width - 1)] = '^';
  std::cout << "          |" << marks << "| ^ = aggregation epoch (round "
            << result.aggregation_epoch << ")\n";

  // Per-round message counts around the epoch.
  std::cout << "rounds " << result.aggregation_epoch - 2 << ".."
            << result.aggregation_epoch + 5 << " message counts:";
  for (std::uint64_t r = result.aggregation_epoch - 2;
       r <= result.aggregation_epoch + 5 &&
       r < trace.messages_per_round().size();
       ++r) {
    std::cout << " " << trace.messages_per_round()[r];
  }
  std::cout << "\n";
}

}  // namespace

int main() {
  using namespace congestbc;
  std::cout << "message-level trace of the distributed BC pipeline\n"
            << "(phases: tree burst -> staggered BFS waves -> quiet "
               "convergecast -> aggregation cascade)\n";
  trace_run("figure-1 example (N=5)", gen::figure1_example());
  trace_run("grid 6x6 (N=36)", gen::grid(6, 6));
  trace_run("path (N=24)", gen::path(24));
  return 0;
}
