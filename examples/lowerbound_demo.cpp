// Scenario: the paper's Section IX lower bound, hands on.
//
// Encodes two families of sets into the Figure-2 and Figure-3 gadget
// graphs and shows that global quantities (diameter; the betweenness of
// the F_i nodes) reveal whether the families share a subset — the
// reduction from sparse set disjointness behind the Omega(D + N/log N)
// bound.
#include <iostream>

#include "algo/disjointness.hpp"
#include "central/brandes.hpp"
#include "common/table.hpp"
#include "graph/lowerbound.hpp"
#include "graph/properties.hpp"

int main() {
  using namespace congestbc;
  using namespace congestbc::lb;

  // Alice holds X, Bob holds Y — families of 3 subsets of {0..5}, each of
  // size 3.  X_1 == Y_2, so the families are NOT disjoint.
  const SetFamily x_family(6, {0b000111, 0b011010, 0b101001});
  const SetFamily y_family(6, {0b110001, 0b100110, 0b011010});

  std::cout << "sparse set disjointness instance:\n"
            << "  X = {0b000111, 0b011010, 0b101001}\n"
            << "  Y = {0b110001, 0b100110, 0b011010}\n"
            << "  shared subset: X_1 == Y_2 == 0b011010\n\n";

  // --- Figure 2: the answer appears in the diameter ---
  const unsigned x = 8;
  const auto diam_gadget = build_diameter_gadget(x_family, y_family, x);
  const auto d = diameter(diam_gadget.graph);
  std::cout << "Figure-2 gadget (" << diam_gadget.graph.num_nodes()
            << " nodes): diameter = " << d << " (x = " << x << ")\n";
  std::cout << "  => families " << (d == x ? "DISJOINT" : "INTERSECT")
            << " (Lemma 8: D = x+2 iff some X_i == Y_j)\n\n";

  // --- Figure 3: the answer appears in C_B(F_i) ---
  const auto bc_gadget = build_bc_gadget(x_family, y_family);
  const auto bc = brandes_bc(bc_gadget.graph);
  std::cout << "Figure-3 gadget (" << bc_gadget.graph.num_nodes()
            << " nodes): betweenness of the F_i probes:\n";
  Table table({"i", "C_B(F_i)", "Lemma 9 prediction", "verdict on X_i"});
  for (std::size_t i = 0; i < x_family.size(); ++i) {
    const double value = bc[bc_gadget.f[i]];
    table.add_row({std::to_string(i), format_double(value, 6),
                   format_double(bc_gadget.expected_bc_of_f[i], 2),
                   value > 1.25 ? "X_i appears in Y" : "X_i not in Y"});
  }
  table.print(std::cout);

  std::cout
      << "\nAny distributed algorithm that estimates C_B within 0.499\n"
         "relative error distinguishes 1 from 1.5, hence decides set\n"
         "disjointness — which needs Omega(n log n) bits across the cut of\n"
      << bc_gadget.cut_edges.size()
      << " edges.  That is Theorem 6's Omega(D + N/log N) round bound.\n";

  // And indeed: run the reductions end to end, with the distributed
  // algorithm doing the deciding.
  const auto via_d = lb::decide_disjointness_via_diameter(x_family, y_family);
  const auto via_b =
      lb::decide_disjointness_via_betweenness(x_family, y_family);
  std::cout << "\nexecutable reductions (distributed protocol all the way):\n"
            << "  via diameter:    " << (via_d.disjoint ? "DISJOINT" : "INTERSECT")
            << " — " << via_d.cut_bits << " bits over the cut, "
            << via_d.rounds << " rounds\n"
            << "  via betweenness: " << (via_b.disjoint ? "DISJOINT" : "INTERSECT")
            << " — " << via_b.cut_bits << " bits over the cut, "
            << via_b.rounds << " rounds\n";
  return 0;
}
