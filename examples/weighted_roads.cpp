// Scenario: a weighted road network — which intersection carries the most
// through-traffic?
//
// Edge weights model travel times.  The paper's algorithm is unweighted;
// its Section X points at the virtual-node subdivision, which this
// library implements: run_distributed_weighted_bc() subdivides each
// weight-w road into w unit segments, runs the O(N')-round pipeline, and
// reads off the exact weighted betweenness of the real intersections.
#include <algorithm>
#include <iostream>
#include <numeric>

#include "algo/weighted_bc.hpp"
#include "central/weighted_brandes.hpp"
#include "common/table.hpp"
#include "graph/generators.hpp"
#include "graph/weighted.hpp"

int main() {
  using namespace congestbc;

  // A 6x6 city grid; travel times 1..9 per block (arterials fast, alleys
  // slow).
  Rng rng(1234);
  const Graph blocks = gen::grid(6, 6);
  const WeightedGraph city = with_random_weights(blocks, 9, rng);

  const auto result = run_distributed_weighted_bc(city);
  const auto reference = weighted_brandes_bc(city);

  std::vector<NodeId> order(city.num_nodes());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](NodeId a, NodeId b) {
    return result.betweenness[a] > result.betweenness[b];
  });

  std::cout << "busiest intersections of a 6x6 weighted city grid:\n\n";
  Table table({"rank", "intersection (row,col)", "betweenness",
               "centralized check", "closeness"});
  for (std::size_t rank = 0; rank < 8; ++rank) {
    const NodeId v = order[rank];
    table.add_row({std::to_string(rank + 1),
                   "(" + std::to_string(v / 6) + "," + std::to_string(v % 6) +
                       ")",
                   format_double(result.betweenness[v], 6),
                   format_double(reference[v], 6),
                   format_double(result.closeness[v], 4)});
  }
  table.print(std::cout);

  std::cout << "\nsubdivided network: " << result.subdivided_nodes
            << " nodes (36 real + virtual road segments), " << result.rounds
            << " CONGEST rounds, weighted diameter "
            << result.weighted_diameter << " time units.\n";
  return 0;
}
