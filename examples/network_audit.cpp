// Scenario: audit a network for fragile choke points.
//
// Combines the structural decompositions (bridges, articulation points)
// with the distributed centrality pipeline: articulation points are
// provable single points of failure, and betweenness quantifies how much
// traffic each one actually carries.  The audit report cross-references
// both views.
#include <algorithm>
#include <iostream>

#include "algo/bc_pipeline.hpp"
#include "common/table.hpp"
#include "graph/generators.hpp"
#include "graph/structure.hpp"

int main() {
  using namespace congestbc;

  // A fragile backbone: three communities chained by single links.
  Rng rng(404);
  GraphBuilder builder;
  auto add_community = [&](NodeId size) {
    const NodeId base = builder.num_nodes();
    for (NodeId i = 0; i < size; ++i) {
      builder.ensure_node(base + i);
    }
    for (NodeId i = 0; i < size; ++i) {
      for (NodeId j = i + 1; j < size; ++j) {
        if (rng.next_bernoulli(0.4)) {
          builder.add_edge(base + i, base + j);
        }
      }
      if (i > 0) {
        builder.add_edge(base + i - 1, base + i);  // keep it connected
      }
    }
    return base;
  };
  const NodeId a = add_community(12);
  const NodeId b = add_community(12);
  const NodeId c = add_community(12);
  builder.add_edge(a + 11, b);       // fragile link 1
  builder.add_edge(b + 11, c);       // fragile link 2
  const Graph g = std::move(builder).build();

  const auto cut_edges = bridges(g);
  const auto cut_nodes = articulation_points(g);
  const auto result = run_distributed_bc(g);

  std::cout << "network audit (" << g.num_nodes() << " nodes, "
            << g.num_edges() << " links)\n\n";

  std::cout << "bridge links (single points of failure):\n";
  for (const auto& e : cut_edges) {
    std::cout << "  " << e.u << " -- " << e.v << "\n";
  }

  std::cout << "\narticulation nodes ranked by betweenness load:\n";
  std::vector<NodeId> ranked(cut_nodes);
  std::sort(ranked.begin(), ranked.end(), [&](NodeId x, NodeId y) {
    return result.betweenness[x] > result.betweenness[y];
  });
  Table table({"node", "betweenness", "closeness", "degree"});
  for (const NodeId v : ranked) {
    table.add_row({std::to_string(v),
                   format_double(result.betweenness[v], 6),
                   format_double(result.closeness[v], 4),
                   std::to_string(g.degree(v))});
  }
  table.print(std::cout);

  // Sanity: every articulation point carries positive betweenness.
  double min_bc = 1e300;
  for (const NodeId v : cut_nodes) {
    min_bc = std::min(min_bc, result.betweenness[v]);
  }
  std::cout << "\nevery articulation node carries betweenness >= "
            << min_bc << " (> 0, as theory demands).\n"
            << "analysis cost: " << result.rounds << " CONGEST rounds.\n";
  return 0;
}
