// Scenario: find the broker nodes of a scale-free social network.
//
// Betweenness centrality is the classic "who brokers information flow"
// measure (the use case motivating the paper's introduction).  This
// example grows a Barabási–Albert network of 150 accounts, runs the
// distributed pipeline, and prints the top brokers together with the cost
// the CONGEST model charges for the computation.
#include <algorithm>
#include <iostream>
#include <numeric>

#include "algo/bc_pipeline.hpp"
#include "common/table.hpp"
#include "graph/generators.hpp"

int main() {
  using namespace congestbc;

  Rng rng(20260706);
  const NodeId n = 150;
  const Graph graph = gen::barabasi_albert(n, 2, rng);

  const DistributedBcResult result = run_distributed_bc(graph);

  // Rank accounts by betweenness.
  std::vector<NodeId> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](NodeId a, NodeId b) {
    return result.betweenness[a] > result.betweenness[b];
  });

  std::cout << "top brokers of a " << n << "-account scale-free network:\n\n";
  Table table({"rank", "account", "betweenness", "degree", "closeness",
               "stress"});
  for (std::size_t rank = 0; rank < 10; ++rank) {
    const NodeId v = order[rank];
    table.add_row({std::to_string(rank + 1), std::to_string(v),
                   format_double(result.betweenness[v], 6),
                   std::to_string(graph.degree(v)),
                   format_double(result.closeness[v], 4),
                   format_double(static_cast<double>(result.stress[v]), 6)});
  }
  table.print(std::cout);

  std::cout << "\ncost under the CONGEST model: " << result.rounds
            << " rounds (" << result.rounds / n << "x N), "
            << result.metrics.total_bits / 8 / 1024 << " KiB of traffic, max "
            << result.metrics.max_bits_on_edge_round
            << " bits on any link in any round.\n";
  std::cout << "network diameter (computed on the fly): " << result.diameter
            << "\n";
  return 0;
}
