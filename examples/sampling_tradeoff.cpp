// Scenario: you only need the top-of-the-ranking brokers and want to pay
// fewer rounds — run the sampled-source estimator and inspect the
// accuracy/latency trade-off.
#include <cmath>
#include <iostream>

#include "algo/bc_pipeline.hpp"
#include "central/brandes.hpp"
#include "common/table.hpp"
#include "core/validation.hpp"
#include "graph/generators.hpp"

int main() {
  using namespace congestbc;

  Rng rng(777);
  const NodeId n = 96;
  const Graph graph = gen::watts_strogatz(n, 3, 0.15, rng);
  const auto exact = brandes_bc(graph);

  std::cout << "sampled-source estimator on a small-world network (N=" << n
            << "):\n\n";
  Table table({"sources k", "rounds", "top-5 overlap", "max rel err"});
  for (const std::size_t k : {static_cast<std::size_t>(n), 48ul, 24ul, 12ul,
                              6ul}) {
    DistributedBcOptions options;
    Rng mask_rng(k);
    std::vector<bool> mask(n, false);
    for (const auto s : mask_rng.sample_without_replacement(n, k)) {
      mask[static_cast<std::size_t>(s)] = true;
    }
    options.sources = mask;
    const auto result = run_distributed_bc(graph, options);
    table.add_row(
        {std::to_string(k), std::to_string(result.rounds),
         format_double(top_k_overlap(result.betweenness, exact, 5), 2),
         format_double(
             compare_vectors(result.betweenness, exact, 1e-3).max_rel_error,
             3)});
  }
  table.print(std::cout);

  std::cout << "\nk = N is the exact paper algorithm; shrinking k sheds "
               "rounds while the head of the ranking stays useful.\n";
  return 0;
}
