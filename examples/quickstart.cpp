// Quickstart: compute betweenness centrality for every node of a small
// network with the O(N)-round distributed algorithm, cross-checked
// against centralized Brandes.
//
//   $ ./quickstart
//
// This is the 30-second tour of the public API: build a Graph, hand it to
// congestbc::Runner, read the report.
#include <iostream>

#include "core/runner.hpp"
#include "graph/generators.hpp"

int main() {
  using namespace congestbc;

  // The paper's Figure-1 example network: v1-v2, v2-v3, v2-v5, v3-v4, v4-v5.
  const Graph graph = gen::figure1_example();

  // Runner drives the CONGEST simulation and (by default) verifies the
  // result against centralized Brandes.
  Runner runner(graph);
  const AnalysisReport report = runner.analyze();

  std::cout << "betweenness centralities (undirected convention):\n";
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    std::cout << "  v" << v + 1 << ": " << report.distributed.betweenness[v]
              << "\n";
  }
  std::cout << "\n" << report.summary() << "\n";
  std::cout << "\nThe paper's worked example says C_B(v2) = 7/2 = "
            << 3.5 << " — and indeed v2 reads "
            << report.distributed.betweenness[1] << ".\n";
  return 0;
}
