// Scenario: characterize a topology with all four shortest-path
// centralities (Eqs. 1-4 of the paper) from ONE distributed run.
//
// The same O(N) rounds that produce betweenness also deliver closeness,
// graph (eccentricity) centrality and stress centrality — this example
// prints all four for three classic topologies and highlights how they
// disagree about which node "matters".
#include <algorithm>
#include <iostream>
#include <numeric>

#include "algo/bc_pipeline.hpp"
#include "common/table.hpp"
#include "graph/generators.hpp"

namespace {

using namespace congestbc;

void analyze(const std::string& name, const Graph& graph) {
  const auto result = run_distributed_bc(graph);
  std::cout << "\n" << name << " (N=" << graph.num_nodes()
            << ", D=" << result.diameter << ", " << result.rounds
            << " rounds):\n";
  auto argmax = [](const auto& values) {
    return static_cast<std::size_t>(std::distance(
        values.begin(), std::max_element(values.begin(), values.end())));
  };
  Table table({"index", "winner node", "value at winner"});
  table.add_row({"betweenness C_B", std::to_string(argmax(result.betweenness)),
                 format_double(result.betweenness[argmax(result.betweenness)],
                               5)});
  table.add_row({"closeness C_C", std::to_string(argmax(result.closeness)),
                 format_double(result.closeness[argmax(result.closeness)], 5)});
  table.add_row(
      {"graph C_G", std::to_string(argmax(result.graph_centrality)),
       format_double(result.graph_centrality[argmax(result.graph_centrality)],
                     5)});
  table.add_row(
      {"stress C_S", std::to_string(argmax(result.stress)),
       format_double(static_cast<double>(result.stress[argmax(result.stress)]),
                     5)});
  table.print(std::cout);
}

}  // namespace

int main() {
  using namespace congestbc;
  Rng rng(5);

  analyze("lollipop(16, 16) — the bridge dominates betweenness",
          gen::lollipop(16, 16));
  analyze("grid(7, 7) — the geometric center wins everything", gen::grid(7, 7));
  analyze("barbell(10, 6) — bridge nodes vs clique nodes",
          gen::barbell(10, 6));
  analyze("random tree N=64 — stress equals betweenness on trees (sigma=1)",
          gen::random_tree(64, rng));
  return 0;
}
