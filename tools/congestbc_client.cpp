// congestbc_client — command-line client and load generator for the BC
// serving daemon (congestbcd).
//
// Usage:
//   congestbc_client [--host A --port P] COMMAND ...
//
// Commands:
//   submit GRAPH.txt   submit a job (inline graph); prints the admission
//                      disposition, job id, and fingerprint
//       --path NAME    submit by server-side path (daemon --graph-root)
//       --no-halve --faults SPEC --reliable --max-rounds R --threads T
//       --legacy       result-shaping / execution options
//       --wait         poll until the result is ready and print it
//       --retry        self-healing submit: retry with backoff + jitter
//                      through transport faults until the result lands
//                      or --deadline MS (default 120000) expires;
//                      implies --wait
//       --ns NS        stream-addressed submit: run against a live stream
//                      namespace instead of sending a graph
//       --version V    which stream version to run at (0 = live head)
//       --incremental  serve from the namespace's incremental maintainer
//       --backend B    portfolio backend (protocol v5): auto, paper_exact,
//                      cfp, directed, sampled.  `auto` lets the daemon's
//                      admission control pick — the reply shows what ran
//                      and whether it was downgraded under pressure
//       --samples K    source budget for --backend sampled (0 = server
//                      default, 4*sqrt(n))
//       --sample-seed S  source-sampling seed for --backend sampled
//   mutate NS          apply edge ops to a stream namespace (protocol v4)
//       --base G.txt   create the namespace with this version-0 graph
//       --version V    expected base version (optimistic concurrency)
//       --ops SPEC     comma-separated ops, "i:u:v" insert / "d:u:v" remove
//   status JOB         query a job's lifecycle state
//   result JOB         fetch (and print) a finished job's result
//   cancel JOB         cancel a queued or running job
//   stats              print the daemon's serving statistics
//   shutdown           begin a graceful drain
//   loadgen            spawn a daemon, fire concurrent mixed submits at
//                      it, drain it, and verify a clean exit — the smoke
//                      e2e wired into ctest (label: service)
//       --daemon BIN   path to the congestbcd binary (required)
//       --graphs A,B   comma-separated edge-list files to rotate through
//       --submits N    total submits (default 50)
//       --concurrency C  client threads (default 8)
//       --spool DIR    hand the spawned daemon a spool directory
//       --chaos SPEC   interpose an in-process chaos proxy with this
//                      ChaosPlan spec between the clients and the daemon
//       --chaos-seed S shorthand for a moderate built-in plan seeded S
//       --retry        wrap workers in the self-healing RetryingClient;
//                      reports attempt counts and retry amplification
//       --deadline MS  per-submit client deadline, propagated to the
//                      daemon's admission control
//       --mutate-mix K interleave one MUTATE per K submits against a live
//                      stream namespace seeded from the first graph, and
//                      report per-version submit latency
//       --backend-mix B1,B2,...  rotate submits across portfolio
//                      backends and report per-backend latency breakdown
//                      (mutually exclusive with --mutate-mix)
//       --cluster N    cluster mode: spawn a congestbc_router plus N
//                      congestbcd workers that --join it, and drive all
//                      traffic through the router; reports cluster-level
//                      p50/p99 (requires --router)
//       --router BIN   path to the congestbc_router binary
//       --kill-one     SIGTERM one worker once half the submits are in
//                      flight — its jobs must migrate and every client
//                      must still be served (zero failed jobs)
#include <sys/resource.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "algo/bc_pipeline.hpp"
#include "common/args.hpp"
#include "portfolio/backend.hpp"
#include "service/chaos.hpp"
#include "service/client.hpp"
#include "service/protocol.hpp"
#include "service/retry.hpp"

namespace {

using namespace congestbc;
using namespace congestbc::service;

constexpr const char* kUsage =
    "usage: congestbc_client [--host A --port P] COMMAND ...\n"
    "commands: submit GRAPH.txt [--path NAME --ns NS --version V\n"
    "          --incremental --no-halve --faults SPEC --reliable\n"
    "          --max-rounds R --threads T --legacy --wait --retry\n"
    "          --deadline MS --backend B --samples K --sample-seed S]\n"
    "          mutate NS [--base GRAPH.txt --version V --ops i:u:v,d:u:v]\n"
    "          status JOB | result JOB | cancel JOB | stats | shutdown\n"
    "          loadgen --daemon BIN --graphs A,B [--submits N\n"
    "          --concurrency C --spool DIR --chaos SPEC --chaos-seed S\n"
    "          --retry --deadline MS --mutate-mix K --backend-mix B1,B2\n"
    "          --cluster N --router BIN --kill-one]\n";

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("cannot open " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// Node count from an edge-list header ("N M"), skipping '#' comments.
std::uint64_t parse_node_count(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    const auto first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos || line[first] == '#') {
      continue;
    }
    std::istringstream hs(line);
    std::uint64_t n = 0;
    hs >> n;
    return n;
  }
  return 0;
}

std::string hex16(std::uint64_t value) {
  char buf[19];
  std::snprintf(buf, sizeof buf, "0x%016llx",
                static_cast<unsigned long long>(value));
  return std::string(buf);
}

SubmitRequest build_submit(const Args& args, const std::string& operand) {
  SubmitRequest request;
  if (args.has("path")) {
    request.source = GraphSource::kPath;
    request.graph = *args.get("path");
  } else if (args.has("ns")) {
    // Stream-addressed: the daemon materializes the namespace's graph at
    // the requested version; no graph travels on the wire.
    request.source = GraphSource::kInline;
    request.stream_ns = *args.get("ns");
    request.stream_version =
        static_cast<std::uint64_t>(args.get_int_or("version", 0));
    request.incremental = args.has("incremental");
  } else {
    request.source = GraphSource::kInline;
    request.graph = read_file(operand);
  }
  request.halve = !args.has("no-halve");
  request.reliable = args.has("reliable");
  request.faults = args.get("faults").value_or("");
  request.max_rounds =
      static_cast<std::uint64_t>(args.get_int_or("max-rounds", 0));
  request.threads = static_cast<std::uint32_t>(args.get_int_or("threads", 0));
  request.legacy_engine = args.has("legacy");
  if (const auto backend_name = args.get("backend")) {
    // Parse client-side so a typo fails here, not as a kBadRequest round
    // trip.
    const auto parsed = portfolio::parse_backend(*backend_name);
    if (!parsed) {
      throw std::runtime_error("unknown --backend: " + *backend_name);
    }
    request.backend = static_cast<std::uint8_t>(*parsed);
  }
  request.samples = static_cast<std::uint32_t>(args.get_int_or("samples", 0));
  request.sample_seed =
      static_cast<std::uint64_t>(args.get_int_or("sample-seed", 0));
  return request;
}

void print_result(const ResultReply& reply) {
  std::cout << "state: " << to_string(reply.state)
            << (reply.from_cache ? " (from cache)" : "") << "\n"
            << "fingerprint: " << hex16(reply.fingerprint) << "\n";
  if (!reply.detail.empty()) {
    std::cout << "detail: " << reply.detail << "\n";
  }
  if (!reply.ready) {
    return;
  }
  BitReader reader(reply.block_bytes.data(),
                   static_cast<std::size_t>(reply.block_bits));
  const ResultBlock block = decode_result_block(reader);
  std::cout << "run status: " << static_cast<unsigned>(block.run_status)
            << ", rounds: " << block.rounds << ", diameter: " << block.diameter
            << ", total bits: " << block.total_bits << "\n";
  const std::size_t n = block.betweenness.size();
  std::cout << "betweenness (" << n << " nodes):";
  for (std::size_t v = 0; v < n && v < 8; ++v) {
    std::cout << " " << block.betweenness[v];
  }
  if (n > 8) {
    std::cout << " ...";
  }
  std::cout << "\n";
}

void print_stats(const StatsReply& s) {
  std::cout << "uptime_ms=" << s.uptime_ms << " submits=" << s.submits
            << " cache_hits=" << s.cache_hits
            << " cache_misses=" << s.cache_misses
            << " coalesced=" << s.coalesced << " busy=" << s.busy_rejections
            << " completed=" << s.jobs_completed << " failed=" << s.jobs_failed
            << " cancelled=" << s.jobs_cancelled
            << " suspended=" << s.jobs_suspended
            << " resumed=" << s.jobs_resumed << " queue=" << s.queue_depth
            << " running=" << s.running << " workers=" << s.workers
            << " cache_entries=" << s.cache_entries << " qps=" << s.qps
            << " utilization=" << s.worker_utilization
            << " p50_ms=" << s.latency_p50_ms << " p99_ms=" << s.latency_p99_ms
            << " mutations=" << s.mutations_applied
            << " graph_version=" << s.graph_version
            << " dirty_rerun=" << s.dirty_sources_rerun
            << " invalidations=" << s.cache_invalidations
            << " backend_downgrades=" << s.backend_downgrades
            << " migrated_out=" << s.migrated_out
            << " migrated_in=" << s.migrated_in
            << " lookups_served=" << s.lookups_served << "\n";
}

/// Parses "--ops i:1:2,d:3:4" into a MUTATE batch.
std::vector<MutateOp> parse_ops(const std::string& spec) {
  std::vector<MutateOp> ops;
  std::stringstream list(spec);
  std::string item;
  while (std::getline(list, item, ',')) {
    if (item.empty()) {
      continue;
    }
    char kind = 0;
    char c1 = 0;
    char c2 = 0;
    unsigned long long u = 0;
    unsigned long long v = 0;
    std::istringstream is(item);
    if (!(is >> kind >> c1 >> u >> c2 >> v) || c1 != ':' || c2 != ':' ||
        (kind != 'i' && kind != 'd')) {
      throw std::runtime_error("bad op \"" + item +
                               "\" (want i:u:v or d:u:v)");
    }
    MutateOp op;
    op.kind = kind == 'i' ? 1 : 2;
    op.u = static_cast<std::uint32_t>(u);
    op.v = static_cast<std::uint32_t>(v);
    ops.push_back(op);
  }
  return ops;
}

// ------------------------------------------------------------ loadgen

struct SpawnedDaemon {
  pid_t pid = -1;
  std::uint16_t port = 0;
};

/// fork/execs a serving binary (congestbcd or congestbc_router) with the
/// given arguments and parses the announced "LISTENING <port>" line from
/// its stdout.
SpawnedDaemon spawn_server(const std::string& binary,
                           std::vector<std::string> argv_strings) {
  int out_pipe[2];
  if (::pipe(out_pipe) != 0) {
    throw std::runtime_error("pipe() failed");
  }
  const pid_t pid = ::fork();
  if (pid < 0) {
    throw std::runtime_error("fork() failed");
  }
  if (pid == 0) {
    ::dup2(out_pipe[1], STDOUT_FILENO);
    ::close(out_pipe[0]);
    ::close(out_pipe[1]);
    argv_strings.insert(argv_strings.begin(), binary);
    std::vector<char*> argv;
    argv.reserve(argv_strings.size() + 1);
    for (auto& s : argv_strings) {
      argv.push_back(s.data());
    }
    argv.push_back(nullptr);
    ::execv(binary.c_str(), argv.data());
    std::perror("execv");
    _exit(127);
  }
  ::close(out_pipe[1]);
  // Read the child's stdout line by line until the port announcement.
  std::string line;
  SpawnedDaemon daemon;
  daemon.pid = pid;
  char ch;
  while (::read(out_pipe[0], &ch, 1) == 1) {
    if (ch != '\n') {
      line.push_back(ch);
      continue;
    }
    if (line.rfind("LISTENING ", 0) == 0) {
      daemon.port = static_cast<std::uint16_t>(std::stoi(line.substr(10)));
      break;
    }
    line.clear();
  }
  ::close(out_pipe[0]);
  if (daemon.port == 0) {
    ::kill(pid, SIGKILL);
    ::waitpid(pid, nullptr, 0);
    throw std::runtime_error(binary + " never announced LISTENING");
  }
  return daemon;
}

SpawnedDaemon spawn_daemon(const std::string& binary,
                           const std::string& spool) {
  std::vector<std::string> argv = {"--port", "0", "--workers", "2"};
  if (!spool.empty()) {
    argv.push_back("--spool");
    argv.push_back(spool);
  }
  return spawn_server(binary, argv);
}

/// A cluster run opens one socket per simulated client plus worker
/// links; lift the fd ceiling so thousands of concurrent clients measure
/// the serving tier, not this process's fd table.
void raise_fd_limit() {
  rlimit limit{};
  if (::getrlimit(RLIMIT_NOFILE, &limit) == 0 &&
      limit.rlim_cur < limit.rlim_max) {
    limit.rlim_cur = limit.rlim_max;
    (void)::setrlimit(RLIMIT_NOFILE, &limit);
  }
}

int run_loadgen(const Args& args) {
  const auto binary = args.get("daemon");
  if (!binary) {
    throw std::runtime_error("loadgen requires --daemon BIN");
  }
  std::vector<std::string> graph_texts;
  {
    std::stringstream list(args.get("graphs").value_or(""));
    std::string path;
    while (std::getline(list, path, ',')) {
      if (!path.empty()) {
        graph_texts.push_back(read_file(path));
      }
    }
  }
  if (graph_texts.empty()) {
    throw std::runtime_error("loadgen requires --graphs A[,B...]");
  }
  const int submits = static_cast<int>(args.get_int_or("submits", 50));
  const int concurrency = static_cast<int>(args.get_int_or("concurrency", 8));
  const auto deadline_ms =
      static_cast<std::uint64_t>(args.get_int_or("deadline", 0));
  const bool use_retry = args.has("retry");
  const int mutate_mix = static_cast<int>(args.get_int_or("mutate-mix", 0));
  const int cluster = static_cast<int>(args.get_int_or("cluster", 0));
  const bool kill_one = args.has("kill-one");
  if (cluster > 0 && (args.has("chaos") || args.has("chaos-seed"))) {
    // Router→worker chaos is the cluster test matrix's job (in-process
    // chaosproxy on the worker link); the loadgen keeps the two modes
    // orthogonal.
    throw std::runtime_error("--cluster and --chaos are mutually exclusive");
  }
  if (kill_one && cluster < 2) {
    throw std::runtime_error("--kill-one needs --cluster >= 2");
  }

  // --backend-mix: rotate submits across portfolio backends (protocol
  // v5) and report a per-backend latency breakdown at the end.
  std::vector<std::uint8_t> backend_mix;
  if (const auto spec = args.get("backend-mix")) {
    std::stringstream list(*spec);
    std::string name;
    while (std::getline(list, name, ',')) {
      if (name.empty()) {
        continue;
      }
      const auto parsed = portfolio::parse_backend(name);
      if (!parsed) {
        throw std::runtime_error("unknown backend in --backend-mix: " + name);
      }
      backend_mix.push_back(static_cast<std::uint8_t>(*parsed));
    }
    if (backend_mix.empty()) {
      throw std::runtime_error("--backend-mix lists no backends");
    }
    if (mutate_mix > 0) {
      // Stream submits restrict which backends are legal (no directed,
      // incremental pins paper_exact); keep the two mixes orthogonal.
      throw std::runtime_error(
          "--backend-mix and --mutate-mix are mutually exclusive");
    }
  }

  ChaosPlan plan;
  if (const auto spec = args.get("chaos")) {
    plan = ChaosPlan::parse(*spec);
  } else if (args.has("chaos-seed")) {
    // Moderate built-in adversity: enough corruption and stalling that a
    // non-healing client would fail, mild enough that the retry path must
    // converge on every submit.
    plan = ChaosPlan::parse(
        "seed=" + std::to_string(args.get_int_or("chaos-seed", 1)) +
        ",corrupt=0.02,stall=0.05,stall-ms=20,cut=0.01,partial=512,grace=2");
  }

  // Single-daemon mode spawns one congestbcd; cluster mode spawns a
  // congestbc_router plus N workers that --join it, and all client
  // traffic (submits, stats, shutdown) goes through the router.
  SpawnedDaemon daemon;
  std::vector<SpawnedDaemon> cluster_workers;
  // If anything past this point throws, the spawned tier must not
  // outlive the loadgen: a leaked router or worker keeps the inherited
  // stdout pipe open, and ctest then waits on it until its timeout.
  // The normal teardown path disarms the guard once everything is
  // reaped; the guard itself only fires on the failure paths.
  struct TierReaper {
    SpawnedDaemon* front;
    std::vector<SpawnedDaemon>* members;
    bool armed = true;
    ~TierReaper() {
      if (!armed) {
        return;
      }
      for (const SpawnedDaemon& w : *members) {
        if (w.pid > 0) {
          ::kill(w.pid, SIGKILL);
          ::waitpid(w.pid, nullptr, 0);
        }
      }
      if (front->pid > 0) {
        ::kill(front->pid, SIGKILL);
        ::waitpid(front->pid, nullptr, 0);
      }
    }
  } reaper{&daemon, &cluster_workers};
  if (cluster > 0) {
    const auto router_binary = args.get("router");
    if (!router_binary) {
      throw std::runtime_error("--cluster requires --router BIN");
    }
    raise_fd_limit();
    // The router holds finished blocks itself (--result-cache) so the
    // storm of identical submits and polls collapses to router-local
    // replies instead of serializing on the per-worker links.
    daemon = spawn_server(
        *router_binary, {"--port", "0", "--health-every", "200",
                         "--result-cache", "4096"});
    std::cout << "loadgen: router pid " << daemon.pid << " on port "
              << daemon.port << "\n";
    const std::string join = "127.0.0.1:" + std::to_string(daemon.port);
    const std::string spool_base = args.get("spool").value_or("");
    for (int w = 0; w < cluster; ++w) {
      std::vector<std::string> worker_args = {
          "--port", "0", "--workers", "2", "--join", join,
          "--join-every", "100"};
      if (!spool_base.empty()) {
        const std::string dir =
            spool_base + "/worker" + std::to_string(w);
        ::mkdir(spool_base.c_str(), 0755);
        ::mkdir(dir.c_str(), 0755);
        worker_args.push_back("--spool");
        worker_args.push_back(dir);
      }
      cluster_workers.push_back(spawn_server(*binary, worker_args));
      std::cout << "loadgen: worker " << w << " pid "
                << cluster_workers.back().pid << " on port "
                << cluster_workers.back().port << "\n";
    }
    // Wait for every worker's JOIN heartbeat to land: the aggregate
    // STATS sums each active member's pool (2 threads per worker here).
    const auto ring_deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(15);
    while (true) {
      Client probe;
      probe.connect("127.0.0.1", daemon.port);
      if (probe.stats().workers >=
          static_cast<std::uint64_t>(2 * cluster)) {
        break;
      }
      if (std::chrono::steady_clock::now() >= ring_deadline) {
        throw std::runtime_error("cluster ring never filled");
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    std::cout << "loadgen: ring complete (" << cluster << " workers)\n";
  } else {
    daemon = spawn_daemon(*binary, args.get("spool").value_or(""));
    std::cout << "loadgen: daemon pid " << daemon.pid << " on port "
              << daemon.port << "\n";
  }

  // With a chaos plan, every worker connection runs through an in-process
  // deterministic chaos proxy; the drain/stats connection at the end goes
  // straight to the daemon so teardown is never a casualty of the test.
  std::unique_ptr<ChaosProxy> proxy;
  std::uint16_t connect_port = daemon.port;
  if (!plan.empty()) {
    proxy = std::make_unique<ChaosProxy>(plan, "127.0.0.1", daemon.port);
    proxy->start();
    connect_port = proxy->port();
    std::cout << "loadgen: chaos proxy on port " << connect_port << " ("
              << plan.describe() << ")\n";
  }

  // --mutate-mix: seed a live stream namespace from the first graph and
  // interleave one MUTATE per K submits with the query traffic.
  // Mutations go straight to the daemon (not through chaos) under one
  // lock, so the expected-version ledger stays exact; MUTATE-under-chaos
  // ambiguity is the stream tests' job.  Inserted chords connect existing
  // nodes (never disconnecting anything), and only chords the daemon
  // confirmed as applied are ever deleted — the seed graph stays a
  // subgraph of every version, so each head remains connected and
  // admissible for submits.
  constexpr const char* kStreamNs = "loadgen";
  std::uint64_t stream_nodes = 0;
  std::mutex stream_mutex;
  std::uint64_t expected_version = 0;
  std::uint64_t chord_step = 0;
  std::vector<MutateOp> deletable;
  std::atomic<std::uint64_t> mutations_done{0};
  std::unique_ptr<Client> mutator;
  if (mutate_mix > 0) {
    stream_nodes = parse_node_count(graph_texts[0]);
    if (stream_nodes < 3) {
      throw std::runtime_error("--mutate-mix needs a graph with >= 3 nodes");
    }
    mutator = std::make_unique<Client>();
    mutator->connect("127.0.0.1", daemon.port);
    MutateRequest create;
    create.ns = kStreamNs;
    create.base_graph = graph_texts[0];
    const MutateReply created = mutator->mutate(create);
    if (created.outcome != MutateOutcome::kCreated) {
      throw std::runtime_error("stream namespace creation failed: " +
                               created.detail);
    }
    std::cout << "loadgen: stream namespace \"" << kStreamNs << "\" at "
              << hex16(created.fingerprint) << "\n";
  }

  // Mixed traffic: rotate graphs, vary execution hints (threads / engine)
  // so identical result-keys flow in through different execution knobs —
  // exactly what coalescing and the cache must unify.
  std::atomic<int> next{0};
  std::atomic<int> ok{0};
  std::atomic<int> failed{0};
  std::atomic<std::uint64_t> attempts{0};
  std::atomic<std::uint64_t> reconnects{0};
  std::atomic<std::uint64_t> backoff_ms{0};
  std::atomic<std::uint64_t> corrupted_frames{0};
  std::mutex lat_mutex;
  std::vector<double> latencies;
  std::map<std::uint64_t, std::vector<double>> version_latencies;
  std::map<std::uint8_t, std::vector<double>> backend_latencies;
  const auto backend_for = [&](int i) -> std::uint8_t {
    return backend_mix.empty()
               ? std::uint8_t{1}  // paper_exact, the wire default
               : backend_mix[static_cast<std::size_t>(i) %
                             backend_mix.size()];
  };
  const auto note_latency = [&](std::chrono::steady_clock::time_point t0,
                                std::uint64_t version, int i) {
    const double ms =
        std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(
            std::chrono::steady_clock::now() - t0)
            .count();
    std::lock_guard<std::mutex> lock(lat_mutex);
    latencies.push_back(ms);
    if (mutate_mix > 0) {
      version_latencies[version].push_back(ms);
    }
    if (!backend_mix.empty()) {
      backend_latencies[backend_for(i)].push_back(ms);
    }
  };
  std::mutex log_mutex;

  auto make_request = [&](int i) {
    SubmitRequest request;
    request.source = GraphSource::kInline;
    if (mutate_mix > 0) {
      // Stream-addressed at the live head; alternate classic and
      // incremental serving so both fingerprint families flow through
      // coalescing and the cache.
      request.stream_ns = kStreamNs;
      request.incremental = (i % 2 == 1);
    } else {
      request.graph =
          graph_texts[static_cast<std::size_t>(i) % graph_texts.size()];
    }
    request.halve = true;
    request.threads = (i % 3 == 0) ? 2 : 1;
    request.legacy_engine = (i % 5 == 0);
    request.deadline_ms = deadline_ms;
    if (!backend_mix.empty()) {
      request.backend = backend_for(i);
      if (request.backend ==
          static_cast<std::uint8_t>(BackendId::kSampled)) {
        request.sample_seed = 1;  // fixed seed: identical submits coalesce
      }
    }
    return request;
  };

  /// Snapshot of the version ledger, labelling each submit's latency.
  auto head_version = [&]() -> std::uint64_t {
    if (mutate_mix <= 0) {
      return 0;
    }
    std::lock_guard<std::mutex> lock(stream_mutex);
    return expected_version;
  };

  /// Every mutate_mix-th slot applies one chord op at the expected head.
  auto maybe_mutate = [&](int i) {
    if (mutate_mix <= 0 || (i + 1) % mutate_mix != 0) {
      return;
    }
    std::lock_guard<std::mutex> lock(stream_mutex);
    MutateRequest request;
    request.ns = kStreamNs;
    request.base_version = expected_version;
    MutateOp op;
    const std::uint64_t k = chord_step++;
    if (k % 3 == 2 && !deletable.empty()) {
      op = deletable.back();
      deletable.pop_back();
      op.kind = 2;
    } else {
      const std::uint64_t u = k % stream_nodes;
      // Offset in [1, n-1] guarantees v != u.
      const std::uint64_t v =
          (u + 1 + (k * 7) % (stream_nodes - 1)) % stream_nodes;
      op.kind = 1;
      op.u = static_cast<std::uint32_t>(u);
      op.v = static_cast<std::uint32_t>(v);
    }
    request.ops.push_back(op);
    try {
      const MutateReply reply = mutator->mutate(request);
      if (reply.outcome != MutateOutcome::kApplied) {
        throw std::runtime_error(std::string(to_string(reply.outcome)) +
                                 ": " + reply.detail);
      }
      expected_version = reply.version;
      ++mutations_done;
      if (op.kind == 1 && reply.applied == 1) {
        deletable.push_back(op);
      }
    } catch (const std::exception& e) {
      ++failed;
      std::lock_guard<std::mutex> log(log_mutex);
      std::cerr << "loadgen: mutate @v" << request.base_version
                << " failed: " << e.what() << "\n";
    }
  };

  auto retry_worker = [&](unsigned widx) {
    RetryPolicy policy;
    policy.jitter_seed = widx + 1;  // distinct backoff phase per worker
    RetryingClient client("127.0.0.1", connect_port, policy);
    while (true) {
      const int i = next.fetch_add(1);
      if (i >= submits) {
        break;
      }
      maybe_mutate(i);
      const std::uint64_t ver = head_version();
      const auto t0 = std::chrono::steady_clock::now();
      try {
        const ResultReply result = client.submit_and_wait(make_request(i));
        note_latency(t0, ver, i);
        if (result.ready && result.state == JobState::kDone) {
          ++ok;
        } else {
          ++failed;
          std::lock_guard<std::mutex> lock(log_mutex);
          std::cerr << "loadgen: submit " << i << " ended "
                    << to_string(result.state) << ": " << result.detail
                    << "\n";
        }
      } catch (const std::exception& e) {
        note_latency(t0, ver, i);
        ++failed;
        std::lock_guard<std::mutex> lock(log_mutex);
        std::cerr << "loadgen: submit " << i << " gave up: " << e.what()
                  << "\n";
      }
    }
    attempts += client.stats().attempts;
    reconnects += client.stats().reconnects;
    backoff_ms += client.stats().backoff_ms;
    corrupted_frames += client.stats().corrupted_frames;
  };

  auto plain_worker = [&](unsigned) {
    // One persistent connection per simulated client, reused across its
    // whole submit stream — a transport error reconnects and retries the
    // slot instead of killing the thread.  At cluster scale this is what
    // keeps the run measuring the serving tier rather than ephemeral-port
    // churn (a thread-per-submit connect pattern exhausts the local port
    // range long before the daemon saturates).
    Client client;
    bool connected = false;
    while (true) {
      const int i = next.fetch_add(1);
      if (i >= submits) {
        return;
      }
      maybe_mutate(i);
      const std::uint64_t ver = head_version();
      const auto t0 = std::chrono::steady_clock::now();
      bool settled = false;
      std::string transport_error;
      for (int attempt = 0; attempt < 3 && !settled; ++attempt) {
        try {
          if (!connected) {
            client.connect("127.0.0.1", connect_port);
            connected = true;
          }
          ++attempts;
          const SubmitReply submitted = client.submit(make_request(i));
          if (submitted.disposition == SubmitDisposition::kBusy) {
            // Admission control said try later: served backpressure.
            ++ok;
            settled = true;
            break;
          }
          if (submitted.job_id == 0) {
            // Semantic rejection — retrying the same submit cannot help.
            ++failed;
            settled = true;
            std::lock_guard<std::mutex> lock(log_mutex);
            std::cerr << "loadgen: submit " << i << " rejected: "
                      << submitted.detail << "\n";
            break;
          }
          if (i % 7 == 0) {
            (void)client.status(submitted.job_id);  // mix queries in
          }
          const ResultReply result = client.wait_result(submitted.job_id);
          note_latency(t0, ver, i);
          if (result.ready && result.state == JobState::kDone) {
            ++ok;
          } else {
            ++failed;
            std::lock_guard<std::mutex> lock(log_mutex);
            std::cerr << "loadgen: job " << submitted.job_id << " ended "
                      << to_string(result.state) << ": " << result.detail
                      << "\n";
          }
          settled = true;
        } catch (const std::exception& e) {
          client.close();
          connected = false;
          ++reconnects;
          transport_error = e.what();
        }
      }
      if (!settled) {
        ++failed;
        std::lock_guard<std::mutex> lock(log_mutex);
        std::cerr << "loadgen: submit " << i
                  << " gave up after transport errors: " << transport_error
                  << "\n";
      }
    }
  };

  // --kill-one: once half the submits are in flight, SIGTERM the first
  // cluster worker.  Its drain suspends running jobs, MIGRATEs them (and
  // unfetched results) through the router to a survivor, and every
  // client polling a router job id must still get its bytes — the
  // zero-failed-jobs assertion below is the point of the exercise.
  std::atomic<bool> load_done{false};
  std::thread killer;
  if (kill_one) {
    killer = std::thread([&] {
      while (!load_done.load() && next.load() < submits / 2) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      // Kill a worker that actually holds state worth migrating:
      // queued/running jobs, or a completed result block (it ships as a
      // kResult transplant).  The ring may legitimately hash every
      // distinct fingerprint onto one worker, so the victim is chosen by
      // polling each worker's STATS directly (the router only exposes
      // the aggregate) rather than fixed up front — killing an idle
      // worker would make the migrated-in assertion below flaky.
      std::size_t victim = 0;
      const auto busy_deadline =
          std::chrono::steady_clock::now() + std::chrono::seconds(2);
      bool found = false;
      while (!found && std::chrono::steady_clock::now() < busy_deadline) {
        for (std::size_t w = 0; w < cluster_workers.size(); ++w) {
          try {
            Client probe;
            probe.connect("127.0.0.1", cluster_workers[w].port);
            const StatsReply s = probe.stats();
            if (s.queue_depth + s.running + s.jobs_completed > 0) {
              victim = w;
              found = true;
              break;
            }
          } catch (const std::exception&) {
          }
        }
        if (!found) {
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
      }
      std::cout << "loadgen: SIGTERM worker " << victim << " (pid "
                << cluster_workers[victim].pid << ") mid-run\n";
      ::kill(cluster_workers[victim].pid, SIGTERM);
    });
  }

  std::vector<std::thread> workers;
  for (int c = 0; c < concurrency; ++c) {
    if (use_retry) {
      workers.emplace_back(retry_worker, static_cast<unsigned>(c));
    } else {
      workers.emplace_back(plain_worker, static_cast<unsigned>(c));
    }
  }
  for (auto& thread : workers) {
    thread.join();
  }
  load_done.store(true);
  if (killer.joinable()) {
    killer.join();
  }

  int exit_code = 0;
  bool cluster_clean = true;
  {
    Client client;
    client.connect("127.0.0.1", daemon.port);
    const StatsReply stats = client.stats();
    print_stats(stats);
    if (stats.coalesced + stats.cache_hits == 0 && submits > 4) {
      std::cerr << "loadgen: expected identical submits to coalesce or hit "
                   "the cache\n";
      exit_code = 1;
    }
    if (mutate_mix > 0 && stats.mutations_applied == 0) {
      std::cerr << "loadgen: expected MUTATE traffic to register in STATS\n";
      exit_code = 1;
    }
    if (cluster > 0) {
      if (kill_one && stats.migrated_in == 0) {
        // The killed worker had jobs in flight; at least one transplant
        // must have landed on a survivor (counted where it arrived).
        std::cerr << "loadgen: --kill-one saw no migrated-in jobs\n";
        exit_code = 1;
      }
      // Drain the workers first, through the live router (their
      // remaining state migrates, then they LEAVE); the router goes last.
      for (std::size_t w = 0; w < cluster_workers.size(); ++w) {
        ::kill(cluster_workers[w].pid, SIGTERM);
      }
      for (std::size_t w = 0; w < cluster_workers.size(); ++w) {
        int wstatus = 0;
        ::waitpid(cluster_workers[w].pid, &wstatus, 0);
        if (!WIFEXITED(wstatus) || WEXITSTATUS(wstatus) != 0) {
          std::cerr << "loadgen: worker " << w << " exited unclean\n";
          cluster_clean = false;
        }
      }
    }
    const ShutdownReply drain = client.shutdown();
    if (!drain.draining) {
      std::cerr << "loadgen: SHUTDOWN did not begin a drain\n";
      exit_code = 1;
    }
  }
  int status = 0;
  ::waitpid(daemon.pid, &status, 0);
  reaper.armed = false;  // the whole tier is reaped; nothing to clean up
  const bool clean = WIFEXITED(status) && WEXITSTATUS(status) == 0 &&
                     cluster_clean;
  if (proxy) {
    proxy->stop();
    const ChaosStats& cs = proxy->stats();
    std::cout << "loadgen: chaos injected corrupted=" << cs.corrupted.load()
              << " stalled=" << cs.stalled.load() << " cut=" << cs.cut.load()
              << " rst=" << cs.rst.load() << " over " << cs.chunks.load()
              << " chunks on " << cs.connections.load() << " connections\n";
  }

  const auto percentile = [&](double p) {
    if (latencies.empty()) {
      return 0.0;
    }
    std::sort(latencies.begin(), latencies.end());
    const double rank =
        p / 100.0 * static_cast<double>(latencies.size() - 1);
    const auto lo = static_cast<std::size_t>(rank);
    const std::size_t hi = std::min(lo + 1, latencies.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return latencies[lo] + (latencies[hi] - latencies[lo]) * frac;
  };
  std::cout << "loadgen: latency_ms p50=" << percentile(50) << " p90="
            << percentile(90) << " p99=" << percentile(99) << "\n";
  if (cluster > 0) {
    // Cluster-level serving percentiles: measured at the client, through
    // the router hop, across every worker — the number a capacity plan
    // for the tier actually needs.
    std::cout << "loadgen: cluster workers=" << cluster
              << (kill_one ? " (one killed mid-run)" : "")
              << " clients=" << concurrency
              << " cluster_p50_ms=" << percentile(50)
              << " cluster_p99_ms=" << percentile(99) << "\n";
  }
  if (mutate_mix > 0) {
    std::cout << "loadgen: mutations=" << mutations_done.load()
              << " head_version=" << expected_version << "\n";
    for (const auto& [version, lat] : version_latencies) {
      double sum = 0.0;
      for (const double ms : lat) {
        sum += ms;
      }
      std::cout << "loadgen: version " << version << " submits=" << lat.size()
                << " mean_ms="
                << (lat.empty() ? 0.0
                                : sum / static_cast<double>(lat.size()))
                << "\n";
    }
    if (mutations_done.load() == 0) {
      std::cerr << "loadgen: no mutation ever applied\n";
      exit_code = 1;
    }
  }
  if (!backend_mix.empty()) {
    for (auto& [backend, lat] : backend_latencies) {
      std::sort(lat.begin(), lat.end());
      double sum = 0.0;
      for (const double ms : lat) {
        sum += ms;
      }
      const double mean =
          lat.empty() ? 0.0 : sum / static_cast<double>(lat.size());
      const double p90 =
          lat.empty() ? 0.0
                      : lat[std::min(lat.size() - 1,
                                     static_cast<std::size_t>(
                                         0.9 * static_cast<double>(
                                                   lat.size())))];
      std::cout << "loadgen: backend "
                << to_string(static_cast<BackendId>(backend))
                << " submits=" << lat.size() << " mean_ms=" << mean
                << " p90_ms=" << p90 << "\n";
    }
    if (backend_latencies.empty()) {
      std::cerr << "loadgen: --backend-mix saw no served submits\n";
      exit_code = 1;
    }
  }
  const double amplification =
      submits == 0 ? 0.0
                   : static_cast<double>(attempts.load()) /
                         static_cast<double>(submits);
  std::cout << "loadgen: attempts=" << attempts.load()
            << " retry_amplification=" << amplification
            << " reconnects=" << reconnects.load()
            << " corrupted_frames=" << corrupted_frames.load()
            << " backoff_ms=" << backoff_ms.load() << "\n";
  std::cout << "loadgen: " << ok.load() << "/" << submits << " served, "
            << failed.load() << " failed, daemon exit "
            << (clean ? "clean" : "UNCLEAN") << "\n";
  if (!clean || failed.load() != 0 || ok.load() != submits) {
    exit_code = 1;
  }
  return exit_code;
}

int run(int argc, char** argv) {
  const Args args = Args::parse(
      argc, argv,
      {"host", "port", "path", "faults", "max-rounds", "threads", "daemon",
       "graphs", "submits", "concurrency", "spool", "chaos", "chaos-seed",
       "deadline", "ns", "version", "ops", "base", "mutate-mix", "backend",
       "samples", "sample-seed", "backend-mix", "cluster", "router"});
  if (args.has("help") || args.positional().empty()) {
    std::cout << kUsage;
    return args.has("help") ? 0 : 1;
  }
  const std::string& command = args.positional()[0];
  if (command == "loadgen") {
    return run_loadgen(args);
  }

  if (command == "submit" && args.has("retry")) {
    // Self-healing submit: retry with backoff through transport faults
    // and soft refusals until the result lands or the deadline expires.
    // Implies --wait (submit_and_wait polls the result out).
    const bool by_path = args.has("path") || args.has("ns");
    if (!by_path && args.positional().size() != 2) {
      throw std::runtime_error("submit needs GRAPH.txt (or --path NAME)");
    }
    RetryPolicy policy;
    policy.overall_deadline_ms = static_cast<std::uint64_t>(
        args.get_int_or("deadline", 120'000));
    RetryingClient healing(
        args.get("host").value_or("127.0.0.1"),
        static_cast<std::uint16_t>(args.get_int_or("port", 0)), policy);
    const SubmitRequest request = build_submit(
        args, by_path ? std::string() : args.positional()[1]);
    try {
      print_result(healing.submit_and_wait(request));
      std::cout << "attempts: " << healing.stats().attempts
                << "\nreconnects: " << healing.stats().reconnects
                << "\nbackoff_ms: " << healing.stats().backoff_ms << "\n";
      return 0;
    } catch (const RetryError& e) {
      std::cerr << "congestbc_client: " << e.what()
                << (e.retryable_cause() ? " (retry budget exhausted)"
                                        : " (not retryable)")
                << "\n";
      return 1;
    }
  }

  Client client;
  client.connect(args.get("host").value_or("127.0.0.1"),
                 static_cast<std::uint16_t>(args.get_int_or("port", 0)));

  if (command == "mutate") {
    if (args.positional().size() != 2) {
      throw std::runtime_error("mutate needs a NAMESPACE");
    }
    MutateRequest request;
    request.ns = args.positional()[1];
    request.base_version =
        static_cast<std::uint64_t>(args.get_int_or("version", 0));
    if (const auto base = args.get("base")) {
      request.base_graph = read_file(*base);
    }
    request.ops = parse_ops(args.get("ops").value_or(""));
    const MutateReply reply = client.mutate(request);
    std::cout << "outcome: " << to_string(reply.outcome)
              << "\nversion: " << reply.version
              << "\nfingerprint: " << hex16(reply.fingerprint)
              << "\napplied: " << reply.applied
              << "\ndropped: " << reply.dropped << "\n";
    if (!reply.detail.empty()) {
      std::cout << "detail: " << reply.detail << "\n";
    }
    return reply.outcome == MutateOutcome::kApplied ||
                   reply.outcome == MutateOutcome::kCreated
               ? 0
               : 1;
  }
  if (command == "submit") {
    const bool by_path = args.has("path") || args.has("ns");
    if (!by_path && args.positional().size() != 2) {
      throw std::runtime_error("submit needs GRAPH.txt (or --path NAME)");
    }
    const SubmitRequest request = build_submit(
        args, by_path ? std::string() : args.positional()[1]);
    const SubmitReply reply = client.submit(request);
    std::cout << "disposition: " << to_string(reply.disposition)
              << "\njob: " << reply.job_id
              << "\nfingerprint: " << hex16(reply.fingerprint) << "\n";
    if (reply.backend != 0) {
      std::cout << "backend: "
                << to_string(static_cast<BackendId>(reply.backend))
                << (reply.downgraded ? " (downgraded from auto)" : "")
                << "\n";
    }
    if (!reply.detail.empty()) {
      std::cout << "detail: " << reply.detail << "\n";
    }
    if (reply.job_id != 0 && args.has("wait")) {
      print_result(client.wait_result(reply.job_id));
    }
    return reply.job_id != 0 ? 0 : 1;
  }
  if (command == "status" || command == "result" || command == "cancel") {
    if (args.positional().size() != 2) {
      throw std::runtime_error(command + " needs a JOB id");
    }
    const std::uint64_t job_id = std::stoull(args.positional()[1]);
    if (command == "status") {
      const StatusReply reply = client.status(job_id);
      std::cout << "state: " << to_string(reply.state)
                << "\nfingerprint: " << hex16(reply.fingerprint)
                << "\nqueue position: " << reply.queue_position << "\n";
      if (!reply.detail.empty()) {
        std::cout << "detail: " << reply.detail << "\n";
      }
      if (!reply.phase_timeline.empty()) {
        std::cout << "phases: " << reply.phase_timeline << "\n";
      }
      return 0;
    }
    if (command == "result") {
      const ResultReply reply = client.result(job_id);
      if (!reply.ready) {
        std::cout << "not ready (state: " << to_string(reply.state) << ")\n";
        return 2;
      }
      print_result(reply);
      return 0;
    }
    const CancelReply reply = client.cancel(job_id);
    std::cout << "cancel: " << to_string(reply.outcome) << "\n";
    return reply.outcome == CancelOutcome::kCancelled ||
                   reply.outcome == CancelOutcome::kRequested
               ? 0
               : 1;
  }
  if (command == "stats") {
    print_stats(client.stats());
    return 0;
  }
  if (command == "shutdown") {
    const ShutdownReply reply = client.shutdown();
    std::cout << (reply.draining ? "draining" : "not draining") << "\n";
    return 0;
  }
  throw std::runtime_error("unknown command: " + command);
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "congestbc_client: " << e.what() << "\n" << kUsage;
    return 1;
  }
}
