// congestbc_cli — compute centralities for an edge-list graph with the
// distributed O(N)-round CONGEST algorithm.
//
// Usage:
//   congestbc_cli GRAPH.txt [options]
//   congestbc_cli --generate FAMILY --n N [--seed S] [options]
//
// Input format: "# comments", then "N M", then M lines "u v".
//
// Options:
//   --generate F     synthesize instead of reading a file; F in {path,
//                    cycle, star, grid, tree, er, ba, ws, lollipop, barbell}
//   --n N            node-count target for --generate (default 64)
//   --seed S         RNG seed for random families (default 1)
//   --top K          print only the K highest-betweenness nodes (default 10)
//   --all            print every node
//   --samples K      sampled estimator with K sources (default: exact)
//   --no-check       skip the centralized Brandes cross-check
//   --no-halve       report ordered-pair sums (no /2)
//   --mantissa L     soft-float mantissa bits (default log2(N)+24)
//   --trace          print a per-round activity timeline of the run
//   --trace-out FILE write a Chrome trace-event JSON file (open it in
//                    chrome://tracing or Perfetto): the logical phase
//                    timeline, per-round traffic counters, and the
//                    flight recorder's wall-clock engine spans
//   --json           emit the full report as JSON instead of tables
//   --metrics        print detailed simulator metrics
//   --stats          print graph statistics and exit
//   --apsp           run the counting phase only and print the distance
//                    matrix (small graphs)
//   --weighted       input lines are "u v w" (positive integer weights);
//                    runs the subdivision pipeline
//   --faults SPEC    inject faults, e.g. "drop=0.1,seed=7" or
//                    "crash=3:10-inf,link=0-1:5-20" (see congest/fault.hpp);
//                    runs under the watchdog and reports the classified
//                    outcome instead of asserting reliable delivery
//   --reliable       wrap every node in the self-healing transport
//                    (exact results survive drop/duplicate/delay faults)
//   --stall-window N watchdog window in rounds (default: 8N+256 when
//                    faults are active)
//   --threads T      simulator lanes for the node-execution phase
//                    (default 1; 0 = one per hardware thread; results are
//                    bit-identical for every value)
//   --engine E       simulator engine: frontier (default; frontier-aware
//                    scheduling, per-round cost tracks the active set),
//                    arena (PR-2 static partition), or legacy (PR-1
//                    sequential baseline); results are bit-identical
//   --checkpoint-every N  write a full snapshot every N rounds into
//                    --checkpoint-dir (atomic write-rename; newest
//                    --checkpoint-keep files retained, default 2)
//   --checkpoint-dir D    checkpoint directory (created on first write)
//   --checkpoint-keep K   checkpoints retained on disk (0 = all)
//   --resume FILE    resume a run from a snapshot file; the graph, budget,
//                    and fault plan must match the original run — the
//                    resumed run is bit-identical to the uninterrupted one
//   --halt-at-round R     suspend at the start of round R (deterministic
//                    stand-in for a kill; exit code 3); with
//                    --checkpoint-dir the suspension snapshot is written
//                    there, ready for --resume
//   --dump-graph FILE     write the loaded/generated graph as a canonical
//                    edge list and exit (dataset generation)
//   --backend B      portfolio backend: auto (resolves to paper_exact
//                    locally — no queue to be under pressure from),
//                    paper_exact, cfp, directed, or sampled
//                    (src/portfolio).  `directed` reads the input as a
//                    directed edge list (orientation kept; --generate
//                    supports er and ba); `sampled` honors --samples and
//                    --sample-seed and prints its Hoeffding error bound
//   --sample-seed S  source-sampling seed for --backend sampled
//                    (default 1; distinct from --seed, which drives
//                    graph generation)
//
// Subcommands:
//   congestbc_cli fingerprint GRAPH.txt [--no-halve --faults SPEC
//                    --reliable --mantissa L --backend B --samples K
//                    --sample-seed S]
//                    print the graph / options / run fingerprints — the key
//                    the serving daemon's result cache, coalescing map, and
//                    job spool all share (src/snapshot/fingerprint.hpp)
//   congestbc_cli backends
//                    list the registered portfolio backends and their
//                    capabilities
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <numeric>
#include <optional>

#include "algo/apsp.hpp"
#include "algo/weighted_bc.hpp"
#include "central/weighted_brandes.hpp"
#include "central/brandes.hpp"
#include "common/args.hpp"
#include "common/table.hpp"
#include "congest/trace.hpp"
#include "core/report_json.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/recorder.hpp"
#include "core/runner.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "graph/properties.hpp"
#include "portfolio/backend.hpp"
#include "snapshot/fingerprint.hpp"

namespace {

using namespace congestbc;

constexpr const char* kUsage =
    "usage: congestbc_cli GRAPH.txt [options]\n"
    "       congestbc_cli --generate FAMILY --n N [options]\n"
    "       congestbc_cli fingerprint GRAPH.txt [options]\n"
    "       congestbc_cli backends\n"
    "options: --top K | --all | --samples K | --no-check | --no-halve |\n"
    "         --mantissa L | --metrics | --stats | --apsp | --trace |\n"
    "         --trace-out FILE | --json | --seed S | --faults SPEC |\n"
    "         --reliable |\n"
    "         --stall-window N | --threads T | --engine E |\n"
    "         --checkpoint-every N |\n"
    "         --checkpoint-dir D | --checkpoint-keep K | --resume FILE |\n"
    "         --halt-at-round R | --dump-graph FILE |\n"
    "         --backend B | --sample-seed S\n";

/// Assembles and writes the --trace-out file: deterministic logical
/// tracks (phase timeline, per-round traffic, counting-wave starts) plus
/// the flight recorder's wall-clock engine spans.
void write_trace_out(const std::string& path,
                     const obs::FlightRecorder& recorder,
                     const DistributedBcResult& result) {
  std::vector<obs::CounterSeries> counters;
  if (!result.metrics.per_round.empty()) {
    obs::CounterSeries bits;
    bits.name = "bits_on_wire";
    obs::CounterSeries msgs;
    msgs.name = "physical_messages";
    for (const RoundStats& stats : result.metrics.per_round) {
      bits.values.push_back(stats.bits);
      msgs.values.push_back(stats.physical_messages);
    }
    counters.push_back(std::move(bits));
    counters.push_back(std::move(msgs));
  }
  std::vector<obs::TraceInstant> instants;
  if (result.bfs_start_rounds.size() <= 512) {
    for (std::size_t v = 0; v < result.bfs_start_rounds.size(); ++v) {
      if (result.bfs_start_rounds[v] > 0) {
        instants.push_back(obs::TraceInstant{
            "wave s=" + std::to_string(v), result.bfs_start_rounds[v]});
      }
    }
  }
  std::ofstream out(path);
  CBC_EXPECTS(out.good(), "cannot open " + path + " for writing");
  out << obs::chrome_trace_json(&recorder, result.phase_profile, counters,
                                instants);
  std::cerr << "wrote trace: " << path << " (" << recorder.recorded()
            << " engine spans, " << recorder.dropped() << " dropped)\n";
}

Graph load_graph(const Args& args) {
  if (const auto family = args.get("generate")) {
    const auto n = static_cast<NodeId>(args.get_int_or("n", 64));
    Rng rng(static_cast<std::uint64_t>(args.get_int_or("seed", 1)));
    if (*family == "path") return gen::path(n);
    if (*family == "cycle") return gen::cycle(n);
    if (*family == "star") return gen::star(n);
    if (*family == "grid") {
      const auto side = static_cast<NodeId>(
          std::max(2.0, std::round(std::sqrt(static_cast<double>(n)))));
      return gen::grid(side, side);
    }
    if (*family == "tree") return gen::random_tree(n, rng);
    if (*family == "er") {
      return gen::erdos_renyi_connected(
          n, 2.0 * std::log(static_cast<double>(n)) / static_cast<double>(n),
          rng);
    }
    if (*family == "ba") return gen::barabasi_albert(n, 2, rng);
    if (*family == "ws") return gen::watts_strogatz(n, 2, 0.2, rng);
    if (*family == "lollipop") return gen::lollipop(n / 2, n - n / 2);
    if (*family == "barbell") return gen::barbell(n / 3, n / 4);
    throw PreconditionError("unknown family: " + *family);
  }
  CBC_EXPECTS(args.positional().size() == 1, kUsage);
  std::ifstream file(args.positional()[0]);
  CBC_EXPECTS(file.good(), "cannot open " + args.positional()[0]);
  return read_edge_list(file);
}

Digraph load_digraph(const Args& args) {
  if (const auto family = args.get("generate")) {
    const auto n = static_cast<NodeId>(args.get_int_or("n", 64));
    Rng rng(static_cast<std::uint64_t>(args.get_int_or("seed", 1)));
    if (*family == "er") {
      return gen::directed_erdos_renyi(
          n, 2.0 * std::log(static_cast<double>(n)) / static_cast<double>(n),
          rng);
    }
    if (*family == "ba") return gen::directed_barabasi_albert(n, 2, rng);
    throw PreconditionError("directed --generate supports er and ba, not " +
                            *family);
  }
  CBC_EXPECTS(args.positional().size() == 1, kUsage);
  std::ifstream file(args.positional()[0]);
  CBC_EXPECTS(file.good(), "cannot open " + args.positional()[0]);
  return read_directed_edge_list(file);
}

EngineKind parse_engine(const std::string& name) {
  if (name == "frontier") return EngineKind::kFrontier;
  if (name == "arena") return EngineKind::kArena;
  if (name == "legacy") return EngineKind::kLegacy;
  throw PreconditionError("unknown --engine: " + name +
                          " (expected frontier, arena, or legacy)");
}

int run(int argc, char** argv) {
  const Args args = Args::parse(argc, argv,
                                {"generate", "n", "seed", "top", "samples",
                                 "mantissa", "faults", "stall-window",
                                 "threads", "engine", "checkpoint-every",
                                 "checkpoint-dir", "checkpoint-keep",
                                 "resume", "halt-at-round", "dump-graph",
                                 "trace-out", "backend", "sample-seed"});
  if (args.has("help")) {
    std::cout << kUsage;
    return 0;
  }
  if (!args.positional().empty() && args.positional()[0] == "backends") {
    Table table({"backend", "input", "kind", "engines", "summary"});
    for (const portfolio::BcBackend* backend :
         portfolio::BackendRegistry::instance().all()) {
      const portfolio::BackendCapabilities caps = backend->capabilities();
      table.add_row({std::string(backend->name()),
                     caps.directed_input ? "directed" : "undirected",
                     caps.exact ? "exact" : "approximate",
                     caps.simulator_engines ? "yes" : "no",
                     std::string(caps.summary)});
    }
    table.print(std::cout);
    return 0;
  }
  if (!args.positional().empty() && args.positional()[0] == "fingerprint") {
    // The exact key bytes the serving daemon hashes at admission: result
    // cache hits, in-flight coalescing, and spool-resume validation all
    // key on run_fingerprint, so this subcommand lets an operator predict
    // (or debug) whether two submits will share one execution.
    BackendId backend = BackendId::kPaperExact;
    if (const auto backend_name = args.get("backend")) {
      const auto parsed = portfolio::parse_backend(*backend_name);
      CBC_EXPECTS(parsed.has_value(), "unknown --backend: " + *backend_name);
      // No queue here, so auto is never under pressure: paper_exact —
      // the same resolution an idle daemon would make.
      backend = portfolio::resolve_auto_backend(*parsed, false);
    }
    Graph graph(0, {});
    std::optional<Digraph> digraph;
    if (backend == BackendId::kDirected) {
      CBC_EXPECTS(args.positional().size() == 2 || args.get("generate"),
                  "usage: congestbc_cli fingerprint GRAPH.txt [options]");
      if (args.get("generate")) {
        digraph = load_digraph(args);
      } else {
        std::ifstream file(args.positional()[1]);
        CBC_EXPECTS(file.good(), "cannot open " + args.positional()[1]);
        digraph = read_directed_edge_list(file);
      }
    } else if (args.get("generate")) {
      graph = load_graph(args);
    } else {
      CBC_EXPECTS(args.positional().size() == 2,
                  "usage: congestbc_cli fingerprint GRAPH.txt [options]");
      std::ifstream file(args.positional()[1]);
      CBC_EXPECTS(file.good(), "cannot open " + args.positional()[1]);
      graph = read_edge_list(file);
    }
    const NodeId n =
        digraph.has_value() ? digraph->num_nodes() : graph.num_nodes();
    DistributedBcOptions bc_options;
    bc_options.backend = backend;
    if (backend == BackendId::kSampled) {
      bc_options.approx_samples =
          static_cast<std::uint32_t>(args.get_int_or("samples", 0));
      bc_options.approx_seed =
          static_cast<std::uint64_t>(args.get_int_or("sample-seed", 1));
    }
    bc_options.halve = !args.has("no-halve");
    if (const auto spec = args.get("faults")) {
      bc_options.faults = FaultPlan::parse(*spec);
    }
    bc_options.reliable_transport = args.has("reliable");
    if (const auto mantissa = args.get("mantissa")) {
      auto fmt = SoftFloatFormat::for_graph(n);
      fmt.mantissa_bits = static_cast<unsigned>(std::stoul(*mantissa));
      bc_options.format = fmt;
      bc_options.budget_bits = 0;
    }
    const auto hex = [](std::uint64_t fp) {
      char buf[19];
      std::snprintf(buf, sizeof buf, "0x%016llx",
                    static_cast<unsigned long long>(fp));
      return std::string(buf);
    };
    std::cout << "graph fingerprint:   "
              << hex(digraph.has_value() ? digraph_fingerprint(*digraph)
                                         : graph_fingerprint(graph))
              << "\n"
              << "options fingerprint: "
              << hex(options_fingerprint(bc_options, n)) << "\n"
              << "run fingerprint:     "
              << hex(digraph.has_value()
                         ? run_fingerprint(*digraph, bc_options)
                         : run_fingerprint(graph, bc_options))
              << "\n";
    return 0;
  }
  if (args.has("weighted")) {
    CBC_EXPECTS(args.positional().size() == 1,
                "--weighted requires an input file");
    std::ifstream file(args.positional()[0]);
    CBC_EXPECTS(file.good(), "cannot open " + args.positional()[0]);
    const WeightedGraph wg = read_weighted_edge_list(file);
    const auto result = run_distributed_weighted_bc(wg);
    std::vector<NodeId> order(wg.num_nodes());
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&](NodeId a, NodeId b) {
      return result.betweenness[a] > result.betweenness[b];
    });
    const auto count = std::min<std::uint64_t>(
        wg.num_nodes(),
        static_cast<std::uint64_t>(args.get_int_or("top", 10)));
    Table table({"node", "weighted betweenness", "weighted closeness"});
    for (std::uint64_t i = 0; i < count; ++i) {
      const NodeId v = order[i];
      table.add_row({std::to_string(v),
                     format_double(result.betweenness[v], 6),
                     format_double(result.closeness[v], 4)});
    }
    table.print(std::cout);
    std::cout << "\nsubdivided to " << result.subdivided_nodes << " nodes; "
              << result.rounds << " rounds; weighted diameter "
              << result.weighted_diameter << "\n";
    return 0;
  }

  if (const auto backend_name = args.get("backend")) {
    // Portfolio path: any of the four registered backends, dispatched
    // through the same run_portfolio() the serving daemon uses.  `auto`
    // resolves to paper_exact — a local one-shot run has no queue to be
    // under pressure from.
    const auto parsed = portfolio::parse_backend(*backend_name);
    CBC_EXPECTS(parsed.has_value(), "unknown --backend: " + *backend_name);
    const BackendId backend = portfolio::resolve_auto_backend(*parsed, false);

    DistributedBcOptions bc_options;
    bc_options.backend = backend;
    bc_options.halve = !args.has("no-halve");
    bc_options.threads = static_cast<unsigned>(args.get_int_or("threads", 1));
    if (const auto engine = args.get("engine")) {
      bc_options.engine = parse_engine(*engine);
    }
    if (backend == BackendId::kSampled) {
      bc_options.approx_samples =
          static_cast<std::uint32_t>(args.get_int_or("samples", 0));
      bc_options.approx_seed =
          static_cast<std::uint64_t>(args.get_int_or("sample-seed", 1));
    }

    Graph graph(0, {});
    std::optional<Digraph> digraph;
    portfolio::BackendRequest breq;
    if (backend == BackendId::kDirected) {
      digraph = load_digraph(args);
      breq.digraph = &*digraph;
    } else {
      graph = load_graph(args);
      breq.graph = &graph;
    }
    const NodeId n =
        digraph.has_value() ? digraph->num_nodes() : graph.num_nodes();
    if (const auto mantissa = args.get("mantissa")) {
      auto fmt = SoftFloatFormat::for_graph(n);
      fmt.mantissa_bits = static_cast<unsigned>(std::stoul(*mantissa));
      bc_options.format = fmt;
      bc_options.budget_bits = 0;
    }
    breq.options = bc_options;
    const RunOutcome outcome = portfolio::run_portfolio(breq);

    if (args.has("json")) {
      std::cout << to_json(outcome.result) << "\n";
      return outcome.complete() ? 0 : 2;
    }
    const auto count = args.has("all")
                           ? n
                           : std::min<std::uint64_t>(
                                 n, static_cast<std::uint64_t>(
                                        args.get_int_or("top", 10)));
    std::vector<NodeId> order(n);
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&](NodeId a, NodeId b) {
      return outcome.result.betweenness[a] > outcome.result.betweenness[b];
    });
    Table table({"node", "betweenness", "closeness"});
    for (std::uint64_t i = 0; i < count; ++i) {
      const NodeId v = order[i];
      table.add_row({std::to_string(v),
                     format_double(outcome.result.betweenness[v], 6),
                     format_double(outcome.result.closeness[v], 4)});
    }
    table.print(std::cout);
    std::cout << "\nbackend " << to_string(backend) << ": "
              << outcome.result.rounds << " rounds, diameter "
              << outcome.result.diameter << "\n";
    if (backend == BackendId::kSampled) {
      const std::uint32_t budget =
          portfolio::resolve_sample_budget(n, bc_options.approx_samples);
      std::cout << "sampled " << budget << "/" << n
                << " sources (seed " << bc_options.approx_seed
                << "); max abs BC error <= "
                << format_double(portfolio::sampled_error_bound(n, budget, 0.05),
                                 2)
                << " with probability 0.95\n";
    }
    return outcome.complete() ? 0 : 2;
  }

  const Graph graph = load_graph(args);

  if (const auto dump = args.get("dump-graph")) {
    std::ofstream out(*dump);
    CBC_EXPECTS(out.good(), "cannot open " + *dump + " for writing");
    write_edge_list(out, graph);
    std::cout << "wrote " << graph.num_nodes() << " nodes / "
              << graph.num_edges() << " edges to " << *dump << "\n";
    return 0;
  }

  if (args.has("stats")) {
    std::cout << "nodes:     " << graph.num_nodes() << "\n"
              << "edges:     " << graph.num_edges() << "\n"
              << "max deg:   " << graph.max_degree() << "\n"
              << "connected: " << (is_connected(graph) ? "yes" : "no") << "\n";
    if (is_connected(graph) && graph.num_nodes() > 0) {
      std::cout << "diameter:  " << diameter(graph) << "\n"
                << "radius:    " << radius(graph) << "\n";
    }
    return 0;
  }

  if (args.has("apsp")) {
    const auto result = run_distributed_apsp(graph);
    std::cout << "distributed APSP: " << result.rounds << " rounds, diameter "
              << result.diameter << "\n";
    if (graph.num_nodes() <= 32) {
      std::cout << "\ndistance matrix (row = node, col = source):\n";
      for (NodeId v = 0; v < graph.num_nodes(); ++v) {
        for (NodeId s = 0; s < graph.num_nodes(); ++s) {
          std::cout << result.distances[v][s]
                    << (s + 1 == graph.num_nodes() ? "\n" : " ");
        }
      }
    } else {
      std::cout << "(distance matrix suppressed for N > 32)\n";
    }
    return 0;
  }

  // Checkpoint/resume flags route through the watchdog path too: a
  // suspended or resumed run wants the classified-outcome report, not an
  // exception.
  const bool snapshot_flags =
      args.has("checkpoint-every") || args.has("checkpoint-dir") ||
      args.has("resume") || args.has("halt-at-round");
  if (args.has("faults") || args.has("reliable") || snapshot_flags) {
    DistributedBcOptions bc_options;
    bc_options.halve = !args.has("no-halve");
    if (const auto spec = args.get("faults")) {
      bc_options.faults = FaultPlan::parse(*spec);
    }
    bc_options.reliable_transport = args.has("reliable");
    bc_options.stall_window =
        static_cast<std::uint64_t>(args.get_int_or("stall-window", 0));
    bc_options.threads = static_cast<unsigned>(args.get_int_or("threads", 1));
    if (const auto engine = args.get("engine")) {
      bc_options.engine = parse_engine(*engine);
    }
    bc_options.checkpoint_every =
        static_cast<std::uint64_t>(args.get_int_or("checkpoint-every", 0));
    bc_options.checkpoint_dir = args.get("checkpoint-dir").value_or("");
    bc_options.checkpoint_keep_last =
        static_cast<unsigned>(args.get_int_or("checkpoint-keep", 2));
    bc_options.resume_from = args.get("resume").value_or("");
    bc_options.halt_at_round =
        static_cast<std::uint64_t>(args.get_int_or("halt-at-round", 0));
    std::optional<obs::FlightRecorder> recorder;
    const auto trace_out = args.get("trace-out");
    if (trace_out) {
      recorder.emplace();
      bc_options.recorder = &*recorder;
    }
    if (args.has("json")) {
      // Machine output: the result JSON carries the resume lineage
      // (suspended / resumed_from_round / checkpoints); the exit code
      // still distinguishes complete (0) / suspended (3) / failed (2).
      const RunOutcome outcome = run_bc_with_watchdog(graph, bc_options);
      if (trace_out) {
        write_trace_out(*trace_out, *recorder, outcome.result);
      }
      std::cout << to_json(outcome.result) << "\n";
      if (outcome.status == RunStatus::kSuspended) {
        return 3;
      }
      return outcome.complete() ? 0 : 2;
    }
    std::cout << "fault plan: " << bc_options.faults.describe() << "\n"
              << "transport:  "
              << (bc_options.reliable_transport ? "reliable (self-healing)"
                                                : "bare (paper model)")
              << "\n\n";
    const RunOutcome outcome = run_bc_with_watchdog(graph, bc_options);
    if (trace_out) {
      write_trace_out(*trace_out, *recorder, outcome.result);
    }

    const auto count = args.has("all")
                           ? graph.num_nodes()
                           : std::min<std::uint64_t>(
                                 graph.num_nodes(),
                                 static_cast<std::uint64_t>(
                                     args.get_int_or("top", 10)));
    std::vector<NodeId> order(graph.num_nodes());
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&](NodeId a, NodeId b) {
      return outcome.result.betweenness[a] > outcome.result.betweenness[b];
    });
    Table table({"node", "betweenness", "closeness", "finished"});
    for (std::uint64_t i = 0; i < count; ++i) {
      const NodeId v = order[i];
      table.add_row({std::to_string(v),
                     format_double(outcome.result.betweenness[v], 6),
                     format_double(outcome.result.closeness[v], 4),
                     outcome.completion[v].done ? "yes" : "no"});
    }
    table.print(std::cout);
    std::cout << "\n" << outcome.summary() << "\n";
    const auto& m = outcome.result.metrics;
    std::cout << "fault events: dropped " << m.dropped_messages
              << ", duplicated " << m.duplicated_messages << ", delayed "
              << m.delayed_messages << ", crashed-node rounds "
              << m.crashed_node_rounds << "\n";
    if (outcome.result.resumed_from_round.has_value()) {
      std::cout << "resumed from round " << *outcome.result.resumed_from_round
                << "\n";
    }
    for (const auto& path : outcome.result.checkpoints) {
      std::cout << "checkpoint: " << path << "\n";
    }
    if (outcome.status == RunStatus::kSuspended) {
      return 3;  // resumable suspension, not a failure
    }
    return outcome.complete() ? 0 : 2;
  }

  AnalysisOptions options;
  options.compare_with_brandes = !args.has("no-check");
  options.distributed.halve = !args.has("no-halve");
  options.distributed.threads =
      static_cast<unsigned>(args.get_int_or("threads", 1));
  if (const auto engine = args.get("engine")) {
    options.distributed.engine = parse_engine(*engine);
  }
  MessageTrace trace;
  if (args.has("trace")) {
    options.distributed.trace = &trace;
  }
  std::optional<obs::FlightRecorder> recorder;
  const auto trace_out = args.get("trace-out");
  if (trace_out) {
    recorder.emplace();
    options.distributed.recorder = &*recorder;
  }
  if (const auto samples = args.get("samples")) {
    const auto k = static_cast<std::size_t>(std::stoll(*samples));
    CBC_EXPECTS(k >= 1 && k <= graph.num_nodes(), "bad --samples");
    Rng rng(static_cast<std::uint64_t>(args.get_int_or("seed", 1)));
    std::vector<bool> mask(graph.num_nodes(), false);
    for (const auto s : rng.sample_without_replacement(graph.num_nodes(), k)) {
      mask[static_cast<std::size_t>(s)] = true;
    }
    options.distributed.sources = mask;
    options.compare_with_brandes = false;  // estimator: no exact parity
  }
  if (const auto mantissa = args.get("mantissa")) {
    auto fmt = SoftFloatFormat::for_graph(graph.num_nodes());
    fmt.mantissa_bits = static_cast<unsigned>(std::stoul(*mantissa));
    options.distributed.format = fmt;
    options.distributed.budget_bits = 0;
  }

  Runner runner(graph);
  const auto report = runner.analyze(options);
  if (trace_out) {
    write_trace_out(*trace_out, *recorder, report.distributed);
  }

  if (args.has("json")) {
    std::cout << to_json(report) << "\n";
    return 0;
  }

  const auto count = args.has("all")
                         ? graph.num_nodes()
                         : std::min<std::uint64_t>(
                               graph.num_nodes(),
                               static_cast<std::uint64_t>(
                                   args.get_int_or("top", 10)));
  std::vector<NodeId> order(graph.num_nodes());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](NodeId a, NodeId b) {
    return report.distributed.betweenness[a] > report.distributed.betweenness[b];
  });

  Table table({"node", "betweenness", "closeness", "graph centrality",
               "stress"});
  for (std::uint64_t i = 0; i < count; ++i) {
    const NodeId v = order[i];
    table.add_row(
        {std::to_string(v),
         format_double(report.distributed.betweenness[v], 6),
         format_double(report.distributed.closeness[v], 4),
         format_double(report.distributed.graph_centrality[v], 4),
         format_double(static_cast<double>(report.distributed.stress[v]), 6)});
  }
  table.print(std::cout);
  std::cout << "\n" << report.summary() << "\n";

  if (args.has("trace")) {
    std::cout << "\nactivity |" << trace.activity_timeline(64) << "| ("
              << trace.total_messages() << " messages over "
              << report.metrics.rounds << " rounds)\n";
  }

  if (args.has("metrics")) {
    const auto& m = report.metrics;
    std::cout << "\nsimulator metrics:\n"
              << "  rounds:                 " << m.rounds << "\n"
              << "  physical messages:      " << m.total_physical_messages
              << "\n"
              << "  logical messages:       " << m.total_logical_messages
              << "\n"
              << "  total bits:             " << m.total_bits << "\n"
              << "  max bits/edge/round:    " << m.max_bits_on_edge_round
              << "\n"
              << "  max bundle size:        " << m.max_logical_on_edge_round
              << "\n"
              << "  aggregation epoch:      "
              << report.distributed.aggregation_epoch << "\n"
              << "  diameter:               " << report.distributed.diameter
              << "\n"
              << "  max node state (bytes): "
              << report.distributed.max_node_state_bytes << "\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n" << kUsage;
    return 1;
  }
}
