// congestbc_router — the cluster front-end (src/cluster/router.hpp).
//
// Speaks CBCP v6 to clients on one port and routes every job to a tier
// of congestbcd workers by run fingerprint over a consistent-hash ring,
// so each worker's result cache and in-flight coalescing stay as hot as
// in a single-daemon deployment.  Workers are seeded statically
// (--workers) and/or announce themselves with `congestbcd --join`; the
// router health-checks them, evicts dead ones from the ring, and heals
// the eviction on the next JOIN.  A SIGTERMed worker MIGRATEs its
// suspended jobs through the router to a surviving worker, which
// resumes them bit-identically — clients polling their router job ids
// never notice the host change.
//
// Usage:
//   congestbc_router [options]
//
// Options:
//   --host A          listen address (default 127.0.0.1)
//   --port P          listen port (default 0 = ephemeral; the bound port
//                     is announced as "LISTENING <port>" on stdout)
//   --workers LIST    comma-separated static worker seed list
//                     ("host:port,host:port"); may be empty when workers
//                     --join dynamically
//   --health-every MS health-check cadence (default 500; 0 disables)
//   --evict-after N   consecutive link failures before ring eviction
//                     (default 3)
//   --link-timeout MS per-call budget on worker links (default 30000)
//   --grace MS        how long jobs on an unreachable worker answer
//                     kQueued ("migration pending") before failing
//                     (default 10000)
//   --no-lookup       disable the cross-worker cache probe on fresh
//                     submits
//   --vnodes V        virtual ring points per worker (default 64)
//   --result-cache N  hold up to N finished result blocks in the router
//                     itself, keyed by routing fingerprint, so repeat
//                     submits/polls skip the worker links entirely
//                     (default 0 = disabled; workers stay the sole cache)
//
// SIGTERM/SIGINT drain the router (in-flight replies flush, then exit);
// the workers are independent processes and keep serving.
#include <sys/resource.h>

#include <csignal>
#include <iostream>
#include <sstream>

#include "cluster/router.hpp"
#include "common/args.hpp"

namespace {

congestbc::cluster::Router* g_router = nullptr;

extern "C" void handle_term(int) {
  if (g_router != nullptr) {
    g_router->notify_signal();  // async-signal-safe: one pipe write
  }
}

constexpr const char* kUsage =
    "usage: congestbc_router [--host A --port P --workers H:P,H:P\n"
    "                         --health-every MS --evict-after N\n"
    "                         --link-timeout MS --grace MS --no-lookup\n"
    "                         --vnodes V --result-cache N]\n";

/// A router fronts thousands of client sockets plus one persistent link
/// per worker; lift the fd ceiling to the hard limit up front instead of
/// failing accepts mid-run.
void raise_fd_limit() {
  rlimit limit{};
  if (::getrlimit(RLIMIT_NOFILE, &limit) == 0 &&
      limit.rlim_cur < limit.rlim_max) {
    limit.rlim_cur = limit.rlim_max;
    (void)::setrlimit(RLIMIT_NOFILE, &limit);
  }
}

int run(int argc, char** argv) {
  using congestbc::Args;
  const Args args = Args::parse(
      argc, argv,
      {"host", "port", "workers", "health-every", "evict-after",
       "link-timeout", "grace", "vnodes", "result-cache"});
  if (args.has("help")) {
    std::cout << kUsage;
    return 0;
  }

  congestbc::cluster::RouterConfig config;
  config.host = args.get("host").value_or("127.0.0.1");
  config.port = static_cast<std::uint16_t>(args.get_int_or("port", 0));
  {
    std::stringstream list(args.get("workers").value_or(""));
    std::string address;
    while (std::getline(list, address, ',')) {
      if (!address.empty()) {
        config.workers.push_back(address);
      }
    }
  }
  config.health_every_ms =
      static_cast<std::uint64_t>(args.get_int_or("health-every", 500));
  config.eviction_threshold =
      static_cast<unsigned>(args.get_int_or("evict-after", 3));
  config.worker_timeout_ms =
      static_cast<int>(args.get_int_or("link-timeout", 30'000));
  config.migration_grace_ms =
      static_cast<std::uint64_t>(args.get_int_or("grace", 10'000));
  config.cross_worker_lookup = !args.has("no-lookup");
  config.ring_vnodes = static_cast<unsigned>(args.get_int_or("vnodes", 64));
  config.result_cache_entries =
      static_cast<std::size_t>(args.get_int_or("result-cache", 0));

  raise_fd_limit();

  congestbc::cluster::Router router(config);
  router.start();
  g_router = &router;
  std::signal(SIGTERM, handle_term);
  std::signal(SIGINT, handle_term);
  std::signal(SIGPIPE, SIG_IGN);

  // The contract scripts and the loadgen parse this exact line.
  std::cout << "LISTENING " << router.port() << std::endl;

  router.serve();  // returns once a drain completes
  g_router = nullptr;
  std::cout << "drained; exiting" << std::endl;
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "congestbc_router: " << e.what() << "\n" << kUsage;
    return 1;
  }
}
