// congestbcd — the BC serving daemon (src/service/daemon.hpp).
//
// Listens on a TCP port, accepts SUBMIT/STATUS/RESULT/CANCEL/STATS/
// SHUTDOWN frames (src/service/protocol.hpp), runs each admitted job
// through the watchdogged pipeline on a worker pool, caches results by
// run fingerprint, and — with a spool directory — survives kill/restart
// by checkpointing in-flight jobs and resuming them on the next start.
//
// The same port also answers plaintext `GET /metrics` (Prometheus text
// format 0.0.4) with the live counters, gauges, and latency/round
// histograms — `curl http://HOST:PORT/metrics` scrapes a running daemon
// without any client tooling.  Connections are sniffed: anything that
// does not start with "GET " is treated as CBCP frames.
//
// Usage:
//   congestbcd [options]
//
// Options:
//   --host A          listen address (default 127.0.0.1)
//   --port P          listen port (default 0 = ephemeral; the bound port
//                     is announced as "LISTENING <port>" on stdout)
//   --workers W       concurrent job executions (default 2; 0 = one per
//                     hardware thread)
//   --queue-limit Q   max jobs queued but not running; beyond it submits
//                     get a typed BUSY reply (default 16)
//   --cache N         result-cache entries (default 64; 0 disables)
//   --spool DIR       durability root: admitted jobs are persisted and
//                     checkpointed here; a restarted daemon resumes them
//   --graph-root DIR  allow path-form submits resolved under DIR
//   --checkpoint-every N   checkpoint cadence in rounds while a job runs
//                     (default 0 = only the drain-time suspension
//                     checkpoint); needs --spool
//   --checkpoint-keep K    checkpoints kept per job (default 2)
//   --max-rounds R    admission cap on any job's round budget
//   --time-budget MS  wall-clock budget per job; over-budget jobs are
//                     halted and failed (default 0 = unlimited)
//   --threads T       default simulator lanes per job (default 1)
//   --job-retention MS     how long finished/failed/cancelled jobs stay
//                     addressable by STATUS/RESULT before they answer
//                     kUnknown (default 300000; 0 = no time limit, a
//                     count cap still bounds the table)
//   --metrics-file F  periodic JSON metrics dump (service/metrics.hpp)
//   --metrics-every MS     dump cadence (default 1000)
//   --join HOST:PORT  announce this daemon to a congestbc_router and
//                     keep re-announcing (the JOIN heartbeat); at drain
//                     time suspended jobs migrate through the router to
//                     a surviving worker
//   --advertise HOST  address the router should dial back (default: the
//                     --host value; set it when binding 0.0.0.0)
//   --join-every MS   JOIN heartbeat cadence (default 1000; 0 = once)
//
// SIGTERM/SIGINT begin a graceful drain: stop admitting, halt running
// jobs at their next round boundary (writing suspension checkpoints),
// flush the cache index, exit 0.
#include <csignal>
#include <iostream>

#include "common/args.hpp"
#include "service/daemon.hpp"

namespace {

congestbc::service::Daemon* g_daemon = nullptr;

extern "C" void handle_term(int) {
  if (g_daemon != nullptr) {
    g_daemon->notify_signal();  // async-signal-safe: one pipe write
  }
}

constexpr const char* kUsage =
    "usage: congestbcd [--host A --port P --workers W --queue-limit Q\n"
    "                   --cache N --spool DIR --graph-root DIR\n"
    "                   --checkpoint-every N --checkpoint-keep K\n"
    "                   --max-rounds R --time-budget MS --threads T\n"
    "                   --job-retention MS --metrics-file F\n"
    "                   --metrics-every MS --join HOST:PORT\n"
    "                   --advertise HOST --join-every MS]\n";

int run(int argc, char** argv) {
  using congestbc::Args;
  const Args args = Args::parse(
      argc, argv,
      {"host", "port", "workers", "queue-limit", "cache", "spool",
       "graph-root", "checkpoint-every", "checkpoint-keep", "max-rounds",
       "time-budget", "threads", "job-retention", "metrics-file",
       "metrics-every", "join", "advertise", "join-every"});
  if (args.has("help")) {
    std::cout << kUsage;
    return 0;
  }

  congestbc::service::DaemonConfig config;
  config.host = args.get("host").value_or("127.0.0.1");
  config.port = static_cast<std::uint16_t>(args.get_int_or("port", 0));
  config.workers = static_cast<unsigned>(args.get_int_or("workers", 2));
  config.queue_limit =
      static_cast<std::size_t>(args.get_int_or("queue-limit", 16));
  config.cache_capacity = static_cast<std::size_t>(args.get_int_or("cache", 64));
  config.spool_dir = args.get("spool").value_or("");
  config.graph_root = args.get("graph-root").value_or("");
  config.checkpoint_every =
      static_cast<std::uint64_t>(args.get_int_or("checkpoint-every", 0));
  config.checkpoint_keep =
      static_cast<unsigned>(args.get_int_or("checkpoint-keep", 2));
  config.max_rounds_cap = static_cast<std::uint64_t>(
      args.get_int_or("max-rounds", 50'000'000));
  config.job_time_budget_ms =
      static_cast<std::uint64_t>(args.get_int_or("time-budget", 0));
  config.default_threads = static_cast<unsigned>(args.get_int_or("threads", 1));
  config.job_retention_ms =
      static_cast<std::uint64_t>(args.get_int_or("job-retention", 300'000));
  config.metrics_path = args.get("metrics-file").value_or("");
  config.metrics_every_ms =
      static_cast<std::uint64_t>(args.get_int_or("metrics-every", 1000));
  config.join_router = args.get("join").value_or("");
  config.advertise_host = args.get("advertise").value_or("");
  config.join_every_ms =
      static_cast<std::uint64_t>(args.get_int_or("join-every", 1000));

  congestbc::service::Daemon daemon(config);
  daemon.start();
  g_daemon = &daemon;
  std::signal(SIGTERM, handle_term);
  std::signal(SIGINT, handle_term);
  std::signal(SIGPIPE, SIG_IGN);

  // The contract scripts and the loadgen parse this exact line.
  std::cout << "LISTENING " << daemon.port() << std::endl;

  daemon.serve();  // returns once a drain completes
  g_daemon = nullptr;
  std::cout << "drained; exiting" << std::endl;
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "congestbcd: " << e.what() << "\n" << kUsage;
    return 1;
  }
}
