// chaosproxy — deterministic TCP chaos relay for congestbcd
// (src/service/chaos.hpp).
//
// Sits between a client and the daemon and injects seeded, replayable
// socket adversity: byte corruption (tripping the CBCP frame checksum),
// stalls, torn-prefix disconnects, RSTs, and capped partial writes.
// Every decision is a pure function of (seed, connection, direction,
// chunk index), so a failure observed behind the proxy is reproducible
// from the plan spec alone.
//
// Usage:
//   chaosproxy --upstream-port P [options]
//
// Options:
//   --upstream-host H   daemon address (default 127.0.0.1)
//   --upstream-port P   daemon port (required)
//   --port P            listen port (default 0 = ephemeral; announced as
//                       "LISTENING <port>" on stdout, same contract as
//                       congestbcd)
//   --chaos SPEC        ChaosPlan::parse spec, e.g.
//                       "seed=7,corrupt=0.05,stall=0.1,stall-ms=50,partial=64"
//                       (default: faithful relay)
//
// SIGTERM/SIGINT stop the relay and print the injection counters.
#include <atomic>
#include <chrono>
#include <csignal>
#include <iostream>
#include <thread>

#include "common/args.hpp"
#include "service/chaos.hpp"

namespace {

std::atomic<bool> g_stop{false};

extern "C" void handle_term(int) { g_stop.store(true); }

constexpr const char* kUsage =
    "usage: chaosproxy --upstream-port P [--upstream-host H --port P\n"
    "                   --chaos SPEC]\n";

int run(int argc, char** argv) {
  using congestbc::Args;
  const Args args = Args::parse(
      argc, argv, {"upstream-host", "upstream-port", "port", "chaos"});
  if (args.has("help")) {
    std::cout << kUsage;
    return 0;
  }
  const auto upstream_port = args.get("upstream-port");
  if (!upstream_port) {
    std::cerr << "chaosproxy: --upstream-port is required\n" << kUsage;
    return 1;
  }

  congestbc::service::ChaosPlan plan;
  if (const auto spec = args.get("chaos")) {
    plan = congestbc::service::ChaosPlan::parse(*spec);
  }
  congestbc::service::ChaosProxy proxy(
      plan, args.get("upstream-host").value_or("127.0.0.1"),
      static_cast<std::uint16_t>(std::stoul(*upstream_port)));
  proxy.start(static_cast<std::uint16_t>(args.get_int_or("port", 0)));

  std::signal(SIGTERM, handle_term);
  std::signal(SIGINT, handle_term);
  std::signal(SIGPIPE, SIG_IGN);

  std::cout << "LISTENING " << proxy.port() << std::endl;
  std::cout << "chaos: " << plan.describe() << std::endl;

  while (!g_stop.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  proxy.stop();

  const auto& s = proxy.stats();
  std::cout << "connections=" << s.connections.load()
            << " chunks=" << s.chunks.load()
            << " corrupted=" << s.corrupted.load()
            << " stalled=" << s.stalled.load() << " cut=" << s.cut.load()
            << " rst=" << s.rst.load() << std::endl;
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "chaosproxy: " << e.what() << "\n" << kUsage;
    return 1;
  }
}
