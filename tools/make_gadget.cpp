// make_gadget — emit the paper's Section-IX lower-bound constructions as
// edge-list files, for external experimentation.
//
// Usage:
//   make_gadget --type diameter --n 8 [--x 10] [--match|--disjoint]
//   make_gadget --type bc --n 8 [--match|--disjoint]
//
// Prints the edge list on stdout (compatible with congestbc_cli and
// read_edge_list) preceded by comment lines recording the instance: the
// set families, the special node ids, and the ground-truth answer
// (diameter / C_B(F_i) values).
#include <iostream>

#include "central/brandes.hpp"
#include "common/args.hpp"
#include "graph/io.hpp"
#include "graph/lowerbound.hpp"
#include "graph/properties.hpp"

namespace {

using namespace congestbc;
using namespace congestbc::lb;

constexpr const char* kUsage =
    "usage: make_gadget --type diameter|bc --n N [--x X] "
    "[--match|--disjoint] [--seed S]\n";

std::pair<SetFamily, SetFamily> make_families(std::size_t n, unsigned m,
                                              bool match, Rng& rng) {
  SetFamily x = SetFamily::random(n, m, rng);
  std::vector<std::uint64_t> ysets;
  while (ysets.size() < n) {
    const std::uint64_t mask =
        SetFamily::unrank_subset(m, rng.next_below(binomial(m, m / 2)));
    bool clash = false;
    for (std::size_t i = 0; i < n; ++i) {
      clash = clash || mask == x.set_mask(i);
    }
    for (const auto existing : ysets) {
      clash = clash || mask == existing;
    }
    if (!clash) {
      ysets.push_back(mask);
    }
  }
  if (match) {
    ysets[0] = x.set_mask(n / 2);
  }
  return {std::move(x), SetFamily(m, std::move(ysets))};
}

int run(int argc, char** argv) {
  const Args args = Args::parse(argc, argv, {"type", "n", "x", "seed"});
  if (args.has("help")) {
    std::cout << kUsage;
    return 0;
  }
  const std::string type = args.get_or("type", "");
  CBC_EXPECTS(type == "diameter" || type == "bc", kUsage);
  const auto n = static_cast<std::size_t>(args.get_int_or("n", 4));
  const bool match = args.has("match") && !args.has("disjoint");
  Rng rng(static_cast<std::uint64_t>(args.get_int_or("seed", 1)));
  const unsigned m = min_universe_for(n);
  const auto [xf, yf] = make_families(n, m, match, rng);

  std::cout << "# Section-IX lower-bound gadget (" << type << ")\n"
            << "# n=" << n << " m=" << m
            << " families " << (match ? "share a subset" : "are disjoint")
            << "\n# X:";
  for (std::size_t i = 0; i < n; ++i) {
    std::cout << " " << xf.set_mask(i);
  }
  std::cout << "\n# Y:";
  for (std::size_t j = 0; j < n; ++j) {
    std::cout << " " << yf.set_mask(j);
  }
  std::cout << "\n";

  if (type == "diameter") {
    const auto x = static_cast<unsigned>(args.get_int_or("x", 8));
    const auto gadget = build_diameter_gadget(xf, yf, x);
    std::cout << "# expected diameter: " << gadget.expected_diameter
              << " (Lemma 8; x=" << x << ")\n# S' nodes:";
    for (const auto v : gadget.s_prime) {
      std::cout << " " << v;
    }
    std::cout << "\n# T' nodes:";
    for (const auto v : gadget.t_prime) {
      std::cout << " " << v;
    }
    std::cout << "\n# verified diameter: " << diameter(gadget.graph) << "\n";
    write_edge_list(std::cout, gadget.graph);
  } else {
    const auto gadget = build_bc_gadget(xf, yf);
    const auto bc = brandes_bc(gadget.graph);
    std::cout << "# F nodes and Lemma-9 C_B values (verified by Brandes):\n";
    for (std::size_t i = 0; i < n; ++i) {
      std::cout << "#   F_" << i << " = node " << gadget.f[i]
                << ", expected " << gadget.expected_bc_of_f[i]
                << ", Brandes " << bc[gadget.f[i]] << "\n";
    }
    write_edge_list(std::cout, gadget.graph);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n" << kUsage;
    return 1;
  }
}
