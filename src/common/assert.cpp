#include "common/assert.hpp"

#include <sstream>

namespace congestbc::detail {

namespace {
std::string compose(const char* kind, const char* expr, const char* file, int line,
                    const std::string& msg) {
  std::ostringstream os;
  os << kind << " failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) {
    os << " — " << msg;
  }
  return os.str();
}
}  // namespace

void fail_precondition(const char* expr, const char* file, int line,
                       const std::string& msg) {
  throw PreconditionError(compose("precondition", expr, file, line, msg));
}

void fail_invariant(const char* expr, const char* file, int line,
                    const std::string& msg) {
  throw InvariantError(compose("invariant", expr, file, line, msg));
}

}  // namespace congestbc::detail
