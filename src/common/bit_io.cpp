#include "common/bit_io.hpp"

#include <algorithm>
#include <bit>

namespace congestbc {

void BitWriter::write(std::uint64_t value, unsigned bits) {
  CBC_EXPECTS(bits <= 64, "bit field too wide");
  CBC_EXPECTS(bits == 64 || (value >> bits) == 0, "value does not fit in field");
  unsigned remaining = bits;
  while (remaining > 0) {
    const std::size_t byte_index = bit_size_ / 8;
    const unsigned offset = static_cast<unsigned>(bit_size_ % 8);
    if (byte_index == bytes_.size()) {
      bytes_.push_back(0);
    }
    const unsigned take = std::min(8u - offset, remaining);
    const auto mask = static_cast<std::uint64_t>((1u << take) - 1);
    bytes_[byte_index] = static_cast<std::uint8_t>(
        bytes_[byte_index] | ((value & mask) << offset));
    value >>= take;
    bit_size_ += take;
    remaining -= take;
  }
}

void BitWriter::write_varuint(std::uint64_t value) {
  const unsigned width = bit_width_u64(value);
  write(width - 1, 6);  // width is in [1, 64]; store biased by one
  write(value, width);
}

std::uint64_t BitReader::read(unsigned bits) {
  CBC_EXPECTS(bits <= 64, "bit field too wide");
  CBC_CHECK(cursor_ + bits <= bit_size_, "read past end of message");
  std::uint64_t value = 0;
  unsigned produced = 0;
  while (produced < bits) {
    const std::size_t byte_index = cursor_ / 8;
    const unsigned offset = static_cast<unsigned>(cursor_ % 8);
    const unsigned take = std::min(8u - offset, bits - produced);
    const auto chunk = static_cast<std::uint64_t>(
        (data_[byte_index] >> offset) & ((1u << take) - 1));
    value |= chunk << produced;
    produced += take;
    cursor_ += take;
  }
  return value;
}

std::uint64_t BitReader::read_varuint() {
  const auto width = static_cast<unsigned>(read(6)) + 1;
  return read(width);
}

void BitWriter::append(const std::uint8_t* src, std::size_t bits) {
  if (bits == 0) {
    return;
  }
  if (bit_size_ % 8 == 0) {
    // Byte-aligned: whole bytes move with one bulk copy.
    const std::size_t whole = bits / 8;
    const unsigned rem = static_cast<unsigned>(bits % 8);
    bytes_.insert(bytes_.end(), src, src + whole);
    bit_size_ += whole * 8;
    if (rem != 0) {
      write(static_cast<std::uint64_t>(src[whole]) & ((1u << rem) - 1), rem);
    }
    return;
  }
  BitReader reader(src, bits);
  std::size_t remaining = bits;
  while (remaining > 0) {
    const unsigned chunk =
        remaining >= 64 ? 64u : static_cast<unsigned>(remaining);
    write(reader.read(chunk), chunk);
    remaining -= chunk;
  }
}

void append_bits(BitWriter& dst, const std::vector<std::uint8_t>& src,
                 std::size_t bits) {
  dst.append(src.data(), bits);
}

void append_bits(BitWriter& dst, const std::uint8_t* src, std::size_t bits) {
  dst.append(src, bits);
}

unsigned bit_width_u64(std::uint64_t value) {
  if (value == 0) {
    return 1;
  }
  return static_cast<unsigned>(64 - std::countl_zero(value));
}

unsigned ceil_log2(std::uint64_t n) {
  CBC_EXPECTS(n >= 1, "ceil_log2 requires n >= 1");
  if (n == 1) {
    return 0;
  }
  return bit_width_u64(n - 1);
}

}  // namespace congestbc
