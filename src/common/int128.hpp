// 128-bit unsigned arithmetic used by the bignum and soft-float cores.
// The __extension__ marker keeps -Wpedantic quiet about the GCC/Clang
// builtin type (both supported compilers provide it on all 64-bit
// targets).
#pragma once

namespace congestbc {

__extension__ typedef unsigned __int128 uint128_t;

}  // namespace congestbc
