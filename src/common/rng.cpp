#include "common/rng.hpp"

#include <algorithm>
#include <unordered_set>

namespace congestbc {

std::uint64_t Rng::next_u64() {
  state_ += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = state_;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  CBC_EXPECTS(bound >= 1, "bound must be positive");
  // Rejection sampling over the largest multiple of bound.
  const std::uint64_t limit = UINT64_MAX - UINT64_MAX % bound;
  std::uint64_t value = next_u64();
  while (value >= limit) {
    value = next_u64();
  }
  return value % bound;
}

std::int64_t Rng::next_in_range(std::int64_t lo, std::int64_t hi) {
  CBC_EXPECTS(lo <= hi, "empty range");
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  // span == 0 means the full 64-bit range.
  if (span == 0) {
    return static_cast<std::int64_t>(next_u64());
  }
  return lo + static_cast<std::int64_t>(next_below(span));
}

double Rng::next_double() {
  // 53 random mantissa bits.
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

bool Rng::next_bernoulli(double p) {
  CBC_EXPECTS(p >= 0.0 && p <= 1.0, "probability out of range");
  return next_double() < p;
}

std::vector<std::uint64_t> Rng::sample_without_replacement(std::uint64_t n,
                                                           std::uint64_t k) {
  CBC_EXPECTS(k <= n, "cannot sample more values than the universe holds");
  // Floyd's algorithm: k iterations, O(k) memory.
  std::unordered_set<std::uint64_t> chosen;
  chosen.reserve(static_cast<std::size_t>(k));
  for (std::uint64_t j = n - k; j < n; ++j) {
    const std::uint64_t t = next_below(j + 1);
    if (!chosen.insert(t).second) {
      chosen.insert(j);
    }
  }
  std::vector<std::uint64_t> result(chosen.begin(), chosen.end());
  std::sort(result.begin(), result.end());
  return result;
}

}  // namespace congestbc
