// Lightweight contract-checking helpers used across the library.
//
// Following the C++ Core Guidelines (I.6/I.8, E.12), preconditions and
// invariants are checked with always-on macros that throw a descriptive
// exception on violation.  Simulator-internal invariants that are hot
// use CBC_DCHECK which compiles out in release builds.
#pragma once

#include <stdexcept>
#include <string>

namespace congestbc {

/// Thrown when a documented precondition of a public API is violated.
class PreconditionError : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

/// Thrown when an internal invariant fails; indicates a library bug or a
/// CONGEST-model violation detected by the simulator.
class InvariantError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

namespace detail {
[[noreturn]] void fail_precondition(const char* expr, const char* file, int line,
                                    const std::string& msg);
[[noreturn]] void fail_invariant(const char* expr, const char* file, int line,
                                 const std::string& msg);
}  // namespace detail

}  // namespace congestbc

/// Precondition on public API arguments; always on.
#define CBC_EXPECTS(cond, msg)                                                  \
  do {                                                                          \
    if (!(cond)) {                                                              \
      ::congestbc::detail::fail_precondition(#cond, __FILE__, __LINE__, (msg)); \
    }                                                                           \
  } while (false)

/// Internal invariant; always on (cheap checks, error reporting paths).
#define CBC_CHECK(cond, msg)                                                  \
  do {                                                                        \
    if (!(cond)) {                                                            \
      ::congestbc::detail::fail_invariant(#cond, __FILE__, __LINE__, (msg));  \
    }                                                                         \
  } while (false)

/// Internal invariant on hot paths; compiled out when NDEBUG is defined.
#ifdef NDEBUG
#define CBC_DCHECK(cond, msg) \
  do {                        \
  } while (false)
#else
#define CBC_DCHECK(cond, msg) CBC_CHECK(cond, msg)
#endif
