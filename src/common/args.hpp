// Minimal command-line flag parser for the tools (no external deps).
// Supports --flag value / --flag=value / bare booleans / positional args.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace congestbc {

/// Parsed command line: flags plus positional arguments.
class Args {
 public:
  /// Parses argv; throws PreconditionError on malformed input (an option
  /// with a missing value).  Flags expecting values must be declared via
  /// `value_flags`; everything else starting with "--" is boolean.
  static Args parse(int argc, const char* const* argv,
                    const std::vector<std::string>& value_flags);

  bool has(const std::string& flag) const;
  std::optional<std::string> get(const std::string& flag) const;
  std::string get_or(const std::string& flag, const std::string& fallback) const;
  std::int64_t get_int_or(const std::string& flag, std::int64_t fallback) const;
  double get_double_or(const std::string& flag, double fallback) const;

  const std::vector<std::string>& positional() const { return positional_; }
  const std::string& program() const { return program_; }

 private:
  std::string program_;
  std::map<std::string, std::string> flags_;
  std::vector<std::string> positional_;
};

}  // namespace congestbc
