// Bit-level serialization used for CONGEST messages.
//
// The CONGEST model budgets each message in *bits*, so the simulator
// accounts for the exact number of bits a message occupies.  BitWriter
// appends little-endian bit fields; BitReader consumes them in the same
// order.  Both operate on a byte vector so messages can be copied around
// cheaply.
#pragma once

#include <cstdint>
#include <vector>

#include "common/assert.hpp"

namespace congestbc {

/// Append-only bit stream.  Fields of up to 64 bits are appended LSB-first.
class BitWriter {
 public:
  BitWriter() = default;

  /// Appends the low `bits` bits of `value`.  Precondition: bits <= 64 and
  /// `value` fits in `bits` bits.
  void write(std::uint64_t value, unsigned bits);

  /// Appends a single boolean bit.
  void write_bool(bool b) { write(b ? 1u : 0u, 1); }

  /// Appends an unsigned value in unary-prefixed Elias-gamma-like coding:
  /// fixed 6-bit length then the value's bits.  Handy for fields whose
  /// magnitude varies a lot (keeps small values small).
  void write_varuint(std::uint64_t value);

  /// Number of bits written so far.
  std::size_t bit_size() const { return bit_size_; }

  /// Underlying bytes (the last byte may be partially filled).
  const std::vector<std::uint8_t>& bytes() const { return bytes_; }

 private:
  std::vector<std::uint8_t> bytes_;
  std::size_t bit_size_ = 0;
};

/// Sequential reader over the bits produced by a BitWriter.
class BitReader {
 public:
  BitReader(const std::vector<std::uint8_t>& bytes, std::size_t bit_size)
      : bytes_(&bytes), bit_size_(bit_size) {}

  /// Reads the next `bits` bits (bits <= 64).  Throws InvariantError when
  /// reading past the end — a malformed message.
  std::uint64_t read(unsigned bits);

  bool read_bool() { return read(1) != 0; }

  std::uint64_t read_varuint();

  /// Bits remaining to be read.
  std::size_t remaining() const { return bit_size_ - cursor_; }

 private:
  const std::vector<std::uint8_t>* bytes_;
  std::size_t bit_size_;
  std::size_t cursor_ = 0;
};

/// Appends the first `bits` bits of `src` to `dst` (bulk copy in 64-bit
/// chunks) — the bundling primitive shared by the simulator and the
/// reliable transport.
void append_bits(BitWriter& dst, const std::vector<std::uint8_t>& src,
                 std::size_t bits);

/// Number of bits needed to represent `value` (0 needs 1 bit).
unsigned bit_width_u64(std::uint64_t value);

/// ceil(log2(n)) for n >= 1; number of bits to address n distinct values.
unsigned ceil_log2(std::uint64_t n);

}  // namespace congestbc
