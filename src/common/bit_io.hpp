// Bit-level serialization used for CONGEST messages.
//
// The CONGEST model budgets each message in *bits*, so the simulator
// accounts for the exact number of bits a message occupies.  BitWriter
// appends little-endian bit fields; BitReader consumes them in the same
// order.  BitWriter owns a byte vector (reusable across rounds via
// clear()/reserve_bits()); BitReader reads from any contiguous byte
// range, owned or not — which is what lets the simulator hand programs
// views into arena memory without copying.
#pragma once

#include <cstdint>
#include <vector>

#include "common/assert.hpp"

namespace congestbc {

/// Append-only bit stream.  Fields of up to 64 bits are appended LSB-first.
class BitWriter {
 public:
  BitWriter() = default;

  /// Appends the low `bits` bits of `value`.  Precondition: bits <= 64 and
  /// `value` fits in `bits` bits.
  void write(std::uint64_t value, unsigned bits);

  /// Appends a single boolean bit.
  void write_bool(bool b) { write(b ? 1u : 0u, 1); }

  /// Appends an unsigned value in unary-prefixed Elias-gamma-like coding:
  /// fixed 6-bit length then the value's bits.  Handy for fields whose
  /// magnitude varies a lot (keeps small values small).
  void write_varuint(std::uint64_t value);

  /// Appends the first `bits` bits of `src` (byte-aligned fast path when
  /// this writer currently ends on a byte boundary).
  void append(const std::uint8_t* src, std::size_t bits);

  /// Number of bits written so far.
  std::size_t bit_size() const { return bit_size_; }

  /// Underlying bytes (the last byte may be partially filled).
  const std::vector<std::uint8_t>& bytes() const { return bytes_; }

  /// Raw pointer to the underlying bytes (null only when empty).
  const std::uint8_t* data() const { return bytes_.data(); }

  /// Drops the content but keeps the capacity — the reuse primitive of the
  /// zero-allocation send path (per-neighbor bundle slots are cleared and
  /// refilled every round without touching the heap).
  void clear() {
    bytes_.clear();
    bit_size_ = 0;
  }

  /// Ensures capacity for `bits` more bits without reallocation, so bundle
  /// assembly of a known-size payload never grows the buffer mid-append.
  void reserve_bits(std::size_t bits) { bytes_.reserve((bit_size_ + bits + 7) / 8); }

 private:
  std::vector<std::uint8_t> bytes_;
  std::size_t bit_size_ = 0;
};

/// Sequential reader over the bits produced by a BitWriter.  Non-owning:
/// the byte range must outlive the reader.
class BitReader {
 public:
  BitReader(const std::vector<std::uint8_t>& bytes, std::size_t bit_size)
      : data_(bytes.data()), bit_size_(bit_size) {}

  /// Reads from a raw byte range (e.g. a payload span into arena memory).
  BitReader(const std::uint8_t* data, std::size_t bit_size)
      : data_(data), bit_size_(bit_size) {}

  /// Reads the next `bits` bits (bits <= 64).  Throws InvariantError when
  /// reading past the end — a malformed message.
  std::uint64_t read(unsigned bits);

  bool read_bool() { return read(1) != 0; }

  std::uint64_t read_varuint();

  /// Bits remaining to be read.
  std::size_t remaining() const { return bit_size_ - cursor_; }

 private:
  const std::uint8_t* data_;
  std::size_t bit_size_;
  std::size_t cursor_ = 0;
};

/// Appends the first `bits` bits of `src` to `dst` — the bundling
/// primitive shared by the simulator and the reliable transport.
void append_bits(BitWriter& dst, const std::vector<std::uint8_t>& src,
                 std::size_t bits);

/// Same, from a raw byte range.
void append_bits(BitWriter& dst, const std::uint8_t* src, std::size_t bits);

/// Number of bits needed to represent `value` (0 needs 1 bit).
unsigned bit_width_u64(std::uint64_t value);

/// ceil(log2(n)) for n >= 1; number of bits to address n distinct values.
unsigned ceil_log2(std::uint64_t n);

}  // namespace congestbc
