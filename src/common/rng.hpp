// Deterministic random number generation for reproducible workloads.
//
// All graph generators and sampled algorithms take an explicit Rng so that
// every experiment in the repository is bit-for-bit reproducible from a
// seed.  The engine is SplitMix64 (fast, well distributed, trivially
// seedable) — statistical quality is more than adequate for workload
// generation.
#pragma once

#include <cstdint>
#include <vector>

#include "common/assert.hpp"

namespace congestbc {

/// SplitMix64-based deterministic generator.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : state_(seed) {}

  /// Next raw 64-bit value.
  std::uint64_t next_u64();

  /// Uniform integer in [0, bound) for bound >= 1, via rejection sampling
  /// (unbiased).
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t next_in_range(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double next_double();

  /// Bernoulli trial with probability p in [0, 1].
  bool next_bernoulli(double p);

  /// In-place Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      const auto j = static_cast<std::size_t>(next_below(i));
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

  /// Samples `k` distinct values from [0, n) in increasing order.
  std::vector<std::uint64_t> sample_without_replacement(std::uint64_t n,
                                                        std::uint64_t k);

  /// The RNG cursor, for checkpoint/restore (src/snapshot): SplitMix64's
  /// entire state is this one word, so save/restore of a stream position
  /// is exact.  (The simulator itself never needs it — fault decisions
  /// are stateless hashes — but workload generators replayed across a
  /// snapshot boundary do.)
  std::uint64_t state() const { return state_; }
  void set_state(std::uint64_t state) { state_ = state; }

 private:
  std::uint64_t state_;
};

}  // namespace congestbc
