#include "common/args.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace congestbc {

Args Args::parse(int argc, const char* const* argv,
                 const std::vector<std::string>& value_flags) {
  Args args;
  args.program_ = argc > 0 ? argv[0] : "";
  for (int i = 1; i < argc; ++i) {
    std::string token = argv[i];
    if (token.rfind("--", 0) != 0) {
      args.positional_.push_back(std::move(token));
      continue;
    }
    token = token.substr(2);
    const auto eq = token.find('=');
    if (eq != std::string::npos) {
      args.flags_[token.substr(0, eq)] = token.substr(eq + 1);
      continue;
    }
    const bool wants_value =
        std::find(value_flags.begin(), value_flags.end(), token) !=
        value_flags.end();
    if (wants_value) {
      CBC_EXPECTS(i + 1 < argc, "missing value for --" + token);
      args.flags_[token] = argv[++i];
    } else {
      args.flags_[token] = "";
    }
  }
  return args;
}

bool Args::has(const std::string& flag) const {
  return flags_.count(flag) != 0;
}

std::optional<std::string> Args::get(const std::string& flag) const {
  const auto it = flags_.find(flag);
  if (it == flags_.end()) {
    return std::nullopt;
  }
  return it->second;
}

std::string Args::get_or(const std::string& flag,
                         const std::string& fallback) const {
  return get(flag).value_or(fallback);
}

std::int64_t Args::get_int_or(const std::string& flag,
                              std::int64_t fallback) const {
  const auto value = get(flag);
  if (!value.has_value()) {
    return fallback;
  }
  try {
    return std::stoll(*value);
  } catch (const std::exception&) {
    throw PreconditionError("flag --" + flag + " expects an integer, got '" +
                            *value + "'");
  }
}

double Args::get_double_or(const std::string& flag, double fallback) const {
  const auto value = get(flag);
  if (!value.has_value()) {
    return fallback;
  }
  try {
    return std::stod(*value);
  } catch (const std::exception&) {
    throw PreconditionError("flag --" + flag + " expects a number, got '" +
                            *value + "'");
  }
}

}  // namespace congestbc
