// Minimal aligned-column ASCII table printer used by the benchmark
// harnesses to regenerate paper-style tables.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace congestbc {

/// Collects rows of strings and prints them with aligned columns.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Adds one row; must have the same number of cells as the header.
  void add_row(std::vector<std::string> cells);

  /// Renders with a separator line under the header.
  void print(std::ostream& os) const;

  std::size_t row_count() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with `digits` significant decimal places.
std::string format_double(double value, int digits = 6);

}  // namespace congestbc
