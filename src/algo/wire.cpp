#include "algo/wire.hpp"

#include "common/assert.hpp"

namespace congestbc {

namespace {
constexpr unsigned kTagBits = 4;

void write_tag(BitWriter& w, MsgKind kind) {
  w.write(static_cast<std::uint64_t>(kind), kTagBits);
}
}  // namespace

WireFormat WireFormat::for_graph(std::uint32_t num_nodes,
                                 const SoftFloatFormat& sf) {
  CBC_EXPECTS(num_nodes >= 1, "graph must be non-empty");
  const unsigned id_bits =
      num_nodes <= 1 ? 1u : bit_width_u64(num_nodes - 1);
  return WireFormat{
      id_bits,
      id_bits + 1,
      // Rounds stay below ~8 N^2 even in the sequential ablation.
      2 * id_bits + 6,
      sf,
  };
}

void encode(BitWriter& w, const WireFormat& fmt, const TreeWaveMsg& m) {
  write_tag(w, MsgKind::kTreeWave);
  w.write(m.dist, fmt.dist_bits);
}

void encode(BitWriter& w, const WireFormat& fmt, const ParentAcceptMsg&) {
  (void)fmt;
  write_tag(w, MsgKind::kParentAccept);
}

void encode(BitWriter& w, const WireFormat& fmt, const SubtreeUpMsg& m) {
  write_tag(w, MsgKind::kSubtreeUp);
  w.write(m.count, fmt.id_bits + 1);
  w.write(m.depth, fmt.dist_bits);
}

void encode(BitWriter& w, const WireFormat& fmt, const DfsTokenMsg& m) {
  write_tag(w, MsgKind::kDfsToken);
  w.write(m.depth_estimate, fmt.dist_bits);
}

void encode(BitWriter& w, const WireFormat& fmt, const WaveMsg& m) {
  write_tag(w, MsgKind::kWave);
  w.write(m.source, fmt.id_bits);
  w.write(m.dist, fmt.dist_bits);
  m.sigma.pack(w, fmt.sf);
}

void encode(BitWriter& w, const WireFormat& fmt, const EccUpMsg& m) {
  write_tag(w, MsgKind::kEccUp);
  w.write(m.ecc, fmt.dist_bits);
}

void encode(BitWriter& w, const WireFormat& fmt, const PhaseDownMsg& m) {
  write_tag(w, MsgKind::kPhaseDown);
  w.write(m.diameter, fmt.dist_bits);
  w.write(m.epoch, fmt.time_bits);
}

void encode(BitWriter& w, const WireFormat& fmt, const AggMsg& m) {
  write_tag(w, MsgKind::kAgg);
  w.write(m.source, fmt.id_bits);
  m.psi_value.pack(w, fmt.sf);
  m.lambda_value.pack(w, fmt.sf);
}

void encode(BitWriter& w, const WireFormat& fmt, const EdgeCountMsg& m) {
  write_tag(w, MsgKind::kEdgeCount);
  w.write(m.count, 2 * fmt.id_bits + 2);
}

void encode(BitWriter& w, const WireFormat& fmt, const EdgeItemMsg& m) {
  write_tag(w, MsgKind::kEdgeItem);
  w.write(m.u, fmt.id_bits);
  w.write(m.v, fmt.id_bits);
}

void encode(BitWriter& w, const WireFormat& fmt, const ResultMsg& m) {
  write_tag(w, MsgKind::kResult);
  w.write(m.node, fmt.id_bits);
  m.value.pack(w, fmt.sf);
}

MsgKind read_kind(BitReader& r) {
  return static_cast<MsgKind>(r.read(kTagBits));
}

TreeWaveMsg decode_tree_wave(BitReader& r, const WireFormat& fmt) {
  return TreeWaveMsg{static_cast<std::uint32_t>(r.read(fmt.dist_bits))};
}

SubtreeUpMsg decode_subtree_up(BitReader& r, const WireFormat& fmt) {
  SubtreeUpMsg m;
  m.count = static_cast<std::uint32_t>(r.read(fmt.id_bits + 1));
  m.depth = static_cast<std::uint32_t>(r.read(fmt.dist_bits));
  return m;
}

DfsTokenMsg decode_dfs_token(BitReader& r, const WireFormat& fmt) {
  return DfsTokenMsg{static_cast<std::uint32_t>(r.read(fmt.dist_bits))};
}

WaveMsg decode_wave(BitReader& r, const WireFormat& fmt) {
  WaveMsg m;
  m.source = static_cast<NodeId>(r.read(fmt.id_bits));
  m.dist = static_cast<std::uint32_t>(r.read(fmt.dist_bits));
  m.sigma = SoftFloat::unpack(r, fmt.sf);
  return m;
}

EccUpMsg decode_ecc_up(BitReader& r, const WireFormat& fmt) {
  return EccUpMsg{static_cast<std::uint32_t>(r.read(fmt.dist_bits))};
}

PhaseDownMsg decode_phase_down(BitReader& r, const WireFormat& fmt) {
  PhaseDownMsg m;
  m.diameter = static_cast<std::uint32_t>(r.read(fmt.dist_bits));
  m.epoch = r.read(fmt.time_bits);
  return m;
}

EdgeCountMsg decode_edge_count(BitReader& r, const WireFormat& fmt) {
  return EdgeCountMsg{r.read(2 * fmt.id_bits + 2)};
}

EdgeItemMsg decode_edge_item(BitReader& r, const WireFormat& fmt) {
  EdgeItemMsg m;
  m.u = static_cast<NodeId>(r.read(fmt.id_bits));
  m.v = static_cast<NodeId>(r.read(fmt.id_bits));
  return m;
}

ResultMsg decode_result(BitReader& r, const WireFormat& fmt) {
  ResultMsg m;
  m.node = static_cast<NodeId>(r.read(fmt.id_bits));
  m.value = SoftFloat::unpack(r, fmt.sf);
  return m;
}

AggMsg decode_agg(BitReader& r, const WireFormat& fmt) {
  AggMsg m;
  m.source = static_cast<NodeId>(r.read(fmt.id_bits));
  m.psi_value = SoftFloat::unpack(r, fmt.sf);
  m.lambda_value = SoftFloat::unpack(r, fmt.sf);
  return m;
}

}  // namespace congestbc
