#include "algo/bc_pipeline.hpp"

#include <algorithm>
#include <fstream>

#include "common/assert.hpp"
#include "congest/reliable.hpp"
#include "graph/digraph.hpp"
#include "snapshot/fingerprint.hpp"
#include "snapshot/snapshot.hpp"

namespace congestbc {

BcRun::BcRun(const Graph& g, const DistributedBcOptions& options)
    : graph_(&g), options_(options) {
  const NodeId n = g.num_nodes();
  CBC_EXPECTS(n >= 1, "empty graph");
  CBC_EXPECTS(options_.root < n, "root out of range");

  const SoftFloatFormat sf =
      options_.format.value_or(SoftFloatFormat::for_graph(n));
  config_.wire = WireFormat::for_graph(n, sf);
  config_.root = options_.root;
  config_.sigma_rounding = options_.sigma_rounding;
  config_.psi_rounding = options_.psi_rounding;
  config_.dfs_extra_pause = options_.dfs_extra_pause;
  config_.sequential_counting = options_.sequential_counting;
  config_.check_invariants = options_.check_invariants;
  config_.halve = options_.halve;
  config_.is_source = options_.sources.value_or(std::vector<bool>(n, true));
  CBC_EXPECTS(config_.is_source.size() == n, "sources mask must have size N");
  config_.counts_as_target = options_.targets.value_or(std::vector<bool>{});
  config_.scale_by_sources = options_.scale_by_sources;
  config_.counting_only = options_.counting_only;
  config_.rebase_aggregation = options_.rebase_aggregation;

  const std::uint64_t inner_budget =
      options_.budget_bits.value_or(congest_budget_bits(n));
  net_config_.bits_per_edge_per_round =
      options_.reliable_transport && inner_budget != 0
          ? reliable_budget_bits(inner_budget, options_.max_rounds)
          : inner_budget;
  net_config_.max_rounds = options_.max_rounds;
  net_config_.threads = options_.threads;
  net_config_.engine = options_.engine;
  net_config_.legacy_engine = options_.legacy_engine;
  net_config_.frontier_min_parallel_nodes = options_.frontier_min_parallel_nodes;
  net_config_.frontier_clamp_lanes = options_.frontier_clamp_lanes;
  net_config_.trace = options_.trace;
  net_config_.recorder = options_.recorder;
  net_config_.faults = options_.faults.empty() ? nullptr : &options_.faults;
  net_config_.stall_window = options_.stall_window;
  if (net_config_.stall_window == 0 && net_config_.faults != nullptr) {
    // Auto window: comfortably longer than the pipeline's longest
    // legitimate quiet stretch (the O(N + D)-round idle replay of the
    // aggregation schedule), short enough to catch real stalls.
    net_config_.stall_window = 8ull * n + 256;
  }
  net_config_.checkpoint.every_rounds = options_.checkpoint_every;
  net_config_.checkpoint.directory = options_.checkpoint_dir;
  net_config_.checkpoint.keep_last = options_.checkpoint_keep_last;
  net_config_.halt_at_round = options_.halt_at_round;
  net_config_.halt_request = options_.halt_request;

  network_.emplace(g, net_config_);
  if (!options_.resume_from.empty()) {
    std::ifstream in(options_.resume_from, std::ios::binary);
    if (!in) {
      throw SnapshotError("cannot open snapshot file: " +
                          options_.resume_from);
    }
    network_->load_snapshot(in);
  }
  if (!options_.cut_edges.empty()) {
    network_->register_cut(options_.cut_edges);
  }

  programs_.reserve(n);
  views_.reserve(n);
  for (NodeId v = 0; v < n; ++v) {
    auto program = std::make_unique<BcProgram>(v, config_);
    views_.push_back(program.get());
    if (options_.reliable_transport) {
      auto transport =
          std::make_unique<ReliableProgram>(std::move(program), inner_budget);
      transports_.push_back(transport.get());
      programs_.push_back(std::move(transport));
    } else {
      programs_.push_back(std::move(program));
    }
  }
}

BcRun::~BcRun() = default;

RunMetrics BcRun::run() {
  try {
    metrics_ = network_->run(programs_);
  } catch (...) {
    // Keep the partially filled counters (rounds, fault totals) so a
    // post-mortem harvest still reports how far the run got.
    metrics_ = network_->last_metrics();
    throw;
  }
  return metrics_;
}

bool BcRun::suspended() const { return network_->suspended(); }

void BcRun::save_snapshot(std::ostream& out) const {
  network_->save_snapshot(out);
}

std::uint64_t BcRun::total_retransmissions() const {
  std::uint64_t total = 0;
  for (const ReliableProgram* transport : transports_) {
    total += transport->retransmissions();
  }
  return total;
}

DistributedBcResult BcRun::harvest() const {
  const NodeId n = graph_->num_nodes();
  DistributedBcResult result;
  result.metrics = metrics_;
  result.rounds = metrics_.rounds;
  result.suspended = network_->suspended();
  result.resumed_from_round = network_->resumed_from_round();
  result.checkpoints = network_->checkpoints_written();

  result.betweenness.resize(n);
  result.closeness.resize(n);
  result.graph_centrality.resize(n);
  result.stress.resize(n);
  result.eccentricities.resize(n);
  result.bfs_start_rounds.resize(n);
  if (options_.keep_tables) {
    result.tables.resize(n);
  }
  for (NodeId v = 0; v < n; ++v) {
    const NodeOutputs& out = views_[v]->outputs();
    result.betweenness[v] = out.betweenness;
    result.closeness[v] = out.closeness;
    result.graph_centrality[v] = out.graph_centrality;
    result.stress[v] = out.stress;
    result.eccentricities[v] = out.eccentricity;
    result.bfs_start_rounds[v] = views_[v]->bfs_start_round();
    result.max_node_state_bytes =
        std::max(result.max_node_state_bytes, views_[v]->state_bytes());
    result.diameter = out.diameter;
    result.aggregation_epoch = out.aggregation_epoch;
    result.last_finish_round =
        std::max(result.last_finish_round, out.finish_round);
    if (options_.keep_tables) {
      result.tables[v] = views_[v]->table();
    }
  }

  // Phase profile: the logical phase boundaries are pure functions of
  // the harvested outputs — the first counting wave starts at min_s T_s,
  // the aggregation waves at the (broadcast, hence global) epoch — so
  // the profile needs no runtime sampling and inherits the pipeline's
  // bit-identity across engines and thread counts.
  {
    const std::uint64_t total = metrics_.rounds;
    std::uint64_t counting_begin = total;
    for (const std::uint64_t t : result.bfs_start_rounds) {
      if (t > 0 && t < counting_begin) {
        counting_begin = t;
      }
    }
    const bool has_aggregation = result.aggregation_epoch > 0 &&
                                 result.aggregation_epoch <= total;
    const std::uint64_t counting_end =
        has_aggregation && result.aggregation_epoch > counting_begin
            ? result.aggregation_epoch
            : total;
    const auto make_phase = [this](const char* name, std::uint64_t begin,
                                   std::uint64_t end) {
      obs::PhaseStats phase;
      phase.name = name;
      phase.begin_round = begin;
      phase.end_round = end;
      phase.rounds = end > begin ? end - begin : 0;
      const std::uint64_t limit =
          std::min<std::uint64_t>(end, metrics_.per_round.size());
      for (std::uint64_t r = begin; r < limit; ++r) {
        const RoundStats& stats =
            metrics_.per_round[static_cast<std::size_t>(r)];
        phase.physical_messages += stats.physical_messages;
        phase.logical_messages += stats.logical_messages;
        phase.bits += stats.bits;
      }
      return phase;
    };
    result.phase_profile.push_back(make_phase("tree_build", 0, counting_begin));
    result.phase_profile.push_back(
        make_phase("counting", counting_begin, counting_end));
    if (has_aggregation) {
      result.phase_profile.push_back(
          make_phase("aggregation", result.aggregation_epoch, total));
    }
  }
  return result;
}

DistributedBcResult run_distributed_bc(const Graph& g,
                                       const DistributedBcOptions& options) {
  BcRun run(g, options);
  run.run();
  return run.harvest();
}

const char* to_string(BackendId id) {
  switch (id) {
    case BackendId::kAuto:
      return "auto";
    case BackendId::kPaperExact:
      return "paper_exact";
    case BackendId::kCfp:
      return "cfp";
    case BackendId::kDirected:
      return "directed";
    case BackendId::kSampled:
      return "sampled";
  }
  return "unknown";
}

std::uint64_t options_fingerprint(const DistributedBcOptions& options,
                                  NodeId num_nodes) {
  // Bumped on any change to the field walk below — a stale cache entry
  // keyed under an older walk must never be served for a new one.
  // v2: backend id + approximation params joined the walk (portfolio).
  constexpr std::uint64_t kOptionsFingerprintVersion = 2;

  const SoftFloatFormat format =
      options.format.value_or(SoftFloatFormat::for_graph(num_nodes));
  const std::uint64_t budget =
      options.budget_bits.value_or(congest_budget_bits(num_nodes));

  FingerprintBuilder fp;
  fp.mix(kOptionsFingerprintVersion)
      .mix(format.mantissa_bits)
      .mix(format.exponent_bits)
      .mix(options.root)
      .mix_bool(options.halve)
      .mix(static_cast<std::uint64_t>(options.sigma_rounding))
      .mix(static_cast<std::uint64_t>(options.psi_rounding))
      .mix(options.dfs_extra_pause)
      .mix_bool(options.sequential_counting)
      .mix_bool(options.scale_by_sources)
      .mix(budget)
      .mix_bool(options.check_invariants)
      .mix_bool(options.keep_tables)
      .mix_bool(options.counting_only)
      .mix_bool(options.rebase_aggregation)
      .mix(options.max_rounds)
      .mix_bool(options.reliable_transport);
  // Source/target masks, defaults resolved: all-sources and
  // empty-targets are hashed as their explicit equivalents.
  const std::vector<bool> sources =
      options.sources.value_or(std::vector<bool>(num_nodes, true));
  fp.mix(sources.size());
  for (const bool s : sources) {
    fp.mix_bool(s);
  }
  const std::vector<bool> targets =
      options.targets.value_or(std::vector<bool>{});
  fp.mix(targets.size());
  for (const bool t : targets) {
    fp.mix_bool(t);
  }
  fp.mix(options.cut_edges.size());
  for (const Edge& e : options.cut_edges) {
    fp.mix(e.u).mix(e.v);
  }
  fp.mix(fault_fingerprint(options.faults.empty() ? nullptr
                                                  : &options.faults));
  // Portfolio identity.  kAuto is a serve-time placeholder the daemon
  // resolves before fingerprinting; hashing it unresolved would let a
  // downgraded job collide with an exact one, so it is a hard error
  // here.  The approximation params only determine the result under the
  // sampled backend — canonicalize them to 0 elsewhere so e.g. a
  // paper_exact submit with a stray --samples still hits the same cache
  // entry as one without.
  CBC_EXPECTS(options.backend != BackendId::kAuto,
              "backend=auto must be resolved before fingerprinting");
  const bool sampled = options.backend == BackendId::kSampled;
  fp.mix(static_cast<std::uint64_t>(options.backend))
      .mix(sampled ? options.approx_samples : 0)
      .mix(sampled ? options.approx_seed : 0);
  return fp.value();
}

std::uint64_t run_fingerprint(const Graph& g,
                              const DistributedBcOptions& options) {
  FingerprintBuilder fp;
  fp.mix(graph_fingerprint(g))
      .mix(options_fingerprint(options, g.num_nodes()));
  return fp.value();
}

std::uint64_t run_fingerprint(const Digraph& g,
                              const DistributedBcOptions& options) {
  FingerprintBuilder fp;
  fp.mix(digraph_fingerprint(g))
      .mix(options_fingerprint(options, g.num_nodes()));
  return fp.value();
}

}  // namespace congestbc
