#include "algo/bc_pipeline.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace congestbc {

DistributedBcResult run_distributed_bc(const Graph& g,
                                       const DistributedBcOptions& options) {
  const NodeId n = g.num_nodes();
  CBC_EXPECTS(n >= 1, "empty graph");
  CBC_EXPECTS(options.root < n, "root out of range");

  BcProgramConfig config;
  const SoftFloatFormat sf =
      options.format.value_or(SoftFloatFormat::for_graph(n));
  config.wire = WireFormat::for_graph(n, sf);
  config.root = options.root;
  config.sigma_rounding = options.sigma_rounding;
  config.psi_rounding = options.psi_rounding;
  config.dfs_extra_pause = options.dfs_extra_pause;
  config.sequential_counting = options.sequential_counting;
  config.check_invariants = options.check_invariants;
  config.halve = options.halve;
  config.is_source =
      options.sources.value_or(std::vector<bool>(n, true));
  CBC_EXPECTS(config.is_source.size() == n, "sources mask must have size N");
  config.counts_as_target = options.targets.value_or(std::vector<bool>{});
  config.scale_by_sources = options.scale_by_sources;
  config.counting_only = options.counting_only;
  config.rebase_aggregation = options.rebase_aggregation;

  NetworkConfig net_config;
  net_config.bits_per_edge_per_round =
      options.budget_bits.value_or(congest_budget_bits(n));
  net_config.max_rounds = options.max_rounds;
  net_config.trace = options.trace;

  Network network(g, net_config);
  if (!options.cut_edges.empty()) {
    network.register_cut(options.cut_edges);
  }

  std::vector<std::unique_ptr<NodeProgram>> programs;
  std::vector<BcProgram*> views;
  programs.reserve(n);
  views.reserve(n);
  for (NodeId v = 0; v < n; ++v) {
    auto program = std::make_unique<BcProgram>(v, config);
    views.push_back(program.get());
    programs.push_back(std::move(program));
  }

  DistributedBcResult result;
  result.metrics = network.run(programs);
  result.rounds = result.metrics.rounds;

  result.betweenness.resize(n);
  result.closeness.resize(n);
  result.graph_centrality.resize(n);
  result.stress.resize(n);
  result.eccentricities.resize(n);
  result.bfs_start_rounds.resize(n);
  if (options.keep_tables) {
    result.tables.resize(n);
  }
  for (NodeId v = 0; v < n; ++v) {
    const NodeOutputs& out = views[v]->outputs();
    result.betweenness[v] = out.betweenness;
    result.closeness[v] = out.closeness;
    result.graph_centrality[v] = out.graph_centrality;
    result.stress[v] = out.stress;
    result.eccentricities[v] = out.eccentricity;
    result.bfs_start_rounds[v] = views[v]->bfs_start_round();
    result.max_node_state_bytes =
        std::max(result.max_node_state_bytes, views[v]->state_bytes());
    result.diameter = out.diameter;
    result.aggregation_epoch = out.aggregation_epoch;
    result.last_finish_round =
        std::max(result.last_finish_round, out.finish_round);
    if (options.keep_tables) {
      result.tables[v] = views[v]->table();
    }
  }
  return result;
}

}  // namespace congestbc
