// One-call driver for the distributed centrality pipeline: builds the
// CONGEST network, runs BcProgram on every node, and harvests the
// results plus the simulator metrics.  This is the algorithm-level entry
// point; the repository-level public API (congestbc::Runner) wraps it with
// baselines and validation.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "algo/bc_program.hpp"
#include "congest/metrics.hpp"
#include "congest/network.hpp"
#include "congest/trace.hpp"
#include "fpa/soft_float.hpp"
#include "graph/graph.hpp"
#include "obs/phase_profile.hpp"
#include "obs/recorder.hpp"

namespace congestbc {

/// Which portfolio backend computes the job (src/portfolio).  Lives at
/// the algo layer because it is a *result-determining* option — it
/// enters options_fingerprint() so cached results can never be served
/// across backends — but the algo layer itself only ever runs
/// kPaperExact semantics; dispatch happens in src/portfolio.
enum class BackendId : std::uint8_t {
  /// Serve-time choice: the daemon's admission control resolves this to
  /// kPaperExact, or to kSampled under queue pressure / deadline risk.
  /// Never reaches options_fingerprint() unresolved.
  kAuto = 0,
  /// The paper's exact distributed algorithm (the default; the only
  /// backend before the portfolio existed).
  kPaperExact = 1,
  /// Crescenzi–Fraigniaud–Paz simple/fast BC (arXiv:2001.08108).
  kCfp = 2,
  /// Directed BC, Pontecorvi–Ramachandran accumulation (arXiv:1805.08124).
  kDirected = 3,
  /// Bader-style sampled-source approximation with a tunable budget.
  kSampled = 4,
};

/// Lowercase wire/CLI name ("auto", "paper_exact", "cfp", "directed",
/// "sampled").
const char* to_string(BackendId id);

/// Options of one distributed run.  Defaults reproduce the paper's exact
/// algorithm; the knobs cover the ablations in DESIGN.md.
struct DistributedBcOptions {
  /// Portfolio backend (see BackendId).  The algo-layer pipeline ignores
  /// everything but its fingerprint contribution; src/portfolio
  /// dispatches on it.
  BackendId backend = BackendId::kPaperExact;
  /// Sampled-backend source budget; 0 = resolve_sample_budget(N) default.
  /// Ignored (and fingerprinted as 0) by every other backend.
  std::uint32_t approx_samples = 0;
  /// Seed of the sampled backend's source draw.  Ignored (and
  /// fingerprinted as 0) by every other backend.
  std::uint64_t approx_seed = 0;
  /// Soft-float wire format; defaults to SoftFloatFormat::for_graph(N).
  std::optional<SoftFloatFormat> format;
  NodeId root = 0;
  bool halve = true;
  RoundingMode sigma_rounding = RoundingMode::kUp;
  RoundingMode psi_rounding = RoundingMode::kDown;
  unsigned dfs_extra_pause = 0;
  bool sequential_counting = false;
  /// Source subset for the sampled estimator; default: every node.
  std::optional<std::vector<bool>> sources;
  /// Endpoint subset (see BcProgramConfig::counts_as_target); default all.
  std::optional<std::vector<bool>> targets;
  /// Scale dependency sums by N/|sources| (estimator mode); disable for
  /// restricted-pair computations.
  bool scale_by_sources = true;
  /// Per-edge per-round bit budget; defaults to congest_budget_bits(N).
  /// 0 disables the check.
  std::optional<std::uint64_t> budget_bits;
  bool check_invariants = true;
  /// Keep every node's L_v table in the result (memory-heavy; tests and
  /// the Figure-1 bench enable it).
  bool keep_tables = false;
  /// Undirected edges whose traffic is counted as cut_bits (lower-bound
  /// experiments).
  std::vector<Edge> cut_edges;
  /// Optional message-trace observer (congest/trace.hpp).
  TraceSink* trace = nullptr;
  /// Optional flight recorder (obs/recorder.hpp) fed wall-clock phase
  /// spans by the simulator.  Pure observation — excluded from
  /// options_fingerprint() like `trace`, bit-identical results with it
  /// on or off.  Must outlive the run.
  obs::FlightRecorder* recorder = nullptr;
  /// Stop after the counting phase (distributed APSP mode; betweenness
  /// and stress come back zero).  Prefer run_distributed_apsp().
  bool counting_only = false;
  /// Ablation D6: rebase the aggregation schedule by min_s T_s, trimming
  /// the idle replay of the pre-counting rounds.  Default: off
  /// (paper-literal schedule).
  bool rebase_aggregation = false;
  std::uint64_t max_rounds = 50'000'000;
  /// Fault schedule injected into the simulator (congest/fault.hpp);
  /// empty = the paper's reliable network.
  FaultPlan faults;
  /// Wrap every node's program in the reliable transport
  /// (congest/reliable.hpp): exact BC results survive drop/duplicate/
  /// delay faults at the cost of extra rounds and header bits.  The
  /// CONGEST budget is widened to reliable_budget_bits(inner budget).
  bool reliable_transport = false;
  /// Stall-watchdog window (NetworkConfig::stall_window).  0 = automatic:
  /// 8N + 256 when faults are active (longer than any legitimate quiet
  /// stretch of the aggregation schedule, which idles O(N + D) rounds),
  /// disabled on a fault-free run.
  std::uint64_t stall_window = 0;
  /// Simulator lanes for the node-execution phase (NetworkConfig::
  /// threads): 1 = sequential, 0 = one per hardware thread.  Results are
  /// bit-identical for every value.
  unsigned threads = 1;
  /// Which simulator engine executes the rounds (NetworkConfig::engine).
  /// All three produce bit-identical results; the frontier engine is the
  /// default and the only one whose per-round cost tracks the active set
  /// instead of N.
  EngineKind engine = EngineKind::kFrontier;
  /// Compat alias: run the PR-1 sequential allocating simulator engine
  /// (overrides `engine`) — the reproducible baseline of
  /// `bench_simulator --baseline`; never faster, never different.
  bool legacy_engine = false;
  /// Frontier engine tuning passthrough (NetworkConfig fields of the same
  /// name); results are bit-identical for every value.
  std::size_t frontier_min_parallel_nodes = 256;
  bool frontier_clamp_lanes = true;
  // --- checkpoint / resume (src/snapshot) ---
  /// Write a full snapshot every this many rounds (0 = off; needs
  /// checkpoint_dir).  Atomic write-rename, newest checkpoint_keep_last
  /// files kept.
  std::uint64_t checkpoint_every = 0;
  std::string checkpoint_dir;
  unsigned checkpoint_keep_last = 2;
  /// Path of a snapshot file to resume from ("" = start at round 0).
  /// The graph, budget, and fault plan must match the original run; the
  /// resumed run is bit-identical to the uninterrupted one.
  std::string resume_from;
  /// Suspend the run at the start of this round (0 = never): the
  /// deterministic stand-in for a kill.  The result is partial
  /// (DistributedBcResult::suspended) and, when checkpoint_dir is set,
  /// the suspension state is also written there as a checkpoint.
  std::uint64_t halt_at_round = 0;
  /// Cooperative halt flag (NetworkConfig::halt_request): raise it from
  /// another thread and the run suspends at the next round boundary the
  /// same way halt_at_round does.  The serving daemon's SIGTERM drain and
  /// per-job time budget are built on this.  Must outlive the run.
  const std::atomic<bool>* halt_request = nullptr;
};

/// Aggregate result of one run.
struct DistributedBcResult {
  std::vector<double> betweenness;
  std::vector<double> closeness;
  std::vector<double> graph_centrality;
  std::vector<long double> stress;
  /// Per node: max distance to any *source* (= true eccentricity under
  /// full sampling).
  std::vector<std::uint32_t> eccentricities;
  std::uint32_t diameter = 0;
  std::uint64_t rounds = 0;
  std::uint64_t aggregation_epoch = 0;
  std::uint64_t last_finish_round = 0;
  /// Largest per-node resident state observed (bytes) — the empirical
  /// O(N log N)-bits-per-node footprint.
  std::size_t max_node_state_bytes = 0;
  RunMetrics metrics;
  /// Per node: the round its own BFS wave started (T_v; 0 for non-sources).
  std::vector<std::uint64_t> bfs_start_rounds;
  /// The run's logical phases (tree build + DFS, counting waves,
  /// aggregation) with their round ranges and per-range traffic sums —
  /// derived deterministically from the outputs above (DESIGN.md §11),
  /// so it is bit-identical across engines and thread counts.  Traffic
  /// sums are zero when per-round recording was off.
  std::vector<obs::PhaseStats> phase_profile;
  /// Per node: L_v (only when keep_tables).
  std::vector<std::vector<SourceEntry>> tables;
  /// True when the run stopped at halt_at_round: all outputs above are the
  /// partial state at that boundary, and the suspension snapshot is
  /// available (BcRun::save_snapshot / the checkpoint directory).
  bool suspended = false;
  /// The boundary round this run resumed from, if it resumed.
  std::optional<std::uint64_t> resumed_from_round;
  /// Checkpoint files written, oldest first.
  std::vector<std::string> checkpoints;
};

/// Runs the full pipeline on a connected graph.  Throws InvariantError on
/// any CONGEST/model violation detected by the simulator.
DistributedBcResult run_distributed_bc(const Graph& g,
                                       const DistributedBcOptions& options = {});

/// Fingerprint of every option that determines the *result* of a run on
/// an N-node graph, with defaults resolved first (so an explicit value
/// equal to the default fingerprints identically).  Execution-strategy
/// knobs — threads, engine (and its frontier_* tuning), legacy_engine,
/// trace, stall_window, checkpoint/resume/halt plumbing — are
/// deliberately excluded: the engine
/// guarantees bit-identical results across all of them, so runs that
/// differ only there share a fingerprint (and the service cache serves
/// one from the other).  The fault plan enters via fault_fingerprint(),
/// the same bytes the resume path validates.
std::uint64_t options_fingerprint(const DistributedBcOptions& options,
                                  NodeId num_nodes);

/// Identity of a (graph, options) run: graph_fingerprint() folded with
/// options_fingerprint().  The key of the service result cache, the
/// coalescing map, and the job spool (src/service).
std::uint64_t run_fingerprint(const Graph& g,
                              const DistributedBcOptions& options);

class Digraph;  // graph/digraph.hpp

/// Directed-run identity: digraph_fingerprint() folded with
/// options_fingerprint().  The cache/spool key of directed-backend jobs;
/// the directed tag inside digraph_fingerprint() keeps it disjoint from
/// every undirected run_fingerprint().
std::uint64_t run_fingerprint(const Digraph& g,
                              const DistributedBcOptions& options);

class ReliableProgram;  // congest/reliable.hpp

/// The pipeline split into construct / run / harvest, so a supervising
/// caller can salvage per-node partial state when run() throws — the
/// watchdog runner (core/runner.hpp run_bc_with_watchdog) is the intended
/// user; run_distributed_bc() is the one-call convenience wrapper.
class BcRun {
 public:
  /// Builds the network and one program per node (wrapped in the reliable
  /// transport when options.reliable_transport).  The graph must outlive
  /// the BcRun.
  BcRun(const Graph& g, const DistributedBcOptions& options);
  ~BcRun();

  BcRun(const BcRun&) = delete;
  BcRun& operator=(const BcRun&) = delete;

  /// Executes the network once; throws exactly like Network::run.
  RunMetrics run();

  /// Assembles a DistributedBcResult from whatever the programs hold
  /// right now — complete after a clean run(), partial (per-node state as
  /// of the failure) after run() threw.
  DistributedBcResult harvest() const;

  /// The per-node BC programs (inner programs under reliable transport).
  const std::vector<BcProgram*>& views() const { return views_; }

  /// The stall window the run actually uses (after the 0 = auto rule).
  std::uint64_t effective_stall_window() const {
    return net_config_.stall_window;
  }

  /// True when run() returned because of options.halt_at_round.
  bool suspended() const;

  /// Serializes the suspension snapshot (only valid when suspended()).
  void save_snapshot(std::ostream& out) const;

  /// Total batch retransmissions across all nodes; 0 without the
  /// reliable transport.
  std::uint64_t total_retransmissions() const;

 private:
  const Graph* graph_;
  DistributedBcOptions options_;  // owns the FaultPlan the network reads
  BcProgramConfig config_;        // must outlive the programs
  NetworkConfig net_config_;
  std::optional<Network> network_;
  std::vector<std::unique_ptr<NodeProgram>> programs_;
  std::vector<BcProgram*> views_;
  std::vector<ReliableProgram*> transports_;  // empty unless reliable
  RunMetrics metrics_;
};

}  // namespace congestbc
