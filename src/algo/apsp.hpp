// Distributed all-pairs shortest paths — the counting phase exposed as
// its own O(N)-round API.
//
// This is the library's rendition of the Holzer–Wattenhofer APSP
// algorithm ([6] in the paper) that Algorithm 2 builds on: after the run,
// every node holds d(s, v) and the ceil-rounded path count sigma_sv for
// every source s, the graph diameter, and the distance-based centralities
// (closeness, graph centrality) — everything Section I says follows from
// linear-time APSP — without paying for the aggregation phase.
#pragma once

#include <cstdint>
#include <vector>

#include "algo/bc_pipeline.hpp"
#include "graph/graph.hpp"

namespace congestbc {

/// Result of a distributed APSP run, gathered from all nodes.
struct DistributedApspResult {
  /// distances[v][s] = d(s, v); kUnreachable never occurs (connected).
  std::vector<std::vector<std::uint32_t>> distances;
  /// sigma[v][s] = ceil-rounded shortest-path count (exact below 2^L).
  std::vector<std::vector<double>> sigma;
  std::uint32_t diameter = 0;
  std::vector<std::uint32_t> eccentricities;
  std::vector<double> closeness;
  std::vector<double> graph_centrality;
  std::uint64_t rounds = 0;
  RunMetrics metrics;
};

/// Runs the counting phase only.  Accepts the same options as
/// run_distributed_bc (sources restriction included); the counting_only
/// and keep_tables fields are overridden.
DistributedApspResult run_distributed_apsp(const Graph& g,
                                           DistributedBcOptions options = {});

}  // namespace congestbc
