// Distributed BFS-tree construction — the phase-1 building block of the
// pipeline, also usable standalone.  It is the classic O(D)-round CONGEST
// BFS of [Peleg 2000] extended with child discovery and a (count, depth)
// subtree convergecast so the root learns when the tree is complete.
//
// Protocol:
//   round r    : a node with freshly assigned dist sends TreeWave(dist);
//   round r+1  : receivers adopt dist+1, pick the smallest-id sender as
//                parent, reply ParentAccept, and forward the wave;
//   round r+2  : the node's child set is final (all accepts arrived);
//                childless nodes start the SubtreeUp convergecast; the
//                root learns (N, tree depth) when all children reported.
#pragma once

#include <cstdint>
#include <vector>

#include "algo/parse.hpp"
#include "algo/wire.hpp"
#include "congest/node.hpp"
#include "snapshot/snapshottable.hpp"

namespace congestbc {

/// Protocol component driving the tree construction on one node.  The
/// owner parses the inbox and calls on_round once per round.
class TreeBuilder {
 public:
  TreeBuilder(NodeId id, NodeId root, const WireFormat& fmt)
      : id_(id), root_(root), fmt_(&fmt) {}

  /// Handles this round's tree-related records and emits replies/waves.
  void on_round(NodeContext& ctx, const std::vector<ParsedMsg>& msgs);

  /// Frontier-scheduling support (NodeProgram::next_active_round): the
  /// earliest round >= `from` the builder might act without input.  Two
  /// spontaneous actions exist: the root's bootstrap (its very first
  /// round) and the finalize_children timer at wave_round_ + 2; everything
  /// else is a reaction to an inbound record.
  std::uint64_t next_active_round(std::uint64_t from) const {
    if (!started_ && is_root()) {
      return from;
    }
    if (has_dist_ && !children_final_) {
      return wave_round_ + 2 > from ? wave_round_ + 2 : from;
    }
    return kActiveOnMessage;
  }

  /// Checkpoint support (snapshot/snapshottable.hpp): the protocol state
  /// only — id/root/format are reconstructed by the owner's constructor.
  void save_state(BitWriter& w) const;
  void load_state(BitReader& r);

  bool has_dist() const { return has_dist_; }
  std::uint32_t dist() const { return dist_; }
  bool is_root() const { return id_ == root_; }
  NodeId parent() const { return parent_; }
  /// Children in ascending id order; valid once children_final().
  const std::vector<NodeId>& children() const { return children_; }
  bool children_final() const { return children_final_; }
  /// True once this node's SubtreeUp has been sent (leaf->root sweep
  /// passed through here).
  bool subtree_reported() const { return subtree_reported_; }
  /// Root only: the whole tree has reported.
  bool tree_complete() const { return tree_complete_; }
  /// Valid once subtree_reported() (root: tree_complete()).
  std::uint32_t subtree_count() const { return subtree_count_; }
  std::uint32_t subtree_depth() const { return subtree_depth_; }

 private:
  void finalize_children(NodeContext& ctx);
  void maybe_report(NodeContext& ctx);

  NodeId id_;
  NodeId root_;
  const WireFormat* fmt_;

  bool started_ = false;
  bool has_dist_ = false;
  std::uint32_t dist_ = 0;
  NodeId parent_ = 0;
  std::uint64_t wave_round_ = 0;
  bool children_final_ = false;
  std::vector<NodeId> children_;
  std::vector<SubtreeUpMsg> child_reports_;
  bool subtree_reported_ = false;
  bool tree_complete_ = false;
  std::uint32_t subtree_count_ = 0;
  std::uint32_t subtree_depth_ = 0;
};

/// Standalone NodeProgram running just the tree construction.
class BfsTreeProgram final : public NodeProgram, public Snapshottable {
 public:
  BfsTreeProgram(NodeId id, NodeId root, const WireFormat& fmt)
      : fmt_(fmt), builder_(id, root, fmt_) {}

  void on_round(NodeContext& ctx) override;
  bool done() const override;
  std::uint64_t next_active_round(std::uint64_t from) const override {
    return builder_.next_active_round(from);
  }

  void save_state(BitWriter& w) const override { builder_.save_state(w); }
  void load_state(BitReader& r) override { builder_.load_state(r); }

  const TreeBuilder& tree() const { return builder_; }

 private:
  WireFormat fmt_;
  TreeBuilder builder_;
};

}  // namespace congestbc
