#include "algo/weighted_bc.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace congestbc {

WeightedBcResult run_distributed_weighted_bc(const WeightedGraph& g,
                                             DistributedBcOptions base) {
  CBC_EXPECTS(g.num_nodes() >= 1, "empty graph");
  const Subdivision sub = subdivide(g);

  base.sources = sub.is_real;
  base.targets = sub.is_real;
  base.scale_by_sources = false;
  const auto raw = run_distributed_bc(sub.graph, base);

  WeightedBcResult result;
  result.subdivided_nodes = sub.graph.num_nodes();
  // The pipeline's diameter covers virtual nodes too; the weighted
  // diameter is the max eccentricity over *real* nodes (their ecc is a
  // max over real sources, hence real-pair distances only).
  result.weighted_diameter = 0;
  for (NodeId v = 0; v < sub.num_real; ++v) {
    result.weighted_diameter =
        std::max<std::uint64_t>(result.weighted_diameter,
                                raw.eccentricities[v]);
  }
  result.rounds = raw.rounds;
  result.metrics = raw.metrics;
  result.betweenness.assign(raw.betweenness.begin(),
                            raw.betweenness.begin() + sub.num_real);
  result.closeness.assign(raw.closeness.begin(),
                          raw.closeness.begin() + sub.num_real);
  result.stress.assign(raw.stress.begin(), raw.stress.begin() + sub.num_real);
  return result;
}

}  // namespace congestbc
