// Distributed weighted betweenness centrality via the paper's Section-X
// suggestion: subdivide weighted edges with virtual nodes and run the
// unweighted O(N)-round pipeline on the result, with
//   sources = real nodes, targets = real nodes, no estimator scaling —
// which yields the exact weighted dependency sums over real pairs (see
// graph/weighted.hpp for the argument).  Round cost: O(N + sum(w_e - 1)).
#pragma once

#include "algo/bc_pipeline.hpp"
#include "graph/weighted.hpp"

namespace congestbc {

/// Result restricted to the real (original) nodes.
struct WeightedBcResult {
  std::vector<double> betweenness;
  std::vector<double> closeness;
  std::vector<long double> stress;
  std::uint64_t weighted_diameter = 0;  ///< == subdivided diameter
  NodeId subdivided_nodes = 0;          ///< N' the pipeline actually ran on
  std::uint64_t rounds = 0;
  RunMetrics metrics;
};

/// Runs the subdivision pipeline.  `base` carries the usual knobs
/// (format, rounding, budget...); its sources/targets/scaling fields are
/// overwritten by the reduction.
WeightedBcResult run_distributed_weighted_bc(const WeightedGraph& g,
                                             DistributedBcOptions base = {});

}  // namespace congestbc
