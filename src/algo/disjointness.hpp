// Set disjointness solved through the distributed graph algorithms — the
// reductions of Theorems 5 and 6 made executable.
//
// Alice holds family X, Bob holds family Y.  They build the Section-IX
// gadget between them and simulate the distributed protocol; the answer
// can be read off a global quantity (the diameter for Figure 2; the
// betweenness of the F_i probes for Figure 3), and the bits that crossed
// the gadget's narrow cut are exactly the two-party communication the
// lower bound charges for.
#pragma once

#include <cstdint>

#include "graph/lowerbound.hpp"

namespace congestbc::lb {

/// Outcome of one reduction run.
struct DisjointnessResult {
  bool disjoint = false;          ///< the protocol's answer
  std::uint64_t cut_bits = 0;     ///< two-party communication used
  std::uint64_t rounds = 0;       ///< CONGEST rounds of the simulation
  std::uint32_t gadget_nodes = 0;
};

/// Decides X cap Y == empty by running the distributed pipeline on the
/// Figure-2 gadget and reading the diameter (Lemma 8 / Theorem 5).
DisjointnessResult decide_disjointness_via_diameter(const SetFamily& x,
                                                    const SetFamily& y,
                                                    unsigned path_param = 8);

/// Decides X cap Y == empty by running the distributed pipeline on the
/// Figure-3 gadget and thresholding C_B(F_i) at 1.25 (Lemma 9 /
/// Theorem 6 — any algorithm with < 0.499 relative error suffices).
/// Precondition: subsets within each family pairwise distinct.
DisjointnessResult decide_disjointness_via_betweenness(const SetFamily& x,
                                                       const SetFamily& y);

}  // namespace congestbc::lb
