// Wire protocol of the distributed betweenness-centrality pipeline.
//
// Every logical message is a fixed-layout bit record beginning with a
// 3-bit kind tag.  All field widths are O(log N): node ids and distances
// take ceil(log2 N)-ish bits, absolute round numbers take O(log N) bits
// (rounds are polynomial in N), and the numeric payloads (sigma, psi,
// lambda) are the Section-VI soft-floats.  The CONGEST budget check in the
// simulator validates the O(log N) claim for every message actually sent.
#pragma once

#include <cstdint>

#include "common/bit_io.hpp"
#include "fpa/soft_float.hpp"
#include "graph/graph.hpp"

namespace congestbc {

/// Field widths shared by all nodes (derived from N, which is common
/// knowledge in the model).
struct WireFormat {
  unsigned id_bits;    ///< node ids and distances (<= N-1)
  unsigned dist_bits;  ///< distances and doubled-depth estimates (<= 2N)
  unsigned time_bits;  ///< absolute round numbers (polynomial in N)
  SoftFloatFormat sf;  ///< numeric payloads

  static WireFormat for_graph(std::uint32_t num_nodes,
                              const SoftFloatFormat& sf);
};

/// Message kinds: the BC pipeline (first eight) plus the gather-at-root
/// baseline's records.
enum class MsgKind : std::uint8_t {
  kTreeWave = 0,      ///< phase 1: BFS-tree construction wavefront
  kParentAccept = 1,  ///< phase 1: child -> parent attachment
  kSubtreeUp = 2,     ///< phase 1: subtree (count, depth) convergecast
  kDfsToken = 3,      ///< phase 2: the DFS coordination token
  kWave = 4,          ///< phase 2: one source's BFS wave (Algorithm 2)
  kEccUp = 5,         ///< phase 3: eccentricity max-convergecast
  kPhaseDown = 6,     ///< phase 3: (diameter, epoch) broadcast
  kAgg = 7,           ///< phase 4: psi/lambda aggregation (Algorithm 3)
  kEdgeCount = 8,     ///< gather baseline: subtree edge-count convergecast
  kEdgeItem = 9,      ///< gather baseline: one streamed edge
  kResult = 10,       ///< gather baseline: one broadcast (node, C_B) pair
};

struct TreeWaveMsg {
  std::uint32_t dist;
};
struct ParentAcceptMsg {};
struct SubtreeUpMsg {
  std::uint32_t count;
  std::uint32_t depth;
};
struct DfsTokenMsg {
  /// 2 * BFS-tree depth, an upper bound on the diameter; used by the
  /// sequential-counting ablation to size its drain pauses.
  std::uint32_t depth_estimate;
};
struct WaveMsg {
  NodeId source;
  std::uint32_t dist;
  SoftFloat sigma;
};
struct EccUpMsg {
  std::uint32_t ecc;
};
struct PhaseDownMsg {
  std::uint32_t diameter;
  std::uint64_t epoch;
};
struct AggMsg {
  NodeId source;
  SoftFloat psi_value;     ///< 1/sigma_su + psi_s(u), floor-rounded
  SoftFloat lambda_value;  ///< 1 + lambda_s(u), floor-rounded (stress)
};
struct EdgeCountMsg {
  std::uint64_t count;  ///< edges owned by the sender's subtree
};
struct EdgeItemMsg {
  NodeId u;
  NodeId v;
};
struct ResultMsg {
  NodeId node;
  SoftFloat value;
};

void encode(BitWriter& w, const WireFormat& fmt, const TreeWaveMsg& m);
void encode(BitWriter& w, const WireFormat& fmt, const ParentAcceptMsg& m);
void encode(BitWriter& w, const WireFormat& fmt, const SubtreeUpMsg& m);
void encode(BitWriter& w, const WireFormat& fmt, const DfsTokenMsg& m);
void encode(BitWriter& w, const WireFormat& fmt, const WaveMsg& m);
void encode(BitWriter& w, const WireFormat& fmt, const EccUpMsg& m);
void encode(BitWriter& w, const WireFormat& fmt, const PhaseDownMsg& m);
void encode(BitWriter& w, const WireFormat& fmt, const AggMsg& m);
void encode(BitWriter& w, const WireFormat& fmt, const EdgeCountMsg& m);
void encode(BitWriter& w, const WireFormat& fmt, const EdgeItemMsg& m);
void encode(BitWriter& w, const WireFormat& fmt, const ResultMsg& m);

/// Reads the next kind tag (the caller then calls the matching decode_*).
MsgKind read_kind(BitReader& r);

TreeWaveMsg decode_tree_wave(BitReader& r, const WireFormat& fmt);
SubtreeUpMsg decode_subtree_up(BitReader& r, const WireFormat& fmt);
DfsTokenMsg decode_dfs_token(BitReader& r, const WireFormat& fmt);
WaveMsg decode_wave(BitReader& r, const WireFormat& fmt);
EccUpMsg decode_ecc_up(BitReader& r, const WireFormat& fmt);
PhaseDownMsg decode_phase_down(BitReader& r, const WireFormat& fmt);
AggMsg decode_agg(BitReader& r, const WireFormat& fmt);
EdgeCountMsg decode_edge_count(BitReader& r, const WireFormat& fmt);
EdgeItemMsg decode_edge_item(BitReader& r, const WireFormat& fmt);
ResultMsg decode_result(BitReader& r, const WireFormat& fmt);

}  // namespace congestbc
