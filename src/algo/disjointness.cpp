#include "algo/disjointness.hpp"

#include "algo/apsp.hpp"
#include "algo/bc_pipeline.hpp"

namespace congestbc::lb {

DisjointnessResult decide_disjointness_via_diameter(const SetFamily& x,
                                                    const SetFamily& y,
                                                    unsigned path_param) {
  const auto gadget = build_diameter_gadget(x, y, path_param);
  DistributedBcOptions options;
  options.cut_edges = gadget.cut_edges;
  options.counting_only = true;  // the diameter is a counting-phase output
  const auto result = run_distributed_bc(gadget.graph, options);

  DisjointnessResult outcome;
  outcome.disjoint = result.diameter == path_param;  // x+2 means a match
  outcome.cut_bits = result.metrics.cut_bits;
  outcome.rounds = result.rounds;
  outcome.gadget_nodes = gadget.graph.num_nodes();
  return outcome;
}

DisjointnessResult decide_disjointness_via_betweenness(const SetFamily& x,
                                                       const SetFamily& y) {
  const auto gadget = build_bc_gadget(x, y);
  DistributedBcOptions options;
  options.cut_edges = gadget.cut_edges;
  const auto result = run_distributed_bc(gadget.graph, options);

  DisjointnessResult outcome;
  outcome.disjoint = true;
  for (const NodeId f : gadget.f) {
    // Lemma 9: C_B(F_i) is 1.5 exactly when X_i appears in Y; any
    // estimate within 0.499 relative error lands on the right side of
    // the 1.25 threshold.
    if (result.betweenness[f] > 1.25) {
      outcome.disjoint = false;
    }
  }
  outcome.cut_bits = result.metrics.cut_bits;
  outcome.rounds = result.rounds;
  outcome.gadget_nodes = gadget.graph.num_nodes();
  return outcome;
}

}  // namespace congestbc::lb
