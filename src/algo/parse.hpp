// Inbox parsing: a physical CONGEST message is a bundle of logical
// records; parse_inbox splits every bundle in a round's inbox into typed
// records so the protocol components can dispatch on kind.
#pragma once

#include <variant>
#include <vector>

#include "algo/wire.hpp"
#include "congest/node.hpp"

namespace congestbc {

/// One decoded logical message plus its sender.
struct ParsedMsg {
  NodeId from;
  std::variant<TreeWaveMsg, ParentAcceptMsg, SubtreeUpMsg, DfsTokenMsg,
               WaveMsg, EccUpMsg, PhaseDownMsg, AggMsg, EdgeCountMsg,
               EdgeItemMsg, ResultMsg>
      body;
};

/// Decodes every logical record in the round's inbox, in arrival order.
std::vector<ParsedMsg> parse_inbox(const NodeContext& ctx,
                                   const WireFormat& fmt);

}  // namespace congestbc
