#include "algo/bc_program.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "common/assert.hpp"
#include "snapshot/snapshot.hpp"

namespace congestbc {

long double to_long_double(const SoftFloat& value) {
  if (value.is_zero()) {
    return 0.0L;
  }
  return std::ldexp(static_cast<long double>(value.mantissa()),
                    static_cast<int>(value.exponent()));
}

BcProgram::BcProgram(NodeId id, const BcProgramConfig& config)
    : id_(id),
      config_(&config),
      tree_(id, config.root, config.wire) {
  CBC_EXPECTS(!config.is_source.empty(), "is_source must be sized to N");
  entry_index_.assign(config.is_source.size(), -1);
  expected_sources_ = 0;
  for (const bool selected : config.is_source) {
    if (selected) {
      ++expected_sources_;
    }
  }
  CBC_EXPECTS(expected_sources_ >= 1, "at least one source is required");
  CBC_EXPECTS(config.counts_as_target.empty() ||
                  config.counts_as_target.size() == config.is_source.size(),
              "counts_as_target must be empty or sized to N");
  i_am_source_ = config.is_source[id];
  i_am_target_ =
      config.counts_as_target.empty() || config.counts_as_target[id];
  entries_.reserve(expected_sources_);
}

std::size_t BcProgram::state_bytes() const {
  std::size_t total = entries_.capacity() * sizeof(SourceEntry) +
                      entry_index_.capacity() * sizeof(std::int32_t) +
                      agg_schedule_.capacity() * sizeof(ScheduledSend);
  for (const auto& entry : entries_) {
    total += entry.preds.capacity() * sizeof(NodeId);
  }
  return total;
}

SourceEntry* BcProgram::find_entry(NodeId source) {
  const std::int32_t idx = entry_index_[source];
  return idx < 0 ? nullptr : &entries_[static_cast<std::size_t>(idx)];
}

std::uint64_t BcProgram::token_pause() const {
  // The paper's "wait one time slot" plus the ablation knobs: the token
  // leaves one round after the BFS start (2 + extra after arrival), and
  // the sequential ablation additionally waits for the wave to drain.
  std::uint64_t pause = 1;
  if (config_->sequential_counting) {
    pause += 2ull * depth_estimate_ + 2;
  }
  return pause;
}

void BcProgram::on_round(NodeContext& ctx) {
  if (finished_) {
    return;
  }
  const auto msgs = parse_inbox(ctx, config_->wire);
  tree_.on_round(ctx, msgs);
  handle_wave_msgs(ctx, msgs);
  handle_dfs(ctx, msgs);
  handle_phase_switch(ctx, msgs);
  handle_aggregation(ctx, msgs);
}

std::uint64_t BcProgram::next_active_round(std::uint64_t from) const {
  if (finished_) {
    return kActiveOnMessage;
  }
  std::uint64_t best = tree_.next_active_round(from);
  const auto consider = [&](std::uint64_t round) {
    const std::uint64_t wake = round > from ? round : from;
    if (wake < best) {
      best = wake;
    }
  };
  // The BFS-start timer is one-shot but stays set after firing (the value
  // doubles as T_v); a past value is a fired one.
  if (my_bfs_round_opt_.has_value() && *my_bfs_round_opt_ >= from) {
    consider(*my_bfs_round_opt_);
  }
  if (pending_token_round_.has_value()) {
    consider(*pending_token_round_);
  }
  if (phase_down_seen_ && !config_->counting_only) {
    if (agg_cursor_ < agg_schedule_.size()) {
      consider(agg_schedule_[agg_cursor_].round);
    }
    consider(finalize_round_);
  }
  return best;
}

void BcProgram::handle_wave_msgs(NodeContext& ctx,
                                 const std::vector<ParsedMsg>& msgs) {
  std::vector<std::size_t> fresh;
  std::unordered_map<NodeId, unsigned> waves_per_sender;
  for (const auto& msg : msgs) {
    const auto* wave = std::get_if<WaveMsg>(&msg.body);
    if (wave == nullptr) {
      continue;
    }
    if (config_->check_invariants) {
      // Holzer–Wattenhofer wavefront separation: at most one BFS wave
      // crosses an edge per round.
      const unsigned count = ++waves_per_sender[msg.from];
      CBC_CHECK(count <= 1,
                "two BFS wavefronts crossed one edge in the same round");
    }
    const std::uint32_t candidate = wave->dist + 1;
    SourceEntry* entry = find_entry(wave->source);
    if (entry == nullptr) {
      CBC_CHECK(ctx.round() >= candidate, "wave arrived before its source started");
      SourceEntry created;
      created.source = wave->source;
      created.t_start = ctx.round() - candidate;
      created.dist = candidate;
      entry_index_[wave->source] = static_cast<std::int32_t>(entries_.size());
      entries_.push_back(std::move(created));
      entry = &entries_.back();
      fresh.push_back(entries_.size() - 1);
      outputs_.eccentricity = std::max(outputs_.eccentricity, candidate);
      outputs_.sum_distances += candidate;
    }
    // Predecessor messages all arrive in the entry's finalization round
    // (t_start + dist); anything else is a same-level echo to ignore.
    if (entry->dist == candidate &&
        entry->t_start + entry->dist == ctx.round()) {
      entry->sigma = add(entry->sigma, wave->sigma, config_->wire.sf,
                         config_->sigma_rounding);
      entry->preds.push_back(msg.from);
    }
  }
  for (const std::size_t idx : fresh) {
    SourceEntry& entry = entries_[idx];
    CBC_CHECK(!entry.sigma.is_zero(), "finalized a source with sigma == 0");
    BitWriter out;
    encode(out, config_->wire, WaveMsg{entry.source, entry.dist, entry.sigma});
    for (const NodeId nbr : ctx.neighbors()) {
      ctx.send(nbr, out);
    }
  }
}

void BcProgram::handle_dfs(NodeContext& ctx, const std::vector<ParsedMsg>& msgs) {
  for (const auto& msg : msgs) {
    const auto* token = std::get_if<DfsTokenMsg>(&msg.body);
    if (token == nullptr) {
      continue;
    }
    depth_estimate_ = token->depth_estimate;
    if (!dfs_visited_) {
      dfs_visited_ = true;
      if (i_am_source_) {
        // First visit (Algorithm 2 lines 2-6): wait one slot, start BFS,
        // then move the token onward.
        my_bfs_round_opt_ = ctx.round() + 1 + config_->dfs_extra_pause;
        pending_token_round_ = *my_bfs_round_opt_ + token_pause();
      } else {
        // Non-sources (sampled runs) add no pause: the token moves on at
        // hop speed, exactly like a revisited node.
        advance_token(ctx);
      }
    } else {
      // The token returned from a child; forward it without delay.
      advance_token(ctx);
    }
  }

  // Root bootstrap: the DFS begins once the tree is known to be complete.
  if (tree_.is_root() && tree_.tree_complete() && !dfs_visited_) {
    dfs_visited_ = true;
    depth_estimate_ = 2 * tree_.subtree_depth();
    if (i_am_source_) {
      my_bfs_round_opt_ = ctx.round() + 1 + config_->dfs_extra_pause;
      pending_token_round_ = *my_bfs_round_opt_ + token_pause();
    } else {
      advance_token(ctx);
    }
  }

  if (my_bfs_round_opt_.has_value() && ctx.round() == *my_bfs_round_opt_) {
    start_own_bfs(ctx);
  }
  if (pending_token_round_.has_value() &&
      ctx.round() == *pending_token_round_) {
    pending_token_round_.reset();
    advance_token(ctx);
  }
}

void BcProgram::start_own_bfs(NodeContext& ctx) {
  my_bfs_round_ = ctx.round();
  if (!i_am_source_) {
    return;
  }
  SourceEntry self;
  self.source = id_;
  self.t_start = ctx.round();
  self.dist = 0;
  self.sigma =
      SoftFloat::from_u64(1, config_->wire.sf, config_->sigma_rounding);
  entry_index_[id_] = static_cast<std::int32_t>(entries_.size());
  entries_.push_back(std::move(self));
  BitWriter out;
  encode(out, config_->wire,
         WaveMsg{id_, 0, entries_.back().sigma});
  for (const NodeId nbr : ctx.neighbors()) {
    ctx.send(nbr, out);
  }
}

void BcProgram::advance_token(NodeContext& ctx) {
  CBC_CHECK(tree_.children_final(), "token moved before the tree was built");
  BitWriter out;
  encode(out, config_->wire, DfsTokenMsg{depth_estimate_});
  if (next_child_ < tree_.children().size()) {
    const NodeId child = tree_.children()[next_child_];
    ++next_child_;
    ctx.send(child, out);
    return;
  }
  if (!tree_.is_root()) {
    ctx.send(tree_.parent(), out);
  }
  // Root with all children visited: DFS complete; the phase switch takes
  // over once the waves drain.
}

void BcProgram::handle_phase_switch(NodeContext& ctx,
                                    const std::vector<ParsedMsg>& msgs) {
  for (const auto& msg : msgs) {
    if (const auto* up = std::get_if<EccUpMsg>(&msg.body)) {
      ++ecc_reports_;
      ecc_max_ = std::max(ecc_max_, up->ecc);
    } else if (const auto* down = std::get_if<PhaseDownMsg>(&msg.body)) {
      apply_phase_down(ctx, *down);
    }
  }

  if (!ecc_sent_ && tree_.children_final() &&
      entries_.size() == expected_sources_ &&
      ecc_reports_ == tree_.children().size()) {
    ecc_sent_ = true;
    const std::uint32_t subtree_ecc =
        std::max(ecc_max_, outputs_.eccentricity);
    if (tree_.is_root()) {
      // "Broadcast the diameter D to all nodes" + Algorithm 3 line 1:
      // announce (D, epoch) so every node resets its aggregation clock.
      // The root handles its own announcement inline (it receives no
      // PhaseDown message).
      apply_phase_down(ctx, PhaseDownMsg{
                                subtree_ecc,
                                ctx.round() + tree_.subtree_depth() + 2});
    } else {
      BitWriter out;
      encode(out, config_->wire, EccUpMsg{subtree_ecc});
      ctx.send(tree_.parent(), out);
    }
  }
}

void BcProgram::apply_phase_down(NodeContext& ctx, const PhaseDownMsg& down) {
  if (phase_down_seen_) {
    return;
  }
  phase_down_seen_ = true;
  diameter_ = down.diameter;
  epoch_ = down.epoch;
  outputs_.aggregation_epoch = epoch_;
  outputs_.diameter = diameter_;

  // Forward down the tree.
  BitWriter out;
  encode(out, config_->wire, down);
  for (const NodeId child : tree_.children()) {
    ctx.send(child, out);
  }

  if (config_->counting_only) {
    // APSP mode: the table and D are all the caller wants.
    finalize(ctx);
    return;
  }

  // Build the Algorithm-3 schedule: T_s(u) = epoch + T_s + D - d(s, u),
  // optionally rebased by the earliest T_s (ablation D6 — every node
  // subtracts the same constant, so orderings and Lemma 4 survive).
  std::uint64_t t_base = 0;
  if (config_->rebase_aggregation && !entries_.empty()) {
    t_base = entries_.front().t_start;
    for (const auto& entry : entries_) {
      t_base = std::min(t_base, entry.t_start);
    }
  }
  std::uint64_t t_max = 0;
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    t_max = std::max(t_max, entries_[i].t_start);
    if (entries_[i].dist >= 1) {
      CBC_CHECK(entries_[i].dist <= diameter_,
                "distance exceeds the broadcast diameter");
      agg_schedule_.push_back(ScheduledSend{
          epoch_ + (entries_[i].t_start - t_base) + diameter_ -
              entries_[i].dist,
          i});
    }
  }
  std::sort(agg_schedule_.begin(), agg_schedule_.end(),
            [](const ScheduledSend& a, const ScheduledSend& b) {
              return a.round < b.round;
            });
  if (config_->check_invariants) {
    // Lemma 4: all send times of one node are pairwise distinct.
    for (std::size_t i = 1; i < agg_schedule_.size(); ++i) {
      CBC_CHECK(agg_schedule_[i - 1].round < agg_schedule_[i].round,
                "Lemma 4 violated: two sends scheduled in one round");
    }
  }
  finalize_round_ = epoch_ + (t_max - t_base) + diameter_;
}

void BcProgram::handle_aggregation(NodeContext& ctx,
                                   const std::vector<ParsedMsg>& msgs) {
  for (const auto& msg : msgs) {
    const auto* agg = std::get_if<AggMsg>(&msg.body);
    if (agg == nullptr) {
      continue;
    }
    SourceEntry* entry = find_entry(agg->source);
    CBC_CHECK(entry != nullptr, "aggregation for an unknown source");
    entry->psi = add(entry->psi, agg->psi_value, config_->wire.sf,
                     config_->psi_rounding);
    entry->lambda = add(entry->lambda, agg->lambda_value, config_->wire.sf,
                        config_->psi_rounding);
  }

  if (!phase_down_seen_) {
    return;
  }
  while (agg_cursor_ < agg_schedule_.size() &&
         agg_schedule_[agg_cursor_].round == ctx.round()) {
    SourceEntry& entry = entries_[agg_schedule_[agg_cursor_].entry_index];
    ++agg_cursor_;
    // Algorithm 3 line 12: send 1/sigma_su + psi_s(u) to P_s(u); the
    // stress value 1 + lambda_s(u) rides in the same record.  Nodes that
    // do not count as endpoints (weighted-subdivision virtual nodes)
    // relay the accumulated values without their own term.
    SoftFloat psi_out = entry.psi;
    SoftFloat lambda_out = entry.lambda;
    if (i_am_target_) {
      psi_out =
          add(reciprocal(entry.sigma, config_->wire.sf, config_->psi_rounding),
              psi_out, config_->wire.sf, config_->psi_rounding);
      lambda_out =
          add(SoftFloat::from_u64(1, config_->wire.sf, config_->psi_rounding),
              lambda_out, config_->wire.sf, config_->psi_rounding);
    }
    entry.agg_send_round = ctx.round();
    BitWriter out;
    encode(out, config_->wire, AggMsg{entry.source, psi_out, lambda_out});
    for (const NodeId pred : entry.preds) {
      ctx.send(pred, out);
    }
  }
  if (agg_cursor_ < agg_schedule_.size()) {
    CBC_CHECK(agg_schedule_[agg_cursor_].round > ctx.round(),
              "missed a scheduled aggregation send");
  }
  if (ctx.round() >= finalize_round_) {
    finalize(ctx);
  }
}

void BcProgram::finalize(NodeContext& ctx) {
  double bc = 0.0;
  long double stress = 0.0L;
  for (const auto& entry : entries_) {
    if (entry.dist == 0) {
      continue;
    }
    // delta_s(u) = psi_s(u) * sigma_su (Algorithm 3 line 17); the product
    // must happen in soft-float space — sigma can overflow a double while
    // psi underflows it.
    const SoftFloat delta =
        multiply(entry.psi, entry.sigma, config_->wire.sf,
                 RoundingMode::kNearest);
    bc += delta.to_double();
    const SoftFloat stress_delta =
        multiply(entry.lambda, entry.sigma, config_->wire.sf,
                 RoundingMode::kNearest);
    stress += to_long_double(stress_delta);
  }
  const double source_scale =
      config_->scale_by_sources
          ? static_cast<double>(ctx.num_nodes()) /
                static_cast<double>(expected_sources_)
          : 1.0;
  const double scale = source_scale / (config_->halve ? 2.0 : 1.0);
  outputs_.betweenness = bc * scale;
  outputs_.stress = stress * static_cast<long double>(scale);
  const double scaled_sum =
      static_cast<double>(outputs_.sum_distances) * source_scale;
  outputs_.closeness = scaled_sum > 0 ? 1.0 / scaled_sum : 0.0;
  outputs_.graph_centrality =
      outputs_.eccentricity > 0
          ? 1.0 / static_cast<double>(outputs_.eccentricity)
          : 0.0;
  outputs_.finish_round = ctx.round();
  finished_ = true;
}

namespace {

void put_soft_float(BitWriter& w, const SoftFloat& value) {
  snap::put_u64(w, value.mantissa());
  snap::put_i64(w, value.exponent());
}

SoftFloat get_soft_float(BitReader& r) {
  const std::uint64_t mantissa = snap::get_u64(r);
  const std::int64_t exponent = snap::get_i64(r);
  return SoftFloat::make_raw(mantissa, exponent);
}

void put_opt_u64(BitWriter& w, const std::optional<std::uint64_t>& value) {
  snap::put_bool(w, value.has_value());
  if (value.has_value()) {
    snap::put_u64(w, *value);
  }
}

std::optional<std::uint64_t> get_opt_u64(BitReader& r) {
  if (!snap::get_bool(r)) {
    return std::nullopt;
  }
  return snap::get_u64(r);
}

}  // namespace

void BcProgram::save_state(BitWriter& w) const {
  tree_.save_state(w);
  snap::put_u64(w, entries_.size());
  for (const SourceEntry& entry : entries_) {
    snap::put_u64(w, entry.source);
    snap::put_u64(w, entry.t_start);
    snap::put_u64(w, entry.dist);
    put_soft_float(w, entry.sigma);
    snap::put_u64(w, entry.preds.size());
    for (const NodeId pred : entry.preds) {
      snap::put_u64(w, pred);
    }
    put_soft_float(w, entry.psi);
    put_soft_float(w, entry.lambda);
    snap::put_u64(w, entry.agg_send_round);
  }
  snap::put_bool(w, dfs_visited_);
  snap::put_u64(w, depth_estimate_);
  snap::put_u64(w, next_child_);
  put_opt_u64(w, pending_token_round_);
  put_opt_u64(w, my_bfs_round_opt_);
  snap::put_u64(w, my_bfs_round_);
  snap::put_u64(w, ecc_reports_);
  snap::put_u64(w, ecc_max_);
  snap::put_bool(w, ecc_sent_);
  snap::put_bool(w, phase_down_seen_);
  snap::put_u64(w, diameter_);
  snap::put_u64(w, epoch_);
  snap::put_u64(w, agg_schedule_.size());
  for (const ScheduledSend& send : agg_schedule_) {
    snap::put_u64(w, send.round);
    snap::put_u64(w, send.entry_index);
  }
  snap::put_u64(w, agg_cursor_);
  snap::put_u64(w, finalize_round_);
  snap::put_double(w, outputs_.betweenness);
  snap::put_double(w, outputs_.closeness);
  snap::put_double(w, outputs_.graph_centrality);
  snap::put_long_double(w, outputs_.stress);
  snap::put_u64(w, outputs_.eccentricity);
  snap::put_u64(w, outputs_.sum_distances);
  snap::put_u64(w, outputs_.diameter);
  snap::put_u64(w, outputs_.aggregation_epoch);
  snap::put_u64(w, outputs_.finish_round);
  snap::put_bool(w, finished_);
}

void BcProgram::load_state(BitReader& r) {
  tree_.load_state(r);
  const std::uint64_t num_entries = snap::get_count(r, 35);
  entries_.clear();
  entries_.reserve(num_entries);
  entry_index_.assign(config_->is_source.size(), -1);
  for (std::uint64_t i = 0; i < num_entries; ++i) {
    SourceEntry entry;
    entry.source = static_cast<NodeId>(snap::get_u64(r));
    CBC_CHECK(entry.source < entry_index_.size(),
              "snapshot entry references an out-of-range source");
    CBC_CHECK(entry_index_[entry.source] < 0,
              "snapshot holds two entries for one source");
    entry.t_start = snap::get_u64(r);
    entry.dist = static_cast<std::uint32_t>(snap::get_u64(r));
    entry.sigma = get_soft_float(r);
    const std::uint64_t num_preds = snap::get_count(r, 7);
    entry.preds.reserve(num_preds);
    for (std::uint64_t p = 0; p < num_preds; ++p) {
      entry.preds.push_back(static_cast<NodeId>(snap::get_u64(r)));
    }
    entry.psi = get_soft_float(r);
    entry.lambda = get_soft_float(r);
    entry.agg_send_round = snap::get_u64(r);
    entry_index_[entry.source] = static_cast<std::int32_t>(i);
    entries_.push_back(std::move(entry));
  }
  dfs_visited_ = snap::get_bool(r);
  depth_estimate_ = static_cast<std::uint32_t>(snap::get_u64(r));
  next_child_ = static_cast<std::size_t>(snap::get_u64(r));
  pending_token_round_ = get_opt_u64(r);
  my_bfs_round_opt_ = get_opt_u64(r);
  my_bfs_round_ = snap::get_u64(r);
  ecc_reports_ = static_cast<std::uint32_t>(snap::get_u64(r));
  ecc_max_ = static_cast<std::uint32_t>(snap::get_u64(r));
  ecc_sent_ = snap::get_bool(r);
  phase_down_seen_ = snap::get_bool(r);
  diameter_ = static_cast<std::uint32_t>(snap::get_u64(r));
  epoch_ = snap::get_u64(r);
  const std::uint64_t num_sends = snap::get_count(r, 14);
  agg_schedule_.clear();
  agg_schedule_.reserve(num_sends);
  for (std::uint64_t i = 0; i < num_sends; ++i) {
    ScheduledSend send;
    send.round = snap::get_u64(r);
    send.entry_index = static_cast<std::size_t>(snap::get_u64(r));
    CBC_CHECK(send.entry_index < entries_.size(),
              "snapshot aggregation schedule references a missing entry");
    agg_schedule_.push_back(send);
  }
  agg_cursor_ = static_cast<std::size_t>(snap::get_u64(r));
  finalize_round_ = snap::get_u64(r);
  outputs_.betweenness = snap::get_double(r);
  outputs_.closeness = snap::get_double(r);
  outputs_.graph_centrality = snap::get_double(r);
  outputs_.stress = snap::get_long_double(r);
  outputs_.eccentricity = static_cast<std::uint32_t>(snap::get_u64(r));
  outputs_.sum_distances = snap::get_u64(r);
  outputs_.diameter = static_cast<std::uint32_t>(snap::get_u64(r));
  outputs_.aggregation_epoch = snap::get_u64(r);
  outputs_.finish_round = snap::get_u64(r);
  finished_ = snap::get_bool(r);
}

}  // namespace congestbc
