#include "algo/apsp.hpp"

#include "common/assert.hpp"
#include "graph/properties.hpp"

namespace congestbc {

DistributedApspResult run_distributed_apsp(const Graph& g,
                                           DistributedBcOptions options) {
  options.counting_only = true;
  options.keep_tables = true;
  const auto raw = run_distributed_bc(g, options);

  const NodeId n = g.num_nodes();
  DistributedApspResult result;
  result.diameter = raw.diameter;
  result.eccentricities = raw.eccentricities;
  result.closeness = raw.closeness;
  result.graph_centrality = raw.graph_centrality;
  result.rounds = raw.rounds;
  result.metrics = raw.metrics;
  result.distances.assign(n, std::vector<std::uint32_t>(n, kUnreachable));
  result.sigma.assign(n, std::vector<double>(n, 0.0));
  for (NodeId v = 0; v < n; ++v) {
    for (const auto& entry : raw.tables[v]) {
      result.distances[v][entry.source] = entry.dist;
      result.sigma[v][entry.source] = entry.sigma.to_double();
    }
  }
  return result;
}

}  // namespace congestbc
