// The per-node program implementing the paper's distributed betweenness
// centrality pipeline (Algorithms 2 and 3) plus the closeness / graph /
// stress centralities that fall out of the same rounds.
//
// Five sub-phases run on every node (all within O(N) rounds total):
//   1. BFS-tree construction from the root (TreeBuilder; O(D) rounds).
//   2. DFS token traversal of that tree (Algorithm 2 line 1): on its first
//      visit a node waits one slot, then starts its own BFS wave.  The
//      token pause + per-hop latency guarantee the Holzer–Wattenhofer
//      separation T_t >= T_s + d(s,t) + 2, so concurrent BFS wavefronts
//      never meet on an edge (checked at runtime).
//   3. Counting (Algorithm 2 lines 7-21): each wave carries
//      (source, dist, sigma-hat); a node finalizes (d, sigma, P_s) for a
//      source the single round all its predecessors' messages arrive,
//      then forwards the wave.  sigma-hat is ceil-rounded soft-float
//      (Lemma 1: sigma <= sigma-hat <= (1+eta)^D sigma).
//   4. Phase switch (Algorithm 2 line 22 + Algorithm 3 line 1): once a
//      node holds entries for all sources, an eccentricity convergecast
//      climbs the tree; the root learns the diameter D and broadcasts
//      (D, epoch) down — the distributed realization of "reset the global
//      clock".
//   5. Aggregation (Algorithm 3): at round epoch + T_s + D - d(s,u), node
//      u sends 1/sigma_su + psi_s(u) (floor-rounded) to every predecessor
//      in P_s(u); Lemma 4 makes all send times per node distinct (checked
//      at runtime).  Stress centrality rides along: the same message
//      carries 1 + lambda_s(u).  After round epoch + max_s T_s + D every
//      node finalizes C_B, C_C, C_G, C_S locally.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "algo/bfs_tree.hpp"
#include "algo/parse.hpp"
#include "algo/wire.hpp"
#include "congest/node.hpp"
#include "fpa/soft_float.hpp"
#include "snapshot/snapshottable.hpp"

namespace congestbc {

/// Shared configuration (identical on every node — common knowledge).
struct BcProgramConfig {
  WireFormat wire;
  NodeId root = 0;
  /// sigma accumulates with ceil rounding, psi/lambda with floor rounding
  /// (DESIGN.md D2); configurable for the error-ablation benches.
  RoundingMode sigma_rounding = RoundingMode::kUp;
  RoundingMode psi_rounding = RoundingMode::kDown;
  /// Extra rounds the DFS token idles at each first visit (ablation D1;
  /// the paper's single slot corresponds to 0).
  unsigned dfs_extra_pause = 0;
  /// Ablation: let each BFS wave fully drain before the token moves on —
  /// the naive Theta(N*D) schedule the paper improves upon.
  bool sequential_counting = false;
  /// Which nodes start a BFS (all = exact algorithm; a subset = the
  /// sampled estimator).  Common knowledge via a shared seed.
  std::vector<bool> is_source;
  /// Which nodes count as shortest-path *endpoints* t in the dependency
  /// sums (Eq. 8).  A node with the flag cleared still relays psi/lambda
  /// but contributes no 1/sigma (resp. +1) term of its own — the
  /// restriction needed by the weighted-graph subdivision (virtual nodes
  /// are not endpoints).  Empty = all nodes count.
  std::vector<bool> counts_as_target;
  /// Scale the dependency sums by N/|sources| (the Brandes–Pich
  /// estimator).  Cleared for restricted-pair computations (weighted
  /// subdivision) where the partial sum *is* the answer.
  bool scale_by_sources = true;
  /// Verify the wavefront-separation and distinct-send-time invariants at
  /// runtime (cheap; throws InvariantError on violation).
  bool check_invariants = true;
  /// Undirected convention: halve the ordered-pair sums (paper Figure 1).
  bool halve = true;
  /// Rebase the Algorithm-3 schedule by the earliest source start time:
  /// T_s(u) = epoch + (T_s - min_s T_s) + D - d(s,u).  Saves the O(D+N)
  /// idle rounds the literal schedule spends replaying the pre-counting
  /// clock; all orderings (and Lemma 4) are preserved since every node
  /// subtracts the same constant.  Off by default (paper-faithful).
  bool rebase_aggregation = false;
  /// Stop after the counting phase + diameter broadcast (no Algorithm 3):
  /// the node then holds the full APSP table (distances, sigma, P_s) and
  /// the distance-based centralities, but no betweenness/stress.
  bool counting_only = false;
};

/// One row of L_v (paper Table I / Algorithm 2 line 20).
struct SourceEntry {
  NodeId source = 0;
  std::uint64_t t_start = 0;  ///< T_s
  std::uint32_t dist = 0;     ///< d(s, v)
  SoftFloat sigma;            ///< sigma-hat_sv (ceil-rounded)
  std::vector<NodeId> preds;  ///< P_s(v)
  SoftFloat psi;              ///< accumulated psi-hat_s(v)
  SoftFloat lambda;           ///< accumulated lambda-hat_s(v) (stress)
  std::uint64_t agg_send_round = 0;  ///< absolute round of the Alg.3 send
};

/// Final per-node outputs.
struct NodeOutputs {
  double betweenness = 0.0;
  double closeness = 0.0;
  double graph_centrality = 0.0;
  long double stress = 0.0L;
  std::uint32_t eccentricity = 0;     ///< over the sampled sources
  std::uint64_t sum_distances = 0;    ///< over the sampled sources
  std::uint32_t diameter = 0;         ///< global D learned from the root
  std::uint64_t aggregation_epoch = 0;
  std::uint64_t finish_round = 0;
};

/// The full pipeline on one node.
class BcProgram final : public NodeProgram, public Snapshottable {
 public:
  BcProgram(NodeId id, const BcProgramConfig& config);

  void on_round(NodeContext& ctx) override;
  bool done() const override { return finished_; }

  /// Frontier-scheduling contract: the earliest round >= `from` with a
  /// pending spontaneous action.  Every timer of the five sub-phases is
  /// enumerated; everything else the program does is a reaction to an
  /// inbound message (which wakes the node regardless).  Fired one-shot
  /// timers are excluded — my_bfs_round_opt_ stays set after its exact-
  /// equality round has passed, so it only counts while still >= from.
  std::uint64_t next_active_round(std::uint64_t from) const override;

  /// Checkpoint support: serializes the evolving state of all five
  /// sub-phases (the L_v table, DFS/phase-switch/aggregation cursors,
  /// outputs).  Config-derived fields (entry_index_, expected_sources_,
  /// source/target flags) are rebuilt, not stored.
  void save_state(BitWriter& w) const override;
  void load_state(BitReader& r) override;

  const NodeOutputs& outputs() const { return outputs_; }
  /// L_v, ordered by source discovery time (== T_s order).
  const std::vector<SourceEntry>& table() const { return entries_; }
  const TreeBuilder& tree() const { return tree_; }
  /// T_v — the round this node's own BFS wave was sent (source nodes only).
  std::uint64_t bfs_start_round() const { return my_bfs_round_; }

  /// Approximate resident state of this node (bytes): the L_v table plus
  /// the aggregation schedule.  CONGEST leaves local memory unrestricted;
  /// this documents the O(N log N)-bits-per-node footprint empirically.
  std::size_t state_bytes() const;

 private:
  void handle_wave_msgs(NodeContext& ctx, const std::vector<ParsedMsg>& msgs);
  void handle_dfs(NodeContext& ctx, const std::vector<ParsedMsg>& msgs);
  void handle_phase_switch(NodeContext& ctx,
                           const std::vector<ParsedMsg>& msgs);
  void apply_phase_down(NodeContext& ctx, const PhaseDownMsg& down);
  void handle_aggregation(NodeContext& ctx,
                          const std::vector<ParsedMsg>& msgs);
  void advance_token(NodeContext& ctx);
  void start_own_bfs(NodeContext& ctx);
  void finalize(NodeContext& ctx);
  SourceEntry* find_entry(NodeId source);
  std::uint64_t token_pause() const;

  NodeId id_;
  const BcProgramConfig* config_;
  TreeBuilder tree_;

  // --- counting state ---
  std::vector<SourceEntry> entries_;
  std::vector<std::int32_t> entry_index_;  ///< source id -> index or -1
  std::uint32_t expected_sources_ = 0;
  bool i_am_source_ = true;
  bool i_am_target_ = true;

  // --- DFS state ---
  bool dfs_visited_ = false;
  std::uint32_t depth_estimate_ = 0;
  std::size_t next_child_ = 0;
  std::optional<std::uint64_t> pending_token_round_;
  std::optional<std::uint64_t> my_bfs_round_opt_;
  std::uint64_t my_bfs_round_ = 0;

  // --- phase switch state ---
  std::uint32_t ecc_reports_ = 0;
  std::uint32_t ecc_max_ = 0;
  bool ecc_sent_ = false;
  bool phase_down_seen_ = false;
  std::uint32_t diameter_ = 0;
  std::uint64_t epoch_ = 0;

  // --- aggregation state ---
  struct ScheduledSend {
    std::uint64_t round;
    std::size_t entry_index;
  };
  std::vector<ScheduledSend> agg_schedule_;
  std::size_t agg_cursor_ = 0;
  std::uint64_t finalize_round_ = 0;

  NodeOutputs outputs_;
  bool finished_ = false;
};

/// Converts a soft-float to long double (exponents beyond double range —
/// stress totals can exceed 2^1024).
long double to_long_double(const SoftFloat& value);

}  // namespace congestbc
