#include "algo/bfs_tree.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "snapshot/snapshot.hpp"

namespace congestbc {

std::vector<ParsedMsg> parse_inbox(const NodeContext& ctx,
                                   const WireFormat& fmt) {
  std::vector<ParsedMsg> result;
  for (const auto& inbound : ctx.inbox()) {
    BitReader reader = inbound.reader();
    while (reader.remaining() > 0) {
      ParsedMsg msg;
      msg.from = inbound.from();
      switch (read_kind(reader)) {
        case MsgKind::kTreeWave:
          msg.body = decode_tree_wave(reader, fmt);
          break;
        case MsgKind::kParentAccept:
          msg.body = ParentAcceptMsg{};
          break;
        case MsgKind::kSubtreeUp:
          msg.body = decode_subtree_up(reader, fmt);
          break;
        case MsgKind::kDfsToken:
          msg.body = decode_dfs_token(reader, fmt);
          break;
        case MsgKind::kWave:
          msg.body = decode_wave(reader, fmt);
          break;
        case MsgKind::kEccUp:
          msg.body = decode_ecc_up(reader, fmt);
          break;
        case MsgKind::kPhaseDown:
          msg.body = decode_phase_down(reader, fmt);
          break;
        case MsgKind::kAgg:
          msg.body = decode_agg(reader, fmt);
          break;
        case MsgKind::kEdgeCount:
          msg.body = decode_edge_count(reader, fmt);
          break;
        case MsgKind::kEdgeItem:
          msg.body = decode_edge_item(reader, fmt);
          break;
        case MsgKind::kResult:
          msg.body = decode_result(reader, fmt);
          break;
      }
      result.push_back(std::move(msg));
    }
  }
  return result;
}

void TreeBuilder::on_round(NodeContext& ctx, const std::vector<ParsedMsg>& msgs) {
  bool adopted_this_round = false;

  // Root bootstrap in its very first round.
  if (!started_ && is_root()) {
    started_ = true;
    has_dist_ = true;
    dist_ = 0;
    parent_ = id_;
    wave_round_ = ctx.round();
    BitWriter wave;
    encode(wave, *fmt_, TreeWaveMsg{dist_});
    for (const NodeId nbr : ctx.neighbors()) {
      ctx.send(nbr, wave);
    }
  }

  for (const auto& msg : msgs) {
    if (const auto* wave = std::get_if<TreeWaveMsg>(&msg.body)) {
      if (!has_dist_) {
        // All first-contact waves arrive in this same round with the same
        // dist; pick the smallest-id sender as parent (deterministic).
        if (!adopted_this_round || msg.from < parent_) {
          parent_ = msg.from;
        }
        dist_ = wave->dist + 1;
        adopted_this_round = true;
      }
    } else if (std::get_if<ParentAcceptMsg>(&msg.body) != nullptr) {
      CBC_CHECK(has_dist_ && !children_final_,
                "ParentAccept outside the expected window");
      children_.push_back(msg.from);
    } else if (const auto* up = std::get_if<SubtreeUpMsg>(&msg.body)) {
      child_reports_.push_back(*up);
    }
  }

  if (adopted_this_round) {
    has_dist_ = true;
    started_ = true;
    wave_round_ = ctx.round();
    BitWriter accept;
    encode(accept, *fmt_, ParentAcceptMsg{});
    ctx.send(parent_, accept);
    BitWriter wave;
    encode(wave, *fmt_, TreeWaveMsg{dist_});
    for (const NodeId nbr : ctx.neighbors()) {
      ctx.send(nbr, wave);
    }
  }

  // Two rounds after our wave, every potential child has answered.
  if (has_dist_ && !children_final_ && ctx.round() == wave_round_ + 2) {
    finalize_children(ctx);
  }
  if (children_final_ && !subtree_reported_) {
    maybe_report(ctx);
  }
}

void TreeBuilder::finalize_children(NodeContext& ctx) {
  (void)ctx;
  std::sort(children_.begin(), children_.end());
  children_final_ = true;
}

void TreeBuilder::maybe_report(NodeContext& ctx) {
  if (child_reports_.size() < children_.size()) {
    return;
  }
  CBC_CHECK(child_reports_.size() == children_.size(),
            "more subtree reports than children");
  subtree_count_ = 1;
  subtree_depth_ = dist_;
  for (const auto& report : child_reports_) {
    subtree_count_ += report.count;
    subtree_depth_ = std::max(subtree_depth_, report.depth);
  }
  if (is_root()) {
    CBC_CHECK(subtree_count_ == ctx.num_nodes(),
              "BFS tree did not cover the graph — is it connected?");
    tree_complete_ = true;
  } else {
    BitWriter up;
    encode(up, *fmt_, SubtreeUpMsg{subtree_count_, subtree_depth_});
    ctx.send(parent_, up);
  }
  subtree_reported_ = true;
}

void TreeBuilder::save_state(BitWriter& w) const {
  snap::put_bool(w, started_);
  snap::put_bool(w, has_dist_);
  snap::put_u64(w, dist_);
  snap::put_u64(w, parent_);
  snap::put_u64(w, wave_round_);
  snap::put_bool(w, children_final_);
  snap::put_u64(w, children_.size());
  for (const NodeId child : children_) {
    snap::put_u64(w, child);
  }
  snap::put_u64(w, child_reports_.size());
  for (const SubtreeUpMsg& report : child_reports_) {
    snap::put_u64(w, report.count);
    snap::put_u64(w, report.depth);
  }
  snap::put_bool(w, subtree_reported_);
  snap::put_bool(w, tree_complete_);
  snap::put_u64(w, subtree_count_);
  snap::put_u64(w, subtree_depth_);
}

void TreeBuilder::load_state(BitReader& r) {
  started_ = snap::get_bool(r);
  has_dist_ = snap::get_bool(r);
  dist_ = static_cast<std::uint32_t>(snap::get_u64(r));
  parent_ = static_cast<NodeId>(snap::get_u64(r));
  wave_round_ = snap::get_u64(r);
  children_final_ = snap::get_bool(r);
  const std::uint64_t num_children = snap::get_count(r, 7);
  children_.clear();
  children_.reserve(num_children);
  for (std::uint64_t i = 0; i < num_children; ++i) {
    children_.push_back(static_cast<NodeId>(snap::get_u64(r)));
  }
  const std::uint64_t num_reports = snap::get_count(r, 14);
  child_reports_.clear();
  child_reports_.reserve(num_reports);
  for (std::uint64_t i = 0; i < num_reports; ++i) {
    SubtreeUpMsg report;
    report.count = static_cast<std::uint32_t>(snap::get_u64(r));
    report.depth = static_cast<std::uint32_t>(snap::get_u64(r));
    child_reports_.push_back(report);
  }
  subtree_reported_ = snap::get_bool(r);
  tree_complete_ = snap::get_bool(r);
  subtree_count_ = static_cast<std::uint32_t>(snap::get_u64(r));
  subtree_depth_ = static_cast<std::uint32_t>(snap::get_u64(r));
}

void BfsTreeProgram::on_round(NodeContext& ctx) {
  const auto msgs = parse_inbox(ctx, fmt_);
  builder_.on_round(ctx, msgs);
}

bool BfsTreeProgram::done() const {
  return builder_.subtree_reported();
}

}  // namespace congestbc
