#include "algo/gather_baseline.hpp"

#include "central/brandes.hpp"
#include "common/assert.hpp"

namespace congestbc {

GatherBcProgram::GatherBcProgram(NodeId id, const Config& config)
    : id_(id), config_(&config), tree_(id, config.root, config.wire) {}

void GatherBcProgram::on_round(NodeContext& ctx) {
  if (finished_) {
    return;
  }
  const auto msgs = parse_inbox(ctx, config_->wire);
  tree_.on_round(ctx, msgs);

  const bool is_root = tree_.is_root();
  for (const auto& msg : msgs) {
    if (const auto* count = std::get_if<EdgeCountMsg>(&msg.body)) {
      ++count_reports_;
      subtree_edge_total_ += count->count;
    } else if (const auto* item = std::get_if<EdgeItemMsg>(&msg.body)) {
      if (is_root) {
        collected_.push_back(Edge{item->u, item->v});
      } else {
        upstream_queue_.push_back(*item);
      }
    } else if (const auto* result = std::get_if<ResultMsg>(&msg.body)) {
      ++results_seen_;
      // Forward down the tree the round it arrives (1/round pipelining).
      BitWriter out;
      encode(out, config_->wire, *result);
      for (const NodeId child : tree_.children()) {
        ctx.send(child, out);
      }
      if (result->node == id_) {
        betweenness_ = result->value.to_double();
        have_own_value_ = true;
      }
      if (results_seen_ == ctx.num_nodes()) {
        CBC_CHECK(have_own_value_, "result stream missed this node");
        finished_ = true;
      }
    }
  }

  // Enqueue the edges this node owns (the smaller endpoint owns an edge).
  if (tree_.children_final() && !edges_enqueued_) {
    edges_enqueued_ = true;
    for (const NodeId nbr : ctx.neighbors()) {
      if (id_ < nbr) {
        ++own_edge_count_;
        if (is_root) {
          collected_.push_back(Edge{id_, nbr});
        } else {
          upstream_queue_.push_back(EdgeItemMsg{id_, nbr});
        }
      }
    }
  }

  maybe_report_edge_count(ctx);

  // Stream one edge per round toward the root.
  if (!is_root && !upstream_queue_.empty() && tree_.has_dist()) {
    BitWriter out;
    encode(out, config_->wire, upstream_queue_.front());
    upstream_queue_.pop_front();
    ctx.send(tree_.parent(), out);
  }

  if (is_root) {
    root_compute(ctx);
    if (computed_ && !downstream_queue_.empty()) {
      BitWriter out;
      encode(out, config_->wire, downstream_queue_.front());
      downstream_queue_.pop_front();
      for (const NodeId child : tree_.children()) {
        ctx.send(child, out);
      }
    }
    if (computed_ && downstream_queue_.empty()) {
      finished_ = true;
    }
  }
}

void GatherBcProgram::maybe_report_edge_count(NodeContext& ctx) {
  if (count_reported_ || !tree_.children_final() ||
      count_reports_ != tree_.children().size() || !edges_enqueued_) {
    return;
  }
  count_reported_ = true;
  const std::uint64_t total = own_edge_count_ + subtree_edge_total_;
  if (tree_.is_root()) {
    expected_edges_ = total;
  } else {
    BitWriter out;
    encode(out, config_->wire, EdgeCountMsg{total});
    ctx.send(tree_.parent(), out);
  }
}

void GatherBcProgram::root_compute(NodeContext& ctx) {
  if (computed_ || !expected_edges_.has_value() ||
      collected_.size() < *expected_edges_) {
    return;
  }
  CBC_CHECK(collected_.size() == *expected_edges_,
            "root collected more edges than announced");
  // Local computation is unrestricted in the model: rebuild the graph and
  // run centralized Brandes.
  const Graph g(ctx.num_nodes(), collected_);
  const auto bc = brandes_bc(g, BcOptions{config_->halve});
  betweenness_ = bc[id_];
  have_own_value_ = true;
  for (NodeId v = 0; v < ctx.num_nodes(); ++v) {
    downstream_queue_.push_back(ResultMsg{
        v, SoftFloat::from_double(bc[v], config_->wire.sf,
                                  RoundingMode::kNearest)});
  }
  computed_ = true;
}

GatherBcResult run_gather_bc(const Graph& g, NodeId root, bool halve) {
  CBC_EXPECTS(g.num_nodes() >= 1, "empty graph");
  CBC_EXPECTS(root < g.num_nodes(), "root out of range");
  GatherBcProgram::Config config{
      WireFormat::for_graph(g.num_nodes(),
                            SoftFloatFormat::for_graph(g.num_nodes())),
      root, halve};

  NetworkConfig net_config;
  net_config.bits_per_edge_per_round = congest_budget_bits(g.num_nodes());
  Network network(g, net_config);

  std::vector<std::unique_ptr<NodeProgram>> programs;
  std::vector<GatherBcProgram*> views;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    auto program = std::make_unique<GatherBcProgram>(v, config);
    views.push_back(program.get());
    programs.push_back(std::move(program));
  }
  GatherBcResult result;
  result.metrics = network.run(programs);
  result.rounds = result.metrics.rounds;
  result.betweenness.resize(g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    result.betweenness[v] = views[v]->betweenness();
  }
  return result;
}

}  // namespace congestbc
