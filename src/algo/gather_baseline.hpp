// The gather-at-root baseline — the canonical CONGEST strawman the
// paper's distributed algorithm competes against.
//
// Protocol: build a BFS tree; convergecast the subtree edge counts; then
// stream every edge up the tree (one edge record per tree edge per round
// — CONGEST's pipelining limit); the root reconstructs the whole graph,
// runs *centralized* Brandes locally (local computation is free in the
// model), and streams the N (node, C_B) results back down.
//
// Cost: Theta(D + M + N) rounds — matching the paper's O(N) only on
// sparse graphs and degrading to Theta(N^2) on dense ones, while the
// paper's algorithm stays O(N) regardless of M.  bench_gather shows the
// crossover.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

#include "algo/bfs_tree.hpp"
#include "algo/parse.hpp"
#include "congest/metrics.hpp"
#include "congest/network.hpp"
#include "fpa/soft_float.hpp"

namespace congestbc {

/// Per-node program of the gather baseline.
class GatherBcProgram final : public NodeProgram {
 public:
  struct Config {
    WireFormat wire;
    NodeId root = 0;
    bool halve = true;
  };

  GatherBcProgram(NodeId id, const Config& config);

  void on_round(NodeContext& ctx) override;
  bool done() const override { return finished_; }

  double betweenness() const { return betweenness_; }

 private:
  void maybe_report_edge_count(NodeContext& ctx);
  void root_compute(NodeContext& ctx);

  NodeId id_;
  const Config* config_;
  TreeBuilder tree_;

  bool edges_enqueued_ = false;
  std::uint64_t own_edge_count_ = 0;
  std::uint64_t subtree_edge_total_ = 0;
  std::uint32_t count_reports_ = 0;
  bool count_reported_ = false;
  std::deque<EdgeItemMsg> upstream_queue_;

  // Root side.
  std::vector<Edge> collected_;
  std::optional<std::uint64_t> expected_edges_;
  bool computed_ = false;
  std::deque<ResultMsg> downstream_queue_;

  // Everyone: results flowing down.
  std::uint32_t results_seen_ = 0;
  bool have_own_value_ = false;
  double betweenness_ = 0.0;
  bool finished_ = false;
};

/// Result of a gather-baseline run.
struct GatherBcResult {
  std::vector<double> betweenness;
  std::uint64_t rounds = 0;
  RunMetrics metrics;
};

/// Runs the baseline on a connected graph.
GatherBcResult run_gather_bc(const Graph& g, NodeId root = 0,
                             bool halve = true);

}  // namespace congestbc
