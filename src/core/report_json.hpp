// JSON serialization of analysis results — the machine-readable side of
// the CLI (congestbc_cli --json) and a stable interchange format for
// downstream tooling (plotting, dashboards, regression tracking).
//
// The writer is deliberately minimal: objects, arrays, strings, numbers —
// everything the reports need and nothing more.
#pragma once

#include <string>

#include "algo/bc_pipeline.hpp"
#include "core/runner.hpp"

namespace congestbc {

/// Minimal JSON document builder (RFC 8259 subset: no unicode escapes
/// beyond the mandatory control characters).
class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();
  /// Object key (must be inside an object, before its value).
  JsonWriter& key(const std::string& name);
  JsonWriter& value(const std::string& text);
  JsonWriter& value(double number);
  JsonWriter& value(std::uint64_t number);
  JsonWriter& value(bool flag);

  const std::string& str() const { return out_; }

 private:
  void comma();
  void value_unchecked_string(const std::string& text);

  std::string out_;
  /// Tracks whether a separator is needed at each nesting level.
  std::vector<bool> needs_comma_{false};
  bool after_key_ = false;
};

/// Serializes the distributed result: centralities, diameter, rounds,
/// traffic metrics.
std::string to_json(const DistributedBcResult& result);

/// Serializes a full analysis report (distributed result + parity).
std::string to_json(const AnalysisReport& report);

}  // namespace congestbc
