#include "core/thread_pool.hpp"

#include <chrono>
#include <utility>

namespace congestbc {

unsigned ThreadPool::hardware_threads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

ThreadPool::ThreadPool(unsigned threads)
    : total_(threads == 0 ? hardware_threads() : threads) {
  errors_.resize(total_);
  workers_.reserve(total_ - 1);
  for (unsigned lane = 1; lane < total_; ++lane) {
    workers_.emplace_back([this, lane] { worker_loop(lane); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  start_cv_.notify_all();
  for (std::thread& w : workers_) {
    w.join();
  }
}

void ThreadPool::run_chunk(unsigned lane) {
  // Static partition: chunk boundaries depend only on (count, total_).
  const std::size_t begin = job_count_ * lane / total_;
  const std::size_t end = job_count_ * (lane + 1) / total_;
  try {
    if (begin < end) {
      if (lane_job_ != nullptr) {
        (*lane_job_)(lane, begin, end);
      } else {
        (*job_)(begin, end);
      }
    }
  } catch (...) {
    errors_[lane] = std::current_exception();
  }
}

void ThreadPool::worker_loop(unsigned lane) {
  std::uint64_t seen = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      start_cv_.wait(lock,
                     [&] { return stopping_ || generation_ != seen; });
      if (stopping_) {
        return;
      }
      seen = generation_;
    }
    run_chunk(lane);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (--unfinished_ == 0) {
        done_cv_.notify_all();
      }
    }
  }
}

void ThreadPool::parallel_ranges(
    std::size_t count,
    const std::function<void(std::size_t, std::size_t)>& fn) {
  if (total_ == 1 || count <= 1) {
    if (count > 0) {
      fn(0, count);
    }
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    job_count_ = count;
    job_ = &fn;
    lane_job_ = nullptr;
    for (auto& e : errors_) {
      e = nullptr;
    }
    unfinished_ = total_ - 1;
    ++generation_;
  }
  start_cv_.notify_all();
  run_chunk(0);
  {
    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait(lock, [&] { return unfinished_ == 0; });
    job_ = nullptr;
  }
  for (const std::exception_ptr& e : errors_) {
    if (e != nullptr) {
      std::rethrow_exception(e);
    }
  }
}

void ThreadPool::parallel_ranges(
    std::size_t count,
    const std::function<void(unsigned, std::size_t, std::size_t)>& fn) {
  if (total_ == 1 || count <= 1) {
    if (count > 0) {
      fn(0, 0, count);
    }
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    job_count_ = count;
    lane_job_ = &fn;
    job_ = nullptr;
    for (auto& e : errors_) {
      e = nullptr;
    }
    unfinished_ = total_ - 1;
    ++generation_;
  }
  start_cv_.notify_all();
  run_chunk(0);
  {
    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait(lock, [&] { return unfinished_ == 0; });
    lane_job_ = nullptr;
  }
  for (const std::exception_ptr& e : errors_) {
    if (e != nullptr) {
      std::rethrow_exception(e);
    }
  }
}

// ---------------------------------------------------------- WorkerPool

WorkerPool::WorkerPool(unsigned threads)
    : total_(threads == 0 ? ThreadPool::hardware_threads() : threads) {
  workers_.reserve(total_);
  for (unsigned i = 0; i < total_; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

WorkerPool::~WorkerPool() { stop(); }

void WorkerPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) {
      return;
    }
    queue_.push_back(std::move(task));
  }
  work_cv_.notify_one();
}

std::size_t WorkerPool::pending() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

void WorkerPool::drain() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_cv_.wait(lock, [&] { return queue_.empty() && running_ == 0; });
}

void WorkerPool::stop() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) {
      return;
    }
    stopping_ = true;
    queue_.clear();
  }
  work_cv_.notify_all();
  for (std::thread& w : workers_) {
    if (w.joinable()) {
      w.join();
    }
  }
}

void WorkerPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [&] { return stopping_ || !queue_.empty(); });
      if (stopping_) {
        return;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
      ++running_;
    }
    busy_.fetch_add(1, std::memory_order_relaxed);
    const auto start = std::chrono::steady_clock::now();
    task();
    const auto end = std::chrono::steady_clock::now();
    busy_.fetch_sub(1, std::memory_order_relaxed);
    busy_nanos_.fetch_add(
        static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(end - start)
                .count()),
        std::memory_order_relaxed);
    completed_.fetch_add(1, std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (--running_ == 0 && queue_.empty()) {
        idle_cv_.notify_all();
      }
    }
  }
}

}  // namespace congestbc
