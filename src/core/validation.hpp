// Error metrics for comparing centrality vectors — used by the test suite
// and by every bench that reports "distributed vs Brandes" parity.
#pragma once

#include <cstddef>
#include <vector>

namespace congestbc {

/// Summary of elementwise differences between an estimate and a reference.
struct ErrorStats {
  double max_abs_error = 0.0;
  double max_rel_error = 0.0;  ///< relative to max(|ref|, floor)
  double mean_abs_error = 0.0;
  std::size_t worst_index = 0;
};

/// Compares estimate against reference.  `rel_floor` guards the relative
/// error of near-zero reference entries.
ErrorStats compare_vectors(const std::vector<double>& estimate,
                           const std::vector<double>& reference,
                           double rel_floor = 1e-9);

/// Long-double reference overload (exact Brandes ground truth).
ErrorStats compare_vectors(const std::vector<double>& estimate,
                           const std::vector<long double>& reference,
                           double rel_floor = 1e-9);

/// Spearman-style top-k overlap: fraction of the true top-k nodes that
/// appear in the estimated top-k (used by the sampling benches — ranking
/// is what approximate BC is used for in practice).
double top_k_overlap(const std::vector<double>& estimate,
                     const std::vector<double>& reference, std::size_t k);

}  // namespace congestbc
