#include "core/validation.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/assert.hpp"

namespace congestbc {

namespace {
template <typename Ref>
ErrorStats compare_impl(const std::vector<double>& estimate,
                        const std::vector<Ref>& reference, double rel_floor) {
  CBC_EXPECTS(estimate.size() == reference.size(), "size mismatch");
  CBC_EXPECTS(!estimate.empty(), "empty vectors");
  ErrorStats stats;
  double total_abs = 0.0;
  for (std::size_t i = 0; i < estimate.size(); ++i) {
    const double ref = static_cast<double>(reference[i]);
    const double abs_err = std::abs(estimate[i] - ref);
    const double rel_err = abs_err / std::max(std::abs(ref), rel_floor);
    total_abs += abs_err;
    if (rel_err > stats.max_rel_error) {
      stats.max_rel_error = rel_err;
      stats.worst_index = i;
    }
    stats.max_abs_error = std::max(stats.max_abs_error, abs_err);
  }
  stats.mean_abs_error = total_abs / static_cast<double>(estimate.size());
  return stats;
}
}  // namespace

ErrorStats compare_vectors(const std::vector<double>& estimate,
                           const std::vector<double>& reference,
                           double rel_floor) {
  return compare_impl(estimate, reference, rel_floor);
}

ErrorStats compare_vectors(const std::vector<double>& estimate,
                           const std::vector<long double>& reference,
                           double rel_floor) {
  return compare_impl(estimate, reference, rel_floor);
}

double top_k_overlap(const std::vector<double>& estimate,
                     const std::vector<double>& reference, std::size_t k) {
  CBC_EXPECTS(estimate.size() == reference.size(), "size mismatch");
  CBC_EXPECTS(k >= 1 && k <= estimate.size(), "k out of range");
  auto top_indices = [k](const std::vector<double>& values) {
    std::vector<std::size_t> order(values.size());
    std::iota(order.begin(), order.end(), 0);
    std::partial_sort(order.begin(),
                      order.begin() + static_cast<std::ptrdiff_t>(k),
                      order.end(), [&](std::size_t a, std::size_t b) {
                        if (values[a] != values[b]) {
                          return values[a] > values[b];
                        }
                        return a < b;
                      });
    order.resize(k);
    std::sort(order.begin(), order.end());
    return order;
  };
  const auto top_est = top_indices(estimate);
  const auto top_ref = top_indices(reference);
  std::vector<std::size_t> common;
  std::set_intersection(top_est.begin(), top_est.end(), top_ref.begin(),
                        top_ref.end(), std::back_inserter(common));
  return static_cast<double>(common.size()) / static_cast<double>(k);
}

}  // namespace congestbc
