// The repository-level public API.
//
// A downstream user hands Runner a graph and gets back every centrality
// the paper touches — computed by the O(N)-round distributed algorithm —
// together with the simulator's cost metrics and (optionally) a
// centralized-Brandes cross-check.
//
//   congestbc::Runner runner(graph);
//   auto report = runner.analyze();
//   report.distributed.betweenness[v];   // C_B(v)
//   report.metrics.rounds;               // CONGEST rounds used
//   report.parity->max_rel_error;        // vs centralized Brandes
#pragma once

#include <optional>
#include <string>

#include "algo/bc_pipeline.hpp"
#include "core/validation.hpp"
#include "graph/graph.hpp"

namespace congestbc {

/// What the analysis should include beyond the distributed run itself.
struct AnalysisOptions {
  DistributedBcOptions distributed;
  /// Also run centralized Brandes and attach an ErrorStats cross-check.
  bool compare_with_brandes = true;
  /// Use the exact BigUint/long-double Brandes as the reference (slower;
  /// needed when path counts overflow doubles).
  bool exact_reference = false;
};

/// Everything a single analysis produces.
struct AnalysisReport {
  DistributedBcResult distributed;
  RunMetrics metrics;  ///< alias of distributed.metrics, for convenience
  /// Present when compare_with_brandes: distributed vs centralized BC.
  std::optional<ErrorStats> parity;
  /// One-paragraph human-readable summary (rounds, bits, parity).
  std::string summary() const;
};

/// High-level facade around the distributed pipeline + baselines.
class Runner {
 public:
  /// The graph must be connected (the model's standing assumption);
  /// throws PreconditionError otherwise.  The graph is stored by value so
  /// a Runner can safely outlive its argument.
  explicit Runner(Graph graph);

  /// Runs the distributed pipeline (and baseline cross-check) once.
  AnalysisReport analyze(const AnalysisOptions& options = {}) const;

  const Graph& graph() const { return graph_; }

 private:
  Graph graph_;
};

}  // namespace congestbc
