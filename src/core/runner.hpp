// The repository-level public API.
//
// A downstream user hands Runner a graph and gets back every centrality
// the paper touches — computed by the O(N)-round distributed algorithm —
// together with the simulator's cost metrics and (optionally) a
// centralized-Brandes cross-check.
//
//   congestbc::Runner runner(graph);
//   auto report = runner.analyze();
//   report.distributed.betweenness[v];   // C_B(v)
//   report.metrics.rounds;               // CONGEST rounds used
//   report.parity->max_rel_error;        // vs centralized Brandes
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "algo/bc_pipeline.hpp"
#include "core/validation.hpp"
#include "graph/graph.hpp"

namespace congestbc {

/// How a watchdogged run ended.
enum class RunStatus : std::uint8_t {
  kComplete,          ///< every node finished; result is exact
  kSuspended,         ///< halted at options.halt_at_round; a snapshot of the
                      ///< boundary state was captured for --resume
  kStall,             ///< watchdog fired; faults starved the protocol
  kCrashPartition,    ///< watchdog fired and the permanent faults provably
                      ///< disconnect the surviving subgraph
  kRoundLimit,        ///< max_rounds exhausted
  kCongestViolation,  ///< a program broke the bit budget
  kError,             ///< any other failure (message in detail)
};

const char* to_string(RunStatus status);

/// Per-node progress snapshot at the moment the run ended.
struct NodeCompletion {
  bool done = false;
  /// Sources this node has an L_v entry for — how far its counting phase
  /// got before the failure.
  std::uint32_t sources_counted = 0;
};

/// Structured result of run_bc_with_watchdog: instead of an exception, a
/// classified status plus whatever the nodes had computed when the run
/// ended.  On kComplete, `result` equals run_distributed_bc's output; on
/// failure it is the partial harvest (unfinished nodes report the outputs
/// they held at the failure round — typically zeros).
struct RunOutcome {
  RunStatus status = RunStatus::kComplete;
  /// The underlying error message when status != kComplete.
  std::string detail;
  DistributedBcResult result;
  std::vector<NodeCompletion> completion;  // one entry per node
  std::uint32_t nodes_finished = 0;
  /// Reliable-transport retransmissions (0 without it).
  std::uint64_t retransmissions = 0;

  bool complete() const { return status == RunStatus::kComplete; }
  /// One-line human-readable outcome (CLI, logs).
  std::string summary() const;
};

/// Runs the distributed pipeline under the stall watchdog and classifies
/// the outcome instead of throwing: graceful degradation for faulty runs.
/// PreconditionErrors (bad options) still throw.
RunOutcome run_bc_with_watchdog(const Graph& g,
                                const DistributedBcOptions& options = {});

/// What the analysis should include beyond the distributed run itself.
struct AnalysisOptions {
  DistributedBcOptions distributed;
  /// Also run centralized Brandes and attach an ErrorStats cross-check.
  bool compare_with_brandes = true;
  /// Use the exact BigUint/long-double Brandes as the reference (slower;
  /// needed when path counts overflow doubles).
  bool exact_reference = false;
};

/// Everything a single analysis produces.
struct AnalysisReport {
  DistributedBcResult distributed;
  RunMetrics metrics;  ///< alias of distributed.metrics, for convenience
  /// Present when compare_with_brandes: distributed vs centralized BC.
  std::optional<ErrorStats> parity;
  /// One-paragraph human-readable summary (rounds, bits, parity).
  std::string summary() const;
};

/// High-level facade around the distributed pipeline + baselines.
class Runner {
 public:
  /// The graph must be connected (the model's standing assumption);
  /// throws PreconditionError otherwise.  The graph is stored by value so
  /// a Runner can safely outlive its argument.
  explicit Runner(Graph graph);

  /// Runs the distributed pipeline (and baseline cross-check) once.
  AnalysisReport analyze(const AnalysisOptions& options = {}) const;

  const Graph& graph() const { return graph_; }

 private:
  Graph graph_;
};

}  // namespace congestbc
