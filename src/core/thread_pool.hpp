// A small persistent thread pool for deterministic data-parallel phases.
//
// parallel_ranges(count, fn) statically partitions [0, count) into one
// contiguous chunk per thread and runs fn(begin, end) on each; the
// calling thread works chunk 0 while the pool's workers take the rest,
// and the call blocks until every chunk completes.  The partition is a
// pure function of (count, thread count) — no work stealing, no atomics
// in the work distribution — so a caller that keeps per-index state
// disjoint gets bit-identical results for every thread count, which is
// exactly the contract the CONGEST round engine builds its determinism
// argument on (DESIGN.md, execution engine).
//
// Exceptions thrown inside a chunk are captured and the one from the
// lowest chunk index is rethrown after all chunks finish, matching what
// a sequential in-order loop would have thrown first.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace congestbc {

class ThreadPool {
 public:
  /// A pool of `threads` total lanes (>= 1); `threads - 1` workers are
  /// spawned, the calling thread is lane 0.  0 means one lane per
  /// hardware thread.
  explicit ThreadPool(unsigned threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned threads() const { return total_; }

  /// Runs fn(begin, end) over the static partition of [0, count); blocks
  /// until every chunk is done, then rethrows the lowest-chunk exception
  /// if any chunk threw.
  void parallel_ranges(std::size_t count,
                       const std::function<void(std::size_t, std::size_t)>& fn);

  /// Lane-aware variant: fn(lane, begin, end), where `lane` is the chunk
  /// index (0 = the calling thread).  Lets callers keep per-lane scratch
  /// without inverting the partition arithmetic; empty chunks are never
  /// invoked, so a lane that received no work must not be assumed to have
  /// run.
  void parallel_ranges(
      std::size_t count,
      const std::function<void(unsigned, std::size_t, std::size_t)>& fn);

  static unsigned hardware_threads();

 private:
  void worker_loop(unsigned lane);
  void run_chunk(unsigned lane);

  unsigned total_;
  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  std::uint64_t generation_ = 0;
  unsigned unfinished_ = 0;
  std::size_t job_count_ = 0;
  const std::function<void(std::size_t, std::size_t)>* job_ = nullptr;
  const std::function<void(unsigned, std::size_t, std::size_t)>* lane_job_ =
      nullptr;
  std::vector<std::exception_ptr> errors_;
  bool stopping_ = false;
};

/// A FIFO task-queue executor: `threads` persistent workers drain
/// independently submitted jobs.  The complement of ThreadPool —
/// parallel_ranges() splits ONE computation across lanes and blocks;
/// WorkerPool runs MANY unrelated computations concurrently and returns
/// immediately.  The serving daemon (src/service) drains its bounded job
/// queue through one of these.
///
/// Tasks must not throw — an escaping exception terminates the process
/// (callers like the daemon classify failures inside the task via
/// run_bc_with_watchdog).  Admission control is the caller's job: the
/// internal queue is unbounded.
class WorkerPool {
 public:
  /// Spawns `threads` workers (>= 1; 0 = one per hardware thread).
  explicit WorkerPool(unsigned threads);

  /// stop()s and joins.
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// Enqueues a task; a no-op after stop().
  void submit(std::function<void()> task);

  /// Blocks until the queue is empty and every worker is idle.  Tasks
  /// submitted while draining extend the wait.
  void drain();

  /// Graceful shutdown: running tasks finish, queued-but-unstarted tasks
  /// are discarded (the daemon's drain re-spools them instead), workers
  /// join.  Idempotent.
  void stop();

  unsigned threads() const { return total_; }

  /// Tasks currently queued (not yet started).
  std::size_t pending() const;

  /// Workers currently executing a task.
  unsigned busy() const { return busy_.load(std::memory_order_relaxed); }

  std::uint64_t tasks_completed() const {
    return completed_.load(std::memory_order_relaxed);
  }

  /// Total wall-nanoseconds workers spent inside tasks — the numerator of
  /// the utilization metric (divide by elapsed * threads()).
  std::uint64_t busy_nanos() const {
    return busy_nanos_.load(std::memory_order_relaxed);
  }

 private:
  void worker_loop();

  unsigned total_;
  std::vector<std::thread> workers_;
  mutable std::mutex mutex_;
  std::condition_variable work_cv_;
  std::condition_variable idle_cv_;
  std::deque<std::function<void()>> queue_;
  unsigned running_ = 0;
  bool stopping_ = false;
  std::atomic<unsigned> busy_{0};
  std::atomic<std::uint64_t> completed_{0};
  std::atomic<std::uint64_t> busy_nanos_{0};
};

}  // namespace congestbc
