// A small persistent thread pool for deterministic data-parallel phases.
//
// parallel_ranges(count, fn) statically partitions [0, count) into one
// contiguous chunk per thread and runs fn(begin, end) on each; the
// calling thread works chunk 0 while the pool's workers take the rest,
// and the call blocks until every chunk completes.  The partition is a
// pure function of (count, thread count) — no work stealing, no atomics
// in the work distribution — so a caller that keeps per-index state
// disjoint gets bit-identical results for every thread count, which is
// exactly the contract the CONGEST round engine builds its determinism
// argument on (DESIGN.md, execution engine).
//
// Exceptions thrown inside a chunk are captured and the one from the
// lowest chunk index is rethrown after all chunks finish, matching what
// a sequential in-order loop would have thrown first.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace congestbc {

class ThreadPool {
 public:
  /// A pool of `threads` total lanes (>= 1); `threads - 1` workers are
  /// spawned, the calling thread is lane 0.  0 means one lane per
  /// hardware thread.
  explicit ThreadPool(unsigned threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned threads() const { return total_; }

  /// Runs fn(begin, end) over the static partition of [0, count); blocks
  /// until every chunk is done, then rethrows the lowest-chunk exception
  /// if any chunk threw.
  void parallel_ranges(std::size_t count,
                       const std::function<void(std::size_t, std::size_t)>& fn);

  static unsigned hardware_threads();

 private:
  void worker_loop(unsigned lane);
  void run_chunk(unsigned lane);

  unsigned total_;
  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  std::uint64_t generation_ = 0;
  unsigned unfinished_ = 0;
  std::size_t job_count_ = 0;
  const std::function<void(std::size_t, std::size_t)>* job_ = nullptr;
  std::vector<std::exception_ptr> errors_;
  bool stopping_ = false;
};

}  // namespace congestbc
