#include "core/runner.hpp"

#include <sstream>

#include "central/brandes.hpp"
#include "common/assert.hpp"
#include "graph/properties.hpp"

namespace congestbc {

Runner::Runner(Graph graph) : graph_(std::move(graph)) {
  CBC_EXPECTS(graph_.num_nodes() >= 1, "empty graph");
  CBC_EXPECTS(is_connected(graph_),
              "the CONGEST model assumes a connected network");
}

AnalysisReport Runner::analyze(const AnalysisOptions& options) const {
  AnalysisReport report;
  report.distributed = run_distributed_bc(graph_, options.distributed);
  report.metrics = report.distributed.metrics;
  if (options.compare_with_brandes) {
    const BcOptions bc_options{options.distributed.halve};
    if (options.exact_reference) {
      const auto reference = brandes_bc_exact(graph_, bc_options);
      report.parity = compare_vectors(report.distributed.betweenness, reference);
    } else {
      const auto reference = brandes_bc(graph_, bc_options);
      report.parity = compare_vectors(report.distributed.betweenness, reference);
    }
  }
  return report;
}

std::string AnalysisReport::summary() const {
  std::ostringstream os;
  os << "distributed BC over N=" << distributed.betweenness.size()
     << " nodes: " << metrics.rounds << " rounds, D=" << distributed.diameter
     << ", " << metrics.total_bits << " bits total, max "
     << metrics.max_bits_on_edge_round << " bits/edge/round";
  if (parity.has_value()) {
    os << "; max relative error vs Brandes = " << parity->max_rel_error;
  }
  return os.str();
}

}  // namespace congestbc
