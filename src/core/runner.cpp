#include "core/runner.hpp"

#include <sstream>

#include "central/brandes.hpp"
#include "common/assert.hpp"
#include "graph/properties.hpp"

namespace congestbc {

Runner::Runner(Graph graph) : graph_(std::move(graph)) {
  CBC_EXPECTS(graph_.num_nodes() >= 1, "empty graph");
  CBC_EXPECTS(is_connected(graph_),
              "the CONGEST model assumes a connected network");
}

AnalysisReport Runner::analyze(const AnalysisOptions& options) const {
  AnalysisReport report;
  report.distributed = run_distributed_bc(graph_, options.distributed);
  report.metrics = report.distributed.metrics;
  if (options.compare_with_brandes) {
    const BcOptions bc_options{options.distributed.halve};
    if (options.exact_reference) {
      const auto reference = brandes_bc_exact(graph_, bc_options);
      report.parity = compare_vectors(report.distributed.betweenness, reference);
    } else {
      const auto reference = brandes_bc(graph_, bc_options);
      report.parity = compare_vectors(report.distributed.betweenness, reference);
    }
  }
  return report;
}

const char* to_string(RunStatus status) {
  switch (status) {
    case RunStatus::kComplete:
      return "complete";
    case RunStatus::kSuspended:
      return "suspended";
    case RunStatus::kStall:
      return "stall";
    case RunStatus::kCrashPartition:
      return "crash-partition";
    case RunStatus::kRoundLimit:
      return "round-limit";
    case RunStatus::kCongestViolation:
      return "congest-violation";
    case RunStatus::kError:
      return "error";
  }
  return "unknown";
}

RunOutcome run_bc_with_watchdog(const Graph& g,
                                const DistributedBcOptions& options) {
  RunOutcome outcome;
  BcRun run(g, options);
  try {
    run.run();
    if (run.suspended()) {
      outcome.status = RunStatus::kSuspended;
      outcome.detail = "halted at round " +
                       std::to_string(options.halt_at_round) +
                       " (halt_at_round); resume from the written snapshot";
    }
  } catch (const StallError& e) {
    outcome.detail = e.what();
    // A stall with permanent faults that disconnect the survivors is a
    // different diagnosis (no retry will help) than transient starvation.
    const bool partitioned =
        !options.faults.empty() &&
        FaultInjector(options.faults, g).permanently_partitions();
    outcome.status =
        partitioned ? RunStatus::kCrashPartition : RunStatus::kStall;
  } catch (const RoundLimitError& e) {
    outcome.detail = e.what();
    outcome.status = RunStatus::kRoundLimit;
  } catch (const CongestViolationError& e) {
    outcome.detail = e.what();
    outcome.status = RunStatus::kCongestViolation;
  } catch (const PreconditionError&) {
    // Bad options (e.g. a fault plan naming a non-existent edge) are the
    // caller's bug, not a run outcome — keep the documented throw.
    throw;
  } catch (const std::exception& e) {
    outcome.detail = e.what();
    outcome.status = RunStatus::kError;
  }

  outcome.result = run.harvest();
  outcome.retransmissions = run.total_retransmissions();
  outcome.completion.reserve(run.views().size());
  for (const BcProgram* program : run.views()) {
    NodeCompletion c;
    c.done = program->done();
    c.sources_counted = static_cast<std::uint32_t>(program->table().size());
    outcome.nodes_finished += c.done ? 1u : 0u;
    outcome.completion.push_back(c);
  }
  return outcome;
}

std::string RunOutcome::summary() const {
  std::ostringstream os;
  os << "status=" << to_string(status) << ": " << nodes_finished << "/"
     << completion.size() << " nodes finished";
  if (complete()) {
    os << " in " << result.rounds << " rounds";
    if (retransmissions != 0) {
      os << " (" << retransmissions << " retransmissions)";
    }
  } else if (status == RunStatus::kSuspended) {
    os << "; suspended at round " << result.rounds
       << " — resumable from the snapshot";
  } else {
    os << "; partial results only — " << detail;
  }
  return os.str();
}

std::string AnalysisReport::summary() const {
  std::ostringstream os;
  os << "distributed BC over N=" << distributed.betweenness.size()
     << " nodes: " << metrics.rounds << " rounds, D=" << distributed.diameter
     << ", " << metrics.total_bits << " bits total, max "
     << metrics.max_bits_on_edge_round << " bits/edge/round";
  if (parity.has_value()) {
    os << "; max relative error vs Brandes = " << parity->max_rel_error;
  }
  return os.str();
}

}  // namespace congestbc
