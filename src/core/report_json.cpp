#include "core/report_json.hpp"

#include <cmath>
#include <cstdio>
#include <sstream>

#include "common/assert.hpp"

namespace congestbc {

void JsonWriter::comma() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (needs_comma_.back()) {
    out_ += ',';
  }
  needs_comma_.back() = true;
}

JsonWriter& JsonWriter::begin_object() {
  comma();
  out_ += '{';
  needs_comma_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  CBC_EXPECTS(needs_comma_.size() > 1, "unbalanced end_object");
  needs_comma_.pop_back();
  out_ += '}';
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  comma();
  out_ += '[';
  needs_comma_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  CBC_EXPECTS(needs_comma_.size() > 1, "unbalanced end_array");
  needs_comma_.pop_back();
  out_ += ']';
  return *this;
}

JsonWriter& JsonWriter::key(const std::string& name) {
  comma();
  value_unchecked_string(name);
  out_ += ':';
  after_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(const std::string& text) {
  comma();
  value_unchecked_string(text);
  return *this;
}

JsonWriter& JsonWriter::value(double number) {
  comma();
  CBC_EXPECTS(std::isfinite(number), "JSON numbers must be finite");
  std::ostringstream os;
  os.precision(17);
  os << number;
  out_ += os.str();
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t number) {
  comma();
  out_ += std::to_string(number);
  return *this;
}

JsonWriter& JsonWriter::value(bool flag) {
  comma();
  out_ += flag ? "true" : "false";
  return *this;
}

void JsonWriter::value_unchecked_string(const std::string& text) {
  out_ += '"';
  for (const char ch : text) {
    switch (ch) {
      case '"':
        out_ += "\\\"";
        break;
      case '\\':
        out_ += "\\\\";
        break;
      case '\n':
        out_ += "\\n";
        break;
      case '\r':
        out_ += "\\r";
        break;
      case '\t':
        out_ += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", ch);
          out_ += buf;
        } else {
          out_ += ch;
        }
    }
  }
  out_ += '"';
}

namespace {

void write_double_array(JsonWriter& json, const std::vector<double>& values) {
  json.begin_array();
  for (const double v : values) {
    json.value(v);
  }
  json.end_array();
}

void write_result_body(JsonWriter& json, const DistributedBcResult& result) {
  json.key("betweenness");
  write_double_array(json, result.betweenness);
  json.key("closeness");
  write_double_array(json, result.closeness);
  json.key("graph_centrality");
  write_double_array(json, result.graph_centrality);
  json.key("stress").begin_array();
  for (const auto v : result.stress) {
    json.value(static_cast<double>(v));
  }
  json.end_array();
  json.key("eccentricities").begin_array();
  for (const auto v : result.eccentricities) {
    json.value(static_cast<std::uint64_t>(v));
  }
  json.end_array();
  json.key("diameter").value(static_cast<std::uint64_t>(result.diameter));
  json.key("rounds").value(result.rounds);
  json.key("aggregation_epoch").value(result.aggregation_epoch);
  json.key("metrics").begin_object();
  json.key("total_physical_messages").value(result.metrics.total_physical_messages);
  json.key("total_logical_messages").value(result.metrics.total_logical_messages);
  json.key("total_bits").value(result.metrics.total_bits);
  json.key("max_bits_on_edge_round").value(result.metrics.max_bits_on_edge_round);
  json.key("max_logical_on_edge_round").value(result.metrics.max_logical_on_edge_round);
  json.key("cut_bits").value(result.metrics.cut_bits);
  json.end_object();
  json.key("max_node_state_bytes")
      .value(static_cast<std::uint64_t>(result.max_node_state_bytes));
  json.key("phase_profile").begin_array();
  for (const auto& phase : result.phase_profile) {
    json.begin_object();
    json.key("name").value(phase.name);
    json.key("begin_round").value(phase.begin_round);
    json.key("end_round").value(phase.end_round);
    json.key("rounds").value(phase.rounds);
    json.key("physical_messages").value(phase.physical_messages);
    json.key("logical_messages").value(phase.logical_messages);
    json.key("bits").value(phase.bits);
    json.end_object();
  }
  json.end_array();
  // Resume lineage (src/snapshot): whether this result is partial
  // (suspended at halt_at_round), where it resumed from, and the
  // checkpoint files the run left behind.
  json.key("suspended").value(result.suspended);
  if (result.resumed_from_round.has_value()) {
    json.key("resumed_from_round").value(*result.resumed_from_round);
  }
  if (!result.checkpoints.empty()) {
    json.key("checkpoints").begin_array();
    for (const auto& path : result.checkpoints) {
      json.value(path);
    }
    json.end_array();
  }
}

}  // namespace

std::string to_json(const DistributedBcResult& result) {
  JsonWriter json;
  json.begin_object();
  write_result_body(json, result);
  json.end_object();
  return json.str();
}

std::string to_json(const AnalysisReport& report) {
  JsonWriter json;
  json.begin_object();
  json.key("distributed").begin_object();
  write_result_body(json, report.distributed);
  json.end_object();
  if (report.parity.has_value()) {
    json.key("parity").begin_object();
    json.key("max_abs_error").value(report.parity->max_abs_error);
    json.key("max_rel_error").value(report.parity->max_rel_error);
    json.key("mean_abs_error").value(report.parity->mean_abs_error);
    json.key("worst_index")
        .value(static_cast<std::uint64_t>(report.parity->worst_index));
    json.end_object();
  }
  json.key("summary").value(report.summary());
  json.end_object();
  return json.str();
}

}  // namespace congestbc
