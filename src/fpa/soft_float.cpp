#include "fpa/soft_float.hpp"

#include <cmath>
#include <sstream>

#include "common/assert.hpp"
#include "common/int128.hpp"

namespace congestbc {

namespace {

using u128 = uint128_t;

unsigned bit_width_u128(u128 value) {
  const auto hi = static_cast<std::uint64_t>(value >> 64);
  if (hi != 0) {
    return 64 + bit_width_u64(hi);
  }
  const auto lo = static_cast<std::uint64_t>(value);
  return lo == 0 ? 0 : bit_width_u64(lo);
}

/// Core normalization: rounds the exact value `value * 2^exponent` (with an
/// extra "sticky" flag marking already-dropped low-order bits) into a
/// mantissa of exactly format.mantissa_bits bits.
SoftFloat normalize(u128 value, std::int64_t exponent, bool sticky,
                    const SoftFloatFormat& format, RoundingMode mode) {
  CBC_EXPECTS(format.mantissa_bits >= 2 && format.mantissa_bits <= 62,
              "mantissa width out of supported range [2, 62]");
  CBC_EXPECTS(format.exponent_bits >= 2 && format.exponent_bits <= 62,
              "exponent width out of supported range [2, 62]");
  if (value == 0) {
    CBC_CHECK(!sticky, "cannot normalize a pure-sticky value");
    return SoftFloat{};
  }
  const unsigned L = format.mantissa_bits;
  unsigned width = bit_width_u128(value);
  if (width > L) {
    const unsigned shift = width - L;
    const u128 dropped = value & ((u128{1} << shift) - 1);
    value >>= shift;
    exponent += shift;
    const bool inexact = dropped != 0 || sticky;
    bool round_up = false;
    switch (mode) {
      case RoundingMode::kUp:
        round_up = inexact;
        break;
      case RoundingMode::kDown:
        round_up = false;
        break;
      case RoundingMode::kNearest: {
        const u128 half = u128{1} << (shift - 1);
        round_up = dropped > half || (dropped == half);
        break;
      }
    }
    if (round_up) {
      value += 1;
      if (value == (u128{1} << L)) {
        value >>= 1;
        exponent += 1;
      }
    }
  } else if (width < L) {
    value <<= (L - width);
    exponent -= (L - width);
    if (sticky && mode == RoundingMode::kUp) {
      value += 1;  // exact bits were dropped earlier; bump to stay >= exact
      if (value == (u128{1} << L)) {
        value >>= 1;
        exponent += 1;
      }
    }
  } else if (sticky && mode == RoundingMode::kUp) {
    value += 1;
    if (value == (u128{1} << L)) {
      value >>= 1;
      exponent += 1;
    }
  }
  CBC_CHECK(exponent >= -format.exponent_limit() &&
                exponent <= format.exponent_limit(),
            "SoftFloat exponent out of format range");
  SoftFloat result = SoftFloat::make_raw(static_cast<std::uint64_t>(value),
                                         exponent);
  return result;
}

}  // namespace

SoftFloatFormat SoftFloatFormat::for_graph(std::uint64_t num_nodes,
                                           unsigned extra) {
  CBC_EXPECTS(num_nodes >= 1, "graph must have at least one node");
  const unsigned log_n = ceil_log2(num_nodes < 2 ? 2 : num_nodes);
  unsigned mantissa = log_n + extra;
  if (mantissa < 8) {
    mantissa = 8;
  }
  if (mantissa > 62) {
    mantissa = 62;
  }
  // sigma <= 2^N and reciprocals reach 2^-(N + 2L); psi sums add at most
  // another factor of N.  Budget the exponent for |e| <= 4N + 8L + 128.
  const std::uint64_t range = 4 * num_nodes + 8 * mantissa + 128;
  unsigned exponent = ceil_log2(range) + 2;
  if (exponent < 8) {
    exponent = 8;
  }
  return SoftFloatFormat{mantissa, exponent};
}

SoftFloat SoftFloat::make_raw(std::uint64_t mantissa, std::int64_t exponent) {
  SoftFloat f;
  f.mantissa_ = mantissa;
  f.exponent_ = mantissa == 0 ? 0 : exponent;
  return f;
}

SoftFloat SoftFloat::make(std::uint64_t mantissa, std::int64_t exponent,
                          const SoftFloatFormat& format, RoundingMode mode) {
  return normalize(mantissa, exponent, /*sticky=*/false, format, mode);
}

SoftFloat SoftFloat::from_u64(std::uint64_t value, const SoftFloatFormat& format,
                              RoundingMode mode) {
  return normalize(value, 0, /*sticky=*/false, format, mode);
}

SoftFloat SoftFloat::from_big(const BigUint& value, const SoftFloatFormat& format,
                              RoundingMode mode) {
  const std::size_t width = value.bit_length();
  if (width <= 64) {
    return from_u64(value.is_zero() ? 0 : value.to_u64(), format, mode);
  }
  const std::size_t shift = width - 64;
  BigUint top = value >> shift;
  const std::uint64_t mantissa = top.to_u64();
  // sticky = any dropped bit set
  BigUint reconstructed = top << shift;
  const bool sticky = reconstructed != value;
  return normalize(mantissa, static_cast<std::int64_t>(shift), sticky, format,
                   mode);
}

SoftFloat SoftFloat::from_double(double value, const SoftFloatFormat& format,
                                 RoundingMode mode) {
  CBC_EXPECTS(std::isfinite(value) && value >= 0.0,
              "from_double requires a finite non-negative value");
  if (value == 0.0) {
    return SoftFloat{};
  }
  int exp = 0;
  const double y = std::frexp(value, &exp);  // y in [0.5, 1)
  // y = m / 2^53 with m a 53-bit integer, so y * 2^62 is exact.
  const auto mantissa = static_cast<std::uint64_t>(std::ldexp(y, 62));
  return normalize(mantissa, static_cast<std::int64_t>(exp) - 62,
                   /*sticky=*/false, format, mode);
}

double SoftFloat::to_double() const {
  if (mantissa_ == 0) {
    return 0.0;
  }
  return std::ldexp(static_cast<double>(mantissa_),
                    static_cast<int>(exponent_));
}

void SoftFloat::pack(BitWriter& writer, const SoftFloatFormat& format) const {
  if (mantissa_ == 0) {
    writer.write_bool(true);
    writer.write(0, format.mantissa_bits);
    writer.write(0, format.exponent_bits);
    return;
  }
  CBC_CHECK(bit_width_u64(mantissa_) == format.mantissa_bits,
            "packing a SoftFloat with a mismatched format");
  const std::int64_t biased = exponent_ + format.exponent_limit();
  CBC_CHECK(biased >= 0 &&
                biased < (std::int64_t{1} << format.exponent_bits),
            "exponent does not fit the wire format");
  writer.write_bool(false);
  writer.write(mantissa_, format.mantissa_bits);
  writer.write(static_cast<std::uint64_t>(biased), format.exponent_bits);
}

SoftFloat SoftFloat::unpack(BitReader& reader, const SoftFloatFormat& format) {
  const bool zero = reader.read_bool();
  const std::uint64_t mantissa = reader.read(format.mantissa_bits);
  const std::uint64_t biased = reader.read(format.exponent_bits);
  if (zero) {
    return SoftFloat{};
  }
  CBC_CHECK(bit_width_u64(mantissa) == format.mantissa_bits,
            "wire mantissa is not normalized");
  return make_raw(mantissa,
                  static_cast<std::int64_t>(biased) - format.exponent_limit());
}

std::string SoftFloat::to_string() const {
  std::ostringstream os;
  os << mantissa_ << "*2^" << exponent_;
  return os.str();
}

SoftFloat add(const SoftFloat& a, const SoftFloat& b,
              const SoftFloatFormat& format, RoundingMode mode) {
  if (a.is_zero()) {
    return normalize(b.mantissa(), b.exponent(), false, format, mode);
  }
  if (b.is_zero()) {
    return normalize(a.mantissa(), a.exponent(), false, format, mode);
  }
  const SoftFloat& hi = a.exponent() >= b.exponent() ? a : b;
  const SoftFloat& lo = a.exponent() >= b.exponent() ? b : a;
  const std::int64_t diff = hi.exponent() - lo.exponent();
  if (diff > 64) {
    // The smaller addend is below one ulp of the larger at 128-bit width;
    // fold it into the sticky flag.
    return normalize(hi.mantissa(), hi.exponent(), /*sticky=*/true, format,
                     mode);
  }
  const u128 sum = (static_cast<u128>(hi.mantissa()) << static_cast<unsigned>(diff)) +
                   lo.mantissa();
  return normalize(sum, lo.exponent(), /*sticky=*/false, format, mode);
}

SoftFloat multiply(const SoftFloat& a, const SoftFloat& b,
                   const SoftFloatFormat& format, RoundingMode mode) {
  if (a.is_zero() || b.is_zero()) {
    return SoftFloat{};
  }
  const u128 product = static_cast<u128>(a.mantissa()) * b.mantissa();
  return normalize(product, a.exponent() + b.exponent(), false, format, mode);
}

SoftFloat reciprocal(const SoftFloat& a, const SoftFloatFormat& format,
                     RoundingMode mode) {
  CBC_EXPECTS(!a.is_zero(), "reciprocal of zero");
  const unsigned L = bit_width_u64(a.mantissa());
  // 1/(m * 2^e) = (2^(2L-1)/m) * 2^(-e-(2L-1)); the quotient lies in
  // [2^(L-1), 2^L].
  const u128 numerator = u128{1} << (2 * L - 1);
  const u128 q = numerator / a.mantissa();
  const u128 r = numerator % a.mantissa();
  const std::int64_t exponent = -a.exponent() - (2 * static_cast<std::int64_t>(L) - 1);
  return normalize(q, exponent, /*sticky=*/r != 0, format, mode);
}

int compare(const SoftFloat& a, const SoftFloat& b) {
  if (a.is_zero() || b.is_zero()) {
    if (a.is_zero() && b.is_zero()) {
      return 0;
    }
    return a.is_zero() ? -1 : 1;
  }
  const std::int64_t msb_a =
      a.exponent() + static_cast<std::int64_t>(bit_width_u64(a.mantissa()));
  const std::int64_t msb_b =
      b.exponent() + static_cast<std::int64_t>(bit_width_u64(b.mantissa()));
  if (msb_a != msb_b) {
    return msb_a < msb_b ? -1 : 1;
  }
  // Equal magnitude class: align to the lower exponent and compare exactly.
  const std::int64_t diff = a.exponent() - b.exponent();
  u128 ma = a.mantissa();
  u128 mb = b.mantissa();
  if (diff >= 0) {
    ma <<= static_cast<unsigned>(diff);
  } else {
    mb <<= static_cast<unsigned>(-diff);
  }
  if (ma == mb) {
    return 0;
  }
  return ma < mb ? -1 : 1;
}

int compare_with_big(const SoftFloat& a, const BigUint& b) {
  if (a.is_zero()) {
    return b.is_zero() ? 0 : -1;
  }
  const BigUint mantissa(a.mantissa());
  if (a.exponent() >= 0) {
    const BigUint lhs = mantissa << static_cast<std::size_t>(a.exponent());
    return lhs.compare(b);
  }
  const BigUint rhs = b << static_cast<std::size_t>(-a.exponent());
  return mantissa.compare(rhs);
}

double unit_relative_error(const SoftFloatFormat& format) {
  return std::ldexp(1.0, -static_cast<int>(format.mantissa_bits) + 1);
}

}  // namespace congestbc
