// The paper's floating-point message encoding (Section VI).
//
// The number of shortest paths sigma_st can be exponential in N, but a
// CONGEST message carries only O(log N) bits.  The paper therefore
// represents every transmitted value as a = y * 2^x with y stored in L
// mantissa bits and x in an O(log N)-bit exponent (2L bits total), and
// proves (Lemma 1, Theorem 1) that ceil-rounding sigma and floor-rounding
// the psi sums keeps the final betweenness centrality within relative
// error O(2^-L).
//
// SoftFloat implements exactly that encoding with *directed* rounding:
//   * RoundingMode::kUp   — result >= exact value (used for sigma, Lemma 1);
//   * RoundingMode::kDown — result <= exact value (used for psi sums);
//   * RoundingMode::kNearest — for ablation experiments (DESIGN.md D2).
// Every arithmetic operation takes the format and mode explicitly so that
// the error-bound experiments (bench_fp_error) can sweep L and the
// rounding policy.
#pragma once

#include <cstdint>
#include <string>

#include "bignum/big_uint.hpp"
#include "common/bit_io.hpp"

namespace congestbc {

/// Directed rounding policy for SoftFloat operations.
enum class RoundingMode {
  kUp,       ///< toward +infinity: result >= exact
  kDown,     ///< toward zero/-infinity: result <= exact
  kNearest,  ///< round half up; no one-sided guarantee
};

/// Bit layout of a transmitted value: 1 zero-flag bit + mantissa_bits +
/// exponent_bits.  The paper's "2L bits" corresponds to
/// mantissa_bits == exponent_bits == L.
struct SoftFloatFormat {
  unsigned mantissa_bits;
  unsigned exponent_bits;

  unsigned total_bits() const { return 1 + mantissa_bits + exponent_bits; }

  /// Largest exponent magnitude representable (bias encoding).
  std::int64_t exponent_limit() const {
    return (std::int64_t{1} << (exponent_bits - 1)) - 1;
  }

  /// Format sized for an N-node graph: L = ceil(log2 N) + `extra` mantissa
  /// bits, exponent wide enough for sigma up to 2^(2N) and its
  /// reciprocals.  With extra = c*ceil(log2 N) the final BC error is
  /// O(N^-c) (Corollary 1).
  static SoftFloatFormat for_graph(std::uint64_t num_nodes, unsigned extra = 24);
};

/// A non-negative value mantissa * 2^exponent with the mantissa normalized
/// into [2^(L-1), 2^L) (or exactly zero).  Immutable value type; all
/// operations are free functions carrying the format/rounding explicitly.
class SoftFloat {
 public:
  /// Zero.
  SoftFloat() = default;

  /// From an exact 64-bit count.
  static SoftFloat from_u64(std::uint64_t value, const SoftFloatFormat& format,
                            RoundingMode mode);

  /// From an exact arbitrary-precision count.
  static SoftFloat from_big(const BigUint& value, const SoftFloatFormat& format,
                            RoundingMode mode);

  /// From a finite non-negative double (exact capture of the 53-bit
  /// mantissa, then normalized into the format).
  static SoftFloat from_double(double value, const SoftFloatFormat& format,
                               RoundingMode mode);

  bool is_zero() const { return mantissa_ == 0; }
  std::uint64_t mantissa() const { return mantissa_; }
  std::int64_t exponent() const { return exponent_; }

  /// Closest double (may be inf/0 for extreme exponents).
  double to_double() const;

  /// Serialization into a CONGEST message.
  void pack(BitWriter& writer, const SoftFloatFormat& format) const;
  static SoftFloat unpack(BitReader& reader, const SoftFloatFormat& format);

  /// "m*2^e" debug form.
  std::string to_string() const;

  friend bool operator==(const SoftFloat& a, const SoftFloat& b) {
    return a.mantissa_ == b.mantissa_ && (a.mantissa_ == 0 || a.exponent_ == b.exponent_);
  }
  friend bool operator!=(const SoftFloat& a, const SoftFloat& b) {
    return !(a == b);
  }

  /// Raw constructor for internal/test use; normalizes `mantissa` into the
  /// format with the given rounding.
  static SoftFloat make(std::uint64_t mantissa, std::int64_t exponent,
                        const SoftFloatFormat& format, RoundingMode mode);

  /// Bit-exact constructor; trusts the caller that `mantissa` is already
  /// normalized for its format.  Used by unpack and the arithmetic core.
  static SoftFloat make_raw(std::uint64_t mantissa, std::int64_t exponent);

 private:
  std::uint64_t mantissa_ = 0;
  std::int64_t exponent_ = 0;
};

/// a + b with directed rounding.
SoftFloat add(const SoftFloat& a, const SoftFloat& b,
              const SoftFloatFormat& format, RoundingMode mode);

/// a * b with directed rounding.
SoftFloat multiply(const SoftFloat& a, const SoftFloat& b,
                   const SoftFloatFormat& format, RoundingMode mode);

/// 1 / a with directed rounding.  Precondition: a != 0.
SoftFloat reciprocal(const SoftFloat& a, const SoftFloatFormat& format,
                     RoundingMode mode);

/// Three-way comparison of the exact values (format-independent).
int compare(const SoftFloat& a, const SoftFloat& b);

/// Three-way comparison of a SoftFloat against an exact integer.
int compare_with_big(const SoftFloat& a, const BigUint& b);

/// Upper bound on the one-step relative error of the format: 2^-(L-1)
/// (Lemma 1's bound with L mantissa bits).
double unit_relative_error(const SoftFloatFormat& format);

}  // namespace congestbc
