// Section IX lower-bound constructions.
//
// Both gadgets reduce sparse set disjointness to a graph property: two
// families X and Y of (m/2)-subsets of {0..m-1} are planted on the left
// and right side of a graph whose diameter (Figure 2 / Lemma 8) or whose
// betweenness centralities C_B(F_i) (Figure 3 / Lemma 9) reveal whether
// some X_i equals some Y_j.  The narrow cut between the sides (m+1 long
// paths in Figure 2; the m L-L' edges plus the P-Q edge in Figure 3) is
// what forces Omega(D + N/log N) rounds (Theorems 5 and 6).
//
// NOTE on Figure 3 fidelity: the paper's text specifies P~F_i, Q~T_j,
// A~L_p, B~S_i and exhibits the shortest paths S_i-F_i-P-Q-T_j and
// S_i-B-P-Q-T_j; the remaining edges among {A, B, P, Q} are only drawn in
// the figure.  We use the completion {P-Q, B-P, A-B, A-P, B-F_i} — the
// minimal edge set consistent with those exhibited paths under which
// Lemma 9's exact values C_B(F_i) in {1, 1.5} provably hold (the
// derivation is reproduced in EXPERIMENTS.md and verified exhaustively by
// the test suite against centralized Brandes).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/rng.hpp"
#include "graph/graph.hpp"

namespace congestbc::lb {

/// A family of n subsets of {0..m-1}, each of cardinality m/2, stored as
/// 64-bit masks.  m must be even and <= 62.
class SetFamily {
 public:
  SetFamily(unsigned universe, std::vector<std::uint64_t> sets);

  unsigned universe() const { return universe_; }
  std::size_t size() const { return sets_.size(); }
  std::uint64_t set_mask(std::size_t j) const { return sets_[j]; }
  bool contains(std::size_t j, unsigned element) const;

  /// True when the two families share at least one identical subset
  /// ("X intersect Y != empty" in the paper's family-of-sets sense).
  static bool families_intersect(const SetFamily& x, const SetFamily& y);

  /// Index pairs (i, j) with X_i == Y_j.
  static std::vector<std::pair<std::size_t, std::size_t>> matches(
      const SetFamily& x, const SetFamily& y);

  /// n distinct random (m/2)-subsets.  Requires C(m, m/2) >= n.
  static SetFamily random(std::size_t n, unsigned m, Rng& rng);

  /// The rank-th (m/2)-subset of {0..m-1} in lexicographic order of the
  /// combinatorial number system — the paper's Corollary 2 encoding of a
  /// number as a subset.
  static std::uint64_t unrank_subset(unsigned m, std::uint64_t rank);

  /// Inverse of unrank_subset.
  static std::uint64_t rank_subset(unsigned m, std::uint64_t mask);

 private:
  unsigned universe_;
  std::vector<std::uint64_t> sets_;
};

/// Binomial coefficient C(n, k), saturating at UINT64_MAX.
std::uint64_t binomial(unsigned n, unsigned k);

/// Smallest even m with C(m, m/2) >= n^2 — the paper's choice m = O(log n)
/// making the subset encoding injective over {1..n^2}.
unsigned min_universe_for(std::uint64_t n);

/// Figure 2: the diameter gadget.
struct DiameterGadget {
  Graph graph;
  unsigned x;                       ///< baseline diameter parameter (>= 8)
  std::vector<NodeId> s_prime;      ///< S'_j, one per X_j
  std::vector<NodeId> t_prime;      ///< T'_j, one per Y_j
  NodeId a;
  NodeId b;
  /// One representative middle edge per left-right crossing path
  /// (m L_i-L'_i paths plus the A-B path): the communication cut.
  std::vector<Edge> cut_edges;
  /// x+2 when the families share a subset, else x (Lemma 8).
  std::uint32_t expected_diameter;
};

/// Builds the Figure 2 gadget.  Preconditions: x >= 8; families over the
/// same even universe m <= 62; every subset has cardinality m/2.
DiameterGadget build_diameter_gadget(const SetFamily& x_family,
                                     const SetFamily& y_family, unsigned x);

/// Figure 3: the betweenness-centrality gadget.
struct BcGadget {
  Graph graph;
  std::vector<NodeId> f;        ///< F_i, one per X_i
  std::vector<NodeId> s;        ///< S_i
  std::vector<NodeId> t;        ///< T_j
  NodeId p;
  NodeId q;
  NodeId a;
  NodeId b;
  /// The m L_p-L'_p edges plus the P-Q edge: the communication cut.
  std::vector<Edge> cut_edges;
  /// Lemma 9: expected C_B(F_i) — 1.5 when X_i appears in Y, else 1
  /// (undirected convention, i.e. ordered-pair dependency sum halved).
  std::vector<double> expected_bc_of_f;
};

/// Builds the Figure 3 gadget.  Preconditions: families over the same even
/// universe m <= 62; cardinalities m/2; subsets within each family
/// pairwise distinct (so at most one Y_j can match each X_i).
BcGadget build_bc_gadget(const SetFamily& x_family, const SetFamily& y_family);

}  // namespace congestbc::lb
