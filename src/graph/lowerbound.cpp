#include "graph/lowerbound.hpp"

#include <algorithm>
#include <unordered_set>

#include "common/assert.hpp"
#include "common/bit_io.hpp"
#include "common/int128.hpp"

namespace congestbc::lb {

namespace {

unsigned popcount_u64(std::uint64_t v) {
  return static_cast<unsigned>(__builtin_popcountll(v));
}

void validate_family(const SetFamily& family) {
  CBC_EXPECTS(family.universe() % 2 == 0, "universe size must be even");
  CBC_EXPECTS(family.universe() >= 2 && family.universe() <= 62,
              "universe size out of range [2, 62]");
  for (std::size_t j = 0; j < family.size(); ++j) {
    CBC_EXPECTS(popcount_u64(family.set_mask(j)) == family.universe() / 2,
                "every subset must have cardinality m/2");
    CBC_EXPECTS((family.set_mask(j) >> family.universe()) == 0,
                "subset contains out-of-universe elements");
  }
}

void validate_distinct(const SetFamily& family) {
  std::unordered_set<std::uint64_t> seen;
  for (std::size_t j = 0; j < family.size(); ++j) {
    CBC_EXPECTS(seen.insert(family.set_mask(j)).second,
                "subsets within a family must be pairwise distinct");
  }
}

}  // namespace

SetFamily::SetFamily(unsigned universe, std::vector<std::uint64_t> sets)
    : universe_(universe), sets_(std::move(sets)) {
  validate_family(*this);
}

bool SetFamily::contains(std::size_t j, unsigned element) const {
  CBC_EXPECTS(j < sets_.size(), "subset index out of range");
  CBC_EXPECTS(element < universe_, "element out of universe");
  return ((sets_[j] >> element) & 1u) != 0;
}

bool SetFamily::families_intersect(const SetFamily& x, const SetFamily& y) {
  return !matches(x, y).empty();
}

std::vector<std::pair<std::size_t, std::size_t>> SetFamily::matches(
    const SetFamily& x, const SetFamily& y) {
  CBC_EXPECTS(x.universe() == y.universe(), "families must share a universe");
  std::vector<std::pair<std::size_t, std::size_t>> result;
  for (std::size_t i = 0; i < x.size(); ++i) {
    for (std::size_t j = 0; j < y.size(); ++j) {
      if (x.set_mask(i) == y.set_mask(j)) {
        result.emplace_back(i, j);
      }
    }
  }
  return result;
}

SetFamily SetFamily::random(std::size_t n, unsigned m, Rng& rng) {
  CBC_EXPECTS(m % 2 == 0 && m >= 2 && m <= 62, "universe size out of range");
  CBC_EXPECTS(binomial(m, m / 2) >= n, "not enough distinct subsets exist");
  std::unordered_set<std::uint64_t> chosen;
  std::vector<std::uint64_t> sets;
  while (sets.size() < n) {
    // Uniform subset via rank sampling.
    const std::uint64_t total = binomial(m, m / 2);
    const std::uint64_t mask = unrank_subset(m, rng.next_below(total));
    if (chosen.insert(mask).second) {
      sets.push_back(mask);
    }
  }
  return SetFamily(m, std::move(sets));
}

std::uint64_t SetFamily::unrank_subset(unsigned m, std::uint64_t rank) {
  const unsigned k = m / 2;
  CBC_EXPECTS(rank < binomial(m, k), "rank out of range");
  // Combinatorial number system, elements chosen high-to-low.
  std::uint64_t mask = 0;
  std::uint64_t remaining = rank;
  unsigned need = k;
  for (unsigned element = m; element > 0 && need > 0; --element) {
    const unsigned e = element - 1;
    // Number of k-subsets of the remaining universe that *exclude* e.
    const std::uint64_t without = binomial(e, need);
    if (remaining >= without) {
      mask |= (std::uint64_t{1} << e);
      remaining -= without;
      --need;
    }
  }
  CBC_CHECK(need == 0, "unranking failed to place all elements");
  return mask;
}

std::uint64_t SetFamily::rank_subset(unsigned m, std::uint64_t mask) {
  const unsigned k = m / 2;
  CBC_EXPECTS(popcount_u64(mask) == k, "mask must have m/2 elements");
  CBC_EXPECTS((mask >> m) == 0, "mask exceeds universe");
  std::uint64_t rank = 0;
  unsigned need = k;
  for (unsigned element = m; element > 0 && need > 0; --element) {
    const unsigned e = element - 1;
    const std::uint64_t without = binomial(e, need);
    if ((mask >> e) & 1u) {
      rank += without;
      --need;
    }
  }
  return rank;
}

std::uint64_t binomial(unsigned n, unsigned k) {
  if (k > n) {
    return 0;
  }
  k = std::min(k, n - k);
  uint128_t result = 1;
  for (unsigned i = 1; i <= k; ++i) {
    result = result * (n - k + i) / i;
    if (result > UINT64_MAX) {
      return UINT64_MAX;
    }
  }
  return static_cast<std::uint64_t>(result);
}

unsigned min_universe_for(std::uint64_t n) {
  const std::uint64_t target =
      n >= (std::uint64_t{1} << 32) ? UINT64_MAX : n * n;
  for (unsigned m = 2; m <= 62; m += 2) {
    if (binomial(m, m / 2) >= target) {
      return m;
    }
  }
  return 62;
}

DiameterGadget build_diameter_gadget(const SetFamily& x_family,
                                     const SetFamily& y_family, unsigned x) {
  CBC_EXPECTS(x >= 8, "Lemma 8 requires x >= 8");
  CBC_EXPECTS(x_family.universe() == y_family.universe(),
              "families must share a universe");
  validate_family(x_family);
  validate_family(y_family);
  const unsigned m = x_family.universe();
  const std::size_t n_left = x_family.size();
  const std::size_t n_right = y_family.size();
  CBC_EXPECTS(n_left >= 1 && n_right >= 1, "families must be non-empty");

  GraphBuilder builder;
  std::vector<NodeId> l(m);
  std::vector<NodeId> l_prime(m);
  for (unsigned i = 0; i < m; ++i) {
    l[i] = builder.add_node();
    l_prime[i] = builder.add_node();
  }
  const NodeId a = builder.add_node();
  const NodeId b = builder.add_node();

  DiameterGadget gadget{Graph(0, {}), x, {}, {}, a, b, {}, 0};

  // Adds a path of `length` edges between `from` and `to`, returning the
  // middle edge as the cut representative.
  auto add_long_path = [&](NodeId from, NodeId to, unsigned length) -> Edge {
    CBC_CHECK(length >= 2, "crossing paths need length >= 2");
    NodeId prev = from;
    Edge middle{0, 0};
    for (unsigned step = 1; step < length; ++step) {
      const NodeId next = builder.add_node();
      if (step == length / 2) {
        middle = Edge{std::min(prev, next), std::max(prev, next)};
      }
      builder.add_edge(prev, next);
      prev = next;
    }
    builder.add_edge(prev, to);
    return middle;
  };

  for (unsigned i = 0; i < m; ++i) {
    gadget.cut_edges.push_back(add_long_path(l[i], l_prime[i], x - 6));
    builder.add_edge(a, l[i]);
    builder.add_edge(b, l_prime[i]);
  }
  gadget.cut_edges.push_back(add_long_path(a, b, x - 6));

  for (std::size_t j = 0; j < n_left; ++j) {
    const NodeId s = builder.add_node();
    const NodeId s2 = builder.add_node();  // S''_j
    const NodeId s1 = builder.add_node();  // S'_j
    builder.add_edge(s, s2);
    builder.add_edge(s2, s1);
    for (unsigned i = 0; i < m; ++i) {
      if (x_family.contains(j, i)) {
        builder.add_edge(l[i], s);
      }
    }
    gadget.s_prime.push_back(s1);
  }
  for (std::size_t j = 0; j < n_right; ++j) {
    const NodeId t = builder.add_node();
    const NodeId t2 = builder.add_node();
    const NodeId t1 = builder.add_node();
    builder.add_edge(t, t2);
    builder.add_edge(t2, t1);
    for (unsigned i = 0; i < m; ++i) {
      if (!y_family.contains(j, i)) {
        builder.add_edge(l_prime[i], t);
      }
    }
    gadget.t_prime.push_back(t1);
  }

  gadget.expected_diameter =
      SetFamily::families_intersect(x_family, y_family) ? x + 2 : x;
  gadget.graph = std::move(builder).build();
  return gadget;
}

BcGadget build_bc_gadget(const SetFamily& x_family, const SetFamily& y_family) {
  CBC_EXPECTS(x_family.universe() == y_family.universe(),
              "families must share a universe");
  validate_family(x_family);
  validate_family(y_family);
  validate_distinct(x_family);
  validate_distinct(y_family);
  const unsigned m = x_family.universe();
  const std::size_t n_left = x_family.size();
  const std::size_t n_right = y_family.size();
  CBC_EXPECTS(n_left >= 1 && n_right >= 1, "families must be non-empty");

  GraphBuilder builder;
  std::vector<NodeId> l(m);
  std::vector<NodeId> l_prime(m);
  for (unsigned i = 0; i < m; ++i) {
    l[i] = builder.add_node();
    l_prime[i] = builder.add_node();
  }
  const NodeId p = builder.add_node();
  const NodeId q = builder.add_node();
  const NodeId a = builder.add_node();
  const NodeId b = builder.add_node();

  BcGadget gadget{Graph(0, {}), {}, {}, {}, p, q, a, b, {}, {}};

  for (unsigned i = 0; i < m; ++i) {
    builder.add_edge(l[i], l_prime[i]);
    gadget.cut_edges.push_back(
        Edge{std::min(l[i], l_prime[i]), std::max(l[i], l_prime[i])});
    builder.add_edge(a, l[i]);
  }
  builder.add_edge(p, q);
  gadget.cut_edges.push_back(Edge{std::min(p, q), std::max(p, q)});
  builder.add_edge(b, p);
  builder.add_edge(a, b);
  builder.add_edge(a, p);

  for (std::size_t i = 0; i < n_left; ++i) {
    const NodeId s = builder.add_node();
    const NodeId f = builder.add_node();
    builder.add_edge(s, f);
    builder.add_edge(f, p);
    builder.add_edge(f, b);
    builder.add_edge(b, s);
    for (unsigned e = 0; e < m; ++e) {
      if (x_family.contains(i, e)) {
        builder.add_edge(l[e], s);
      }
    }
    gadget.s.push_back(s);
    gadget.f.push_back(f);
  }
  for (std::size_t j = 0; j < n_right; ++j) {
    const NodeId t = builder.add_node();
    builder.add_edge(q, t);
    for (unsigned e = 0; e < m; ++e) {
      if (!y_family.contains(j, e)) {
        builder.add_edge(l_prime[e], t);
      }
    }
    gadget.t.push_back(t);
  }

  gadget.expected_bc_of_f.resize(n_left, 1.0);
  for (const auto& [i, j] : SetFamily::matches(x_family, y_family)) {
    (void)j;
    gadget.expected_bc_of_f[i] = 1.5;
  }
  gadget.graph = std::move(builder).build();
  return gadget;
}

}  // namespace congestbc::lb
