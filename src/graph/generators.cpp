#include "graph/generators.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"

namespace congestbc::gen {

Graph path(NodeId n) {
  CBC_EXPECTS(n >= 1, "path needs >= 1 node");
  std::vector<Edge> edges;
  edges.reserve(n > 0 ? n - 1 : 0);
  for (NodeId v = 0; v + 1 < n; ++v) {
    edges.push_back({v, v + 1});
  }
  return Graph(n, std::move(edges));
}

Graph cycle(NodeId n) {
  CBC_EXPECTS(n >= 3, "cycle needs >= 3 nodes");
  std::vector<Edge> edges;
  edges.reserve(n);
  for (NodeId v = 0; v + 1 < n; ++v) {
    edges.push_back({v, v + 1});
  }
  edges.push_back({0, n - 1});
  return Graph(n, std::move(edges));
}

Graph star(NodeId n) {
  CBC_EXPECTS(n >= 2, "star needs >= 2 nodes");
  std::vector<Edge> edges;
  edges.reserve(n - 1);
  for (NodeId v = 1; v < n; ++v) {
    edges.push_back({0, v});
  }
  return Graph(n, std::move(edges));
}

Graph complete(NodeId n) {
  CBC_EXPECTS(n >= 2, "complete graph needs >= 2 nodes");
  std::vector<Edge> edges;
  edges.reserve(static_cast<std::size_t>(n) * (n - 1) / 2);
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) {
      edges.push_back({u, v});
    }
  }
  return Graph(n, std::move(edges));
}

Graph complete_bipartite(NodeId a, NodeId b) {
  CBC_EXPECTS(a >= 1 && b >= 1, "both sides need >= 1 node");
  std::vector<Edge> edges;
  edges.reserve(static_cast<std::size_t>(a) * b);
  for (NodeId u = 0; u < a; ++u) {
    for (NodeId v = 0; v < b; ++v) {
      edges.push_back({u, a + v});
    }
  }
  return Graph(a + b, std::move(edges));
}

Graph wheel(NodeId n) {
  CBC_EXPECTS(n >= 4, "wheel needs >= 4 nodes");
  std::vector<Edge> edges;
  const NodeId hub = n - 1;
  for (NodeId v = 0; v + 1 < hub; ++v) {
    edges.push_back({v, v + 1});
  }
  edges.push_back({0, static_cast<NodeId>(hub - 1)});
  for (NodeId v = 0; v < hub; ++v) {
    edges.push_back({v, hub});
  }
  return Graph(n, std::move(edges));
}

Graph balanced_tree(NodeId branching, unsigned height) {
  CBC_EXPECTS(branching >= 2, "branching must be >= 2");
  GraphBuilder builder;
  builder.add_node();  // root = 0
  std::vector<NodeId> frontier{0};
  for (unsigned level = 0; level < height; ++level) {
    std::vector<NodeId> next;
    for (const NodeId parent : frontier) {
      for (NodeId c = 0; c < branching; ++c) {
        const NodeId child = builder.add_node();
        builder.add_edge(parent, child);
        next.push_back(child);
      }
    }
    frontier = std::move(next);
  }
  return std::move(builder).build();
}

Graph grid(NodeId rows, NodeId cols) {
  CBC_EXPECTS(rows >= 1 && cols >= 1, "grid needs positive dimensions");
  auto id = [cols](NodeId r, NodeId c) { return r * cols + c; };
  std::vector<Edge> edges;
  for (NodeId r = 0; r < rows; ++r) {
    for (NodeId c = 0; c < cols; ++c) {
      if (c + 1 < cols) {
        edges.push_back({id(r, c), id(r, c + 1)});
      }
      if (r + 1 < rows) {
        edges.push_back({id(r, c), id(r + 1, c)});
      }
    }
  }
  return Graph(rows * cols, std::move(edges));
}

Graph hypercube(unsigned dim) {
  CBC_EXPECTS(dim >= 1 && dim <= 20, "hypercube dimension out of range");
  const NodeId n = NodeId{1} << dim;
  std::vector<Edge> edges;
  edges.reserve(static_cast<std::size_t>(n) * dim / 2);
  for (NodeId v = 0; v < n; ++v) {
    for (unsigned d = 0; d < dim; ++d) {
      const NodeId w = v ^ (NodeId{1} << d);
      if (v < w) {
        edges.push_back({v, w});
      }
    }
  }
  return Graph(n, std::move(edges));
}

Graph random_tree(NodeId n, Rng& rng) {
  CBC_EXPECTS(n >= 1, "tree needs >= 1 node");
  std::vector<Edge> edges;
  edges.reserve(n > 0 ? n - 1 : 0);
  for (NodeId v = 1; v < n; ++v) {
    const auto parent = static_cast<NodeId>(rng.next_below(v));
    edges.push_back({parent, v});
  }
  return Graph(n, std::move(edges));
}

Graph erdos_renyi_connected(NodeId n, double p, Rng& rng) {
  CBC_EXPECTS(n >= 1, "graph needs >= 1 node");
  CBC_EXPECTS(p >= 0.0 && p <= 1.0, "probability out of range");
  std::vector<Edge> edges;
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) {
      if (rng.next_bernoulli(p)) {
        edges.push_back({u, v});
      }
    }
  }
  // Connectivity backbone: a random recursive tree.
  for (NodeId v = 1; v < n; ++v) {
    const auto parent = static_cast<NodeId>(rng.next_below(v));
    edges.push_back({parent, v});
  }
  return Graph(n, std::move(edges));
}

Graph erdos_renyi_sparse(NodeId n, double avg_degree, Rng& rng) {
  CBC_EXPECTS(n >= 1, "graph needs >= 1 node");
  CBC_EXPECTS(avg_degree >= 0.0, "average degree must be non-negative");
  const double p =
      n >= 2 ? std::min(avg_degree / static_cast<double>(n - 1), 1.0) : 0.0;
  std::vector<Edge> edges;
  edges.reserve(static_cast<std::size_t>(avg_degree / 2.0 *
                                         static_cast<double>(n)) +
                n);
  if (p >= 1.0) {
    for (NodeId u = 0; u < n; ++u) {
      for (NodeId v = u + 1; v < n; ++v) {
        edges.push_back({u, v});
      }
    }
  } else if (p > 0.0) {
    // Walk the strict upper triangle as one linear index; the gap to the
    // next present edge is geometric with parameter p, so the loop body
    // runs once per *edge*, not once per pair.
    const double log1mp = std::log1p(-p);
    const std::uint64_t total =
        static_cast<std::uint64_t>(n) * (n - 1) / 2;
    std::uint64_t idx = 0;
    NodeId u = 0;
    // Pairs (u, *) occupy linear indices [row_base, row_base + n - 1 - u).
    std::uint64_t row_base = 0;
    while (idx < total) {
      const double uni = rng.next_double();  // in [0, 1)
      const double gap = std::floor(std::log1p(-uni) / log1mp);
      idx += gap >= static_cast<double>(total) ? total
                                               : static_cast<std::uint64_t>(gap);
      if (idx >= total) {
        break;
      }
      while (idx >= row_base + (n - 1 - u)) {
        row_base += n - 1 - u;
        ++u;
      }
      const auto v = static_cast<NodeId>(u + 1 + (idx - row_base));
      edges.push_back({u, v});
      ++idx;
    }
  }
  // Connectivity backbone: a random recursive tree (same deviation from
  // pure ER as erdos_renyi_connected; duplicates are merged by Graph).
  for (NodeId v = 1; v < n; ++v) {
    const auto parent = static_cast<NodeId>(rng.next_below(v));
    edges.push_back({parent, v});
  }
  return Graph(n, std::move(edges));
}

Graph barabasi_albert(NodeId n, NodeId attach, Rng& rng) {
  CBC_EXPECTS(attach >= 1, "attachment count must be >= 1");
  CBC_EXPECTS(n > attach, "graph must be larger than the seed clique");
  std::vector<Edge> edges;
  // Seed: a small clique of attach+1 nodes.
  for (NodeId u = 0; u <= attach; ++u) {
    for (NodeId v = u + 1; v <= attach; ++v) {
      edges.push_back({u, v});
    }
  }
  // Repeated-endpoint list implements preferential attachment.
  std::vector<NodeId> endpoints;
  for (const auto& e : edges) {
    endpoints.push_back(e.u);
    endpoints.push_back(e.v);
  }
  for (NodeId v = attach + 1; v < n; ++v) {
    std::vector<NodeId> chosen;
    while (chosen.size() < attach) {
      const NodeId candidate =
          endpoints[static_cast<std::size_t>(rng.next_below(endpoints.size()))];
      if (std::find(chosen.begin(), chosen.end(), candidate) == chosen.end()) {
        chosen.push_back(candidate);
      }
    }
    for (const NodeId target : chosen) {
      edges.push_back({target, v});
      endpoints.push_back(target);
      endpoints.push_back(v);
    }
  }
  return Graph(n, std::move(edges));
}

Graph watts_strogatz(NodeId n, NodeId k, double beta, Rng& rng) {
  CBC_EXPECTS(n >= 4, "WS needs >= 4 nodes");
  CBC_EXPECTS(k >= 1 && 2 * k < n, "k out of range");
  CBC_EXPECTS(beta >= 0.0 && beta <= 1.0, "beta out of range");
  std::vector<Edge> edges;
  auto mod = [n](NodeId v) { return static_cast<NodeId>(v % n); };
  for (NodeId v = 0; v < n; ++v) {
    for (NodeId j = 1; j <= k; ++j) {
      NodeId target = mod(v + j);
      if (j >= 2 && rng.next_bernoulli(beta)) {
        // Rewire to a uniform non-self target; the j==1 ring is kept so
        // the graph stays connected.
        target = static_cast<NodeId>(rng.next_below(n));
        if (target == v) {
          target = mod(v + 1);
        }
      }
      if (target != v) {
        edges.push_back({std::min(v, target), std::max(v, target)});
      }
    }
  }
  return Graph(n, std::move(edges));
}

Graph lollipop(NodeId m, NodeId tail) {
  CBC_EXPECTS(m >= 3, "clique needs >= 3 nodes");
  CBC_EXPECTS(tail >= 1, "tail needs >= 1 node");
  std::vector<Edge> edges;
  for (NodeId u = 0; u < m; ++u) {
    for (NodeId v = u + 1; v < m; ++v) {
      edges.push_back({u, v});
    }
  }
  for (NodeId i = 0; i < tail; ++i) {
    const NodeId from = i == 0 ? static_cast<NodeId>(m - 1)
                               : static_cast<NodeId>(m + i - 1);
    edges.push_back({from, static_cast<NodeId>(m + i)});
  }
  return Graph(m + tail, std::move(edges));
}

Graph barbell(NodeId m, NodeId bridge) {
  CBC_EXPECTS(m >= 3, "cliques need >= 3 nodes");
  std::vector<Edge> edges;
  const NodeId right = m + bridge;
  for (NodeId u = 0; u < m; ++u) {
    for (NodeId v = u + 1; v < m; ++v) {
      edges.push_back({u, v});
      edges.push_back({static_cast<NodeId>(right + u),
                       static_cast<NodeId>(right + v)});
    }
  }
  NodeId prev = m - 1;
  for (NodeId i = 0; i < bridge; ++i) {
    edges.push_back({prev, static_cast<NodeId>(m + i)});
    prev = static_cast<NodeId>(m + i);
  }
  edges.push_back({prev, right});
  return Graph(right + m, std::move(edges));
}

Graph caterpillar(NodeId spine, NodeId legs) {
  CBC_EXPECTS(spine >= 1, "spine needs >= 1 node");
  GraphBuilder builder;
  NodeId prev = builder.add_node();
  for (NodeId leg = 0; leg < legs; ++leg) {
    builder.add_edge(prev, builder.add_node());
  }
  for (NodeId s = 1; s < spine; ++s) {
    const NodeId cur = builder.add_node();
    builder.add_edge(prev, cur);
    for (NodeId leg = 0; leg < legs; ++leg) {
      builder.add_edge(cur, builder.add_node());
    }
    prev = cur;
  }
  return std::move(builder).build();
}

Graph diamond_chain(unsigned k) {
  CBC_EXPECTS(k >= 1, "chain needs >= 1 diamond");
  GraphBuilder builder;
  NodeId tail = builder.add_node();
  for (unsigned i = 0; i < k; ++i) {
    const NodeId top = builder.add_node();
    const NodeId bottom = builder.add_node();
    const NodeId head = builder.add_node();
    builder.add_edge(tail, top);
    builder.add_edge(tail, bottom);
    builder.add_edge(top, head);
    builder.add_edge(bottom, head);
    tail = head;
  }
  return std::move(builder).build();
}

Graph layered_blowup(NodeId width, unsigned depth) {
  CBC_EXPECTS(width >= 1 && depth >= 1, "need positive width and depth");
  GraphBuilder builder;
  const NodeId source = builder.add_node();
  std::vector<NodeId> prev{source};
  for (unsigned level = 0; level < depth; ++level) {
    std::vector<NodeId> layer;
    for (NodeId i = 0; i < width; ++i) {
      layer.push_back(builder.add_node());
    }
    for (const NodeId a : prev) {
      for (const NodeId b : layer) {
        builder.add_edge(a, b);
      }
    }
    prev = std::move(layer);
  }
  const NodeId sink = builder.add_node();
  for (const NodeId a : prev) {
    builder.add_edge(a, sink);
  }
  return std::move(builder).build();
}

Graph stochastic_block_model(NodeId blocks, NodeId per_block, double p_in,
                             double p_out, Rng& rng) {
  CBC_EXPECTS(blocks >= 1 && per_block >= 1, "need positive sizes");
  CBC_EXPECTS(p_in >= 0.0 && p_in <= 1.0 && p_out >= 0.0 && p_out <= 1.0,
              "probabilities out of range");
  const NodeId n = blocks * per_block;
  std::vector<Edge> edges;
  auto block_of = [per_block](NodeId v) { return v / per_block; };
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) {
      const double p = block_of(u) == block_of(v) ? p_in : p_out;
      if (rng.next_bernoulli(p)) {
        edges.push_back({u, v});
      }
    }
  }
  // Connectivity backbone: a path within each block plus a ring of
  // block representatives.
  for (NodeId v = 0; v + 1 < n; ++v) {
    if (block_of(v) == block_of(v + 1)) {
      edges.push_back({v, static_cast<NodeId>(v + 1)});
    }
  }
  for (NodeId b = 0; b + 1 < blocks; ++b) {
    edges.push_back({static_cast<NodeId>(b * per_block),
                     static_cast<NodeId>((b + 1) * per_block)});
  }
  return Graph(n, std::move(edges));
}

Graph random_geometric(NodeId n, double radius, Rng& rng) {
  CBC_EXPECTS(n >= 2, "need >= 2 nodes");
  CBC_EXPECTS(radius > 0.0, "radius must be positive");
  std::vector<std::pair<double, double>> points(n);
  for (auto& [x, y] : points) {
    x = rng.next_double();
    y = rng.next_double();
  }
  // Sort by x so the connectivity backbone follows the geometry.
  std::sort(points.begin(), points.end());
  std::vector<Edge> edges;
  const double r2 = radius * radius;
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) {
      const double dx = points[u].first - points[v].first;
      if (dx * dx > r2) {
        break;  // points are x-sorted; no farther v can be in range
      }
      const double dy = points[u].second - points[v].second;
      if (dx * dx + dy * dy <= r2) {
        edges.push_back({u, v});
      }
    }
  }
  for (NodeId v = 0; v + 1 < n; ++v) {
    edges.push_back({v, static_cast<NodeId>(v + 1)});
  }
  return Graph(n, std::move(edges));
}

Digraph directed_erdos_renyi(NodeId n, double p, Rng& rng) {
  CBC_EXPECTS(n >= 1, "graph needs >= 1 node");
  CBC_EXPECTS(p >= 0.0 && p <= 1.0, "probability out of range");
  std::vector<Arc> arcs;
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = 0; v < n; ++v) {
      if (u != v && rng.next_bernoulli(p)) {
        arcs.push_back({u, v});
      }
    }
  }
  // Weak-connectivity backbone: a random recursive tree with each edge
  // oriented by a fair coin.
  for (NodeId v = 1; v < n; ++v) {
    const auto parent = static_cast<NodeId>(rng.next_below(v));
    if (rng.next_bernoulli(0.5)) {
      arcs.push_back({parent, v});
    } else {
      arcs.push_back({v, parent});
    }
  }
  return Digraph(n, std::move(arcs));
}

Digraph directed_barabasi_albert(NodeId n, NodeId attach, Rng& rng) {
  CBC_EXPECTS(attach >= 1, "attachment count must be >= 1");
  CBC_EXPECTS(n > attach, "graph must be larger than the seed clique");
  std::vector<Arc> arcs;
  // Seed: a bidirected clique of attach+1 nodes.
  for (NodeId u = 0; u <= attach; ++u) {
    for (NodeId v = 0; v <= attach; ++v) {
      if (u != v) {
        arcs.push_back({u, v});
      }
    }
  }
  // Repeated-endpoint list over total degree implements preferential
  // attachment, exactly as in the undirected generator; the new node
  // cites (points at) its chosen targets.
  std::vector<NodeId> endpoints;
  for (const auto& a : arcs) {
    endpoints.push_back(a.u);
    endpoints.push_back(a.v);
  }
  for (NodeId v = attach + 1; v < n; ++v) {
    std::vector<NodeId> chosen;
    while (chosen.size() < attach) {
      const NodeId candidate =
          endpoints[static_cast<std::size_t>(rng.next_below(endpoints.size()))];
      if (std::find(chosen.begin(), chosen.end(), candidate) == chosen.end()) {
        chosen.push_back(candidate);
      }
    }
    for (const NodeId target : chosen) {
      arcs.push_back({v, target});
      endpoints.push_back(target);
      endpoints.push_back(v);
    }
  }
  return Digraph(n, std::move(arcs));
}

Graph figure1_example() {
  // Paper Figure 1: v1..v5 (0-based here).  Shortest-path structure gives
  // C_B(v2) = 7/2 in the undirected convention used by the paper.
  std::vector<Edge> edges{{0, 1}, {1, 2}, {1, 4}, {2, 3}, {3, 4}};
  return Graph(5, std::move(edges));
}

std::vector<NamedGraph> standard_suite(NodeId n, std::uint64_t seed) {
  CBC_EXPECTS(n >= 8, "suite graphs need >= 8 nodes");
  Rng rng(seed);
  std::vector<NamedGraph> suite;
  suite.push_back({"path", path(n)});
  suite.push_back({"cycle", cycle(n)});
  suite.push_back({"star", star(n)});
  suite.push_back({"complete", complete(static_cast<NodeId>(std::min<NodeId>(n, 24)))});
  suite.push_back({"bipartite", complete_bipartite(n / 2, n - n / 2)});
  suite.push_back({"tree:random", random_tree(n, rng)});
  {
    const auto height = static_cast<unsigned>(
        std::max(1.0, std::floor(std::log2(static_cast<double>(n)))) - 1);
    suite.push_back({"tree:binary", balanced_tree(2, height)});
  }
  {
    const auto side = static_cast<NodeId>(
        std::max(2.0, std::round(std::sqrt(static_cast<double>(n)))));
    suite.push_back({"grid", grid(side, side)});
  }
  suite.push_back({"ER(p=2lnN/N)",
                   erdos_renyi_connected(
                       n, std::min(1.0, 2.0 * std::log(static_cast<double>(n)) /
                                            static_cast<double>(n)),
                       rng)});
  suite.push_back({"BA(m=2)", barabasi_albert(n, 2, rng)});
  suite.push_back({"WS(k=2,b=0.2)", watts_strogatz(n, 2, 0.2, rng)});
  suite.push_back({"lollipop", lollipop(n / 2, n - n / 2)});
  suite.push_back({"barbell", barbell(n / 3, n / 4)});
  {
    const NodeId blocks = 4;
    const NodeId per_block = std::max<NodeId>(2, n / blocks);
    suite.push_back({"SBM(4 blocks)",
                     stochastic_block_model(blocks, per_block, 0.4, 0.02,
                                            rng)});
  }
  suite.push_back({"geometric", random_geometric(
                                    n, 1.8 / std::sqrt(static_cast<double>(n)),
                                    rng)});
  return suite;
}

}  // namespace congestbc::gen
