#include "graph/structure.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace congestbc {

std::vector<std::uint32_t> connected_components(const Graph& g) {
  constexpr std::uint32_t kUnassigned = 0xFFFFFFFF;
  std::vector<std::uint32_t> component(g.num_nodes(), kUnassigned);
  std::uint32_t next = 0;
  std::vector<NodeId> stack;
  for (NodeId start = 0; start < g.num_nodes(); ++start) {
    if (component[start] != kUnassigned) {
      continue;
    }
    component[start] = next;
    stack.push_back(start);
    while (!stack.empty()) {
      const NodeId v = stack.back();
      stack.pop_back();
      for (const NodeId w : g.neighbors(v)) {
        if (component[w] == kUnassigned) {
          component[w] = next;
          stack.push_back(w);
        }
      }
    }
    ++next;
  }
  return component;
}

std::uint32_t component_count(const Graph& g) {
  const auto component = connected_components(g);
  if (component.empty()) {
    return 0;
  }
  return *std::max_element(component.begin(), component.end()) + 1;
}

namespace {

/// Iterative Tarjan lowlink DFS computing bridges and articulation
/// points in one pass.  The graph is simple, so "skip the parent node"
/// is the correct parent-edge exclusion.
struct LowlinkResult {
  std::vector<Edge> bridges;
  std::vector<NodeId> articulation_points;
};

LowlinkResult lowlink_scan(const Graph& g) {
  const NodeId n = g.num_nodes();
  constexpr std::uint32_t kUnvisited = 0xFFFFFFFF;
  std::vector<std::uint32_t> disc(n, kUnvisited);
  std::vector<std::uint32_t> low(n, 0);
  std::vector<NodeId> parent(n, n);  // n = "no parent"
  std::vector<bool> is_articulation(n, false);
  std::uint32_t timer = 0;

  struct Frame {
    NodeId v;
    std::size_t next_neighbor;
  };

  LowlinkResult result;
  std::vector<Frame> stack;
  for (NodeId root = 0; root < n; ++root) {
    if (disc[root] != kUnvisited) {
      continue;
    }
    std::uint32_t root_children = 0;
    disc[root] = low[root] = timer++;
    stack.push_back(Frame{root, 0});
    while (!stack.empty()) {
      Frame& frame = stack.back();
      const NodeId v = frame.v;
      const auto nbrs = g.neighbors(v);
      if (frame.next_neighbor < nbrs.size()) {
        const NodeId w = nbrs[frame.next_neighbor++];
        if (w == parent[v]) {
          continue;  // the (single) tree edge back to the parent
        }
        if (disc[w] == kUnvisited) {
          parent[w] = v;
          if (v == root) {
            ++root_children;
          }
          disc[w] = low[w] = timer++;
          stack.push_back(Frame{w, 0});
        } else {
          low[v] = std::min(low[v], disc[w]);  // back edge
        }
        continue;
      }
      // v is fully expanded: propagate lowlink to the parent.
      stack.pop_back();
      if (!stack.empty()) {
        const NodeId p = stack.back().v;
        low[p] = std::min(low[p], low[v]);
        if (low[v] > disc[p]) {
          result.bridges.push_back(
              Edge{std::min(p, v), std::max(p, v)});
        }
        if (p != root && low[v] >= disc[p]) {
          is_articulation[p] = true;
        }
      }
    }
    if (root_children >= 2) {
      is_articulation[root] = true;
    }
  }
  for (NodeId v = 0; v < n; ++v) {
    if (is_articulation[v]) {
      result.articulation_points.push_back(v);
    }
  }
  std::sort(result.bridges.begin(), result.bridges.end());
  return result;
}

}  // namespace

std::vector<Edge> bridges(const Graph& g) {
  return lowlink_scan(g).bridges;
}

std::vector<NodeId> articulation_points(const Graph& g) {
  return lowlink_scan(g).articulation_points;
}

}  // namespace congestbc
