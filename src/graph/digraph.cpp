#include "graph/digraph.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace congestbc {

Digraph::Digraph(NodeId num_nodes, std::vector<Arc> arcs)
    : num_nodes_(num_nodes) {
  for (const auto& a : arcs) {
    CBC_EXPECTS(a.u != a.v, "self-loops are not allowed");
    CBC_EXPECTS(a.u < num_nodes_ && a.v < num_nodes_,
                "arc endpoint out of range");
  }
  std::sort(arcs.begin(), arcs.end());
  arcs.erase(std::unique(arcs.begin(), arcs.end()), arcs.end());
  arcs_ = std::move(arcs);

  out_offsets_.assign(static_cast<std::size_t>(num_nodes_) + 1, 0);
  in_offsets_.assign(static_cast<std::size_t>(num_nodes_) + 1, 0);
  for (const auto& a : arcs_) {
    ++out_offsets_[a.u + 1];
    ++in_offsets_[a.v + 1];
  }
  for (std::size_t i = 1; i <= num_nodes_; ++i) {
    out_offsets_[i] += out_offsets_[i - 1];
    in_offsets_[i] += in_offsets_[i - 1];
  }
  out_targets_.resize(arcs_.size());
  in_sources_.resize(arcs_.size());
  std::vector<std::size_t> out_cursor(out_offsets_.begin(),
                                      out_offsets_.end() - 1);
  std::vector<std::size_t> in_cursor(in_offsets_.begin(),
                                     in_offsets_.end() - 1);
  for (const auto& a : arcs_) {
    out_targets_[out_cursor[a.u]++] = a.v;
    in_sources_[in_cursor[a.v]++] = a.u;
  }
  // The sorted arc list already emits out-targets in increasing order;
  // in-sources need a per-node sort.
  for (NodeId v = 0; v < num_nodes_; ++v) {
    std::sort(in_sources_.begin() + static_cast<std::ptrdiff_t>(in_offsets_[v]),
              in_sources_.begin() +
                  static_cast<std::ptrdiff_t>(in_offsets_[v + 1]));
  }
}

std::span<const NodeId> Digraph::out_neighbors(NodeId v) const {
  CBC_EXPECTS(v < num_nodes_, "node out of range");
  return {out_targets_.data() + out_offsets_[v],
          out_offsets_[v + 1] - out_offsets_[v]};
}

std::span<const NodeId> Digraph::in_neighbors(NodeId v) const {
  CBC_EXPECTS(v < num_nodes_, "node out of range");
  return {in_sources_.data() + in_offsets_[v],
          in_offsets_[v + 1] - in_offsets_[v]};
}

std::size_t Digraph::out_degree(NodeId v) const {
  CBC_EXPECTS(v < num_nodes_, "node out of range");
  return out_offsets_[v + 1] - out_offsets_[v];
}

std::size_t Digraph::in_degree(NodeId v) const {
  CBC_EXPECTS(v < num_nodes_, "node out of range");
  return in_offsets_[v + 1] - in_offsets_[v];
}

bool Digraph::has_arc(NodeId u, NodeId v) const {
  const auto succ = out_neighbors(u);
  return std::binary_search(succ.begin(), succ.end(), v);
}

Graph Digraph::underlying_undirected() const {
  std::vector<Edge> edges;
  edges.reserve(arcs_.size());
  for (const auto& a : arcs_) {
    edges.push_back({a.u, a.v});  // Graph normalizes and dedups
  }
  return Graph(num_nodes_, std::move(edges));
}

bool is_weakly_connected(const Digraph& g) {
  const NodeId n = g.num_nodes();
  if (n == 0) {
    return false;
  }
  std::vector<bool> seen(n, false);
  std::vector<NodeId> stack{0};
  seen[0] = true;
  NodeId visited = 1;
  while (!stack.empty()) {
    const NodeId v = stack.back();
    stack.pop_back();
    const auto push = [&](NodeId w) {
      if (!seen[w]) {
        seen[w] = true;
        ++visited;
        stack.push_back(w);
      }
    };
    for (const NodeId w : g.out_neighbors(v)) {
      push(w);
    }
    for (const NodeId w : g.in_neighbors(v)) {
      push(w);
    }
  }
  return visited == n;
}

}  // namespace congestbc
