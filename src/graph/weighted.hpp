// Weighted graphs and the virtual-node subdivision reduction.
//
// The paper's algorithm handles unweighted graphs only; its Section X
// suggests that "the idea in [16] which adds virtual nodes in the
// weighted edges might also work" for weighted betweenness.  This module
// realizes that idea for positive integer weights: every weight-w edge is
// subdivided into a path of w unit edges through w-1 virtual nodes.
//
// Correctness: shortest paths between *real* nodes, their lengths and
// their multiplicities are preserved exactly by the subdivision (each
// weighted edge corresponds to a unique unit path).  Running the
// distributed pipeline on the subdivided graph with
//   * sources  = the real nodes, and
//   * targets  = the real nodes (virtual nodes relay psi but add no
//     1/sigma term of their own),
// computes the exact weighted betweenness sum over real (s, t) pairs —
// in O(N') rounds where N' = N + sum(w_e - 1).  For large weights, scale
// them down first (scale_weights) for a classical (1+eps)-style
// approximation.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "graph/graph.hpp"

namespace congestbc {

/// An undirected edge with a positive integer weight (length).
struct WeightedEdge {
  NodeId u;
  NodeId v;
  std::uint32_t weight;

  friend bool operator==(const WeightedEdge&, const WeightedEdge&) = default;
};

/// Immutable weighted graph (thin wrapper: the heavy lifting happens on
/// the subdivided unweighted view).
class WeightedGraph {
 public:
  /// Self-loops and zero weights are rejected; duplicate edges collapse
  /// to the smallest weight.
  WeightedGraph(NodeId num_nodes, std::vector<WeightedEdge> edges);

  NodeId num_nodes() const { return num_nodes_; }
  std::size_t num_edges() const { return edges_.size(); }
  const std::vector<WeightedEdge>& edges() const { return edges_; }

  /// Sum of all edge weights (the subdivision's extra-node budget).
  std::uint64_t total_weight() const;

 private:
  NodeId num_nodes_;
  std::vector<WeightedEdge> edges_;
};

/// The unweighted view produced by subdividing every weighted edge.
struct Subdivision {
  Graph graph;                      ///< N' = N + sum(w-1) nodes
  std::vector<bool> is_real;        ///< size N'; true for original nodes
  /// Original node v keeps its id v in the subdivided graph.
  NodeId num_real;
};

/// Subdivides each weight-w edge into a w-edge path.  Real nodes keep
/// their ids; virtual nodes are appended after them.
Subdivision subdivide(const WeightedGraph& g);

/// Dijkstra distances from `source` (centralized reference).
/// Precondition: connected is NOT required; unreachable = UINT64_MAX.
std::vector<std::uint64_t> dijkstra_distances(const WeightedGraph& g,
                                              NodeId source);

/// Assigns uniform random weights in [1, max_weight] to the edges of an
/// unweighted graph — the standard way to build weighted workloads from
/// the generator suite.
WeightedGraph with_random_weights(const Graph& g, std::uint32_t max_weight,
                                  Rng& rng);

/// Rescales weights to w' = max(1, round(w/rho)) — the classical
/// coarsening used for (1+eps)-approximate weighted distances; shrinks
/// the subdivision (and thus the round count) at bounded relative
/// distance error when rho << the typical path length.
WeightedGraph scale_weights(const WeightedGraph& g, double rho);

}  // namespace congestbc
