// Directed, unweighted, simple graph — the input model of the directed
// betweenness backend (Pontecorvi–Ramachandran, arXiv:1805.08124).
//
// Mirrors graph.hpp's design: dense ids 0..N-1, immutable after
// construction, CSR adjacency.  Both orientations are materialized —
// out-adjacency drives the forward BFS, in-adjacency the dependency
// accumulation — so neither phase pays a transpose.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.hpp"

namespace congestbc {

/// A directed edge u -> v.  Unlike Edge, the endpoint order is the
/// payload: {u, v} and {v, u} are different arcs.
struct Arc {
  NodeId u;
  NodeId v;

  friend bool operator==(const Arc&, const Arc&) = default;
  friend auto operator<=>(const Arc&, const Arc&) = default;
};

/// Immutable directed simple graph in dual-CSR form.
class Digraph {
 public:
  /// Builds from an arc list.  Self-loops are rejected; duplicate arcs
  /// are collapsed (but antiparallel pairs u->v, v->u both survive).
  /// `num_nodes` may exceed the largest endpoint.
  Digraph(NodeId num_nodes, std::vector<Arc> arcs);

  NodeId num_nodes() const { return num_nodes_; }
  std::size_t num_arcs() const { return arcs_.size(); }

  /// Successors of `v` (targets of arcs v -> w) in increasing id order.
  std::span<const NodeId> out_neighbors(NodeId v) const;

  /// Predecessors of `v` (sources of arcs u -> v) in increasing id order.
  std::span<const NodeId> in_neighbors(NodeId v) const;

  std::size_t out_degree(NodeId v) const;
  std::size_t in_degree(NodeId v) const;

  bool has_arc(NodeId u, NodeId v) const;

  /// The deduplicated, sorted arc list (lexicographic by (u, v)).
  const std::vector<Arc>& arcs() const { return arcs_; }

  /// The undirected support: every arc (and its antiparallel twin, if
  /// any) collapses to one undirected edge.  Weak-connectivity checks
  /// and distributed round accounting both run on this shadow.
  Graph underlying_undirected() const;

 private:
  NodeId num_nodes_;
  std::vector<Arc> arcs_;
  std::vector<std::size_t> out_offsets_;  // size num_nodes_ + 1
  std::vector<NodeId> out_targets_;       // size num_arcs
  std::vector<std::size_t> in_offsets_;   // size num_nodes_ + 1
  std::vector<NodeId> in_sources_;        // size num_arcs
};

/// True when the undirected support is connected (single weakly
/// connected component).  The directed backend's standing precondition —
/// strong connectivity is NOT required (unreachable pairs contribute
/// zero dependency, exactly as in the directed Brandes recurrence).
bool is_weakly_connected(const Digraph& g);

}  // namespace congestbc
