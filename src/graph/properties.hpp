// Centralized structural queries used for validation, workload
// characterization, and as building blocks of the baselines.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "graph/graph.hpp"

namespace congestbc {

/// Marker distance for unreachable nodes.
inline constexpr std::uint32_t kUnreachable =
    std::numeric_limits<std::uint32_t>::max();

/// BFS distances from `source` (kUnreachable where disconnected).
std::vector<std::uint32_t> bfs_distances(const Graph& g, NodeId source);

/// True when every node is reachable from node 0 (or the graph is empty).
bool is_connected(const Graph& g);

/// Exact eccentricity of each node (max distance).  Precondition: connected.
std::vector<std::uint32_t> eccentricities(const Graph& g);

/// Exact diameter (max eccentricity).  Precondition: connected, non-empty.
std::uint32_t diameter(const Graph& g);

/// Exact radius (min eccentricity).  Precondition: connected, non-empty.
std::uint32_t radius(const Graph& g);

/// Sum of distances from each node (for closeness).  Precondition: connected.
std::vector<std::uint64_t> distance_sums(const Graph& g);

/// A BFS tree from `source`: parent[v] (source's parent is itself).
/// Ties broken toward the smallest-id parent.  Precondition: connected.
std::vector<NodeId> bfs_tree_parents(const Graph& g, NodeId source);

}  // namespace congestbc
