#include "graph/weighted.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>

#include "common/assert.hpp"

namespace congestbc {

WeightedGraph::WeightedGraph(NodeId num_nodes, std::vector<WeightedEdge> edges)
    : num_nodes_(num_nodes) {
  for (auto& e : edges) {
    CBC_EXPECTS(e.u != e.v, "self-loops are not allowed");
    CBC_EXPECTS(e.weight >= 1, "weights must be positive");
    if (e.u > e.v) {
      std::swap(e.u, e.v);
    }
    CBC_EXPECTS(e.v < num_nodes_, "edge endpoint out of range");
  }
  std::sort(edges.begin(), edges.end(),
            [](const WeightedEdge& a, const WeightedEdge& b) {
              if (a.u != b.u) {
                return a.u < b.u;
              }
              if (a.v != b.v) {
                return a.v < b.v;
              }
              return a.weight < b.weight;
            });
  // Duplicate (u, v) pairs collapse to the lightest edge.
  edges_.reserve(edges.size());
  for (const auto& e : edges) {
    if (!edges_.empty() && edges_.back().u == e.u && edges_.back().v == e.v) {
      continue;
    }
    edges_.push_back(e);
  }
}

std::uint64_t WeightedGraph::total_weight() const {
  std::uint64_t total = 0;
  for (const auto& e : edges_) {
    total += e.weight;
  }
  return total;
}

Subdivision subdivide(const WeightedGraph& g) {
  GraphBuilder builder(g.num_nodes());
  for (const auto& e : g.edges()) {
    NodeId prev = e.u;
    for (std::uint32_t step = 1; step < e.weight; ++step) {
      const NodeId virtual_node = builder.add_node();
      builder.add_edge(prev, virtual_node);
      prev = virtual_node;
    }
    builder.add_edge(prev, e.v);
  }
  Subdivision result{std::move(builder).build(), {}, g.num_nodes()};
  result.is_real.assign(result.graph.num_nodes(), false);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    result.is_real[v] = true;
  }
  return result;
}

std::vector<std::uint64_t> dijkstra_distances(const WeightedGraph& g,
                                              NodeId source) {
  CBC_EXPECTS(source < g.num_nodes(), "source out of range");
  constexpr std::uint64_t kInf = std::numeric_limits<std::uint64_t>::max();
  // Adjacency list built on the fly (the class stores only the edge list).
  std::vector<std::vector<std::pair<NodeId, std::uint32_t>>> adj(g.num_nodes());
  for (const auto& e : g.edges()) {
    adj[e.u].emplace_back(e.v, e.weight);
    adj[e.v].emplace_back(e.u, e.weight);
  }
  std::vector<std::uint64_t> dist(g.num_nodes(), kInf);
  using Item = std::pair<std::uint64_t, NodeId>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;
  dist[source] = 0;
  heap.emplace(0, source);
  while (!heap.empty()) {
    const auto [d, v] = heap.top();
    heap.pop();
    if (d != dist[v]) {
      continue;
    }
    for (const auto& [w, weight] : adj[v]) {
      const std::uint64_t candidate = d + weight;
      if (candidate < dist[w]) {
        dist[w] = candidate;
        heap.emplace(candidate, w);
      }
    }
  }
  return dist;
}

WeightedGraph with_random_weights(const Graph& g, std::uint32_t max_weight,
                                  Rng& rng) {
  CBC_EXPECTS(max_weight >= 1, "max_weight must be >= 1");
  std::vector<WeightedEdge> edges;
  edges.reserve(g.num_edges());
  for (const auto& e : g.edges()) {
    edges.push_back(WeightedEdge{
        e.u, e.v,
        static_cast<std::uint32_t>(rng.next_below(max_weight)) + 1});
  }
  return WeightedGraph(g.num_nodes(), std::move(edges));
}

WeightedGraph scale_weights(const WeightedGraph& g, double rho) {
  CBC_EXPECTS(rho > 0.0, "scaling factor must be positive");
  std::vector<WeightedEdge> edges = g.edges();
  for (auto& e : edges) {
    const double scaled = std::round(static_cast<double>(e.weight) / rho);
    e.weight = static_cast<std::uint32_t>(std::max(1.0, scaled));
  }
  return WeightedGraph(g.num_nodes(), std::move(edges));
}

}  // namespace congestbc
