#include "graph/graph.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace congestbc {

Graph::Graph(NodeId num_nodes, std::vector<Edge> edges)
    : num_nodes_(num_nodes) {
  for (auto& e : edges) {
    CBC_EXPECTS(e.u != e.v, "self-loops are not allowed");
    if (e.u > e.v) {
      std::swap(e.u, e.v);
    }
    CBC_EXPECTS(e.v < num_nodes_, "edge endpoint out of range");
  }
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
  edges_ = std::move(edges);

  offsets_.assign(static_cast<std::size_t>(num_nodes_) + 1, 0);
  for (const auto& e : edges_) {
    ++offsets_[e.u + 1];
    ++offsets_[e.v + 1];
  }
  for (std::size_t i = 1; i < offsets_.size(); ++i) {
    offsets_[i] += offsets_[i - 1];
  }
  targets_.resize(2 * edges_.size());
  std::vector<std::size_t> cursor(offsets_.begin(), offsets_.end() - 1);
  for (const auto& e : edges_) {
    targets_[cursor[e.u]++] = e.v;
    targets_[cursor[e.v]++] = e.u;
  }
  for (NodeId v = 0; v < num_nodes_; ++v) {
    std::sort(targets_.begin() + static_cast<std::ptrdiff_t>(offsets_[v]),
              targets_.begin() + static_cast<std::ptrdiff_t>(offsets_[v + 1]));
  }
}

std::span<const NodeId> Graph::neighbors(NodeId v) const {
  CBC_EXPECTS(v < num_nodes_, "node out of range");
  return {targets_.data() + offsets_[v], offsets_[v + 1] - offsets_[v]};
}

std::size_t Graph::degree(NodeId v) const {
  CBC_EXPECTS(v < num_nodes_, "node out of range");
  return offsets_[v + 1] - offsets_[v];
}

bool Graph::has_edge(NodeId u, NodeId v) const {
  const auto nbrs = neighbors(u);
  return std::binary_search(nbrs.begin(), nbrs.end(), v);
}

std::size_t Graph::neighbor_index(NodeId u, NodeId v) const {
  const auto nbrs = neighbors(u);
  const auto it = std::lower_bound(nbrs.begin(), nbrs.end(), v);
  if (it == nbrs.end() || *it != v) {
    return nbrs.size();
  }
  return static_cast<std::size_t>(it - nbrs.begin());
}

std::size_t Graph::max_degree() const {
  std::size_t best = 0;
  for (NodeId v = 0; v < num_nodes_; ++v) {
    best = std::max(best, degree(v));
  }
  return best;
}

NodeId GraphBuilder::ensure_node(NodeId v) {
  if (v >= num_nodes_) {
    num_nodes_ = v + 1;
  }
  return v;
}

NodeId GraphBuilder::add_node() {
  return num_nodes_++;
}

void GraphBuilder::add_edge(NodeId u, NodeId v) {
  CBC_EXPECTS(u != v, "self-loops are not allowed");
  ensure_node(u);
  ensure_node(v);
  edges_.push_back(Edge{u, v});
}

Graph GraphBuilder::build() && {
  return Graph(num_nodes_, std::move(edges_));
}

}  // namespace congestbc
