// Undirected, unweighted, simple graph — the paper's input model (§III-B).
//
// Stored in CSR (compressed sparse row) form for cache-friendly neighbor
// iteration; immutable after construction.  Nodes are dense ids 0..N-1,
// matching the paper's O(log N)-bit identifier assumption.
#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

namespace congestbc {

using NodeId = std::uint32_t;

/// An undirected edge as an unordered pair (stored with u < v).
struct Edge {
  NodeId u;
  NodeId v;

  friend bool operator==(const Edge&, const Edge&) = default;
  friend auto operator<=>(const Edge&, const Edge&) = default;
};

/// Immutable undirected simple graph in CSR form.
class Graph {
 public:
  /// Builds from an edge list.  Self-loops are rejected; duplicate edges
  /// are collapsed.  `num_nodes` may exceed the largest endpoint to allow
  /// isolated vertices.
  Graph(NodeId num_nodes, std::vector<Edge> edges);

  NodeId num_nodes() const { return num_nodes_; }
  std::size_t num_edges() const { return edges_.size(); }

  /// Neighbors of `v` in increasing id order.
  std::span<const NodeId> neighbors(NodeId v) const;

  std::size_t degree(NodeId v) const;

  bool has_edge(NodeId u, NodeId v) const;

  /// Number of directed adjacency entries (= 2 * num_edges()).  Directed
  /// edges are densely indexed by their position in the CSR adjacency
  /// array, which is what lets the simulator keep flat per-directed-edge
  /// state (cut membership, bundle slots) instead of hash lookups.
  std::size_t num_directed_edges() const { return targets_.size(); }

  /// Start of `v`'s slice of the directed-edge index space; the directed
  /// edge v->neighbors(v)[i] has index adjacency_offset(v) + i.
  std::size_t adjacency_offset(NodeId v) const { return offsets_[v]; }

  /// Position of `v` within u's sorted neighbor list (the local slot
  /// index), or degree(u) when the edge is absent.
  std::size_t neighbor_index(NodeId u, NodeId v) const;

  /// The deduplicated, sorted edge list (u < v in each pair).
  const std::vector<Edge>& edges() const { return edges_; }

  std::size_t max_degree() const;

 private:
  NodeId num_nodes_;
  std::vector<Edge> edges_;
  std::vector<std::size_t> offsets_;  // size num_nodes_ + 1
  std::vector<NodeId> targets_;       // size 2 * num_edges
};

/// Convenience mutable builder when edges are discovered incrementally.
class GraphBuilder {
 public:
  explicit GraphBuilder(NodeId num_nodes = 0) : num_nodes_(num_nodes) {}

  /// Ensures the node exists; returns its id unchanged.
  NodeId ensure_node(NodeId v);

  /// Allocates a fresh node and returns its id.
  NodeId add_node();

  /// Adds an undirected edge; endpoints are created as needed.
  void add_edge(NodeId u, NodeId v);

  NodeId num_nodes() const { return num_nodes_; }

  /// Finalizes into an immutable Graph.
  Graph build() &&;

 private:
  NodeId num_nodes_;
  std::vector<Edge> edges_;
};

}  // namespace congestbc
