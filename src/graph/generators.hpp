// Deterministic workload generators.
//
// Every generator returns a *connected* graph (the paper's algorithm, like
// Brandes', assumes a connected network), and takes an explicit Rng where
// randomness is involved so experiments are reproducible.
#pragma once

#include <string>
#include <vector>

#include "common/rng.hpp"
#include "graph/digraph.hpp"
#include "graph/graph.hpp"

namespace congestbc::gen {

/// Simple path 0-1-...-(n-1).  n >= 1.
Graph path(NodeId n);

/// Cycle on n >= 3 nodes.
Graph cycle(NodeId n);

/// Star with center 0 and n-1 leaves.  n >= 2.
Graph star(NodeId n);

/// Complete graph K_n.  n >= 2.
Graph complete(NodeId n);

/// Complete bipartite K_{a,b}; side A is 0..a-1.  a, b >= 1.
Graph complete_bipartite(NodeId a, NodeId b);

/// Wheel: cycle on n-1 nodes plus a hub.  n >= 4.
Graph wheel(NodeId n);

/// Perfect `branching`-ary tree of the given height (height 0 = single
/// node).  branching >= 2.
Graph balanced_tree(NodeId branching, unsigned height);

/// rows x cols grid.  rows, cols >= 1, rows*cols >= 1.
Graph grid(NodeId rows, NodeId cols);

/// d-dimensional hypercube (2^d nodes).  d >= 1.
Graph hypercube(unsigned dim);

/// Uniform random recursive tree on n nodes.  n >= 1.
Graph random_tree(NodeId n, Rng& rng);

/// Erdős–Rényi G(n, p) unioned with a random spanning tree so the result
/// is always connected (documented deviation from pure ER).
Graph erdos_renyi_connected(NodeId n, double p, Rng& rng);

/// Sparse Erdős–Rényi: same G(n, p)-plus-backbone model as
/// erdos_renyi_connected, but sampled with geometric gap-skipping over
/// the upper-triangle edge index — O(m + n) instead of the O(n^2)
/// Bernoulli sweep, which is what makes 10^5..10^6-node ER graphs
/// generable at all.  `avg_degree` fixes p = avg_degree / (n - 1).
/// Draws differ from erdos_renyi_connected (different RNG walk), so the
/// two are distinct, individually reproducible families.
Graph erdos_renyi_sparse(NodeId n, double avg_degree, Rng& rng);

/// Barabási–Albert preferential attachment: each new node attaches to
/// `attach` existing nodes.  n > attach >= 1.
Graph barabasi_albert(NodeId n, NodeId attach, Rng& rng);

/// Watts–Strogatz small world: ring lattice with `k` neighbors per side;
/// the non-adjacent lattice edges are rewired with probability `beta`.
/// The immediate ring is kept intact so the graph stays connected.
Graph watts_strogatz(NodeId n, NodeId k, double beta, Rng& rng);

/// Lollipop: K_m glued to a path of `tail` extra nodes — the classic
/// high-betweenness bridge workload.  m >= 3, tail >= 1.
Graph lollipop(NodeId m, NodeId tail);

/// Barbell: two K_m cliques joined by a path of `bridge` nodes.
Graph barbell(NodeId m, NodeId bridge);

/// Caterpillar: spine path with `legs` leaves per spine node.
Graph caterpillar(NodeId spine, NodeId legs);

/// Chain of `k` diamond gadgets: the number of shortest paths end-to-end
/// is exactly 2^k — the soft-float torture test.
Graph diamond_chain(unsigned k);

/// `depth` layers of `width` nodes, consecutive layers completely joined,
/// with single endpoint nodes on both sides: sigma(s, t) = width^depth.
Graph layered_blowup(NodeId width, unsigned depth);

/// Stochastic block model ("planted partition"): `blocks` communities of
/// `per_block` nodes; intra-community edge probability p_in, inter
/// p_out.  A spanning backbone keeps it connected.
Graph stochastic_block_model(NodeId blocks, NodeId per_block, double p_in,
                             double p_out, Rng& rng);

/// Random geometric graph on the unit square: nodes within `radius`
/// connect; a backbone path through the x-sorted order keeps it
/// connected.
Graph random_geometric(NodeId n, double radius, Rng& rng);

/// Directed Erdős–Rényi D(n, p): every ordered pair (u, v), u != v,
/// carries the arc u -> v with probability p, unioned with a randomly
/// oriented random-recursive-tree backbone so the result is always
/// weakly connected (same documented deviation from the pure model as
/// erdos_renyi_connected).
Digraph directed_erdos_renyi(NodeId n, double p, Rng& rng);

/// Directed Barabási–Albert (citation-network style): each new node
/// points `attach` arcs at existing nodes chosen by preferential
/// attachment over total degree; the seed is a bidirected clique.
/// Weakly connected by construction.  n > attach >= 1.
Digraph directed_barabasi_albert(NodeId n, NodeId attach, Rng& rng);

/// The 5-node worked example of the paper's Figure 1:
/// edges {v1v2, v2v3, v2v5, v3v4, v4v5} with v_i mapped to id i-1.
Graph figure1_example();

/// A generated graph together with a descriptive name, for sweep tables.
struct NamedGraph {
  std::string name;
  Graph graph;
};

/// A cross-family suite of connected graphs of roughly `n` nodes each,
/// used by integration tests and benches.
std::vector<NamedGraph> standard_suite(NodeId n, std::uint64_t seed);

}  // namespace congestbc::gen
