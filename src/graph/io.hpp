// Plain-text edge-list serialization.
//
// Format: optional comment lines starting with '#', then a header line
// "N M" (node and edge counts), then M lines "u v".  This is the common
// denominator of SNAP/DIMACS-style datasets, so real traces can be dropped
// in without conversion.
#pragma once

#include <iosfwd>
#include <string>

#include "graph/digraph.hpp"
#include "graph/graph.hpp"
#include "graph/weighted.hpp"

namespace congestbc {

/// Parses a graph from a stream.  Throws PreconditionError on malformed
/// input (bad counts, out-of-range endpoints, self-loops).
Graph read_edge_list(std::istream& in);

/// Parses a graph from a string.
Graph read_edge_list_text(const std::string& text);

/// Writes the canonical edge-list representation.
void write_edge_list(std::ostream& out, const Graph& g);

/// Returns the canonical edge-list representation as a string.
std::string write_edge_list_text(const Graph& g);

/// Parses a headerless SNAP-style edge list: any number of "u v" lines
/// with '#' comment lines anywhere, arbitrary (sparse, non-contiguous)
/// node ids.  Ids are densely remapped in first-appearance order,
/// self-loops are skipped, duplicate edges merge, and the result is
/// restricted to the largest connected component (the pipeline assumes a
/// connected network) with node ids renumbered to 0..N-1.  This is the
/// format SNAP datasets ship in, so real traces load without conversion.
///
/// `keep_all_components` skips the largest-component restriction and
/// returns every interned node (still densely renumbered in
/// first-appearance order).  Streaming callers need this: a
/// VersionedGraph fixes its node universe at creation, and nodes that
/// start out disconnected may be wired in by later insertions.
Graph read_snap_edge_list(std::istream& in, bool keep_all_components = false);

/// Parses a SNAP-style edge list from a string.
Graph read_snap_edge_list_text(const std::string& text,
                               bool keep_all_components = false);

/// Directed variants of the "N M" header format: each "u v" line is the
/// arc u -> v, orientation preserved (read_edge_list normalizes to
/// u < v; these do not).  Same validation rules otherwise.
Digraph read_directed_edge_list(std::istream& in);
Digraph read_directed_edge_list_text(const std::string& text);
void write_directed_edge_list(std::ostream& out, const Digraph& g);
std::string write_directed_edge_list_text(const Digraph& g);

/// SNAP-style parse in directed mode: identical tokenization and dense
/// first-appearance remapping to read_snap_edge_list, but each "u v"
/// line keeps its orientation as the arc u -> v.  By default the result
/// is restricted to the largest *weakly* connected component (the
/// directed backend's precondition); `keep_all_components` skips that.
Digraph read_snap_directed_edge_list(std::istream& in,
                                     bool keep_all_components = false);
Digraph read_snap_directed_edge_list_text(const std::string& text,
                                          bool keep_all_components = false);

/// Weighted variant: "N M" header then M lines "u v w" (positive integer
/// weights).
WeightedGraph read_weighted_edge_list(std::istream& in);
WeightedGraph read_weighted_edge_list_text(const std::string& text);
void write_weighted_edge_list(std::ostream& out, const WeightedGraph& g);
std::string write_weighted_edge_list_text(const WeightedGraph& g);

}  // namespace congestbc
