#include "graph/io.hpp"

#include <sstream>

#include "common/assert.hpp"

namespace congestbc {

namespace {

/// Pulls the next non-comment, non-blank line; false at end of stream.
bool next_content_line(std::istream& in, std::string& out) {
  std::string line;
  while (std::getline(in, line)) {
    const auto first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos || line[first] == '#') {
      continue;
    }
    out = line;
    return true;
  }
  return false;
}

}  // namespace

Graph read_edge_list(std::istream& in) {

  std::string header;
  CBC_EXPECTS(next_content_line(in, header), "missing header line");
  std::istringstream hs(header);
  std::uint64_t n = 0;
  std::uint64_t m = 0;
  CBC_EXPECTS(static_cast<bool>(hs >> n >> m), "malformed header line");
  CBC_EXPECTS(n <= 0xFFFFFFFFull, "node count too large");

  std::vector<Edge> edges;
  edges.reserve(m);
  for (std::uint64_t i = 0; i < m; ++i) {
    std::string row;
    CBC_EXPECTS(next_content_line(in, row), "fewer edges than header declares");
    std::istringstream rs(row);
    std::uint64_t u = 0;
    std::uint64_t v = 0;
    CBC_EXPECTS(static_cast<bool>(rs >> u >> v), "malformed edge line");
    CBC_EXPECTS(u < n && v < n, "edge endpoint out of range");
    CBC_EXPECTS(u != v, "self-loop in edge list");
    edges.push_back({static_cast<NodeId>(u), static_cast<NodeId>(v)});
  }
  return Graph(static_cast<NodeId>(n), std::move(edges));
}

Graph read_edge_list_text(const std::string& text) {
  std::istringstream in(text);
  return read_edge_list(in);
}

void write_edge_list(std::ostream& out, const Graph& g) {
  out << g.num_nodes() << ' ' << g.num_edges() << '\n';
  for (const auto& e : g.edges()) {
    out << e.u << ' ' << e.v << '\n';
  }
}

std::string write_edge_list_text(const Graph& g) {
  std::ostringstream out;
  write_edge_list(out, g);
  return out.str();
}

WeightedGraph read_weighted_edge_list(std::istream& in) {
  std::string header;
  CBC_EXPECTS(next_content_line(in, header), "missing header line");
  std::istringstream hs(header);
  std::uint64_t n = 0;
  std::uint64_t m = 0;
  CBC_EXPECTS(static_cast<bool>(hs >> n >> m), "malformed header line");
  CBC_EXPECTS(n <= 0xFFFFFFFFull, "node count too large");

  std::vector<WeightedEdge> edges;
  edges.reserve(m);
  for (std::uint64_t i = 0; i < m; ++i) {
    std::string row;
    CBC_EXPECTS(next_content_line(in, row), "fewer edges than header declares");
    std::istringstream rs(row);
    std::uint64_t u = 0;
    std::uint64_t v = 0;
    std::uint64_t w = 0;
    CBC_EXPECTS(static_cast<bool>(rs >> u >> v >> w), "malformed edge line");
    CBC_EXPECTS(u < n && v < n, "edge endpoint out of range");
    CBC_EXPECTS(u != v, "self-loop in edge list");
    CBC_EXPECTS(w >= 1 && w <= 0xFFFFFFFFull, "weight out of range");
    edges.push_back(WeightedEdge{static_cast<NodeId>(u),
                                 static_cast<NodeId>(v),
                                 static_cast<std::uint32_t>(w)});
  }
  return WeightedGraph(static_cast<NodeId>(n), std::move(edges));
}

WeightedGraph read_weighted_edge_list_text(const std::string& text) {
  std::istringstream in(text);
  return read_weighted_edge_list(in);
}

void write_weighted_edge_list(std::ostream& out, const WeightedGraph& g) {
  out << g.num_nodes() << ' ' << g.num_edges() << '\n';
  for (const auto& e : g.edges()) {
    out << e.u << ' ' << e.v << ' ' << e.weight << '\n';
  }
}

std::string write_weighted_edge_list_text(const WeightedGraph& g) {
  std::ostringstream out;
  write_weighted_edge_list(out, g);
  return out.str();
}

}  // namespace congestbc
