#include "graph/io.hpp"

#include <algorithm>
#include <sstream>
#include <unordered_map>

#include "common/assert.hpp"

namespace congestbc {

namespace {

/// Pulls the next non-comment, non-blank line; false at end of stream.
bool next_content_line(std::istream& in, std::string& out) {
  std::string line;
  while (std::getline(in, line)) {
    const auto first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos || line[first] == '#') {
      continue;
    }
    out = line;
    return true;
  }
  return false;
}

}  // namespace

Graph read_edge_list(std::istream& in) {

  std::string header;
  CBC_EXPECTS(next_content_line(in, header), "missing header line");
  std::istringstream hs(header);
  std::uint64_t n = 0;
  std::uint64_t m = 0;
  CBC_EXPECTS(static_cast<bool>(hs >> n >> m), "malformed header line");
  CBC_EXPECTS(n <= 0xFFFFFFFFull, "node count too large");

  std::vector<Edge> edges;
  edges.reserve(m);
  for (std::uint64_t i = 0; i < m; ++i) {
    std::string row;
    CBC_EXPECTS(next_content_line(in, row), "fewer edges than header declares");
    std::istringstream rs(row);
    std::uint64_t u = 0;
    std::uint64_t v = 0;
    CBC_EXPECTS(static_cast<bool>(rs >> u >> v), "malformed edge line");
    CBC_EXPECTS(u < n && v < n, "edge endpoint out of range");
    CBC_EXPECTS(u != v, "self-loop in edge list");
    edges.push_back({static_cast<NodeId>(u), static_cast<NodeId>(v)});
  }
  return Graph(static_cast<NodeId>(n), std::move(edges));
}

Graph read_edge_list_text(const std::string& text) {
  std::istringstream in(text);
  return read_edge_list(in);
}

void write_edge_list(std::ostream& out, const Graph& g) {
  out << g.num_nodes() << ' ' << g.num_edges() << '\n';
  for (const auto& e : g.edges()) {
    out << e.u << ' ' << e.v << '\n';
  }
}

std::string write_edge_list_text(const Graph& g) {
  std::ostringstream out;
  write_edge_list(out, g);
  return out.str();
}

Graph read_snap_edge_list(std::istream& in, bool keep_all_components) {
  // Pass 1: read pairs, densely remap ids in first-appearance order.
  std::unordered_map<std::uint64_t, NodeId> remap;
  std::vector<Edge> edges;
  std::string row;
  const auto intern = [&](std::uint64_t raw) {
    const auto [it, inserted] =
        remap.emplace(raw, static_cast<NodeId>(remap.size()));
    CBC_EXPECTS(!inserted || remap.size() <= 0xFFFFFFFFull,
                "too many distinct node ids");
    return it->second;
  };
  while (next_content_line(in, row)) {
    std::istringstream rs(row);
    std::uint64_t u = 0;
    std::uint64_t v = 0;
    CBC_EXPECTS(static_cast<bool>(rs >> u >> v), "malformed edge line");
    if (u == v) {
      continue;  // SNAP dumps occasionally carry self-loops; drop them
    }
    edges.push_back({intern(u), intern(v)});
  }
  CBC_EXPECTS(!edges.empty(), "SNAP edge list contains no edges");
  const auto n = static_cast<NodeId>(remap.size());
  if (keep_all_components) {
    // Every interned node survives; the dense remap above already
    // renumbered them 0..N-1 in first-appearance order.
    return Graph(n, std::move(edges));
  }

  // Pass 2: largest connected component by union-find.
  std::vector<NodeId> parent(n);
  for (NodeId v = 0; v < n; ++v) {
    parent[v] = v;
  }
  const auto find = [&](NodeId v) {
    while (parent[v] != v) {
      parent[v] = parent[parent[v]];  // path halving
      v = parent[v];
    }
    return v;
  };
  for (const Edge& e : edges) {
    const NodeId ru = find(e.u);
    const NodeId rv = find(e.v);
    if (ru != rv) {
      parent[ru] = rv;
    }
  }
  std::vector<std::uint32_t> comp_size(n, 0);
  for (NodeId v = 0; v < n; ++v) {
    ++comp_size[find(v)];
  }
  const NodeId best_root = static_cast<NodeId>(
      std::max_element(comp_size.begin(), comp_size.end()) -
      comp_size.begin());

  // Pass 3: renumber the surviving component to 0..N-1, preserving
  // first-appearance order.
  constexpr NodeId kOut = ~NodeId{0};
  std::vector<NodeId> dense(n, kOut);
  NodeId next = 0;
  for (NodeId v = 0; v < n; ++v) {
    if (find(v) == best_root) {
      dense[v] = next++;
    }
  }
  std::vector<Edge> kept;
  kept.reserve(edges.size());
  for (const Edge& e : edges) {
    if (dense[e.u] != kOut && dense[e.v] != kOut) {
      kept.push_back({dense[e.u], dense[e.v]});
    }
  }
  return Graph(next, std::move(kept));
}

Graph read_snap_edge_list_text(const std::string& text,
                               bool keep_all_components) {
  std::istringstream in(text);
  return read_snap_edge_list(in, keep_all_components);
}

Digraph read_directed_edge_list(std::istream& in) {
  std::string header;
  CBC_EXPECTS(next_content_line(in, header), "missing header line");
  std::istringstream hs(header);
  std::uint64_t n = 0;
  std::uint64_t m = 0;
  CBC_EXPECTS(static_cast<bool>(hs >> n >> m), "malformed header line");
  CBC_EXPECTS(n <= 0xFFFFFFFFull, "node count too large");

  std::vector<Arc> arcs;
  arcs.reserve(m);
  for (std::uint64_t i = 0; i < m; ++i) {
    std::string row;
    CBC_EXPECTS(next_content_line(in, row), "fewer arcs than header declares");
    std::istringstream rs(row);
    std::uint64_t u = 0;
    std::uint64_t v = 0;
    CBC_EXPECTS(static_cast<bool>(rs >> u >> v), "malformed arc line");
    CBC_EXPECTS(u < n && v < n, "arc endpoint out of range");
    CBC_EXPECTS(u != v, "self-loop in arc list");
    arcs.push_back({static_cast<NodeId>(u), static_cast<NodeId>(v)});
  }
  return Digraph(static_cast<NodeId>(n), std::move(arcs));
}

Digraph read_directed_edge_list_text(const std::string& text) {
  std::istringstream in(text);
  return read_directed_edge_list(in);
}

void write_directed_edge_list(std::ostream& out, const Digraph& g) {
  out << g.num_nodes() << ' ' << g.num_arcs() << '\n';
  for (const auto& a : g.arcs()) {
    out << a.u << ' ' << a.v << '\n';
  }
}

std::string write_directed_edge_list_text(const Digraph& g) {
  std::ostringstream out;
  write_directed_edge_list(out, g);
  return out.str();
}

Digraph read_snap_directed_edge_list(std::istream& in,
                                     bool keep_all_components) {
  // Pass 1: identical dense remap to read_snap_edge_list, but the (u, v)
  // order of each line survives as an arc orientation.
  std::unordered_map<std::uint64_t, NodeId> remap;
  std::vector<Arc> arcs;
  std::string row;
  const auto intern = [&](std::uint64_t raw) {
    const auto [it, inserted] =
        remap.emplace(raw, static_cast<NodeId>(remap.size()));
    CBC_EXPECTS(!inserted || remap.size() <= 0xFFFFFFFFull,
                "too many distinct node ids");
    return it->second;
  };
  while (next_content_line(in, row)) {
    std::istringstream rs(row);
    std::uint64_t u = 0;
    std::uint64_t v = 0;
    CBC_EXPECTS(static_cast<bool>(rs >> u >> v), "malformed edge line");
    if (u == v) {
      continue;
    }
    arcs.push_back({intern(u), intern(v)});
  }
  CBC_EXPECTS(!arcs.empty(), "SNAP edge list contains no edges");
  const auto n = static_cast<NodeId>(remap.size());
  if (keep_all_components) {
    return Digraph(n, std::move(arcs));
  }

  // Pass 2: largest WEAKLY connected component — union-find ignores the
  // orientation, which only pass 3 preserves.
  std::vector<NodeId> parent(n);
  for (NodeId v = 0; v < n; ++v) {
    parent[v] = v;
  }
  const auto find = [&](NodeId v) {
    while (parent[v] != v) {
      parent[v] = parent[parent[v]];  // path halving
      v = parent[v];
    }
    return v;
  };
  for (const Arc& a : arcs) {
    const NodeId ru = find(a.u);
    const NodeId rv = find(a.v);
    if (ru != rv) {
      parent[ru] = rv;
    }
  }
  std::vector<std::uint32_t> comp_size(n, 0);
  for (NodeId v = 0; v < n; ++v) {
    ++comp_size[find(v)];
  }
  const NodeId best_root = static_cast<NodeId>(
      std::max_element(comp_size.begin(), comp_size.end()) -
      comp_size.begin());

  // Pass 3: renumber the surviving component, preserving both
  // first-appearance order and arc orientation.
  constexpr NodeId kOut = ~NodeId{0};
  std::vector<NodeId> dense(n, kOut);
  NodeId next = 0;
  for (NodeId v = 0; v < n; ++v) {
    if (find(v) == best_root) {
      dense[v] = next++;
    }
  }
  std::vector<Arc> kept;
  kept.reserve(arcs.size());
  for (const Arc& a : arcs) {
    if (dense[a.u] != kOut && dense[a.v] != kOut) {
      kept.push_back({dense[a.u], dense[a.v]});
    }
  }
  return Digraph(next, std::move(kept));
}

Digraph read_snap_directed_edge_list_text(const std::string& text,
                                          bool keep_all_components) {
  std::istringstream in(text);
  return read_snap_directed_edge_list(in, keep_all_components);
}

WeightedGraph read_weighted_edge_list(std::istream& in) {
  std::string header;
  CBC_EXPECTS(next_content_line(in, header), "missing header line");
  std::istringstream hs(header);
  std::uint64_t n = 0;
  std::uint64_t m = 0;
  CBC_EXPECTS(static_cast<bool>(hs >> n >> m), "malformed header line");
  CBC_EXPECTS(n <= 0xFFFFFFFFull, "node count too large");

  std::vector<WeightedEdge> edges;
  edges.reserve(m);
  for (std::uint64_t i = 0; i < m; ++i) {
    std::string row;
    CBC_EXPECTS(next_content_line(in, row), "fewer edges than header declares");
    std::istringstream rs(row);
    std::uint64_t u = 0;
    std::uint64_t v = 0;
    std::uint64_t w = 0;
    CBC_EXPECTS(static_cast<bool>(rs >> u >> v >> w), "malformed edge line");
    CBC_EXPECTS(u < n && v < n, "edge endpoint out of range");
    CBC_EXPECTS(u != v, "self-loop in edge list");
    CBC_EXPECTS(w >= 1 && w <= 0xFFFFFFFFull, "weight out of range");
    edges.push_back(WeightedEdge{static_cast<NodeId>(u),
                                 static_cast<NodeId>(v),
                                 static_cast<std::uint32_t>(w)});
  }
  return WeightedGraph(static_cast<NodeId>(n), std::move(edges));
}

WeightedGraph read_weighted_edge_list_text(const std::string& text) {
  std::istringstream in(text);
  return read_weighted_edge_list(in);
}

void write_weighted_edge_list(std::ostream& out, const WeightedGraph& g) {
  out << g.num_nodes() << ' ' << g.num_edges() << '\n';
  for (const auto& e : g.edges()) {
    out << e.u << ' ' << e.v << ' ' << e.weight << '\n';
  }
}

std::string write_weighted_edge_list_text(const WeightedGraph& g) {
  std::ostringstream out;
  write_weighted_edge_list(out, g);
  return out.str();
}

}  // namespace congestbc
