// Structural decompositions: connected components, bridges, articulation
// points (Tarjan/Hopcroft lowlink).  These are natural companions to
// betweenness analysis — every bridge endpoint and articulation point
// separates node pairs and therefore carries betweenness — and the test
// suite uses exactly that relationship as a cross-check.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace congestbc {

/// component id per node (0-based, in discovery order from node 0).
std::vector<std::uint32_t> connected_components(const Graph& g);

/// Number of connected components.
std::uint32_t component_count(const Graph& g);

/// All bridge edges (removal disconnects their endpoints), as (u < v)
/// pairs in sorted order.
std::vector<Edge> bridges(const Graph& g);

/// All articulation points (removal increases the component count), in
/// increasing id order.
std::vector<NodeId> articulation_points(const Graph& g);

}  // namespace congestbc
