#include "graph/properties.hpp"

#include <algorithm>
#include <queue>

#include "common/assert.hpp"

namespace congestbc {

std::vector<std::uint32_t> bfs_distances(const Graph& g, NodeId source) {
  CBC_EXPECTS(source < g.num_nodes(), "source out of range");
  std::vector<std::uint32_t> dist(g.num_nodes(), kUnreachable);
  std::queue<NodeId> queue;
  dist[source] = 0;
  queue.push(source);
  while (!queue.empty()) {
    const NodeId v = queue.front();
    queue.pop();
    for (const NodeId w : g.neighbors(v)) {
      if (dist[w] == kUnreachable) {
        dist[w] = dist[v] + 1;
        queue.push(w);
      }
    }
  }
  return dist;
}

bool is_connected(const Graph& g) {
  if (g.num_nodes() == 0) {
    return true;
  }
  const auto dist = bfs_distances(g, 0);
  return std::find(dist.begin(), dist.end(), kUnreachable) == dist.end();
}

std::vector<std::uint32_t> eccentricities(const Graph& g) {
  std::vector<std::uint32_t> ecc(g.num_nodes(), 0);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const auto dist = bfs_distances(g, v);
    std::uint32_t best = 0;
    for (const auto d : dist) {
      CBC_EXPECTS(d != kUnreachable, "graph must be connected");
      best = std::max(best, d);
    }
    ecc[v] = best;
  }
  return ecc;
}

std::uint32_t diameter(const Graph& g) {
  CBC_EXPECTS(g.num_nodes() > 0, "empty graph has no diameter");
  const auto ecc = eccentricities(g);
  return *std::max_element(ecc.begin(), ecc.end());
}

std::uint32_t radius(const Graph& g) {
  CBC_EXPECTS(g.num_nodes() > 0, "empty graph has no radius");
  const auto ecc = eccentricities(g);
  return *std::min_element(ecc.begin(), ecc.end());
}

std::vector<std::uint64_t> distance_sums(const Graph& g) {
  std::vector<std::uint64_t> sums(g.num_nodes(), 0);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const auto dist = bfs_distances(g, v);
    std::uint64_t total = 0;
    for (const auto d : dist) {
      CBC_EXPECTS(d != kUnreachable, "graph must be connected");
      total += d;
    }
    sums[v] = total;
  }
  return sums;
}

std::vector<NodeId> bfs_tree_parents(const Graph& g, NodeId source) {
  const auto dist = bfs_distances(g, source);
  std::vector<NodeId> parent(g.num_nodes(), source);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    CBC_EXPECTS(dist[v] != kUnreachable, "graph must be connected");
    if (v == source) {
      continue;
    }
    for (const NodeId w : g.neighbors(v)) {
      if (dist[w] + 1 == dist[v]) {
        parent[v] = w;  // neighbors are sorted: first hit is smallest id
        break;
      }
    }
  }
  return parent;
}

}  // namespace congestbc
