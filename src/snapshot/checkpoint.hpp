// Checkpoint policy and on-disk checkpoint management.
//
// A CheckpointPolicy attached to NetworkConfig makes the simulator write a
// full snapshot every `every_rounds` rounds.  Writes are atomic
// (write-to-temp + rename, so a crash mid-write can never leave a
// truncated file under the final name) and pruned to the newest
// `keep_last` files, so an interrupted run always finds an intact recent
// checkpoint to --resume from.
//
// File naming: ckpt-<round, zero-padded to 12 digits>.cbcsnap inside the
// policy directory.  The zero padding makes lexicographic order equal
// round order, which is what latest_checkpoint() and the pruner sort by.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/bit_io.hpp"

namespace congestbc {

/// When and where the simulator writes checkpoints.  Inert when
/// every_rounds == 0 or directory is empty.
struct CheckpointPolicy {
  /// Write a checkpoint at every round divisible by this (round 0 is
  /// skipped — it would just be the initial state).  0 disables.
  std::uint64_t every_rounds = 0;
  /// Target directory; created on first write.  Empty disables.
  std::string directory;
  /// Newest checkpoints kept on disk; older ones are pruned after each
  /// successful write.  0 means keep everything.
  unsigned keep_last = 2;

  bool enabled() const { return every_rounds != 0 && !directory.empty(); }
};

/// "ckpt-000000000042.cbcsnap" for round 42.
std::string checkpoint_file_name(std::uint64_t round);

/// Atomically writes `payload` (wrapped in the snapshot container) as the
/// round-`round` checkpoint in `directory`, creating the directory if
/// needed, then prunes to `keep_last`.  Returns the final path.  Throws
/// SnapshotError on I/O failure.
std::string write_checkpoint_file(const std::string& directory,
                                  std::uint64_t round,
                                  const BitWriter& payload,
                                  unsigned keep_last);

/// Checkpoint files in `directory`, oldest first.  Missing directory ==
/// empty list.
std::vector<std::string> list_checkpoints(const std::string& directory);

/// Path of the newest checkpoint in `directory`, if any.
std::optional<std::string> latest_checkpoint(const std::string& directory);

}  // namespace congestbc
