// The per-program side of the checkpoint/restore subsystem.
//
// A NodeProgram that also derives from Snapshottable can have its complete
// state captured into a snapshot (snapshot/snapshot.hpp) and restored into
// a freshly constructed instance.  The simulator (Network::save_snapshot /
// the checkpoint policy) discovers the capability by dynamic_cast and
// refuses to snapshot a network whose programs do not provide it.
#pragma once

#include "common/bit_io.hpp"

namespace congestbc {

/// Save/load of one program's complete mutable state.
///
/// Contract:
///   * save_state must serialize every field that influences any future
///     on_round / done() / progress_marker() behavior or any harvested
///     output.  Configuration reachable from constructor arguments
///     (formats, masks, topology) is NOT serialized — the restoring side
///     reconstructs the program with the same constructor arguments first,
///     then calls load_state on it.
///   * load_state must consume exactly the bits save_state produced and
///     leave the program bit-identical to the saved one: running both
///     forward produces identical messages, metrics, and outputs.
///   * load_state is called at most once, on a freshly constructed
///     instance, before its first on_round.
///   * Decorators (congest/reliable.hpp) save their own state plus their
///     inner program's, nested as a length-prefixed blob.
class Snapshottable {
 public:
  virtual ~Snapshottable() = default;

  virtual void save_state(BitWriter& w) const = 0;
  virtual void load_state(BitReader& r) = 0;
};

}  // namespace congestbc
