#include "snapshot/checkpoint.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <system_error>

#include "snapshot/snapshot.hpp"

namespace congestbc {

namespace fs = std::filesystem;

namespace {

constexpr char kPrefix[] = "ckpt-";
constexpr char kSuffix[] = ".cbcsnap";

bool is_checkpoint_name(const std::string& name) {
  if (name.size() <= sizeof(kPrefix) - 1 + sizeof(kSuffix) - 1) {
    return false;
  }
  if (name.rfind(kPrefix, 0) != 0 ||
      name.compare(name.size() - (sizeof(kSuffix) - 1), sizeof(kSuffix) - 1,
                   kSuffix) != 0) {
    return false;
  }
  const std::string digits =
      name.substr(sizeof(kPrefix) - 1,
                  name.size() - (sizeof(kPrefix) - 1) - (sizeof(kSuffix) - 1));
  return !digits.empty() &&
         std::all_of(digits.begin(), digits.end(),
                     [](char c) { return c >= '0' && c <= '9'; });
}

}  // namespace

std::string checkpoint_file_name(std::uint64_t round) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%s%012llu%s", kPrefix,
                static_cast<unsigned long long>(round), kSuffix);
  return buf;
}

std::string write_checkpoint_file(const std::string& directory,
                                  std::uint64_t round,
                                  const BitWriter& payload,
                                  unsigned keep_last) {
  std::error_code ec;
  fs::create_directories(directory, ec);
  if (ec) {
    throw SnapshotError("cannot create checkpoint directory " + directory +
                        ": " + ec.message());
  }
  const fs::path final_path = fs::path(directory) / checkpoint_file_name(round);
  const fs::path tmp_path = fs::path(directory) /
                            (checkpoint_file_name(round) + ".tmp");
  {
    std::ofstream out(tmp_path, std::ios::binary | std::ios::trunc);
    if (!out.good()) {
      throw SnapshotError("cannot open checkpoint temp file " +
                          tmp_path.string());
    }
    write_snapshot_container(out, payload);
    out.flush();
    if (!out.good()) {
      throw SnapshotError("checkpoint write failed: " + tmp_path.string());
    }
  }
  // rename(2) within one directory is atomic: readers see either the old
  // set of checkpoints or the complete new file, never a partial one.
  fs::rename(tmp_path, final_path, ec);
  if (ec) {
    fs::remove(tmp_path, ec);
    throw SnapshotError("cannot finalize checkpoint " + final_path.string());
  }

  if (keep_last != 0) {
    auto files = list_checkpoints(directory);
    while (files.size() > keep_last) {
      fs::remove(files.front(), ec);  // oldest first; best effort
      files.erase(files.begin());
    }
  }
  return final_path.string();
}

std::vector<std::string> list_checkpoints(const std::string& directory) {
  std::vector<std::string> files;
  std::error_code ec;
  fs::directory_iterator it(directory, ec);
  if (ec) {
    return files;
  }
  for (const auto& entry : it) {
    if (entry.is_regular_file(ec) &&
        is_checkpoint_name(entry.path().filename().string())) {
      files.push_back(entry.path().string());
    }
  }
  // Zero-padded round numbers: lexicographic == chronological.
  std::sort(files.begin(), files.end());
  return files;
}

std::optional<std::string> latest_checkpoint(const std::string& directory) {
  auto files = list_checkpoints(directory);
  if (files.empty()) {
    return std::nullopt;
  }
  return files.back();
}

}  // namespace congestbc
