#include "snapshot/snapshot.hpp"

#include <bit>
#include <cmath>
#include <cstring>
#include <istream>
#include <limits>
#include <ostream>

namespace congestbc {

namespace {

constexpr char kMagic[8] = {'C', 'B', 'C', 'S', 'N', 'A', 'P', '1'};

void put_le(std::ostream& out, std::uint64_t value, unsigned bytes) {
  char buf[8];
  for (unsigned i = 0; i < bytes; ++i) {
    buf[i] = static_cast<char>((value >> (8 * i)) & 0xff);
  }
  out.write(buf, bytes);
}

std::uint64_t get_le(std::istream& in, unsigned bytes, const char* what) {
  char buf[8];
  in.read(buf, bytes);
  if (static_cast<std::size_t>(in.gcount()) != bytes) {
    throw SnapshotError(std::string("truncated snapshot: short read in ") +
                        what);
  }
  std::uint64_t value = 0;
  for (unsigned i = 0; i < bytes; ++i) {
    value |= static_cast<std::uint64_t>(static_cast<std::uint8_t>(buf[i]))
             << (8 * i);
  }
  return value;
}

}  // namespace

std::uint64_t fnv1a(const std::uint8_t* data, std::size_t size,
                    std::uint64_t seed) {
  std::uint64_t hash = seed;
  for (std::size_t i = 0; i < size; ++i) {
    hash ^= data[i];
    hash *= 1099511628211ull;
  }
  return hash;
}

std::uint64_t fnv1a_u64(std::uint64_t value, std::uint64_t hash) {
  for (unsigned i = 0; i < 8; ++i) {
    hash ^= (value >> (8 * i)) & 0xff;
    hash *= 1099511628211ull;
  }
  return hash;
}

void write_snapshot_container(std::ostream& out, const BitWriter& payload) {
  const std::uint64_t bits = payload.bit_size();
  const std::uint64_t bytes = (bits + 7) / 8;
  out.write(kMagic, sizeof(kMagic));
  put_le(out, kSnapshotFormatVersion, 4);
  put_le(out, bits, 8);
  put_le(out, bytes, 8);
  put_le(out, fnv1a(payload.data(), static_cast<std::size_t>(bytes)), 8);
  out.write(reinterpret_cast<const char*>(payload.data()),
            static_cast<std::streamsize>(bytes));
  if (!out.good()) {
    throw SnapshotError("snapshot write failed (stream error)");
  }
}

SnapshotPayload read_snapshot_container(std::istream& in) {
  char magic[8];
  in.read(magic, sizeof(magic));
  if (static_cast<std::size_t>(in.gcount()) != sizeof(magic) ||
      std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    throw SnapshotError("not a snapshot: bad magic");
  }
  const std::uint64_t version = get_le(in, 4, "version");
  if (version != kSnapshotFormatVersion) {
    throw SnapshotError("unsupported snapshot format version " +
                        std::to_string(version) + " (expected " +
                        std::to_string(kSnapshotFormatVersion) + ")");
  }
  const std::uint64_t bits = get_le(in, 8, "payload bit length");
  const std::uint64_t bytes = get_le(in, 8, "payload byte length");
  if (bytes != (bits + 7) / 8) {
    throw SnapshotError("corrupt snapshot: inconsistent payload lengths");
  }
  const std::uint64_t expected_hash = get_le(in, 8, "payload hash");
  SnapshotPayload payload;
  payload.bits = bits;
  payload.bytes.resize(static_cast<std::size_t>(bytes));
  in.read(reinterpret_cast<char*>(payload.bytes.data()),
          static_cast<std::streamsize>(bytes));
  if (static_cast<std::uint64_t>(in.gcount()) != bytes) {
    throw SnapshotError("truncated snapshot: payload shorter than header "
                        "claims");
  }
  if (fnv1a(payload.bytes.data(), payload.bytes.size()) != expected_hash) {
    throw SnapshotError("corrupt snapshot: payload hash mismatch");
  }
  return payload;
}

namespace snap {

void put_double(BitWriter& w, double value) {
  w.write(std::bit_cast<std::uint64_t>(value), 64);
}

double get_double(BitReader& r) {
  return std::bit_cast<double>(r.read(64));
}

void put_long_double(BitWriter& w, long double value) {
  // Decompose instead of memcpy: sizeof(long double) includes padding
  // bytes whose values are indeterminate, and the mantissa of every
  // supported long double format fits 64 bits exactly.
  const bool negative = std::signbit(value);
  const long double magnitude = negative ? -value : value;
  int exp = 0;
  const long double frac = std::frexp(magnitude, &exp);  // in [0.5, 1)
  const auto mantissa =
      static_cast<std::uint64_t>(std::ldexp(frac, 64));  // top 64 bits, exact
  put_bool(w, negative);
  w.write(mantissa, 64);
  put_i64(w, exp);
}

long double get_long_double(BitReader& r) {
  const bool negative = get_bool(r);
  const std::uint64_t mantissa = r.read(64);
  const std::int64_t exp = get_i64(r);
  const long double magnitude =
      std::ldexp(static_cast<long double>(mantissa),
                 static_cast<int>(exp) - 64);
  return negative ? -magnitude : magnitude;
}

void put_bits(BitWriter& w, const std::uint8_t* data, std::size_t bits) {
  w.write_varuint(bits);
  w.append(data, bits);
}

std::uint64_t get_u64(BitReader& r) { return r.read_varuint(); }

std::int64_t get_i64(BitReader& r) {
  const std::uint64_t u = r.read_varuint();
  return static_cast<std::int64_t>((u >> 1) ^ (~(u & 1) + 1));
}

bool get_bool(BitReader& r) { return r.read_bool(); }

std::uint64_t get_count(BitReader& r, std::uint64_t min_bits_each) {
  const std::uint64_t count = r.read_varuint();
  if (min_bits_each != 0 && count > r.remaining() / min_bits_each) {
    throw SnapshotError(
        "corrupt snapshot: element count " + std::to_string(count) +
        " exceeds what the remaining payload could possibly hold");
  }
  return count;
}

std::uint64_t get_bits(BitReader& r, std::vector<std::uint8_t>& bytes) {
  const std::uint64_t bits = r.read_varuint();
  if (bits > r.remaining()) {
    throw SnapshotError("corrupt snapshot: blob length " +
                        std::to_string(bits) +
                        " bits exceeds the remaining payload");
  }
  bytes.assign((static_cast<std::size_t>(bits) + 7) / 8, 0);
  std::uint64_t remaining = bits;
  std::size_t byte = 0;
  while (remaining > 0) {
    const unsigned chunk =
        remaining >= 8 ? 8u : static_cast<unsigned>(remaining);
    bytes[byte++] = static_cast<std::uint8_t>(r.read(chunk));
    remaining -= chunk;
  }
  return bits;
}

}  // namespace snap

}  // namespace congestbc
