// Deterministic checkpoint/restore: the snapshot container format.
//
// A snapshot is the complete simulator state at a round boundary,
// serialized with the same BitWriter/BitReader machinery the CONGEST
// messages use (common/bit_io.hpp), wrapped in a small self-describing
// binary container:
//
//   bytes 0..7    magic "CBCSNAP1"
//   u32   LE      format version (kSnapshotFormatVersion)
//   u64   LE      payload length in bits
//   u64   LE      payload length in bytes (= ceil(bits / 8))
//   u64   LE      FNV-1a hash of the payload bytes
//   ...           payload bytes
//
// The contract is strict (DESIGN.md §9): a run resumed from a snapshot
// produces bit-identical centralities, metrics, and trace streams to the
// uninterrupted run, for any thread count, fault-free or under a fault
// plan.  Corrupt input — truncated files, flipped bits, wrong magic or
// version, trailing garbage inside a section — is rejected with a typed
// SnapshotError; it must never crash, read out of bounds, or silently
// resume from damaged state (the payload hash catches corruption before
// any field is interpreted).
//
// Payload layout is owned by the writers (congest/network.cpp for the
// engine section, each Snapshottable program for its own blob); this
// header only provides the container and the bounds-checked field
// helpers shared by all of them.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/bit_io.hpp"

namespace congestbc {

/// A snapshot could not be written, read, or applied: I/O failure,
/// truncation, corruption, version mismatch, or a snapshot that does not
/// match the network it is being loaded into (different graph, budget, or
/// fault plan).  Deliberately NOT an InvariantError: a bad snapshot file
/// is an environmental fault, not a library bug.
class SnapshotError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Bumped on any incompatible payload-layout change; readers reject other
/// versions with SnapshotError instead of guessing.
inline constexpr std::uint32_t kSnapshotFormatVersion = 1;

/// A verified payload: container parsed, magic/version/hash checked.
struct SnapshotPayload {
  std::vector<std::uint8_t> bytes;
  std::uint64_t bits = 0;

  BitReader reader() const {
    return BitReader(bytes.data(), static_cast<std::size_t>(bits));
  }
};

/// Wraps `payload` in the container and writes it to `out`.  Throws
/// SnapshotError when the stream fails.
void write_snapshot_container(std::ostream& out, const BitWriter& payload);

/// Reads and verifies a container (magic, version, lengths, hash).
/// Throws SnapshotError on any mismatch or short read.
SnapshotPayload read_snapshot_container(std::istream& in);

/// FNV-1a over a byte range — the container's integrity hash, also used
/// for the graph/fault-plan fingerprints recorded in the engine section.
std::uint64_t fnv1a(const std::uint8_t* data, std::size_t size,
                    std::uint64_t seed = 14695981039346656037ull);
std::uint64_t fnv1a_u64(std::uint64_t value, std::uint64_t hash);

namespace snap {

// Field helpers shared by every snapshot writer/loader.  Writers use the
// BitWriter primitives directly; the read side adds the bounds checking
// that turns a malformed payload into a SnapshotError instead of UB or an
// unbounded allocation.

inline void put_u64(BitWriter& w, std::uint64_t value) {
  w.write_varuint(value);
}

/// Signed value in zigzag coding (exponents, deltas).
inline void put_i64(BitWriter& w, std::int64_t value) {
  const auto u = static_cast<std::uint64_t>(value);
  w.write_varuint((u << 1) ^ static_cast<std::uint64_t>(value >> 63));
}

inline void put_bool(BitWriter& w, bool b) { w.write_bool(b); }

/// Bit-exact double (IEEE-754 bit pattern; centralities must survive a
/// round-trip unchanged).
void put_double(BitWriter& w, double value);

/// Bit-exact long double via (mantissa, exponent) decomposition — the
/// x86 80-bit format has 64 mantissa bits, which a u64 captures exactly
/// (and any narrower long double trivially fits).
void put_long_double(BitWriter& w, long double value);

/// Length-prefixed raw bit blob.
void put_bits(BitWriter& w, const std::uint8_t* data, std::size_t bits);

std::uint64_t get_u64(BitReader& r);
std::int64_t get_i64(BitReader& r);
bool get_bool(BitReader& r);
double get_double(BitReader& r);
long double get_long_double(BitReader& r);

/// Reads an element count and validates it against the bits actually left
/// in the stream (each element needs at least `min_bits_each` bits), so a
/// corrupt length field fails fast instead of driving a multi-gigabyte
/// resize.  `min_bits_each` must be >= 1.
std::uint64_t get_count(BitReader& r, std::uint64_t min_bits_each);

/// Reads a blob written by put_bits into owning bytes; returns its bit
/// length.
std::uint64_t get_bits(BitReader& r, std::vector<std::uint8_t>& bytes);

}  // namespace snap

}  // namespace congestbc
