#include "snapshot/fingerprint.hpp"

#include <bit>

#include "snapshot/snapshot.hpp"

namespace congestbc {

std::uint64_t graph_fingerprint(const Graph& g) {
  std::uint64_t h = fnv1a(nullptr, 0);
  h = fnv1a_u64(g.num_nodes(), h);
  h = fnv1a_u64(g.num_edges(), h);
  for (const Edge& e : g.edges()) {
    h = fnv1a_u64(e.u, h);
    h = fnv1a_u64(e.v, h);
  }
  return h;
}

std::uint64_t digraph_fingerprint(const Digraph& g) {
  std::uint64_t h = fnv1a(nullptr, 0);
  h = fnv1a_u64(0xD16A11ull, h);  // directed tag: disjoint from Graph hashes
  h = fnv1a_u64(g.num_nodes(), h);
  h = fnv1a_u64(g.num_arcs(), h);
  for (const Arc& a : g.arcs()) {
    h = fnv1a_u64(a.u, h);
    h = fnv1a_u64(a.v, h);
  }
  return h;
}

std::uint64_t chain_graph_fingerprint(
    std::uint64_t base_fp, const std::vector<GraphDeltaOp>& delta) {
  std::uint64_t h = fnv1a(nullptr, 0);
  h = fnv1a_u64(base_fp, h);
  h = fnv1a_u64(delta.size(), h);
  for (const GraphDeltaOp& op : delta) {
    h = fnv1a_u64(op.insert ? 1 : 2, h);
    h = fnv1a_u64(op.u, h);
    h = fnv1a_u64(op.v, h);
  }
  return h;
}

std::uint64_t fault_fingerprint(const FaultPlan* plan) {
  if (plan == nullptr || plan->empty()) {
    return 0;
  }
  std::uint64_t h = fnv1a(nullptr, 0);
  h = fnv1a_u64(plan->seed, h);
  h = fnv1a_u64(std::bit_cast<std::uint64_t>(plan->drop_probability), h);
  h = fnv1a_u64(std::bit_cast<std::uint64_t>(plan->duplicate_probability), h);
  h = fnv1a_u64(std::bit_cast<std::uint64_t>(plan->delay_probability), h);
  h = fnv1a_u64(plan->link_faults.size(), h);
  for (const LinkFault& f : plan->link_faults) {
    h = fnv1a_u64(f.edge.u, h);
    h = fnv1a_u64(f.edge.v, h);
    h = fnv1a_u64(f.window.first_round, h);
    h = fnv1a_u64(f.window.last_round, h);
  }
  h = fnv1a_u64(plan->node_faults.size(), h);
  for (const NodeFault& f : plan->node_faults) {
    h = fnv1a_u64(f.node, h);
    h = fnv1a_u64(f.window.first_round, h);
    h = fnv1a_u64(f.window.last_round, h);
  }
  return h;
}

FingerprintBuilder& FingerprintBuilder::mix(std::uint64_t value) {
  hash_ = fnv1a_u64(value, hash_);
  return *this;
}

FingerprintBuilder& FingerprintBuilder::mix_bool(bool value) {
  hash_ = fnv1a_u64(value ? 1 : 0, hash_);
  return *this;
}

FingerprintBuilder& FingerprintBuilder::mix_double(double value) {
  hash_ = fnv1a_u64(std::bit_cast<std::uint64_t>(value), hash_);
  return *this;
}

FingerprintBuilder& FingerprintBuilder::mix_bytes(const void* data,
                                                  std::size_t size) {
  hash_ = fnv1a(static_cast<const std::uint8_t*>(data), size, hash_);
  return *this;
}

}  // namespace congestbc
