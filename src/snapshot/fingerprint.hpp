// Stable fingerprints of run inputs — the identity keys shared by the
// checkpoint/resume path and the serving layer's result cache.
//
// A fingerprint is an FNV-1a hash over a canonical byte walk of the
// object (snapshot/snapshot.hpp owns the hash primitives).  Two uses
// depend on the *same* functions hashing the *same* bytes:
//
//   * resume safety: Network::load_snapshot refuses a snapshot whose
//     recorded graph/fault-plan fingerprints differ from the network it
//     is loaded into (congest/network.cpp);
//   * result caching: the service layer (src/service) keys cached BC
//     results by run_fingerprint(), which folds graph_fingerprint() and
//     fault_fingerprint() into the options hash — so "safe to resume"
//     and "safe to serve from cache" are provably the same byte
//     comparison (tests/fingerprint_test.cpp pins this).
//
// Fingerprints are NOT cryptographic: they guard against operator error
// (wrong file, wrong flags), not against an adversary manufacturing
// collisions.
#pragma once

#include <cstdint>

#include "congest/fault.hpp"
#include "graph/graph.hpp"

namespace congestbc {

/// Fingerprint of a graph's canonical form (node count, edge count, then
/// the deduplicated sorted edge list).  Two Graphs built from permuted
/// copies of the same edge list fingerprint identically; any topology
/// difference — one edge, one node — changes it.
std::uint64_t graph_fingerprint(const Graph& g);

/// Fingerprint of a fault plan.  The injector is stateless — every
/// decision is a pure hash of (seed, round, from, to) — so the plan's
/// parameters ARE the complete RNG cursor: matching fingerprints
/// guarantee a resumed run draws the same fault for every future
/// message.  nullptr or an empty plan fingerprints as 0.
std::uint64_t fault_fingerprint(const FaultPlan* plan);

/// Incremental FNV-1a mixer for composite fingerprints (an options
/// struct, a graph + options pair).  Field order is part of the format:
/// reordering mixes changes every downstream fingerprint, so writers
/// must only ever append.
class FingerprintBuilder {
 public:
  FingerprintBuilder& mix(std::uint64_t value);
  FingerprintBuilder& mix_bool(bool value);
  /// IEEE-754 bit pattern, so -0.0 != 0.0 and NaN payloads count.
  FingerprintBuilder& mix_double(double value);
  FingerprintBuilder& mix_bytes(const void* data, std::size_t size);

  std::uint64_t value() const { return hash_; }

 private:
  std::uint64_t hash_ = 14695981039346656037ull;  // FNV-1a offset basis
};

}  // namespace congestbc
