// Stable fingerprints of run inputs — the identity keys shared by the
// checkpoint/resume path and the serving layer's result cache.
//
// A fingerprint is an FNV-1a hash over a canonical byte walk of the
// object (snapshot/snapshot.hpp owns the hash primitives).  Two uses
// depend on the *same* functions hashing the *same* bytes:
//
//   * resume safety: Network::load_snapshot refuses a snapshot whose
//     recorded graph/fault-plan fingerprints differ from the network it
//     is loaded into (congest/network.cpp);
//   * result caching: the service layer (src/service) keys cached BC
//     results by run_fingerprint(), which folds graph_fingerprint() and
//     fault_fingerprint() into the options hash — so "safe to resume"
//     and "safe to serve from cache" are provably the same byte
//     comparison (tests/fingerprint_test.cpp pins this).
//
// Fingerprints are NOT cryptographic: they guard against operator error
// (wrong file, wrong flags), not against an adversary manufacturing
// collisions.
#pragma once

#include <cstdint>
#include <vector>

#include "congest/fault.hpp"
#include "graph/digraph.hpp"
#include "graph/graph.hpp"

namespace congestbc {

/// Fingerprint of a graph's canonical form (node count, edge count, then
/// the deduplicated sorted edge list).  Two Graphs built from permuted
/// copies of the same edge list fingerprint identically; any topology
/// difference — one edge, one node — changes it.
std::uint64_t graph_fingerprint(const Graph& g);

/// Fingerprint of a directed graph's canonical form (node count, arc
/// count, the deduplicated sorted arc list).  Seeded with a directed
/// tag, so a Digraph can never collide with the Graph over the same
/// support — and two orientations of the same support hash differently,
/// which is what keeps directed-backend cache entries from ever being
/// served to (or from) undirected jobs.
std::uint64_t digraph_fingerprint(const Digraph& g);

/// One edge operation of a delta batch, in the canonical form the
/// chained fingerprint hashes: endpoints normalized u < v.  The stream
/// subsystem (src/stream/versioned_graph.hpp) converts its wire-level
/// ops into this before chaining.
struct GraphDeltaOp {
  bool insert = true;  // false = delete
  NodeId u = 0;
  NodeId v = 0;
};

/// Chains a canonical delta batch onto a base graph fingerprint:
/// fingerprint(v+1) = chain_graph_fingerprint(fingerprint(v), delta).
/// O(|delta|), and the chain seeded at graph_fingerprint(base) gives
/// every version a stable identity without rehashing the whole edge
/// list.  The hash is deliberately order-sensitive — two different op
/// orders yield different fingerprints — so callers must canonicalize
/// batches (sort, dedup) before chaining; VersionedGraph does.
///
/// Note: a chained fingerprint identifies a *mutation history*, not the
/// resulting edge set — it is intentionally distinct from
/// graph_fingerprint(materialized graph), so version-addressed cache
/// entries can never collide with static-graph entries.
std::uint64_t chain_graph_fingerprint(std::uint64_t base_fp,
                                      const std::vector<GraphDeltaOp>& delta);

/// Fingerprint of a fault plan.  The injector is stateless — every
/// decision is a pure hash of (seed, round, from, to) — so the plan's
/// parameters ARE the complete RNG cursor: matching fingerprints
/// guarantee a resumed run draws the same fault for every future
/// message.  nullptr or an empty plan fingerprints as 0.
std::uint64_t fault_fingerprint(const FaultPlan* plan);

/// Incremental FNV-1a mixer for composite fingerprints (an options
/// struct, a graph + options pair).  Field order is part of the format:
/// reordering mixes changes every downstream fingerprint, so writers
/// must only ever append.
class FingerprintBuilder {
 public:
  FingerprintBuilder& mix(std::uint64_t value);
  FingerprintBuilder& mix_bool(bool value);
  /// IEEE-754 bit pattern, so -0.0 != 0.0 and NaN payloads count.
  FingerprintBuilder& mix_double(double value);
  FingerprintBuilder& mix_bytes(const void* data, std::size_t size);

  std::uint64_t value() const { return hash_; }

 private:
  std::uint64_t hash_ = 14695981039346656037ull;  // FNV-1a offset basis
};

}  // namespace congestbc
