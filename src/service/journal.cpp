#include "service/journal.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <filesystem>
#include <unordered_map>
#include <vector>

#include "snapshot/snapshot.hpp"

namespace congestbc::service {

namespace {

// One record: kind byte, fingerprint (u64 LE), FNV-1a guard over the
// first 9 bytes (u64 LE).  Fixed size keeps torn-tail detection trivial:
// anything shorter than 17 bytes at the end of the file is a tail.
constexpr std::size_t kRecordBytes = 1 + 8 + 8;

void encode_record(std::uint8_t* out, SpoolJournal::Record kind,
                   std::uint64_t fp) {
  out[0] = static_cast<std::uint8_t>(kind);
  for (unsigned i = 0; i < 8; ++i) {
    out[1 + i] = static_cast<std::uint8_t>((fp >> (8 * i)) & 0xff);
  }
  const std::uint64_t guard = fnv1a(out, 9);
  for (unsigned i = 0; i < 8; ++i) {
    out[9 + i] = static_cast<std::uint8_t>((guard >> (8 * i)) & 0xff);
  }
}

/// Returns true and fills (kind, fp) when the 17 bytes are an intact
/// record.
bool decode_record(const std::uint8_t* in, std::uint8_t& kind,
                   std::uint64_t& fp) {
  std::uint64_t guard = 0;
  for (unsigned i = 0; i < 8; ++i) {
    guard |= static_cast<std::uint64_t>(in[9 + i]) << (8 * i);
  }
  if (guard != fnv1a(in, 9)) {
    return false;
  }
  kind = in[0];
  if (kind != static_cast<std::uint8_t>(SpoolJournal::Record::kAdmit) &&
      kind != static_cast<std::uint8_t>(SpoolJournal::Record::kTerminal) &&
      kind != static_cast<std::uint8_t>(SpoolJournal::Record::kMutate)) {
    return false;
  }
  fp = 0;
  for (unsigned i = 0; i < 8; ++i) {
    fp |= static_cast<std::uint64_t>(in[1 + i]) << (8 * i);
  }
  return true;
}

}  // namespace

SpoolJournal::~SpoolJournal() { close(); }

void SpoolJournal::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

SpoolJournal::Recovery SpoolJournal::open_and_recover() {
  close();
  namespace fs = std::filesystem;
  std::error_code ec;
  fs::create_directories(fs::path(path_).parent_path(), ec);
  fd_ = ::open(path_.c_str(), O_RDWR | O_CREAT | O_APPEND | O_CLOEXEC, 0644);
  if (fd_ < 0) {
    throw std::runtime_error("cannot open spool journal " + path_ + ": " +
                             std::strerror(errno));
  }

  std::vector<std::uint8_t> bytes;
  {
    std::uint8_t buf[4096];
    off_t pos = 0;
    while (true) {
      const ssize_t n = ::pread(fd_, buf, sizeof buf, pos);
      if (n < 0 && errno == EINTR) {
        continue;
      }
      if (n <= 0) {
        break;
      }
      bytes.insert(bytes.end(), buf, buf + n);
      pos += n;
    }
  }

  Recovery recovery;
  // Net admit count per fingerprint.  A fingerprint can legitimately
  // cycle admit→terminal→admit (resubmitted after a cache eviction), so
  // this is a counter, not a set.
  std::unordered_map<std::uint64_t, std::int64_t> net;
  std::unordered_map<std::uint64_t, bool> saw_terminal;
  std::size_t intact = 0;
  while (intact + kRecordBytes <= bytes.size()) {
    std::uint8_t kind = 0;
    std::uint64_t fp = 0;
    if (!decode_record(bytes.data() + intact, kind, fp)) {
      break;  // corrupt record: everything after it is untrustworthy
    }
    intact += kRecordBytes;
    ++recovery.records;
    if (kind == static_cast<std::uint8_t>(Record::kAdmit)) {
      ++net[fp];
    } else if (kind == static_cast<std::uint8_t>(Record::kTerminal)) {
      --net[fp];
      saw_terminal[fp] = true;
    } else {
      recovery.mutations.push_back(fp);
    }
  }
  recovery.torn_bytes = bytes.size() - intact;
  for (const auto& [fp, count] : net) {
    if (count > 0) {
      recovery.live.push_back(fp);
    } else if (saw_terminal[fp]) {
      recovery.retired.push_back(fp);
    }
  }
  if (recovery.torn_bytes > 0) {
    // Drop the torn tail so the next append starts on a record boundary.
    if (::ftruncate(fd_, static_cast<off_t>(intact)) != 0) {
      ++write_failures_;
    }
  }
  return recovery;
}

void SpoolJournal::append(Record kind, std::uint64_t fingerprint) {
  if (fd_ < 0) {
    ++write_failures_;
    return;
  }
  std::uint8_t record[kRecordBytes];
  encode_record(record, kind, fingerprint);
  std::size_t written = 0;
  while (written < sizeof record) {
    const ssize_t n =
        ::write(fd_, record + written, sizeof record - written);
    if (n > 0) {
      written += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) {
      continue;
    }
    ++write_failures_;
    return;
  }
  if (::fsync(fd_) != 0) {
    ++write_failures_;
  }
}

void SpoolJournal::compact(const std::vector<std::uint64_t>& live,
                           const std::vector<std::uint64_t>& mutations) {
  namespace fs = std::filesystem;
  const std::string tmp = path_ + ".tmp";
  const int tmp_fd =
      ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (tmp_fd < 0) {
    ++write_failures_;
    return;
  }
  bool ok = true;
  const auto write_record = [&](Record kind, std::uint64_t fp) {
    std::uint8_t record[kRecordBytes];
    encode_record(record, kind, fp);
    std::size_t written = 0;
    while (ok && written < sizeof record) {
      const ssize_t n =
          ::write(tmp_fd, record + written, sizeof record - written);
      if (n > 0) {
        written += static_cast<std::size_t>(n);
      } else if (n < 0 && errno == EINTR) {
        continue;
      } else {
        ok = false;
      }
    }
  };
  for (const std::uint64_t fp : live) {
    write_record(Record::kAdmit, fp);
  }
  for (const std::uint64_t fp : mutations) {
    write_record(Record::kMutate, fp);
  }
  ok = ok && ::fsync(tmp_fd) == 0;
  ::close(tmp_fd);
  if (!ok) {
    ++write_failures_;
    std::error_code ec;
    fs::remove(tmp, ec);
    return;
  }
  std::error_code ec;
  fs::rename(tmp, path_, ec);
  if (ec) {
    ++write_failures_;
    fs::remove(tmp, ec);
    return;
  }
  // Reopen the append fd on the new inode.
  if (fd_ >= 0) {
    ::close(fd_);
  }
  fd_ = ::open(path_.c_str(), O_RDWR | O_CREAT | O_APPEND | O_CLOEXEC, 0644);
  if (fd_ < 0) {
    ++write_failures_;
  }
}

}  // namespace congestbc::service
